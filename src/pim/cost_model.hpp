// Cycle-level cost model of a single UPMEM DPU. The simulator runs kernels
// *functionally* (producing real search results) while this model converts
// the observed instruction and DMA traffic into cycles.
//
// Timing rules (Gómez-Luna et al. 2022; UPMEM SDK):
//  * The in-order 14-stage pipeline issues at most one instruction per cycle
//    across all tasklets; one tasklet's consecutive instructions are at
//    least max(#tasklets, 11) cycles apart (revolver dispatch). Hence with a
//    balanced load, throughput rises linearly up to 11 tasklets, then
//    flattens — exactly paper Fig 13.
//  * An MRAM DMA blocks only the issuing tasklet; concurrent DMAs from other
//    tasklets serialize on the single DMA engine.
//  * DMA latency = setup + per-byte cost, producing the Fig 7 curve.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hw_specs.hpp"

namespace upanns::pim {

/// Work observed for one tasklet during one barrier-delimited phase.
struct TaskletWork {
  std::uint64_t instructions = 0;  ///< issued instruction slots
  std::uint64_t dma_cycles = 0;    ///< cycles spent blocked on MRAM DMA
  std::uint64_t critical_instructions = 0;  ///< under a semaphore/mutex

  void clear() { *this = TaskletWork{}; }
};

class DpuCostModel {
 public:
  /// Latency in cycles of one MRAM<->WRAM DMA transfer of `bytes`.
  /// `bytes` is clamped to the hardware's [8, 2048] legal range and rounded
  /// up to a multiple of 8, mirroring what the DMA engine actually moves.
  static double mram_dma_cycles(std::size_t bytes);

  /// Legalized transfer size (8-byte aligned, within [8, 2048]).
  static std::size_t legalize_transfer(std::size_t bytes);

  /// Issue gap of the revolver pipeline for n active tasklets.
  static unsigned issue_gap(unsigned n_tasklets) {
    return n_tasklets > hw::kPipelineSaturation ? n_tasklets
                                                : hw::kPipelineSaturation;
  }

  /// Cycles for one barrier-delimited phase given per-tasklet work.
  /// Bounds combined:
  ///   issue bandwidth:  sum(instructions)
  ///   DMA engine:       sum(dma_cycles)
  ///   per-tasklet path: gap * instructions_t + dma_t
  ///   serialization:    critical sections execute one tasklet at a time.
  static std::uint64_t phase_cycles(const std::vector<TaskletWork>& work);

  /// Fixed cost of a barrier crossing (wake-up + bookkeeping).
  static constexpr std::uint64_t barrier_cycles() { return 64; }

  static double cycles_to_seconds(std::uint64_t cycles) {
    return static_cast<double>(cycles) / hw::kDpuFreqHz;
  }
};

}  // namespace upanns::pim
