#include "pim/wram.hpp"

#include <algorithm>

namespace upanns::pim {

std::size_t WramAllocator::alloc(std::size_t bytes, const char* tag) {
  const std::size_t aligned = (bytes + 7) / 8 * 8;
  if (top_ + aligned > capacity_) {
    throw WramOverflow("WRAM overflow allocating " + std::to_string(bytes) +
                       " bytes for '" + tag + "' (used " +
                       std::to_string(top_) + "/" + std::to_string(capacity_) +
                       ")");
  }
  const std::size_t off = top_;
  top_ += aligned;
  high_water_ = std::max(high_water_, top_);
  return off;
}

void WramAllocator::rewind(std::size_t mark) {
  if (mark > top_) {
    throw std::logic_error("WramAllocator::rewind past current top");
  }
  top_ = mark;
}

}  // namespace upanns::pim
