// Manual WRAM (64 KB scratchpad) management. UPMEM DPUs have no MMU, so
// kernels address physical WRAM directly; UpANNS reuses regions across
// pipeline stages (paper Fig 6: the codebook region is overwritten by the
// per-tasklet read buffers once the LUT is built). This allocator makes that
// reuse explicit and *checked*: allocations beyond 64 KB throw, so any kernel
// that would not fit on real hardware fails loudly in the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/hw_specs.hpp"

namespace upanns::pim {

class WramOverflow : public std::runtime_error {
 public:
  explicit WramOverflow(const std::string& what) : std::runtime_error(what) {}
};

/// Bump allocator over the 64 KB WRAM arena with mark/rewind reuse.
class WramAllocator {
 public:
  explicit WramAllocator(std::size_t capacity = hw::kWramBytes)
      : capacity_(capacity), arena_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return top_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t free_bytes() const { return capacity_ - top_; }

  /// Allocate `bytes` (8-byte aligned, as DMA requires). Returns the WRAM
  /// offset. Throws WramOverflow when the arena is exhausted — the signal
  /// that a kernel's working set exceeds real hardware.
  std::size_t alloc(std::size_t bytes, const char* tag = "");

  /// Current position; pass to rewind() to release everything allocated
  /// after the mark. This is the mechanism behind stage-to-stage reuse.
  std::size_t mark() const { return top_; }
  void rewind(std::size_t mark);

  void reset() { top_ = 0; }

  /// Raw access into the simulated arena.
  std::uint8_t* data(std::size_t offset) { return arena_.data() + offset; }
  const std::uint8_t* data(std::size_t offset) const {
    return arena_.data() + offset;
  }

  template <typename T>
  T* as(std::size_t offset) {
    return reinterpret_cast<T*>(arena_.data() + offset);
  }
  template <typename T>
  const T* as(std::size_t offset) const {
    return reinterpret_cast<const T*>(arena_.data() + offset);
  }

 private:
  std::size_t capacity_;
  std::size_t top_ = 0;
  std::size_t high_water_ = 0;
  std::vector<std::uint8_t> arena_;
};

}  // namespace upanns::pim
