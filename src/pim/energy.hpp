// Peak-power based energy accounting, matching the paper's methodology
// (Sec 5.2: peak power is used as the approximation when comparing QPS/W).
#pragma once

#include <cstddef>

#include "common/hw_specs.hpp"

namespace upanns::pim {

enum class Platform { kCpu, kGpu, kPim };

/// Peak power of a platform configuration in watts. For PIM, pass the DPU
/// count; whole DIMMs are powered (128 DPUs each).
double platform_power_w(Platform p, std::size_t n_dpus = hw::kDefaultDpus);

/// Approximate hardware price in USD (paper Table 1) for QPS/$ comparisons.
double platform_price_usd(Platform p, std::size_t n_dpus = hw::kDefaultDpus);

/// QPS per watt.
double qps_per_watt(double qps, Platform p, std::size_t n_dpus = hw::kDefaultDpus);

/// Energy in joules for a run of `seconds` at peak power.
double energy_joules(Platform p, double seconds, std::size_t n_dpus = hw::kDefaultDpus);

/// DPU count whose DIMM power equals the GPU's 300 W budget — the blue
/// vertical line in paper Fig 20.
std::size_t dpus_at_gpu_power_parity();

}  // namespace upanns::pim
