#include "pim/transfer.hpp"

#include <algorithm>
#include <string>

namespace upanns::pim {

TransferStats TransferEngine::batch(const std::vector<std::size_t>& per_dpu_bytes) {
  TransferStats out;
  std::size_t max_sz = 0;
  std::size_t nonzero = 0;
  bool uniform = true;
  std::size_t first = 0;
  for (std::size_t b : per_dpu_bytes) {
    out.bytes += b;
    if (b == 0) continue;
    if (nonzero == 0) first = b;
    uniform = uniform && (b == first);
    ++nonzero;
    max_sz = std::max(max_sz, b);
  }
  if (nonzero == 0) return out;
  out.parallel = uniform;
  if (uniform) {
    // All DPUs receive concurrently; the wire time is the aggregate bytes at
    // the parallel bandwidth (the rank-level burst is what saturates).
    out.seconds = static_cast<double>(out.bytes) / hw::kHostXferParallelBw;
  } else {
    out.seconds = static_cast<double>(out.bytes) / hw::kHostXferSerialBw;
  }
  return out;
}

TransferStats TransferEngine::uniform(std::size_t n_dpus, std::size_t bytes) {
  TransferStats out;
  out.bytes = n_dpus * bytes;
  out.parallel = true;
  if (out.bytes > 0) {
    out.seconds = static_cast<double>(out.bytes) / hw::kHostXferParallelBw;
  }
  return out;
}

void TransferEngine::record(obs::MetricsSink sink, const char* direction,
                            const TransferStats& stats) {
  if (!sink.enabled()) return;
  const std::string prefix = std::string("transfer.") + direction;
  sink.count(prefix + ".bytes", stats.bytes);
  sink.count(prefix + ".ops");
  sink.count(stats.parallel ? prefix + ".uniform" : prefix + ".serial");
  sink.observe(prefix + ".seconds", stats.seconds);
}

}  // namespace upanns::pim
