// Functional + timed model of UPMEM DPUs.
//
// A kernel ("DPU program") is expressed as a sequence of *phases* separated
// by barriers — exactly how the UpANNS kernel is structured on real hardware
// (paper Fig 6: LUT build / partial-sum build / distance calc / top-k merge,
// synchronized by Barriers 0-3). The simulator executes each phase for every
// tasklet, accumulating the tasklet's instruction and DMA traffic, then
// charges the phase using DpuCostModel::phase_cycles. Tasklets within a phase
// run sequentially in tasklet-id order, which makes shared-WRAM updates
// deterministic; mutual exclusion on real hardware is accounted through
// TaskletCtx::critical_instr.
//
// DPU kernels on real UPMEM must be C. The kernels written against this API
// deliberately use a C-like subset (no allocation, no exceptions, explicit
// WRAM offsets, 8-byte-aligned DMA) so they port 1:1 to dpu-upmem-dpurte.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/hw_specs.hpp"
#include "pim/cost_model.hpp"
#include "pim/wram.hpp"

namespace upanns::obs {
class MetricsRegistry;
}  // namespace upanns::obs

namespace upanns::pim {

class Dpu;

/// Per-tasklet execution context handed to kernel phases.
class TaskletCtx {
 public:
  TaskletCtx(Dpu& dpu, unsigned id, unsigned n_tasklets)
      : dpu_(&dpu), id_(id), n_tasklets_(n_tasklets) {}

  unsigned id() const { return id_; }
  unsigned n_tasklets() const { return n_tasklets_; }
  Dpu& dpu() { return *dpu_; }

  /// DMA MRAM -> local buffer. Copies the bytes and charges DMA latency.
  /// `bytes` must respect the hardware limits (8-aligned, <= 2048); larger
  /// requests are split into maximal legal chunks like mram_read loops do
  /// in real DPU code.
  void mram_read(std::size_t mram_off, void* dst, std::size_t bytes);

  /// Borrowed read-only view of MRAM. Charges the *identical*
  /// DpuCostModel::mram_dma_cycles chunking as mram_read(mram_off, _, bytes)
  /// but returns a pointer into the DPU's MRAM backing store instead of
  /// copying — the zero-copy path for read-only codebook segments, id
  /// buffers and token-stream scans. On real hardware this is still a
  /// WRAM-staging DMA; only the host-side simulation skips the memcpy.
  ///
  /// Aliasing rules (see DESIGN.md §9): a view is invalidated by
  /// mram_alloc / mram_rewind / host_write on the same DPU; kernels must
  /// consume a view before issuing the next DMA charge against the region
  /// it covers and never retain one across phases.
  const std::uint8_t* mram_view(std::size_t mram_off, std::size_t bytes);

  /// mram_view typed shorthand. Alignment is guaranteed by mram_alloc's
  /// 8-byte granularity plus the kernels' power-of-two element sizes.
  template <typename T>
  const T* mram_view_as(std::size_t mram_off, std::size_t bytes) {
    return reinterpret_cast<const T*>(mram_view(mram_off, bytes));
  }

  /// DMA local buffer -> MRAM.
  void mram_write(std::size_t mram_off, const void* src, std::size_t bytes);

  /// Charge n issued instructions.
  void instr(std::uint64_t n) { work_.instructions += n; }

  /// Charge n instructions executed under a semaphore/mutex.
  void critical_instr(std::uint64_t n) { work_.critical_instructions += n; }

  const TaskletWork& work() const { return work_; }
  void reset_work() { work_.clear(); }

 private:
  Dpu* dpu_;
  unsigned id_;
  unsigned n_tasklets_;
  TaskletWork work_;
};

/// A barrier-phased DPU kernel.
class DpuKernel {
 public:
  virtual ~DpuKernel() = default;
  /// One-time setup before tasklets start (WRAM layout etc.). n_tasklets is
  /// the launch's thread count — WRAM budgets depend on it.
  virtual void setup(Dpu&, unsigned n_tasklets) { (void)n_tasklets; }
  virtual unsigned n_phases() const = 0;
  virtual void run_phase(unsigned phase, TaskletCtx& ctx) = 0;
};

struct DpuRunStats {
  std::uint64_t cycles = 0;
  std::vector<std::uint64_t> phase_cycles;
  std::uint64_t instructions = 0;
  std::uint64_t dma_cycles = 0;

  double seconds() const { return DpuCostModel::cycles_to_seconds(cycles); }
};

/// One DPU: 64 MB MRAM + 64 KB WRAM + up to 24 tasklets.
class Dpu {
 public:
  explicit Dpu(std::uint32_t id = 0) : id_(id), wram_(hw::kWramBytes) {}

  std::uint32_t id() const { return id_; }
  WramAllocator& wram() { return wram_; }

  // -------- MRAM management (host-side layout, like dpu_alloc symbols).
  /// Reserve `bytes` of MRAM; returns the offset. Throws when the 64 MB
  /// capacity is exceeded — the same constraint that forces billion-scale
  /// datasets across many DPUs.
  std::size_t mram_alloc(std::size_t bytes, const char* tag = "");
  std::size_t mram_used() const { return mram_.size(); }
  std::size_t mram_free() const { return hw::kMramBytes - mram_.size(); }

  /// Mark/rewind for per-batch scratch regions (query tables, results):
  /// rewinding releases everything allocated after the mark so repeated
  /// search batches do not leak MRAM.
  std::size_t mram_mark() const { return mram_.size(); }
  void mram_rewind(std::size_t mark);

  /// Region reuse for updatable list images: mram_release returns a static
  /// region to a free list, and mram_alloc_reuse prefers a released region
  /// (first fit, splitting the remainder back) over growing the bump
  /// allocator — so a list that outgrows its slack relocates without leaking
  /// the abandoned region. Released regions below a rewind mark survive
  /// rewinds; regions at or past the mark are dropped with the tail.
  std::size_t mram_alloc_reuse(std::size_t bytes, const char* tag = "");
  void mram_release(std::size_t off, std::size_t bytes);
  /// Bytes currently sitting on the free list (reuse-visibility for tests).
  std::size_t mram_released_bytes() const;

  /// Untimed host-side MRAM access (timing belongs to the transfer engine).
  void host_write(std::size_t off, const void* src, std::size_t bytes);
  void host_read(std::size_t off, void* dst, std::size_t bytes) const;

  const std::uint8_t* mram_data(std::size_t off) const { return mram_.data() + off; }
  std::uint8_t* mram_data(std::size_t off) { return mram_.data() + off; }

  /// Execute a kernel with n_tasklets hardware threads; returns the timing.
  DpuRunStats run(DpuKernel& kernel, unsigned n_tasklets);

  /// Cumulative busy cycles across all runs (for utilization/energy stats).
  std::uint64_t busy_cycles() const { return busy_cycles_; }
  void reset_busy() { busy_cycles_ = 0; }

 private:
  struct FreeRegion {
    std::size_t off;
    std::size_t bytes;
  };

  std::uint32_t id_;
  std::vector<std::uint8_t> mram_;
  std::vector<FreeRegion> free_regions_;  ///< sorted by offset, coalesced
  WramAllocator wram_;
  std::uint64_t busy_cycles_ = 0;
  // Launch-object pool: TaskletCtx/TaskletWork vectors reused across run()
  // calls (rebuilt only when n_tasklets changes) so repeated launches on the
  // serving path construct nothing. run() is per-DPU serial, so the pool
  // needs no synchronization.
  std::vector<TaskletCtx> run_ctxs_;
  std::vector<TaskletWork> run_works_;
};

/// A collection of DPUs driven by the host, e.g. 7 DIMMs x 128 DPUs.
/// Kernel launches are evaluated on the host thread pool (simulation speed)
/// while simulated launch time is max-over-DPUs (they run concurrently).
class PimSystem {
 public:
  explicit PimSystem(std::size_t n_dpus = hw::kDefaultDpus);

  std::size_t n_dpus() const { return dpus_.size(); }
  Dpu& dpu(std::size_t i) { return dpus_[i]; }
  const Dpu& dpu(std::size_t i) const { return dpus_[i]; }

  std::size_t n_dimms() const {
    return (dpus_.size() + hw::kDpusPerDimm - 1) / hw::kDpusPerDimm;
  }

  /// Launch `kernel_for(dpu_index)` on every DPU that has work (nullptr
  /// skips a DPU). Kernels are caller-owned so their outputs outlive the
  /// launch. Returns the simulated wall time: max over DPUs + fixed launch
  /// latency.
  struct LaunchStats {
    double seconds = 0;             ///< simulated launch wall time
    std::vector<double> dpu_seconds;  ///< per-DPU busy time this launch
    std::vector<DpuRunStats> dpu_stats;  ///< per-DPU detail (phase cycles)
    std::uint64_t max_cycles = 0;
    std::size_t slowest_dpu = 0;
  };
  LaunchStats launch(const std::function<DpuKernel*(std::size_t)>& kernel_for,
                     unsigned n_tasklets);

  /// Attach a metrics registry: every launch records per-DPU busy seconds,
  /// tasklet occupancy, per-phase cycle totals and instruction/DMA counters.
  /// nullptr (the default) keeps launch() untouched.
  void set_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

 private:
  std::vector<Dpu> dpus_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace upanns::pim
