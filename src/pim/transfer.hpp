// Host <-> DPU transfer timing. UPMEM's host library transfers buffers to
// every DPU *concurrently* only when all buffers have identical sizes;
// otherwise it degrades to sequential per-DPU copies (paper Sec 2.2). UpANNS
// therefore pads per-DPU query/schedule buffers to a uniform size — this
// engine charges the correct cost either way so that design decision is
// visible in the numbers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/hw_specs.hpp"
#include "obs/metrics.hpp"

namespace upanns::pim {

struct TransferStats {
  double seconds = 0;
  std::size_t bytes = 0;
  bool parallel = false;
};

class TransferEngine {
 public:
  /// Time to push (or gather) the given per-DPU buffer sizes in one batch.
  /// Zero-sized entries are allowed (DPU skipped); uniformity is judged over
  /// the non-zero entries.
  static TransferStats batch(const std::vector<std::size_t>& per_dpu_bytes);

  /// Uniform-size fast path: n_dpus buffers of `bytes` each.
  static TransferStats uniform(std::size_t n_dpus, std::size_t bytes);

  /// Book one transfer into the registry under `direction` ("push" or
  /// "gather"): bytes moved, seconds, and whether the uniform-size
  /// concurrent path or the serialized fallback was taken. No-op when the
  /// sink is empty.
  static void record(obs::MetricsSink sink, const char* direction,
                     const TransferStats& stats);
};

}  // namespace upanns::pim
