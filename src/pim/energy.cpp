#include "pim/energy.hpp"

#include <cmath>

namespace upanns::pim {

namespace {
std::size_t dimms_for(std::size_t n_dpus) {
  return (n_dpus + hw::kDpusPerDimm - 1) / hw::kDpusPerDimm;
}
}  // namespace

double platform_power_w(Platform p, std::size_t n_dpus) {
  switch (p) {
    case Platform::kCpu: return hw::kCpuPeakPowerW;
    case Platform::kGpu: return hw::kGpuPeakPowerW;
    case Platform::kPim:
      return static_cast<double>(dimms_for(n_dpus)) * hw::kPimDimmPeakPowerW;
  }
  return 0;
}

double platform_price_usd(Platform p, std::size_t n_dpus) {
  switch (p) {
    case Platform::kCpu: return hw::kCpuPriceUsd;
    case Platform::kGpu: return hw::kGpuPriceUsd;
    case Platform::kPim:
      return static_cast<double>(dimms_for(n_dpus)) * hw::kPimPriceUsdPerDimm;
  }
  return 0;
}

double qps_per_watt(double qps, Platform p, std::size_t n_dpus) {
  const double w = platform_power_w(p, n_dpus);
  return w > 0 ? qps / w : 0;
}

double energy_joules(Platform p, double seconds, std::size_t n_dpus) {
  return platform_power_w(p, n_dpus) * seconds;
}

std::size_t dpus_at_gpu_power_parity() {
  // Fractional DIMMs are physically meaningless but the paper quotes 1654
  // DPUs (300 W / 23.22 W * 128), so mirror that granularity.
  const double dimms = hw::kGpuPeakPowerW / hw::kPimDimmPeakPowerW;
  return static_cast<std::size_t>(std::floor(dimms * hw::kDpusPerDimm));
}

}  // namespace upanns::pim
