#include "pim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace upanns::pim {

std::size_t DpuCostModel::legalize_transfer(std::size_t bytes) {
  bytes = std::clamp(bytes, hw::kMramMinTransfer, hw::kMramMaxTransfer);
  return (bytes + 7) / 8 * 8;
}

double DpuCostModel::mram_dma_cycles(std::size_t bytes) {
  const std::size_t legal = legalize_transfer(bytes);
  return hw::kMramSetupCycles +
         hw::kMramCyclesPerByte * static_cast<double>(legal);
}

std::uint64_t DpuCostModel::phase_cycles(const std::vector<TaskletWork>& work) {
  if (work.empty()) return 0;
  const unsigned gap = issue_gap(static_cast<unsigned>(work.size()));

  std::uint64_t sum_instr = 0;
  std::uint64_t sum_dma = 0;
  std::uint64_t sum_crit = 0;
  std::uint64_t max_path = 0;
  for (const TaskletWork& w : work) {
    sum_instr += w.instructions + w.critical_instructions;
    sum_dma += w.dma_cycles;
    sum_crit += w.critical_instructions;
    const std::uint64_t path =
        static_cast<std::uint64_t>(gap) * w.instructions + w.dma_cycles;
    max_path = std::max(max_path, path);
  }
  // Critical sections execute with at most one tasklet making progress, so
  // they add on top of the parallel portion at the saturated issue gap.
  const std::uint64_t crit_serial =
      sum_crit * static_cast<std::uint64_t>(hw::kPipelineSaturation);
  return std::max({sum_instr, sum_dma, max_path}) + crit_serial;
}

}  // namespace upanns::pim
