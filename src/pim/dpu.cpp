#include "pim/dpu.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace upanns::pim {

void TaskletCtx::mram_read(std::size_t mram_off, void* dst, std::size_t bytes) {
  auto* out = static_cast<std::uint8_t*>(dst);
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t chunk = std::min(bytes - done, hw::kMramMaxTransfer);
    work_.dma_cycles += static_cast<std::uint64_t>(
        DpuCostModel::mram_dma_cycles(chunk));
    dpu_->host_read(mram_off + done, out + done, chunk);
    done += chunk;
  }
}

const std::uint8_t* TaskletCtx::mram_view(std::size_t mram_off,
                                          std::size_t bytes) {
  // Same per-chunk DMA charge as mram_read — a view still stages through
  // WRAM on real hardware; only the simulator's memcpy is elided.
  assert(mram_off + bytes <= dpu_->mram_used());
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t chunk = std::min(bytes - done, hw::kMramMaxTransfer);
    work_.dma_cycles += static_cast<std::uint64_t>(
        DpuCostModel::mram_dma_cycles(chunk));
    done += chunk;
  }
  return dpu_->mram_data(mram_off);
}

void TaskletCtx::mram_write(std::size_t mram_off, const void* src,
                            std::size_t bytes) {
  auto* in = static_cast<const std::uint8_t*>(src);
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t chunk = std::min(bytes - done, hw::kMramMaxTransfer);
    work_.dma_cycles += static_cast<std::uint64_t>(
        DpuCostModel::mram_dma_cycles(chunk));
    dpu_->host_write(mram_off + done, in + done, chunk);
    done += chunk;
  }
}

std::size_t Dpu::mram_alloc(std::size_t bytes, const char* tag) {
  const std::size_t aligned = (bytes + 7) / 8 * 8;
  if (mram_.size() + aligned > hw::kMramBytes) {
    throw std::runtime_error("MRAM overflow on DPU " + std::to_string(id_) +
                             " allocating " + std::to_string(bytes) +
                             " bytes for '" + tag + "'");
  }
  const std::size_t off = mram_.size();
  mram_.resize(mram_.size() + aligned);
  return off;
}

void Dpu::mram_rewind(std::size_t mark) {
  if (mark > mram_.size()) {
    throw std::logic_error("Dpu::mram_rewind past current size");
  }
  mram_.resize(mark);
  // Free regions in the discarded tail no longer exist; truncate any that
  // straddle the mark.
  while (!free_regions_.empty()) {
    FreeRegion& last = free_regions_.back();
    if (last.off >= mark) {
      free_regions_.pop_back();
    } else if (last.off + last.bytes > mark) {
      last.bytes = mark - last.off;
      break;
    } else {
      break;
    }
  }
}

std::size_t Dpu::mram_alloc_reuse(std::size_t bytes, const char* tag) {
  const std::size_t aligned = (bytes + 7) / 8 * 8;
  for (std::size_t i = 0; i < free_regions_.size(); ++i) {
    FreeRegion& r = free_regions_[i];
    if (r.bytes < aligned) continue;
    const std::size_t off = r.off;
    if (r.bytes == aligned) {
      free_regions_.erase(free_regions_.begin() +
                          static_cast<std::ptrdiff_t>(i));
    } else {
      r.off += aligned;
      r.bytes -= aligned;
    }
    return off;
  }
  return mram_alloc(bytes, tag);
}

void Dpu::mram_release(std::size_t off, std::size_t bytes) {
  const std::size_t aligned = (bytes + 7) / 8 * 8;
  if (aligned == 0) return;
  if (off + aligned > mram_.size()) {
    throw std::logic_error("Dpu::mram_release outside allocated MRAM");
  }
  // Insert sorted by offset, coalescing with adjacent free neighbors.
  auto it = std::lower_bound(
      free_regions_.begin(), free_regions_.end(), off,
      [](const FreeRegion& r, std::size_t o) { return r.off < o; });
  it = free_regions_.insert(it, {off, aligned});
  if (it + 1 != free_regions_.end() && it->off + it->bytes == (it + 1)->off) {
    it->bytes += (it + 1)->bytes;
    it = free_regions_.erase(it + 1) - 1;
  }
  if (it != free_regions_.begin() &&
      (it - 1)->off + (it - 1)->bytes == it->off) {
    (it - 1)->bytes += it->bytes;
    free_regions_.erase(it);
  }
}

std::size_t Dpu::mram_released_bytes() const {
  std::size_t total = 0;
  for (const FreeRegion& r : free_regions_) total += r.bytes;
  return total;
}

void Dpu::host_write(std::size_t off, const void* src, std::size_t bytes) {
  assert(off + bytes <= mram_.size());
  std::memcpy(mram_.data() + off, src, bytes);
}

void Dpu::host_read(std::size_t off, void* dst, std::size_t bytes) const {
  assert(off + bytes <= mram_.size());
  std::memcpy(dst, mram_.data() + off, bytes);
}

DpuRunStats Dpu::run(DpuKernel& kernel, unsigned n_tasklets) {
  n_tasklets = std::clamp(n_tasklets, 1u, hw::kMaxTasklets);
  kernel.setup(*this, n_tasklets);

  // Launch-object reuse: the per-tasklet contexts and work records persist
  // across run() calls and are rebuilt only when the tasklet count changes.
  if (run_ctxs_.size() != n_tasklets) {
    run_ctxs_.clear();
    run_ctxs_.reserve(n_tasklets);
    for (unsigned t = 0; t < n_tasklets; ++t) {
      run_ctxs_.emplace_back(*this, t, n_tasklets);
    }
    run_works_.assign(n_tasklets, TaskletWork{});
  }

  DpuRunStats stats;
  const unsigned phases = kernel.n_phases();
  stats.phase_cycles.reserve(phases);
  for (unsigned p = 0; p < phases; ++p) {
    for (unsigned t = 0; t < n_tasklets; ++t) {
      run_ctxs_[t].reset_work();
      kernel.run_phase(p, run_ctxs_[t]);
      run_works_[t] = run_ctxs_[t].work();
      stats.instructions += run_works_[t].instructions +
                            run_works_[t].critical_instructions;
      stats.dma_cycles += run_works_[t].dma_cycles;
    }
    const std::uint64_t pc =
        DpuCostModel::phase_cycles(run_works_) + DpuCostModel::barrier_cycles();
    stats.phase_cycles.push_back(pc);
    stats.cycles += pc;
  }
  busy_cycles_ += stats.cycles;
  return stats;
}

PimSystem::PimSystem(std::size_t n_dpus) {
  dpus_.reserve(n_dpus);
  for (std::size_t i = 0; i < n_dpus; ++i) {
    dpus_.emplace_back(static_cast<std::uint32_t>(i));
  }
}

PimSystem::LaunchStats PimSystem::launch(
    const std::function<DpuKernel*(std::size_t)>& kernel_for,
    unsigned n_tasklets) {
  LaunchStats out;
  out.dpu_seconds.assign(dpus_.size(), 0.0);
  out.dpu_stats.assign(dpus_.size(), DpuRunStats{});

  // Chunked dispatch sized to the pool (~4 chunks per worker for dynamic
  // balance): one type-erased task per chunk instead of a grain-1 dispatch,
  // and idle DPUs are skipped inside the chunk without a dispatch round trip.
  common::ThreadPool& pool = common::ThreadPool::global();
  const std::size_t grain =
      std::max<std::size_t>(1, dpus_.size() / (pool.size() * 4));
  pool.parallel_for_chunks(
      0, dpus_.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          DpuKernel* kernel = kernel_for(i);
          if (!kernel) continue;
          out.dpu_stats[i] = dpus_[i].run(*kernel, n_tasklets);
          out.dpu_seconds[i] = out.dpu_stats[i].seconds();
        }
      },
      grain);

  for (std::size_t i = 0; i < out.dpu_stats.size(); ++i) {
    if (out.dpu_stats[i].cycles > out.max_cycles) {
      out.max_cycles = out.dpu_stats[i].cycles;
      out.slowest_dpu = i;
    }
  }
  out.seconds =
      DpuCostModel::cycles_to_seconds(out.max_cycles) + hw::kHostLaunchLatency;

  if (metrics_) {
    // Aggregate locally first so the registry lock is taken once per
    // instrument, not once per DPU.
    obs::Histogram& busy = metrics_->histogram("pim.dpu.busy_seconds");
    std::size_t active = 0;
    std::uint64_t instructions = 0, dma_cycles = 0;
    std::vector<std::uint64_t> phase_cycles;
    for (std::size_t i = 0; i < out.dpu_stats.size(); ++i) {
      const DpuRunStats& st = out.dpu_stats[i];
      if (st.cycles == 0 && st.phase_cycles.empty()) continue;
      ++active;
      busy.observe(out.dpu_seconds[i]);
      instructions += st.instructions;
      dma_cycles += st.dma_cycles;
      if (phase_cycles.size() < st.phase_cycles.size()) {
        phase_cycles.resize(st.phase_cycles.size(), 0);
      }
      for (std::size_t p = 0; p < st.phase_cycles.size(); ++p) {
        phase_cycles[p] += st.phase_cycles[p];
      }
    }
    metrics_->counter("pim.launches").add(1);
    metrics_->counter("pim.launch.active_dpus").add(active);
    metrics_->counter("pim.launch.instructions").add(instructions);
    metrics_->counter("pim.launch.dma_cycles").add(dma_cycles);
    for (std::size_t p = 0; p < phase_cycles.size(); ++p) {
      metrics_->counter("pim.launch.phase_cycles." + std::to_string(p))
          .add(phase_cycles[p]);
    }
    metrics_->gauge("pim.launch.tasklets").set(static_cast<double>(
        std::clamp(n_tasklets, 1u, hw::kMaxTasklets)));
    metrics_->gauge("pim.launch.tasklet_occupancy")
        .set(static_cast<double>(std::clamp(n_tasklets, 1u, hw::kMaxTasklets)) /
             static_cast<double>(hw::kMaxTasklets));
    metrics_->histogram("pim.launch.seconds").observe(out.seconds);
  }
  return out;
}

}  // namespace upanns::pim
