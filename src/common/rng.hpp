// Deterministic random number generation and the samplers used throughout the
// reproduction: uniform, Gaussian, Zipf (query skew, Fig 4a) and log-normal
// (cluster-size skew, Fig 4b). All generators are seedable so every dataset,
// workload and experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace upanns::common {

/// xoshiro256++ PRNG seeded through SplitMix64. Small, fast, and good enough
/// statistical quality for synthetic data generation; satisfies the
/// UniformRandomBitGenerator concept so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Standard normal via Box-Muller (cached second value).
  double gaussian();

  /// Normal with the given mean / stddev.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool has_cached_ = false;
  double cached_ = 0.0;
};

/// Zipf(s) sampler over ranks [0, n). Used to model the highly skewed cluster
/// access frequencies observed in SPACEV1B (popular clusters receive ~500x
/// more queries than unpopular ones, paper Fig 4a).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Draw one rank; rank 0 is the most popular.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

/// Log-normal sampler for cluster sizes: real billion-scale inverted lists
/// span ~6 orders of magnitude in size (paper Fig 4b).
class LogNormalSampler {
 public:
  LogNormalSampler(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  double sample(Rng& rng) const { return std::exp(rng.gaussian(mu_, sigma_)); }

 private:
  double mu_;
  double sigma_;
};

/// Fisher-Yates shuffle of an index range, deterministic under the rng.
void shuffle_indices(std::vector<std::uint32_t>& idx, Rng& rng);

/// A random permutation [0, n).
std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace upanns::common
