#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace upanns::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard lk(g_mu);
  std::fprintf(stderr, "[upanns %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace upanns::common
