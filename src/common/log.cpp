#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace upanns::common {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("UPANNS_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  return log_level_from_env_value(env);
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

LogLevel log_level_from_env_value(std::string_view value) {
  const std::optional<LogLevel> parsed = parse_log_level(value);
  if (parsed.has_value()) return *parsed;
  log_message(LogLevel::kWarn,
              "unrecognized UPANNS_LOG level \"" + std::string(value) +
                  "\" (expected debug|info|warn|error); defaulting to info");
  return LogLevel::kInfo;
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard lk(g_mu);
  std::fprintf(stderr, "[upanns %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace upanns::common
