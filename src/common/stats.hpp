// Small statistics helpers shared by the workload analyzer (Fig 4), the
// balance ablation (Fig 11) and the scalability regression (Fig 20).
#pragma once

#include <cstddef>
#include <vector>

namespace upanns::common {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& xs);

/// p in [0, 1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

/// max/mean ratio — the balance metric of paper Fig 11 (a ratio close to 1
/// means DPU workloads are even). Degenerate inputs — empty, or all zero —
/// return 0 rather than dividing by a zero mean, so callers can feed a raw
/// busy-seconds vector without pre-filtering.
double max_over_mean(const std::vector<double>& xs);

/// Ordinary least squares y = a + b x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;

  double predict(double x) const { return intercept + slope * x; }
};

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace upanns::common
