#pragma once

#include <cstdint>

namespace upanns::common {

/// Bit-exact std::round for a non-negative domain already clamped below
/// INT32_MAX (the LUT quantizers clamp to 65535 first), without the libm
/// roundf PLT call the baseline build would otherwise emit per entry.
/// Truncation gives floor(x + 0.5f) for x >= 0; the compare backs out the
/// one case where the x + 0.5f addition itself rounded up across an
/// integer. Ties (x + 0.5 exactly integral) keep the floor result, which is
/// round-half-away for positive x — identical to std::round.
/// tests/test_simd.cpp pins equality over the full uint16 LUT range.
inline float round_nonneg(float x) {
  float r = static_cast<float>(static_cast<std::int32_t>(x + 0.5f));
  if (r - 0.5f > x) r -= 1.f;
  return r;
}

}  // namespace upanns::common
