// Minimal leveled logging to stderr. Benches keep stdout clean for data rows.
//
// The initial level comes from the UPANNS_LOG environment variable
// (debug|info|warn|error, default info); set_log_level overrides it at
// runtime (the CLI's --log-level flag does exactly that).
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace upanns::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& msg);

/// "debug" | "info" | "warn"/"warning" | "error" (case-insensitive);
/// nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Resolve an UPANNS_LOG-style value: parse_log_level on success; an
/// unrecognized value logs a warning naming it and falls back to kInfo
/// (never silently — tested in test_telemetry).
LogLevel log_level_from_env_value(std::string_view value);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(level, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}

}  // namespace upanns::common
