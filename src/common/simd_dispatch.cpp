#include "common/simd_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace upanns::common {

namespace {

SimdLevel probe_cpu() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kSse2;  // baseline for x86-64
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel clamp_supported(SimdLevel want, const char* origin) {
  const SimdLevel max = simd_max_supported();
  if (static_cast<int>(want) <= static_cast<int>(max)) return want;
  std::fprintf(stderr, "upanns: %s requests %s but this CPU supports %s; using %s\n",
               origin, simd_level_name(want), simd_level_name(max),
               simd_level_name(max));
  return max;
}

SimdLevel resolve_initial() {
  SimdLevel level = simd_max_supported();
  if (const char* env = std::getenv("UPANNS_SIMD")) {
    SimdLevel want;
    if (parse_simd_level(env, &want)) {
      level = clamp_supported(want, "UPANNS_SIMD");
    } else {
      std::fprintf(stderr,
                   "upanns: unknown UPANNS_SIMD value '%s' "
                   "(expected scalar|sse2|avx2); using %s\n",
                   env, simd_level_name(level));
    }
  }
  return level;
}

std::atomic<SimdLevel>& active_slot() {
  static std::atomic<SimdLevel> slot{resolve_initial()};
  return slot;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

bool parse_simd_level(std::string_view name, SimdLevel* out) {
  if (name == "scalar") { *out = SimdLevel::kScalar; return true; }
  if (name == "sse2") { *out = SimdLevel::kSse2; return true; }
  if (name == "avx2") { *out = SimdLevel::kAvx2; return true; }
  return false;
}

SimdLevel simd_max_supported() {
  static const SimdLevel probed = probe_cpu();
  return probed;
}

SimdLevel simd_active_level() {
  return active_slot().load(std::memory_order_relaxed);
}

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel effective = clamp_supported(level, "set_simd_level");
  active_slot().store(effective, std::memory_order_relaxed);
  return effective;
}

}  // namespace upanns::common
