// Hardware constants of the three evaluated platforms (paper Table 1) plus
// the micro-architectural UPMEM parameters from the UPMEM SDK documentation
// and Gómez-Luna et al., "Benchmarking a New Paradigm" (IEEE Access 2022).
// Every simulator/cost model pulls its numbers from here so Table 1 and all
// derived figures share one source of truth.
#pragma once

#include <cstddef>

namespace upanns::hw {

// ---------------------------------------------------------------- CPU (Table 1)
// 2x Intel Xeon Silver 4110 @ 2.10 GHz, 4x DDR4-2666.
inline constexpr double kCpuFreqHz = 2.10e9;
inline constexpr int kCpuSockets = 2;
inline constexpr int kCpuCoresPerSocket = 8;
inline constexpr int kCpuCores = kCpuSockets * kCpuCoresPerSocket;
inline constexpr double kCpuMemBandwidth = 85.3e9;    // bytes/s
inline constexpr double kCpuMemCapacity = 128.0e9;    // bytes
inline constexpr double kCpuPeakPowerW = 190.0;
inline constexpr double kCpuPriceUsd = 1400.0;
// Sustained scalar+SIMD throughput used by the roofline (flops/s). Xeon
// Silver 4110: 16 cores x 2.1 GHz x ~8 f32 FMA lanes (AVX-512 at reduced
// clock) ~= 2.7e11; we use a conservative sustained figure.
inline constexpr double kCpuFlops = 2.2e11;

// ---------------------------------------------------------------- GPU (Table 1)
// NVIDIA A100 PCIe 80 GB.
inline constexpr double kGpuMemBandwidth = 1935.0e9;  // bytes/s
inline constexpr double kGpuMemCapacity = 80.0e9;     // bytes
inline constexpr double kGpuPeakPowerW = 300.0;
inline constexpr double kGpuPriceUsd = 20000.0;
inline constexpr double kGpuFlops = 19.5e12;          // fp32 peak
// Top-k selection on GPUs is the low-parallelism stage (paper: 64-89% of
// runtime). Effective k-selection throughput in candidates/s, and the
// per-batch CUDA stream synchronization overhead.
inline constexpr double kGpuTopkCandidatesPerSec = 5.0e9;
inline constexpr double kGpuTopkPerKCost = 2.2e-6;    // s per unit of k per query chunk
inline constexpr double kGpuSyncLatency = 45e-6;      // s per kernel sync
inline constexpr double kGpuPciBandwidth = 24.0e9;    // bytes/s (PCIe 4 x16)

// ---------------------------------------------------------------- PIM (Table 1)
// 7 UPMEM DIMMs; 16 chips/DIMM x 8 DPUs/chip = 128 DPUs per DIMM.
inline constexpr int kDpusPerChip = 8;
inline constexpr int kChipsPerDimm = 16;
inline constexpr int kDpusPerDimm = kDpusPerChip * kChipsPerDimm;  // 128
inline constexpr int kDefaultDimms = 7;
inline constexpr int kDefaultDpus = kDefaultDimms * kDpusPerDimm;  // 896
inline constexpr double kPimDimmPeakPowerW = 23.22;   // Falevoz & Legriel 2023
inline constexpr double kPimPriceUsdPerDimm = 400.0;  // 7 DIMMs ~ $2800

// Per-DPU micro-architecture (UPMEM SDK / Gómez-Luna et al.).
inline constexpr double kDpuFreqHz = 350.0e6;
inline constexpr std::size_t kMramBytes = 64ull * 1024 * 1024;  // 64 MB
inline constexpr std::size_t kWramBytes = 64ull * 1024;         // 64 KB
inline constexpr std::size_t kIramBytes = 24ull * 1024;         // 24 KB
inline constexpr unsigned kMaxTasklets = 24;
// The 14-stage pipeline dispatches tasklets in a revolver: a tasklet can
// re-issue only once its previous instruction clears the non-overlapping
// stages, i.e. every max(#tasklets, 11) cycles. 11 tasklets saturate the
// pipeline (paper Fig 13).
inline constexpr unsigned kPipelineStages = 14;
inline constexpr unsigned kPipelineSaturation = 11;

// MRAM<->WRAM DMA latency model (paper Fig 7): a fixed setup cost plus a
// per-byte streaming cost. Below ~256 B the setup dominates (flat-ish);
// beyond it latency grows linearly. Transfers must be 8-byte aligned,
// >= 8 B and <= 2048 B.
inline constexpr double kMramSetupCycles = 77.0;
inline constexpr double kMramCyclesPerByte = 0.5;
inline constexpr std::size_t kMramMinTransfer = 8;
inline constexpr std::size_t kMramMaxTransfer = 2048;

// Host <-> MRAM transfer engine: concurrent across DPUs only when every DPU
// sends/receives the same buffer size, otherwise serialized (paper Sec 2.2).
inline constexpr double kHostXferParallelBw = 16.0e9;  // bytes/s aggregate
inline constexpr double kHostXferSerialBw = 0.35e9;    // bytes/s one DPU at a time
inline constexpr double kHostLaunchLatency = 20e-6;    // s per kernel launch

}  // namespace upanns::hw
