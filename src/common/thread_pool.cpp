#include "common/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace upanns::common {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::drain() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::move(first_error_);
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not escape the worker (std::terminate) nor leak
    // its in_flight_ decrement (a wedged wait_idle): capture the first
    // error for drain() and always fall through to the accounting below.
    try {
      task();
    } catch (...) {
      std::lock_guard lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t min_chunk) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      min_chunk);
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t n_chunks =
      std::max<std::size_t>(1, std::min(size() * 4, n / std::max<std::size_t>(1, min_chunk)));
  if (n_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(n_chunks);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    auto task = std::make_shared<std::packaged_task<void()>>([&fn, lo, hi] { fn(lo, hi); });
    futures.push_back(task->get_future());
    submit([task] { (*task)(); });
  }
  // Drain every future before rethrowing: tasks capture references to the
  // caller's frame, so unwinding while siblings still run would be a
  // use-after-free. The first exception wins; later ones are dropped.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace upanns::common
