// Bounded top-k containers used on every architecture path:
//  - BoundedMaxHeap: the classic "keep the k smallest distances" max-heap, as
//    maintained per thread (tasklet) during the distance-calculation stage.
//  - The heap can be converted in place to ascending order (heapsort), which
//    is the min-heap traversal order the Top-K Pruning stage (paper 4.4)
//    consumes when merging thread-local heaps into the DPU-global heap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace upanns::common {

/// A (distance, id) candidate. Lower distance is better.
struct Neighbor {
  float dist;
  std::uint32_t id;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    // Tie-break on id for deterministic results across schedules.
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

/// Fixed-capacity max-heap keeping the k best (smallest) candidates.
/// push() is O(log k) once full, O(log size) while filling.
class BoundedMaxHeap {
 public:
  explicit BoundedMaxHeap(std::size_t k) : k_(k) { data_.reserve(k); }

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return data_.size(); }
  bool full() const { return data_.size() == k_; }
  bool empty() const { return data_.empty(); }

  /// Current worst (largest) retained distance; +inf while not full.
  float threshold() const {
    return full() ? data_.front().dist : std::numeric_limits<float>::infinity();
  }

  /// The worst retained candidate (heap root). Only valid when non-empty;
  /// `n < worst()` is the exact acceptance test push() applies when full,
  /// including the id tie-break — pruning must use this, not threshold(),
  /// to stay result-identical.
  const Neighbor& worst() const { return data_.front(); }

  /// Insert a candidate if it beats the current threshold.
  /// Returns true if the candidate was retained.
  bool push(Neighbor n) {
    if (k_ == 0) return false;
    if (!full()) {
      data_.push_back(n);
      std::push_heap(data_.begin(), data_.end());
      return true;
    }
    if (!(n < data_.front())) return false;
    std::pop_heap(data_.begin(), data_.end());
    data_.back() = n;
    std::push_heap(data_.begin(), data_.end());
    return true;
  }

  bool push(float dist, std::uint32_t id) { return push(Neighbor{dist, id}); }

  const std::vector<Neighbor>& raw() const { return data_; }

  /// Destructively extract candidates sorted by ascending distance.
  std::vector<Neighbor> take_sorted() {
    std::sort_heap(data_.begin(), data_.end());
    return std::exchange(data_, {});
  }

  /// Destructively extract into a caller-owned buffer (ascending order).
  /// Unlike take_sorted(), both the heap's storage and `out` keep their
  /// capacity, so repeated extract/refill cycles allocate nothing once
  /// warm — the DPU-kernel merge stage depends on this.
  void take_sorted_into(std::vector<Neighbor>& out) {
    std::sort_heap(data_.begin(), data_.end());
    out.assign(data_.begin(), data_.end());
    data_.clear();
  }

  /// Non-destructive sorted copy.
  std::vector<Neighbor> sorted() const {
    std::vector<Neighbor> out = data_;
    std::sort(out.begin(), out.end());
    return out;
  }

  void clear() { data_.clear(); }

 private:
  std::size_t k_;
  std::vector<Neighbor> data_;
};

/// Merge several ascending-sorted candidate lists into the k best overall.
/// This mirrors the host-side final aggregation across DPUs.
std::vector<Neighbor> merge_sorted_topk(
    const std::vector<std::vector<Neighbor>>& lists, std::size_t k);

inline std::vector<Neighbor> merge_sorted_topk(
    const std::vector<std::vector<Neighbor>>& lists, std::size_t k) {
  BoundedMaxHeap heap(k);
  for (const auto& list : lists) {
    for (const auto& n : list) {
      // Lists are ascending: once one entry fails the threshold, the rest of
      // this list cannot contribute (the same early-exit the DPU merge uses).
      if (heap.full() && !(n.dist < heap.threshold())) break;
      heap.push(n);
    }
  }
  return heap.take_sorted();
}

}  // namespace upanns::common
