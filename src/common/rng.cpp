#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace upanns::common {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_ = false;
}

double Rng::gaussian() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 6.28318530717958647692 * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double hi = cdf_[rank];
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return hi - lo;
}

void shuffle_indices(std::vector<std::uint32_t>& idx, Rng& rng) {
  for (std::size_t i = idx.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(idx[i - 1], idx[j]);
  }
}

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  shuffle_indices(idx, rng);
  return idx;
}

}  // namespace upanns::common
