#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace upanns::common {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double max_over_mean(const std::vector<double>& xs) {
  const Summary s = summarize(xs);
  if (s.count == 0 || s.mean == 0.0) return 0.0;
  return s.max / s.mean;
}

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  // R^2
  const double ymean = sy / dn;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = fit.predict(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace upanns::common
