// A small work-stealing-free thread pool with a parallel_for helper.
// Used by the host-side pipelines (k-means, ground truth, batched search) and
// by the PIM simulator to evaluate many DPUs concurrently. The DPU *timing*
// model is independent of how many host threads execute the simulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace upanns::common {

class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task. A task that throws does not take down its
  /// worker thread: the first exception is captured and held until drain()
  /// rethrows it, and the task still counts as finished for wait_idle().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Never throws; errors
  /// raised by tasks stay captured until drain() surfaces them.
  void wait_idle();

  /// wait_idle(), then rethrow the first exception any submitted task threw
  /// since the last drain() (clearing the stored error). Returns normally
  /// when every task succeeded. Long-lived servers call this between
  /// workload phases so a failed handler surfaces instead of vanishing.
  void drain();

  /// Run fn(i) for i in [begin, end) split into contiguous chunks across the
  /// pool, blocking until complete. Falls back to inline execution for tiny
  /// ranges so tests remain cheap.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t min_chunk = 64);

  /// Chunked variant: fn(chunk_begin, chunk_end).
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& fn,
                           std::size_t min_chunk = 64);

  /// Process-wide pool shared by library internals.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  ///< guarded by mu_; cleared by drain()
};

}  // namespace upanns::common
