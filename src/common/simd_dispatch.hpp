// Runtime SIMD dispatch for the host-side kernels (k-means / PQ training,
// LUT build, token scan). The binary is compiled without -march flags, so
// SSE2 is the compile-time baseline (implied by x86-64) and AVX2 variants
// are emitted per-function via __attribute__((target("avx2"))) and selected
// once at startup from cpuid. The `UPANNS_SIMD=scalar|sse2|avx2` environment
// variable (or set_simd_level, used by `upanns_cli --simd`) overrides the
// probe for A/B testing; requests above what the CPU supports clamp down
// with a warning. Every kernel keeps one IEEE operation order across all
// levels (no FMA contraction), so changing the level never changes results —
// the parity suite in tests/test_simd.cpp pins this.
#pragma once

#include <string_view>

namespace upanns::common {

enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Lower-case name of a level ("scalar", "sse2", "avx2").
const char* simd_level_name(SimdLevel level);

/// Parse a level name (case-sensitive, lower-case). Returns false on
/// unknown input and leaves *out untouched.
bool parse_simd_level(std::string_view name, SimdLevel* out);

/// Highest level this CPU supports (probed once via cpuid).
SimdLevel simd_max_supported();

/// The level kernels dispatch on. First call resolves it from cpuid,
/// lowered by UPANNS_SIMD if set (unknown values warn and are ignored;
/// unsupported values warn and clamp to the probe).
SimdLevel simd_active_level();

/// Override the active level (clamped to simd_max_supported, with a warning
/// when clamping). Returns the level actually in effect. Not thread-safe
/// against in-flight kernels; call before starting work.
SimdLevel set_simd_level(SimdLevel level);

}  // namespace upanns::common
