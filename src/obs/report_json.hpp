// Machine-readable JSON for the serving reports: SearchReport (stage times,
// trace, PIM extras including per-DPU stage seconds and balance ratios),
// BatchPipelineReport (per-slot host/device split + per-batch reports),
// MultiHostReport, and MetricsRegistry snapshots. Benches and CI consume
// these instead of scraping the stdout tables; doubles are written with
// round-trip precision so parsed values compare bit-equal (test_obs).
#pragma once

#include <string>

#include "core/backend.hpp"
#include "core/multihost.hpp"
#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace upanns::obs {

void append_stage_times(JsonWriter& w, const baselines::StageTimes& t);
void append_pim_extras(JsonWriter& w, const core::PimExtras& px);
void append_search_report(JsonWriter& w, const core::SearchReport& r);
void append_batch_pipeline_report(JsonWriter& w,
                                  const core::BatchPipelineReport& r);
void append_multi_host_report(JsonWriter& w, const core::MultiHostReport& r);
void append_multi_host_pipeline_report(JsonWriter& w,
                                       const core::MultiHostPipelineReport& r);
void append_snapshot(JsonWriter& w, const MetricsSnapshot& s);

/// Inverse of append_snapshot: rebuild a MetricsSnapshot from its parsed
/// JSON (bench/metrics_diff reads committed baselines through this). Throws
/// std::out_of_range / std::runtime_error on a malformed document.
MetricsSnapshot snapshot_from_json(const JsonValue& v);

std::string stage_times_json(const baselines::StageTimes& t);
std::string pim_extras_json(const core::PimExtras& px);
std::string search_report_json(const core::SearchReport& r);
std::string batch_pipeline_json(const core::BatchPipelineReport& r);
std::string multi_host_report_json(const core::MultiHostReport& r);
std::string multi_host_pipeline_json(const core::MultiHostPipelineReport& r);
std::string snapshot_json(const MetricsSnapshot& s);

}  // namespace upanns::obs
