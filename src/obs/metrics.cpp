#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace upanns::obs {

namespace {

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: empty bucket bounds");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds not strictly increasing");
    }
  }
}

void Histogram::observe_n(double v, std::uint64_t n) {
  if (n == 0) return;
  // Bucket b spans (bounds[b-1], bounds[b]]: the first bound >= v is the
  // inclusive upper edge (quantile() interpolates on the same convention).
  const std::size_t b =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  counts_[b].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add(sum_, v * static_cast<double>(n));
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}
double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }
double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }
double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  // Shares the interpolation kernel with WindowedHistogram (obs/window.hpp)
  // so windowed and cumulative quantiles are directly comparable.
  return quantile_from_buckets(bounds_, bucket_counts(), min(), max(), q);
}

void Histogram::merge_from(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument("Histogram::merge_from: bucket bounds differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  atomic_min(min_, other.min());
  atomic_max(max_, other.max());
}

std::vector<double> Histogram::default_time_bounds() {
  // 1-2-5 decades from 1 us to 10 s.
  std::vector<double> b;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    b.push_back(decade);
    b.push_back(2 * decade);
    b.push_back(5 * decade);
  }
  b.push_back(10.0);
  return b;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  for (auto& e : counters_) {
    if (e.name == name) return *e.instrument;
  }
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  for (auto& e : gauges_) {
    if (e.name == name) return *e.instrument;
  }
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lk(mu_);
  for (auto& e : histograms_) {
    if (e.name == name) return *e.instrument;
  }
  if (bounds.empty()) bounds = Histogram::default_time_bounds();
  histograms_.push_back(
      {std::string(name), std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().instrument;
}

WindowedHistogram& MetricsRegistry::windowed(std::string_view name,
                                             std::vector<double> bounds) {
  WindowOptions opts;
  {
    std::lock_guard lk(mu_);
    for (auto& e : windows_) {
      if (e.name == name) return *e.instrument;
    }
    opts = window_opts_;
  }
  return windowed(name, opts, std::move(bounds));
}

WindowedHistogram& MetricsRegistry::windowed(std::string_view name,
                                             WindowOptions opts,
                                             std::vector<double> bounds) {
  std::lock_guard lk(mu_);
  for (auto& e : windows_) {
    if (e.name == name) return *e.instrument;
  }
  if (bounds.empty()) bounds = Histogram::default_time_bounds();
  windows_.push_back({std::string(name), std::make_unique<WindowedHistogram>(
                                             opts, std::move(bounds))});
  return *windows_.back().instrument;
}

void MetricsRegistry::set_window_options(WindowOptions opts) {
  std::lock_guard lk(mu_);
  window_opts_ = opts;
}

WindowOptions MetricsRegistry::window_options() const {
  std::lock_guard lk(mu_);
  return window_opts_;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot s;
  for (const auto& e : counters_) {
    s.counters.push_back({e.name, e.instrument->value()});
  }
  for (const auto& e : gauges_) {
    s.gauges.push_back({e.name, e.instrument->value()});
  }
  for (const auto& e : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = e.name;
    h.count = e.instrument->count();
    h.sum = e.instrument->sum();
    h.min = h.count ? e.instrument->min() : 0.0;
    h.max = h.count ? e.instrument->max() : 0.0;
    h.p50 = e.instrument->quantile(0.50);
    h.p90 = e.instrument->quantile(0.90);
    h.p99 = e.instrument->quantile(0.99);
    h.bounds = e.instrument->bounds();
    h.bucket_counts = e.instrument->bucket_counts();
    s.histograms.push_back(std::move(h));
  }
  for (const auto& e : windows_) {
    MetricsSnapshot::WindowValue wv;
    wv.name = e.name;
    wv.width_seconds = e.instrument->options().width_seconds;
    wv.slot_seconds = wv.width_seconds /
                      static_cast<double>(e.instrument->options().slots);
    wv.now = e.instrument->now();
    wv.count = e.instrument->count();
    wv.rate = e.instrument->rate();
    wv.p50 = e.instrument->quantile(0.50);
    wv.p99 = e.instrument->quantile(0.99);
    wv.p999 = e.instrument->quantile(0.999);
    s.windows.push_back(std::move(wv));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(s.counters.begin(), s.counters.end(), by_name);
  std::sort(s.gauges.begin(), s.gauges.end(), by_name);
  std::sort(s.histograms.begin(), s.histograms.end(), by_name);
  std::sort(s.windows.begin(), s.windows.end(), by_name);
  return s;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Take stable snapshots of the other registry's entry list first; entries
  // are never removed, so the instrument references stay valid unlocked.
  std::vector<std::pair<std::string, Counter*>> counters;
  std::vector<std::pair<std::string, Gauge*>> gauges;
  std::vector<std::pair<std::string, Histogram*>> hists;
  std::vector<std::pair<std::string, WindowedHistogram*>> windows;
  {
    std::lock_guard lk(other.mu_);
    for (const auto& e : other.counters_) {
      counters.emplace_back(e.name, e.instrument.get());
    }
    for (const auto& e : other.gauges_) {
      gauges.emplace_back(e.name, e.instrument.get());
    }
    for (const auto& e : other.histograms_) {
      hists.emplace_back(e.name, e.instrument.get());
    }
    for (const auto& e : other.windows_) {
      windows.emplace_back(e.name, e.instrument.get());
    }
  }
  for (auto& [name, c] : counters) counter(name).add(c->value());
  for (auto& [name, g] : gauges) gauge(name).set(g->value());
  for (auto& [name, h] : hists) {
    histogram(name, h->bounds()).merge_from(*h);
  }
  for (auto& [name, wh] : windows) {
    windowed(name, wh->options(), wh->bounds()).merge_from(*wh);
  }
}

}  // namespace upanns::obs
