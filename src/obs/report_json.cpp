#include "obs/report_json.hpp"

namespace upanns::obs {

void append_stage_times(JsonWriter& w, const baselines::StageTimes& t) {
  w.begin_object()
      .kv("cluster_filter", t.cluster_filter)
      .kv("lut_build", t.lut_build)
      .kv("distance_calc", t.distance_calc)
      .kv("topk", t.topk)
      .kv("transfer", t.transfer)
      .kv("total", t.total())
      .end_object();
}

void append_pim_extras(JsonWriter& w, const core::PimExtras& px) {
  w.begin_object();
  w.kv("n_dpus", px.n_dpus);
  w.kv("balance_ratio", px.balance_ratio);
  w.kv("schedule_balance", px.schedule_balance);
  w.kv("bytes_pushed", px.bytes_pushed);
  w.kv("bytes_gathered", px.bytes_gathered);
  w.kv("push_parallel", px.push_parallel);
  w.kv("length_reduction", px.length_reduction);
  w.kv("merge_insertions", px.merge_insertions);
  w.kv("merge_pruned", px.merge_pruned);
  w.kv("scanned_records", px.scanned_records);
  w.kv("total_instructions", px.total_instructions);
  w.kv("total_dma_cycles", px.total_dma_cycles);
  w.key("dpu_busy_seconds").begin_array();
  for (double s : px.dpu_busy_seconds) w.value(s);
  w.end_array();
  w.key("dpu_stage_seconds").begin_array();
  for (const auto& s : px.dpu_stage_seconds) {
    w.begin_object()
        .kv("lut", s.lut)
        .kv("dist", s.dist)
        .kv("topk", s.topk)
        .kv("total", s.total())
        .end_object();
  }
  w.end_array();
  w.end_object();
}

void append_search_report(JsonWriter& w, const core::SearchReport& r) {
  w.begin_object();
  w.kv("n_queries", r.neighbors.size());
  w.kv("qps", r.qps);
  w.kv("qps_per_watt", r.qps_per_watt);
  w.key("times");
  append_stage_times(w, r.times);
  w.key("trace").begin_array();
  for (const core::StageStep& s : r.trace) {
    w.begin_object()
        .kv("name", s.name)
        .kv("side", s.side == core::StageSide::kHost ? "host" : "device")
        .kv("seconds", s.seconds)
        .end_object();
  }
  w.end_array();
  if (r.pim.has_value()) {
    w.key("pim");
    append_pim_extras(w, *r.pim);
  }
  if (r.gpu.has_value()) {
    w.key("gpu").begin_object().kv("oom", r.gpu->oom).end_object();
  }
  w.end_object();
}

void append_batch_pipeline_report(JsonWriter& w,
                                  const core::BatchPipelineReport& r) {
  w.begin_object();
  w.kv("overlapped", r.overlapped);
  w.kv("n_queries", r.n_queries);
  w.kv("qps", r.qps);
  w.kv("serial_seconds", r.serial_seconds);
  w.kv("elapsed_seconds", r.elapsed_seconds);
  w.key("slots").begin_array();
  for (const core::BatchSlot& slot : r.slots) {
    w.begin_object();
    w.kv("host_seconds", slot.host_seconds);
    w.kv("device_seconds", slot.device_seconds);
    // Patch keys only when a patch actually ran, so read-only runs stay
    // byte-identical to the pre-patch schema.
    if (slot.patch_seconds > 0) {
      w.kv("patch_seconds", slot.patch_seconds);
      w.kv("patch_bytes", slot.patch_bytes);
    }
    // Adapt keys likewise only when the drift controller acted, so runs
    // with --adapt=off (or a quiet controller) serialize byte-identically.
    if (slot.adapt_seconds > 0) {
      w.kv("adapt_seconds", slot.adapt_seconds);
      w.kv("adapt_bytes", slot.adapt_bytes);
      w.kv("adapt_action", core::adapt_action_name(slot.adapt_action));
      w.kv("adapt_drift", slot.adapt_drift);
    }
    w.key("report");
    append_search_report(w, slot.report);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void append_multi_host_report(JsonWriter& w, const core::MultiHostReport& r) {
  w.begin_object();
  w.kv("n_queries", r.neighbors.size());
  w.kv("seconds", r.seconds);
  w.kv("qps", r.qps);
  w.kv("network_seconds", r.network_seconds);
  w.kv("broadcast_seconds", r.broadcast_seconds);
  w.kv("gather_seconds", r.gather_seconds);
  w.kv("coord_filter_seconds", r.coord_filter_seconds);
  w.kv("coord_merge_seconds", r.coord_merge_seconds);
  w.kv("slowest_host_seconds", r.slowest_host_seconds);
  w.key("host_times").begin_array();
  for (const auto& t : r.host_times) append_stage_times(w, t);
  w.end_array();
  w.key("host_slots").begin_array();
  for (const core::MultiHostHostSlot& s : r.host_slots) {
    w.begin_object()
        .kv("active", s.active)
        .kv("host_seconds", s.host_seconds)
        .kv("device_seconds", s.device_seconds)
        .kv("network_seconds", s.network_seconds)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

void append_multi_host_pipeline_report(JsonWriter& w,
                                       const core::MultiHostPipelineReport& r) {
  w.begin_object();
  w.kv("overlapped", r.overlapped);
  w.kv("n_queries", r.n_queries);
  w.kv("qps", r.qps);
  w.kv("serial_seconds", r.serial_seconds);
  w.kv("elapsed_seconds", r.elapsed_seconds);
  w.key("slots").begin_array();
  for (const core::MultiHostBatchSlot& slot : r.slots) {
    w.begin_object();
    w.kv("pre_seconds", slot.pre_seconds);
    w.kv("device_seconds", slot.device_seconds);
    w.kv("post_seconds", slot.post_seconds);
    if (slot.patch_seconds > 0) {
      w.kv("patch_seconds", slot.patch_seconds);
      w.kv("patch_bytes", slot.patch_bytes);
    }
    if (slot.adapt_seconds > 0) {
      w.kv("adapt_seconds", slot.adapt_seconds);
      w.kv("adapt_bytes", slot.adapt_bytes);
      w.kv("adapt_action", core::adapt_action_name(slot.adapt_action));
      w.kv("adapt_drift", slot.adapt_drift);
    }
    w.key("report");
    append_multi_host_report(w, slot.report);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void append_snapshot(JsonWriter& w, const MetricsSnapshot& s) {
  w.begin_object();
  w.key("counters").begin_array();
  for (const auto& c : s.counters) {
    w.begin_object().kv("name", c.name).kv("value", c.value).end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& g : s.gauges) {
    w.begin_object().kv("name", g.name).kv("value", g.value).end_object();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (const auto& h : s.histograms) {
    w.begin_object();
    w.kv("name", h.name);
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("p50", h.p50);
    w.kv("p90", h.p90);
    w.kv("p99", h.p99);
    w.key("bounds").begin_array();
    for (double b : h.bounds) w.value(b);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (std::uint64_t c : h.bucket_counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  // Windows section only when windowed instruments exist, keeping
  // pre-window consumers byte-compatible.
  if (!s.windows.empty()) {
    w.key("windows").begin_array();
    for (const auto& wi : s.windows) {
      w.begin_object();
      w.kv("name", wi.name);
      w.kv("width_seconds", wi.width_seconds);
      w.kv("slot_seconds", wi.slot_seconds);
      w.kv("now", wi.now);
      w.kv("count", wi.count);
      w.kv("rate", wi.rate);
      w.kv("p50", wi.p50);
      w.kv("p99", wi.p99);
      w.kv("p999", wi.p999);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

MetricsSnapshot snapshot_from_json(const JsonValue& v) {
  MetricsSnapshot s;
  for (const JsonValue& c : v.at("counters").array) {
    s.counters.push_back(
        {c.at("name").string,
         static_cast<std::uint64_t>(c.at("value").number)});
  }
  for (const JsonValue& g : v.at("gauges").array) {
    s.gauges.push_back({g.at("name").string, g.at("value").number});
  }
  for (const JsonValue& h : v.at("histograms").array) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = h.at("name").string;
    hv.count = static_cast<std::uint64_t>(h.at("count").number);
    hv.sum = h.at("sum").number;
    hv.min = h.at("min").number;
    hv.max = h.at("max").number;
    hv.p50 = h.at("p50").number;
    hv.p90 = h.at("p90").number;
    hv.p99 = h.at("p99").number;
    for (const JsonValue& b : h.at("bounds").array) {
      hv.bounds.push_back(b.number);
    }
    for (const JsonValue& c : h.at("bucket_counts").array) {
      hv.bucket_counts.push_back(static_cast<std::uint64_t>(c.number));
    }
    s.histograms.push_back(std::move(hv));
  }
  if (v.has("windows")) {
    for (const JsonValue& wi : v.at("windows").array) {
      MetricsSnapshot::WindowValue wv;
      wv.name = wi.at("name").string;
      wv.width_seconds = wi.at("width_seconds").number;
      wv.slot_seconds = wi.at("slot_seconds").number;
      wv.now = wi.at("now").number;
      wv.count = static_cast<std::uint64_t>(wi.at("count").number);
      wv.rate = wi.at("rate").number;
      wv.p50 = wi.at("p50").number;
      wv.p99 = wi.at("p99").number;
      wv.p999 = wi.at("p999").number;
      s.windows.push_back(std::move(wv));
    }
  }
  return s;
}

namespace {
template <typename T, typename Fn>
std::string render(const T& v, Fn append) {
  JsonWriter w;
  append(w, v);
  return w.take();
}
}  // namespace

std::string stage_times_json(const baselines::StageTimes& t) {
  return render(t, append_stage_times);
}
std::string pim_extras_json(const core::PimExtras& px) {
  return render(px, append_pim_extras);
}
std::string search_report_json(const core::SearchReport& r) {
  return render(r, append_search_report);
}
std::string batch_pipeline_json(const core::BatchPipelineReport& r) {
  return render(r, append_batch_pipeline_report);
}
std::string multi_host_report_json(const core::MultiHostReport& r) {
  return render(r, append_multi_host_report);
}
std::string multi_host_pipeline_json(const core::MultiHostPipelineReport& r) {
  return render(r, append_multi_host_pipeline_report);
}
std::string snapshot_json(const MetricsSnapshot& s) {
  return render(s, append_snapshot);
}

}  // namespace upanns::obs
