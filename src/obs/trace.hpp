// Chrome/Perfetto trace export of a BatchPipeline run.
//
// The timeline is derived from exactly the numbers the pipeline's
// double-buffered accounting uses (core/pipeline.hpp): batch 0's host prefix
// starts at t=0; each batch's device phase starts when both the device is
// free and its own host prefix is done; batch i+1's host prefix starts when
// batch i's device phase starts. Because IEEE rounding is monotone,
// max(fl(a+b), fl(a+c)) == fl(a + max(b, c)), so the final device-phase end
// reproduces elapsed_seconds = h_0 + sum_i max(d_i, h_{i+1}) + d_last
// bit-for-bit for overlapped runs (asserted in test_obs).
//
// Lanes (Chrome trace "threads" of one process):
//   tid 0          host    — leading host stages of every batch
//   tid 1          device  — the device-bound remainder of every batch
//   tid 2+d        dpu-<d> — that DPU's kernel busy time, one slice per
//                            batch it participated in (from LaunchStats via
//                            PimExtras::dpu_busy_seconds)
//
// Load the file at ui.perfetto.dev (or chrome://tracing): batch i+1's host
// slices visibly overlap batch i's device slices.
// Multi-host runs (core::MultiHostBatchPipeline) export through the same
// slice/lane machinery with a different lane map:
//   tid 0          coordinator — cluster-filter + interhost-merge per batch
//   tid 1          network     — broadcast / gather fan-out transfers
//   tid 2+h        host-<h>    — that host's schedule + device phase
// The windows come from core::multihost_timeline, the exact recurrence the
// pipeline's elapsed_seconds uses, so the last merge slice ends at
// elapsed_seconds for overlapped runs.
#pragma once

#include <string>
#include <vector>

#include "core/multihost.hpp"
#include "core/pipeline.hpp"
#include "ivf/ivf_index.hpp"

namespace upanns::obs {

class SpanLog;

/// Simulated-time windows of one batch on the host and device lanes.
struct BatchWindows {
  double host_start = 0, host_end = 0;
  double device_start = 0, device_end = 0;
};

/// Lay every batch out on the two lanes under the pipeline's accounting.
/// For overlapped reports the last window's device_end equals
/// elapsed_seconds bit-for-bit; serial runs lay batches back to back.
std::vector<BatchWindows> pipeline_timeline(
    const core::BatchPipelineReport& report);

/// One "complete" (ph "X") slice on a lane.
struct TraceSlice {
  std::string name;
  std::string category;  ///< "host", "device" or "dpu"
  int lane = 0;          ///< Chrome trace tid
  double start_seconds = 0;
  double duration_seconds = 0;
  std::size_t batch = 0;
};

struct PipelineTrace {
  /// lane id -> display name ("host", "device", "dpu-3", ...).
  std::vector<std::pair<int, std::string>> lanes;
  std::vector<TraceSlice> slices;
};

/// Build the slice set: per batch, one slice per leading host stage on the
/// host lane and one per remaining stage on the device lane (stage names and
/// seconds straight from SearchReport::trace), plus one busy slice per
/// active DPU aligned with that batch's kernel-launch stage.
PipelineTrace pipeline_trace(const core::BatchPipelineReport& report);

/// Serialize to Chrome trace-event JSON ("traceEvents" array of X slices and
/// M thread-name metadata; ts/dur in microseconds). When `spans` is non-null
/// its forest is appended as async "b"/"e" event pairs (id = span id, parent
/// and query ids in args), so Perfetto nests per-query spans under their
/// batch; a null span log reproduces the span-free output byte-for-byte.
std::string trace_json(const PipelineTrace& trace,
                       const SpanLog* spans = nullptr);

/// pipeline_trace + trace_json + write to `path` (throws std::runtime_error
/// when the file cannot be written).
void write_trace_file(const std::string& path,
                      const core::BatchPipelineReport& report);

/// Build the multi-host slice set (see file comment): per batch, the
/// coordinator filter and inter-host merge on the coordinator lane, the
/// broadcast/gather fan-out on the network lane, and one schedule + one
/// device slice per active host on that host's lane.
PipelineTrace multihost_trace(const core::MultiHostPipelineReport& report);

/// multihost_trace + trace_json + write to `path`.
void write_multihost_trace_file(const std::string& path,
                                const core::MultiHostPipelineReport& report);

/// One-lane wall-clock trace of the offline build phase: the BuildStats
/// substages (coarse-kmeans, coarse-assign, residual, pq-train, encode)
/// laid back to back on a single "build" lane, so `upanns_cli build
/// --trace-out` shows where the build wall went in the same viewer as the
/// serve traces. Unlike the serve lanes these are host wall-clock seconds,
/// not simulated time.
PipelineTrace build_trace(const ivf::BuildStats& stats);

/// Write `content` to `path` (throws std::runtime_error on failure).
void write_text_file(const std::string& path, const std::string& content);

/// True when `path` exists (any file type).
bool file_exists(const std::string& path);

/// write_text_file, but refuse to clobber: when `path` already exists and
/// `force` is false, log a warning and throw std::runtime_error telling the
/// caller to pass --force. The CLI routes every telemetry output through
/// this so existing artifacts are never silently overwritten.
void write_text_file_guarded(const std::string& path,
                             const std::string& content, bool force);

}  // namespace upanns::obs
