#include "obs/provenance.hpp"

#include "obs/json.hpp"

// Injected as per-source compile definitions by src/CMakeLists.txt so only
// this translation unit rebuilds when the commit changes.
#ifndef UPANNS_GIT_SHA
#define UPANNS_GIT_SHA "unknown"
#endif
#ifndef UPANNS_BUILD_TYPE
#define UPANNS_BUILD_TYPE "unspecified"
#endif
#ifndef UPANNS_BUILD_FLAGS
#define UPANNS_BUILD_FLAGS ""
#endif

namespace upanns::obs {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildProvenance& build_provenance() {
  static const BuildProvenance p = [] {
    BuildProvenance out;
    out.schema_version = "upanns.telemetry.v1";
    out.git_sha = UPANNS_GIT_SHA;
    out.compiler = compiler_string();
    out.build_type = UPANNS_BUILD_TYPE;
    out.flags = UPANNS_BUILD_FLAGS;
    return out;
  }();
  return p;
}

void append_provenance(JsonWriter& w) {
  const BuildProvenance& p = build_provenance();
  w.key("provenance").begin_object();
  w.kv("schema_version", p.schema_version);
  w.kv("git_sha", p.git_sha);
  w.kv("compiler", p.compiler);
  w.kv("build_type", p.build_type);
  w.kv("flags", p.flags);
  w.end_object();
}

}  // namespace upanns::obs
