// Per-query distributed spans — the "what did query #4812 cost, stage by
// stage?" half of the telemetry plane (obs/trace.hpp keeps the per-lane
// batch view).
//
// Spans form a forest: one root span per batch, with three kinds of
// children.
//
//   batch  ──┬── stage / patch / coord / net / host   (lane-level phases,
//            │                                         same numbers as the
//            │                                         Perfetto slices)
//            └── query ──── query-stage                (per-query share of
//                                                      each phase)
//
// Like the Perfetto exporter, spans are assembled *post hoc* from the batch
// pipeline reports and the same deterministic timelines
// (pipeline_timeline / multihost_timeline) — nothing runs inside the
// stages, so a detached run stays byte-identical to main. The only run-time
// hook is SearchReport::query_costs, which the pipeline fills (when a
// SpanLog is attached to the engine) with the batch/query ids and the
// per-query share of the device phase derived from the Alg-2 schedule.
//
// Accounting identity (pinned in test_telemetry): per batch, the "query"
// span durations sum to times.total(), so across a run
//
//   sum(query spans) + sum(patch spans) == serial_seconds
//
// within floating-point accumulation error. Query ids are stable global
// ids: first_query_id + row index, in submission order across batches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/multihost.hpp"
#include "core/pipeline.hpp"

namespace upanns::obs {

/// One node of the span forest. ids are 1-based per SpanLog; parent == 0
/// marks a root. batch/query/host are -1 when the dimension does not apply.
struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::string category;  ///< batch|stage|patch|query|query-stage|coord|net|host
  std::int64_t batch = -1;
  std::int64_t query = -1;  ///< stable global query id
  std::int64_t host = -1;   ///< multi-host lane, -1 on single host
  double start_seconds = 0;
  double duration_seconds = 0;
};

/// Append-only span collection. Attach one to an engine (set_spans) to make
/// the pipeline record per-query cost shares, then assemble with the
/// append_*_spans builders below.
class SpanLog {
 public:
  /// Append `s` with the next id assigned; returns the stored span.
  Span& push(Span s);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }
  void clear() { spans_.clear(); }

 private:
  std::vector<Span> spans_;
};

/// Build the span forest of a single-host batch pipeline run (see file
/// comment). Per-query device shares come from SearchReport::query_costs;
/// batches without it fall back to uniform shares, so the accounting
/// identity holds either way.
void append_pipeline_spans(SpanLog& log,
                           const core::BatchPipelineReport& report);

/// Build the span forest of a multi-host run: coordinator phases
/// (cluster-filter / interhost-merge, category "coord"), the network
/// fan-out ("net"), per-host schedule + device phases ("host"), the
/// mram-patch lead-in ("patch"), and uniform per-query shares of the five
/// serial phases.
void append_multihost_spans(SpanLog& log,
                            const core::MultiHostPipelineReport& report);

/// Serialize to the SpanLog JSON schema: {"provenance": {...},
/// "n_spans": N, "spans": [...]} with round-trip doubles.
std::string span_log_json(const SpanLog& log);

}  // namespace upanns::obs
