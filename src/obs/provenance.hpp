// Build provenance stamped into every telemetry JSON artifact (metrics
// snapshots, span logs, bench reports). bench/metrics_diff refuses to
// compare artifacts whose schema_version or build shape differ, so a gate
// never silently scores apples against oranges after a schema change.
//
// The git sha / build flags are baked in at configure time via per-source
// compile definitions (see src/CMakeLists.txt); builds outside a git
// checkout report "unknown" and are still comparable to each other.
#pragma once

#include <string>

namespace upanns::obs {

class JsonWriter;

struct BuildProvenance {
  /// Version of the telemetry JSON schema itself — bump when the span or
  /// snapshot layout changes incompatibly.
  std::string schema_version;
  std::string git_sha;     ///< short commit sha, "unknown" outside git
  std::string compiler;    ///< e.g. "gcc 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, "unspecified" when empty
  std::string flags;       ///< compile flags of this build
};

/// The provenance of this binary (computed once, immutable).
const BuildProvenance& build_provenance();

/// Write `"provenance": { ... }` as one member of the currently open JSON
/// object.
void append_provenance(JsonWriter& w);

}  // namespace upanns::obs
