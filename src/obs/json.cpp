#include "obs/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace upanns::obs {

// ---------------------------------------------------------------- writer

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) out_ += ',';
    has_item_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!has_item_.empty());
  has_item_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!has_item_.empty());
  has_item_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!pending_key_);
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Exporters only emit control-character escapes; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double num = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = num;
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& k) const {
  if (!is_object()) throw std::out_of_range("JsonValue::at: not an object");
  const auto it = object.find(k);
  if (it == object.end()) {
    throw std::out_of_range("JsonValue::at: missing key '" + k + "'");
  }
  return it->second;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (!is_array() || i >= array.size()) {
    throw std::out_of_range("JsonValue::at: bad array index");
  }
  return array[i];
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace upanns::obs
