// Minimal JSON support for the observability exporters: a streaming writer
// whose double formatting round-trips bit-exactly (%.17g + strtod), and a
// small recursive-descent parser used by tests and tools to validate and
// read back exported files. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace upanns::obs {

/// Streaming JSON writer. Handles commas and nesting; the caller supplies a
/// well-formed sequence of begin/end/key/value calls (debug-checked).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a pre-rendered JSON value verbatim (the caller guarantees it is
  /// well formed; commas and keys are handled as for any other value).
  JsonWriter& raw(std::string_view json);

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  std::vector<bool> has_item_;  ///< per open scope: emitted an item already?
  bool pending_key_ = false;
};

std::string json_escape(std::string_view s);

/// Format a double so that strtod reads back the identical bits.
std::string json_number(double v);

/// Parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& k) const {
    return is_object() && object.count(k) > 0;
  }
  /// Object member access; throws std::out_of_range when missing.
  const JsonValue& at(const std::string& k) const;
  /// Array element access; throws std::out_of_range when out of bounds.
  const JsonValue& at(std::size_t i) const;
};

/// Parse a complete JSON document (throws std::runtime_error on malformed
/// input or trailing garbage).
JsonValue json_parse(std::string_view text);

}  // namespace upanns::obs
