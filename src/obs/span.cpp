#include "obs/span.hpp"

#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace upanns::obs {

Span& SpanLog::push(Span s) {
  s.id = static_cast<std::uint64_t>(spans_.size()) + 1;
  spans_.push_back(std::move(s));
  return spans_.back();
}

namespace {

Span make_span(std::uint64_t parent, const char* name, const char* category,
               std::int64_t batch, double start, double duration) {
  Span s;
  s.parent = parent;
  s.name = name;
  s.category = category;
  s.batch = batch;
  s.start_seconds = start;
  s.duration_seconds = duration;
  return s;
}

}  // namespace

void append_pipeline_spans(SpanLog& log,
                           const core::BatchPipelineReport& report) {
  const std::vector<BatchWindows> windows = pipeline_timeline(report);
  std::uint64_t first_qid = 0;
  for (std::size_t b = 0; b < report.slots.size(); ++b) {
    const core::BatchSlot& slot = report.slots[b];
    const BatchWindows& w = windows[b];
    const std::size_t nq = slot.report.neighbors.size();
    const std::int64_t bi = static_cast<std::int64_t>(b);
    // Prefer the id the pipeline stamped at run time; a report assembled
    // without a span log attached falls back to the running base.
    if (slot.report.query_costs) {
      first_qid = slot.report.query_costs->first_query_id;
    }

    const std::uint64_t root = log.push(make_span(0, "batch", "batch", bi,
                                                  w.host_start,
                                                  w.device_end - w.host_start))
                                   .id;

    // Lay the stages out exactly like the Perfetto exporter: host prefix
    // from host_start, then (patch +) the remainder from device_start.
    struct Placed {
      const core::StageStep* step;
      double start;
    };
    std::vector<Placed> placed;
    std::size_t step = 0;
    double cursor = w.host_start;
    for (; step < slot.report.trace.size(); ++step) {
      const core::StageStep& s = slot.report.trace[step];
      if (s.side != core::StageSide::kHost) break;
      placed.push_back({&s, cursor});
      cursor += s.seconds;
    }
    cursor = w.device_start;
    if (slot.patch_seconds > 0) {
      log.push(make_span(root, "mram-patch", "patch", bi, cursor,
                         slot.patch_seconds));
      cursor += slot.patch_seconds;
    }
    // Drift-controller replication patch follows the mutation patch; it
    // shares the "patch" category so the span accounting identity
    // (query spans + patch spans == serial_seconds) keeps holding.
    if (slot.adapt_seconds > 0) {
      log.push(make_span(root, "adapt-patch", "patch", bi, cursor,
                         slot.adapt_seconds));
      cursor += slot.adapt_seconds;
    }
    for (; step < slot.report.trace.size(); ++step) {
      const core::StageStep& s = slot.report.trace[step];
      placed.push_back({&s, cursor});
      cursor += s.seconds;
    }
    for (const Placed& p : placed) {
      log.push(make_span(root, p.step->name, "stage", bi, p.start,
                         p.step->seconds));
    }

    if (nq == 0) continue;
    const double uniform = 1.0 / static_cast<double>(nq);
    const std::vector<double>* weight =
        slot.report.query_costs ? &slot.report.query_costs->device_weight
                                : nullptr;
    for (std::size_t q = 0; q < nq; ++q) {
      const std::int64_t gid =
          static_cast<std::int64_t>(first_qid + static_cast<std::uint64_t>(q));
      // Host-side stages split uniformly (filter/schedule/merge touch every
      // query alike); device stages split by the scheduled per-query work.
      const double dev_share =
          (weight != nullptr && q < weight->size()) ? (*weight)[q] : uniform;
      double total = 0;
      for (const Placed& p : placed) {
        total += p.step->seconds *
                 (p.step->side == core::StageSide::kHost ? uniform : dev_share);
      }
      Span qs = make_span(root, "query", "query", bi, w.host_start, total);
      qs.query = gid;
      const std::uint64_t qid = log.push(std::move(qs)).id;
      for (const Placed& p : placed) {
        const double share =
            p.step->side == core::StageSide::kHost ? uniform : dev_share;
        Span cs = make_span(qid, p.step->name, "query-stage", bi, p.start,
                            p.step->seconds * share);
        cs.query = gid;
        log.push(std::move(cs));
      }
    }
    first_qid += nq;
  }
}

void append_multihost_spans(SpanLog& log,
                            const core::MultiHostPipelineReport& report) {
  const std::vector<core::MultiHostBatchWindows> windows =
      core::multihost_timeline(report);
  std::uint64_t first_qid = 0;
  for (std::size_t b = 0; b < report.slots.size(); ++b) {
    const core::MultiHostBatchSlot& slot = report.slots[b];
    const core::MultiHostReport& r = slot.report;
    const core::MultiHostBatchWindows& w = windows[b];
    const std::int64_t bi = static_cast<std::int64_t>(b);
    const std::size_t nq = r.neighbors.size();

    const std::uint64_t root = log.push(make_span(0, "batch", "batch", bi,
                                                  w.pre_start,
                                                  w.post_end - w.pre_start))
                                   .id;

    log.push(make_span(root, "cluster-filter", "coord", bi, w.pre_start,
                       r.coord_filter_seconds));
    log.push(make_span(root, "broadcast", "net", bi,
                       w.pre_start + r.coord_filter_seconds,
                       r.broadcast_seconds));
    // The fleet-wide MRAM patch leads the device phase (same position the
    // single-host pipeline gives it).
    const double fleet_start =
        w.device_start + slot.patch_seconds + slot.adapt_seconds;
    if (slot.patch_seconds > 0) {
      log.push(make_span(root, "mram-patch", "patch", bi, w.device_start,
                         slot.patch_seconds));
    }
    if (slot.adapt_seconds > 0) {
      log.push(make_span(root, "adapt-patch", "patch", bi,
                         w.device_start + slot.patch_seconds,
                         slot.adapt_seconds));
    }
    for (std::size_t h = 0; h < r.host_slots.size(); ++h) {
      const core::MultiHostHostSlot& hs = r.host_slots[h];
      if (!hs.active) continue;
      if (hs.host_seconds > 0) {
        Span s = make_span(root, "alg2-schedule", "host", bi, fleet_start,
                           hs.host_seconds);
        s.host = static_cast<std::int64_t>(h);
        log.push(std::move(s));
      }
      if (hs.device_seconds > 0) {
        Span s = make_span(root, "device-phase", "host", bi,
                           fleet_start + hs.host_seconds, hs.device_seconds);
        s.host = static_cast<std::int64_t>(h);
        log.push(std::move(s));
      }
    }
    log.push(make_span(root, "gather", "net", bi, w.post_start,
                       r.gather_seconds));
    log.push(make_span(root, "interhost-merge", "coord", bi,
                       w.post_start + r.gather_seconds,
                       r.coord_merge_seconds));

    if (nq == 0) continue;
    // Every query crosses the same five serial phases, so per-query shares
    // are uniform; their durations sum to r.seconds across the batch.
    const double uniform = 1.0 / static_cast<double>(nq);
    struct Phase {
      const char* name;
      double start;
      double seconds;
    };
    const Phase phases[] = {
        {"cluster-filter", w.pre_start, r.coord_filter_seconds},
        {"broadcast", w.pre_start + r.coord_filter_seconds,
         r.broadcast_seconds},
        {"host-search", fleet_start, r.slowest_host_seconds},
        {"gather", w.post_start, r.gather_seconds},
        {"interhost-merge", w.post_start + r.gather_seconds,
         r.coord_merge_seconds},
    };
    for (std::size_t q = 0; q < nq; ++q) {
      const std::int64_t gid =
          static_cast<std::int64_t>(first_qid + static_cast<std::uint64_t>(q));
      double total = 0;
      for (const Phase& p : phases) total += p.seconds * uniform;
      Span qs = make_span(root, "query", "query", bi, w.pre_start, total);
      qs.query = gid;
      const std::uint64_t qid = log.push(std::move(qs)).id;
      for (const Phase& p : phases) {
        Span cs = make_span(qid, p.name, "query-stage", bi, p.start,
                            p.seconds * uniform);
        cs.query = gid;
        log.push(std::move(cs));
      }
    }
    first_qid += nq;
  }
}

std::string span_log_json(const SpanLog& log) {
  JsonWriter w;
  w.begin_object();
  append_provenance(w);
  w.kv("n_spans", static_cast<std::uint64_t>(log.size()));
  w.key("spans").begin_array();
  for (const Span& s : log.spans()) {
    w.begin_object()
        .kv("id", s.id)
        .kv("parent", s.parent)
        .kv("name", s.name)
        .kv("cat", s.category)
        .kv("batch", s.batch)
        .kv("query", s.query)
        .kv("host", s.host)
        .kv("start_seconds", s.start_seconds)
        .kv("duration_seconds", s.duration_seconds)
        .end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace upanns::obs
