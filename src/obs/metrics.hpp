// MetricsRegistry — named counters, gauges and fixed-bucket histograms for
// the serving core (paper Figs 1/11/16/19 are all readouts of these
// instruments). Instrumented code holds a MetricsSink, a nullable handle
// whose operations inline to a pointer check when no registry is attached,
// so the simulated-time arithmetic and tier-1 bench numbers are untouched
// when observability is off.
//
// Instruments are created on first use and live as long as the registry;
// references returned by counter()/gauge()/histogram() are stable, so hot
// loops can resolve a name once and update through the reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/window.hpp"

namespace upanns::obs {

/// Monotonically increasing integer (events, bytes, cycles).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written floating-point value (ratios, occupancy).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with quantile readout. Bucket i counts values
/// <= bounds[i] (and greater than the previous bound); one implicit overflow
/// bucket catches the rest. Thread-safe via per-bucket atomics.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) { observe_n(v, 1); }
  /// Record `n` observations of the same value (per-query latencies that
  /// the batch accounting can only attribute batch-wide).
  void observe_n(double v, std::uint64_t n);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double mean() const;

  /// q in [0, 1]; linear interpolation inside the chosen bucket, clamped to
  /// the observed min/max. Returns 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Fold another histogram (same bounds) into this one.
  void merge_from(const Histogram& other);

  /// Exponential bounds 1 us .. ~10 s — a good default for simulated stage
  /// and transfer seconds.
  static std::vector<double> default_time_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every instrument, for serialization.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0, min = 0, max = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
  };
  /// Live readout of one rolling window (obs/window.hpp) at snapshot time.
  struct WindowValue {
    std::string name;
    double width_seconds = 0;  ///< configured window width
    double slot_seconds = 0;   ///< expiry granularity (width / slots)
    double now = 0;            ///< latest simulated time the window saw
    std::uint64_t count = 0;   ///< observations in the live window
    double rate = 0;           ///< count / width_seconds
    double p50 = 0, p99 = 0, p999 = 0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  /// Empty unless windowed instruments exist — the snapshot JSON omits the
  /// section entirely then, keeping pre-window consumers byte-compatible.
  std::vector<WindowValue> windows;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Creation takes a lock; the returned reference is stable
  /// for the registry's lifetime, so cache it around hot loops.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation (defaults to time bounds).
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});
  /// Rolling-window histogram (obs/window.hpp). `opts`/`bounds` apply only
  /// on first creation; omitted opts take the registry default
  /// (set_window_options), omitted bounds the time bounds.
  WindowedHistogram& windowed(std::string_view name,
                              std::vector<double> bounds = {});
  WindowedHistogram& windowed(std::string_view name, WindowOptions opts,
                              std::vector<double> bounds = {});
  /// Default WindowOptions for windowed() creations that do not pass their
  /// own — the CLI's --window-seconds/--window-slots knobs land here.
  void set_window_options(WindowOptions opts);
  WindowOptions window_options() const;

  /// Sorted-by-name copy of every instrument.
  MetricsSnapshot snapshot() const;

  /// Fold another registry into this one: counters add, histograms with the
  /// same bounds merge bucket-wise, gauges take the other's value. Used to
  /// combine per-thread/per-shard registries after a parallel phase.
  void merge_from(const MetricsRegistry& other);

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mu_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::vector<Entry<WindowedHistogram>> windows_;
  WindowOptions window_opts_;
};

/// Nullable instrumentation handle. Default-constructed (or built from a
/// null registry) every operation is an inlined pointer check and nothing
/// else — the zero-cost-when-disabled guarantee the pipeline relies on.
class MetricsSink {
 public:
  MetricsSink() = default;
  /*implicit*/ MetricsSink(MetricsRegistry* registry) : reg_(registry) {}

  bool enabled() const { return reg_ != nullptr; }
  MetricsRegistry* registry() const { return reg_; }

  void count(std::string_view name, std::uint64_t n = 1) {
    if (reg_) reg_->counter(name).add(n);
  }
  void set(std::string_view name, double v) {
    if (reg_) reg_->gauge(name).set(v);
  }
  void observe(std::string_view name, double v) {
    if (reg_) reg_->histogram(name).observe(v);
  }
  void observe_n(std::string_view name, double v, std::uint64_t n) {
    if (reg_) reg_->histogram(name).observe_n(v, n);
  }
  /// Record into the named rolling window at simulated time `t`.
  void observe_window(std::string_view name, double t, double v,
                      std::uint64_t n = 1) {
    if (reg_) reg_->windowed(name).observe(t, v, n);
  }

 private:
  MetricsRegistry* reg_ = nullptr;
};

}  // namespace upanns::obs
