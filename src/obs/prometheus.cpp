#include "obs/prometheus.hpp"

#include "obs/json.hpp"

namespace upanns::obs {

namespace {

bool prom_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

void sample(std::string& out, const std::string& series,
            const std::string& labels, double v) {
  out += series;
  out += labels;
  out += ' ';
  out += json_number(v);
  out += '\n';
}

void sample(std::string& out, const std::string& series,
            const std::string& labels, std::uint64_t v) {
  out += series;
  out += labels;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

void type_line(std::string& out, const std::string& series, const char* type) {
  out += "# TYPE ";
  out += series;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "upanns_";
  for (char c : name) out += prom_char(c) ? c : '_';
  return out;
}

std::string prometheus_text(const MetricsSnapshot& s) {
  std::string out;
  for (const auto& c : s.counters) {
    const std::string series = prometheus_name(c.name) + "_total";
    type_line(out, series, "counter");
    sample(out, series, "", c.value);
  }
  for (const auto& g : s.gauges) {
    const std::string series = prometheus_name(g.name);
    type_line(out, series, "gauge");
    sample(out, series, "", g.value);
  }
  for (const auto& h : s.histograms) {
    const std::string series = prometheus_name(h.name);
    type_line(out, series, "histogram");
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cum += h.bucket_counts[b];
      sample(out, series + "_bucket",
             "{le=\"" + json_number(h.bounds[b]) + "\"}", cum);
    }
    cum += h.bucket_counts.empty() ? 0 : h.bucket_counts.back();
    sample(out, series + "_bucket", "{le=\"+Inf\"}", cum);
    sample(out, series + "_sum", "", h.sum);
    sample(out, series + "_count", "", h.count);
  }
  for (const auto& w : s.windows) {
    const std::string base = prometheus_name(w.name) + "_window";
    const std::string labels =
        "{window_seconds=\"" + json_number(w.width_seconds) + "\"}";
    struct Q {
      const char* suffix;
      double value;
    };
    const Q quantiles[] = {
        {"_p50", w.p50}, {"_p99", w.p99}, {"_p999", w.p999}, {"_rate", w.rate}};
    for (const Q& q : quantiles) {
      type_line(out, base + q.suffix, "gauge");
      sample(out, base + q.suffix, labels, q.value);
    }
    type_line(out, base + "_count", "gauge");
    sample(out, base + "_count", labels, w.count);
  }
  return out;
}

}  // namespace upanns::obs
