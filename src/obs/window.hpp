// Rolling time-windowed histograms — the "what is p99 over the last 10
// seconds" half of the telemetry plane (MetricsRegistry keeps the
// cumulative-since-start half).
//
// A WindowedHistogram is a ring of `slots` sub-histograms over a window of
// `width_seconds`. The simulated-time axis is divided into fixed slots of
// width_seconds / slots, *aligned to t = 0* (slot i covers
// [i * slot_width, (i + 1) * slot_width)); the live window is always the
// last `slots` slots including the current partial one, so readouts cover
// between (slots-1)/slots and 1.0 of width_seconds of simulated time.
// Observations carry explicit timestamps because all pipeline time is
// simulated — there is no wall clock to sample.
//
// Slot expiry: observing (or advance()-ing) at time t rotates the ring
// forward to slot floor(t / slot_width), resetting every slot it passes.
// Out-of-order observations inside the live window land in their own slot;
// observations older than the window (e.g. a second pipeline run restarting
// its timeline at 0) are clamped into the oldest live slot so counts are
// never silently dropped.
//
// Quantiles share quantile_from_buckets() with the cumulative Histogram, so
// a windowed p99 over a steady workload matches the cumulative quantile
// within one bucket (pinned in test_telemetry).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace upanns::obs {

/// Sliding-window shape: total width and the number of ring slots it is
/// divided into. More slots = finer expiry granularity, more memory.
struct WindowOptions {
  double width_seconds = 10.0;
  std::size_t slots = 20;
};

/// Shared quantile kernel: linear interpolation inside the chosen bucket of
/// a fixed-bound histogram, clamped to the observed min/max (the extreme
/// buckets use min/max as their missing edge). `counts` has
/// bounds.size() + 1 entries (last = overflow). Returns 0 when empty.
/// Histogram::quantile and WindowedHistogram::quantile both delegate here,
/// which is what makes windowed and cumulative quantiles comparable.
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double min, double max, double q);

/// Ring-of-histograms sliding window (see file comment). Thread-safe via an
/// internal mutex — observations are per-batch accounting events, never the
/// per-record hot path.
class WindowedHistogram {
 public:
  /// `bounds` must be strictly increasing and non-empty; `opts.slots` >= 1
  /// and `opts.width_seconds` > 0 (throws std::invalid_argument otherwise).
  WindowedHistogram(WindowOptions opts, std::vector<double> bounds);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Record `n` observations of value `v` at simulated time `t` (negative t
  /// clamps to 0). Rotates the window forward when t is ahead of it.
  void observe(double t, double v, std::uint64_t n = 1);

  /// Rotate the window forward to time `t` without observing — expires
  /// slots older than the window. Never rotates backwards.
  void advance(double t);

  /// Latest simulated time the window was rotated to (0 before any use).
  double now() const;

  std::uint64_t count() const;  ///< observations in the live window
  double sum() const;
  double rate() const;          ///< count() / width_seconds
  double min() const;           ///< +inf when empty
  double max() const;           ///< -inf when empty
  /// Quantile over the live window (quantile_from_buckets semantics).
  double quantile(double q) const;

  const WindowOptions& options() const { return opts_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged live-window bucket counts; bounds().size() + 1 entries.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Fold another window (same bounds) into this one: rotate both to the
  /// later of the two nows, then add the other's live slots slot-by-slot
  /// (clamping into the oldest live slot where shapes differ). Used when
  /// combining per-shard registries.
  void merge_from(const WindowedHistogram& other);

 private:
  struct Slot {
    std::int64_t index = -1;  ///< absolute slot index on the time axis
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0, max = 0;  ///< valid only when count > 0
  };

  std::int64_t slot_index(double t) const;
  void rotate_to(std::int64_t idx);  ///< requires mu_ held
  Slot& slot_for(std::int64_t idx);  ///< requires mu_ held; clamps to window

  WindowOptions opts_;
  std::vector<double> bounds_;
  double slot_width_ = 0;
  mutable std::mutex mu_;
  std::vector<Slot> ring_;
  std::int64_t cur_ = -1;  ///< -1 = never rotated
};

}  // namespace upanns::obs
