#include "obs/window.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace upanns::obs {

double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double min, double max, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);

  double cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double next = cum + static_cast<double>(counts[b]);
    if (rank <= next || b + 1 == counts.size()) {
      // Interpolate inside bucket b between its lower and upper edge; the
      // extreme buckets use the observed min/max as their missing edge.
      const double lo = b == 0 ? min : bounds[b - 1];
      const double hi = b == bounds.size() ? max : bounds[b];
      const double frac =
          std::clamp((rank - cum) / static_cast<double>(counts[b]), 0.0, 1.0);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    cum = next;
  }
  return max;
}

WindowedHistogram::WindowedHistogram(WindowOptions opts,
                                     std::vector<double> bounds)
    : opts_(opts), bounds_(std::move(bounds)) {
  if (opts_.slots == 0) {
    throw std::invalid_argument("WindowedHistogram: slots == 0");
  }
  if (!(opts_.width_seconds > 0)) {
    throw std::invalid_argument("WindowedHistogram: width_seconds <= 0");
  }
  if (bounds_.empty()) {
    throw std::invalid_argument("WindowedHistogram: empty bucket bounds");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "WindowedHistogram: bounds not strictly increasing");
    }
  }
  slot_width_ = opts_.width_seconds / static_cast<double>(opts_.slots);
  ring_.resize(opts_.slots);
  for (Slot& s : ring_) s.counts.assign(bounds_.size() + 1, 0);
}

std::int64_t WindowedHistogram::slot_index(double t) const {
  if (!(t > 0)) return 0;  // negative (or NaN) timestamps clamp to the origin
  return static_cast<std::int64_t>(std::floor(t / slot_width_));
}

void WindowedHistogram::rotate_to(std::int64_t idx) {
  const std::int64_t S = static_cast<std::int64_t>(opts_.slots);
  auto ring_pos = [S](std::int64_t i) {
    return static_cast<std::size_t>(((i % S) + S) % S);
  };
  auto reset = [this](Slot& s, std::int64_t i) {
    s.index = i;
    std::fill(s.counts.begin(), s.counts.end(), 0);
    s.count = 0;
    s.sum = 0;
    s.min = 0;
    s.max = 0;
  };
  if (cur_ < 0) {
    // First rotation: the window is (idx - S, idx], all slots empty.
    for (std::int64_t i = idx - S + 1; i <= idx; ++i) {
      reset(ring_[ring_pos(i)], i);
    }
    cur_ = idx;
    return;
  }
  if (idx <= cur_) return;  // never rotate backwards
  // Expire every slot the rotation passes (at most S of them matter).
  const std::int64_t from = std::max(cur_ + 1, idx - S + 1);
  for (std::int64_t i = from; i <= idx; ++i) reset(ring_[ring_pos(i)], i);
  if (idx - cur_ >= S) {
    // Jumped past the whole ring: everything expired; reindex the rest too.
    for (std::int64_t i = idx - S + 1; i < from; ++i) {
      reset(ring_[ring_pos(i)], i);
    }
  }
  cur_ = idx;
}

WindowedHistogram::Slot& WindowedHistogram::slot_for(std::int64_t idx) {
  const std::int64_t S = static_cast<std::int64_t>(opts_.slots);
  // Older-than-window observations clamp into the oldest live slot (counts
  // are never dropped — see file comment on restarted timelines).
  idx = std::clamp(idx, cur_ - S + 1, cur_);
  return ring_[static_cast<std::size_t>(((idx % S) + S) % S)];
}

void WindowedHistogram::observe(double t, double v, std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard lk(mu_);
  const std::int64_t idx = slot_index(t);
  if (cur_ < 0 || idx > cur_) rotate_to(idx);
  Slot& s = slot_for(idx);
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  s.counts[b] += n;
  if (s.count == 0) {
    s.min = v;
    s.max = v;
  } else {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.count += n;
  s.sum += v * static_cast<double>(n);
}

void WindowedHistogram::advance(double t) {
  std::lock_guard lk(mu_);
  const std::int64_t idx = slot_index(t);
  if (cur_ < 0 || idx > cur_) rotate_to(idx);
}

double WindowedHistogram::now() const {
  std::lock_guard lk(mu_);
  if (cur_ < 0) return 0.0;
  return static_cast<double>(cur_ + 1) * slot_width_;
}

std::uint64_t WindowedHistogram::count() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  if (cur_ < 0) return n;
  for (const Slot& s : ring_) n += s.count;
  return n;
}

double WindowedHistogram::sum() const {
  std::lock_guard lk(mu_);
  double v = 0;
  if (cur_ < 0) return v;
  for (const Slot& s : ring_) v += s.sum;
  return v;
}

double WindowedHistogram::rate() const {
  return static_cast<double>(count()) / opts_.width_seconds;
}

double WindowedHistogram::min() const {
  std::lock_guard lk(mu_);
  double v = std::numeric_limits<double>::infinity();
  if (cur_ < 0) return v;
  for (const Slot& s : ring_) {
    if (s.count > 0) v = std::min(v, s.min);
  }
  return v;
}

double WindowedHistogram::max() const {
  std::lock_guard lk(mu_);
  double v = -std::numeric_limits<double>::infinity();
  if (cur_ < 0) return v;
  for (const Slot& s : ring_) {
    if (s.count > 0) v = std::max(v, s.max);
  }
  return v;
}

std::vector<std::uint64_t> WindowedHistogram::bucket_counts() const {
  std::lock_guard lk(mu_);
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  if (cur_ < 0) return out;
  for (const Slot& s : ring_) {
    for (std::size_t b = 0; b < out.size(); ++b) out[b] += s.counts[b];
  }
  return out;
}

double WindowedHistogram::quantile(double q) const {
  return quantile_from_buckets(bounds_, bucket_counts(), min(), max(), q);
}

void WindowedHistogram::merge_from(const WindowedHistogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument(
        "WindowedHistogram::merge_from: bucket bounds differ");
  }
  // Copy the other's live slots under its lock, then fold under ours
  // (avoids holding both mutexes at once — no lock-order concern).
  std::vector<Slot> theirs;
  std::int64_t their_cur;
  double their_width;
  {
    std::lock_guard lk(other.mu_);
    theirs = other.ring_;
    their_cur = other.cur_;
    their_width = other.slot_width_;
  }
  if (their_cur < 0) return;
  std::lock_guard lk(mu_);
  const std::int64_t their_now_idx =
      slot_index(static_cast<double>(their_cur + 1) * their_width -
                 0.5 * their_width);
  if (cur_ < 0 || their_now_idx > cur_) rotate_to(their_now_idx);
  for (const Slot& s : theirs) {
    if (s.count == 0) continue;
    // Re-time the slot onto our axis by its midpoint.
    const double mid = (static_cast<double>(s.index) + 0.5) * their_width;
    Slot& dst = slot_for(slot_index(mid));
    for (std::size_t b = 0; b < dst.counts.size(); ++b) {
      dst.counts[b] += s.counts[b];
    }
    if (dst.count == 0) {
      dst.min = s.min;
      dst.max = s.max;
    } else {
      dst.min = std::min(dst.min, s.min);
      dst.max = std::max(dst.max, s.max);
    }
    dst.count += s.count;
    dst.sum += s.sum;
  }
}

}  // namespace upanns::obs
