// Prometheus text-exposition (version 0.0.4) rendering of a metrics
// snapshot, so a scrape endpoint or a file sink can feed the standard
// monitoring stack without any new dependency.
//
// Naming conventions (DESIGN.md §11): every series carries the `upanns_`
// prefix; registry names are sanitized by mapping every character outside
// [a-zA-Z0-9_] (the registry uses dots) to '_'. Counters gain the `_total`
// suffix; histograms render the standard cumulative `_bucket{le="..."}` /
// `_sum` / `_count` triple; rolling windows render as gauges suffixed
// `_window_p50/_p99/_p999/_rate/_count`, labeled with their configured
// width (`window_seconds="..."`) so dashboards can tell a 10 s p99 from a
// 60 s one.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace upanns::obs {

/// `upanns_` + name with every character outside [a-zA-Z0-9_] mapped to '_'.
std::string prometheus_name(std::string_view name);

/// Render a full snapshot as Prometheus text exposition: one `# TYPE` line
/// per series followed by its samples, in snapshot (sorted-by-name) order.
std::string prometheus_text(const MetricsSnapshot& s);

}  // namespace upanns::obs
