#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"

namespace upanns::obs {

std::vector<BatchWindows> pipeline_timeline(
    const core::BatchPipelineReport& report) {
  std::vector<BatchWindows> out;
  out.reserve(report.slots.size());
  double device_free = 0;  // when the device finished the previous batch
  double host_free = 0;    // when the host may start the next prefix
  for (const core::BatchSlot& slot : report.slots) {
    BatchWindows w;
    w.host_start = host_free;
    w.host_end = w.host_start + slot.host_seconds;
    if (report.overlapped) {
      // Device waits for both its input (host prefix) and the device itself;
      // the next host prefix starts as soon as this device phase does.
      w.device_start = std::max(w.host_end, device_free);
      host_free = w.device_start;
    } else {
      w.device_start = w.host_end;
      host_free = w.device_start + slot.device_seconds;
    }
    w.device_end = w.device_start + slot.device_seconds;
    device_free = w.device_end;
    out.push_back(w);
  }
  return out;
}

PipelineTrace pipeline_trace(const core::BatchPipelineReport& report) {
  PipelineTrace t;
  t.lanes.emplace_back(0, "host");
  t.lanes.emplace_back(1, "device");
  std::size_t max_dpu_lane = 0;
  std::vector<std::size_t> patch_slices;  // lane fixed up once lanes are known
  std::vector<std::size_t> adapt_slices;

  const std::vector<BatchWindows> windows = pipeline_timeline(report);
  for (std::size_t b = 0; b < report.slots.size(); ++b) {
    const core::BatchSlot& slot = report.slots[b];
    const BatchWindows& w = windows[b];

    // Host prefix = the leading kHost trace entries, then the device-bound
    // remainder — the same split BatchPipeline::run uses for host_seconds.
    std::size_t step = 0;
    double cursor = w.host_start;
    for (; step < slot.report.trace.size(); ++step) {
      const core::StageStep& s = slot.report.trace[step];
      if (s.side != core::StageSide::kHost) break;
      t.slices.push_back({s.name, "host", 0, cursor, s.seconds, b});
      cursor += s.seconds;
    }
    cursor = w.device_start;
    // An incremental MRAM patch (mutations since the previous batch) leads
    // the device phase: device_seconds already includes it, so the stage
    // slices start after it and still end exactly at w.device_end.
    if (slot.patch_seconds > 0) {
      patch_slices.push_back(t.slices.size());
      t.slices.push_back(
          {"mram-patch", "patch", 0, cursor, slot.patch_seconds, b});
      cursor += slot.patch_seconds;
    }
    // A replication patch from the drift controller (copy adjust or
    // relocate) follows the mutation patch; device_seconds covers it too.
    if (slot.adapt_seconds > 0) {
      adapt_slices.push_back(t.slices.size());
      t.slices.push_back(
          {"adapt-patch", "patch", 0, cursor, slot.adapt_seconds, b});
      cursor += slot.adapt_seconds;
    }
    double launch_start = cursor;
    for (; step < slot.report.trace.size(); ++step) {
      const core::StageStep& s = slot.report.trace[step];
      t.slices.push_back({s.name, "device", 1, cursor, s.seconds, b});
      if (std::string_view(s.name) == "kernel-launch") launch_start = cursor;
      cursor += s.seconds;
    }

    // Per-DPU busy slices under this batch's kernel-launch stage.
    if (slot.report.pim.has_value()) {
      const auto& busy = slot.report.pim->dpu_busy_seconds;
      for (std::size_t d = 0; d < busy.size(); ++d) {
        if (busy[d] <= 0) continue;
        t.slices.push_back({"dpu-kernel", "dpu", static_cast<int>(2 + d),
                            launch_start, busy[d], b});
        max_dpu_lane = std::max(max_dpu_lane, d);
      }
    }
  }

  for (std::size_t d = 0; d <= max_dpu_lane; ++d) {
    t.lanes.emplace_back(static_cast<int>(2 + d),
                         "dpu-" + std::to_string(d));
  }
  // Patch and adapt lanes only exist when some batch actually used them, so
  // read-only (and adapt-off) runs export a byte-identical trace.
  int next_lane = static_cast<int>(2 + max_dpu_lane + 1);
  if (!patch_slices.empty()) {
    for (std::size_t i : patch_slices) t.slices[i].lane = next_lane;
    t.lanes.emplace_back(next_lane, "mram-patch");
    ++next_lane;
  }
  if (!adapt_slices.empty()) {
    for (std::size_t i : adapt_slices) t.slices[i].lane = next_lane;
    t.lanes.emplace_back(next_lane, "adapt-patch");
  }
  return t;
}

std::string trace_json(const PipelineTrace& trace, const SpanLog* spans) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  w.begin_object()
      .kv("ph", "M")
      .kv("name", "process_name")
      .kv("pid", 0)
      .kv("tid", 0)
      .key("args")
      .begin_object()
      .kv("name", "upanns")
      .end_object()
      .end_object();
  for (const auto& [tid, name] : trace.lanes) {
    w.begin_object()
        .kv("ph", "M")
        .kv("name", "thread_name")
        .kv("pid", 0)
        .kv("tid", tid)
        .key("args")
        .begin_object()
        .kv("name", name)
        .end_object()
        .end_object();
  }
  for (const TraceSlice& s : trace.slices) {
    w.begin_object()
        .kv("ph", "X")
        .kv("name", s.name)
        .kv("cat", s.category)
        .kv("pid", 0)
        .kv("tid", s.lane)
        .kv("ts", s.start_seconds * 1e6)
        .kv("dur", s.duration_seconds * 1e6)
        .key("args")
        .begin_object()
        .kv("batch", static_cast<std::uint64_t>(s.batch))
        .end_object()
        .end_object();
  }
  if (spans != nullptr) {
    // Async event pairs ("b"/"e" matched by cat+id) — Perfetto renders them
    // as nestable tracks above the lane slices.
    for (const Span& s : spans->spans()) {
      w.begin_object()
          .kv("ph", "b")
          .kv("name", s.name)
          .kv("cat", s.category)
          .kv("id", s.id)
          .kv("pid", 0)
          .kv("tid", 0)
          .kv("ts", s.start_seconds * 1e6)
          .key("args")
          .begin_object()
          .kv("parent", s.parent)
          .kv("batch", s.batch)
          .kv("query", s.query)
          .end_object()
          .end_object();
      w.begin_object()
          .kv("ph", "e")
          .kv("name", s.name)
          .kv("cat", s.category)
          .kv("id", s.id)
          .kv("pid", 0)
          .kv("tid", 0)
          .kv("ts", (s.start_seconds + s.duration_seconds) * 1e6)
          .end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.take();
}

PipelineTrace multihost_trace(const core::MultiHostPipelineReport& report) {
  PipelineTrace t;
  t.lanes.emplace_back(0, "coordinator");
  t.lanes.emplace_back(1, "network");
  std::size_t max_host_lane = 0;
  std::vector<std::size_t> patch_slices;  // lane fixed up once lanes are known
  std::vector<std::size_t> adapt_slices;

  const std::vector<core::MultiHostBatchWindows> windows =
      core::multihost_timeline(report);
  for (std::size_t b = 0; b < report.slots.size(); ++b) {
    const core::MultiHostBatchSlot& slot = report.slots[b];
    const core::MultiHostReport& r = slot.report;
    const core::MultiHostBatchWindows& w = windows[b];

    t.slices.push_back({"cluster-filter", "host", 0, w.pre_start,
                        r.coord_filter_seconds, b});
    t.slices.push_back({"broadcast", "network", 1,
                        w.pre_start + r.coord_filter_seconds,
                        r.broadcast_seconds, b});
    // A fleet-wide MRAM patch leads the device phase (device_seconds
    // already includes it), so the host slices start after it and still end
    // exactly at w.device_end.
    const double fleet_start =
        w.device_start + slot.patch_seconds + slot.adapt_seconds;
    if (slot.patch_seconds > 0) {
      patch_slices.push_back(t.slices.size());
      t.slices.push_back({"mram-patch", "patch", 0, w.device_start,
                          slot.patch_seconds, b});
    }
    if (slot.adapt_seconds > 0) {
      adapt_slices.push_back(t.slices.size());
      t.slices.push_back({"adapt-patch", "patch", 0,
                          w.device_start + slot.patch_seconds,
                          slot.adapt_seconds, b});
    }
    for (std::size_t h = 0; h < r.host_slots.size(); ++h) {
      const core::MultiHostHostSlot& s = r.host_slots[h];
      if (!s.active) continue;
      const int lane = static_cast<int>(2 + h);
      if (s.host_seconds > 0) {
        t.slices.push_back({"alg2-schedule", "host", lane, fleet_start,
                            s.host_seconds, b});
      }
      if (s.device_seconds > 0) {
        t.slices.push_back({"device-phase", "device", lane,
                            fleet_start + s.host_seconds,
                            s.device_seconds, b});
      }
      max_host_lane = std::max(max_host_lane, h);
    }
    t.slices.push_back(
        {"gather", "network", 1, w.post_start, r.gather_seconds, b});
    t.slices.push_back({"interhost-merge", "host", 0,
                        w.post_start + r.gather_seconds,
                        r.coord_merge_seconds, b});
  }

  for (std::size_t h = 0; h <= max_host_lane; ++h) {
    t.lanes.emplace_back(static_cast<int>(2 + h),
                         "host-" + std::to_string(h));
  }
  // Patch and adapt lanes only exist when some batch actually used them, so
  // read-only (and adapt-off) runs export a byte-identical trace.
  int next_lane = static_cast<int>(2 + max_host_lane + 1);
  if (!patch_slices.empty()) {
    for (std::size_t i : patch_slices) t.slices[i].lane = next_lane;
    t.lanes.emplace_back(next_lane, "mram-patch");
    ++next_lane;
  }
  if (!adapt_slices.empty()) {
    for (std::size_t i : adapt_slices) t.slices[i].lane = next_lane;
    t.lanes.emplace_back(next_lane, "adapt-patch");
  }
  return t;
}

void write_multihost_trace_file(const std::string& path,
                                const core::MultiHostPipelineReport& report) {
  write_text_file(path, trace_json(multihost_trace(report)));
}

PipelineTrace build_trace(const ivf::BuildStats& stats) {
  PipelineTrace t;
  t.lanes.emplace_back(0, "build");
  double cursor = 0;
  const auto slice = [&](const char* name, double seconds) {
    t.slices.push_back({name, "build", 0, cursor, seconds, 0});
    cursor += seconds;
  };
  slice("coarse-kmeans", stats.kmeans_seconds);
  slice("coarse-assign", stats.assign_seconds);
  slice("residual", stats.residual_seconds);
  slice("pq-train", stats.pq_train_seconds);
  slice("encode", stats.encode_seconds);
  return t;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f.write(content.data(),
          static_cast<std::streamsize>(content.size()));
  if (!f) throw std::runtime_error("short write to " + path);
}

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

void write_text_file_guarded(const std::string& path,
                             const std::string& content, bool force) {
  if (!force && file_exists(path)) {
    common::log_warn("refusing to overwrite existing file " + path +
                     " (pass --force to overwrite)");
    throw std::runtime_error("refusing to overwrite existing file " + path +
                             " (pass --force to overwrite)");
  }
  write_text_file(path, content);
}

void write_trace_file(const std::string& path,
                      const core::BatchPipelineReport& report) {
  write_text_file(path, trace_json(pipeline_trace(report)));
}

}  // namespace upanns::obs
