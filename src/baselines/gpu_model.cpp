#include "baselines/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/hw_specs.hpp"

namespace upanns::baselines {

StageTimes GpuModel::stage_times(const QueryWorkProfile& p) {
  StageTimes t;
  const double nq = static_cast<double>(p.n_queries);

  // (a) Cluster filtering: a dense nq x |C| GEMM — compute-bound, trivial.
  {
    const double flops = nq * static_cast<double>(p.n_clusters) *
                         static_cast<double>(p.dim) * 2.0;
    t.cluster_filter = flops / hw::kGpuFlops + hw::kGpuSyncLatency;
  }

  // (b) LUT construction: nprobe x 256 x dim x 2 flops per query, massively
  // parallel.
  {
    const double flops = nq * static_cast<double>(p.nprobe) * 256.0 *
                         static_cast<double>(p.dim) * 2.0;
    t.lut_build = flops / hw::kGpuFlops + hw::kGpuSyncLatency;
  }

  // (c) Distance calculation: stream candidate codes at HBM bandwidth. The
  // written distance array (f32 per candidate) also crosses HBM.
  {
    const double bytes =
        static_cast<double>(p.total_candidates) *
        (static_cast<double>(p.m) + 4.0 /*dist write*/);
    t.distance_calc = bytes / hw::kGpuMemBandwidth + hw::kGpuSyncLatency;
  }

  // (d) Top-k selection: the low-parallelism stage. Faiss's warp-select
  // reads every candidate distance back (HBM) but sustains far below peak
  // because the merge network serializes, and each query tile ends with a
  // stream synchronization; cost also grows with k (Fig 18).
  {
    const double cand = static_cast<double>(p.total_candidates);
    const double select_time = cand / hw::kGpuTopkCandidatesPerSec;
    const double k_time = nq * static_cast<double>(p.k) * hw::kGpuTopkPerKCost;
    // One sync per query tile of ~256 queries.
    const double syncs = std::ceil(nq / 256.0) * hw::kGpuSyncLatency * 8.0;
    t.topk = select_time + k_time + syncs;
  }
  return t;
}

GpuCapacity GpuModel::capacity(const QueryWorkProfile& p) {
  GpuCapacity c;
  // Codes + 8-byte ids + coarse centroids + codebooks.
  c.index_bytes =
      static_cast<double>(p.dataset_n) * (static_cast<double>(p.m) + 8.0) +
      static_cast<double>(p.n_clusters) * static_cast<double>(p.dim) * 4.0 +
      static_cast<double>(p.m) * 256.0 * 4.0;
  c.workspace_bytes = kMinQueryTile * static_cast<double>(p.nprobe) *
                      static_cast<double>(p.max_cluster) *
                      kWorkspaceBytesPerCandidate;
  c.fits = c.demand() <= hw::kGpuMemCapacity;
  return c;
}

}  // namespace upanns::baselines
