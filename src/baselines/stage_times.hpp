// Per-stage timing of the four-stage IVFPQ online pipeline (paper Fig 2):
// (a) cluster filtering, (b) LUT construction, (c) distance calculation,
// (d) top-k selection — plus any host<->device transfer. All architecture
// models (CPU roofline, GPU roofline, PIM simulator) report through this
// struct so breakdown figures (Fig 1, Fig 19) compare like with like.
#pragma once

#include <cstddef>

namespace upanns::baselines {

struct StageTimes {
  double cluster_filter = 0;
  double lut_build = 0;
  double distance_calc = 0;
  double topk = 0;
  double transfer = 0;

  double total() const {
    return cluster_filter + lut_build + distance_calc + topk + transfer;
  }

  StageTimes& operator+=(const StageTimes& o) {
    cluster_filter += o.cluster_filter;
    lut_build += o.lut_build;
    distance_calc += o.distance_calc;
    topk += o.topk;
    transfer += o.transfer;
    return *this;
  }
};

/// The work a query batch performs, measured from a functional run (or
/// constructed analytically for at-scale extrapolation, e.g. Fig 1's 1B row).
struct QueryWorkProfile {
  std::size_t n_queries = 0;
  std::size_t n_clusters = 0;    ///< |C|
  std::size_t nprobe = 0;
  std::size_t dim = 0;
  std::size_t m = 0;             ///< PQ code bytes
  std::size_t k = 0;             ///< top-k
  std::size_t total_candidates = 0;  ///< points scanned across the batch
  std::size_t dataset_n = 0;     ///< points in the index
  std::size_t max_cluster = 0;   ///< largest inverted list touched
};

/// Linear-work extrapolation to a larger dataset (see DESIGN.md): IVFPQ scan
/// work is strictly linear in inverted-list lengths, so scaling candidates,
/// dataset size and max cluster by n_target/n_actual yields the at-scale
/// profile exactly (|C|, nprobe, dim, m, k are scale-free).
inline QueryWorkProfile scale_profile(QueryWorkProfile p, std::size_t target_n) {
  if (p.dataset_n == 0) return p;
  const double f = static_cast<double>(target_n) /
                   static_cast<double>(p.dataset_n);
  p.total_candidates =
      static_cast<std::size_t>(static_cast<double>(p.total_candidates) * f);
  p.max_cluster =
      static_cast<std::size_t>(static_cast<double>(p.max_cluster) * f);
  p.dataset_n = target_n;
  return p;
}

}  // namespace upanns::baselines
