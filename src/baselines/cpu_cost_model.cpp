#include "baselines/cpu_cost_model.hpp"

#include <algorithm>
#include <cstdint>

#include "common/hw_specs.hpp"

namespace upanns::baselines {

namespace {
// Sustained integer/table-lookup throughput (ops/s). LUT additions are
// gather-dominated and do not reach FMA peak; ~4 ops/cycle/core sustained.
constexpr double kCpuScanOps =
    static_cast<double>(hw::kCpuCores) * hw::kCpuFreqHz * 4.0;

double compute_time(double flops) { return flops / hw::kCpuFlops; }
double memory_time(double bytes) { return bytes / hw::kCpuMemBandwidth; }

// Effective bandwidth when the scanned working set fits in the last-level
// cache (2 x 11 MB): small (million-scale) indexes are scanned mostly from
// cache, which is why the distance stage only dominates at large scale.
constexpr double kLlcBytes = 2.0 * 11.0 * 1024 * 1024;
constexpr double kLlcBandwidth = 400.0e9;

// Locality efficiency of the streamed scan. Higher IVF counts mean shorter
// inverted lists scattered through DRAM; each list restarts the prefetch
// ramp and TLB walk, so sustained bandwidth degrades as lists shrink. This
// is the effect behind the paper's observation that CPU QPS does *not* rise
// linearly with IVF while the DPU (no deep cache hierarchy) is insensitive
// to it (Sec 5.2). Half-efficiency point ~1 MB per list.
constexpr double kListRampBytes = 4.0 * 1024 * 1024;

double locality_efficiency(const QueryWorkProfile& p) {
  if (p.n_queries == 0 || p.nprobe == 0) return 1.0;
  const double avg_list_bytes =
      static_cast<double>(p.total_candidates) /
      (static_cast<double>(p.n_queries) * static_cast<double>(p.nprobe)) *
      static_cast<double>(p.m + 4);
  const double ramp = avg_list_bytes / (avg_list_bytes + kListRampBytes);
  // Floor: whatever fraction of the index fits the LLC is served from cache
  // regardless of list lengths — million-scale indexes scan mostly cached.
  const double index_bytes =
      static_cast<double>(p.dataset_n) * static_cast<double>(p.m + 4);
  const double cached = index_bytes > 0
                            ? std::min(1.0, kLlcBytes / index_bytes)
                            : 1.0;
  return std::max(ramp, cached);
}
}  // namespace

std::size_t CpuCostModel::scan_bytes(const QueryWorkProfile& p) {
  return p.total_candidates * (p.m + sizeof(std::uint32_t));
}

StageTimes CpuCostModel::stage_times(const QueryWorkProfile& p) {
  StageTimes t;
  const double nq = static_cast<double>(p.n_queries);

  // (a) Cluster filtering: nq x |C| centroid distances (2 flops/dim).
  {
    const double flops = nq * static_cast<double>(p.n_clusters) *
                         static_cast<double>(p.dim) * 2.0;
    const double bytes = nq == 0 ? 0
                                 : static_cast<double>(p.n_clusters) *
                                       static_cast<double>(p.dim) * 4.0;
    // Centroids are re-streamed once per batch, amortized across queries.
    t.cluster_filter = std::max(compute_time(flops), memory_time(bytes));
  }

  // (b) LUT construction: one LUT per (query, probed cluster) because
  // residuals are cluster-relative: nprobe x 256 x dim x 2 flops per query.
  {
    const double flops = nq * static_cast<double>(p.nprobe) * 256.0 *
                         static_cast<double>(p.dim) * 2.0;
    t.lut_build = compute_time(flops);
  }

  // (c) Distance calculation: stream every candidate's codes; m table
  // lookups + m adds each. Memory-bound at scale, cache-resident when small.
  {
    const double bytes = static_cast<double>(scan_bytes(p));
    const double index_bytes =
        static_cast<double>(p.dataset_n) * static_cast<double>(p.m + 4);
    const double bw = index_bytes <= kLlcBytes
                          ? kLlcBandwidth
                          : hw::kCpuMemBandwidth * locality_efficiency(p);
    const double ops =
        static_cast<double>(p.total_candidates) * static_cast<double>(p.m) * 2.0;
    t.distance_calc = std::max(bytes / bw, ops / kCpuScanOps);
  }

  // (d) Top-k: one compare per candidate plus heap updates for the rare
  // improvements; fused into the scan on CPUs, hence tiny (paper Fig 19).
  {
    const double ops = static_cast<double>(p.total_candidates) * 1.0 +
                       nq * static_cast<double>(p.k) * 32.0;
    t.topk = ops / kCpuScanOps;
  }
  return t;
}

}  // namespace upanns::baselines
