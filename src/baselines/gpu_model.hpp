// "Faiss-GPU" analytical model of IVFPQ on an A100-80GB (see DESIGN.md §1 for
// the substitution rationale). Three behaviours from the paper are modeled:
//   1. the distance stage is HBM-bandwidth-bound and therefore fast;
//   2. the top-k (k-selection) stage has limited parallelism and per-kernel
//      CUDA synchronization, consuming 64-89% of runtime and growing with k
//      (Fig 18/19);
//   3. an 80 GB capacity check: the index plus per-probe scan workspace must
//      fit device memory; billion-scale DEEP1B configurations beyond
//      nprobe=64 exceed it (the blue 'X' marks of Fig 12).
#pragma once

#include "baselines/stage_times.hpp"

namespace upanns::baselines {

struct GpuCapacity {
  bool fits = true;
  double index_bytes = 0;
  double workspace_bytes = 0;

  double demand() const { return index_bytes + workspace_bytes; }
};

class GpuModel {
 public:
  static StageTimes stage_times(const QueryWorkProfile& p);

  /// Device-memory demand for a configuration. The scan workspace is the
  /// per-(query, probe) distance buffer sized by the largest inverted list
  /// (`p.max_cluster`); query batches are tiled, and kMinQueryTile is the
  /// smallest tile the scan shrinks to before reporting OOM. With the
  /// measured DEEP1B-like near-duplicate skew (max list ~4% of n) this
  /// reproduces the paper's Fig 12 OOM pattern: DEEP1B fails beyond
  /// nprobe=64 while SIFT1B/SPACEV1B (max list <3.5%) fit everywhere.
  static GpuCapacity capacity(const QueryWorkProfile& p);

  static constexpr double kMinQueryTile = 2.0;
  /// bytes per (candidate) in the scan workspace: f32 distance + i32 index.
  static constexpr double kWorkspaceBytesPerCandidate = 8.0;
};

}  // namespace upanns::baselines
