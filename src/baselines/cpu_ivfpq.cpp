#include "baselines/cpu_ivfpq.hpp"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.hpp"
#include "ivf/cluster_stats.hpp"

namespace upanns::baselines {

CpuSearchResult CpuIvfpqSearcher::search(const data::Dataset& queries,
                                         const SearchParams& params) const {
  const auto probes = ivf::filter_batch(index_, queries, params.nprobe);
  return search_with_probes(queries, probes, params);
}

CpuSearchResult CpuIvfpqSearcher::search_with_probes(
    const data::Dataset& queries,
    const std::vector<std::vector<std::uint32_t>>& probes,
    const SearchParams& params) const {
  CpuSearchResult out;
  out.neighbors.resize(queries.n);

  const std::size_t dim = index_.dim();
  const std::size_t m = index_.pq_m();
  std::atomic<std::size_t> total_candidates{0};
  std::atomic<std::size_t> max_cluster{0};

  common::ThreadPool::global().parallel_for(
      0, queries.n,
      [&](std::size_t q) {
        const float* qv = queries.row(q);
        common::BoundedMaxHeap heap(params.k);
        std::vector<float> residual(dim);
        std::vector<float> lut(m * quant::kPqKsub);
        std::size_t scanned = 0;
        std::size_t local_max = 0;
        for (std::uint32_t c : probes[q]) {
          const ivf::InvertedList& list = index_.list(c);
          if (list.size() == 0) continue;
          index_.residual(qv, c, residual.data());
          index_.pq().compute_lut(residual.data(), lut.data());
          if (!list.has_tombstones()) {
            for (std::size_t i = 0; i < list.size(); ++i) {
              const float d =
                  index_.pq().adc_distance(lut.data(), list.code(i, m));
              heap.push(d, list.ids[i]);
            }
            scanned += list.size();
          } else {
            // Mutated list: dead slots are skipped before the ADC scan, so
            // candidates match a compacted rebuild exactly.
            std::size_t live = 0;
            for (std::size_t i = 0; i < list.size(); ++i) {
              if (list.is_dead(i)) continue;
              const float d =
                  index_.pq().adc_distance(lut.data(), list.code(i, m));
              heap.push(d, list.ids[i]);
              ++live;
            }
            scanned += live;
          }
          local_max = std::max(local_max, list.size());
        }
        out.neighbors[q] = heap.take_sorted();
        total_candidates.fetch_add(scanned, std::memory_order_relaxed);
        std::size_t prev = max_cluster.load(std::memory_order_relaxed);
        while (local_max > prev &&
               !max_cluster.compare_exchange_weak(prev, local_max)) {
        }
      },
      1);

  out.profile.n_queries = queries.n;
  out.profile.n_clusters = index_.n_clusters();
  out.profile.nprobe = queries.n > 0 ? probes[0].size() : params.nprobe;
  out.profile.dim = dim;
  out.profile.m = m;
  out.profile.k = params.k;
  out.profile.total_candidates = total_candidates.load();
  out.profile.dataset_n = index_.n_points();
  out.profile.max_cluster = max_cluster.load();
  out.times = CpuCostModel::stage_times(out.profile);
  return out;
}

}  // namespace upanns::baselines
