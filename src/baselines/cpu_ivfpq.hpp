// "Faiss-CPU" baseline: a functional multithreaded IVFPQ query pipeline over
// our IvfIndex. Results are exact IVFPQ/ADC results (used as the accuracy
// reference for the PIM paths); reported times come from CpuCostModel so the
// comparison against the PIM simulator lives in one time domain.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/cpu_cost_model.hpp"
#include "common/topk.hpp"
#include "data/dataset.hpp"
#include "ivf/ivf_index.hpp"

namespace upanns::baselines {

struct SearchParams {
  std::size_t nprobe = 32;
  std::size_t k = 10;
};

struct CpuSearchResult {
  std::vector<std::vector<common::Neighbor>> neighbors;  ///< per query, ascending
  QueryWorkProfile profile;
  StageTimes times;

  double qps() const {
    const double t = times.total();
    return t > 0 ? static_cast<double>(profile.n_queries) / t : 0;
  }
};

class CpuIvfpqSearcher {
 public:
  explicit CpuIvfpqSearcher(const ivf::IvfIndex& index) : index_(index) {}

  /// Search a query batch. Host threads parallelize over queries.
  CpuSearchResult search(const data::Dataset& queries,
                         const SearchParams& params) const;

  /// Search using precomputed probe lists (lets callers share one cluster-
  /// filtering pass across architecture baselines).
  CpuSearchResult search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes,
      const SearchParams& params) const;

  const ivf::IvfIndex& index() const { return index_; }

 private:
  const ivf::IvfIndex& index_;
};

}  // namespace upanns::baselines
