// Roofline cost model of Faiss-style IVFPQ on the Table 1 CPU platform
// (2x Xeon Silver 4110, 85.3 GB/s). Each stage is charged
// max(compute-bound, memory-bound) time; the batch parallelizes across all
// cores so aggregate flop and bandwidth figures apply directly.
//
// The model reproduces the paper's two headline CPU observations without any
// per-figure tuning: at million scale the LUT-construction stage dominates
// (compute-bound), while at billion scale the distance-calculation stage is
// memory-bandwidth-bound and takes ~99.5% of query time (Fig 1, Fig 19).
#pragma once

#include "baselines/stage_times.hpp"

namespace upanns::baselines {

class CpuCostModel {
 public:
  static StageTimes stage_times(const QueryWorkProfile& p);

  /// Bytes streamed from memory during the distance-calculation stage:
  /// every scanned candidate reads its m code bytes plus its id.
  static std::size_t scan_bytes(const QueryWorkProfile& p);
};

}  // namespace upanns::baselines
