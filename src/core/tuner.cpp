#include "core/tuner.hpp"

#include <algorithm>
#include <stdexcept>

namespace upanns::core {

TuneResult tune_nprobe(
    const ivf::IvfIndex& index, const data::Dataset& validation_queries,
    const std::vector<std::vector<common::Neighbor>>& ground_truth,
    const TuneOptions& options) {
  if (validation_queries.n == 0 ||
      ground_truth.size() != validation_queries.n) {
    throw std::invalid_argument("tune_nprobe: bad validation set");
  }

  std::vector<std::size_t> grid = options.grid;
  if (grid.empty()) {
    for (std::size_t p = 1; p < index.n_clusters(); p *= 2) grid.push_back(p);
    grid.push_back(index.n_clusters());
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  baselines::CpuIvfpqSearcher searcher(index);
  TuneResult result;
  for (const std::size_t nprobe : grid) {
    baselines::SearchParams params;
    params.nprobe = nprobe;
    params.k = options.k;
    const auto res = searcher.search(validation_queries, params);
    const double recall =
        data::recall_at_k(ground_truth, res.neighbors, options.k);
    result.curve.emplace_back(nprobe, recall);
    result.nprobe = nprobe;
    result.recall = recall;
    if (recall >= options.target_recall) {
      result.target_met = true;
      break;
    }
  }
  return result;
}

}  // namespace upanns::core
