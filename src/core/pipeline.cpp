// Online half of UpAnnsEngine (see pipeline.hpp). The stage bodies are the
// former UpAnnsEngine::search_with_probes monolith, split so every step is
// named and individually timed; the simulated-time arithmetic is unchanged.
#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "baselines/cpu_cost_model.hpp"
#include "common/hw_specs.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "pim/transfer.hpp"

namespace upanns::core {

// --- Host stage (a): cluster filtering, charged on the CPU roofline.
double ClusterFilterStage::run(QueryPipeline& pl, BatchContext& ctx) {
  const data::Dataset& queries = *ctx.queries;
  if (ctx.probes == nullptr) {
    ctx.owned_probes =
        ivf::filter_batch(pl.index(), queries, pl.options().nprobe);
    ctx.probes = &ctx.owned_probes;
  }
  baselines::QueryWorkProfile p;
  p.n_queries = queries.n;
  p.n_clusters = pl.index().n_clusters();
  p.dim = pl.index().dim();
  p.m = pl.index().pq_m();
  p.k = pl.options().k;
  const double seconds = baselines::CpuCostModel::stage_times(p).cluster_filter;
  ctx.report.times.cluster_filter += seconds;
  return seconds;
}

// --- Scheduling (Algorithm 2), also host-side; O(|Q| * nprobe).
double ScheduleStage::run(QueryPipeline& pl, BatchContext& ctx) {
  const std::vector<std::size_t> sizes = pl.index().list_sizes();
  ctx.sched =
      pl.options().opt_scheduling
          ? schedule_queries(*ctx.probes, pl.placement(), sizes, pl.sink())
          : schedule_naive(*ctx.probes, pl.placement(), sizes, pl.sink());
  const double seconds =
      static_cast<double>(ctx.sched.total_assignments()) * 16.0 / hw::kCpuFlops;
  ctx.report.times.cluster_filter += seconds;
  return seconds;
}

// --- Per-DPU launch inputs (unique query tables + assignment lists), then
// the push transfer: UpANNS pads per-DPU buffers to a uniform size so the
// transfer runs concurrently (Sec 2.2); PIM-naive pays the serialized path.
double PushStage::run(QueryPipeline& pl, BatchContext& ctx) {
  const data::Dataset& queries = *ctx.queries;
  const std::size_t nq = queries.n;
  const std::size_t dim = pl.index().dim();
  const std::size_t k = pl.options().k;
  const std::size_t ndpu = pl.options().n_dpus;

  ctx.inputs.assign(ndpu, DpuLaunchInput{});
  ctx.push_bytes.assign(ndpu, 0);
  const std::size_t read_bytes_cfg =
      pl.options().mram_read_vectors == 0
          ? 0
          : pl.options().mram_read_vectors *
                (pl.mode() == KernelMode::kNaiveRaw
                     ? pl.index().pq_m()
                     : (pl.index().pq_m() + 1) * sizeof(std::uint16_t));

  common::ThreadPool::global().parallel_for(
      0, ndpu,
      [&](std::size_t d) {
        const auto& assigns = ctx.sched.per_dpu[d];
        if (assigns.empty()) return;
        DpuLaunchInput& in = ctx.inputs[d];
        in.k = k;
        in.mram_read_bytes = read_bytes_cfg;

        std::vector<std::int32_t> local_of(nq, -1);
        std::vector<std::uint32_t> uniq;
        for (const Assignment& a : assigns) {
          if (local_of[a.query] < 0) {
            local_of[a.query] = static_cast<std::int32_t>(uniq.size());
            uniq.push_back(a.query);
          }
          in.items.push_back(
              {static_cast<std::uint32_t>(local_of[a.query]),
               static_cast<std::uint32_t>(
                   pl.per_dpu(d).cluster_slot[a.cluster])});
        }
        in.n_queries = static_cast<std::uint32_t>(uniq.size());

        // Scratch MRAM: query table + result slots (rewound every batch).
        pim::Dpu& dpu = pl.system().dpu(d);
        dpu.mram_rewind(pl.per_dpu(d).static_mark);
        in.queries_off =
            dpu.mram_alloc(uniq.size() * dim * sizeof(float), "batch-queries");
        for (std::size_t i = 0; i < uniq.size(); ++i) {
          dpu.host_write(in.queries_off + i * dim * sizeof(float),
                         queries.row(uniq[i]), dim * sizeof(float));
        }
        in.results_off = dpu.mram_alloc(uniq.size() * k * 8, "batch-results");

        ctx.push_bytes[d] =
            uniq.size() * dim * sizeof(float) + in.items.size() * 4;
      },
      1);

  std::size_t max_bytes = 0;
  for (std::size_t b : ctx.push_bytes) max_bytes = std::max(max_bytes, b);
  pim::TransferStats ts;
  if (pl.options().opt_scheduling) {
    ts = pim::TransferEngine::uniform(ndpu, max_bytes);
  } else {
    ts = pim::TransferEngine::batch(ctx.push_bytes);
  }
  ctx.report.times.transfer += ts.seconds;
  ctx.report.pim->bytes_pushed = ts.bytes;
  ctx.report.pim->push_parallel = ts.parallel;
  pim::TransferEngine::record(pl.sink(), "push", ts);
  return ts.seconds;
}

// --- Launch: one kernel over all DPUs; the slowest DPU sets the critical
// path, plus the fixed host launch latency.
double LaunchStage::run(QueryPipeline& pl, BatchContext& ctx) {
  const std::size_t ndpu = pl.options().n_dpus;
  PimExtras& px = *ctx.report.pim;

  ctx.kernels.assign(ndpu, nullptr);
  for (std::size_t d = 0; d < ndpu; ++d) {
    if (!ctx.inputs[d].items.empty()) {
      ctx.kernels[d] = pl.acquire_kernel(d, ctx.inputs[d]);
    }
  }
  ctx.launch = pl.system().launch(
      [&](std::size_t d) -> pim::DpuKernel* { return ctx.kernels[d]; },
      pl.options().n_tasklets);
  px.dpu_busy_seconds = ctx.launch.dpu_seconds;
  {
    // Every DPU that holds data participates in the ratio: a placement that
    // starves half the fleet must read as imbalanced, so zero-busy DPUs
    // count as long as they have at least one resident cluster (dropping
    // them made max-over-mean report ~1.0 for arbitrarily skewed batches).
    // Truly empty DPUs (no clusters placed) stay excluded — they can never
    // receive work.
    std::vector<double> busy;
    for (std::size_t d = 0; d < ndpu; ++d) {
      if (ctx.launch.dpu_seconds[d] > 0 ||
          !pl.placement().dpu_clusters[d].empty()) {
        busy.push_back(ctx.launch.dpu_seconds[d]);
      }
    }
    px.balance_ratio = common::max_over_mean(busy);
  }
  {
    std::vector<double> loads;
    for (std::size_t d = 0; d < ndpu; ++d) {
      if (!ctx.sched.per_dpu[d].empty()) {
        loads.push_back(ctx.sched.dpu_workload[d]);
      }
    }
    px.schedule_balance = common::max_over_mean(loads);
  }
  ctx.report.times.transfer += hw::kHostLaunchLatency;
  if (pl.sink().enabled()) {
    pl.sink().set("pim.balance_ratio", px.balance_ratio);
    pl.sink().set("pim.schedule_balance", px.schedule_balance);
  }

  // Per-DPU stage attribution; the slowest DPU sets the launch-critical
  // breakdown (at-scale extrapolation re-derives the max after scaling).
  px.dpu_stage_seconds.assign(ndpu, PimExtras::DpuStageSeconds{});
  for (std::size_t d = 0; d < ndpu; ++d) {
    if (!ctx.kernels[d]) continue;
    px.total_instructions += ctx.launch.dpu_stats[d].instructions;
    px.total_dma_cycles += ctx.launch.dpu_stats[d].dma_cycles;
    const KernelStageCycles stages =
        ctx.kernels[d]->attribute_stages(ctx.launch.dpu_stats[d].phase_cycles);
    px.dpu_stage_seconds[d] = {
        pim::DpuCostModel::cycles_to_seconds(stages.lut_build),
        pim::DpuCostModel::cycles_to_seconds(stages.distance),
        pim::DpuCostModel::cycles_to_seconds(stages.topk)};
  }
  double crit_seconds = 0;
  if (ctx.kernels[ctx.launch.slowest_dpu]) {
    const auto& crit = px.dpu_stage_seconds[ctx.launch.slowest_dpu];
    ctx.report.times.lut_build = crit.lut;
    ctx.report.times.distance_calc = crit.dist;
    ctx.report.times.topk = crit.topk;
    crit_seconds = crit.total();
  }
  return crit_seconds + hw::kHostLaunchLatency;
}

// --- Gather: read each DPU's per-query top-k slots back to the host (a
// second uniform-size transfer) and collect kernel-side statistics.
double GatherStage::run(QueryPipeline& pl, BatchContext& ctx) {
  const std::size_t nq = ctx.queries->n;
  const std::size_t k = pl.options().k;
  const std::size_t ndpu = pl.options().n_dpus;
  PimExtras& px = *ctx.report.pim;

  ctx.per_query_lists.assign(nq, {});
  ctx.max_gather = 0;
  for (std::size_t d = 0; d < ndpu; ++d) {
    if (!ctx.kernels[d]) continue;
    const DpuLaunchInput& in = ctx.inputs[d];
    ctx.max_gather = std::max(
        ctx.max_gather, static_cast<std::size_t>(in.n_queries) * k * 8);
    std::vector<std::uint32_t> packed(2 * k);
    // Recover the unique-query order used when building the input.
    std::vector<std::int32_t> local_of(nq, -1);
    std::vector<std::uint32_t> uniq;
    for (const Assignment& a : ctx.sched.per_dpu[d]) {
      if (local_of[a.query] < 0) {
        local_of[a.query] = static_cast<std::int32_t>(uniq.size());
        uniq.push_back(a.query);
      }
    }
    for (std::size_t i = 0; i < uniq.size(); ++i) {
      pl.system().dpu(d).host_read(in.results_off + i * k * 8, packed.data(),
                                   k * 8);
      std::vector<common::Neighbor> list;
      for (std::size_t j = 0; j < k; ++j) {
        const std::uint32_t bits = packed[2 * j];
        const std::uint32_t id = packed[2 * j + 1];
        if (bits == 0xFFFFFFFFu && id == 0xFFFFFFFFu) break;  // unused slot
        float dist;
        std::memcpy(&dist, &bits, sizeof(dist));
        list.push_back({dist, id});
      }
      ctx.per_query_lists[uniq[i]].push_back(std::move(list));
    }
    px.merge_insertions += ctx.kernels[d]->merge_insertions();
    px.merge_pruned += ctx.kernels[d]->merge_pruned();
    px.scanned_records += ctx.kernels[d]->scanned_records();
    if (ctx.kernels[d]->scanned_records() > 0) {
      px.length_reduction +=
          (1.0 - static_cast<double>(ctx.kernels[d]->scanned_elements()) /
                     (static_cast<double>(ctx.kernels[d]->scanned_records()) *
                      static_cast<double>(pl.index().pq_m()))) *
          static_cast<double>(ctx.kernels[d]->scanned_records());
    }
  }
  if (px.scanned_records > 0) {
    px.length_reduction /= static_cast<double>(px.scanned_records);
  }

  const pim::TransferStats ts =
      pim::TransferEngine::uniform(ndpu, ctx.max_gather);
  ctx.report.times.transfer += ts.seconds;
  px.bytes_gathered = ts.bytes;
  pim::TransferEngine::record(pl.sink(), "gather", ts);
  if (pl.sink().enabled()) {
    pl.sink().count("kernel.merge_insertions", px.merge_insertions);
    pl.sink().count("kernel.merge_pruned", px.merge_pruned);
    pl.sink().count("kernel.scanned_records", px.scanned_records);
  }
  return ts.seconds;
}

// --- Final host merge: ~(lists * k) heap ops per query. Charged to the
// transfer/host bucket so the DPU top-k stage stays scale-attributable.
double MergeStage::run(QueryPipeline& pl, BatchContext& ctx) {
  const std::size_t nq = ctx.queries->n;
  const std::size_t k = pl.options().k;

  ctx.report.neighbors.resize(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    ctx.report.neighbors[q] =
        common::merge_sorted_topk(ctx.per_query_lists[q], k);
  }
  double ops = 0;
  for (const auto& lists : ctx.per_query_lists) {
    ops += static_cast<double>(lists.size()) * static_cast<double>(k) * 8.0;
  }
  const double seconds = ops / hw::kCpuFlops;
  ctx.report.times.transfer += seconds;
  return seconds;
}

QueryKernel* QueryPipeline::acquire_kernel(std::size_t d,
                                           const DpuLaunchInput& input) {
  if (kernel_pool_.size() != options().n_dpus) {
    kernel_pool_.resize(options().n_dpus);
  }
  std::unique_ptr<QueryKernel>& slot = kernel_pool_[d];
  if (!slot) {
    slot = std::make_unique<QueryKernel>(per_dpu(d).layout, input, mode(),
                                         options().opt_prune_topk);
  } else {
    slot->rebind(input);
  }
  return slot.get();
}

QueryPipeline::QueryPipeline(UpAnnsEngine& engine) : engine_(engine) {
  stages_.push_back(std::make_unique<ClusterFilterStage>());
  stages_.push_back(std::make_unique<ScheduleStage>());
  stages_.push_back(std::make_unique<PushStage>());
  stages_.push_back(std::make_unique<LaunchStage>());
  stages_.push_back(std::make_unique<GatherStage>());
  stages_.push_back(std::make_unique<MergeStage>());
}

SearchReport QueryPipeline::run(
    const data::Dataset& queries,
    const std::vector<std::vector<std::uint32_t>>* probes,
    std::uint64_t batch_id, std::uint64_t first_query_id,
    std::vector<std::vector<std::uint32_t>>* probes_out) {
  BatchContext ctx;
  ctx.queries = &queries;
  ctx.probes = probes;
  ctx.report.pim.emplace();

  obs::MetricsSink s = sink();
  for (const auto& stage : stages_) {
    const double seconds = stage->run(*this, ctx);
    ctx.report.trace.push_back({stage->name(), seconds, stage->side()});
    if (s.enabled()) {
      s.observe(std::string("pipeline.stage.") + stage->name() + ".seconds",
                seconds);
    }
  }
  if (s.enabled()) {
    s.count("pipeline.batches");
    s.count("pipeline.queries", queries.n);
    s.observe("pipeline.batch.seconds", ctx.report.times.total());
  }

  // Per-query cost attribution for the span assembler — only when a span
  // log is attached, so detached runs skip the capture entirely (the field
  // is never serialized, keeping reports byte-identical either way).
  if (spans() != nullptr) {
    QueryCosts qc;
    qc.batch_id = batch_id;
    qc.first_query_id = first_query_id;
    std::vector<double> weight(queries.n, 0.0);
    const std::vector<std::size_t> sizes = index().list_sizes();
    double total = 0;
    for (const auto& assigns : ctx.sched.per_dpu) {
      for (const Assignment& a : assigns) {
        // One unit per assignment plus the scanned list length — the same
        // work measure Alg-2 balances on.
        const double v = 1.0 + static_cast<double>(sizes[a.cluster]);
        weight[a.query] += v;
        total += v;
      }
    }
    if (total > 0) {
      for (double& v : weight) v /= total;
    } else if (queries.n > 0) {
      std::fill(weight.begin(), weight.end(),
                1.0 / static_cast<double>(queries.n));
    }
    qc.device_weight = std::move(weight);
    ctx.report.query_costs = std::move(qc);
  }

  // Hand the probe lists to the caller (adaptive drift loop) after every
  // stage consumed them; moving the filter-owned vector changes nothing the
  // stages produced, so captured and uncaptured runs stay bit-identical.
  if (probes_out != nullptr) {
    if (ctx.probes == &ctx.owned_probes) {
      *probes_out = std::move(ctx.owned_probes);
    } else {
      *probes_out = *ctx.probes;
    }
  }

  ctx.report.pim->n_dpus = options().n_dpus;
  const double total = ctx.report.times.total();
  ctx.report.qps =
      total > 0 ? static_cast<double>(queries.n) / total : 0;
  ctx.report.qps_per_watt = pim::qps_per_watt(
      ctx.report.qps, pim::Platform::kPim, options().n_dpus);
  return ctx.report;
}

SearchReport UpAnnsEngine::search(const data::Dataset& queries) {
  return QueryPipeline(*this).run(queries, nullptr);
}

SearchReport UpAnnsEngine::search_with_probes(
    const data::Dataset& queries,
    const std::vector<std::vector<std::uint32_t>>& probes) {
  return QueryPipeline(*this).run(queries, &probes);
}

double leading_host_seconds(const SearchReport& report) {
  double seconds = 0;
  for (const StageStep& step : report.trace) {
    if (step.side != StageSide::kHost) break;
    seconds += step.seconds;
  }
  return seconds;
}

BatchStream::BatchStream(UpAnnsEngine& engine, BatchPipelineOptions opts)
    : engine_(engine), opts_(opts), pipeline_(engine) {
  out_.overlapped = opts_.overlap;
}

const BatchSlot& BatchStream::run_batch(const data::Dataset& batch) {
  BatchSlot slot;
  if (engine_.updatable() && engine_.needs_patch()) {
    const UpAnnsEngine::PatchStats ps = engine_.patch_dpus();
    slot.patch_seconds = ps.seconds;
    slot.patch_bytes = ps.bytes_written;
  }
  // Mutations land first so an adaptive replica added below is built from
  // fresh encodings; the adaptation itself is a drain point — the previous
  // batch fully finished, the next has not started.
  const bool adapting = opts_.adapt != AdaptMode::kOff;
  if (adapting) apply_pending_adaptation(slot);

  std::vector<std::vector<std::uint32_t>> probes;
  slot.report = pipeline_.run(batch, nullptr, out_.slots.size(),
                              first_query_id_, adapting ? &probes : nullptr);
  first_query_id_ += batch.n;

  // Host prefix = the leading kHost trace entries (filter + schedule);
  // the device phase is the exact remainder of the batch total plus any
  // MRAM patch or adaptation work, so host + device always reproduces
  // times.total() (+ patch + adapt) bit-for-bit. With no mutations pending
  // and no controller action both extras are 0 and the accounting matches
  // the read-only overload exactly.
  slot.host_seconds = leading_host_seconds(slot.report);
  slot.device_seconds = slot.report.times.total() - slot.host_seconds +
                        slot.patch_seconds + slot.adapt_seconds;

  out_.n_queries += batch.n;
  out_.serial_seconds +=
      slot.report.times.total() + slot.patch_seconds + slot.adapt_seconds;
  out_.slots.push_back(std::move(slot));
  if (adapting) observe_and_decide(probes, out_.slots.back());
  return out_.slots.back();
}

void BatchStream::apply_pending_adaptation(BatchSlot& slot) {
  if (pending_.action == AdaptAction::kNone) return;
  const double balance_pre = adapt_ ? adapt_->busy_balance() : 0.0;

  if (pending_.action == AdaptAction::kRelocate) {
    // Major drift: full Algorithm-1 re-placement over the *resident* cluster
    // set (never-placed clusters stay out, so the searchable set — and with
    // it every neighbor list — is unchanged), sized for the profile the
    // controller decided on.
    ivf::ClusterStats stats;
    stats.sizes = engine_.index().list_sizes();
    stats.frequencies = pending_freqs_;
    for (std::size_t c = 0; c < stats.sizes.size(); ++c) {
      if (engine_.placement().cluster_dpus[c].empty()) stats.sizes[c] = 0;
    }
    stats.workloads.resize(stats.sizes.size());
    for (std::size_t c = 0; c < stats.sizes.size(); ++c) {
      stats.workloads[c] =
          static_cast<double>(stats.sizes[c]) * stats.frequencies[c];
    }
    const UpAnnsEngine::PatchStats ps = engine_.relocate(stats);
    pipeline_.reset_kernels();  // pooled kernels referenced the old layouts
    slot.adapt_seconds = ps.seconds;
    slot.adapt_bytes = ps.bytes_written;
  } else {
    const UpAnnsEngine::AdaptStats as =
        engine_.apply_copy_adjustments(pending_.adjustments, pending_freqs_);
    slot.adapt_seconds = as.seconds;
    slot.adapt_bytes = as.bytes_written;
  }
  slot.adapt_action = pending_.action;
  slot.adapt_drift = pending_.drift;

  obs::MetricsSink sink = engine_.metrics();
  if (sink.enabled()) {
    sink.count(std::string("adapt.actions.") +
               adapt_action_name(pending_.action));
    sink.set("adapt.drift", pending_.drift);
    sink.set("adapt.balance_pre", balance_pre);
  }

  // The placement now matches the decided profile: restart drift from it.
  adapt_->set_baseline(pending_freqs_);
  pending_ = AdaptReport{};
  pending_freqs_.clear();
  observed_since_action_ = 0;
  adapt_applied_last_ = true;
}

void BatchStream::observe_and_decide(
    const std::vector<std::vector<std::uint32_t>>& probes,
    const BatchSlot& slot) {
  if (!adapt_) {
    adapt_ = std::make_unique<AdaptiveController>(
        engine_.index().n_clusters(), opts_.adaptive);
    adapt_->set_baseline(engine_.placement_frequencies());
  }
  adapt_->observe_batch(probes);
  if (slot.report.pim) {
    adapt_->observe_busy(slot.report.pim->dpu_busy_seconds);
    if (adapt_applied_last_) {
      // First batch served on the adjusted placement: record the post-action
      // balance next to the pre-action one booked at apply time.
      obs::MetricsSink sink = engine_.metrics();
      if (sink.enabled()) {
        sink.set("adapt.balance_post", slot.report.pim->balance_ratio);
      }
      adapt_applied_last_ = false;
    }
  }
  ++observed_since_action_;

  if (pending_.action != AdaptAction::kNone) return;  // awaiting drain point
  if (observed_since_action_ < opts_.adaptive.window_batches) return;

  const std::vector<std::size_t> sizes = engine_.index().list_sizes();
  const Placement& placement = engine_.placement();
  std::vector<std::size_t> copies(sizes.size(), 0);
  std::vector<std::size_t> resident_sizes = sizes;
  double total_workload = 0;
  const std::vector<double> freqs = adapt_->window_mean();
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    copies[c] = placement.cluster_dpus[c].size();
    // Only clusters with a resident replica participate: adopting a
    // never-placed cluster online would change the searchable set (and in a
    // multi-host shard would steal another host's clusters).
    if (copies[c] == 0) resident_sizes[c] = 0;
    total_workload += static_cast<double>(resident_sizes[c]) * freqs[c];
  }
  const double w_bar =
      total_workload / static_cast<double>(placement.n_dpus());

  AdaptReport rep =
      adapt_->recommend(resident_sizes, copies, w_bar,
                        /*allow_relocate=*/opts_.adapt == AdaptMode::kFull);
  if (rep.action == AdaptAction::kNone) return;
  pending_ = std::move(rep);
  pending_freqs_ = freqs;
}

BatchPipelineReport BatchStream::finish() {
  BatchPipelineReport out = std::move(out_);
  out_ = BatchPipelineReport{};
  out_.overlapped = opts_.overlap;
  first_query_id_ = 0;

  if (!opts_.overlap || out.slots.empty()) {
    out.elapsed_seconds = out.serial_seconds;
  } else {
    // Two-phase software pipeline: while batch i occupies the device, the
    // host prepares batch i+1. elapsed = h_0 + sum max(d_i, h_{i+1}) + d_n.
    out.elapsed_seconds = out.slots.front().host_seconds;
    for (std::size_t i = 0; i + 1 < out.slots.size(); ++i) {
      out.elapsed_seconds += std::max(out.slots[i].device_seconds,
                                      out.slots[i + 1].host_seconds);
    }
    out.elapsed_seconds += out.slots.back().device_seconds;
  }
  out.qps = out.elapsed_seconds > 0
                ? static_cast<double>(out.n_queries) / out.elapsed_seconds
                : 0;

  obs::MetricsSink sink = engine_.metrics();
  if (sink.enabled()) {
    // The same deterministic timeline the Perfetto exporter draws gives
    // every batch a completion time, which is what the rolling windows key
    // on (all time is simulated — there is no wall clock to sample).
    const std::vector<obs::BatchWindows> timeline = obs::pipeline_timeline(out);
    for (std::size_t i = 0; i < out.slots.size(); ++i) {
      const BatchSlot& slot = out.slots[i];
      sink.observe("batch_pipeline.slot.host_seconds", slot.host_seconds);
      sink.observe("batch_pipeline.slot.device_seconds", slot.device_seconds);
      // Only written when a patch actually ran, so read-only runs keep a
      // byte-identical metrics report.
      if (slot.patch_seconds > 0) {
        sink.observe("batch_pipeline.slot.patch_seconds", slot.patch_seconds);
        sink.count("batch_pipeline.patch_bytes", slot.patch_bytes);
      }
      if (slot.adapt_seconds > 0) {
        sink.observe("batch_pipeline.slot.adapt_seconds", slot.adapt_seconds);
        sink.count("batch_pipeline.adapt_bytes", slot.adapt_bytes);
      }
      // Per-query latency under the pipeline's accounting: submission to
      // batch completion, recorded once per query of the batch, both
      // cumulatively and into the rolling window at its completion time.
      // The serve layer books measured latencies instead (see
      // BatchPipelineOptions::book_query_latency).
      if (opts_.book_query_latency) {
        const double latency = timeline[i].device_end - timeline[i].host_start;
        const std::uint64_t nq = slot.report.neighbors.size();
        sink.observe_n("query.latency_seconds", latency, nq);
        sink.observe_window("query.latency_seconds", timeline[i].device_end,
                            latency, nq);
      }
    }
    sink.count("batch_pipeline.runs");
    sink.set("batch_pipeline.overlap_saved_seconds",
             out.serial_seconds - out.elapsed_seconds);
    sink.set("batch_pipeline.qps", out.qps);
  }
  if (engine_.spans() != nullptr) {
    obs::append_pipeline_spans(*engine_.spans(), out);
  }
  return out;
}

BatchPipeline::BatchPipeline(UpAnnsEngine& engine, BatchPipelineOptions opts)
    : engine_(engine), opts_(opts) {}

BatchPipelineReport BatchPipeline::run(
    const std::vector<data::Dataset>& batches) {
  return run(batches, MutationHook{});
}

BatchPipelineReport BatchPipeline::run(
    const std::vector<data::Dataset>& batches, const MutationHook& mutate) {
  BatchStream stream(engine_, opts_);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (mutate) mutate(b);
    stream.run_batch(batches[b]);
  }
  return stream.finish();
}

std::vector<data::Dataset> split_batches(const data::Dataset& queries,
                                         std::size_t batch_size) {
  if (batch_size == 0) throw std::invalid_argument("batch_size == 0");
  std::vector<data::Dataset> out;
  for (std::size_t start = 0; start < queries.n; start += batch_size) {
    const std::size_t n = std::min(batch_size, queries.n - start);
    data::Dataset b;
    b.dim = queries.dim;
    b.n = n;
    b.values.assign(queries.values.begin() + start * queries.dim,
                    queries.values.begin() + (start + n) * queries.dim);
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace upanns::core
