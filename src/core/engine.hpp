// UpAnnsEngine — the end-to-end system (paper Fig 5).
//
// Offline (build, engine_build.cpp): collect cluster stats from a query
// history, encode every cluster (Opt3), place replicas across DPUs (Opt1),
// and load MRAM images (codebooks, centroids, id arrays, token streams,
// combo tables).
//
// Online (search, pipeline.cpp): the query path is a sequence of named stage
// objects — cluster filter, Alg-2 scheduling, uniform-size transfer, kernel
// launch, gather, host merge — run by core::QueryPipeline. All timing is
// simulated (see DESIGN.md): the report contains the four-stage breakdown,
// a per-stage trace, per-DPU busy times, balance ratio, energy metrics and
// CAE statistics. `core::BatchPipeline` streams multiple batches through the
// stages with host/device double-buffering.
//
// Every optimization can be toggled independently, which is how the ablation
// benches (Figs 11, 13-17) are driven; `UpAnnsOptions::pim_naive()` yields
// the paper's PIM-naive baseline (random placement, naive scheduling, raw
// codes, unpruned merge — but with the Opt2 resource management retained,
// exactly as Sec 5.1 defines it).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "baselines/stage_times.hpp"
#include "common/topk.hpp"
#include "core/backend.hpp"
#include "core/cae.hpp"
#include "core/dpu_kernel.hpp"
#include "core/placement.hpp"
#include "core/scheduler.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "pim/dpu.hpp"
#include "pim/energy.hpp"

namespace upanns::obs {
class MetricsRegistry;
class SpanLog;
}  // namespace upanns::obs

namespace upanns::core {

class QueryPipeline;

struct UpAnnsOptions {
  std::size_t n_dpus = 896;          ///< 7 DIMMs (Table 1)
  unsigned n_tasklets = 11;          ///< pipeline saturation point (Fig 13)
  std::size_t k = 10;
  std::size_t nprobe = 64;
  /// MRAM read granularity for the distance stage, in vectors (Fig 17;
  /// default 16 per Sec 5.4.2). 0 = one maximal DMA per chunk.
  std::size_t mram_read_vectors = 16;
  /// Fractional slack reserved past each list region when loading MRAM
  /// images, so a list that grows via insert() patches in place instead of
  /// relocating. Offsets are timing-invisible (DMA is charged by bytes), so
  /// the slack never changes read-only results.
  double mram_list_slack = 0.25;

  bool opt_placement = true;         ///< Opt1 offline (Algorithm 1)
  bool opt_scheduling = true;        ///< Opt1 online (Algorithm 2)
  bool opt_cae = true;               ///< Opt3
  bool opt_prune_topk = true;        ///< Opt4
  /// When CAE is off, UpANNS still streams direct-address tokens; PIM-naive
  /// streams raw u8 codes and pays address arithmetic.
  bool naive_raw_codes = false;

  CaeOptions cae;
  PlacementOptions placement;
  std::uint64_t seed = 11;

  static UpAnnsOptions upanns() { return UpAnnsOptions{}; }
  static UpAnnsOptions pim_naive() {
    UpAnnsOptions o;
    o.opt_placement = false;
    o.opt_scheduling = false;
    o.opt_cae = false;
    o.opt_prune_topk = false;
    o.naive_raw_codes = true;
    return o;
  }
};

class UpAnnsEngine {
 public:
  /// Build the PIM-resident index. `stats` supplies s_i / f_i for placement.
  UpAnnsEngine(const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
               UpAnnsOptions options);

  /// Updatable engine: same build, but the engine may mutate the index
  /// (upsert/remove/compact) and incrementally patch the MRAM images via
  /// patch_dpus(). With no mutations issued, behavior is bit-identical to
  /// the read-only overload.
  UpAnnsEngine(ivf::IvfIndex& index, const ivf::ClusterStats& stats,
               UpAnnsOptions options);

  /// Search one batch.
  SearchReport search(const data::Dataset& queries);

  /// Search with externally computed probe lists (shared with baselines).
  SearchReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes);

  const UpAnnsOptions& options() const { return options_; }

  // Runtime-tunable knobs. Only knobs that leave the loaded MRAM images
  // valid are settable; topology (n_dpus, n_tasklets, placement options)
  // is fixed at build — change it by constructing a new engine, and adapt
  // to workload drift via relocate(). (This replaced a mutable_options()
  // accessor that silently desynced MRAM images when topology fields were
  // written after build.)
  void set_k(std::size_t k);
  void set_nprobe(std::size_t nprobe);
  void set_mram_read_vectors(std::size_t vectors);

  /// Attach (or detach, with nullptr) a metrics registry. The pipeline
  /// stages, the PIM system and the transfer model record into it; with no
  /// registry the instrumentation is an inlined no-op and reports are
  /// bit-identical (test_obs parity test). The registry must outlive the
  /// engine or a subsequent set_metrics(nullptr).
  void set_metrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attach (or detach) a span log. The pipeline then stamps
  /// SearchReport::query_costs (batch/query ids + per-query device shares)
  /// so obs::append_pipeline_spans can assemble per-query spans post hoc;
  /// with no log attached the capture is skipped entirely and reports are
  /// bit-identical. The log must outlive the engine or a set_spans(nullptr).
  void set_spans(obs::SpanLog* spans) { spans_ = spans; }
  obs::SpanLog* spans() const { return spans_; }

  const Placement& placement() const { return placement_; }
  const ivf::IvfIndex& index() const { return index_; }
  pim::PimSystem& system() { return *system_; }

  /// Average CAE length reduction over resident clusters (build-time stat).
  double build_length_reduction() const { return build_length_reduction_; }

  /// One incremental patch pass: delta-sync of changed list segments.
  struct PatchStats {
    std::uint64_t bytes_written = 0;  ///< MRAM bytes actually pushed
    std::size_t lists_patched = 0;    ///< dirty (cluster, replica) images
    std::size_t regions_moved = 0;    ///< relocations past the slack cap
    double seconds = 0;               ///< simulated host->DPU push time
  };

  /// Rebuild the replica layout for a new frequency profile — the
  /// major-drift path of Sec 4.1.2 (fresh Algorithm 1 pass + full MRAM
  /// reload, without retraining the index). Returns the reload cost so the
  /// online pipelines can charge it to a batch slot: bytes_written is the
  /// full image, seconds the per-DPU batch push; callers that relocate
  /// between workloads may ignore it.
  PatchStats relocate(const ivf::ClusterStats& stats);

  /// Result of one apply_copy_adjustments() pass. Retires are host-side
  /// bookkeeping (regions return to the MRAM free list) and cost nothing;
  /// only newly loaded replica images ship bytes.
  struct AdaptStats {
    std::size_t replicas_added = 0;
    std::size_t replicas_retired = 0;
    std::uint64_t bytes_written = 0;  ///< MRAM bytes pushed for new replicas
    double seconds = 0;               ///< simulated host->DPU push time
  };

  /// The minor-drift path of Sec 4.1.2: re-place only the requested replica
  /// deltas (core::adjust_replicas) and ship them incrementally — new
  /// replica images load into reused MRAM regions (mram_alloc_reuse with
  /// the usual slack), retired replicas release theirs — without touching
  /// any other resident cluster. `frequencies` is the fresh traffic
  /// estimate the adjustments were derived from. Replication changes
  /// placement, never results: neighbors are bit-identical before/after.
  AdaptStats apply_copy_adjustments(
      const std::vector<CopyAdjustment>& adjustments,
      const std::vector<double>& frequencies);

  /// Frequency profile (normalized) the current placement was built
  /// against — the drift baseline for AdaptiveController::set_baseline.
  /// Updated by relocate().
  const std::vector<double>& placement_frequencies() const {
    return placement_frequencies_;
  }

  // ----- Streaming updates (engines built from a mutable index) -----

  /// True when constructed from a non-const index.
  bool updatable() const { return mutable_index_ != nullptr; }

  /// Mutate the index through the engine so dirty-list tracking stays
  /// coherent. Throw std::logic_error on a read-only engine. The MRAM
  /// images go stale until patch_dpus() (search() applies it lazily).
  void upsert(std::span<const std::uint32_t> ids,
              std::span<const float> vectors);
  std::size_t remove(std::span<const std::uint32_t> ids);
  std::size_t compact(double min_tombstone_ratio = 0.0);

  /// True when the index mutated since the MRAM images were last synced.
  bool needs_patch() const;

  /// Push only the dirty list segments (ids with tombstone sentinels, token
  /// stream, chunk index, combos) plus the updated length/static-mark
  /// tables to the DPUs — the streaming replacement for a full load_dpus().
  /// No-op (all-zero stats) when nothing is dirty.
  PatchStats patch_dpus();

  /// Total MRAM bytes host_write() pushed by the last full load_dpus() —
  /// the denominator for patch-incrementality checks.
  std::uint64_t load_image_bytes() const { return load_image_bytes_; }
  /// Cumulative patch bytes across all patch_dpus() calls.
  std::uint64_t patch_bytes_total() const { return patch_bytes_total_; }

  /// Per-DPU MRAM image state. Internal to the engine + pipeline; public
  /// only as a type so QueryPipeline can name it.
  struct PerDpu {
    DpuStaticLayout layout;
    std::size_t static_mark = 0;
    std::vector<std::int32_t> cluster_slot;  ///< cluster id -> slot (-1 none)
  };

 private:
  friend class QueryPipeline;  ///< online path reads layouts, rewinds MRAM

  /// Host-side byte image of one cluster's MRAM regions — the single source
  /// both the full loader and the incremental patcher write from, so a
  /// patched replica is byte-identical to a freshly loaded one.
  struct ClusterImage {
    std::vector<std::uint32_t> ids;     ///< tombstoned slots already sentineled
    std::vector<std::uint8_t> stream;   ///< u16 tokens or raw codes, as bytes
    std::size_t stream_elems = 0;       ///< element count (cd.stream_len)
    std::vector<std::uint32_t> chunk_index;
    std::vector<std::uint8_t> combos;   ///< packed 4B combo defs
    std::uint32_t n_records = 0;
    std::uint32_t n_tombstones = 0;
  };

  /// Full MRAM image load; returns the bytes pushed per DPU (relocate turns
  /// them into simulated transfer seconds, the constructor discards them).
  std::vector<std::size_t> load_dpus(const ivf::ClusterStats& stats);
  void encode_cluster(std::size_t c);
  /// Bring encodings_[c] up to date with the list: full re-encode after a
  /// compaction, cheap direct-token append after pure inserts.
  void refresh_encoding(std::size_t c);
  void build_cluster_image(std::uint32_t c, ClusterImage& out) const;
  std::size_t slack_bytes(std::size_t bytes) const;
  void snapshot_loaded_state();
  void set_placement_frequencies(const std::vector<double>& frequencies);

  const ivf::IvfIndex& index_;
  ivf::IvfIndex* mutable_index_ = nullptr;
  UpAnnsOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanLog* spans_ = nullptr;
  Placement placement_;
  std::vector<double> placement_frequencies_;
  std::unique_ptr<pim::PimSystem> system_;
  std::vector<PerDpu> per_dpu_;

  // Shared (all-DPU) quantized codebook image.
  std::vector<std::int8_t> codebook_q_;
  std::vector<float> codebook_scales_;

  // Cluster encodings, shared across replicas.
  std::vector<CaeClusterEncoding> encodings_;
  double build_length_reduction_ = 0;

  // Streaming-update bookkeeping: per-cluster list state the MRAM images /
  // encodings were built from, and byte totals for incrementality checks.
  std::vector<std::uint32_t> loaded_gen_;
  std::vector<std::uint32_t> enc_compact_;
  std::uint64_t loaded_epoch_ = 0;
  std::uint64_t load_image_bytes_ = 0;
  std::uint64_t patch_bytes_total_ = 0;

  KernelMode mode_ = KernelMode::kCae;
};

}  // namespace upanns::core
