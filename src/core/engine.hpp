// UpAnnsEngine — the end-to-end system (paper Fig 5).
//
// Offline (build): collect cluster stats from a query history, encode every
// cluster (Opt3), place replicas across DPUs (Opt1), and load MRAM images
// (codebooks, centroids, id arrays, token streams, combo tables).
//
// Online (search): host-side cluster filtering and greedy scheduling (Opt1),
// uniform-size transfers to MRAM, one kernel launch over all DPUs (Opt2/4),
// gather + final host merge. All timing is simulated (see DESIGN.md): the
// report contains the four-stage breakdown, per-DPU busy times, balance
// ratio, energy metrics and CAE statistics.
//
// Every optimization can be toggled independently, which is how the ablation
// benches (Figs 11, 13-17) are driven; `UpAnnsOptions::pim_naive()` yields
// the paper's PIM-naive baseline (random placement, naive scheduling, raw
// codes, unpruned merge — but with the Opt2 resource management retained,
// exactly as Sec 5.1 defines it).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/stage_times.hpp"
#include "common/topk.hpp"
#include "core/cae.hpp"
#include "core/dpu_kernel.hpp"
#include "core/placement.hpp"
#include "core/scheduler.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "pim/dpu.hpp"
#include "pim/energy.hpp"

namespace upanns::core {

struct UpAnnsOptions {
  std::size_t n_dpus = 896;          ///< 7 DIMMs (Table 1)
  unsigned n_tasklets = 11;          ///< pipeline saturation point (Fig 13)
  std::size_t k = 10;
  std::size_t nprobe = 64;
  /// MRAM read granularity for the distance stage, in vectors (Fig 17;
  /// default 16 per Sec 5.4.2). 0 = one maximal DMA per chunk.
  std::size_t mram_read_vectors = 16;

  bool opt_placement = true;         ///< Opt1 offline (Algorithm 1)
  bool opt_scheduling = true;        ///< Opt1 online (Algorithm 2)
  bool opt_cae = true;               ///< Opt3
  bool opt_prune_topk = true;        ///< Opt4
  /// When CAE is off, UpANNS still streams direct-address tokens; PIM-naive
  /// streams raw u8 codes and pays address arithmetic.
  bool naive_raw_codes = false;

  CaeOptions cae;
  PlacementOptions placement;
  std::uint64_t seed = 11;

  static UpAnnsOptions upanns() { return UpAnnsOptions{}; }
  static UpAnnsOptions pim_naive() {
    UpAnnsOptions o;
    o.opt_placement = false;
    o.opt_scheduling = false;
    o.opt_cae = false;
    o.opt_prune_topk = false;
    o.naive_raw_codes = true;
    return o;
  }
};

struct PimSearchReport {
  std::vector<std::vector<common::Neighbor>> neighbors;
  baselines::StageTimes times;
  double qps = 0;
  double qps_per_watt = 0;

  /// Per-DPU stage seconds (only active DPUs are non-zero) — the substrate
  /// for at-scale extrapolation and the breakdown figures.
  struct DpuStageSeconds {
    double lut = 0, dist = 0, topk = 0;
    double total() const { return lut + dist + topk; }
  };
  std::vector<DpuStageSeconds> dpu_stage_seconds;

  /// Per-DPU busy seconds for this batch and the Fig 11 balance metric.
  std::vector<double> dpu_busy_seconds;
  double balance_ratio = 0;          ///< max/mean of per-DPU busy time
  /// max/mean of *scheduled scanned vectors* per DPU — the paper's Fig 11
  /// "maximum process / average process" metric (scale-free).
  double schedule_balance = 0;

  std::size_t bytes_pushed = 0;
  std::size_t bytes_gathered = 0;
  bool push_parallel = true;

  // Opt3/Opt4 visibility.
  double length_reduction = 0;       ///< scanned-stream reduction (Fig 14)
  std::uint64_t merge_insertions = 0;
  std::uint64_t merge_pruned = 0;    ///< comparisons skipped (Fig 15)
  std::uint64_t scanned_records = 0;
  std::uint64_t total_instructions = 0;  ///< across all DPUs, this batch
  std::uint64_t total_dma_cycles = 0;
  std::size_t n_dpus = 0;

  double total_seconds() const { return times.total(); }

  /// Linear-work extrapolation (see DESIGN.md): the distance stage scales
  /// with per-list work (`data_factor`) and with how many DPUs share the
  /// batch; LUT construction and top-k merging are per-assignment costs, so
  /// they scale with the per-DPU assignment count (`dpu_factor` =
  /// dpus_actual / dpus_target). Transfers and host stages are reported as
  /// measured.
  PimSearchReport at_scale(double data_factor, double dpu_factor = 1.0) const {
    PimSearchReport r = *this;
    // Scale every DPU's stages, then let the slowest *scaled* DPU set the
    // launch-critical path (balance is preserved through the max).
    double best = -1.0;
    DpuStageSeconds crit;
    for (DpuStageSeconds s : dpu_stage_seconds) {
      s.lut *= dpu_factor;
      s.dist *= data_factor * dpu_factor;
      s.topk *= dpu_factor;
      if (s.total() > best) {
        best = s.total();
        crit = s;
      }
    }
    if (best >= 0) {
      r.times.lut_build = crit.lut;
      r.times.distance_calc = crit.dist;
      r.times.topk = crit.topk;
    }
    const double total = r.times.total();
    r.qps = total > 0 ? static_cast<double>(neighbors.size()) / total : 0;
    r.qps_per_watt =
        pim::qps_per_watt(r.qps, pim::Platform::kPim, n_dpus);
    return r;
  }
};

class UpAnnsEngine {
 public:
  /// Build the PIM-resident index. `stats` supplies s_i / f_i for placement.
  UpAnnsEngine(const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
               UpAnnsOptions options);

  /// Search one batch.
  PimSearchReport search(const data::Dataset& queries);

  /// Search with externally computed probe lists (shared with baselines).
  PimSearchReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes);

  const UpAnnsOptions& options() const { return options_; }
  UpAnnsOptions& mutable_options() { return options_; }
  const Placement& placement() const { return placement_; }
  const ivf::IvfIndex& index() const { return index_; }
  pim::PimSystem& system() { return *system_; }

  /// Average CAE length reduction over resident clusters (build-time stat).
  double build_length_reduction() const { return build_length_reduction_; }

  /// Rebuild the replica layout for a new frequency profile — the adaptive
  /// path of Sec 4.1.2 (short-term: adjust copies; here realized as a fresh
  /// Algorithm 1 pass + MRAM reload, without retraining the index).
  void relocate(const ivf::ClusterStats& stats);

 private:
  void load_dpus(const ivf::ClusterStats& stats);

  struct PerDpu {
    DpuStaticLayout layout;
    std::size_t static_mark = 0;
    std::vector<std::int32_t> cluster_slot;  ///< cluster id -> slot (-1 none)
  };

  const ivf::IvfIndex& index_;
  UpAnnsOptions options_;
  Placement placement_;
  std::unique_ptr<pim::PimSystem> system_;
  std::vector<PerDpu> per_dpu_;

  // Shared (all-DPU) quantized codebook image.
  std::vector<std::int8_t> codebook_q_;
  std::vector<float> codebook_scales_;

  // Cluster encodings, shared across replicas.
  std::vector<CaeClusterEncoding> encodings_;
  double build_length_reduction_ = 0;

  KernelMode mode_ = KernelMode::kCae;
};

}  // namespace upanns::core
