#include "core/dpu_kernel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace upanns::core {

namespace {

// Instruction-cost constants (per-element issue slots). Derived from the
// DPU ISA: loads/stores/ALU ops are single-issue; there is no hardware
// 32-bit multiply, which is why direct-address tokens save the 2-op address
// arithmetic the raw-code path pays per element.
constexpr std::uint64_t kInstrLutPerDim = 3;      // load cb, dequant-sub, fma
constexpr std::uint64_t kInstrLutPerEntry = 3;    // max-track, store, loop
constexpr std::uint64_t kInstrQuantPerEntry = 3;  // load, scale, store
constexpr std::uint64_t kInstrComboPerSlot = 8;   // 3 loads + 2 adds + store + addr
constexpr std::uint64_t kInstrTokenScan = 3;      // load token, LUT load, add
constexpr std::uint64_t kInstrRawScan = 4;        // + running-base addressing
constexpr std::uint64_t kInstrRecordOverhead = 5; // header, loop, compare, scale
constexpr std::uint64_t kInstrResidualPerDim = 3; // load, sub, store

std::uint64_t heap_push_cost(std::size_t k) {
  std::uint64_t lg = 1;
  while ((1ull << lg) < k + 1) ++lg;
  return 2 * lg + 4;
}

}  // namespace

QueryKernel::QueryKernel(const DpuStaticLayout& layout,
                         const DpuLaunchInput& input, KernelMode mode,
                         bool prune_topk)
    : layout_(layout),
      input_(input),
      mode_(mode),
      prune_topk_(prune_topk),
      global_heap_(input.k) {
  // Build the phase program: items arrive grouped by query; each item gets
  // the per-cluster stages, and each query closes with one merge phase.
  for (std::uint32_t i = 0; i < input_.items.size(); ++i) {
    program_.push_back({Step::kLutBuild, i});
    program_.push_back({Step::kLutReduce, i});
    program_.push_back({Step::kLutQuantize, i});
    if (mode_ == KernelMode::kCae && cluster_of(i).n_combos > 0) {
      program_.push_back({Step::kComboSums, i});
    }
    program_.push_back({Step::kDistance, i});
    const bool last_of_query =
        i + 1 == input_.items.size() ||
        input_.items[i + 1].query_local != input_.items[i].query_local;
    if (last_of_query) {
      program_.push_back({Step::kMerge, i});
    }
  }
}

void QueryKernel::setup(pim::Dpu& dpu, unsigned n_tasklets) {
  dpu_ = &dpu;
  pim::WramAllocator& wram = dpu.wram();
  wram.reset();

  const std::size_t m = layout_.m;
  const std::size_t k = input_.k;

  // Fixed-region layout (paper Fig 6). Heaps and the partial-sum cache live
  // below the LUT; the codebook is last so it can be rewound and reused as
  // per-tasklet read buffers during the distance stage.
  const std::size_t heap_bytes = (n_tasklets + 1) * k * 8;
  wram.alloc(heap_bytes, "topk-heaps");

  std::uint32_t max_combos = 0;
  for (const auto& item : input_.items) {
    max_combos = std::max(max_combos,
                          layout_.clusters[item.cluster_slot].n_combos);
  }
  if (mode_ == KernelMode::kCae && max_combos > 0) {
    wram_combo_off = wram.alloc(max_combos * sizeof(std::uint32_t),
                                "combo-partial-sums");
  }
  wram_query_off = wram.alloc(layout_.dim * sizeof(float), "query-residual");
  // Float LUT region; the u16 LUT compacts into its first half in place.
  wram_lut_off = wram.alloc(m * 256 * sizeof(float), "lut");
  wram_codebook_mark = wram.mark();
  wram_codebook_off = wram.alloc(m * 256 * layout_.dsub, "codebook");

  // Per-tasklet stream buffers must hold a full chunk (plus its ids) so
  // records never straddle buffers; verify the reuse region can host them.
  const std::size_t elem_size = mode_ == KernelMode::kNaiveRaw ? 1 : 2;
  const std::size_t chunk_stream_bytes =
      kChunkRecords * (m + (mode_ == KernelMode::kNaiveRaw ? 0 : 1)) *
      elem_size;
  per_tasklet_buf_bytes_ =
      (chunk_stream_bytes + kChunkRecords * sizeof(std::uint32_t) + 7) / 8 * 8;
  {
    // Probe: rewind to the codebook mark and check the distance-stage
    // working set fits, then restore the codebook allocation.
    wram.rewind(wram_codebook_mark);
    for (unsigned t = 0; t < n_tasklets; ++t) {
      wram.alloc(per_tasklet_buf_bytes_, "stream-buffer");
    }
    wram.rewind(wram_codebook_mark);
    wram.alloc(m * 256 * layout_.dsub, "codebook");
  }

  // Functional mirrors.
  lut_f32_.assign(m * 256, 0.f);
  lut_u16_.assign(m * 256, 0);
  combo_sums_.assign(max_combos, 0);
  residual_.assign(layout_.dim, 0.f);
  tasklet_max_.assign(n_tasklets, 0.f);
  local_heaps_.clear();
  for (unsigned t = 0; t < n_tasklets; ++t) local_heaps_.emplace_back(k);
  global_heap_ = common::BoundedMaxHeap(k);
}

unsigned QueryKernel::n_phases() const {
  return static_cast<unsigned>(program_.size());
}

void QueryKernel::run_phase(unsigned phase, pim::TaskletCtx& ctx) {
  const Phase& p = program_[phase];
  switch (p.step) {
    case Step::kLutBuild: return phase_lut_build(p, ctx);
    case Step::kLutReduce: return phase_lut_reduce(ctx);
    case Step::kLutQuantize: return phase_lut_quantize(ctx);
    case Step::kComboSums: return phase_combo_sums(p, ctx);
    case Step::kDistance: return phase_distance(p, ctx);
    case Step::kMerge: return phase_merge(p, ctx);
  }
}

void QueryKernel::phase_lut_build(const Phase& p, pim::TaskletCtx& ctx) {
  const DpuClusterData& cl = cluster_of(p.item);
  const std::size_t dim = layout_.dim;
  const std::size_t dsub = layout_.dsub;
  const std::size_t m = layout_.m;

  // Tasklet 0 materializes the residual first (it is the first to run and
  // the work is tiny relative to the LUT itself).
  if (ctx.id() == 0) {
    std::vector<float> query(dim), centroid(dim);
    const std::size_t q_off =
        input_.queries_off +
        static_cast<std::size_t>(input_.items[p.item].query_local) * dim *
            sizeof(float);
    ctx.mram_read(q_off, query.data(), dim * sizeof(float));
    ctx.mram_read(cl.centroid_off, centroid.data(), dim * sizeof(float));
    for (std::size_t d = 0; d < dim; ++d) residual_[d] = query[d] - centroid[d];
    ctx.instr(dim * kInstrResidualPerDim);
  }

  // Tasklets split PQ subspaces; each streams its codebook segment from
  // MRAM and fills 256 float LUT entries, tracking a local max.
  std::vector<std::int8_t> cb_seg(256 * dsub);
  std::vector<float> scales(m);
  ctx.mram_read(layout_.cb_scale_off, scales.data(), m * sizeof(float));
  float local_max = 0.f;
  for (std::size_t s = ctx.id(); s < m; s += ctx.n_tasklets()) {
    ctx.mram_read(layout_.codebook_off + s * 256 * dsub, cb_seg.data(),
                  256 * dsub);
    const float scale = scales[s];
    const float* res = residual_.data() + s * dsub;
    for (std::size_t c = 0; c < 256; ++c) {
      float acc = 0.f;
      const std::int8_t* entry = cb_seg.data() + c * dsub;
      for (std::size_t d = 0; d < dsub; ++d) {
        const float diff = res[d] - scale * static_cast<float>(entry[d]);
        acc += diff * diff;
      }
      lut_f32_[s * 256 + c] = acc;
      local_max = std::max(local_max, acc);
    }
    ctx.instr(256 * (dsub * kInstrLutPerDim + kInstrLutPerEntry));
  }
  tasklet_max_[ctx.id()] = local_max;
}

void QueryKernel::phase_lut_reduce(pim::TaskletCtx& ctx) {
  if (ctx.id() != 0) return;
  float mx = 0.f;
  for (float v : tasklet_max_) mx = std::max(mx, v);
  lut_scale_ = mx > 0.f ? mx / 65000.f : 1.f;
  ctx.instr(tasklet_max_.size() + 6);
}

void QueryKernel::phase_lut_quantize(pim::TaskletCtx& ctx) {
  // Compact f32 -> u16 in place (front-to-back is safe); each tasklet takes
  // a contiguous slice.
  const std::size_t total = lut_f32_.size();
  const std::size_t per = (total + ctx.n_tasklets() - 1) / ctx.n_tasklets();
  const std::size_t lo = ctx.id() * per;
  const std::size_t hi = std::min(total, lo + per);
  const float inv = 1.f / lut_scale_;
  for (std::size_t i = lo; i < hi; ++i) {
    lut_u16_[i] = static_cast<std::uint16_t>(
        std::min(65535.f, std::round(lut_f32_[i] * inv)));
  }
  if (hi > lo) ctx.instr((hi - lo) * kInstrQuantPerEntry);
}

void QueryKernel::phase_combo_sums(const Phase& p, pim::TaskletCtx& ctx) {
  const DpuClusterData& cl = cluster_of(p.item);
  const std::size_t n = cl.n_combos;
  const std::size_t per = (n + ctx.n_tasklets() - 1) / ctx.n_tasklets();
  const std::size_t lo = ctx.id() * per;
  const std::size_t hi = std::min(n, lo + per);
  if (lo >= hi) return;

  std::vector<std::uint8_t> defs((hi - lo) * 4);
  ctx.mram_read(cl.combos_off + lo * 4, defs.data(), defs.size());
  for (std::size_t s = lo; s < hi; ++s) {
    const std::uint8_t* d = defs.data() + (s - lo) * 4;
    const std::size_t pos = d[0];
    combo_sums_[s] = static_cast<std::uint32_t>(lut_u16_[pos * 256 + d[1]]) +
                     lut_u16_[(pos + 1) * 256 + d[2]] +
                     lut_u16_[(pos + 2) * 256 + d[3]];
  }
  ctx.instr((hi - lo) * kInstrComboPerSlot);
}

void QueryKernel::phase_distance(const Phase& p, pim::TaskletCtx& ctx) {
  const DpuClusterData& cl = cluster_of(p.item);
  const std::size_t m = layout_.m;
  const std::size_t k = input_.k;
  const bool raw = mode_ == KernelMode::kNaiveRaw;
  const std::size_t elem_size = raw ? 1 : 2;
  const std::size_t read_bytes = input_.mram_read_bytes > 0
                                     ? pim::DpuCostModel::legalize_transfer(
                                           input_.mram_read_bytes)
                                     : hw::kMramMaxTransfer;
  const std::uint64_t push_cost = heap_push_cost(k);
  common::BoundedMaxHeap& heap = local_heaps_[ctx.id()];

  std::vector<std::uint8_t> stream_buf(kChunkRecords * (m + 1) * 2);
  std::vector<std::uint32_t> ids_buf(kChunkRecords);
  std::vector<std::uint32_t> chunk_index(cl.n_chunks);
  if (!raw && cl.n_chunks > 0 && ctx.id() == 0) {
    // The chunk index is small; tasklet 0 stages it (charged once).
    ctx.instr(4);
  }
  if (!raw && cl.n_chunks > 0) {
    // Every tasklet needs its chunks' offsets; modeled as one DMA of the
    // slice it owns (the functional copy grabs the whole table).
    dpu_->host_read(cl.chunk_index_off, chunk_index.data(),
                    cl.n_chunks * sizeof(std::uint32_t));
    const std::size_t own =
        (cl.n_chunks + ctx.n_tasklets() - 1) / ctx.n_tasklets();
    ctx.mram_read(cl.chunk_index_off, chunk_index.data(),
                  std::min<std::size_t>(own * sizeof(std::uint32_t),
                                        cl.n_chunks * sizeof(std::uint32_t)));
  }

  std::uint64_t scanned_elems = 0;
  std::uint64_t scanned_recs = 0;
  for (std::uint32_t ci = ctx.id(); ci * kChunkRecords < cl.n_records;
       ci += ctx.n_tasklets()) {
    const std::size_t rec_lo = static_cast<std::size_t>(ci) * kChunkRecords;
    const std::size_t rec_hi =
        std::min<std::size_t>(cl.n_records, rec_lo + kChunkRecords);
    const std::size_t n_rec = rec_hi - rec_lo;

    // Ids for this chunk: one DMA.
    ctx.mram_read(cl.ids_off + rec_lo * sizeof(std::uint32_t), ids_buf.data(),
                  n_rec * sizeof(std::uint32_t));

    // Stream span of this chunk.
    std::size_t elem_lo, elem_hi;
    if (raw) {
      elem_lo = rec_lo * m;
      elem_hi = rec_hi * m;
    } else {
      elem_lo = chunk_index[ci];
      elem_hi = (static_cast<std::size_t>(ci) + 1 < cl.n_chunks)
                    ? chunk_index[ci + 1]
                    : cl.stream_len;
    }
    const std::size_t span_bytes = (elem_hi - elem_lo) * elem_size;
    assert(span_bytes <= stream_buf.size());
    // DMA the span at the configured read granularity (fig 17's knob):
    // smaller reads => more DMA setups => higher latency.
    {
      std::size_t done = 0;
      while (done < span_bytes) {
        const std::size_t piece = std::min(read_bytes, span_bytes - done);
        ctx.mram_read(cl.stream_off + elem_lo * elem_size + done,
                      stream_buf.data() + done, piece);
        done += piece;
      }
    }

    // Scan records.
    const std::uint16_t* tokens =
        reinterpret_cast<const std::uint16_t*>(stream_buf.data());
    std::size_t cursor = 0;  // element cursor within the chunk buffer
    for (std::size_t r = 0; r < n_rec; ++r) {
      std::uint32_t acc = 0;
      std::size_t n_elems;
      if (raw) {
        const std::uint8_t* code = stream_buf.data() + r * m;
        for (std::size_t pos = 0; pos < m; ++pos) {
          acc += lut_u16_[pos * 256 + code[pos]];
        }
        n_elems = m;
        ctx.instr(m * kInstrRawScan + kInstrRecordOverhead);
      } else {
        const std::uint16_t len = tokens[cursor++];
        const std::uint16_t lut_span = static_cast<std::uint16_t>(256 * m);
        for (std::uint16_t t = 0; t < len; ++t) {
          const std::uint16_t tok = tokens[cursor++];
          acc += tok < lut_span ? lut_u16_[tok]
                                : combo_sums_[tok - lut_span];
        }
        n_elems = len;
        ctx.instr(len * kInstrTokenScan + kInstrRecordOverhead);
      }
      scanned_elems += n_elems;
      ++scanned_recs;
      const float dist = static_cast<float>(acc) * lut_scale_;
      if (heap.push(dist, ids_buf[r])) ctx.instr(push_cost);
    }
  }
  // Shared counters: tasklets run sequentially in the simulator, so plain
  // accumulation is deterministic.
  scanned_elements_ += scanned_elems;
  scanned_records_ += scanned_recs;
}

void QueryKernel::phase_merge(const Phase& p, pim::TaskletCtx& ctx) {
  const std::size_t k = input_.k;
  const std::uint64_t push_cost = heap_push_cost(k);

  // Convert this tasklet's max-heap to ascending (min-first) order — the
  // paper's min-heap trick that enables pruning — then feed the DPU heap
  // under the semaphore.
  common::BoundedMaxHeap& heap = local_heaps_[ctx.id()];
  const std::size_t n = heap.size();
  std::vector<common::Neighbor> sorted = heap.take_sorted();
  if (n > 1) {
    std::uint64_t lg = 1;
    while ((1ull << lg) < n) ++lg;
    ctx.instr(2 * n * lg);  // heapsort into min order
  }
  // Without pruning (PIM-naive), every local element enters the critical
  // section with full insert-call overhead — sem_take, call, root compare,
  // sem_give — whether or not it survives. The pruned path checks the
  // threshold first (2 ops) and, thanks to the min-first order, abandons the
  // whole remainder of the heap at the first failure; this is the "68% of
  // redundant comparisons" Opt4 skips.
  constexpr std::uint64_t kNaiveInsertOverhead = 8;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (prune_topk_) {
      ctx.critical_instr(2);  // sem_take + threshold compare
      if (global_heap_.full() && !(sorted[i] < global_heap_.worst())) {
        // `sorted` is ascending in the same total order the heap rejects
        // by, so everything after the first failing entry prunes wholesale.
        merge_pruned_ += sorted.size() - i;
        break;
      }
    } else {
      ctx.critical_instr(kNaiveInsertOverhead);
    }
    if (global_heap_.push(sorted[i])) {
      ctx.critical_instr(push_cost);
    }
    ++merge_insertions_;
  }

  // The last tasklet (runs last in the simulator's deterministic order)
  // flushes the aggregated top-k to MRAM for the host to gather.
  if (ctx.id() + 1 == ctx.n_tasklets()) {
    std::vector<common::Neighbor> result = global_heap_.take_sorted();
    std::vector<std::uint32_t> packed(2 * k, 0xFFFFFFFFu);
    for (std::size_t i = 0; i < result.size(); ++i) {
      std::uint32_t bits;
      std::memcpy(&bits, &result[i].dist, sizeof(bits));
      packed[2 * i] = bits;
      packed[2 * i + 1] = result[i].id;
    }
    const std::size_t slot =
        input_.results_off +
        static_cast<std::size_t>(input_.items[p.item].query_local) * k * 8;
    ctx.mram_write(slot, packed.data(), packed.size() * sizeof(std::uint32_t));
    ctx.instr(2 * k);
    global_heap_.clear();
    for (auto& h : local_heaps_) h.clear();
  }
}

KernelStageCycles QueryKernel::attribute_stages(
    const std::vector<std::uint64_t>& phase_cycles) const {
  KernelStageCycles out;
  assert(phase_cycles.size() == program_.size());
  for (std::size_t i = 0; i < program_.size(); ++i) {
    switch (program_[i].step) {
      case Step::kLutBuild:
      case Step::kLutReduce:
      case Step::kLutQuantize:
      case Step::kComboSums:
        out.lut_build += phase_cycles[i];
        break;
      case Step::kDistance:
        out.distance += phase_cycles[i];
        break;
      case Step::kMerge:
        out.topk += phase_cycles[i];
        break;
    }
  }
  return out;
}

}  // namespace upanns::core
