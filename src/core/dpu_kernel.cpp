#include "core/dpu_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/fastround.hpp"
#include "common/simd_dispatch.hpp"

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace upanns::core {

namespace {

// Instruction-cost constants (per-element issue slots). Derived from the
// DPU ISA: loads/stores/ALU ops are single-issue; there is no hardware
// 32-bit multiply, which is why direct-address tokens save the 2-op address
// arithmetic the raw-code path pays per element.
constexpr std::uint64_t kInstrLutPerDim = 3;      // load cb, dequant-sub, fma
constexpr std::uint64_t kInstrLutPerEntry = 3;    // max-track, store, loop
constexpr std::uint64_t kInstrQuantPerEntry = 3;  // load, scale, store
constexpr std::uint64_t kInstrComboPerSlot = 8;   // 3 loads + 2 adds + store + addr
constexpr std::uint64_t kInstrTokenScan = 3;      // load token, LUT load, add
constexpr std::uint64_t kInstrRawScan = 4;        // + running-base addressing
constexpr std::uint64_t kInstrRecordOverhead = 5; // header, loop, compare, scale
constexpr std::uint64_t kInstrResidualPerDim = 3; // load, sub, store
constexpr std::uint64_t kInstrTombstoneMask = 1;  // id-vs-sentinel select

std::uint64_t heap_push_cost(std::size_t k) {
  std::uint64_t lg = 1;
  while ((1ull << lg) < k + 1) ++lg;
  return 2 * lg + 4;
}

std::atomic<std::uint64_t> g_hot_path_allocations{0};

}  // namespace

std::uint64_t hot_path_allocations() {
  return g_hot_path_allocations.load(std::memory_order_relaxed);
}

namespace detail {
void note_hot_path_allocation() {
  g_hot_path_allocations.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

QueryKernel::QueryKernel(const DpuStaticLayout& layout,
                         const DpuLaunchInput& input, KernelMode mode,
                         bool prune_topk)
    : layout_(layout),
      input_(&input),
      mode_(mode),
      prune_topk_(prune_topk),
      global_heap_(input.k) {
  // Constructing a kernel (LaunchStage pool growth) is a hot-path
  // allocation event; a warm serving loop rebinds instead.
  detail::note_hot_path_allocation();
  rebind(input);
}

void QueryKernel::rebind(const DpuLaunchInput& input) {
  input_ = &input;
  // Rebuild the phase program in place: items arrive grouped by query; each
  // item gets the per-cluster stages, and each query closes with one merge
  // phase. program_ keeps its capacity across batches.
  program_.clear();
  for (std::uint32_t i = 0; i < input_->items.size(); ++i) {
    program_.push_back({Step::kLutBuild, i});
    program_.push_back({Step::kLutReduce, i});
    program_.push_back({Step::kLutQuantize, i});
    if (mode_ == KernelMode::kCae && cluster_of(i).n_combos > 0) {
      program_.push_back({Step::kComboSums, i});
    }
    program_.push_back({Step::kDistance, i});
    const bool last_of_query =
        i + 1 == input_->items.size() ||
        input_->items[i + 1].query_local != input_->items[i].query_local;
    if (last_of_query) {
      program_.push_back({Step::kMerge, i});
    }
  }
}

void QueryKernel::setup(pim::Dpu& dpu, unsigned n_tasklets) {
  dpu_ = &dpu;
  pim::WramAllocator& wram = dpu.wram();
  wram.reset();

  const std::size_t m = layout_.m;
  const std::size_t k = input_->k;

  // Fixed-region layout (paper Fig 6). Heaps and the partial-sum cache live
  // below the LUT; the codebook is last so it can be rewound and reused as
  // per-tasklet read buffers during the distance stage.
  const std::size_t heap_bytes = (n_tasklets + 1) * k * 8;
  wram.alloc(heap_bytes, "topk-heaps");

  std::uint32_t max_combos = 0;
  for (const auto& item : input_->items) {
    max_combos = std::max(max_combos,
                          layout_.clusters[item.cluster_slot].n_combos);
  }
  if (mode_ == KernelMode::kCae && max_combos > 0) {
    wram_combo_off = wram.alloc(max_combos * sizeof(std::uint32_t),
                                "combo-partial-sums");
  }
  wram_query_off = wram.alloc(layout_.dim * sizeof(float), "query-residual");
  // Float LUT region; the u16 LUT compacts into its first half in place.
  wram_lut_off = wram.alloc(m * 256 * sizeof(float), "lut");
  wram_codebook_mark = wram.mark();
  wram_codebook_off = wram.alloc(m * 256 * layout_.dsub, "codebook");

  // Per-tasklet stream buffers must hold a full chunk (plus its ids) so
  // records never straddle buffers; verify the reuse region can host them.
  const std::size_t elem_size = mode_ == KernelMode::kNaiveRaw ? 1 : 2;
  const std::size_t chunk_stream_bytes =
      kChunkRecords * (m + (mode_ == KernelMode::kNaiveRaw ? 0 : 1)) *
      elem_size;
  per_tasklet_buf_bytes_ =
      (chunk_stream_bytes + kChunkRecords * sizeof(std::uint32_t) + 7) / 8 * 8;
  {
    // Probe: rewind to the codebook mark and check the distance-stage
    // working set fits, then restore the codebook allocation.
    wram.rewind(wram_codebook_mark);
    for (unsigned t = 0; t < n_tasklets; ++t) {
      wram.alloc(per_tasklet_buf_bytes_, "stream-buffer");
    }
    wram.rewind(wram_codebook_mark);
    wram.alloc(m * 256 * layout_.dsub, "codebook");
  }

  // Functional mirrors, reused from the scratch arena across launches.
  KernelScratch::assign(scratch_.lut_f32, m * 256, 0.f);
  KernelScratch::assign(scratch_.lut_u16, m * 256,
                        static_cast<std::uint16_t>(0));
  KernelScratch::assign(scratch_.combo_sums, max_combos,
                        static_cast<std::uint32_t>(0));
  KernelScratch::assign(scratch_.token_table, m * 256 + max_combos,
                        static_cast<std::uint32_t>(0));
  KernelScratch::assign(scratch_.residual, layout_.dim, 0.f);
  KernelScratch::assign(scratch_.tasklet_max,
                        static_cast<std::size_t>(n_tasklets), 0.f);
  if (local_heaps_.size() != n_tasklets ||
      (!local_heaps_.empty() && local_heaps_.front().capacity() != k)) {
    detail::note_hot_path_allocation();
    local_heaps_.clear();
    local_heaps_.reserve(n_tasklets);
    for (unsigned t = 0; t < n_tasklets; ++t) local_heaps_.emplace_back(k);
  } else {
    for (auto& h : local_heaps_) h.clear();
  }
  if (global_heap_.capacity() != k) {
    detail::note_hot_path_allocation();
    global_heap_ = common::BoundedMaxHeap(k);
  } else {
    global_heap_.clear();
  }

  // Per-launch statistics restart with every run — reused kernel objects
  // must report exactly what a freshly constructed one would.
  merge_insertions_ = 0;
  merge_pruned_ = 0;
  scanned_elements_ = 0;
  scanned_records_ = 0;
}

unsigned QueryKernel::n_phases() const {
  return static_cast<unsigned>(program_.size());
}

void QueryKernel::run_phase(unsigned phase, pim::TaskletCtx& ctx) {
  const Phase& p = program_[phase];
  switch (p.step) {
    case Step::kLutBuild: return phase_lut_build(p, ctx);
    case Step::kLutReduce: return phase_lut_reduce(ctx);
    case Step::kLutQuantize: return phase_lut_quantize(ctx);
    case Step::kComboSums: return phase_combo_sums(p, ctx);
    case Step::kDistance: return phase_distance(p, ctx);
    case Step::kMerge: return phase_merge(p, ctx);
  }
}

namespace {

#if defined(__SSE2__)
/// SSE2 LUT block for the dominant dsub == 8 shape: 8 codebook entries are
/// 64 contiguous bytes, so an 8x8 byte transpose yields per-dimension
/// columns and the 8 accumulation chains become two 4-lane vectors. Every
/// lane performs the same IEEE mul/sub/add sequence, in the same order, as
/// one entry of the scalar loop — results are bit-identical (there is no
/// FMA contraction: SSE2 has no fused ops). local_max folds through
/// max-vectors, which is order-insensitive for the non-NaN sums involved.
inline void lut_block8_dsub8(const std::int8_t* entry, const float* res,
                             const __m128 scale_v, float* out, __m128& max_lo,
                             __m128& max_hi) {
  const __m128i r01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry));
  const __m128i r23 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry + 16));
  const __m128i r45 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry + 32));
  const __m128i r67 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry + 48));
  // Transpose rows (one per entry) into columns (one per dimension).
  const __m128i t0 = _mm_unpacklo_epi8(r01, _mm_srli_si128(r01, 8));
  const __m128i t1 = _mm_unpacklo_epi8(r23, _mm_srli_si128(r23, 8));
  const __m128i t2 = _mm_unpacklo_epi8(r45, _mm_srli_si128(r45, 8));
  const __m128i t3 = _mm_unpacklo_epi8(r67, _mm_srli_si128(r67, 8));
  const __m128i u0 = _mm_unpacklo_epi16(t0, t1);
  const __m128i u1 = _mm_unpackhi_epi16(t0, t1);
  const __m128i u2 = _mm_unpacklo_epi16(t2, t3);
  const __m128i u3 = _mm_unpackhi_epi16(t2, t3);
  const __m128i cols[4] = {
      _mm_unpacklo_epi32(u0, u2), _mm_unpackhi_epi32(u0, u2),
      _mm_unpacklo_epi32(u1, u3), _mm_unpackhi_epi32(u1, u3)};

  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  for (std::size_t d = 0; d < 8; ++d) {
    // cols[d/2] holds column d in its low 8 bytes, column d+1 in the high.
    const __m128i col8 = (d & 1) ? _mm_srli_si128(cols[d / 2], 8) : cols[d / 2];
    // Sign-extend 8 x s8 -> 2 x (4 x f32); exact for the s8 range.
    const __m128i s16 = _mm_srai_epi16(_mm_unpacklo_epi8(col8, col8), 8);
    const __m128 f_lo =
        _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpacklo_epi16(s16, s16), 16));
    const __m128 f_hi =
        _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpackhi_epi16(s16, s16), 16));
    const __m128 res_v = _mm_set1_ps(res[d]);
    const __m128 d_lo = _mm_sub_ps(res_v, _mm_mul_ps(scale_v, f_lo));
    const __m128 d_hi = _mm_sub_ps(res_v, _mm_mul_ps(scale_v, f_hi));
    acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(d_lo, d_lo));
    acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(d_hi, d_hi));
  }
  _mm_storeu_ps(out, acc_lo);
  _mm_storeu_ps(out + 4, acc_hi);
  max_lo = _mm_max_ps(max_lo, acc_lo);
  max_hi = _mm_max_ps(max_hi, acc_hi);
}

/// AVX2 variant of lut_block8_dsub8: the same 8x8 byte transpose, then one
/// 8-lane float chain instead of two 4-lane halves. _mm256_cvtepi8_epi32
/// sign-extends exactly like the unpack/srai pair, and mul/sub/add stay
/// separate ops (no FMA contraction), so every lane runs the identical IEEE
/// sequence — bit-exact against the SSE2 and scalar paths.
__attribute__((target("avx2"))) inline void lut_block8_dsub8_avx2(
    const std::int8_t* entry, const float* res, const __m256 scale_v,
    float* out, __m256& max_v) {
  const __m128i r01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry));
  const __m128i r23 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry + 16));
  const __m128i r45 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry + 32));
  const __m128i r67 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(entry + 48));
  const __m128i t0 = _mm_unpacklo_epi8(r01, _mm_srli_si128(r01, 8));
  const __m128i t1 = _mm_unpacklo_epi8(r23, _mm_srli_si128(r23, 8));
  const __m128i t2 = _mm_unpacklo_epi8(r45, _mm_srli_si128(r45, 8));
  const __m128i t3 = _mm_unpacklo_epi8(r67, _mm_srli_si128(r67, 8));
  const __m128i u0 = _mm_unpacklo_epi16(t0, t1);
  const __m128i u1 = _mm_unpackhi_epi16(t0, t1);
  const __m128i u2 = _mm_unpacklo_epi16(t2, t3);
  const __m128i u3 = _mm_unpackhi_epi16(t2, t3);
  const __m128i cols[4] = {
      _mm_unpacklo_epi32(u0, u2), _mm_unpackhi_epi32(u0, u2),
      _mm_unpacklo_epi32(u1, u3), _mm_unpackhi_epi32(u1, u3)};

  __m256 acc = _mm256_setzero_ps();
  for (std::size_t d = 0; d < 8; ++d) {
    const __m128i col8 = (d & 1) ? _mm_srli_si128(cols[d / 2], 8) : cols[d / 2];
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(col8));
    const __m256 res_v = _mm256_set1_ps(res[d]);
    const __m256 diff = _mm256_sub_ps(res_v, _mm256_mul_ps(scale_v, f));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  _mm256_storeu_ps(out, acc);
  max_v = _mm256_max_ps(max_v, acc);
}

/// One full 256-entry LUT row at AVX2 (dsub == 8). Returns the row max.
__attribute__((target("avx2"))) float lut_row_dsub8_avx2(
    const std::int8_t* cb_seg, const float* res, float scale, float* lut_row) {
  const __m256 scale_v = _mm256_set1_ps(scale);
  __m256 mx = _mm256_setzero_ps();
  for (std::size_t c = 0; c < 256; c += 8) {
    lut_block8_dsub8_avx2(cb_seg + c * 8, res, scale_v, lut_row + c, mx);
  }
  alignas(32) float tmp[8];
  _mm256_store_ps(tmp, mx);
  float row_max = tmp[0];
  for (std::size_t j = 1; j < 8; ++j) row_max = std::max(row_max, tmp[j]);
  return row_max;
}
#endif  // __SSE2__

}  // namespace

void QueryKernel::phase_lut_build(const Phase& p, pim::TaskletCtx& ctx) {
  const DpuClusterData& cl = cluster_of(p.item);
  const std::size_t dim = layout_.dim;
  const std::size_t dsub = layout_.dsub;
  const std::size_t m = layout_.m;

  // Tasklet 0 materializes the residual first (it is the first to run and
  // the work is tiny relative to the LUT itself). Query and centroid are
  // read-only, so borrowed MRAM views replace the staging copies.
  if (ctx.id() == 0) {
    const std::size_t q_off =
        input_->queries_off +
        static_cast<std::size_t>(input_->items[p.item].query_local) * dim *
            sizeof(float);
    const float* query = ctx.mram_view_as<float>(q_off, dim * sizeof(float));
    const float* centroid =
        ctx.mram_view_as<float>(cl.centroid_off, dim * sizeof(float));
    for (std::size_t d = 0; d < dim; ++d) {
      scratch_.residual[d] = query[d] - centroid[d];
    }
    ctx.instr(dim * kInstrResidualPerDim);
  }

  // Tasklets split PQ subspaces; each views its codebook segment in MRAM
  // (charged as the same MRAM->WRAM stream) and fills 256 float LUT
  // entries, tracking a local max. Entries are processed 8 at a time: each
  // entry's accumulation keeps its exact per-`c` operation order (so the
  // result is bit-identical to the one-entry-at-a-time loop), but the eight
  // chains are independent, which hides the FP add latency that otherwise
  // serializes this — the single hottest loop in the whole simulator.
  const float* scales =
      ctx.mram_view_as<float>(layout_.cb_scale_off, m * sizeof(float));
  float local_max = 0.f;
#if defined(__SSE2__)
  __m128 max_lo = _mm_setzero_ps();
  __m128 max_hi = _mm_setzero_ps();
  const common::SimdLevel simd = common::simd_active_level();
#endif
  for (std::size_t s = ctx.id(); s < m; s += ctx.n_tasklets()) {
    const std::int8_t* cb_seg = ctx.mram_view_as<std::int8_t>(
        layout_.codebook_off + s * 256 * dsub, 256 * dsub);
    const float scale = scales[s];
    const float* res = scratch_.residual.data() + s * dsub;
    float* lut_row = scratch_.lut_f32.data() + s * 256;
    static_assert(256 % 8 == 0, "unroll factor must divide the code count");
#if defined(__SSE2__)
    if (dsub == 8 && simd != common::SimdLevel::kScalar) {
      if (simd == common::SimdLevel::kAvx2) {
        local_max =
            std::max(local_max, lut_row_dsub8_avx2(cb_seg, res, scale, lut_row));
      } else {
        const __m128 scale_v = _mm_set1_ps(scale);
        for (std::size_t c = 0; c < 256; c += 8) {
          lut_block8_dsub8(cb_seg + c * 8, res, scale_v, lut_row + c, max_lo,
                           max_hi);
        }
      }
      ctx.instr(256 * (dsub * kInstrLutPerDim + kInstrLutPerEntry));
      continue;
    }
#endif
    for (std::size_t c = 0; c < 256; c += 8) {
      const std::int8_t* entry = cb_seg + c * dsub;
      float acc[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
      for (std::size_t d = 0; d < dsub; ++d) {
        for (std::size_t u = 0; u < 8; ++u) {
          const float diff =
              res[d] - scale * static_cast<float>(entry[u * dsub + d]);
          acc[u] += diff * diff;
        }
      }
      for (std::size_t u = 0; u < 8; ++u) {
        lut_row[c + u] = acc[u];
        local_max = std::max(local_max, acc[u]);
      }
    }
    ctx.instr(256 * (dsub * kInstrLutPerDim + kInstrLutPerEntry));
  }
#if defined(__SSE2__)
  {
    const __m128 mx4 = _mm_max_ps(max_lo, max_hi);
    alignas(16) float mx[4];
    _mm_store_ps(mx, mx4);
    local_max = std::max(
        local_max, std::max(std::max(mx[0], mx[1]), std::max(mx[2], mx[3])));
  }
#endif
  scratch_.tasklet_max[ctx.id()] = local_max;
}

void QueryKernel::phase_lut_reduce(pim::TaskletCtx& ctx) {
  if (ctx.id() != 0) return;
  float mx = 0.f;
  for (float v : scratch_.tasklet_max) mx = std::max(mx, v);
  lut_scale_ = mx > 0.f ? mx / 65000.f : 1.f;
  ctx.instr(scratch_.tasklet_max.size() + 6);
}

void QueryKernel::phase_lut_quantize(pim::TaskletCtx& ctx) {
  // Compact f32 -> u16 in place (front-to-back is safe); each tasklet takes
  // a contiguous slice. The widened token_table mirror is a host-side
  // convenience for the branchless distance scan — the modeled DPU reads
  // the u16 LUT via direct addressing, so no extra instructions are charged.
  const std::size_t total = scratch_.lut_f32.size();
  const std::size_t per = (total + ctx.n_tasklets() - 1) / ctx.n_tasklets();
  const std::size_t lo = ctx.id() * per;
  const std::size_t hi = std::min(total, lo + per);
  const float inv = 1.f / lut_scale_;
  const float* lut_f32 = scratch_.lut_f32.data();
  std::uint16_t* lut_u16 = scratch_.lut_u16.data();
  std::uint32_t* tokens = scratch_.token_table.data();
  for (std::size_t i = lo; i < hi; ++i) {
    const float q = common::round_nonneg(std::min(65535.f, lut_f32[i] * inv));
    lut_u16[i] = static_cast<std::uint16_t>(q);
    tokens[i] = static_cast<std::uint32_t>(lut_u16[i]);
  }
  if (hi > lo) ctx.instr((hi - lo) * kInstrQuantPerEntry);
}

void QueryKernel::phase_combo_sums(const Phase& p, pim::TaskletCtx& ctx) {
  const DpuClusterData& cl = cluster_of(p.item);
  const std::size_t n = cl.n_combos;
  const std::size_t per = (n + ctx.n_tasklets() - 1) / ctx.n_tasklets();
  const std::size_t lo = ctx.id() * per;
  const std::size_t hi = std::min(n, lo + per);
  if (lo >= hi) return;

  const std::size_t lut_span = layout_.m * 256;
  const std::uint8_t* defs =
      ctx.mram_view(cl.combos_off + lo * 4, (hi - lo) * 4);
  for (std::size_t s = lo; s < hi; ++s) {
    const std::uint8_t* d = defs + (s - lo) * 4;
    const std::size_t pos = d[0];
    const std::uint32_t sum =
        static_cast<std::uint32_t>(scratch_.lut_u16[pos * 256 + d[1]]) +
        scratch_.lut_u16[(pos + 1) * 256 + d[2]] +
        scratch_.lut_u16[(pos + 2) * 256 + d[3]];
    scratch_.combo_sums[s] = sum;
    scratch_.token_table[lut_span + s] = sum;
  }
  ctx.instr((hi - lo) * kInstrComboPerSlot);
}

namespace {

#if defined(__SSE2__)
/// AVX2 token scan: 8 u16 tokens widen to u32 lanes and gather their table
/// entries. u32 addition wraps mod 2^32 in any order, so the lane-parallel
/// sum is exactly the scalar loop's value — the serve path stays
/// byte-identical across SIMD levels.
__attribute__((target("avx2"))) std::uint32_t token_sum_avx2(
    const std::uint32_t* table, const std::uint16_t* toks, std::size_t len) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t t = 0;
  for (; t + 8 <= len; t += 8) {
    const __m128i t16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(toks + t));
    const __m256i idx = _mm256_cvtepu16_epi32(t16);
    acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32(
                                    reinterpret_cast<const int*>(table), idx, 4));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  std::uint32_t sum = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  for (; t < len; ++t) sum += table[toks[t]];
  return sum;
}

/// AVX2 raw-code scan: indices are pos*256 + code[pos] into the widened
/// token table, whose first m*256 entries mirror the u16 LUT exactly.
__attribute__((target("avx2"))) std::uint32_t raw_sum_avx2(
    const std::uint32_t* table, const std::uint8_t* code, std::size_t m) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i lane_off =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  std::size_t pos = 0;
  for (; pos + 8 <= m; pos += 8) {
    const __m128i c8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + pos));
    const __m256i idx = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_cvtepu8_epi32(c8), lane_off),
        _mm256_set1_epi32(static_cast<int>(pos * 256)));
    acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32(
                                    reinterpret_cast<const int*>(table), idx, 4));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  std::uint32_t sum = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  for (; pos < m; ++pos) sum += table[pos * 256 + code[pos]];
  return sum;
}
#endif  // __SSE2__

}  // namespace

void QueryKernel::phase_distance(const Phase& p, pim::TaskletCtx& ctx) {
  const DpuClusterData& cl = cluster_of(p.item);
  const std::size_t m = layout_.m;
  const std::size_t k = input_->k;
  const bool raw = mode_ == KernelMode::kNaiveRaw;
  const std::size_t elem_size = raw ? 1 : 2;
  const std::size_t read_bytes = input_->mram_read_bytes > 0
                                     ? pim::DpuCostModel::legalize_transfer(
                                           input_->mram_read_bytes)
                                     : hw::kMramMaxTransfer;
  const std::uint64_t push_cost = heap_push_cost(k);
  common::BoundedMaxHeap& heap = local_heaps_[ctx.id()];
  // Tombstone masking is hoisted per cluster: fully live clusters (the
  // read-only serving case) take the exact pre-mutability path — no extra
  // branch, no extra instruction charge.
  const bool masked = cl.n_tombstones != 0;

  // Mode-correct chunk working set: raw mode streams m u8 codes per record;
  // token mode adds the u16 length prefix. This is the per-tasklet WRAM
  // buffer the cost model charges — it must agree with setup()'s budget.
  const std::size_t chunk_capacity_bytes =
      kChunkRecords * (m + (raw ? 0 : 1)) * elem_size;
  assert((chunk_capacity_bytes + kChunkRecords * sizeof(std::uint32_t) + 7) /
             8 * 8 ==
         per_tasklet_buf_bytes_);

  const std::uint32_t* chunk_index = nullptr;
  if (!raw && cl.n_chunks > 0) {
    // Chunk-index accounting: each tasklet is charged one DMA for the slice
    // of offsets it owns — there is no separate tasklet-0 staging pass (the
    // seed double-charged here: a 4-instruction stage on tasklet 0 *and* the
    // per-tasklet slice DMA). The borrowed view spans the whole table
    // because strided chunk starts read beyond the slice functionally.
    // test_hot_path.cpp pins the charged dma_cycles. See DESIGN.md §9.
    const std::size_t own =
        (cl.n_chunks + ctx.n_tasklets() - 1) / ctx.n_tasklets();
    const std::size_t own_bytes =
        std::min<std::size_t>(own * sizeof(std::uint32_t),
                              cl.n_chunks * sizeof(std::uint32_t));
    chunk_index = reinterpret_cast<const std::uint32_t*>(
        ctx.mram_view(cl.chunk_index_off, own_bytes));
  }

  // Hoisted table pointers: ctx.instr / heap pushes store through other
  // members, so without locals the compiler must conservatively reload the
  // vector data pointers on every token.
  const std::uint16_t* lut = scratch_.lut_u16.data();
  const std::uint32_t* token_table = scratch_.token_table.data();
  const float dist_scale = lut_scale_;
#if defined(__SSE2__)
  const bool use_avx2 =
      common::simd_active_level() == common::SimdLevel::kAvx2;
#endif

  std::uint64_t scanned_elems = 0;
  std::uint64_t scanned_recs = 0;
  for (std::uint32_t ci = ctx.id(); ci * kChunkRecords < cl.n_records;
       ci += ctx.n_tasklets()) {
    const std::size_t rec_lo = static_cast<std::size_t>(ci) * kChunkRecords;
    const std::size_t rec_hi =
        std::min<std::size_t>(cl.n_records, rec_lo + kChunkRecords);
    const std::size_t n_rec = rec_hi - rec_lo;

    // Ids for this chunk: one DMA, borrowed in place.
    const std::uint32_t* ids = reinterpret_cast<const std::uint32_t*>(
        ctx.mram_view(cl.ids_off + rec_lo * sizeof(std::uint32_t),
                      n_rec * sizeof(std::uint32_t)));

    // Stream span of this chunk.
    std::size_t elem_lo, elem_hi;
    if (raw) {
      elem_lo = rec_lo * m;
      elem_hi = rec_hi * m;
    } else {
      elem_lo = chunk_index[ci];
      elem_hi = (static_cast<std::size_t>(ci) + 1 < cl.n_chunks)
                    ? chunk_index[ci + 1]
                    : cl.stream_len;
    }
    const std::size_t span_bytes = (elem_hi - elem_lo) * elem_size;
    assert(span_bytes <= chunk_capacity_bytes);
    // View the span at the configured read granularity (fig 17's knob):
    // smaller reads => more DMA setups => higher latency. The pieces are
    // contiguous in MRAM, so the first view covers the whole span.
    const std::uint8_t* chunk_stream = nullptr;
    {
      std::size_t done = 0;
      while (done < span_bytes) {
        const std::size_t piece = std::min(read_bytes, span_bytes - done);
        const std::uint8_t* piece_view =
            ctx.mram_view(cl.stream_off + elem_lo * elem_size + done, piece);
        if (done == 0) chunk_stream = piece_view;
        done += piece;
      }
    }

    // Scan records. Instruction charges accumulate in locals and are
    // flushed once per chunk — the charge is an additive sum, so the phase
    // totals are identical to the per-record flushes of the original loop.
    const std::uint16_t* tokens =
        reinterpret_cast<const std::uint16_t*>(chunk_stream);
    std::size_t chunk_elems = 0;
    std::uint64_t chunk_pushes = 0;
    std::size_t cursor = 0;  // element cursor within the chunk span
    for (std::size_t r = 0; r < n_rec; ++r) {
      std::uint32_t acc = 0;
      if (raw) {
        const std::uint8_t* code = chunk_stream + r * m;
#if defined(__SSE2__)
        if (use_avx2) {
          acc = raw_sum_avx2(token_table, code, m);
        } else
#endif
        {
          for (std::size_t pos = 0; pos < m; ++pos) {
            acc += lut[pos * 256 + code[pos]];
          }
        }
        chunk_elems += m;
      } else {
        // One unconditional load per token: base tokens and combo tokens
        // land in adjacent halves of token_table, exactly like the direct
        // WRAM addresses they model — no per-token range branch.
        const std::uint16_t len = tokens[cursor++];
#if defined(__SSE2__)
        if (use_avx2) {
          acc = token_sum_avx2(token_table, tokens + cursor, len);
        } else
#endif
        {
          for (std::uint16_t t = 0; t < len; ++t) {
            acc += token_table[tokens[cursor + t]];
          }
        }
        cursor += len;
        chunk_elems += len;
      }
      const float dist = static_cast<float>(acc) * dist_scale;
      // Tombstoned slots still stream (their tokens are in the chunk) but
      // never enter a heap: on hardware this is a compare-and-select on the
      // id, charged once per record only when the cluster has tombstones.
      const std::uint32_t id = ids[r];
      if (!masked || id != kTombstoneId) {
        if (heap.push(dist, id)) ++chunk_pushes;
      }
    }
    ctx.instr(chunk_elems * (raw ? kInstrRawScan : kInstrTokenScan) +
              n_rec * (kInstrRecordOverhead +
                       (masked ? kInstrTombstoneMask : 0)) +
              chunk_pushes * push_cost);
    scanned_elems += chunk_elems;
    scanned_recs += n_rec;
  }
  // Shared counters: tasklets run sequentially in the simulator, so plain
  // accumulation is deterministic.
  scanned_elements_ += scanned_elems;
  scanned_records_ += scanned_recs;
}

void QueryKernel::phase_merge(const Phase& p, pim::TaskletCtx& ctx) {
  const std::size_t k = input_->k;
  const std::uint64_t push_cost = heap_push_cost(k);

  // Convert this tasklet's max-heap to ascending (min-first) order — the
  // paper's min-heap trick that enables pruning — then feed the DPU heap
  // under the semaphore. The extraction reuses the arena's sorted buffer.
  common::BoundedMaxHeap& heap = local_heaps_[ctx.id()];
  const std::size_t n = heap.size();
  if (n > scratch_.sorted.capacity()) detail::note_hot_path_allocation();
  heap.take_sorted_into(scratch_.sorted);
  const std::vector<common::Neighbor>& sorted = scratch_.sorted;
  if (n > 1) {
    std::uint64_t lg = 1;
    while ((1ull << lg) < n) ++lg;
    ctx.instr(2 * n * lg);  // heapsort into min order
  }
  // Without pruning (PIM-naive), every local element enters the critical
  // section with full insert-call overhead — sem_take, call, root compare,
  // sem_give — whether or not it survives. The pruned path checks the
  // threshold first (2 ops) and, thanks to the min-first order, abandons the
  // whole remainder of the heap at the first failure; this is the "68% of
  // redundant comparisons" Opt4 skips.
  constexpr std::uint64_t kNaiveInsertOverhead = 8;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (prune_topk_) {
      ctx.critical_instr(2);  // sem_take + threshold compare
      if (global_heap_.full() && !(sorted[i] < global_heap_.worst())) {
        // `sorted` is ascending in the same total order the heap rejects
        // by, so everything after the first failing entry prunes wholesale.
        merge_pruned_ += sorted.size() - i;
        break;
      }
    } else {
      ctx.critical_instr(kNaiveInsertOverhead);
    }
    if (global_heap_.push(sorted[i])) {
      ctx.critical_instr(push_cost);
    }
    ++merge_insertions_;
  }

  // The last tasklet (runs last in the simulator's deterministic order)
  // flushes the aggregated top-k to MRAM for the host to gather.
  if (ctx.id() + 1 == ctx.n_tasklets()) {
    if (global_heap_.size() > scratch_.result.capacity()) {
      detail::note_hot_path_allocation();
    }
    global_heap_.take_sorted_into(scratch_.result);
    KernelScratch::assign(scratch_.packed, 2 * k, 0xFFFFFFFFu);
    for (std::size_t i = 0; i < scratch_.result.size(); ++i) {
      std::uint32_t bits;
      std::memcpy(&bits, &scratch_.result[i].dist, sizeof(bits));
      scratch_.packed[2 * i] = bits;
      scratch_.packed[2 * i + 1] = scratch_.result[i].id;
    }
    const std::size_t slot =
        input_->results_off +
        static_cast<std::size_t>(input_->items[p.item].query_local) * k * 8;
    ctx.mram_write(slot, scratch_.packed.data(),
                   scratch_.packed.size() * sizeof(std::uint32_t));
    ctx.instr(2 * k);
    for (auto& h : local_heaps_) h.clear();
  }
}

KernelStageCycles QueryKernel::attribute_stages(
    const std::vector<std::uint64_t>& phase_cycles) const {
  KernelStageCycles out;
  assert(phase_cycles.size() == program_.size());
  for (std::size_t i = 0; i < program_.size(); ++i) {
    switch (program_[i].step) {
      case Step::kLutBuild:
      case Step::kLutReduce:
      case Step::kLutQuantize:
      case Step::kComboSums:
        out.lut_build += phase_cycles[i];
        break;
      case Step::kDistance:
        out.distance += phase_cycles[i];
        break;
      case Step::kMerge:
        out.topk += phase_cycles[i];
        break;
    }
  }
  return out;
}

}  // namespace upanns::core
