// Multi-host UpANNS (paper Sec 5.5): "UpANNS can be easily extended to
// multi-host configurations. Only query distribution and result aggregation
// require cross-host communication. The core memory-intensive search
// operations remain local to each host."
//
// Each host runs a full UpAnnsEngine over a *cluster shard* of one shared
// IVFPQ index (whole clusters never split — the same rule Opt1 applies to
// DPUs). A batch is broadcast to every host, each host filters/schedules/
// searches its own clusters on its own PIM DIMMs, and the coordinator merges
// the per-host top-k lists. The network cost model charges the broadcast and
// the gather; everything else is host-local.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"

namespace upanns::core {

struct MultiHostOptions {
  std::size_t n_hosts = 2;
  UpAnnsOptions per_host;           ///< PIM configuration of each host
  /// Coordinator <-> host link bandwidth (bytes/s); 25 GbE by default.
  double network_bandwidth = 25e9 / 8;
  double network_latency = 50e-6;   ///< per-message one-way latency
};

struct MultiHostReport {
  std::vector<std::vector<common::Neighbor>> neighbors;
  double seconds = 0;               ///< simulated batch wall time
  double qps = 0;
  double network_seconds = 0;       ///< broadcast + gather share
  double slowest_host_seconds = 0;
  std::vector<baselines::StageTimes> host_times;
};

class MultiHostUpAnns {
 public:
  /// Shard the index's clusters across hosts (largest-first onto the
  /// least-loaded host, by workload) and build one engine per host.
  MultiHostUpAnns(const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
                  MultiHostOptions options);

  std::size_t n_hosts() const { return engines_.size(); }
  /// Which host owns a cluster.
  std::uint32_t host_of(std::size_t cluster) const { return owner_[cluster]; }
  UpAnnsEngine& host_engine(std::size_t h) { return *engines_[h]; }

  MultiHostReport search(const data::Dataset& queries);

  /// Attach a registry to the coordinator (broadcast/gather bytes, network
  /// seconds, inter-host merge size) and to every per-host engine.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  const ivf::IvfIndex& index_;
  MultiHostOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<std::uint32_t> owner_;
  std::vector<std::unique_ptr<UpAnnsEngine>> engines_;
};

}  // namespace upanns::core
