// Multi-host UpANNS (paper Sec 5.5): "UpANNS can be easily extended to
// multi-host configurations. Only query distribution and result aggregation
// require cross-host communication. The core memory-intensive search
// operations remain local to each host."
//
// Each host runs a full UpAnnsEngine over a *cluster shard* of one shared
// IVFPQ index (whole clusters never split — the same rule Opt1 applies to
// DPUs). A batch is broadcast to every host, each host filters/schedules/
// searches its own clusters on its own PIM DIMMs, and the coordinator merges
// the per-host top-k lists.
//
// Cost model (see DESIGN.md "Multi-host pipeline"):
//   seconds = coord_filter + slowest_host + network + coord_merge
// where coord_filter is the *one* coordinator-side cluster-filtering pass
// (hosts share the coordinator's probe lists; their own engine reports still
// book a filter stage, which the aggregation removes so it is charged once),
// slowest_host is the largest per-host remainder (Alg-2 schedule + device
// stages), network is the broadcast fan-out (the coordinator NIC serializes
// one per-host payload *per host*) plus the gather of every host's top-k,
// and coord_merge is the coordinator-side k-way merge across host lists.
//
// MultiHostBatchPipeline streams query batches through the cluster the same
// way core::BatchPipeline streams them through one engine: the coordinator
// phases of batch i (gather + inter-host merge) and of batch i+1 (filter +
// broadcast) overlap the host fleet's schedule/device phase of the batch in
// flight. Execution stays serial — overlap changes only the simulated time
// accounting, so per-query neighbors are bit-identical with overlap on or
// off, and --no-overlap reproduces the synchronous per-batch `seconds` sums
// exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/adaptive.hpp"
#include "core/engine.hpp"

namespace upanns::core {

struct MultiHostOptions {
  std::size_t n_hosts = 2;
  UpAnnsOptions per_host;           ///< PIM configuration of each host
  /// Coordinator <-> host link bandwidth (bytes/s); 25 GbE by default.
  double network_bandwidth = 25e9 / 8;
  double network_latency = 50e-6;   ///< per-message one-way latency
};

/// One host's share of a batch, under the coordinator's accounting.
struct MultiHostHostSlot {
  /// Leading host-side stages on this host *after* the shared coordinator
  /// filter (i.e. the Alg-2 schedule prefix).
  double host_seconds = 0;
  double device_seconds = 0;   ///< push + launch + gather + local merge
  /// This host's payload share of broadcast + gather (no per-message
  /// latency; the per-transfer latencies live in the batch-level fields).
  double network_seconds = 0;
  bool active = true;          ///< false for hosts that own no clusters
};

struct MultiHostReport {
  std::vector<std::vector<common::Neighbor>> neighbors;
  double seconds = 0;               ///< simulated batch wall time
  double qps = 0;
  double network_seconds = 0;       ///< broadcast + gather share
  double broadcast_seconds = 0;     ///< coordinator NIC fan-out, all hosts
  double gather_seconds = 0;        ///< per-host top-k readback
  double coord_filter_seconds = 0;  ///< one coordinator filtering pass
  double coord_merge_seconds = 0;   ///< coordinator k-way inter-host merge
  /// Largest per-host remainder (schedule + device stages); the shared
  /// coordinator filter is accounted once in coord_filter_seconds, never
  /// per host.
  double slowest_host_seconds = 0;
  std::vector<baselines::StageTimes> host_times;
  std::vector<MultiHostHostSlot> host_slots;
};

class MultiHostUpAnns {
 public:
  /// Shard the index's clusters across hosts (largest-first onto the
  /// least-loaded host, by workload) and build one engine per host. Hosts
  /// that end up owning no clusters (n_hosts > n_clusters) get no engine;
  /// they contribute empty lists and zero time to every search.
  MultiHostUpAnns(const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
                  MultiHostOptions options);

  /// Updatable cluster: same sharding, but every per-host engine may mutate
  /// the shared index and incrementally patch its own MRAM images. With no
  /// writes issued it serves bit-identically to the read-only overload.
  MultiHostUpAnns(ivf::IvfIndex& index, const ivf::ClusterStats& stats,
                  MultiHostOptions options);

  std::size_t n_hosts() const { return engines_.size(); }
  /// Hosts that own at least one cluster (and therefore run an engine).
  std::size_t n_active_hosts() const { return n_active_; }
  bool host_active(std::size_t h) const { return engines_[h] != nullptr; }
  /// Which host owns a cluster. Throws std::out_of_range on an invalid
  /// cluster index.
  std::uint32_t host_of(std::size_t cluster) const;
  /// Valid only for active hosts (throws std::logic_error otherwise).
  UpAnnsEngine& host_engine(std::size_t h);

  const MultiHostOptions& options() const { return options_; }

  /// The shared index every host shards. The adaptive pipeline computes one
  /// coordinator-side probe pass from it for the whole fleet.
  const ivf::IvfIndex& index() const { return index_; }

  MultiHostReport search(const data::Dataset& queries);
  /// Search with externally computed probe lists (skips the coordinator
  /// filtering pass's computation but still charges its simulated time,
  /// exactly like UpAnnsEngine::search_with_probes).
  MultiHostReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes);

  /// Attach a registry to the coordinator (broadcast/gather bytes, network
  /// seconds, inter-host merge size) and to every per-host engine.
  void set_metrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attach (or detach) a span log: MultiHostBatchPipeline then assembles
  /// coordinator/host/per-query spans post hoc (obs::append_multihost_spans).
  void set_spans(obs::SpanLog* spans) { spans_ = spans; }
  obs::SpanLog* spans() const { return spans_; }

  // ----- Streaming updates (clusters built from a mutable index) -----
  //
  // Mutations route through one engine (the index and its dirty epoch are
  // shared, so every host's engine observes the drift); each host then
  // patches only the clusters resident in its own shard. Read-only clusters
  // throw std::logic_error, mirroring UpAnnsEngine.

  /// True when constructed from a non-const index.
  bool updatable() const { return mutable_index_ != nullptr; }

  void upsert(std::span<const std::uint32_t> ids,
              std::span<const float> vectors);
  std::size_t remove(std::span<const std::uint32_t> ids);
  std::size_t compact(double min_tombstone_ratio = 0.0);

  /// True when any host's MRAM images are stale w.r.t. the shared index.
  bool needs_patch() const;

  /// Patch every active host's MRAM images. Hosts patch concurrently, so
  /// the simulated seconds are the slowest host's; bytes/lists/moves are
  /// summed across hosts. search() applies this lazily like UpAnnsBackend.
  UpAnnsEngine::PatchStats patch_hosts();

 private:
  void init(const ivf::ClusterStats& stats);

  const ivf::IvfIndex& index_;
  ivf::IvfIndex* mutable_index_ = nullptr;
  MultiHostOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanLog* spans_ = nullptr;
  std::vector<std::uint32_t> owner_;
  std::vector<std::unique_ptr<UpAnnsEngine>> engines_;
  std::size_t n_active_ = 0;
};

struct MultiHostPipelineOptions {
  /// Overlap the coordinator phases with the host fleet's device phase.
  /// False reproduces the synchronous per-batch totals exactly (CLI
  /// --no-overlap).
  bool overlap = true;
  /// Online drift adaptation, mirroring BatchPipelineOptions: every host
  /// runs its own controller over the coordinator's shared probe stream and
  /// adjusts the replicas of its own shard at batch drain points. kOff runs
  /// no controller code at all — byte-identical to builds without one.
  AdaptMode adapt = AdaptMode::kOff;
  /// Controller tuning; window_batches doubles as the decision cooldown.
  AdaptiveOptions adaptive{};
};

/// One scheduled batch in a multi-host pipeline run. The three phases
/// always sum to report.seconds:
///   pre    coordinator filter + broadcast fan-out
///   device slowest host's schedule + device remainder
///   post   gather + coordinator inter-host merge
struct MultiHostBatchSlot {
  double pre_seconds = 0;
  double device_seconds = 0;
  double post_seconds = 0;
  /// Incremental MRAM patch applied across the host fleet before this
  /// batch (updatable clusters with pending mutations only; folded into
  /// device_seconds — the patch occupies the MRAM buses, so it leads the
  /// fleet's device phase like the single-host pipeline's patch).
  double patch_seconds = 0;
  std::uint64_t patch_bytes = 0;
  /// Drift-controller replication patch applied across the fleet before this
  /// batch, after the mutation patch (folded into device_seconds the same
  /// way). Hosts adapt their own MRAM buses concurrently: seconds is the
  /// slowest host's, bytes sum; action/drift record the most severe host.
  double adapt_seconds = 0;
  std::uint64_t adapt_bytes = 0;
  AdaptAction adapt_action = AdaptAction::kNone;
  double adapt_drift = 0;
  MultiHostReport report;
};

struct MultiHostPipelineReport {
  std::vector<MultiHostBatchSlot> slots;
  double serial_seconds = 0;   ///< sum of per-batch totals (no-overlap time)
  double elapsed_seconds = 0;  ///< simulated end-to-end time of this run
  bool overlapped = true;
  std::size_t n_queries = 0;
  double qps = 0;              ///< n_queries / elapsed_seconds
};

/// Simulated-time windows of one batch on the coordinator and host-fleet
/// lanes, under the pipeline's accounting (used by the Perfetto exporter
/// and by elapsed_seconds itself, so the two can never drift).
struct MultiHostBatchWindows {
  double pre_start = 0, pre_end = 0;        ///< coordinator lane
  double device_start = 0, device_end = 0;  ///< host-fleet lanes
  double post_start = 0, post_end = 0;      ///< coordinator lane
};

/// Lay every batch out under the two-resource model: the coordinator is one
/// serial resource running pre(0), pre(1), post(0), pre(2), post(1), ...;
/// the host fleet is the other, running device phases in batch order. Each
/// phase additionally waits for its input: device(i) needs pre(i), post(i)
/// needs device(i). The last window's post_end equals
/// MultiHostPipelineReport::elapsed_seconds bit-for-bit. Serial runs lay
/// the three phases of every batch back to back instead.
std::vector<MultiHostBatchWindows> multihost_timeline(
    const MultiHostPipelineReport& report);

/// Streams query batches through a MultiHostUpAnns cluster with the
/// double-buffered accounting described in the file comment. Execution
/// itself stays serial, so per-query neighbors are bit-identical with
/// overlap on or off.
class MultiHostBatchPipeline {
 public:
  explicit MultiHostBatchPipeline(MultiHostUpAnns& cluster,
                                  MultiHostPipelineOptions opts = {});

  MultiHostPipelineReport run(const std::vector<data::Dataset>& batches);

  /// Mixed read/write workload, mirroring BatchPipeline: `mutate(i)` runs
  /// before batch i and may issue cluster upsert/remove/compact calls;
  /// pending mutations are applied as one fleet-wide MRAM patch
  /// (patch_hosts) charged to the slot's device phase. A null hook (or one
  /// that never mutates) reproduces the read-only run bit-for-bit.
  using MutationHook = std::function<void(std::size_t batch_index)>;
  MultiHostPipelineReport run(const std::vector<data::Dataset>& batches,
                              const MutationHook& mutate);

 private:
  void apply_pending_adaptation(MultiHostBatchSlot& slot);
  void observe_and_decide(
      const std::vector<std::vector<std::uint32_t>>& probes);

  /// Per-host drift state: every host watches the same coordinator probe
  /// stream but sizes replica counts against its own shard's placement.
  struct HostAdapt {
    std::unique_ptr<AdaptiveController> controller;
    AdaptReport pending;
    std::vector<double> pending_freqs;
  };

  MultiHostUpAnns& cluster_;
  MultiHostPipelineOptions opts_;
  std::vector<HostAdapt> adapt_;
  std::size_t observed_since_action_ = 0;
};

}  // namespace upanns::core
