// Offline half of UpAnnsEngine: codebook quantization, cluster encoding
// (Opt3), replica placement (Opt1) and MRAM image construction. The online
// query path lives in core/pipeline.cpp.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/fastround.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "pim/transfer.hpp"

namespace upanns::core {

UpAnnsEngine::UpAnnsEngine(ivf::IvfIndex& index, const ivf::ClusterStats& stats,
                           UpAnnsOptions options)
    : UpAnnsEngine(static_cast<const ivf::IvfIndex&>(index), stats,
                   std::move(options)) {
  mutable_index_ = &index;
}

UpAnnsEngine::UpAnnsEngine(const ivf::IvfIndex& index,
                           const ivf::ClusterStats& stats,
                           UpAnnsOptions options)
    : index_(index), options_(std::move(options)) {
  if (options_.n_dpus == 0) throw std::invalid_argument("n_dpus == 0");
  options_.placement.n_dpus = options_.n_dpus;

  mode_ = options_.naive_raw_codes
              ? KernelMode::kNaiveRaw
              : (options_.opt_cae ? KernelMode::kCae
                                  : KernelMode::kDirectTokens);

  // --- Quantize the PQ codebooks to int8 (the WRAM-resident form; paper
  // Sec 4.2.1 budgets D x 256 bytes). One scale per subspace.
  const auto& pq = index_.pq();
  const std::size_t m = pq.m();
  const std::size_t dsub = pq.dsub();
  codebook_q_.resize(m * 256 * dsub);
  codebook_scales_.resize(m);
  const std::span<const float> cb = pq.codebooks();
  for (std::size_t s = 0; s < m; ++s) {
    float mx = 0.f;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      mx = std::max(mx, std::abs(cb[s * 256 * dsub + i]));
    }
    const float scale = mx > 0.f ? mx / 127.f : 1.f;
    codebook_scales_[s] = scale;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      // round_nonneg on |r| == lround's round-half-away-from-zero here
      // (|r| <= 127 by the scale construction), minus the libm call.
      const float r = cb[s * 256 * dsub + i] / scale;
      codebook_q_[s * 256 * dsub + i] = static_cast<std::int8_t>(
          r < 0.f ? -common::round_nonneg(-r) : common::round_nonneg(r));
    }
  }

  // --- Encode every cluster once (replicas share the encoding).
  encodings_.resize(index_.n_clusters());
  double weighted_reduction = 0;
  std::size_t total_records = 0;
  common::ThreadPool::global().parallel_for(
      0, index_.n_clusters(), [&](std::size_t c) { encode_cluster(c); }, 1);
  for (std::size_t c = 0; c < index_.n_clusters(); ++c) {
    weighted_reduction += encodings_[c].length_reduction() *
                          static_cast<double>(encodings_[c].n_records);
    total_records += encodings_[c].n_records;
  }
  build_length_reduction_ =
      total_records > 0 ? weighted_reduction / static_cast<double>(total_records)
                        : 0;

  // --- Place and load.
  placement_ = options_.opt_placement
                   ? place_clusters(index_, stats, options_.placement)
                   : place_random(index_, stats, options_.placement,
                                  options_.seed);
  set_placement_frequencies(stats.frequencies);
  load_dpus(stats);
}

void UpAnnsEngine::set_placement_frequencies(
    const std::vector<double>& frequencies) {
  placement_frequencies_ = frequencies;
  placement_frequencies_.resize(index_.n_clusters(), 0.0);
  double total = 0;
  for (double f : placement_frequencies_) total += f;
  if (total > 0) {
    for (double& f : placement_frequencies_) f /= total;
  }
}

void UpAnnsEngine::set_k(std::size_t k) {
  if (k == 0) throw std::invalid_argument("set_k: k == 0");
  options_.k = k;
}

void UpAnnsEngine::set_nprobe(std::size_t nprobe) {
  if (nprobe == 0) throw std::invalid_argument("set_nprobe: nprobe == 0");
  options_.nprobe = nprobe;
}

void UpAnnsEngine::set_mram_read_vectors(std::size_t vectors) {
  // 0 is valid: one maximal DMA per chunk (Fig 17 rightmost point).
  options_.mram_read_vectors = vectors;
}

void UpAnnsEngine::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (system_) system_->set_metrics(registry);
}

UpAnnsEngine::PatchStats UpAnnsEngine::relocate(const ivf::ClusterStats& stats) {
  // A relocate rebuilds every MRAM image from the shared encodings, so any
  // pending index mutations must land in the encodings first.
  if (updatable()) {
    for (std::size_t c = 0; c < index_.n_clusters(); ++c) {
      refresh_encoding(c);
    }
  }
  placement_ = options_.opt_placement
                   ? place_clusters(index_, stats, options_.placement)
                   : place_random(index_, stats, options_.placement,
                                  options_.seed);
  set_placement_frequencies(stats.frequencies);
  const std::vector<std::size_t> dpu_bytes = load_dpus(stats);

  // Charge the reload like every other host->DPU push so the online
  // pipelines can fold a drain-point relocation into a batch slot.
  PatchStats out;
  out.bytes_written = load_image_bytes_;
  out.lists_patched = placement_.total_replicas;
  out.seconds = pim::TransferEngine::batch(dpu_bytes).seconds;
  return out;
}

void UpAnnsEngine::encode_cluster(std::size_t c) {
  const ivf::InvertedList& list = index_.list(c);
  const std::size_t m = index_.pq_m();
  switch (mode_) {
    case KernelMode::kCae:
      encodings_[c] = cae_encode_cluster(list, m, options_.cae);
      break;
    case KernelMode::kDirectTokens:
      encodings_[c] = direct_encode_cluster(list, m);
      break;
    case KernelMode::kNaiveRaw:
      // Raw mode streams the original codes; keep only bookkeeping.
      encodings_[c] = CaeClusterEncoding{};
      encodings_[c].m = m;
      encodings_[c].n_records = list.size();
      encodings_[c].total_tokens = list.size() * m;
      break;
  }
}

void UpAnnsEngine::refresh_encoding(std::size_t c) {
  const ivf::InvertedList& list = index_.list(c);
  CaeClusterEncoding& enc = encodings_[c];
  if (list.compact_epoch != enc_compact_[c]) {
    // Slots physically moved — the stream must be rebuilt (which also
    // re-mines CAE combos over the surviving codes).
    encode_cluster(c);
    enc_compact_[c] = list.compact_epoch;
    return;
  }
  if (list.size() <= enc.n_records) return;  // removes only: stream unchanged
  const std::size_t m = index_.pq_m();
  if (mode_ == KernelMode::kNaiveRaw) {
    enc.total_tokens += (list.size() - enc.n_records) * m;
    enc.n_records = list.size();
    return;
  }
  // Append direct-address tokens for the new records. Mixing direct tokens
  // into a CAE stream is exact: a distance is an order-independent u32 sum
  // of LUT entries, so an appended record scores bit-identically to the
  // combo-compressed form a full re-encode might choose.
  for (std::size_t r = enc.n_records; r < list.size(); ++r) {
    const std::uint8_t* code = list.code(r, m);
    enc.tokens.push_back(static_cast<std::uint16_t>(m));
    for (std::size_t pos = 0; pos < m; ++pos) {
      enc.tokens.push_back(static_cast<std::uint16_t>(pos * 256 + code[pos]));
    }
    enc.total_tokens += m;
    ++enc.n_records;
  }
}

std::size_t UpAnnsEngine::slack_bytes(std::size_t bytes) const {
  const double s = std::max(0.0, options_.mram_list_slack);
  const auto padded = static_cast<std::size_t>(
      std::ceil(static_cast<double>(bytes) * (1.0 + s)));
  return (padded + 7) / 8 * 8;
}

void UpAnnsEngine::build_cluster_image(std::uint32_t c,
                                       ClusterImage& out) const {
  const ivf::InvertedList& list = index_.list(c);
  const CaeClusterEncoding& enc = encodings_[c];
  assert(enc.n_records == list.size());
  out.n_records = static_cast<std::uint32_t>(list.size());
  out.n_tombstones = list.n_tombstones;

  out.ids.assign(list.ids.begin(), list.ids.end());
  if (list.has_tombstones()) {
    for (std::size_t i = 0; i < out.ids.size(); ++i) {
      if (list.is_dead(i)) out.ids[i] = kTombstoneId;
    }
  }

  out.chunk_index.clear();
  out.combos.clear();
  if (mode_ == KernelMode::kNaiveRaw) {
    out.stream.assign(list.codes.begin(), list.codes.end());
    out.stream_elems = list.codes.size();
    return;
  }
  out.stream.resize(enc.tokens.size() * sizeof(std::uint16_t));
  if (!enc.tokens.empty()) {
    std::memcpy(out.stream.data(), enc.tokens.data(), out.stream.size());
  }
  out.stream_elems = enc.tokens.size();

  // Chunk index: element offset of every kChunkRecords-th record.
  std::size_t off = 0;
  for (std::size_t r = 0; r < enc.n_records; ++r) {
    if (r % kChunkRecords == 0) {
      out.chunk_index.push_back(static_cast<std::uint32_t>(off));
    }
    off += 1 + enc.tokens[off];
  }

  if (!enc.combos.empty()) {
    out.combos.resize(enc.combos.size() * 4);
    for (std::size_t i = 0; i < enc.combos.size(); ++i) {
      out.combos[4 * i + 0] = enc.combos[i].pos;
      out.combos[4 * i + 1] = enc.combos[i].c0;
      out.combos[4 * i + 2] = enc.combos[i].c1;
      out.combos[4 * i + 3] = enc.combos[i].c2;
    }
  }
}

void UpAnnsEngine::snapshot_loaded_state() {
  loaded_gen_.resize(index_.n_clusters());
  enc_compact_.resize(index_.n_clusters());
  for (std::size_t c = 0; c < index_.n_clusters(); ++c) {
    loaded_gen_[c] = index_.list(c).generation;
    enc_compact_[c] = index_.list(c).compact_epoch;
  }
  loaded_epoch_ = index_.mutation_epoch();
}

std::vector<std::size_t> UpAnnsEngine::load_dpus(const ivf::ClusterStats&) {
  system_ = std::make_unique<pim::PimSystem>(options_.n_dpus);
  system_->set_metrics(metrics_);  // relocate() rebuilds the system
  per_dpu_.assign(options_.n_dpus, PerDpu{});

  const std::size_t m = index_.pq_m();
  const std::size_t dsub = index_.pq().dsub();
  const std::size_t dim = index_.dim();

  std::vector<std::size_t> dpu_bytes(options_.n_dpus, 0);
  common::ThreadPool::global().parallel_for(
      0, options_.n_dpus,
      [&](std::size_t d) {
        pim::Dpu& dpu = system_->dpu(d);
        PerDpu& pd = per_dpu_[d];
        std::uint64_t bytes = 0;
        pd.cluster_slot.assign(index_.n_clusters(), -1);
        pd.layout.dim = dim;
        pd.layout.m = m;
        pd.layout.dsub = dsub;

        pd.layout.codebook_off =
            dpu.mram_alloc(codebook_q_.size(), "codebook");
        dpu.host_write(pd.layout.codebook_off, codebook_q_.data(),
                       codebook_q_.size());
        bytes += codebook_q_.size();
        pd.layout.cb_scale_off =
            dpu.mram_alloc(codebook_scales_.size() * sizeof(float), "cb-scales");
        dpu.host_write(pd.layout.cb_scale_off, codebook_scales_.data(),
                       codebook_scales_.size() * sizeof(float));
        bytes += codebook_scales_.size() * sizeof(float);

        // List regions are over-allocated by mram_list_slack so streaming
        // inserts patch in place. The slack is pure address-space: DMA costs
        // are charged per byte moved, never per offset, so read-only results
        // are unchanged by it.
        ClusterImage img;
        for (std::uint32_t c : placement_.dpu_clusters[d]) {
          build_cluster_image(c, img);
          DpuClusterData cd;
          cd.cluster_id = c;
          cd.n_records = img.n_records;
          cd.n_tombstones = img.n_tombstones;

          const std::size_t ids_bytes = img.ids.size() * sizeof(std::uint32_t);
          cd.ids_cap = slack_bytes(ids_bytes);
          cd.ids_off = dpu.mram_alloc(cd.ids_cap, "ids");
          if (ids_bytes > 0) {
            dpu.host_write(cd.ids_off, img.ids.data(), ids_bytes);
          }
          bytes += ids_bytes;

          cd.stream_cap = slack_bytes(img.stream.size());
          cd.stream_off = dpu.mram_alloc(
              cd.stream_cap, mode_ == KernelMode::kNaiveRaw ? "codes" : "tokens");
          if (!img.stream.empty()) {
            dpu.host_write(cd.stream_off, img.stream.data(), img.stream.size());
          }
          cd.stream_len = img.stream_elems;
          bytes += img.stream.size();

          const std::size_t chunk_bytes =
              img.chunk_index.size() * sizeof(std::uint32_t);
          cd.n_chunks = static_cast<std::uint32_t>(img.chunk_index.size());
          if (chunk_bytes > 0) {
            cd.chunk_cap = slack_bytes(chunk_bytes);
            cd.chunk_index_off = dpu.mram_alloc(cd.chunk_cap, "chunk-index");
            dpu.host_write(cd.chunk_index_off, img.chunk_index.data(),
                           chunk_bytes);
            bytes += chunk_bytes;
          }

          cd.n_combos = static_cast<std::uint32_t>(img.combos.size() / 4);
          if (!img.combos.empty()) {
            cd.combos_cap = slack_bytes(img.combos.size());
            cd.combos_off = dpu.mram_alloc(cd.combos_cap, "combos");
            dpu.host_write(cd.combos_off, img.combos.data(), img.combos.size());
            bytes += img.combos.size();
          }

          cd.centroid_off = dpu.mram_alloc(dim * sizeof(float), "centroid");
          dpu.host_write(cd.centroid_off, index_.centroid(c),
                         dim * sizeof(float));
          bytes += dim * sizeof(float);

          pd.cluster_slot[c] =
              static_cast<std::int32_t>(pd.layout.clusters.size());
          pd.layout.clusters.push_back(cd);
        }
        pd.static_mark = dpu.mram_mark();
        dpu_bytes[d] = static_cast<std::size_t>(bytes);
      },
      1);

  load_image_bytes_ = 0;
  for (std::size_t b : dpu_bytes) load_image_bytes_ += b;
  snapshot_loaded_state();
  return dpu_bytes;
}

}  // namespace upanns::core
