// Offline half of UpAnnsEngine: codebook quantization, cluster encoding
// (Opt3), replica placement (Opt1) and MRAM image construction. The online
// query path lives in core/pipeline.cpp.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"

namespace upanns::core {

UpAnnsEngine::UpAnnsEngine(const ivf::IvfIndex& index,
                           const ivf::ClusterStats& stats,
                           UpAnnsOptions options)
    : index_(index), options_(std::move(options)) {
  if (options_.n_dpus == 0) throw std::invalid_argument("n_dpus == 0");
  options_.placement.n_dpus = options_.n_dpus;

  mode_ = options_.naive_raw_codes
              ? KernelMode::kNaiveRaw
              : (options_.opt_cae ? KernelMode::kCae
                                  : KernelMode::kDirectTokens);

  // --- Quantize the PQ codebooks to int8 (the WRAM-resident form; paper
  // Sec 4.2.1 budgets D x 256 bytes). One scale per subspace.
  const auto& pq = index_.pq();
  const std::size_t m = pq.m();
  const std::size_t dsub = pq.dsub();
  codebook_q_.resize(m * 256 * dsub);
  codebook_scales_.resize(m);
  const std::span<const float> cb = pq.codebooks();
  for (std::size_t s = 0; s < m; ++s) {
    float mx = 0.f;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      mx = std::max(mx, std::abs(cb[s * 256 * dsub + i]));
    }
    const float scale = mx > 0.f ? mx / 127.f : 1.f;
    codebook_scales_[s] = scale;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      codebook_q_[s * 256 * dsub + i] = static_cast<std::int8_t>(
          std::lround(cb[s * 256 * dsub + i] / scale));
    }
  }

  // --- Encode every cluster once (replicas share the encoding).
  encodings_.resize(index_.n_clusters());
  double weighted_reduction = 0;
  std::size_t total_records = 0;
  common::ThreadPool::global().parallel_for(
      0, index_.n_clusters(),
      [&](std::size_t c) {
        const ivf::InvertedList& list = index_.list(c);
        switch (mode_) {
          case KernelMode::kCae:
            encodings_[c] = cae_encode_cluster(list, m, options_.cae);
            break;
          case KernelMode::kDirectTokens:
            encodings_[c] = direct_encode_cluster(list, m);
            break;
          case KernelMode::kNaiveRaw:
            // Raw mode streams the original codes; keep only bookkeeping.
            encodings_[c] = CaeClusterEncoding{};
            encodings_[c].m = m;
            encodings_[c].n_records = list.size();
            encodings_[c].total_tokens = list.size() * m;
            break;
        }
      },
      1);
  for (std::size_t c = 0; c < index_.n_clusters(); ++c) {
    weighted_reduction += encodings_[c].length_reduction() *
                          static_cast<double>(encodings_[c].n_records);
    total_records += encodings_[c].n_records;
  }
  build_length_reduction_ =
      total_records > 0 ? weighted_reduction / static_cast<double>(total_records)
                        : 0;

  // --- Place and load.
  placement_ = options_.opt_placement
                   ? place_clusters(index_, stats, options_.placement)
                   : place_random(index_, stats, options_.placement,
                                  options_.seed);
  load_dpus(stats);
}

void UpAnnsEngine::set_k(std::size_t k) {
  if (k == 0) throw std::invalid_argument("set_k: k == 0");
  options_.k = k;
}

void UpAnnsEngine::set_nprobe(std::size_t nprobe) {
  if (nprobe == 0) throw std::invalid_argument("set_nprobe: nprobe == 0");
  options_.nprobe = nprobe;
}

void UpAnnsEngine::set_mram_read_vectors(std::size_t vectors) {
  // 0 is valid: one maximal DMA per chunk (Fig 17 rightmost point).
  options_.mram_read_vectors = vectors;
}

void UpAnnsEngine::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (system_) system_->set_metrics(registry);
}

void UpAnnsEngine::relocate(const ivf::ClusterStats& stats) {
  placement_ = options_.opt_placement
                   ? place_clusters(index_, stats, options_.placement)
                   : place_random(index_, stats, options_.placement,
                                  options_.seed);
  load_dpus(stats);
}

void UpAnnsEngine::load_dpus(const ivf::ClusterStats&) {
  system_ = std::make_unique<pim::PimSystem>(options_.n_dpus);
  system_->set_metrics(metrics_);  // relocate() rebuilds the system
  per_dpu_.assign(options_.n_dpus, PerDpu{});

  const std::size_t m = index_.pq_m();
  const std::size_t dsub = index_.pq().dsub();
  const std::size_t dim = index_.dim();

  common::ThreadPool::global().parallel_for(
      0, options_.n_dpus,
      [&](std::size_t d) {
        pim::Dpu& dpu = system_->dpu(d);
        PerDpu& pd = per_dpu_[d];
        pd.cluster_slot.assign(index_.n_clusters(), -1);
        pd.layout.dim = dim;
        pd.layout.m = m;
        pd.layout.dsub = dsub;

        pd.layout.codebook_off =
            dpu.mram_alloc(codebook_q_.size(), "codebook");
        dpu.host_write(pd.layout.codebook_off, codebook_q_.data(),
                       codebook_q_.size());
        pd.layout.cb_scale_off =
            dpu.mram_alloc(codebook_scales_.size() * sizeof(float), "cb-scales");
        dpu.host_write(pd.layout.cb_scale_off, codebook_scales_.data(),
                       codebook_scales_.size() * sizeof(float));

        for (std::uint32_t c : placement_.dpu_clusters[d]) {
          const ivf::InvertedList& list = index_.list(c);
          const CaeClusterEncoding& enc = encodings_[c];
          DpuClusterData cd;
          cd.cluster_id = c;
          cd.n_records = static_cast<std::uint32_t>(list.size());

          cd.ids_off = dpu.mram_alloc(list.ids.size() * sizeof(std::uint32_t),
                                      "ids");
          dpu.host_write(cd.ids_off, list.ids.data(),
                         list.ids.size() * sizeof(std::uint32_t));

          if (mode_ == KernelMode::kNaiveRaw) {
            cd.stream_off = dpu.mram_alloc(list.codes.size(), "codes");
            dpu.host_write(cd.stream_off, list.codes.data(),
                           list.codes.size());
            cd.stream_len = list.codes.size();
          } else {
            cd.stream_off = dpu.mram_alloc(
                enc.tokens.size() * sizeof(std::uint16_t), "tokens");
            dpu.host_write(cd.stream_off, enc.tokens.data(),
                           enc.tokens.size() * sizeof(std::uint16_t));
            cd.stream_len = enc.tokens.size();

            // Chunk index: element offset of every kChunkRecords-th record.
            std::vector<std::uint32_t> chunk_index;
            std::size_t off = 0;
            for (std::size_t r = 0; r < enc.n_records; ++r) {
              if (r % kChunkRecords == 0) {
                chunk_index.push_back(static_cast<std::uint32_t>(off));
              }
              off += 1 + enc.tokens[off];
            }
            cd.n_chunks = static_cast<std::uint32_t>(chunk_index.size());
            if (!chunk_index.empty()) {
              cd.chunk_index_off = dpu.mram_alloc(
                  chunk_index.size() * sizeof(std::uint32_t), "chunk-index");
              dpu.host_write(cd.chunk_index_off, chunk_index.data(),
                             chunk_index.size() * sizeof(std::uint32_t));
            }

            if (!enc.combos.empty()) {
              std::vector<std::uint8_t> packed(enc.combos.size() * 4);
              for (std::size_t i = 0; i < enc.combos.size(); ++i) {
                packed[4 * i + 0] = enc.combos[i].pos;
                packed[4 * i + 1] = enc.combos[i].c0;
                packed[4 * i + 2] = enc.combos[i].c1;
                packed[4 * i + 3] = enc.combos[i].c2;
              }
              cd.combos_off = dpu.mram_alloc(packed.size(), "combos");
              dpu.host_write(cd.combos_off, packed.data(), packed.size());
              cd.n_combos = static_cast<std::uint32_t>(enc.combos.size());
            }
          }

          cd.centroid_off = dpu.mram_alloc(dim * sizeof(float), "centroid");
          dpu.host_write(cd.centroid_off, index_.centroid(c),
                         dim * sizeof(float));

          pd.cluster_slot[c] =
              static_cast<std::int32_t>(pd.layout.clusters.size());
          pd.layout.clusters.push_back(cd);
        }
        pd.static_mark = dpu.mram_mark();
      },
      1);
}

}  // namespace upanns::core
