#include "core/placement.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/hw_specs.hpp"
#include "common/rng.hpp"
#include "quant/kmeans.hpp"

namespace upanns::core {

std::size_t mram_bytes_per_vector(std::size_t pq_m) {
  // id (4B) + u16 token stream upper bound (2 * (m + 1)) + chunk-index share.
  return 4 + 2 * (pq_m + 1) + 2;
}

std::vector<std::uint32_t> proximity_order(const ivf::IvfIndex& index) {
  const std::size_t nc = index.n_clusters();
  std::vector<std::uint32_t> order;
  order.reserve(nc);
  std::vector<bool> used(nc, false);

  // Greedy chain: start at cluster 0, repeatedly hop to the nearest unused
  // centroid. O(nc^2) — fine for the few thousand clusters IVF uses.
  std::uint32_t cur = 0;
  used[0] = true;
  order.push_back(0);
  for (std::size_t step = 1; step < nc; ++step) {
    const float* cv = index.centroid(cur);
    std::uint32_t best = 0;
    float best_d = std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < nc; ++c) {
      if (used[c]) continue;
      const float d = quant::l2_sq(cv, index.centroid(c), index.dim());
      if (d < best_d) {
        best_d = d;
        best = static_cast<std::uint32_t>(c);
      }
    }
    used[best] = true;
    order.push_back(best);
    cur = best;
  }
  return order;
}

namespace {

std::size_t derive_max_dpu_vectors(const ivf::IvfIndex& index,
                                   const PlacementOptions& opts) {
  if (opts.max_dpu_vectors > 0) return opts.max_dpu_vectors;
  // Leave room for codebooks, centroids and result buffers; budget 90% of
  // MRAM for inverted lists.
  const std::size_t budget =
      static_cast<std::size_t>(0.9 * static_cast<double>(hw::kMramBytes));
  return budget / mram_bytes_per_vector(index.pq_m());
}

}  // namespace

Placement place_clusters(const ivf::IvfIndex& index,
                         const ivf::ClusterStats& stats,
                         const PlacementOptions& opts) {
  const std::size_t ndpu = opts.n_dpus;
  if (ndpu == 0) throw std::invalid_argument("place_clusters: n_dpus == 0");
  const std::size_t nc = index.n_clusters();
  const std::size_t max_vecs = derive_max_dpu_vectors(index, opts);
  const double w_bar =
      std::max(stats.average_workload(ndpu),
               std::numeric_limits<double>::min());

  Placement out;
  out.cluster_dpus.resize(nc);
  out.dpu_clusters.resize(ndpu);
  out.dpu_workload.assign(ndpu, 0.0);
  out.dpu_vectors.assign(ndpu, 0);

  // Visit clusters in proximity order so the "cursor parks until full"
  // behavior co-locates spatial neighbors.
  const std::vector<std::uint32_t> order = proximity_order(index);

  std::size_t d_id = 0;  // persistent cursor across clusters (Algorithm 1)
  for (std::uint32_t c : order) {
    if (stats.sizes[c] == 0) continue;
    const double w_total = stats.workloads[c];

    // ncpy = ceil(s_i * f_i / W-bar), at least 1 (Line 2).
    std::size_t ncpy =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     std::ceil(w_total / w_bar)));
    ncpy = std::min(ncpy, ndpu);
    if (opts.max_replicas > 0) ncpy = std::min(ncpy, opts.max_replicas);
    const double w_i = w_total / static_cast<double>(ncpy);  // Line 3

    double thld = 1.0;
    std::size_t count = 0;
    std::size_t remaining = ncpy;
    while (remaining > 0) {
      const bool already_here =
          std::find(out.cluster_dpus[c].begin(), out.cluster_dpus[c].end(),
                    static_cast<std::uint32_t>(d_id)) !=
          out.cluster_dpus[c].end();
      const bool fits_load = out.dpu_workload[d_id] + w_i <= w_bar * thld;
      const bool fits_mem =
          out.dpu_vectors[d_id] + stats.sizes[c] <= max_vecs;
      if (!already_here && fits_load && fits_mem) {
        out.cluster_dpus[c].push_back(static_cast<std::uint32_t>(d_id));
        out.dpu_clusters[d_id].push_back(c);
        out.dpu_workload[d_id] += w_i;
        out.dpu_vectors[d_id] += stats.sizes[c];
        ++out.total_replicas;
        --remaining;
        count = 0;
        // Replicas of the same cluster must land on distinct DPUs, so the
        // cursor advances between replicas; for the *last* replica it stays
        // so the next (spatially close) cluster co-locates here.
        if (remaining > 0) d_id = (d_id + 1) % ndpu;
      } else {
        ++count;
        d_id = (d_id + 1) % ndpu;
        if (count == ndpu) {
          // No suitable DPU under the current threshold (Lines 11-12).
          thld += opts.relax_rate;
          count = 0;
          // Memory, unlike workload, cannot be relaxed: if no DPU has the
          // capacity at all, placement is impossible.
          bool any_mem = false;
          for (std::size_t d = 0; d < ndpu; ++d) {
            const bool here = std::find(out.cluster_dpus[c].begin(),
                                        out.cluster_dpus[c].end(),
                                        static_cast<std::uint32_t>(d)) !=
                              out.cluster_dpus[c].end();
            if (!here && out.dpu_vectors[d] + stats.sizes[c] <= max_vecs) {
              any_mem = true;
              break;
            }
          }
          if (!any_mem) {
            if (out.cluster_dpus[c].empty()) {
              throw std::runtime_error(
                  "place_clusters: cluster too large for any DPU");
            }
            // Accept fewer replicas than requested.
            break;
          }
        }
      }
      out.final_threshold = std::max(out.final_threshold, thld);
    }
  }
  return out;
}

std::vector<CopyDelta> adjust_replicas(
    Placement& placement, const ivf::IvfIndex& index,
    const std::vector<CopyAdjustment>& adjustments,
    const std::vector<std::size_t>& cluster_sizes,
    const std::vector<double>& frequencies, const PlacementOptions& opts) {
  const std::size_t ndpu = placement.n_dpus();
  if (ndpu == 0) throw std::invalid_argument("adjust_replicas: empty placement");
  const std::size_t max_vecs = derive_max_dpu_vectors(index, opts);

  std::vector<CopyDelta> applied;
  for (const CopyAdjustment& adj : adjustments) {
    if (adj.cluster >= placement.cluster_dpus.size()) continue;
    const std::uint32_t c = adj.cluster;
    std::vector<std::uint32_t>& holders = placement.cluster_dpus[c];
    const std::size_t old_ncpy = holders.size();
    if (old_ncpy == 0) continue;  // unplaced cluster: never adopt online

    const std::int64_t raw =
        static_cast<std::int64_t>(old_ncpy) + adj.delta;
    std::size_t target = raw < 1 ? 1 : static_cast<std::size_t>(raw);
    target = std::min(target, ndpu);
    if (opts.max_replicas > 0) target = std::min(target, opts.max_replicas);
    target = std::max<std::size_t>(target, 1);
    if (target == old_ncpy) continue;

    // Strip this cluster's advisory workload shares; they are re-added at
    // the fresh per-replica value once the holder set is final. dpu_workload
    // stays advisory (Alg-2 re-balances per batch), so re-basing only the
    // touched cluster on the new frequencies is sufficient.
    const double w_total =
        static_cast<double>(cluster_sizes[c]) * frequencies[c];
    const double old_share = w_total / static_cast<double>(old_ncpy);
    for (std::uint32_t d : holders) placement.dpu_workload[d] -= old_share;

    while (holders.size() < target) {
      std::size_t best = ndpu;
      for (std::size_t d = 0; d < ndpu; ++d) {
        if (std::find(holders.begin(), holders.end(),
                      static_cast<std::uint32_t>(d)) != holders.end()) {
          continue;
        }
        if (placement.dpu_vectors[d] + cluster_sizes[c] > max_vecs) continue;
        if (best == ndpu ||
            placement.dpu_workload[d] < placement.dpu_workload[best]) {
          best = d;
        }
      }
      if (best == ndpu) break;  // no eligible DPU: accept fewer replicas
      holders.push_back(static_cast<std::uint32_t>(best));
      placement.dpu_clusters[best].push_back(c);
      placement.dpu_vectors[best] += cluster_sizes[c];
      ++placement.total_replicas;
      applied.push_back({c, static_cast<std::uint32_t>(best), true});
    }
    while (holders.size() > target) {
      std::size_t victim_at = 0;
      for (std::size_t i = 1; i < holders.size(); ++i) {
        if (placement.dpu_workload[holders[i]] >
            placement.dpu_workload[holders[victim_at]]) {
          victim_at = i;
        }
      }
      const std::uint32_t victim = holders[victim_at];
      holders.erase(holders.begin() + static_cast<std::ptrdiff_t>(victim_at));
      std::vector<std::uint32_t>& resident = placement.dpu_clusters[victim];
      resident.erase(std::find(resident.begin(), resident.end(), c));
      placement.dpu_vectors[victim] -= cluster_sizes[c];
      --placement.total_replicas;
      applied.push_back({c, victim, false});
    }

    const double share = w_total / static_cast<double>(holders.size());
    for (std::uint32_t d : holders) placement.dpu_workload[d] += share;
  }
  return applied;
}

Placement place_random(const ivf::IvfIndex& index,
                       const ivf::ClusterStats& stats,
                       const PlacementOptions& opts, std::uint64_t seed) {
  const std::size_t ndpu = opts.n_dpus;
  if (ndpu == 0) throw std::invalid_argument("place_random: n_dpus == 0");
  const std::size_t nc = index.n_clusters();
  const std::size_t max_vecs = derive_max_dpu_vectors(index, opts);
  common::Rng rng(seed);

  Placement out;
  out.cluster_dpus.resize(nc);
  out.dpu_clusters.resize(ndpu);
  out.dpu_workload.assign(ndpu, 0.0);
  out.dpu_vectors.assign(ndpu, 0);

  for (std::size_t c = 0; c < nc; ++c) {
    if (stats.sizes[c] == 0) continue;
    // Random DPU; linear-probe forward if it lacks MRAM capacity.
    std::size_t d = rng.below(ndpu);
    std::size_t tries = 0;
    while (out.dpu_vectors[d] + stats.sizes[c] > max_vecs) {
      d = (d + 1) % ndpu;
      if (++tries == ndpu) {
        throw std::runtime_error("place_random: out of MRAM capacity");
      }
    }
    out.cluster_dpus[c].push_back(static_cast<std::uint32_t>(d));
    out.dpu_clusters[d].push_back(static_cast<std::uint32_t>(c));
    out.dpu_workload[d] += stats.workloads[c];
    out.dpu_vectors[d] += stats.sizes[c];
    ++out.total_replicas;
  }
  return out;
}

}  // namespace upanns::core
