#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "baselines/cpu_cost_model.hpp"
#include "common/hw_specs.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "pim/transfer.hpp"

namespace upanns::core {

UpAnnsEngine::UpAnnsEngine(const ivf::IvfIndex& index,
                           const ivf::ClusterStats& stats,
                           UpAnnsOptions options)
    : index_(index), options_(std::move(options)) {
  if (options_.n_dpus == 0) throw std::invalid_argument("n_dpus == 0");
  options_.placement.n_dpus = options_.n_dpus;

  mode_ = options_.naive_raw_codes
              ? KernelMode::kNaiveRaw
              : (options_.opt_cae ? KernelMode::kCae
                                  : KernelMode::kDirectTokens);

  // --- Quantize the PQ codebooks to int8 (the WRAM-resident form; paper
  // Sec 4.2.1 budgets D x 256 bytes). One scale per subspace.
  const auto& pq = index_.pq();
  const std::size_t m = pq.m();
  const std::size_t dsub = pq.dsub();
  codebook_q_.resize(m * 256 * dsub);
  codebook_scales_.resize(m);
  const std::span<const float> cb = pq.codebooks();
  for (std::size_t s = 0; s < m; ++s) {
    float mx = 0.f;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      mx = std::max(mx, std::abs(cb[s * 256 * dsub + i]));
    }
    const float scale = mx > 0.f ? mx / 127.f : 1.f;
    codebook_scales_[s] = scale;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      codebook_q_[s * 256 * dsub + i] = static_cast<std::int8_t>(
          std::lround(cb[s * 256 * dsub + i] / scale));
    }
  }

  // --- Encode every cluster once (replicas share the encoding).
  encodings_.resize(index_.n_clusters());
  double weighted_reduction = 0;
  std::size_t total_records = 0;
  common::ThreadPool::global().parallel_for(
      0, index_.n_clusters(),
      [&](std::size_t c) {
        const ivf::InvertedList& list = index_.list(c);
        switch (mode_) {
          case KernelMode::kCae:
            encodings_[c] = cae_encode_cluster(list, m, options_.cae);
            break;
          case KernelMode::kDirectTokens:
            encodings_[c] = direct_encode_cluster(list, m);
            break;
          case KernelMode::kNaiveRaw:
            // Raw mode streams the original codes; keep only bookkeeping.
            encodings_[c] = CaeClusterEncoding{};
            encodings_[c].m = m;
            encodings_[c].n_records = list.size();
            encodings_[c].total_tokens = list.size() * m;
            break;
        }
      },
      1);
  for (std::size_t c = 0; c < index_.n_clusters(); ++c) {
    weighted_reduction += encodings_[c].length_reduction() *
                          static_cast<double>(encodings_[c].n_records);
    total_records += encodings_[c].n_records;
  }
  build_length_reduction_ =
      total_records > 0 ? weighted_reduction / static_cast<double>(total_records)
                        : 0;

  // --- Place and load.
  placement_ = options_.opt_placement
                   ? place_clusters(index_, stats, options_.placement)
                   : place_random(index_, stats, options_.placement,
                                  options_.seed);
  load_dpus(stats);
}

void UpAnnsEngine::relocate(const ivf::ClusterStats& stats) {
  placement_ = options_.opt_placement
                   ? place_clusters(index_, stats, options_.placement)
                   : place_random(index_, stats, options_.placement,
                                  options_.seed);
  load_dpus(stats);
}

void UpAnnsEngine::load_dpus(const ivf::ClusterStats&) {
  system_ = std::make_unique<pim::PimSystem>(options_.n_dpus);
  per_dpu_.assign(options_.n_dpus, PerDpu{});

  const std::size_t m = index_.pq_m();
  const std::size_t dsub = index_.pq().dsub();
  const std::size_t dim = index_.dim();

  common::ThreadPool::global().parallel_for(
      0, options_.n_dpus,
      [&](std::size_t d) {
        pim::Dpu& dpu = system_->dpu(d);
        PerDpu& pd = per_dpu_[d];
        pd.cluster_slot.assign(index_.n_clusters(), -1);
        pd.layout.dim = dim;
        pd.layout.m = m;
        pd.layout.dsub = dsub;

        pd.layout.codebook_off =
            dpu.mram_alloc(codebook_q_.size(), "codebook");
        dpu.host_write(pd.layout.codebook_off, codebook_q_.data(),
                       codebook_q_.size());
        pd.layout.cb_scale_off =
            dpu.mram_alloc(codebook_scales_.size() * sizeof(float), "cb-scales");
        dpu.host_write(pd.layout.cb_scale_off, codebook_scales_.data(),
                       codebook_scales_.size() * sizeof(float));

        for (std::uint32_t c : placement_.dpu_clusters[d]) {
          const ivf::InvertedList& list = index_.list(c);
          const CaeClusterEncoding& enc = encodings_[c];
          DpuClusterData cd;
          cd.cluster_id = c;
          cd.n_records = static_cast<std::uint32_t>(list.size());

          cd.ids_off = dpu.mram_alloc(list.ids.size() * sizeof(std::uint32_t),
                                      "ids");
          dpu.host_write(cd.ids_off, list.ids.data(),
                         list.ids.size() * sizeof(std::uint32_t));

          if (mode_ == KernelMode::kNaiveRaw) {
            cd.stream_off = dpu.mram_alloc(list.codes.size(), "codes");
            dpu.host_write(cd.stream_off, list.codes.data(),
                           list.codes.size());
            cd.stream_len = list.codes.size();
          } else {
            cd.stream_off = dpu.mram_alloc(
                enc.tokens.size() * sizeof(std::uint16_t), "tokens");
            dpu.host_write(cd.stream_off, enc.tokens.data(),
                           enc.tokens.size() * sizeof(std::uint16_t));
            cd.stream_len = enc.tokens.size();

            // Chunk index: element offset of every kChunkRecords-th record.
            std::vector<std::uint32_t> chunk_index;
            std::size_t off = 0;
            for (std::size_t r = 0; r < enc.n_records; ++r) {
              if (r % kChunkRecords == 0) {
                chunk_index.push_back(static_cast<std::uint32_t>(off));
              }
              off += 1 + enc.tokens[off];
            }
            cd.n_chunks = static_cast<std::uint32_t>(chunk_index.size());
            if (!chunk_index.empty()) {
              cd.chunk_index_off = dpu.mram_alloc(
                  chunk_index.size() * sizeof(std::uint32_t), "chunk-index");
              dpu.host_write(cd.chunk_index_off, chunk_index.data(),
                             chunk_index.size() * sizeof(std::uint32_t));
            }

            if (!enc.combos.empty()) {
              std::vector<std::uint8_t> packed(enc.combos.size() * 4);
              for (std::size_t i = 0; i < enc.combos.size(); ++i) {
                packed[4 * i + 0] = enc.combos[i].pos;
                packed[4 * i + 1] = enc.combos[i].c0;
                packed[4 * i + 2] = enc.combos[i].c1;
                packed[4 * i + 3] = enc.combos[i].c2;
              }
              cd.combos_off = dpu.mram_alloc(packed.size(), "combos");
              dpu.host_write(cd.combos_off, packed.data(), packed.size());
              cd.n_combos = static_cast<std::uint32_t>(enc.combos.size());
            }
          }

          cd.centroid_off = dpu.mram_alloc(dim * sizeof(float), "centroid");
          dpu.host_write(cd.centroid_off, index_.centroid(c),
                         dim * sizeof(float));

          pd.cluster_slot[c] =
              static_cast<std::int32_t>(pd.layout.clusters.size());
          pd.layout.clusters.push_back(cd);
        }
        pd.static_mark = dpu.mram_mark();
      },
      1);
}

PimSearchReport UpAnnsEngine::search(const data::Dataset& queries) {
  const auto probes = ivf::filter_batch(index_, queries, options_.nprobe);
  return search_with_probes(queries, probes);
}

PimSearchReport UpAnnsEngine::search_with_probes(
    const data::Dataset& queries,
    const std::vector<std::vector<std::uint32_t>>& probes) {
  PimSearchReport report;
  const std::size_t nq = queries.n;
  const std::size_t dim = index_.dim();
  const std::size_t k = options_.k;
  const std::size_t ndpu = options_.n_dpus;

  // --- Host stage (a): cluster filtering, charged on the CPU roofline.
  {
    baselines::QueryWorkProfile p;
    p.n_queries = nq;
    p.n_clusters = index_.n_clusters();
    p.dim = dim;
    p.m = index_.pq_m();
    p.k = k;
    report.times.cluster_filter =
        baselines::CpuCostModel::stage_times(p).cluster_filter;
  }

  // --- Scheduling (Algorithm 2), also host-side; O(|Q| * nprobe).
  const std::vector<std::size_t> sizes = index_.list_sizes();
  const Schedule sched = options_.opt_scheduling
                             ? schedule_queries(probes, placement_, sizes)
                             : schedule_naive(probes, placement_, sizes);
  report.times.cluster_filter +=
      static_cast<double>(sched.total_assignments()) * 16.0 / hw::kCpuFlops;

  // --- Per-DPU launch inputs: unique query tables + assignment lists.
  std::vector<DpuLaunchInput> inputs(ndpu);
  std::vector<std::size_t> push_bytes(ndpu, 0);
  const std::size_t read_bytes_cfg =
      options_.mram_read_vectors == 0
          ? 0
          : options_.mram_read_vectors *
                (mode_ == KernelMode::kNaiveRaw
                     ? index_.pq_m()
                     : (index_.pq_m() + 1) * sizeof(std::uint16_t));

  common::ThreadPool::global().parallel_for(
      0, ndpu,
      [&](std::size_t d) {
        const auto& assigns = sched.per_dpu[d];
        if (assigns.empty()) return;
        DpuLaunchInput& in = inputs[d];
        in.k = k;
        in.mram_read_bytes = read_bytes_cfg;

        std::vector<std::int32_t> local_of(nq, -1);
        std::vector<std::uint32_t> uniq;
        for (const Assignment& a : assigns) {
          if (local_of[a.query] < 0) {
            local_of[a.query] = static_cast<std::int32_t>(uniq.size());
            uniq.push_back(a.query);
          }
          in.items.push_back(
              {static_cast<std::uint32_t>(local_of[a.query]),
               static_cast<std::uint32_t>(per_dpu_[d].cluster_slot[a.cluster])});
        }
        in.n_queries = static_cast<std::uint32_t>(uniq.size());

        // Scratch MRAM: query table + result slots (rewound every batch).
        pim::Dpu& dpu = system_->dpu(d);
        dpu.mram_rewind(per_dpu_[d].static_mark);
        in.queries_off =
            dpu.mram_alloc(uniq.size() * dim * sizeof(float), "batch-queries");
        for (std::size_t i = 0; i < uniq.size(); ++i) {
          dpu.host_write(in.queries_off + i * dim * sizeof(float),
                         queries.row(uniq[i]), dim * sizeof(float));
        }
        in.results_off = dpu.mram_alloc(uniq.size() * k * 8, "batch-results");

        push_bytes[d] =
            uniq.size() * dim * sizeof(float) + in.items.size() * 4;
      },
      1);

  // --- Push transfer: UpANNS pads per-DPU buffers to a uniform size so the
  // transfer runs concurrently (Sec 2.2); PIM-naive pays the serialized path.
  {
    std::size_t max_bytes = 0;
    for (std::size_t b : push_bytes) max_bytes = std::max(max_bytes, b);
    pim::TransferStats ts;
    if (options_.opt_scheduling) {
      ts = pim::TransferEngine::uniform(ndpu, max_bytes);
    } else {
      ts = pim::TransferEngine::batch(push_bytes);
    }
    report.times.transfer += ts.seconds;
    report.bytes_pushed = ts.bytes;
    report.push_parallel = ts.parallel;
  }

  // --- Launch.
  std::vector<std::unique_ptr<QueryKernel>> kernels(ndpu);
  for (std::size_t d = 0; d < ndpu; ++d) {
    if (!inputs[d].items.empty()) {
      kernels[d] = std::make_unique<QueryKernel>(
          per_dpu_[d].layout, inputs[d], mode_, options_.opt_prune_topk);
    }
  }
  const pim::PimSystem::LaunchStats launch = system_->launch(
      [&](std::size_t d) -> pim::DpuKernel* { return kernels[d].get(); },
      options_.n_tasklets);
  report.dpu_busy_seconds = launch.dpu_seconds;
  {
    std::vector<double> busy;
    for (double s : launch.dpu_seconds) {
      if (s > 0) busy.push_back(s);
    }
    report.balance_ratio = common::max_over_mean(busy);
  }
  {
    std::vector<double> loads;
    for (std::size_t d = 0; d < ndpu; ++d) {
      if (!sched.per_dpu[d].empty()) loads.push_back(sched.dpu_workload[d]);
    }
    report.schedule_balance = common::max_over_mean(loads);
  }
  report.times.transfer += hw::kHostLaunchLatency;

  // Per-DPU stage attribution; the slowest DPU sets the launch-critical
  // breakdown (at-scale extrapolation re-derives the max after scaling).
  report.dpu_stage_seconds.assign(ndpu, PimSearchReport::DpuStageSeconds{});
  for (std::size_t d = 0; d < ndpu; ++d) {
    if (!kernels[d]) continue;
    report.total_instructions += launch.dpu_stats[d].instructions;
    report.total_dma_cycles += launch.dpu_stats[d].dma_cycles;
    const KernelStageCycles stages =
        kernels[d]->attribute_stages(launch.dpu_stats[d].phase_cycles);
    report.dpu_stage_seconds[d] = {
        pim::DpuCostModel::cycles_to_seconds(stages.lut_build),
        pim::DpuCostModel::cycles_to_seconds(stages.distance),
        pim::DpuCostModel::cycles_to_seconds(stages.topk)};
  }
  if (kernels[launch.slowest_dpu]) {
    const auto& crit = report.dpu_stage_seconds[launch.slowest_dpu];
    report.times.lut_build = crit.lut;
    report.times.distance_calc = crit.dist;
    report.times.topk = crit.topk;
  }

  // --- Gather + host merge.
  std::vector<std::vector<std::vector<common::Neighbor>>> per_query_lists(nq);
  std::size_t max_gather = 0;
  for (std::size_t d = 0; d < ndpu; ++d) {
    if (!kernels[d]) continue;
    const DpuLaunchInput& in = inputs[d];
    max_gather = std::max(max_gather, static_cast<std::size_t>(in.n_queries) * k * 8);
    std::vector<std::uint32_t> packed(2 * k);
    // Recover the unique-query order used when building the input.
    std::vector<std::int32_t> local_of(nq, -1);
    std::vector<std::uint32_t> uniq;
    for (const Assignment& a : sched.per_dpu[d]) {
      if (local_of[a.query] < 0) {
        local_of[a.query] = static_cast<std::int32_t>(uniq.size());
        uniq.push_back(a.query);
      }
    }
    for (std::size_t i = 0; i < uniq.size(); ++i) {
      system_->dpu(d).host_read(in.results_off + i * k * 8, packed.data(),
                                k * 8);
      std::vector<common::Neighbor> list;
      for (std::size_t j = 0; j < k; ++j) {
        const std::uint32_t bits = packed[2 * j];
        const std::uint32_t id = packed[2 * j + 1];
        if (bits == 0xFFFFFFFFu && id == 0xFFFFFFFFu) break;  // unused slot
        float dist;
        std::memcpy(&dist, &bits, sizeof(dist));
        list.push_back({dist, id});
      }
      per_query_lists[uniq[i]].push_back(std::move(list));
    }
    report.merge_insertions += kernels[d]->merge_insertions();
    report.merge_pruned += kernels[d]->merge_pruned();
    report.scanned_records += kernels[d]->scanned_records();
    if (kernels[d]->scanned_records() > 0) {
      report.length_reduction +=
          (1.0 - static_cast<double>(kernels[d]->scanned_elements()) /
                     (static_cast<double>(kernels[d]->scanned_records()) *
                      static_cast<double>(index_.pq_m()))) *
          static_cast<double>(kernels[d]->scanned_records());
    }
  }
  if (report.scanned_records > 0) {
    report.length_reduction /= static_cast<double>(report.scanned_records);
  }

  {
    const pim::TransferStats ts = pim::TransferEngine::uniform(ndpu, max_gather);
    report.times.transfer += ts.seconds;
    report.bytes_gathered = ts.bytes;
  }

  report.neighbors.resize(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    report.neighbors[q] = common::merge_sorted_topk(per_query_lists[q], k);
  }
  // Host-side final merge cost: ~(lists * k) heap ops per query. Charged to
  // the transfer/host bucket so the DPU top-k stage stays scale-attributable.
  {
    double ops = 0;
    for (const auto& lists : per_query_lists) {
      ops += static_cast<double>(lists.size()) * static_cast<double>(k) * 8.0;
    }
    report.times.transfer += ops / hw::kCpuFlops;
  }

  report.n_dpus = options_.n_dpus;
  const double total = report.times.total();
  report.qps = total > 0 ? static_cast<double>(nq) / total : 0;
  report.qps_per_watt =
      pim::qps_per_watt(report.qps, pim::Platform::kPim, options_.n_dpus);
  return report;
}

}  // namespace upanns::core
