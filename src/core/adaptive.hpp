// Adaptive replication (paper Sec 4.1.2). DPUs cannot talk to each other,
// so PIM systems struggle with shifting query patterns; UpANNS targets
// workloads (RAG, recommendation) whose patterns drift *incrementally* over
// days and reacts at two speeds:
//   1. minor drift  -> adjust the number of cluster copies (cheap: only the
//      deltas are re-placed / loaded);
//   2. major shifts -> full data relocation (re-run Algorithm 1).
// The AdaptiveController watches a sliding window of probe history, keeps an
// exponentially-weighted frequency estimate, quantifies drift against the
// profile the current placement was built for, and recommends an action.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "ivf/cluster_stats.hpp"

namespace upanns::core {

enum class AdaptAction {
  kNone,        ///< placement still matches the traffic
  kAdjustCopies,///< minor drift: add/remove replicas of the shifted clusters
  kRelocate     ///< major shift: rebuild placement from scratch
};

const char* adapt_action_name(AdaptAction a);

/// How much of the drift loop the serving pipelines run online.
enum class AdaptMode {
  kOff,    ///< no controller at all — byte-identical to builds without one
  kCopies, ///< adjust-copies only; a relocate recommendation is downgraded
  kFull    ///< adjust-copies plus full Algorithm-1 relocation on major drift
};

const char* adapt_mode_name(AdaptMode m);

/// Parse "off" / "copies" / "full". Returns false on anything else.
bool parse_adapt_mode(std::string_view text, AdaptMode* out);

struct AdaptiveOptions {
  /// Sliding-window length in batches.
  std::size_t window_batches = 16;
  /// EWMA smoothing for the frequency estimate (0 = frozen, 1 = last batch).
  double ewma_alpha = 0.3;
  /// Total-variation drift below this: no action.
  double minor_threshold = 0.10;
  /// Total-variation drift above this: full relocation.
  double major_threshold = 0.35;
  /// Fraction of replica-count changes that alone forces kAdjustCopies.
  double copy_change_fraction = 0.05;
};

/// A recommended replica-count delta for one cluster.
struct CopyAdjustment {
  std::uint32_t cluster;
  std::int32_t delta;  ///< +n add replicas, -n retire replicas
};

struct AdaptReport {
  AdaptAction action = AdaptAction::kNone;
  double drift = 0.0;  ///< total-variation distance vs the baseline profile
  std::vector<CopyAdjustment> adjustments;  ///< for kAdjustCopies
};

class AdaptiveController {
 public:
  AdaptiveController(std::size_t n_clusters, AdaptiveOptions options = {});

  /// Install the frequency profile the current placement was built against.
  /// Also clears the sliding window and the EWMA estimate, so drift restarts
  /// from zero — the pipelines call this right after acting on a report.
  void set_baseline(const std::vector<double>& frequencies);

  /// Feed one batch's probe lists (cluster ids each query visited).
  void observe_batch(const std::vector<std::vector<std::uint32_t>>& probes);

  /// Feed one batch's per-DPU busy seconds (PimExtras::dpu_busy_seconds).
  /// Tracked as an EWMA of the busy-time balance ratio so reports can carry
  /// the pre-action imbalance; pure bookkeeping, never affects decisions.
  void observe_busy(const std::vector<double>& dpu_busy_seconds);

  /// Current smoothed frequency estimate (normalized).
  const std::vector<double>& estimate() const { return estimate_; }

  /// Mean of the sliding window's per-batch distributions — the short-memory
  /// traffic profile recommend() sizes replica counts from. Stale batches
  /// roll off after window_batches, unlike the long-memory EWMA that drives
  /// drift detection. Falls back to the EWMA estimate on an empty window.
  std::vector<double> window_mean() const;

  /// Total-variation distance between the estimate and the baseline.
  double drift() const;

  /// Smoothed busy-time balance ratio (0 until observe_busy is fed).
  double busy_balance() const { return busy_balance_; }

  /// Decide what to do given the average per-DPU workload target and current
  /// per-cluster replica counts/sizes. With allow_relocate false (AdaptMode
  /// kCopies) major drift degrades to an adjust-copies recommendation
  /// instead of a relocation.
  AdaptReport recommend(const std::vector<std::size_t>& cluster_sizes,
                        const std::vector<std::size_t>& current_copies,
                        double avg_dpu_workload,
                        bool allow_relocate = true) const;

  std::size_t batches_observed() const { return batches_observed_; }

 private:
  std::size_t n_clusters_;
  AdaptiveOptions options_;
  std::vector<double> baseline_;
  std::vector<double> estimate_;
  std::deque<std::vector<double>> window_;
  std::size_t batches_observed_ = 0;
  double busy_balance_ = 0.0;
  bool busy_seen_ = false;
};

}  // namespace upanns::core
