// Opt1 (online half): greedy query scheduling — paper Algorithm 2.
// Given each query's filtered clusters and the cluster->DPU replica map,
// assign every (query, cluster) pair to a DPU such that per-DPU scanned
// vectors stay balanced: single-replica clusters are forced assignments;
// multi-replica clusters are processed largest-first onto the least-loaded
// replica holder. Runs on the host in O(|Q| * nprobe).
#pragma once

#include <cstdint>
#include <vector>

#include "core/placement.hpp"
#include "obs/metrics.hpp"

namespace upanns::core {

/// One unit of DPU work: scan cluster `cluster` for query `query`.
struct Assignment {
  std::uint32_t query;
  std::uint32_t cluster;
};

struct Schedule {
  /// dpu -> assignments, in issue order.
  std::vector<std::vector<Assignment>> per_dpu;
  /// dpu -> scheduled workload (sum of cluster sizes), the W[] of Alg 2.
  std::vector<double> dpu_workload;

  std::size_t n_dpus() const { return per_dpu.size(); }
  /// max/mean of per-DPU workload — the Fig 11 balance metric.
  double balance_ratio() const;
  std::size_t total_assignments() const;
};

/// Paper Algorithm 2. When a sink is given, books how many assignments were
/// forced (single-replica) vs load-balanced (replica choice) and the
/// resulting balance ratio — the signal the Sec 4.1.2 drift controller
/// watches for replication pressure.
Schedule schedule_queries(const std::vector<std::vector<std::uint32_t>>& probes,
                          const Placement& placement,
                          const std::vector<std::size_t>& cluster_sizes,
                          obs::MetricsSink sink = {});

/// Naive baseline: every cluster goes to its first (only) replica with no
/// load balancing — what PIM-naive does.
Schedule schedule_naive(const std::vector<std::vector<std::uint32_t>>& probes,
                        const Placement& placement,
                        const std::vector<std::size_t>& cluster_sizes,
                        obs::MetricsSink sink = {});

}  // namespace upanns::core
