// Opt3: Co-occurrence Aware Encoding (paper Sec 4.3).
//
// PQ codes have a small value range ([0,255]), so real datasets contain
// frequent position-aligned code combinations (e.g. the triplet (1,15,26)
// appears in 5.7% of SIFT1B vectors). For each cluster we mine the top-m
// most frequent length-3 combinations via an element co-occurrence count,
// reserve a WRAM slot for each combination's partial LUT sum, and re-encode
// vectors so a matched triplet collapses into a single token referencing
// that slot.
//
// Token format (u16), following the paper's direct-address refinement that
// eliminates per-element address multiplications on the DPU:
//   token <  256*M          : direct LUT address (pos*256 + code)
//   token >= 256*M          : combo slot (token - 256*M) into the partial-sum
//                             cache laid out after the LUT in WRAM
// A vector's record is [u16 token_count][token_count x u16 tokens]; records
// are concatenated into the cluster's token stream. The per-cluster
// length-reduction rate of Fig 14 is 1 - avg(token_count)/M.
#pragma once

#include <cstdint>
#include <vector>

#include "ivf/ivf_index.hpp"

namespace upanns::core {

/// One mined combination: codes (c0,c1,c2) at positions (pos, pos+1, pos+2).
struct CaeCombo {
  std::uint8_t pos = 0;
  std::uint8_t c0 = 0, c1 = 0, c2 = 0;

  friend bool operator==(const CaeCombo&, const CaeCombo&) = default;
};

struct CaeOptions {
  /// Max combinations cached per cluster (paper default m = 256, bounded by
  /// the WRAM partial-sum buffer).
  std::size_t max_combos = 256;
  /// A combination must appear at least this many times to be worth a slot.
  std::size_t min_count = 4;
};

/// The CAE encoding of one cluster.
struct CaeClusterEncoding {
  std::vector<CaeCombo> combos;        ///< slot -> combination
  std::vector<std::uint16_t> tokens;   ///< concatenated [len][tokens] records
  std::size_t n_records = 0;
  std::size_t total_tokens = 0;        ///< sum of token_count over records
  std::size_t m = 0;                   ///< original code count per vector

  /// Fraction of per-vector entries eliminated (paper Fig 14's x-axis).
  double length_reduction() const {
    if (n_records == 0 || m == 0) return 0.0;
    const double avg =
        static_cast<double>(total_tokens) / static_cast<double>(n_records);
    return 1.0 - avg / static_cast<double>(m);
  }
  /// Stream bytes (records + headers).
  std::size_t stream_bytes() const {
    return (total_tokens + n_records) * sizeof(std::uint16_t);
  }
};

/// Mine combinations and re-encode a cluster's PQ codes.
CaeClusterEncoding cae_encode_cluster(const ivf::InvertedList& list,
                                      std::size_t m, const CaeOptions& opts);

/// Plain (no-combo) direct-address token stream: every vector becomes
/// [M][pos*256+code ...]. Used when Opt3 is disabled but the UpANNS kernel
/// still wants multiplication-free LUT addressing.
CaeClusterEncoding direct_encode_cluster(const ivf::InvertedList& list,
                                         std::size_t m);

/// Decode a token back: returns {is_combo, lut_address_or_slot}.
struct TokenRef {
  bool is_combo;
  std::uint16_t value;
};
inline TokenRef decode_token(std::uint16_t token, std::size_t m) {
  const std::uint16_t lut_span = static_cast<std::uint16_t>(256 * m);
  if (token >= lut_span) return {true, static_cast<std::uint16_t>(token - lut_span)};
  return {false, token};
}

/// Verify a CAE stream reproduces the original codes (used by tests and the
/// engine's self-check): expands every record and compares.
bool cae_stream_matches_codes(const CaeClusterEncoding& enc,
                              const ivf::InvertedList& list, std::size_t m);

}  // namespace upanns::core
