// AnnsBackend — the backend-agnostic serving interface.
//
// Every execution path (Faiss-CPU functional baseline, Faiss-GPU analytical
// model, UpANNS on the simulated PIM system, and the PIM-naive variant)
// serves queries through this one interface and reports through one unified
// `SearchReport`: neighbors, the four-stage time breakdown, QPS, QPS/W, a
// recall hook, a named per-stage trace (PIM path), and backend-specific
// extras as optional sub-structs. Benches, examples and the CLI are written
// against `AnnsBackend`; none of them reach into engine internals.
//
// Adding a backend (see README "How to add a backend"): implement the two
// `search*` methods, fill the common report fields, attach an extras
// sub-struct if the backend has system-specific observability, and register
// a `BackendKind` in `make_backend`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "baselines/gpu_model.hpp"
#include "baselines/stage_times.hpp"
#include "common/topk.hpp"
#include "data/dataset.hpp"

namespace upanns::ivf {
class IvfIndex;
struct ClusterStats;
}  // namespace upanns::ivf

namespace upanns::obs {
class MetricsRegistry;
}  // namespace upanns::obs

namespace upanns::core {

struct UpAnnsOptions;
class UpAnnsEngine;

/// Which side of the host/device boundary a pipeline stage occupies. The
/// batch pipeline overlaps the *leading host stages* of batch i+1 with the
/// device-bound remainder of batch i (see core/pipeline.hpp).
enum class StageSide { kHost, kDevice };

/// One named, individually timed step of a backend's online path.
struct StageStep {
  const char* name = "";
  double seconds = 0;
  StageSide side = StageSide::kHost;
};

/// PIM-specific observability (UpANNS and PIM-naive backends).
struct PimExtras {
  /// Per-DPU stage seconds (only active DPUs are non-zero) — the substrate
  /// for at-scale extrapolation and the breakdown figures.
  struct DpuStageSeconds {
    double lut = 0, dist = 0, topk = 0;
    double total() const { return lut + dist + topk; }
  };
  std::vector<DpuStageSeconds> dpu_stage_seconds;

  /// Per-DPU busy seconds for this batch and the Fig 11 balance metric.
  std::vector<double> dpu_busy_seconds;
  double balance_ratio = 0;          ///< max/mean of per-DPU busy time
  /// max/mean of *scheduled scanned vectors* per DPU — the paper's Fig 11
  /// "maximum process / average process" metric (scale-free).
  double schedule_balance = 0;

  std::size_t bytes_pushed = 0;
  std::size_t bytes_gathered = 0;
  bool push_parallel = true;

  // Opt3/Opt4 visibility.
  double length_reduction = 0;       ///< scanned-stream reduction (Fig 14)
  std::uint64_t merge_insertions = 0;
  std::uint64_t merge_pruned = 0;    ///< comparisons skipped (Fig 15)
  std::uint64_t scanned_records = 0;
  std::uint64_t total_instructions = 0;  ///< across all DPUs, this batch
  std::uint64_t total_dma_cycles = 0;
  std::size_t n_dpus = 0;
};

/// GPU-model observability: the 80 GB capacity verdict (Fig 12 OOM marks).
struct GpuExtras {
  baselines::GpuCapacity capacity;
  bool oom = false;
  baselines::QueryWorkProfile profile;  ///< measured work, for re-scaling
};

/// CPU-baseline observability: the measured work profile driving the
/// roofline cost model and at-scale extrapolation.
struct CpuExtras {
  baselines::QueryWorkProfile profile;
};

/// Per-query cost-attribution inputs, captured by the PIM pipeline only
/// when a span log is attached to the engine (obs/span.hpp assembles the
/// actual spans post hoc). Never serialized into report JSON.
struct QueryCosts {
  std::uint64_t batch_id = 0;        ///< pipeline batch index
  std::uint64_t first_query_id = 0;  ///< global id of this batch's row 0
  /// Per-query share of the batch's device phase, derived from the Alg-2
  /// schedule (sums to 1 over the batch; uniform when nothing scheduled).
  std::vector<double> device_weight;
};

/// The unified result of one batch search, common to every backend.
struct SearchReport {
  std::vector<std::vector<common::Neighbor>> neighbors;  ///< per query, asc
  baselines::StageTimes times;   ///< four-stage breakdown + transfer
  /// Named per-stage trace of the online path (filled by the PIM pipeline;
  /// entries sum to times.total()).
  std::vector<StageStep> trace;
  double qps = 0;
  double qps_per_watt = 0;

  // Backend-specific extras; at most one engages per backend.
  std::optional<PimExtras> pim;
  std::optional<GpuExtras> gpu;
  std::optional<CpuExtras> cpu;
  /// Engaged only when the engine had a span log attached for this search.
  std::optional<QueryCosts> query_costs;

  double total_seconds() const { return times.total(); }

  /// Recall hook: recall@k of this report's neighbors against an exact
  /// ground-truth list (data::exact_topk output).
  double recall_against(
      const std::vector<std::vector<common::Neighbor>>& exact,
      std::size_t k) const;

  /// Linear-work extrapolation for PIM reports (see DESIGN.md): the distance
  /// stage scales with per-list work (`data_factor`) and with how many DPUs
  /// share the batch; LUT construction and top-k merging are per-assignment
  /// costs, so they scale with the per-DPU assignment count (`dpu_factor` =
  /// dpus_actual / dpus_target). Transfers and host stages are reported as
  /// measured. QPS/W is computed at the *target* DPU count implied by
  /// `dpu_factor`. Throws std::logic_error without PIM extras.
  SearchReport at_scale(double data_factor, double dpu_factor = 1.0) const;
};

/// The serving interface every system implements.
class AnnsBackend {
 public:
  virtual ~AnnsBackend() = default;

  virtual const char* name() const = 0;

  /// Search one query batch (backend performs its own cluster filtering).
  virtual SearchReport search(const data::Dataset& queries) = 0;

  /// Search with externally computed probe lists, so one filtering pass can
  /// be shared across backends (accuracy comparisons, parity tests).
  virtual SearchReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes) = 0;

  /// Attach a metrics registry for structured observability (see src/obs/).
  /// Default: ignored — backends without instrumentation stay silent. The
  /// registry must outlive the backend or a set_metrics(nullptr).
  virtual void set_metrics(obs::MetricsRegistry* registry) { (void)registry; }

  // ----- Streaming updates (optional capability) -----
  //
  // Backends constructed over a mutable index may accept writes between
  // search batches; everyone else inherits the defaults, which report
  // `supports_updates() == false` and throw std::logic_error. `upsert`
  // replaces an existing live id or inserts a new one; `remove` tombstones
  // the given ids and returns how many were actually live.

  virtual bool supports_updates() const { return false; }
  virtual void upsert(std::span<const std::uint32_t> ids,
                      std::span<const float> vectors);
  virtual std::size_t remove(std::span<const std::uint32_t> ids);
};

/// UpANNS (or PIM-naive, depending on options) behind the common interface.
/// Exposed concretely because the serving extensions — adaptive relocation
/// and the double-buffered BatchPipeline — are PIM-engine features.
class UpAnnsBackend final : public AnnsBackend {
 public:
  UpAnnsBackend(const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
                const UpAnnsOptions& options, const char* label = "UpANNS");
  /// Updatable variant: accepts upsert/remove and lazily patches the MRAM
  /// images before the next search. With no writes issued it serves
  /// bit-identically to the read-only overload.
  UpAnnsBackend(ivf::IvfIndex& index, const ivf::ClusterStats& stats,
                const UpAnnsOptions& options, const char* label = "UpANNS");
  ~UpAnnsBackend() override;

  const char* name() const override { return label_; }
  SearchReport search(const data::Dataset& queries) override;
  SearchReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes) override;
  void set_metrics(obs::MetricsRegistry* registry) override;

  bool supports_updates() const override;
  void upsert(std::span<const std::uint32_t> ids,
              std::span<const float> vectors) override;
  std::size_t remove(std::span<const std::uint32_t> ids) override;

  UpAnnsEngine& engine() { return *engine_; }
  const UpAnnsEngine& engine() const { return *engine_; }

 private:
  std::unique_ptr<UpAnnsEngine> engine_;
  const char* label_;
};

class MultiHostUpAnns;
struct MultiHostOptions;

/// A sharded multi-host UpANNS cluster (core/multihost.hpp) behind the
/// common serving interface. The report folds the coordinator-side
/// accounting into the unified shape: `times` is the slowest host's stage
/// breakdown with the network fan-out and inter-host merge added to the
/// transfer bucket, and the trace names the coordinator phases
/// (cluster-filter / broadcast / host-search / gather / interhost-merge),
/// so times.total() equals the multi-host report's simulated seconds.
/// Exposed concretely because the serving extension — the overlapped
/// MultiHostBatchPipeline — drives the cluster directly.
class MultiHostBackend final : public AnnsBackend {
 public:
  MultiHostBackend(const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
                   const MultiHostOptions& options);
  ~MultiHostBackend() override;

  const char* name() const override { return "UpANNS-MH"; }
  SearchReport search(const data::Dataset& queries) override;
  SearchReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes) override;
  void set_metrics(obs::MetricsRegistry* registry) override;

  MultiHostUpAnns& cluster() { return *cluster_; }
  const MultiHostUpAnns& cluster() const { return *cluster_; }

 private:
  std::unique_ptr<MultiHostUpAnns> cluster_;
};

enum class BackendKind { kCpuIvfpq, kGpuIvfpq, kUpAnns, kPimNaive, kMultiHost };

const char* backend_name(BackendKind kind);
/// Parse "cpu" / "gpu" / "upanns" / "naive" (or "pim-naive") / "multihost"
/// (or "mh").
std::optional<BackendKind> backend_kind_of(std::string_view name);

/// One factory for every system. `options` carries the shared runtime knobs
/// (k, nprobe) for all kinds and the full PIM configuration for the PIM
/// kinds; kPimNaive applies the paper's Sec 5.1 naive toggles on top of it.
/// CPU/GPU backends ignore `stats`. kMultiHost shards across a default two
/// hosts, each configured with `options` — use make_multihost_backend for
/// full control over host count and network parameters.
std::unique_ptr<AnnsBackend> make_backend(BackendKind kind,
                                          const ivf::IvfIndex& index,
                                          const ivf::ClusterStats& stats,
                                          const UpAnnsOptions& options);

/// Updatable factory: backends that can serve a mutable index (CPU oracle,
/// UpANNS, PIM-naive) come back with supports_updates() == true; the rest
/// (GPU model, multi-host) fall back to read-only serving of `index`.
std::unique_ptr<AnnsBackend> make_backend(BackendKind kind,
                                          ivf::IvfIndex& index,
                                          const ivf::ClusterStats& stats,
                                          const UpAnnsOptions& options);

/// The multi-host factory: full MultiHostOptions (host count, per-host PIM
/// configuration, network bandwidth/latency).
std::unique_ptr<AnnsBackend> make_multihost_backend(
    const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
    const MultiHostOptions& options);

}  // namespace upanns::core
