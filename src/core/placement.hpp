// Opt1 (offline half): PIM-aware data placement — paper Algorithm 1.
// Clusters are replicated proportionally to their workload W_i = s_i * f_i
// and distributed across DPUs under a workload threshold that is relaxed
// until everything fits. Three insights are honored (paper 4.1.1):
//   1. whole clusters stay on a single DPU (no partial-result transfers),
//   2. hot clusters get ncpy = ceil(W_i / W-bar) replicas,
//   3. spatially proximate clusters co-locate: clusters are visited in a
//      nearest-centroid chain order and the placement cursor only advances
//      when a DPU fills up, so neighbors pack onto the same DPU.
#pragma once

#include <cstdint>
#include <vector>

#include "core/adaptive.hpp"
#include "ivf/cluster_stats.hpp"
#include "ivf/ivf_index.hpp"

namespace upanns::core {

struct PlacementOptions {
  std::size_t n_dpus = 896;
  /// Maximum vectors a DPU may hold (MAX_DPU_SIZE in Algorithm 1). 0 derives
  /// it from the MRAM capacity and the per-vector footprint.
  std::size_t max_dpu_vectors = 0;
  /// Threshold relaxation rate (`rate` in Algorithm 1).
  double relax_rate = 0.02;
  /// Upper bound on replicas per cluster (safety valve; the paper's ncpy is
  /// naturally bounded by ndpu).
  std::size_t max_replicas = 0;
};

struct Placement {
  /// cluster -> DPUs holding a replica (ncpy entries, distinct DPUs).
  std::vector<std::vector<std::uint32_t>> cluster_dpus;
  /// dpu -> clusters resident on it.
  std::vector<std::vector<std::uint32_t>> dpu_clusters;
  /// Estimated workload per DPU after placement (sum of per-replica w_i).
  std::vector<double> dpu_workload;
  /// Vectors per DPU.
  std::vector<std::size_t> dpu_vectors;
  /// Final threshold the algorithm relaxed to.
  double final_threshold = 1.0;
  std::size_t total_replicas = 0;

  std::size_t n_dpus() const { return dpu_clusters.size(); }
};

/// Paper Algorithm 1, applied to every cluster in proximity order.
Placement place_clusters(const ivf::IvfIndex& index,
                         const ivf::ClusterStats& stats,
                         const PlacementOptions& opts);

/// Baseline: each cluster on one uniformly random DPU (the "naive
/// distribution strategy that assigns clusters randomly" of Sec 5.3.1).
Placement place_random(const ivf::IvfIndex& index,
                       const ivf::ClusterStats& stats,
                       const PlacementOptions& opts, std::uint64_t seed = 1);

/// Order clusters so consecutive entries have nearby centroids (greedy
/// nearest-neighbor chain). Exposed for testing.
std::vector<std::uint32_t> proximity_order(const ivf::IvfIndex& index);

/// Per-vector MRAM footprint used to derive MAX_DPU_SIZE: id + codes with
/// headroom for the CAE token stream and chunk index.
std::size_t mram_bytes_per_vector(std::size_t pq_m);

/// One applied replica change from adjust_replicas().
struct CopyDelta {
  std::uint32_t cluster;
  std::uint32_t dpu;
  bool add;  ///< true: new replica loads onto dpu; false: replica retires
};

/// Apply Sec 4.1.2 minor-drift replica deltas to an existing placement in
/// place — the online counterpart of place_clusters that touches only the
/// adjusted clusters. New replicas go to the least-loaded DPU (by advisory
/// dpu_workload, ties to the lowest index) that does not already hold the
/// cluster and has MRAM capacity; retired replicas leave the most-loaded
/// holder, never dropping a cluster below one replica. `frequencies` is the
/// fresh traffic estimate the deltas were derived from; the touched
/// clusters' advisory workload shares are re-based on it. Deterministic:
/// identical inputs yield identical deltas. Replica targets are clamped to
/// [1, n_dpus] (and opts.max_replicas when set); a delta that finds no
/// eligible DPU is partially applied, so callers must act on the returned
/// list, not the request.
std::vector<CopyDelta> adjust_replicas(
    Placement& placement, const ivf::IvfIndex& index,
    const std::vector<CopyAdjustment>& adjustments,
    const std::vector<std::size_t>& cluster_sizes,
    const std::vector<double>& frequencies, const PlacementOptions& opts);

}  // namespace upanns::core
