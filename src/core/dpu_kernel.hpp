// The UpANNS per-DPU query kernel (paper Fig 6) — Opt2 and Opt4 live here.
//
// For every (query, cluster) assignment the kernel executes the
// barrier-separated stages of Fig 6 on up to 24 tasklets:
//   S0  residual + float LUT construction  (tasklets split PQ subspaces;
//       codebook segments stream MRAM->WRAM)               [Barrier 1]
//   S1  LUT scale reduction (tasklet 0)                     [barrier]
//   S2  LUT quantization to u16, compacted in place         [Barrier 2 prep]
//   S3  co-occurrence partial sums into the WRAM cache      [Barrier 2]
//   S4  distance calculation: tasklets stream encoded-point
//       chunks from MRAM, accumulate LUT entries, maintain
//       thread-local bounded max-heaps                      [Barrier 3]
// and, once per query (after its last assigned cluster):
//   S5  pruned merge of thread-local heaps into the DPU
//       top-k heap + result write to MRAM                   [Barrier 0]
//
// WRAM reuse (paper 4.2.2): the codebook region is the *last* fixed
// allocation; before S4 the kernel rewinds the WRAM allocator to the
// codebook mark and reuses that space for the per-tasklet MRAM read buffers.
// The allocator throws if a configuration would not fit real WRAM.
//
// The kernel runs in three modes:
//   kNaiveRaw     - PIM-naive: raw u8 PQ codes, per-element address
//                   arithmetic, unpruned top-k merge.
//   kDirectTokens - UpANNS without CAE: u16 direct-address tokens.
//   kCae          - full UpANNS: CAE token streams + partial-sum cache.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/topk.hpp"
#include "core/cae.hpp"
#include "pim/dpu.hpp"

namespace upanns::core {

enum class KernelMode { kNaiveRaw, kDirectTokens, kCae };

/// Records per chunk of the streamed encoded-point data; each chunk carries
/// a token-offset entry in the chunk index so tasklets can start mid-stream.
inline constexpr std::size_t kChunkRecords = 16;

/// Id sentinel marking a tombstoned slot in a cluster's MRAM id array. The
/// distance scan drops matching records with a branchless select; real ids
/// never collide with it (the result packer already reserves 0xFFFFFFFF for
/// "no neighbor").
inline constexpr std::uint32_t kTombstoneId = 0xFFFFFFFFu;

/// MRAM layout of one resident cluster replica (built by the engine).
/// The *_cap fields record the bytes reserved at each offset — the engine
/// over-allocates by UpAnnsOptions::mram_list_slack so a list that grows a
/// little patches in place instead of relocating.
struct DpuClusterData {
  std::uint32_t cluster_id = 0;
  std::uint32_t n_records = 0;
  std::uint32_t n_tombstones = 0; ///< sentinel slots in the id array
  std::size_t ids_off = 0;        ///< u32 x n_records
  std::size_t ids_cap = 0;        ///< bytes reserved at ids_off
  std::size_t stream_off = 0;     ///< u16 tokens (or u8 codes in kNaiveRaw)
  std::size_t stream_len = 0;     ///< element count (u16s, or bytes if raw)
  std::size_t stream_cap = 0;     ///< bytes reserved at stream_off
  std::size_t chunk_index_off = 0;///< u32 element offsets, one per chunk
  std::uint32_t n_chunks = 0;
  std::size_t chunk_cap = 0;      ///< bytes reserved at chunk_index_off
  std::size_t combos_off = 0;     ///< packed CaeCombo (4B each)
  std::uint32_t n_combos = 0;
  std::size_t combos_cap = 0;     ///< bytes reserved at combos_off
  std::size_t centroid_off = 0;   ///< float x dim
};

/// Static per-DPU layout shared by all launches.
struct DpuStaticLayout {
  std::size_t dim = 0;
  std::size_t m = 0;
  std::size_t dsub = 0;
  std::size_t codebook_off = 0;   ///< int8, m x 256 x dsub
  std::size_t cb_scale_off = 0;   ///< float x m (dequantization scales)
  std::vector<DpuClusterData> clusters;  ///< resident replicas (slot order)
};

/// Per-launch inputs, already pushed to MRAM by the host.
struct DpuLaunchInput {
  std::size_t queries_off = 0;    ///< float x dim per unique query
  std::uint32_t n_queries = 0;    ///< unique queries on this DPU
  std::size_t results_off = 0;    ///< k x (u32 dist, u32 id) per query
  std::size_t k = 10;
  std::size_t mram_read_bytes = 0;///< DMA granularity for the stream (fig 17)
  /// Assignments in query-grouped order: (local query idx, cluster slot).
  struct Item {
    std::uint32_t query_local;
    std::uint32_t cluster_slot;
  };
  std::vector<Item> items;
};

/// Stage attribution of the kernel's phases, resolved after the run.
struct KernelStageCycles {
  std::uint64_t lut_build = 0;    ///< S0-S3 (paper folds partial sums here)
  std::uint64_t distance = 0;     ///< S4
  std::uint64_t topk = 0;         ///< S5
};

/// Monotonic count of hot-path buffer growth events (scratch-arena capacity
/// growth, kernel/heap construction). After a warm-up batch the serving hot
/// path must not grow any arena, which the allocation-behavior tier-1 test
/// pins by sampling this counter across batches.
std::uint64_t hot_path_allocations();

namespace detail {
/// Bump hot_path_allocations(). Called whenever a hot-path buffer grows.
void note_hot_path_allocation();
}  // namespace detail

/// Reusable per-kernel scratch arena: the functional mirrors of WRAM state
/// plus the merge-stage extraction buffers. Everything is assigned (never
/// reconstructed) so capacity persists across phases, tasklets and launches;
/// capacity growth bumps hot_path_allocations(). Tasklets of one DPU run
/// sequentially in the simulator, so one arena per kernel suffices.
struct KernelScratch {
  std::vector<float> lut_f32;
  std::vector<float> tasklet_max;      ///< per-tasklet LUT max (S1 input)
  std::vector<std::uint16_t> lut_u16;
  std::vector<std::uint32_t> combo_sums;
  /// Unified token table: widened LUT entries followed by combo sums, so the
  /// distance scan resolves any token with one unconditional load — the
  /// functional twin of the DPU's direct-address tokens (no branch on real
  /// hardware either).
  std::vector<std::uint32_t> token_table;
  std::vector<float> residual;
  std::vector<common::Neighbor> sorted;  ///< per-tasklet sorted extract (S5)
  std::vector<common::Neighbor> result;  ///< DPU-global sorted top-k (S5)
  std::vector<std::uint32_t> packed;     ///< MRAM result image (S5)

  /// assign() that records capacity growth in hot_path_allocations().
  template <typename T>
  static void assign(std::vector<T>& v, std::size_t n, const T& fill) {
    if (n > v.capacity()) detail::note_hot_path_allocation();
    v.assign(n, fill);
  }
};

class QueryKernel final : public pim::DpuKernel {
 public:
  QueryKernel(const DpuStaticLayout& layout, const DpuLaunchInput& input,
              KernelMode mode, bool prune_topk);

  /// Rebind to a new launch input and rebuild the phase program in place.
  /// Mode, pruning and the static layout are fixed for the kernel's
  /// lifetime; every scratch buffer keeps its capacity, which is what makes
  /// per-batch kernel reuse (LaunchStage pool) allocation-free once warm.
  void rebind(const DpuLaunchInput& input);

  void setup(pim::Dpu& dpu, unsigned n_tasklets) override;
  unsigned n_phases() const override;
  void run_phase(unsigned phase, pim::TaskletCtx& ctx) override;

  /// Map phase cycles (from DpuRunStats) onto pipeline stages.
  KernelStageCycles attribute_stages(
      const std::vector<std::uint64_t>& phase_cycles) const;

  /// Aggregate comparison-pruning statistics (Fig 15's mechanism).
  std::uint64_t merge_insertions() const { return merge_insertions_; }
  std::uint64_t merge_pruned() const { return merge_pruned_; }
  /// Aggregate scanned stream elements (CAE length-reduction visibility).
  std::uint64_t scanned_elements() const { return scanned_elements_; }
  std::uint64_t scanned_records() const { return scanned_records_; }

 private:
  enum class Step : std::uint8_t {
    kLutBuild, kLutReduce, kLutQuantize, kComboSums, kDistance, kMerge
  };
  struct Phase {
    Step step;
    std::uint32_t item;   ///< assignment index (kMerge: first item of query)
  };

  void phase_lut_build(const Phase& p, pim::TaskletCtx& ctx);
  void phase_lut_reduce(pim::TaskletCtx& ctx);
  void phase_lut_quantize(pim::TaskletCtx& ctx);
  void phase_combo_sums(const Phase& p, pim::TaskletCtx& ctx);
  void phase_distance(const Phase& p, pim::TaskletCtx& ctx);
  void phase_merge(const Phase& p, pim::TaskletCtx& ctx);

  const DpuClusterData& cluster_of(std::uint32_t item) const {
    return layout_.clusters[input_->items[item].cluster_slot];
  }

  const DpuStaticLayout& layout_;
  const DpuLaunchInput* input_;  ///< rebindable per batch (see rebind())
  KernelMode mode_;
  bool prune_topk_;
  pim::Dpu* dpu_ = nullptr;

  std::vector<Phase> program_;

  // --- WRAM-resident state (offsets into the DPU's WRAM arena). The float
  // and u16 LUTs share one region (quantization compacts in place).
  std::size_t wram_lut_off = 0;
  std::size_t wram_combo_off = 0;
  std::size_t wram_query_off = 0;     ///< residual, float x dim
  std::size_t wram_codebook_mark = 0; ///< rewind point for stage reuse
  std::size_t wram_codebook_off = 0;
  std::size_t per_tasklet_buf_bytes_ = 0;

  // Functional state mirroring WRAM contents lives in the scratch arena;
  // heaps are modeled functionally but their WRAM footprint is charged in
  // setup(). All of it keeps capacity across launches.
  KernelScratch scratch_;
  float lut_scale_ = 1.f;
  std::vector<common::BoundedMaxHeap> local_heaps_;
  common::BoundedMaxHeap global_heap_;

  std::uint64_t merge_insertions_ = 0;
  std::uint64_t merge_pruned_ = 0;
  std::uint64_t scanned_elements_ = 0;
  std::uint64_t scanned_records_ = 0;
};

}  // namespace upanns::core
