#include "core/cae.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace upanns::core {

namespace {

// Pack (pos, c0, c1, c2) into a 32-bit key for the co-occurrence counter.
std::uint32_t combo_key(std::size_t pos, std::uint8_t c0, std::uint8_t c1,
                        std::uint8_t c2) {
  return (static_cast<std::uint32_t>(pos) << 24) |
         (static_cast<std::uint32_t>(c0) << 16) |
         (static_cast<std::uint32_t>(c1) << 8) | c2;
}

CaeCombo unpack_key(std::uint32_t key) {
  CaeCombo c;
  c.pos = static_cast<std::uint8_t>(key >> 24);
  c.c0 = static_cast<std::uint8_t>(key >> 16);
  c.c1 = static_cast<std::uint8_t>(key >> 8);
  c.c2 = static_cast<std::uint8_t>(key);
  return c;
}

}  // namespace

CaeClusterEncoding cae_encode_cluster(const ivf::InvertedList& list,
                                      std::size_t m, const CaeOptions& opts) {
  CaeClusterEncoding enc;
  enc.m = m;
  enc.n_records = list.size();
  if (list.size() == 0 || m < 3) {
    return direct_encode_cluster(list, m);
  }

  // --- Mine: count every position-aligned consecutive triplet. This is the
  // edge/triangle census of the paper's Element Co-occurrence Graph, realized
  // as a direct count since only consecutive-position triplets are cacheable
  // contiguously in the LUT layout.
  std::unordered_map<std::uint32_t, std::uint32_t> counts;
  counts.reserve(list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::uint8_t* code = list.code(i, m);
    for (std::size_t p = 0; p + 2 < m; ++p) {
      ++counts[combo_key(p, code[p], code[p + 1], code[p + 2])];
    }
  }

  // --- Select: top max_combos by frequency (count floor applies).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranked;  // (count, key)
  ranked.reserve(counts.size());
  for (const auto& [key, cnt] : counts) {
    if (cnt >= opts.min_count) ranked.emplace_back(cnt, key);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break
  });
  if (ranked.size() > opts.max_combos) ranked.resize(opts.max_combos);

  enc.combos.reserve(ranked.size());
  std::unordered_map<std::uint32_t, std::uint16_t> slot_of;
  slot_of.reserve(ranked.size());
  for (std::size_t s = 0; s < ranked.size(); ++s) {
    enc.combos.push_back(unpack_key(ranked[s].second));
    slot_of[ranked[s].second] = static_cast<std::uint16_t>(s);
  }

  // --- Re-encode: greedy left-to-right, matching triplets where a slot
  // exists, otherwise emitting a direct LUT address token.
  const std::uint16_t lut_span = static_cast<std::uint16_t>(256 * m);
  enc.tokens.reserve(list.size() * (m + 1) / 2);
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::uint8_t* code = list.code(i, m);
    const std::size_t header_at = enc.tokens.size();
    enc.tokens.push_back(0);  // patched below
    std::uint16_t len = 0;
    std::size_t p = 0;
    while (p < m) {
      if (p + 2 < m) {
        const auto it =
            slot_of.find(combo_key(p, code[p], code[p + 1], code[p + 2]));
        if (it != slot_of.end()) {
          enc.tokens.push_back(static_cast<std::uint16_t>(lut_span + it->second));
          ++len;
          p += 3;
          continue;
        }
      }
      enc.tokens.push_back(
          static_cast<std::uint16_t>(p * 256 + code[p]));
      ++len;
      ++p;
    }
    enc.tokens[header_at] = len;
    enc.total_tokens += len;
  }
  return enc;
}

CaeClusterEncoding direct_encode_cluster(const ivf::InvertedList& list,
                                         std::size_t m) {
  CaeClusterEncoding enc;
  enc.m = m;
  enc.n_records = list.size();
  enc.tokens.reserve(list.size() * (m + 1));
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::uint8_t* code = list.code(i, m);
    enc.tokens.push_back(static_cast<std::uint16_t>(m));
    for (std::size_t p = 0; p < m; ++p) {
      enc.tokens.push_back(static_cast<std::uint16_t>(p * 256 + code[p]));
    }
    enc.total_tokens += m;
  }
  return enc;
}

bool cae_stream_matches_codes(const CaeClusterEncoding& enc,
                              const ivf::InvertedList& list, std::size_t m) {
  if (enc.n_records != list.size()) return false;
  std::size_t off = 0;
  std::vector<std::uint8_t> expanded(m);
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (off >= enc.tokens.size()) return false;
    const std::uint16_t len = enc.tokens[off++];
    std::size_t p = 0;
    for (std::uint16_t t = 0; t < len; ++t) {
      if (off >= enc.tokens.size() || p >= m) return false;
      const TokenRef ref = decode_token(enc.tokens[off++], m);
      if (ref.is_combo) {
        if (ref.value >= enc.combos.size()) return false;
        const CaeCombo& c = enc.combos[ref.value];
        if (c.pos != p || p + 2 >= m) return false;
        expanded[p] = c.c0;
        expanded[p + 1] = c.c1;
        expanded[p + 2] = c.c2;
        p += 3;
      } else {
        const std::size_t pos = ref.value / 256;
        if (pos != p) return false;
        expanded[p] = static_cast<std::uint8_t>(ref.value % 256);
        ++p;
      }
    }
    if (p != m) return false;
    const std::uint8_t* code = list.code(i, m);
    if (!std::equal(expanded.begin(), expanded.end(), code)) return false;
  }
  return off == enc.tokens.size();
}

}  // namespace upanns::core
