#include "core/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "common/stats.hpp"

namespace upanns::core {

double Schedule::balance_ratio() const {
  return common::max_over_mean(dpu_workload);
}

std::size_t Schedule::total_assignments() const {
  std::size_t t = 0;
  for (const auto& a : per_dpu) t += a.size();
  return t;
}

Schedule schedule_queries(const std::vector<std::vector<std::uint32_t>>& probes,
                          const Placement& placement,
                          const std::vector<std::size_t>& cluster_sizes,
                          obs::MetricsSink sink) {
  const std::size_t ndpu = placement.n_dpus();
  Schedule out;
  out.per_dpu.resize(ndpu);
  out.dpu_workload.assign(ndpu, 0.0);

  // Pass 1 (Alg 2 lines 2-7): forced assignments for single-replica
  // clusters; collect the rest as (cluster, query) work items.
  struct Pending {
    std::uint32_t cluster;
    std::uint32_t query;
  };
  std::vector<Pending> pending;
  for (std::size_t q = 0; q < probes.size(); ++q) {
    for (std::uint32_t c : probes[q]) {
      const auto& dpus = placement.cluster_dpus[c];
      if (dpus.empty()) continue;  // empty cluster: nothing to scan
      if (dpus.size() == 1) {
        out.per_dpu[dpus[0]].push_back(
            {static_cast<std::uint32_t>(q), c});
        out.dpu_workload[dpus[0]] +=
            static_cast<double>(cluster_sizes[c]);
      } else {
        pending.push_back({c, static_cast<std::uint32_t>(q)});
      }
    }
  }

  // Pass 2 (lines 8-14): replicated clusters, largest first, each to the
  // least-loaded holder. stable_sort keeps query order deterministic.
  std::stable_sort(pending.begin(), pending.end(),
                   [&](const Pending& a, const Pending& b) {
                     return cluster_sizes[a.cluster] > cluster_sizes[b.cluster];
                   });
  for (const Pending& p : pending) {
    const auto& dpus = placement.cluster_dpus[p.cluster];
    const double sz = static_cast<double>(cluster_sizes[p.cluster]);
    std::uint32_t best = dpus[0];
    double best_w = std::numeric_limits<double>::infinity();
    for (std::uint32_t d : dpus) {
      if (out.dpu_workload[d] + sz < best_w) {
        best_w = out.dpu_workload[d] + sz;
        best = d;
      }
    }
    out.per_dpu[best].push_back({p.query, p.cluster});
    out.dpu_workload[best] += sz;
  }

  // Group each DPU's assignments by query so thread-local heaps carry across
  // the clusters of one query before merging (paper Sec 4.2.1).
  for (auto& list : out.per_dpu) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Assignment& a, const Assignment& b) {
                       return a.query < b.query;
                     });
  }
  if (sink.enabled()) {
    const std::size_t total = out.total_assignments();
    sink.count("schedule.assignments", total);
    sink.count("schedule.assignments.balanced", pending.size());
    sink.count("schedule.assignments.forced", total - pending.size());
    sink.set("schedule.balance_ratio", out.balance_ratio());
  }
  return out;
}

Schedule schedule_naive(const std::vector<std::vector<std::uint32_t>>& probes,
                        const Placement& placement,
                        const std::vector<std::size_t>& cluster_sizes,
                        obs::MetricsSink sink) {
  const std::size_t ndpu = placement.n_dpus();
  Schedule out;
  out.per_dpu.resize(ndpu);
  out.dpu_workload.assign(ndpu, 0.0);
  for (std::size_t q = 0; q < probes.size(); ++q) {
    for (std::uint32_t c : probes[q]) {
      const auto& dpus = placement.cluster_dpus[c];
      if (dpus.empty()) continue;
      out.per_dpu[dpus[0]].push_back({static_cast<std::uint32_t>(q), c});
      out.dpu_workload[dpus[0]] += static_cast<double>(cluster_sizes[c]);
    }
  }
  for (auto& list : out.per_dpu) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Assignment& a, const Assignment& b) {
                       return a.query < b.query;
                     });
  }
  if (sink.enabled()) {
    const std::size_t total = out.total_assignments();
    sink.count("schedule.assignments", total);
    sink.count("schedule.assignments.forced", total);
    sink.set("schedule.balance_ratio", out.balance_ratio());
  }
  return out;
}

}  // namespace upanns::core
