// Recall-driven parameter tuning. The paper's evaluation sweeps nprobe
// manually; deployments instead pin a recall target (e.g. recall@10 >= 0.9)
// and want the cheapest nprobe that achieves it (cf. VDTuner in the paper's
// related work — here a simple exact search over the monotone recall/nprobe
// curve, evaluated on a held-out validation set).
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/cpu_ivfpq.hpp"
#include "data/ground_truth.hpp"

namespace upanns::core {

struct TuneOptions {
  double target_recall = 0.9;
  std::size_t k = 10;
  /// Candidate nprobe grid; empty = powers of two up to n_clusters.
  std::vector<std::size_t> grid;
};

struct TuneResult {
  std::size_t nprobe = 0;      ///< smallest grid value meeting the target
  double recall = 0;           ///< recall achieved at that nprobe
  bool target_met = false;     ///< false: even the largest nprobe fell short
  /// The full measured curve, ascending in nprobe.
  std::vector<std::pair<std::size_t, double>> curve;
};

/// Tune nprobe on a validation query set with exact ground truth.
/// Exploits monotonicity: recall@k is non-decreasing in nprobe, so the scan
/// stops at the first grid point meeting the target.
TuneResult tune_nprobe(const ivf::IvfIndex& index,
                       const data::Dataset& validation_queries,
                       const std::vector<std::vector<common::Neighbor>>& ground_truth,
                       const TuneOptions& options);

}  // namespace upanns::core
