// Online-adaptation half of UpAnnsEngine: apply_copy_adjustments(), the
// minor-drift path of paper Sec 4.1.2. The drift controller's replica-count
// deltas are re-placed by core::adjust_replicas and shipped incrementally —
// new replica images load into reused MRAM regions, retired replicas release
// theirs to the free list — so a copy adjustment moves a small fraction of
// the full image where a relocate() would reload everything. Replication
// changes placement, never results: every (query, cluster) pair still scans
// exactly one replica of the same byte-identical image, so neighbors match
// the unadapted run bit for bit.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "pim/transfer.hpp"

namespace upanns::core {

UpAnnsEngine::AdaptStats UpAnnsEngine::apply_copy_adjustments(
    const std::vector<CopyAdjustment>& adjustments,
    const std::vector<double>& frequencies) {
  AdaptStats stats;
  if (adjustments.empty()) return stats;

  const std::vector<std::size_t> sizes = index_.list_sizes();
  const std::vector<CopyDelta> deltas = adjust_replicas(
      placement_, index_, adjustments, sizes, frequencies,
      options_.placement);
  if (deltas.empty()) return stats;

  // New replicas are built from the shared encodings; pending mutations for
  // the touched clusters must land there first. Their *other* replicas stay
  // stale until the next patch_dpus() (loaded_gen_ is untouched here), which
  // then finds the freshly loaded copy byte-identical and skips it.
  if (updatable()) {
    for (const CopyDelta& d : deltas) {
      if (d.add) refresh_encoding(d.cluster);
    }
  }

  std::vector<std::vector<CopyDelta>> per_dpu_deltas(options_.n_dpus);
  for (const CopyDelta& d : deltas) per_dpu_deltas[d.dpu].push_back(d);

  const std::size_t dim = index_.dim();
  std::vector<std::size_t> dpu_bytes(options_.n_dpus, 0);
  std::vector<std::size_t> dpu_added(options_.n_dpus, 0);
  std::vector<std::size_t> dpu_retired(options_.n_dpus, 0);

  common::ThreadPool::global().parallel_for(
      0, options_.n_dpus,
      [&](std::size_t d) {
        const std::vector<CopyDelta>& ops = per_dpu_deltas[d];
        if (ops.empty()) return;
        PerDpu& pd = per_dpu_[d];
        pim::Dpu& dpu = system_->dpu(d);
        // Per-batch scratch lives past the static mark; drop it so released
        // regions and fresh loads can take the space (same as patch_dpus).
        dpu.mram_rewind(pd.static_mark);

        ClusterImage img;
        std::uint64_t bytes = 0;
        for (const CopyDelta& op : ops) {
          if (!op.add) {
            // Retire: release the replica's regions to the MRAM free list
            // and drop its descriptor (swap-remove keeps slots dense; the
            // kernel resolves cluster_slot per batch, so renumbering between
            // batches is safe).
            const std::int32_t slot = pd.cluster_slot[op.cluster];
            assert(slot >= 0);
            DpuClusterData& cd =
                pd.layout.clusters[static_cast<std::size_t>(slot)];
            if (cd.ids_cap > 0) dpu.mram_release(cd.ids_off, cd.ids_cap);
            if (cd.stream_cap > 0) {
              dpu.mram_release(cd.stream_off, cd.stream_cap);
            }
            if (cd.chunk_cap > 0) {
              dpu.mram_release(cd.chunk_index_off, cd.chunk_cap);
            }
            if (cd.combos_cap > 0) {
              dpu.mram_release(cd.combos_off, cd.combos_cap);
            }
            dpu.mram_release(cd.centroid_off, dim * sizeof(float));
            const std::size_t last = pd.layout.clusters.size() - 1;
            if (static_cast<std::size_t>(slot) != last) {
              pd.layout.clusters[static_cast<std::size_t>(slot)] =
                  pd.layout.clusters[last];
              pd.cluster_slot[pd.layout.clusters[static_cast<std::size_t>(
                                  slot)].cluster_id] = slot;
            }
            pd.layout.clusters.pop_back();
            pd.cluster_slot[op.cluster] = -1;
            ++dpu_retired[d];
            continue;
          }

          // Add: build the replica image and load it into reused regions,
          // with the same slack policy as a full load so later streaming
          // inserts patch it in place.
          build_cluster_image(op.cluster, img);
          DpuClusterData cd;
          cd.cluster_id = op.cluster;
          cd.n_records = img.n_records;
          cd.n_tombstones = img.n_tombstones;

          const std::size_t ids_bytes = img.ids.size() * sizeof(std::uint32_t);
          cd.ids_cap = slack_bytes(ids_bytes);
          cd.ids_off = dpu.mram_alloc_reuse(cd.ids_cap, "ids");
          if (ids_bytes > 0) {
            dpu.host_write(cd.ids_off, img.ids.data(), ids_bytes);
          }
          bytes += ids_bytes;

          cd.stream_cap = slack_bytes(img.stream.size());
          cd.stream_off = dpu.mram_alloc_reuse(
              cd.stream_cap,
              mode_ == KernelMode::kNaiveRaw ? "codes" : "tokens");
          if (!img.stream.empty()) {
            dpu.host_write(cd.stream_off, img.stream.data(),
                           img.stream.size());
          }
          cd.stream_len = img.stream_elems;
          bytes += img.stream.size();

          const std::size_t chunk_bytes =
              img.chunk_index.size() * sizeof(std::uint32_t);
          cd.n_chunks = static_cast<std::uint32_t>(img.chunk_index.size());
          if (chunk_bytes > 0) {
            cd.chunk_cap = slack_bytes(chunk_bytes);
            cd.chunk_index_off = dpu.mram_alloc_reuse(cd.chunk_cap,
                                                      "chunk-index");
            dpu.host_write(cd.chunk_index_off, img.chunk_index.data(),
                           chunk_bytes);
            bytes += chunk_bytes;
          }

          cd.n_combos = static_cast<std::uint32_t>(img.combos.size() / 4);
          if (!img.combos.empty()) {
            cd.combos_cap = slack_bytes(img.combos.size());
            cd.combos_off = dpu.mram_alloc_reuse(cd.combos_cap, "combos");
            dpu.host_write(cd.combos_off, img.combos.data(),
                           img.combos.size());
            bytes += img.combos.size();
          }

          cd.centroid_off = dpu.mram_alloc_reuse(dim * sizeof(float),
                                                 "centroid");
          dpu.host_write(cd.centroid_off, index_.centroid(op.cluster),
                         dim * sizeof(float));
          bytes += dim * sizeof(float);

          pd.cluster_slot[op.cluster] =
              static_cast<std::int32_t>(pd.layout.clusters.size());
          pd.layout.clusters.push_back(cd);
          ++dpu_added[d];
        }
        pd.static_mark = dpu.mram_mark();
        dpu_bytes[d] = static_cast<std::size_t>(bytes);
      },
      1);

  bool any_bytes = false;
  for (std::size_t d = 0; d < options_.n_dpus; ++d) {
    stats.bytes_written += dpu_bytes[d];
    stats.replicas_added += dpu_added[d];
    stats.replicas_retired += dpu_retired[d];
    any_bytes = any_bytes || dpu_bytes[d] > 0;
  }
  // Charged like every other host->DPU push. A pure-retire pass ships
  // nothing and costs nothing — the regions just return to the free list.
  pim::TransferStats xfer;
  if (any_bytes) {
    xfer = pim::TransferEngine::batch(dpu_bytes);
    stats.seconds = xfer.seconds;
  }

  if (metrics_) {
    metrics_->counter("adapt.patches").add(1);
    metrics_->counter("adapt.patch_bytes").add(stats.bytes_written);
    metrics_->counter("adapt.replicas_added").add(stats.replicas_added);
    metrics_->counter("adapt.replicas_retired").add(stats.replicas_retired);
    metrics_->histogram("adapt.patch.seconds").observe(stats.seconds);
    if (any_bytes) {
      pim::TransferEngine::record(obs::MetricsSink(metrics_), "adapt", xfer);
    }
  }
  common::log_debug("adapt-patch: +", stats.replicas_added, " replicas, -",
                    stats.replicas_retired, " replicas, ",
                    stats.bytes_written, " bytes, ", stats.seconds, " s");
  return stats;
}

}  // namespace upanns::core
