#include "core/multihost.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace upanns::core {

MultiHostUpAnns::MultiHostUpAnns(const ivf::IvfIndex& index,
                                 const ivf::ClusterStats& stats,
                                 MultiHostOptions options)
    : index_(index), options_(std::move(options)) {
  if (options_.n_hosts == 0) {
    throw std::invalid_argument("MultiHostUpAnns: n_hosts == 0");
  }
  const std::size_t nc = index.n_clusters();
  owner_.assign(nc, 0);

  // Largest-workload-first onto the least-loaded host: whole clusters only,
  // mirroring Opt1's DPU-level rule one level up.
  std::vector<std::uint32_t> order(nc);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return stats.workloads[a] > stats.workloads[b];
  });
  std::vector<double> host_load(options_.n_hosts, 0.0);
  for (std::uint32_t c : order) {
    const std::size_t h = static_cast<std::size_t>(
        std::min_element(host_load.begin(), host_load.end()) -
        host_load.begin());
    owner_[c] = static_cast<std::uint32_t>(h);
    host_load[h] += stats.workloads[c];
  }

  // Per-host stats: foreign clusters appear empty, so placement skips them
  // and the scheduler never routes their probes to this host.
  engines_.reserve(options_.n_hosts);
  for (std::size_t h = 0; h < options_.n_hosts; ++h) {
    ivf::ClusterStats shard = stats;
    for (std::size_t c = 0; c < nc; ++c) {
      if (owner_[c] != h) {
        shard.sizes[c] = 0;
        shard.workloads[c] = 0;
      }
    }
    engines_.push_back(
        std::make_unique<UpAnnsEngine>(index_, shard, options_.per_host));
  }
}

MultiHostReport MultiHostUpAnns::search(const data::Dataset& queries) {
  MultiHostReport report;
  const std::size_t nq = queries.n;
  const std::size_t k = options_.per_host.k;

  // One cluster-filtering pass on the coordinator, shared with every host
  // (hosts hold the same centroids; re-filtering locally would give the same
  // lists, so we time it once inside each engine's report anyway).
  const auto probes =
      ivf::filter_batch(index_, queries, options_.per_host.nprobe);

  // Broadcast the batch: each host receives every query vector.
  const double bcast_bytes =
      static_cast<double>(nq) * static_cast<double>(queries.dim) * 4.0;
  report.network_seconds +=
      options_.network_latency +
      bcast_bytes / options_.network_bandwidth;  // pipelined to all hosts

  std::vector<std::vector<std::vector<common::Neighbor>>> per_host_results;
  per_host_results.reserve(engines_.size());
  for (auto& engine : engines_) {
    auto r = engine->search_with_probes(queries, probes);
    report.slowest_host_seconds =
        std::max(report.slowest_host_seconds, r.times.total());
    report.host_times.push_back(r.times);
    per_host_results.push_back(std::move(r.neighbors));
  }

  // Gather: every host returns k results per query; coordinator merges.
  const double gather_bytes = static_cast<double>(engines_.size()) *
                              static_cast<double>(nq) *
                              static_cast<double>(k) * 8.0;
  report.network_seconds +=
      options_.network_latency + gather_bytes / options_.network_bandwidth;

  report.neighbors.resize(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    std::vector<std::vector<common::Neighbor>> lists;
    lists.reserve(engines_.size());
    for (auto& host : per_host_results) lists.push_back(std::move(host[q]));
    report.neighbors[q] = common::merge_sorted_topk(lists, k);
  }

  report.seconds = report.slowest_host_seconds + report.network_seconds;
  report.qps = report.seconds > 0
                   ? static_cast<double>(nq) / report.seconds
                   : 0;

  obs::MetricsSink sink(metrics_);
  if (sink.enabled()) {
    sink.count("multihost.batches");
    sink.count("multihost.broadcast_bytes",
               static_cast<std::uint64_t>(bcast_bytes));
    sink.count("multihost.gather_bytes",
               static_cast<std::uint64_t>(gather_bytes));
    sink.count("multihost.merge.lists",
               static_cast<std::uint64_t>(engines_.size()) * nq);
    sink.observe("multihost.network_seconds", report.network_seconds);
    sink.observe("multihost.batch.seconds", report.seconds);
    sink.set("multihost.slowest_host_seconds", report.slowest_host_seconds);
  }
  return report;
}

void MultiHostUpAnns::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  for (auto& engine : engines_) engine->set_metrics(registry);
}

}  // namespace upanns::core
