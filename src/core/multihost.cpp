#include "core/multihost.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>

#include "baselines/cpu_cost_model.hpp"
#include "common/hw_specs.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace upanns::core {

MultiHostUpAnns::MultiHostUpAnns(const ivf::IvfIndex& index,
                                 const ivf::ClusterStats& stats,
                                 MultiHostOptions options)
    : index_(index), options_(std::move(options)) {
  init(stats);
}

MultiHostUpAnns::MultiHostUpAnns(ivf::IvfIndex& index,
                                 const ivf::ClusterStats& stats,
                                 MultiHostOptions options)
    : index_(index), mutable_index_(&index), options_(std::move(options)) {
  init(stats);
}

void MultiHostUpAnns::init(const ivf::ClusterStats& stats) {
  if (options_.n_hosts == 0) {
    throw std::invalid_argument("MultiHostUpAnns: n_hosts == 0");
  }
  const std::size_t nc = index_.n_clusters();
  owner_.assign(nc, 0);

  // Largest-workload-first onto the least-loaded host: whole clusters only,
  // mirroring Opt1's DPU-level rule one level up.
  std::vector<std::uint32_t> order(nc);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return stats.workloads[a] > stats.workloads[b];
  });
  std::vector<double> host_load(options_.n_hosts, 0.0);
  std::vector<std::size_t> host_clusters(options_.n_hosts, 0);
  for (std::uint32_t c : order) {
    const std::size_t h = static_cast<std::size_t>(
        std::min_element(host_load.begin(), host_load.end()) -
        host_load.begin());
    owner_[c] = static_cast<std::uint32_t>(h);
    host_load[h] += stats.workloads[c];
    ++host_clusters[h];
  }

  // Per-host stats: foreign clusters appear empty, so placement skips them
  // and the scheduler never routes their probes to this host. Hosts that own
  // no clusters at all (n_hosts > n_clusters) get no engine: they would
  // scan nothing, so they contribute empty lists and zero simulated time.
  engines_.resize(options_.n_hosts);
  for (std::size_t h = 0; h < options_.n_hosts; ++h) {
    if (host_clusters[h] == 0) continue;
    ivf::ClusterStats shard = stats;
    for (std::size_t c = 0; c < nc; ++c) {
      if (owner_[c] != h) {
        shard.sizes[c] = 0;
        shard.workloads[c] = 0;
      }
    }
    // Engines over a mutable index are themselves updatable, so each host
    // can incrementally patch the clusters resident in its own shard.
    engines_[h] =
        mutable_index_ != nullptr
            ? std::make_unique<UpAnnsEngine>(*mutable_index_, shard,
                                             options_.per_host)
            : std::make_unique<UpAnnsEngine>(index_, shard,
                                             options_.per_host);
    ++n_active_;
  }
}

namespace {

UpAnnsEngine& first_active_engine(
    std::vector<std::unique_ptr<UpAnnsEngine>>& engines, bool updatable) {
  if (!updatable) {
    throw std::logic_error("MultiHostUpAnns: cluster is read-only");
  }
  for (auto& engine : engines) {
    if (engine) return *engine;
  }
  throw std::logic_error("MultiHostUpAnns: no active hosts");
}

}  // namespace

void MultiHostUpAnns::upsert(std::span<const std::uint32_t> ids,
                             std::span<const float> vectors) {
  // One engine mutates the shared index; every host's engine observes the
  // epoch drift and patches its own resident clusters on the next patch.
  first_active_engine(engines_, updatable()).upsert(ids, vectors);
}

std::size_t MultiHostUpAnns::remove(std::span<const std::uint32_t> ids) {
  return first_active_engine(engines_, updatable()).remove(ids);
}

std::size_t MultiHostUpAnns::compact(double min_tombstone_ratio) {
  return first_active_engine(engines_, updatable())
      .compact(min_tombstone_ratio);
}

bool MultiHostUpAnns::needs_patch() const {
  for (const auto& engine : engines_) {
    if (engine && engine->needs_patch()) return true;
  }
  return false;
}

UpAnnsEngine::PatchStats MultiHostUpAnns::patch_hosts() {
  if (!updatable()) {
    throw std::logic_error("MultiHostUpAnns::patch_hosts: cluster is read-only");
  }
  // Hosts patch their own MRAM buses concurrently: wall time is the slowest
  // host's patch, volume counters sum across the fleet.
  UpAnnsEngine::PatchStats total;
  for (auto& engine : engines_) {
    if (!engine) continue;
    const UpAnnsEngine::PatchStats ps = engine->patch_dpus();
    total.seconds = std::max(total.seconds, ps.seconds);
    total.bytes_written += ps.bytes_written;
    total.lists_patched += ps.lists_patched;
    total.regions_moved += ps.regions_moved;
  }
  return total;
}

std::uint32_t MultiHostUpAnns::host_of(std::size_t cluster) const {
  if (cluster >= owner_.size()) {
    throw std::out_of_range("MultiHostUpAnns::host_of: cluster " +
                            std::to_string(cluster) + " >= n_clusters " +
                            std::to_string(owner_.size()));
  }
  return owner_[cluster];
}

UpAnnsEngine& MultiHostUpAnns::host_engine(std::size_t h) {
  if (h >= engines_.size() || engines_[h] == nullptr) {
    throw std::logic_error("MultiHostUpAnns::host_engine: host " +
                           std::to_string(h) + " owns no clusters");
  }
  return *engines_[h];
}

namespace {

/// The coordinator's one cluster-filtering pass, charged on the same CPU
/// roofline ClusterFilterStage uses — every per-host engine report books an
/// identical value, which the aggregation below subtracts so the pass is
/// accounted exactly once.
double coord_filter_seconds_of(const ivf::IvfIndex& index, std::size_t nq,
                               std::size_t k) {
  baselines::QueryWorkProfile p;
  p.n_queries = nq;
  p.n_clusters = index.n_clusters();
  p.dim = index.dim();
  p.m = index.pq_m();
  p.k = k;
  return baselines::CpuCostModel::stage_times(p).cluster_filter;
}

}  // namespace

MultiHostReport MultiHostUpAnns::search(const data::Dataset& queries) {
  const auto probes =
      ivf::filter_batch(index_, queries, options_.per_host.nprobe);
  return search_with_probes(queries, probes);
}

MultiHostReport MultiHostUpAnns::search_with_probes(
    const data::Dataset& queries,
    const std::vector<std::vector<std::uint32_t>>& probes) {
  // Lazily apply pending mutations, mirroring UpAnnsBackend::search — the
  // pipeline patches (and charges) explicitly before it gets here.
  if (updatable() && needs_patch()) patch_hosts();
  MultiHostReport report;
  const std::size_t nq = queries.n;
  const std::size_t k = options_.per_host.k;

  // One cluster-filtering pass on the coordinator, shared with every host.
  report.coord_filter_seconds =
      coord_filter_seconds_of(index_, nq, options_.per_host.k);

  // Broadcast the batch: the coordinator NIC sends every query vector to
  // each active host, so the wire time scales with the fan-out (hosts that
  // own no clusters are skipped — there is nothing for them to scan).
  const double per_host_query_bytes =
      static_cast<double>(nq) * static_cast<double>(queries.dim) * 4.0;
  const double bcast_bytes =
      static_cast<double>(n_active_) * per_host_query_bytes;
  report.broadcast_seconds =
      options_.network_latency + bcast_bytes / options_.network_bandwidth;

  // Every active host returns k results per query.
  const double per_host_result_bytes =
      static_cast<double>(nq) * static_cast<double>(k) * 8.0;
  const double gather_bytes =
      static_cast<double>(n_active_) * per_host_result_bytes;
  report.gather_seconds =
      options_.network_latency + gather_bytes / options_.network_bandwidth;
  report.network_seconds = report.broadcast_seconds + report.gather_seconds;

  std::vector<std::vector<std::vector<common::Neighbor>>> per_host_results;
  per_host_results.reserve(engines_.size());
  report.host_times.reserve(engines_.size());
  report.host_slots.reserve(engines_.size());
  for (auto& engine : engines_) {
    MultiHostHostSlot slot;
    if (engine == nullptr) {
      slot.active = false;
      report.host_times.emplace_back();
      report.host_slots.push_back(slot);
      per_host_results.emplace_back();
      continue;
    }
    auto r = engine->search_with_probes(queries, probes);
    // The engine's report books its own copy of the shared coordinator
    // filter as the first trace entry; strip it from the per-host share so
    // the pass is charged once (coord_filter_seconds above), then split the
    // remainder at the host/device boundary exactly like BatchPipeline.
    double filter_seconds = 0;
    for (const StageStep& step : r.trace) {
      if (step.side != StageSide::kHost) break;
      if (std::string_view(step.name) == "cluster-filter") {
        filter_seconds += step.seconds;
      }
    }
    const double prefix = leading_host_seconds(r);
    slot.host_seconds = prefix - filter_seconds;
    slot.device_seconds = r.times.total() - prefix;
    slot.network_seconds = (per_host_query_bytes + per_host_result_bytes) /
                           options_.network_bandwidth;
    report.slowest_host_seconds =
        std::max(report.slowest_host_seconds,
                 slot.host_seconds + slot.device_seconds);
    report.host_times.push_back(r.times);
    report.host_slots.push_back(slot);
    per_host_results.push_back(std::move(r.neighbors));
  }

  // Coordinator-side k-way merge across host lists, charged like the
  // engine-local MergeStage (~lists * k heap ops per query).
  double merge_ops = 0;
  report.neighbors.resize(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    std::vector<std::vector<common::Neighbor>> lists;
    lists.reserve(n_active_);
    for (auto& host : per_host_results) {
      if (host.empty()) continue;  // inactive host: nothing to merge
      lists.push_back(std::move(host[q]));
    }
    merge_ops += static_cast<double>(lists.size()) *
                 static_cast<double>(k) * 8.0;
    report.neighbors[q] = common::merge_sorted_topk(lists, k);
  }
  report.coord_merge_seconds = merge_ops / hw::kCpuFlops;

  // Summed in pre / device / post order — the same association the pipeline
  // timeline uses — so a one-batch overlapped run reproduces this value
  // bit-for-bit.
  const double pre = report.coord_filter_seconds + report.broadcast_seconds;
  const double post = report.gather_seconds + report.coord_merge_seconds;
  report.seconds = pre + report.slowest_host_seconds + post;
  report.qps = report.seconds > 0
                   ? static_cast<double>(nq) / report.seconds
                   : 0;

  obs::MetricsSink sink(metrics_);
  if (sink.enabled()) {
    sink.count("multihost.batches");
    sink.count("multihost.broadcast_bytes",
               static_cast<std::uint64_t>(bcast_bytes));
    sink.count("multihost.gather_bytes",
               static_cast<std::uint64_t>(gather_bytes));
    sink.count("multihost.merge.lists",
               static_cast<std::uint64_t>(n_active_) * nq);
    sink.observe("multihost.broadcast_seconds", report.broadcast_seconds);
    sink.observe("multihost.gather_seconds", report.gather_seconds);
    sink.observe("multihost.network_seconds", report.network_seconds);
    sink.observe("multihost.coord_merge_seconds", report.coord_merge_seconds);
    sink.observe("multihost.batch.seconds", report.seconds);
    sink.set("multihost.slowest_host_seconds", report.slowest_host_seconds);
  }
  return report;
}

void MultiHostUpAnns::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  for (auto& engine : engines_) {
    if (engine) engine->set_metrics(registry);
  }
}

std::vector<MultiHostBatchWindows> multihost_timeline(
    const MultiHostPipelineReport& report) {
  std::vector<MultiHostBatchWindows> out;
  out.reserve(report.slots.size());
  if (!report.overlapped) {
    double t = 0;
    for (const MultiHostBatchSlot& slot : report.slots) {
      MultiHostBatchWindows w;
      w.pre_start = t;
      w.pre_end = w.pre_start + slot.pre_seconds;
      w.device_start = w.pre_end;
      w.device_end = w.device_start + slot.device_seconds;
      w.post_start = w.device_end;
      w.post_end = w.post_start + slot.post_seconds;
      t = w.post_end;
      out.push_back(w);
    }
    return out;
  }

  // Two resources: the coordinator runs pre(0), pre(1), post(0), pre(2),
  // post(1), ... (ready the next batch first, then merge the finished one);
  // the host fleet runs device phases in batch order. device(i) additionally
  // waits for pre(i), post(i) for device(i).
  double coord_free = 0;
  double device_free = 0;
  for (std::size_t i = 0; i < report.slots.size(); ++i) {
    MultiHostBatchWindows w;
    w.pre_start = coord_free;
    w.pre_end = w.pre_start + report.slots[i].pre_seconds;
    coord_free = w.pre_end;
    w.device_start = std::max(w.pre_end, device_free);
    w.device_end = w.device_start + report.slots[i].device_seconds;
    device_free = w.device_end;
    out.push_back(w);
    if (i >= 1) {
      MultiHostBatchWindows& prev = out[i - 1];
      prev.post_start = std::max(coord_free, prev.device_end);
      prev.post_end = prev.post_start + report.slots[i - 1].post_seconds;
      coord_free = prev.post_end;
    }
  }
  if (!out.empty()) {
    MultiHostBatchWindows& last = out.back();
    last.post_start = std::max(coord_free, last.device_end);
    last.post_end = last.post_start + report.slots.back().post_seconds;
  }
  return out;
}

MultiHostBatchPipeline::MultiHostBatchPipeline(MultiHostUpAnns& cluster,
                                               MultiHostPipelineOptions opts)
    : cluster_(cluster), opts_(opts) {}

MultiHostPipelineReport MultiHostBatchPipeline::run(
    const std::vector<data::Dataset>& batches) {
  return run(batches, MutationHook{});
}

MultiHostPipelineReport MultiHostBatchPipeline::run(
    const std::vector<data::Dataset>& batches, const MutationHook& mutate) {
  MultiHostPipelineReport out;
  out.overlapped = opts_.overlap;
  const bool adapting = opts_.adapt != AdaptMode::kOff;

  for (std::size_t b = 0; b < batches.size(); ++b) {
    const data::Dataset& batch = batches[b];
    MultiHostBatchSlot slot;
    if (mutate) mutate(b);
    if (cluster_.updatable() && cluster_.needs_patch()) {
      const UpAnnsEngine::PatchStats ps = cluster_.patch_hosts();
      slot.patch_seconds = ps.seconds;
      slot.patch_bytes = ps.bytes_written;
    }
    // Mutations land first so adaptive replicas build from fresh encodings;
    // the adaptation is a fleet-wide drain point between batches.
    if (adapting) apply_pending_adaptation(slot);
    std::vector<std::vector<std::uint32_t>> probes;
    if (adapting) {
      // One coordinator probe pass, shared by the search and by every
      // host's controller. search_with_probes charges the same simulated
      // filter time search() would, so a quiet controller keeps the run
      // bit-identical to the non-adaptive path.
      probes = ivf::filter_batch(cluster_.index(), batch,
                                 cluster_.options().per_host.nprobe);
      slot.report = cluster_.search_with_probes(batch, probes);
    } else {
      slot.report = cluster_.search(batch);
    }
    slot.pre_seconds =
        slot.report.coord_filter_seconds + slot.report.broadcast_seconds;
    // The fleet-wide patch (and any drift adaptation) occupies the hosts'
    // MRAM buses, so it leads the device phase like the single-host
    // pipeline's patch; adding 0.0 keeps read-only runs bit-identical.
    slot.device_seconds = slot.report.slowest_host_seconds +
                          slot.patch_seconds + slot.adapt_seconds;
    slot.post_seconds =
        slot.report.gather_seconds + slot.report.coord_merge_seconds;
    out.n_queries += batch.n;
    out.serial_seconds +=
        slot.report.seconds + slot.patch_seconds + slot.adapt_seconds;
    out.slots.push_back(std::move(slot));
    if (adapting) observe_and_decide(probes);
  }

  if (!opts_.overlap || out.slots.empty()) {
    out.elapsed_seconds = out.serial_seconds;
  } else {
    out.elapsed_seconds = multihost_timeline(out).back().post_end;
  }
  out.qps = out.elapsed_seconds > 0
                ? static_cast<double>(out.n_queries) / out.elapsed_seconds
                : 0;

  obs::MetricsSink sink(cluster_.metrics());
  if (sink.enabled()) {
    const std::vector<MultiHostBatchWindows> timeline = multihost_timeline(out);
    for (std::size_t i = 0; i < out.slots.size(); ++i) {
      const MultiHostBatchSlot& slot = out.slots[i];
      sink.observe("multihost_pipeline.slot.pre_seconds", slot.pre_seconds);
      sink.observe("multihost_pipeline.slot.device_seconds",
                   slot.device_seconds);
      sink.observe("multihost_pipeline.slot.post_seconds", slot.post_seconds);
      // Only written when a patch actually ran, so read-only runs keep a
      // byte-identical metrics report.
      if (slot.patch_seconds > 0) {
        sink.observe("multihost_pipeline.slot.patch_seconds",
                     slot.patch_seconds);
        sink.count("multihost_pipeline.patch_bytes", slot.patch_bytes);
      }
      if (slot.adapt_seconds > 0) {
        sink.observe("multihost_pipeline.slot.adapt_seconds",
                     slot.adapt_seconds);
        sink.count("multihost_pipeline.adapt_bytes", slot.adapt_bytes);
      }
      // Per-query latency (submission to merge completion) under the same
      // timeline the exporter draws, into the cumulative histogram and the
      // rolling window at the batch's completion time.
      const double latency = timeline[i].post_end - timeline[i].pre_start;
      const std::uint64_t nq = slot.report.neighbors.size();
      sink.observe_n("query.latency_seconds", latency, nq);
      sink.observe_window("query.latency_seconds", timeline[i].post_end,
                          latency, nq);
    }
    sink.count("multihost_pipeline.runs");
    sink.set("multihost_pipeline.overlap_saved_seconds",
             out.serial_seconds - out.elapsed_seconds);
    sink.set("multihost_pipeline.qps", out.qps);
  }
  if (cluster_.spans() != nullptr) {
    obs::append_multihost_spans(*cluster_.spans(), out);
  }
  return out;
}

void MultiHostBatchPipeline::apply_pending_adaptation(
    MultiHostBatchSlot& slot) {
  bool applied = false;
  for (std::size_t h = 0; h < adapt_.size(); ++h) {
    HostAdapt& ha = adapt_[h];
    if (!ha.controller || ha.pending.action == AdaptAction::kNone) continue;
    UpAnnsEngine& engine = cluster_.host_engine(h);
    double seconds = 0;
    std::uint64_t bytes = 0;
    if (ha.pending.action == AdaptAction::kRelocate) {
      // Per-host Algorithm-1 re-placement over this host's resident shard:
      // foreign and never-placed clusters keep size 0, so shard ownership —
      // and with it every neighbor list — is unchanged.
      ivf::ClusterStats stats;
      stats.sizes = cluster_.index().list_sizes();
      stats.frequencies = ha.pending_freqs;
      for (std::size_t c = 0; c < stats.sizes.size(); ++c) {
        if (engine.placement().cluster_dpus[c].empty()) stats.sizes[c] = 0;
      }
      stats.workloads.resize(stats.sizes.size());
      for (std::size_t c = 0; c < stats.sizes.size(); ++c) {
        stats.workloads[c] =
            static_cast<double>(stats.sizes[c]) * stats.frequencies[c];
      }
      const UpAnnsEngine::PatchStats ps = engine.relocate(stats);
      seconds = ps.seconds;
      bytes = ps.bytes_written;
    } else {
      const UpAnnsEngine::AdaptStats as = engine.apply_copy_adjustments(
          ha.pending.adjustments, ha.pending_freqs);
      seconds = as.seconds;
      bytes = as.bytes_written;
    }
    // Hosts adapt their own MRAM buses concurrently: slot time is the
    // slowest host's, volume sums, and the slot keeps the most severe
    // action (relocate > adjust-copies) with the largest drift.
    slot.adapt_seconds = std::max(slot.adapt_seconds, seconds);
    slot.adapt_bytes += bytes;
    if (static_cast<int>(ha.pending.action) >
        static_cast<int>(slot.adapt_action)) {
      slot.adapt_action = ha.pending.action;
    }
    slot.adapt_drift = std::max(slot.adapt_drift, ha.pending.drift);

    obs::MetricsSink sink(cluster_.metrics());
    if (sink.enabled()) {
      sink.count(std::string("adapt.actions.") +
                 adapt_action_name(ha.pending.action));
      sink.set("adapt.drift", ha.pending.drift);
    }

    // This host's placement now matches the decided profile.
    ha.controller->set_baseline(ha.pending_freqs);
    ha.pending = AdaptReport{};
    ha.pending_freqs.clear();
    applied = true;
  }
  if (applied) observed_since_action_ = 0;
}

void MultiHostBatchPipeline::observe_and_decide(
    const std::vector<std::vector<std::uint32_t>>& probes) {
  if (adapt_.empty()) {
    adapt_.resize(cluster_.n_hosts());
    for (std::size_t h = 0; h < cluster_.n_hosts(); ++h) {
      if (!cluster_.host_active(h)) continue;
      adapt_[h].controller = std::make_unique<AdaptiveController>(
          cluster_.index().n_clusters(), opts_.adaptive);
      adapt_[h].controller->set_baseline(
          cluster_.host_engine(h).placement_frequencies());
    }
  }
  for (HostAdapt& ha : adapt_) {
    if (ha.controller) ha.controller->observe_batch(probes);
  }
  ++observed_since_action_;

  for (const HostAdapt& ha : adapt_) {
    // Awaiting the fleet-wide drain point: no new decisions while any host
    // still has one pending.
    if (ha.pending.action != AdaptAction::kNone) return;
  }
  if (observed_since_action_ < opts_.adaptive.window_batches) return;

  const std::vector<std::size_t> sizes = cluster_.index().list_sizes();
  for (std::size_t h = 0; h < adapt_.size(); ++h) {
    HostAdapt& ha = adapt_[h];
    if (!ha.controller) continue;
    const Placement& placement = cluster_.host_engine(h).placement();
    std::vector<std::size_t> copies(sizes.size(), 0);
    std::vector<std::size_t> resident_sizes = sizes;
    const std::vector<double> freqs = ha.controller->window_mean();
    double total_workload = 0;
    for (std::size_t c = 0; c < sizes.size(); ++c) {
      copies[c] = placement.cluster_dpus[c].size();
      // Foreign and never-placed clusters have no resident replica here;
      // masking them to size 0 keeps each host inside its own shard.
      if (copies[c] == 0) resident_sizes[c] = 0;
      total_workload += static_cast<double>(resident_sizes[c]) * freqs[c];
    }
    const double w_bar =
        total_workload / static_cast<double>(placement.n_dpus());
    AdaptReport rep = ha.controller->recommend(
        resident_sizes, copies, w_bar,
        /*allow_relocate=*/opts_.adapt == AdaptMode::kFull);
    if (rep.action == AdaptAction::kNone) continue;
    ha.pending = std::move(rep);
    ha.pending_freqs = freqs;
  }
}

}  // namespace upanns::core
