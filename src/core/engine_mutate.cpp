// Streaming-update half of UpAnnsEngine: the mutation surface (upsert /
// remove / compact, delegating to the mutable IvfIndex) and patch_dpus(),
// the incremental MRAM delta-sync that replaces a full load_dpus() between
// serving batches. Only lists whose generation drifted since the last sync
// are touched, and within a list only the byte ranges that actually changed
// are pushed — appends write the tail, tombstones write a sentinel run.
#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "pim/transfer.hpp"

namespace upanns::core {

namespace {

/// Diff granularity for in-place patches. Coarse enough that a dirty run is
/// one host_write per contiguous edit, fine enough that a single tombstone
/// in a big list does not re-push the whole id array.
constexpr std::size_t kPatchGranule = 256;

/// Write `data` over the DPU bytes at [off, off+size), pushing only the
/// granule runs that differ. Returns the bytes written.
std::uint64_t patch_region(pim::Dpu& dpu, std::size_t off,
                           const std::uint8_t* data, std::size_t size) {
  std::uint64_t written = 0;
  std::size_t pos = 0;
  while (pos < size) {
    const std::size_t len = std::min(kPatchGranule, size - pos);
    if (std::memcmp(dpu.mram_data(off + pos), data + pos, len) == 0) {
      pos += len;
      continue;
    }
    // Extend across consecutive dirty granules so one edit = one write.
    std::size_t end = pos + len;
    while (end < size) {
      const std::size_t next = std::min(kPatchGranule, size - end);
      if (std::memcmp(dpu.mram_data(off + end), data + end, next) == 0) break;
      end += next;
    }
    dpu.host_write(off + pos, data + pos, end - pos);
    written += end - pos;
    pos = end;
  }
  return written;
}

}  // namespace

void UpAnnsEngine::upsert(std::span<const std::uint32_t> ids,
                          std::span<const float> vectors) {
  if (!mutable_index_) {
    throw std::logic_error("UpAnnsEngine::upsert: read-only engine");
  }
  // Upsert = tombstone any live previous version, then insert the new one.
  for (std::uint32_t id : ids) mutable_index_->remove(id);
  mutable_index_->insert(ids, vectors);
  if (metrics_) metrics_->counter("mutate.upserts").add(ids.size());
}

std::size_t UpAnnsEngine::remove(std::span<const std::uint32_t> ids) {
  if (!mutable_index_) {
    throw std::logic_error("UpAnnsEngine::remove: read-only engine");
  }
  std::size_t removed = 0;
  for (std::uint32_t id : ids) removed += mutable_index_->remove(id) ? 1 : 0;
  if (metrics_) metrics_->counter("mutate.removes").add(removed);
  return removed;
}

std::size_t UpAnnsEngine::compact(double min_tombstone_ratio) {
  if (!mutable_index_) {
    throw std::logic_error("UpAnnsEngine::compact: read-only engine");
  }
  const std::size_t n = mutable_index_->compact(min_tombstone_ratio);
  if (metrics_) metrics_->counter("mutate.compactions").add(n);
  return n;
}

bool UpAnnsEngine::needs_patch() const {
  return mutable_index_ != nullptr &&
         mutable_index_->mutation_epoch() != loaded_epoch_;
}

UpAnnsEngine::PatchStats UpAnnsEngine::patch_dpus() {
  PatchStats stats;
  if (!needs_patch()) return stats;

  // Dirty set: every list whose generation drifted since the last sync.
  std::vector<std::uint32_t> dirty;
  for (std::size_t c = 0; c < index_.n_clusters(); ++c) {
    if (index_.list(c).generation != loaded_gen_[c]) {
      dirty.push_back(static_cast<std::uint32_t>(c));
    }
  }

  // Refresh the shared encodings once; replicas on different DPUs reuse
  // them. Compactions force a re-encode, pure appends extend the stream.
  for (std::uint32_t c : dirty) refresh_encoding(c);

  if (metrics_) {
    obs::Histogram& ratios = metrics_->histogram(
        "mutate.tombstone_ratio", {0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0});
    for (std::uint32_t c : dirty) {
      ratios.observe(index_.list(c).tombstone_ratio());
    }
  }

  std::vector<std::size_t> dpu_bytes(options_.n_dpus, 0);
  std::vector<std::size_t> dpu_lists(options_.n_dpus, 0);
  std::vector<std::size_t> dpu_moved(options_.n_dpus, 0);

  common::ThreadPool::global().parallel_for(
      0, options_.n_dpus,
      [&](std::size_t d) {
        PerDpu& pd = per_dpu_[d];
        bool any = false;
        for (std::uint32_t c : dirty) {
          if (pd.cluster_slot[c] >= 0) {
            any = true;
            break;
          }
        }
        if (!any) return;

        pim::Dpu& dpu = system_->dpu(d);
        // Per-batch scratch (queries/results) lives past the static mark;
        // drop it so a relocated region can take the space. The next batch
        // re-pushes its scratch against the updated mark.
        dpu.mram_rewind(pd.static_mark);

        // Relocate-or-patch one region; `off`/`cap` update in place.
        auto sync_region = [&](std::size_t& off, std::size_t& cap,
                               const std::uint8_t* data, std::size_t size,
                               const char* tag) -> std::uint64_t {
          if (size == 0) return 0;  // keep any reserved region for later
          if (size <= cap) return patch_region(dpu, off, data, size);
          if (cap > 0) dpu.mram_release(off, cap);
          cap = slack_bytes(size);
          off = dpu.mram_alloc_reuse(cap, tag);
          dpu.host_write(off, data, size);
          ++dpu_moved[d];
          return size;
        };

        ClusterImage img;
        std::uint64_t bytes = 0;
        for (std::uint32_t c : dirty) {
          const std::int32_t slot = pd.cluster_slot[c];
          if (slot < 0) continue;
          build_cluster_image(c, img);
          DpuClusterData& cd = pd.layout.clusters[static_cast<std::size_t>(slot)];

          bytes += sync_region(
              cd.ids_off, cd.ids_cap,
              reinterpret_cast<const std::uint8_t*>(img.ids.data()),
              img.ids.size() * sizeof(std::uint32_t), "ids");
          bytes += sync_region(
              cd.stream_off, cd.stream_cap, img.stream.data(),
              img.stream.size(),
              mode_ == KernelMode::kNaiveRaw ? "codes" : "tokens");
          bytes += sync_region(
              cd.chunk_index_off, cd.chunk_cap,
              reinterpret_cast<const std::uint8_t*>(img.chunk_index.data()),
              img.chunk_index.size() * sizeof(std::uint32_t), "chunk-index");
          bytes += sync_region(cd.combos_off, cd.combos_cap, img.combos.data(),
                               img.combos.size(), "combos");

          // Length/tombstone table update — the host-side mirror of the
          // per-cluster descriptor block a real deployment would push.
          cd.n_records = img.n_records;
          cd.n_tombstones = img.n_tombstones;
          cd.stream_len = img.stream_elems;
          cd.n_chunks = static_cast<std::uint32_t>(img.chunk_index.size());
          cd.n_combos = static_cast<std::uint32_t>(img.combos.size() / 4);
          ++dpu_lists[d];
        }
        pd.static_mark = dpu.mram_mark();
        dpu_bytes[d] = static_cast<std::size_t>(bytes);
      },
      1);

  for (std::size_t d = 0; d < options_.n_dpus; ++d) {
    stats.bytes_written += dpu_bytes[d];
    stats.lists_patched += dpu_lists[d];
    stats.regions_moved += dpu_moved[d];
  }
  // Charged like every other host->DPU push: non-uniform per-DPU sizes take
  // the serialized path (paper Sec 2.2) unless the deltas happen to match.
  const pim::TransferStats xfer = pim::TransferEngine::batch(dpu_bytes);
  stats.seconds = xfer.seconds;

  patch_bytes_total_ += stats.bytes_written;
  snapshot_loaded_state();

  if (metrics_) {
    metrics_->counter("mutate.patches").add(1);
    metrics_->counter("mutate.patch_bytes").add(stats.bytes_written);
    metrics_->counter("mutate.patched_lists").add(stats.lists_patched);
    metrics_->counter("mutate.regions_moved").add(stats.regions_moved);
    metrics_->histogram("mutate.patch.seconds").observe(stats.seconds);
    pim::TransferEngine::record(obs::MetricsSink(metrics_), "patch", xfer);
  }
  common::log_debug("mram-patch: ", stats.lists_patched, " lists, ",
                    stats.bytes_written, " bytes, ", stats.regions_moved,
                    " regions moved, ", stats.seconds, " s");
  return stats;
}

}  // namespace upanns::core
