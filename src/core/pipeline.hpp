// The online query path, decomposed into named stage objects.
//
// QueryPipeline runs one batch through six individually timed stages:
//
//   cluster-filter  (host)    coarse filtering on the CPU roofline
//   alg2-schedule   (host)    Algorithm 2 replica selection / balancing
//   uniform-push    (device)  launch-input build + uniform-size MRAM push
//   kernel-launch   (device)  DPU kernels, max-over-DPU critical path
//   gather          (device)  per-DPU top-k result readback
//   host-merge      (host)    final k-way merge on the host
//
// Each stage books its simulated seconds into exactly one bucket of
// SearchReport::times and reports the same seconds in the SearchReport
// trace, so the trace always sums to times.total().
//
// BatchPipeline streams a sequence of query batches through the stages with
// double-buffering: the leading host stages (filter + schedule) of batch
// i+1 overlap the device-bound remainder of batch i, the classic two-phase
// software pipeline of the paper's Fig 5 host orchestration. Simulated
// elapsed time is h_0 + sum_i max(d_i, h_{i+1}) + d_last; with overlap
// disabled (--no-overlap in the CLI) it is exactly the serial sum of the
// per-batch totals. Results are bit-identical either way — overlap changes
// only the time accounting, never the execution order of a batch's stages.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "core/dpu_kernel.hpp"
#include "core/engine.hpp"
#include "core/scheduler.hpp"
#include "data/dataset.hpp"
#include "obs/metrics.hpp"
#include "pim/dpu.hpp"

namespace upanns::core {

/// Mutable state threaded through the stages of one batch.
struct BatchContext {
  const data::Dataset* queries = nullptr;
  const std::vector<std::vector<std::uint32_t>>* probes = nullptr;
  std::vector<std::vector<std::uint32_t>> owned_probes;  ///< when filtering here

  Schedule sched;
  std::vector<DpuLaunchInput> inputs;
  std::vector<std::size_t> push_bytes;
  /// Borrowed from QueryPipeline's kernel pool (rebind per batch); nullptr
  /// for idle DPUs. Valid for the lifetime of the batch only.
  std::vector<QueryKernel*> kernels;
  pim::PimSystem::LaunchStats launch;
  std::vector<std::vector<std::vector<common::Neighbor>>> per_query_lists;
  std::size_t max_gather = 0;

  SearchReport report;
};

/// One named online stage. run() performs the stage, books its cost into
/// ctx.report.times, and returns the simulated seconds it booked (the
/// pipeline appends that to the report trace).
class QueryStage {
 public:
  virtual ~QueryStage() = default;
  virtual const char* name() const = 0;
  virtual StageSide side() const = 0;
  virtual double run(QueryPipeline& pl, BatchContext& ctx) = 0;
};

class ClusterFilterStage final : public QueryStage {
 public:
  const char* name() const override { return "cluster-filter"; }
  StageSide side() const override { return StageSide::kHost; }
  double run(QueryPipeline& pl, BatchContext& ctx) override;
};

class ScheduleStage final : public QueryStage {
 public:
  const char* name() const override { return "alg2-schedule"; }
  StageSide side() const override { return StageSide::kHost; }
  double run(QueryPipeline& pl, BatchContext& ctx) override;
};

class PushStage final : public QueryStage {
 public:
  const char* name() const override { return "uniform-push"; }
  StageSide side() const override { return StageSide::kDevice; }
  double run(QueryPipeline& pl, BatchContext& ctx) override;
};

class LaunchStage final : public QueryStage {
 public:
  const char* name() const override { return "kernel-launch"; }
  StageSide side() const override { return StageSide::kDevice; }
  double run(QueryPipeline& pl, BatchContext& ctx) override;
};

class GatherStage final : public QueryStage {
 public:
  const char* name() const override { return "gather"; }
  StageSide side() const override { return StageSide::kDevice; }
  double run(QueryPipeline& pl, BatchContext& ctx) override;
};

class MergeStage final : public QueryStage {
 public:
  const char* name() const override { return "host-merge"; }
  StageSide side() const override { return StageSide::kHost; }
  double run(QueryPipeline& pl, BatchContext& ctx) override;
};

/// Runs one batch through the six stages. Engine internals funnel through
/// the accessors below (the engine befriends only this class).
class QueryPipeline {
 public:
  explicit QueryPipeline(UpAnnsEngine& engine);

  /// probes == nullptr -> the filter stage computes them (options().nprobe).
  /// batch_id / first_query_id are the stable telemetry ids stamped into
  /// SearchReport::query_costs when the engine has a span log attached
  /// (obs/span.hpp); they are ignored otherwise, so standalone searches can
  /// leave them defaulted. probes_out, when non-null, receives the batch's
  /// probe lists after the stages ran (moved out when the filter stage
  /// computed them) — the adaptive serving loop feeds them to its drift
  /// controller; null skips the capture entirely.
  SearchReport run(const data::Dataset& queries,
                   const std::vector<std::vector<std::uint32_t>>* probes,
                   std::uint64_t batch_id = 0,
                   std::uint64_t first_query_id = 0,
                   std::vector<std::vector<std::uint32_t>>* probes_out =
                       nullptr);

  UpAnnsEngine& engine() { return engine_; }
  const ivf::IvfIndex& index() const { return engine_.index_; }
  const UpAnnsOptions& options() const { return engine_.options_; }
  const Placement& placement() const { return engine_.placement_; }
  pim::PimSystem& system() { return *engine_.system_; }
  KernelMode mode() const { return engine_.mode_; }
  UpAnnsEngine::PerDpu& per_dpu(std::size_t d) { return engine_.per_dpu_[d]; }
  /// Empty (inlined no-op) when the engine has no registry attached.
  obs::MetricsSink sink() const { return engine_.metrics_; }
  /// Null when no span log is attached (per-query cost capture skipped).
  obs::SpanLog* spans() const { return engine_.spans_; }

  /// Kernel pool: constructs DPU d's kernel on first use, rebinds it to the
  /// new launch input afterwards. Mode, pruning and the static layout are
  /// per-engine constants, so reuse across batches is sound; the returned
  /// pointer stays owned by the pipeline and must not outlive it.
  QueryKernel* acquire_kernel(std::size_t d, const DpuLaunchInput& input);

  /// Drop every pooled kernel. Required after UpAnnsEngine::relocate(): a
  /// relocation rebuilds the per-DPU layout objects the pooled kernels hold
  /// references into, so they must be reconstructed on next use.
  void reset_kernels() { kernel_pool_.clear(); }

 private:
  UpAnnsEngine& engine_;
  std::vector<std::unique_ptr<QueryStage>> stages_;
  std::vector<std::unique_ptr<QueryKernel>> kernel_pool_;
};

struct BatchPipelineOptions {
  /// Overlap host stages of batch i+1 with device stages of batch i. False
  /// reproduces the serial per-batch totals exactly (CLI --no-overlap).
  bool overlap = true;
  /// Book per-query `query.latency_seconds` (cumulative + rolling window)
  /// from the simulated timeline when the run finishes. The online serve
  /// layer (src/serve/) turns this off and books measured enqueue→complete
  /// latencies under the same name instead, so the metric never mixes the
  /// simulated and wall-clock time bases.
  bool book_query_latency = true;
  /// Online adaptive replication (paper Sec 4.1.2): after each batch the
  /// stream feeds the probe histogram and per-DPU busy seconds into an
  /// AdaptiveController; a recommendation made at the end of batch i is
  /// applied before batch i+1 runs (a drain point), its MRAM cost folded
  /// into that slot's device phase like a mutation patch. kOff (the
  /// default) skips the controller entirely and is byte-identical to a
  /// build without the feature.
  AdaptMode adapt = AdaptMode::kOff;
  /// Controller tuning when adapt != kOff. window_batches doubles as the
  /// decision cooldown: at least that many batches are observed after every
  /// action (or stream start) before the controller may act again.
  AdaptiveOptions adaptive{};
};

/// One scheduled batch in a pipeline run.
struct BatchSlot {
  double host_seconds = 0;    ///< leading host stages (filter + schedule)
  double device_seconds = 0;  ///< everything after the host prefix
  /// Incremental MRAM patch applied before this batch (updatable engines
  /// with pending mutations only; folded into device_seconds).
  double patch_seconds = 0;
  std::uint64_t patch_bytes = 0;
  /// Adaptive-replication work applied before this batch — a copy-adjust
  /// MRAM load or a full relocation, decided at the end of an earlier batch
  /// (BatchPipelineOptions::adapt). Folded into device_seconds like the
  /// mutation patch; zero whenever the controller did not act.
  double adapt_seconds = 0;
  std::uint64_t adapt_bytes = 0;
  AdaptAction adapt_action = AdaptAction::kNone;
  double adapt_drift = 0;  ///< controller drift at decision time
  SearchReport report;
};

struct BatchPipelineReport {
  std::vector<BatchSlot> slots;
  double serial_seconds = 0;   ///< sum of per-batch totals (no-overlap time)
  double elapsed_seconds = 0;  ///< simulated end-to-end time of this run
  bool overlapped = true;
  std::size_t n_queries = 0;
  double qps = 0;              ///< n_queries / elapsed_seconds
};

/// Sum of the leading StageSide::kHost trace entries of a report — the host
/// prefix (filter + schedule) that the batch pipelines overlap with the
/// previous batch's device phase. Shared by BatchPipeline and the
/// multi-host per-host accounting (core/multihost.cpp).
double leading_host_seconds(const SearchReport& report);

/// Incremental (continuous) variant of BatchPipeline: batches are fed one
/// at a time as they become available — the entry point the online serve
/// layer (src/serve/) uses, where batch boundaries are decided by a
/// deadline batcher instead of known up front. Accounting is identical to
/// BatchPipeline::run over the same batch sequence (BatchPipeline is
/// implemented on top of this class), including pending-mutation MRAM
/// patches, slot metrics, span assembly and the overlap recurrence.
class BatchStream {
 public:
  explicit BatchStream(UpAnnsEngine& engine, BatchPipelineOptions opts = {});

  /// Apply any pending mutations as one MRAM patch, then run `batch`
  /// through the six stages. The returned slot reference stays valid until
  /// finish(). Query/batch telemetry ids continue across calls.
  const BatchSlot& run_batch(const data::Dataset& batch);

  std::size_t n_batches() const { return out_.slots.size(); }
  std::size_t n_queries() const { return out_.n_queries; }
  UpAnnsEngine& engine() { return engine_; }

  /// Close the stream: compute the overlapped elapsed time, book the
  /// pipeline metrics and spans, and return the report. The stream resets
  /// and can be reused for a fresh run afterwards.
  BatchPipelineReport finish();

 private:
  void apply_pending_adaptation(BatchSlot& slot);
  void observe_and_decide(
      const std::vector<std::vector<std::uint32_t>>& probes,
      const BatchSlot& slot);

  UpAnnsEngine& engine_;
  BatchPipelineOptions opts_;
  QueryPipeline pipeline_;
  BatchPipelineReport out_;
  std::uint64_t first_query_id_ = 0;

  // Drift-loop state (adapt != kOff only). The controller survives finish()
  // so a reused stream keeps its traffic estimate across runs.
  std::unique_ptr<AdaptiveController> adapt_;
  AdaptReport pending_;             ///< decision awaiting the next drain point
  std::vector<double> pending_freqs_;  ///< profile the decision was sized for
  std::size_t observed_since_action_ = 0;
  bool adapt_applied_last_ = false;  ///< book post-action balance next batch
};

/// Streams query batches through the engine with double-buffered time
/// accounting (see file comment). Execution itself stays serial, so
/// per-query neighbors are bit-identical with overlap on or off.
class BatchPipeline {
 public:
  explicit BatchPipeline(UpAnnsEngine& engine, BatchPipelineOptions opts = {});

  BatchPipelineReport run(const std::vector<data::Dataset>& batches);

  /// Mixed read/write workload: `mutate(i)` runs before batch i and may
  /// issue engine upsert/remove/compact calls. Pending mutations are then
  /// applied as one incremental MRAM patch (UpAnnsEngine::patch_dpus) whose
  /// cost is charged to the slot's device phase — the patch occupies the
  /// MRAM bus, so it cannot overlap the batch's own device stages, but the
  /// next batch's host prefix still overlaps it like any device work. A
  /// null hook (or one that never mutates) reproduces the read-only run
  /// bit-for-bit.
  using MutationHook = std::function<void(std::size_t batch_index)>;
  BatchPipelineReport run(const std::vector<data::Dataset>& batches,
                          const MutationHook& mutate);

 private:
  UpAnnsEngine& engine_;
  BatchPipelineOptions opts_;
};

/// Split a query set into consecutive batches of `batch_size` (the last one
/// may be short). Rows are copied; the input stays valid independently.
std::vector<data::Dataset> split_batches(const data::Dataset& queries,
                                         std::size_t batch_size);

}  // namespace upanns::core
