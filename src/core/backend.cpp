// Backend implementations behind the AnnsBackend interface. The CPU and GPU
// backends wrap the functional Faiss-CPU searcher (GPU reuses its neighbors
// — same ADC math — and re-times them with the analytical GPU model); the
// PIM backends wrap UpAnnsEngine.
#include "core/backend.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "baselines/cpu_ivfpq.hpp"
#include "core/engine.hpp"
#include "core/multihost.hpp"
#include "data/ground_truth.hpp"
#include "pim/energy.hpp"

namespace upanns::core {

void AnnsBackend::upsert(std::span<const std::uint32_t>,
                         std::span<const float>) {
  throw std::logic_error(std::string(name()) +
                         ": backend does not support updates");
}

std::size_t AnnsBackend::remove(std::span<const std::uint32_t>) {
  throw std::logic_error(std::string(name()) +
                         ": backend does not support updates");
}

double SearchReport::recall_against(
    const std::vector<std::vector<common::Neighbor>>& exact,
    std::size_t k) const {
  return data::recall_at_k(exact, neighbors, k);
}

SearchReport SearchReport::at_scale(double data_factor,
                                    double dpu_factor) const {
  if (!pim.has_value()) {
    throw std::logic_error("SearchReport::at_scale: report has no PIM extras");
  }
  SearchReport r = *this;
  PimExtras& px = *r.pim;
  // Scale every DPU's stages, then let the slowest *scaled* DPU set the
  // launch-critical path (balance is preserved through the max).
  double best = -1.0;
  PimExtras::DpuStageSeconds crit;
  for (PimExtras::DpuStageSeconds s : pim->dpu_stage_seconds) {
    s.lut *= dpu_factor;
    s.dist *= data_factor * dpu_factor;
    s.topk *= dpu_factor;
    if (s.total() > best) {
      best = s.total();
      crit = s;
    }
  }
  if (best >= 0) {
    r.times.lut_build = crit.lut;
    r.times.distance_calc = crit.dist;
    r.times.topk = crit.topk;
  }
  // Power is drawn by the *target* configuration the extrapolation aims at
  // (dpu_factor = dpus_actual / dpus_target), not the measured DPU count.
  const std::size_t target_dpus =
      dpu_factor > 0
          ? static_cast<std::size_t>(std::llround(
                static_cast<double>(pim->n_dpus) / dpu_factor))
          : pim->n_dpus;
  px.n_dpus = target_dpus;
  const double total = r.times.total();
  r.qps = total > 0 ? static_cast<double>(neighbors.size()) / total : 0;
  r.qps_per_watt = pim::qps_per_watt(r.qps, pim::Platform::kPim, target_dpus);
  return r;
}

namespace {

baselines::SearchParams params_of(const UpAnnsOptions& options) {
  baselines::SearchParams p;
  p.nprobe = options.nprobe;
  p.k = options.k;
  return p;
}

class CpuBackend final : public AnnsBackend {
 public:
  CpuBackend(const ivf::IvfIndex& index, const UpAnnsOptions& options)
      : searcher_(index), params_(params_of(options)) {}
  /// Updatable variant — the parity oracle for streaming-update tests. The
  /// searcher scans the live lists directly, so writes need no extra sync.
  CpuBackend(ivf::IvfIndex& index, const UpAnnsOptions& options)
      : searcher_(index), params_(params_of(options)), mutable_index_(&index) {}

  const char* name() const override { return "Faiss-CPU"; }

  SearchReport search(const data::Dataset& queries) override {
    return wrap(searcher_.search(queries, params_));
  }

  SearchReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes) override {
    return wrap(searcher_.search_with_probes(queries, probes, params_));
  }

  bool supports_updates() const override { return mutable_index_ != nullptr; }

  void upsert(std::span<const std::uint32_t> ids,
              std::span<const float> vectors) override {
    if (!mutable_index_) return AnnsBackend::upsert(ids, vectors);
    for (std::uint32_t id : ids) mutable_index_->remove(id);
    mutable_index_->insert(ids, vectors);
  }

  std::size_t remove(std::span<const std::uint32_t> ids) override {
    if (!mutable_index_) return AnnsBackend::remove(ids);
    std::size_t removed = 0;
    for (std::uint32_t id : ids) removed += mutable_index_->remove(id) ? 1 : 0;
    return removed;
  }

 private:
  SearchReport wrap(baselines::CpuSearchResult res) const {
    SearchReport r;
    r.times = res.times;
    r.qps = res.qps();
    r.qps_per_watt = pim::qps_per_watt(r.qps, pim::Platform::kCpu);
    r.cpu.emplace();
    r.cpu->profile = res.profile;
    r.neighbors = std::move(res.neighbors);
    return r;
  }

  baselines::CpuIvfpqSearcher searcher_;
  baselines::SearchParams params_;
  ivf::IvfIndex* mutable_index_ = nullptr;
};

class GpuBackend final : public AnnsBackend {
 public:
  GpuBackend(const ivf::IvfIndex& index, const UpAnnsOptions& options)
      : searcher_(index), params_(params_of(options)) {}

  const char* name() const override { return "Faiss-GPU"; }

  SearchReport search(const data::Dataset& queries) override {
    return wrap(searcher_.search(queries, params_));
  }

  SearchReport search_with_probes(
      const data::Dataset& queries,
      const std::vector<std::vector<std::uint32_t>>& probes) override {
    return wrap(searcher_.search_with_probes(queries, probes, params_));
  }

 private:
  SearchReport wrap(baselines::CpuSearchResult res) const {
    SearchReport r;
    r.times = baselines::GpuModel::stage_times(res.profile);
    r.gpu.emplace();
    r.gpu->capacity = baselines::GpuModel::capacity(res.profile);
    r.gpu->oom = !r.gpu->capacity.fits;
    r.gpu->profile = res.profile;
    const double total = r.times.total();
    r.qps = (r.gpu->oom || total <= 0)
                ? 0
                : static_cast<double>(res.profile.n_queries) / total;
    r.qps_per_watt = pim::qps_per_watt(r.qps, pim::Platform::kGpu);
    r.neighbors = std::move(res.neighbors);
    return r;
  }

  baselines::CpuIvfpqSearcher searcher_;
  baselines::SearchParams params_;
};

}  // namespace

UpAnnsBackend::UpAnnsBackend(const ivf::IvfIndex& index,
                             const ivf::ClusterStats& stats,
                             const UpAnnsOptions& options, const char* label)
    : engine_(std::make_unique<UpAnnsEngine>(index, stats, options)),
      label_(label) {}

UpAnnsBackend::UpAnnsBackend(ivf::IvfIndex& index,
                             const ivf::ClusterStats& stats,
                             const UpAnnsOptions& options, const char* label)
    : engine_(std::make_unique<UpAnnsEngine>(index, stats, options)),
      label_(label) {}

UpAnnsBackend::~UpAnnsBackend() = default;

SearchReport UpAnnsBackend::search(const data::Dataset& queries) {
  // Lazy write-visibility: any index mutations since the last sync land on
  // the DPUs as an incremental patch before the batch runs.
  if (engine_->needs_patch()) engine_->patch_dpus();
  return engine_->search(queries);
}

SearchReport UpAnnsBackend::search_with_probes(
    const data::Dataset& queries,
    const std::vector<std::vector<std::uint32_t>>& probes) {
  if (engine_->needs_patch()) engine_->patch_dpus();
  return engine_->search_with_probes(queries, probes);
}

void UpAnnsBackend::set_metrics(obs::MetricsRegistry* registry) {
  engine_->set_metrics(registry);
}

bool UpAnnsBackend::supports_updates() const { return engine_->updatable(); }

void UpAnnsBackend::upsert(std::span<const std::uint32_t> ids,
                           std::span<const float> vectors) {
  if (!engine_->updatable()) return AnnsBackend::upsert(ids, vectors);
  engine_->upsert(ids, vectors);
}

std::size_t UpAnnsBackend::remove(std::span<const std::uint32_t> ids) {
  if (!engine_->updatable()) return AnnsBackend::remove(ids);
  return engine_->remove(ids);
}

MultiHostBackend::MultiHostBackend(const ivf::IvfIndex& index,
                                   const ivf::ClusterStats& stats,
                                   const MultiHostOptions& options)
    : cluster_(std::make_unique<MultiHostUpAnns>(index, stats, options)) {}

MultiHostBackend::~MultiHostBackend() = default;

namespace {

SearchReport wrap_multihost(MultiHostReport r) {
  SearchReport out;
  // Slowest host's breakdown, with the shared coordinator filter replacing
  // the host's own copy (identical value, charged once) and the network +
  // inter-host merge share in the transfer bucket. The trace carries the
  // coordinator-phase decomposition; both sum to the multi-host seconds.
  std::size_t slowest = 0;
  double slowest_remainder = -1.0;
  for (std::size_t h = 0; h < r.host_slots.size(); ++h) {
    const MultiHostHostSlot& s = r.host_slots[h];
    if (!s.active) continue;
    if (s.host_seconds + s.device_seconds > slowest_remainder) {
      slowest_remainder = s.host_seconds + s.device_seconds;
      slowest = h;
    }
  }
  if (slowest_remainder >= 0) out.times = r.host_times[slowest];
  out.times.cluster_filter +=
      r.coord_filter_seconds -
      (slowest_remainder >= 0
           ? r.host_times[slowest].total() - slowest_remainder
           : 0);
  out.times.transfer += r.network_seconds + r.coord_merge_seconds;
  out.trace = {
      {"cluster-filter", r.coord_filter_seconds, StageSide::kHost},
      {"broadcast", r.broadcast_seconds, StageSide::kHost},
      {"host-search", r.slowest_host_seconds, StageSide::kDevice},
      {"gather", r.gather_seconds, StageSide::kHost},
      {"interhost-merge", r.coord_merge_seconds, StageSide::kHost},
  };
  out.qps = r.qps;
  out.qps_per_watt = 0;  // per-host power is a per-engine notion
  out.neighbors = std::move(r.neighbors);
  return out;
}

}  // namespace

SearchReport MultiHostBackend::search(const data::Dataset& queries) {
  return wrap_multihost(cluster_->search(queries));
}

SearchReport MultiHostBackend::search_with_probes(
    const data::Dataset& queries,
    const std::vector<std::vector<std::uint32_t>>& probes) {
  return wrap_multihost(cluster_->search_with_probes(queries, probes));
}

void MultiHostBackend::set_metrics(obs::MetricsRegistry* registry) {
  cluster_->set_metrics(registry);
}

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kCpuIvfpq: return "Faiss-CPU";
    case BackendKind::kGpuIvfpq: return "Faiss-GPU";
    case BackendKind::kUpAnns: return "UpANNS";
    case BackendKind::kPimNaive: return "PIM-naive";
    case BackendKind::kMultiHost: return "UpANNS-MH";
  }
  return "unknown";
}

std::optional<BackendKind> backend_kind_of(std::string_view name) {
  if (name == "cpu") return BackendKind::kCpuIvfpq;
  if (name == "gpu") return BackendKind::kGpuIvfpq;
  if (name == "upanns") return BackendKind::kUpAnns;
  if (name == "naive" || name == "pim-naive") return BackendKind::kPimNaive;
  if (name == "multihost" || name == "mh") return BackendKind::kMultiHost;
  return std::nullopt;
}

std::unique_ptr<AnnsBackend> make_backend(BackendKind kind,
                                          const ivf::IvfIndex& index,
                                          const ivf::ClusterStats& stats,
                                          const UpAnnsOptions& options) {
  switch (kind) {
    case BackendKind::kCpuIvfpq:
      return std::make_unique<CpuBackend>(index, options);
    case BackendKind::kGpuIvfpq:
      return std::make_unique<GpuBackend>(index, options);
    case BackendKind::kUpAnns:
      return std::make_unique<UpAnnsBackend>(index, stats, options,
                                             backend_name(kind));
    case BackendKind::kPimNaive: {
      // Apply the paper's Sec 5.1 naive toggles on top of the caller's
      // shared sizing knobs (n_dpus, k, nprobe, ...).
      UpAnnsOptions naive = options;
      UpAnnsOptions defaults = UpAnnsOptions::pim_naive();
      naive.opt_placement = defaults.opt_placement;
      naive.opt_scheduling = defaults.opt_scheduling;
      naive.opt_cae = defaults.opt_cae;
      naive.opt_prune_topk = defaults.opt_prune_topk;
      naive.naive_raw_codes = defaults.naive_raw_codes;
      return std::make_unique<UpAnnsBackend>(index, stats, naive,
                                             backend_name(kind));
    }
    case BackendKind::kMultiHost: {
      MultiHostOptions mh;
      mh.per_host = options;
      return std::make_unique<MultiHostBackend>(index, stats, mh);
    }
  }
  throw std::invalid_argument("make_backend: unknown backend kind");
}

std::unique_ptr<AnnsBackend> make_backend(BackendKind kind,
                                          ivf::IvfIndex& index,
                                          const ivf::ClusterStats& stats,
                                          const UpAnnsOptions& options) {
  switch (kind) {
    case BackendKind::kCpuIvfpq:
      return std::make_unique<CpuBackend>(index, options);
    case BackendKind::kUpAnns:
      return std::make_unique<UpAnnsBackend>(index, stats, options,
                                             backend_name(kind));
    case BackendKind::kPimNaive: {
      UpAnnsOptions naive = options;
      UpAnnsOptions defaults = UpAnnsOptions::pim_naive();
      naive.opt_placement = defaults.opt_placement;
      naive.opt_scheduling = defaults.opt_scheduling;
      naive.opt_cae = defaults.opt_cae;
      naive.opt_prune_topk = defaults.opt_prune_topk;
      naive.naive_raw_codes = defaults.naive_raw_codes;
      return std::make_unique<UpAnnsBackend>(index, stats, naive,
                                             backend_name(kind));
    }
    default:
      // GPU model / multi-host have no update path; serve read-only.
      return make_backend(kind, static_cast<const ivf::IvfIndex&>(index),
                          stats, options);
  }
}

std::unique_ptr<AnnsBackend> make_multihost_backend(
    const ivf::IvfIndex& index, const ivf::ClusterStats& stats,
    const MultiHostOptions& options) {
  return std::make_unique<MultiHostBackend>(index, stats, options);
}

}  // namespace upanns::core
