#include "core/adaptive.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace upanns::core {

const char* adapt_action_name(AdaptAction a) {
  switch (a) {
    case AdaptAction::kNone: return "none";
    case AdaptAction::kAdjustCopies: return "adjust-copies";
    case AdaptAction::kRelocate: return "relocate";
  }
  return "?";
}

AdaptiveController::AdaptiveController(std::size_t n_clusters,
                                       AdaptiveOptions options)
    : n_clusters_(n_clusters), options_(options) {
  if (n_clusters_ == 0) {
    throw std::invalid_argument("AdaptiveController: n_clusters == 0");
  }
  baseline_.assign(n_clusters_, 1.0 / static_cast<double>(n_clusters_));
  estimate_ = baseline_;
}

void AdaptiveController::set_baseline(const std::vector<double>& frequencies) {
  assert(frequencies.size() == n_clusters_);
  baseline_ = frequencies;
  double total = 0;
  for (double f : baseline_) total += f;
  if (total > 0) {
    for (double& f : baseline_) f /= total;
  }
  estimate_ = baseline_;
  window_.clear();
}

void AdaptiveController::observe_batch(
    const std::vector<std::vector<std::uint32_t>>& probes) {
  std::vector<double> batch(n_clusters_, 0.0);
  double total = 0;
  for (const auto& list : probes) {
    for (std::uint32_t c : list) {
      if (c < n_clusters_) {
        batch[c] += 1.0;
        total += 1.0;
      }
    }
  }
  if (total == 0) return;
  for (double& v : batch) v /= total;

  window_.push_back(batch);
  if (window_.size() > options_.window_batches) window_.pop_front();

  // EWMA update toward the batch distribution.
  const double a = options_.ewma_alpha;
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    estimate_[c] = (1.0 - a) * estimate_[c] + a * batch[c];
  }
  ++batches_observed_;
}

double AdaptiveController::drift() const {
  // Total-variation distance: 0 (identical) .. 1 (disjoint support).
  double tv = 0;
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    tv += std::abs(estimate_[c] - baseline_[c]);
  }
  return 0.5 * tv;
}

AdaptReport AdaptiveController::recommend(
    const std::vector<std::size_t>& cluster_sizes,
    const std::vector<std::size_t>& current_copies,
    double avg_dpu_workload) const {
  assert(cluster_sizes.size() == n_clusters_);
  assert(current_copies.size() == n_clusters_);
  AdaptReport report;
  report.drift = drift();

  if (report.drift >= options_.major_threshold) {
    report.action = AdaptAction::kRelocate;
    return report;
  }

  // Desired replica counts under the *current* traffic estimate: Algorithm
  // 1's ncpy = ceil(s_i * f_i / W-bar) recomputed with the fresh f_i.
  std::size_t changed = 0;
  std::size_t replicated_total = 0;
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    if (cluster_sizes[c] == 0) continue;
    const double w = static_cast<double>(cluster_sizes[c]) * estimate_[c];
    const std::size_t want = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(w / std::max(avg_dpu_workload, 1e-30))));
    replicated_total += current_copies[c];
    if (want != current_copies[c]) {
      report.adjustments.push_back(
          {static_cast<std::uint32_t>(c),
           static_cast<std::int32_t>(want) -
               static_cast<std::int32_t>(current_copies[c])});
      ++changed;
    }
  }

  const double change_frac =
      replicated_total > 0
          ? static_cast<double>(changed) / static_cast<double>(n_clusters_)
          : 0.0;
  if (report.drift >= options_.minor_threshold ||
      change_frac >= options_.copy_change_fraction) {
    report.action = AdaptAction::kAdjustCopies;
  } else {
    report.action = AdaptAction::kNone;
    report.adjustments.clear();
  }
  return report;
}

}  // namespace upanns::core
