#include "core/adaptive.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace upanns::core {

const char* adapt_action_name(AdaptAction a) {
  switch (a) {
    case AdaptAction::kNone: return "none";
    case AdaptAction::kAdjustCopies: return "adjust-copies";
    case AdaptAction::kRelocate: return "relocate";
  }
  return "?";
}

const char* adapt_mode_name(AdaptMode m) {
  switch (m) {
    case AdaptMode::kOff: return "off";
    case AdaptMode::kCopies: return "copies";
    case AdaptMode::kFull: return "full";
  }
  return "?";
}

bool parse_adapt_mode(std::string_view text, AdaptMode* out) {
  if (text == "off") {
    *out = AdaptMode::kOff;
  } else if (text == "copies") {
    *out = AdaptMode::kCopies;
  } else if (text == "full") {
    *out = AdaptMode::kFull;
  } else {
    return false;
  }
  return true;
}

AdaptiveController::AdaptiveController(std::size_t n_clusters,
                                       AdaptiveOptions options)
    : n_clusters_(n_clusters), options_(options) {
  if (n_clusters_ == 0) {
    throw std::invalid_argument("AdaptiveController: n_clusters == 0");
  }
  baseline_.assign(n_clusters_, 1.0 / static_cast<double>(n_clusters_));
  estimate_ = baseline_;
}

void AdaptiveController::set_baseline(const std::vector<double>& frequencies) {
  assert(frequencies.size() == n_clusters_);
  baseline_ = frequencies;
  double total = 0;
  for (double f : baseline_) total += f;
  if (total > 0) {
    for (double& f : baseline_) f /= total;
  }
  estimate_ = baseline_;
  window_.clear();
}

void AdaptiveController::observe_busy(
    const std::vector<double>& dpu_busy_seconds) {
  const double balance = common::max_over_mean(dpu_busy_seconds);
  if (!busy_seen_) {
    busy_balance_ = balance;
    busy_seen_ = true;
    return;
  }
  const double a = options_.ewma_alpha;
  busy_balance_ = (1.0 - a) * busy_balance_ + a * balance;
}

std::vector<double> AdaptiveController::window_mean() const {
  if (window_.empty()) return estimate_;
  std::vector<double> mean(n_clusters_, 0.0);
  for (const std::vector<double>& batch : window_) {
    for (std::size_t c = 0; c < n_clusters_; ++c) mean[c] += batch[c];
  }
  const double inv = 1.0 / static_cast<double>(window_.size());
  for (double& v : mean) v *= inv;
  return mean;
}

void AdaptiveController::observe_batch(
    const std::vector<std::vector<std::uint32_t>>& probes) {
  std::vector<double> batch(n_clusters_, 0.0);
  double total = 0;
  for (const auto& list : probes) {
    for (std::uint32_t c : list) {
      if (c < n_clusters_) {
        batch[c] += 1.0;
        total += 1.0;
      }
    }
  }
  if (total == 0) return;
  for (double& v : batch) v /= total;

  window_.push_back(batch);
  if (window_.size() > options_.window_batches) window_.pop_front();

  // EWMA update toward the batch distribution.
  const double a = options_.ewma_alpha;
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    estimate_[c] = (1.0 - a) * estimate_[c] + a * batch[c];
  }
  ++batches_observed_;
}

double AdaptiveController::drift() const {
  // Total-variation distance: 0 (identical) .. 1 (disjoint support).
  double tv = 0;
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    tv += std::abs(estimate_[c] - baseline_[c]);
  }
  return 0.5 * tv;
}

AdaptReport AdaptiveController::recommend(
    const std::vector<std::size_t>& cluster_sizes,
    const std::vector<std::size_t>& current_copies,
    double avg_dpu_workload, bool allow_relocate) const {
  assert(cluster_sizes.size() == n_clusters_);
  assert(current_copies.size() == n_clusters_);
  AdaptReport report;
  report.drift = drift();

  if (allow_relocate && report.drift >= options_.major_threshold) {
    report.action = AdaptAction::kRelocate;
    return report;
  }

  // Desired replica counts under the *short-memory* traffic profile:
  // Algorithm 1's ncpy = ceil(s_i * f_i / W-bar) recomputed with the window
  // mean, so a hot set that already rolled out of the window stops holding
  // replicas (the long-memory EWMA only gates whether acting is worth it).
  const std::vector<double> freq = window_mean();
  std::size_t changed = 0;
  std::size_t replicated_total = 0;
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    if (cluster_sizes[c] == 0) continue;
    const double w = static_cast<double>(cluster_sizes[c]) * freq[c];
    const std::size_t want = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(w / std::max(avg_dpu_workload, 1e-30))));
    replicated_total += current_copies[c];
    if (want != current_copies[c]) {
      report.adjustments.push_back(
          {static_cast<std::uint32_t>(c),
           static_cast<std::int32_t>(want) -
               static_cast<std::int32_t>(current_copies[c])});
      ++changed;
    }
  }

  const double change_frac =
      replicated_total > 0
          ? static_cast<double>(changed) / static_cast<double>(n_clusters_)
          : 0.0;
  if (report.drift >= options_.minor_threshold ||
      change_frac >= options_.copy_change_fraction) {
    report.action = AdaptAction::kAdjustCopies;
  } else {
    report.action = AdaptAction::kNone;
    report.adjustments.clear();
  }
  return report;
}

}  // namespace upanns::core
