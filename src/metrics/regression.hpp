// The Fig 20 extrapolation: fit measured (n_dpus, QPS) points with least
// squares and predict QPS at larger DPU counts (the paper fits 500-900 DPU
// measurements and predicts up to 2560).
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"

namespace upanns::metrics {

struct ScalingModel {
  common::LinearFit fit;

  double predict_qps(std::size_t n_dpus) const {
    return fit.predict(static_cast<double>(n_dpus));
  }
  double r2() const { return fit.r2; }
};

ScalingModel fit_scaling(const std::vector<std::size_t>& dpus,
                         const std::vector<double>& qps);

}  // namespace upanns::metrics
