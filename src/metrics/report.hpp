// Table/row printers shared by the bench harness: every bench binary prints
// figure-shaped rows (dataset, setting, value, normalized value) on stdout so
// `bench_output.txt` reads like the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "baselines/stage_times.hpp"

namespace upanns::metrics {

/// Fixed-width table writer with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Percentage shares of the four pipeline stages, as in Figs 1 and 19.
struct StageShares {
  double cluster_filter = 0, lut_build = 0, distance_calc = 0, topk = 0,
         transfer = 0;
};
StageShares shares(const baselines::StageTimes& t);

/// Print a standard figure banner so bench output is self-describing.
void banner(const std::string& figure, const std::string& description);

}  // namespace upanns::metrics
