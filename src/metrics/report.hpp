// Table/row printers shared by the bench harness: every bench binary prints
// figure-shaped rows (dataset, setting, value, normalized value) on stdout so
// `bench_output.txt` reads like the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "baselines/stage_times.hpp"

namespace upanns::metrics {

/// Fixed-width table writer with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Percentage shares of the five pipeline stages (cluster filter, LUT build,
/// distance calculation, top-k, and host<->DPU transfer), as in Figs 1 and 19.
/// For a nonzero total() the five fields sum to 100.
struct StageShares {
  double cluster_filter = 0, lut_build = 0, distance_calc = 0, topk = 0,
         transfer = 0;
};
StageShares shares(const baselines::StageTimes& t);

/// Print a standard figure banner so bench output is self-describing.
void banner(const std::string& figure, const std::string& description);

/// Collects figure rows once and renders them twice from the same data: the
/// paper-shaped stdout table and a machine-readable JSON document. Each JSON
/// row maps column name -> cell string and may carry a `detail` member — a
/// pre-rendered JSON value (e.g. obs::pim_extras_json) with the full-precision
/// numbers the table rounds away.
class FigureSink {
 public:
  FigureSink(std::string figure, std::vector<std::string> headers);

  /// `detail_json` must be a well-formed JSON value or empty (= no detail).
  void add_row(std::vector<std::string> cells, std::string detail_json = "");

  /// {"figure":..., "columns":[...], "rows":[{col:cell..., "detail":...}]}
  std::string json() const;

  /// Print the table to stdout; when `json_path` is non-empty, also write
  /// `json()` there (logs a warning on I/O failure instead of throwing).
  void finish(const std::string& json_path = "") const;

 private:
  struct Row {
    std::vector<std::string> cells;
    std::string detail;
  };

  std::string figure_;
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace upanns::metrics
