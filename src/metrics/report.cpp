#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>

namespace upanns::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

StageShares shares(const baselines::StageTimes& t) {
  StageShares s;
  const double total = t.total();
  if (total <= 0) return s;
  s.cluster_filter = t.cluster_filter / total * 100.0;
  s.lut_build = t.lut_build / total * 100.0;
  s.distance_calc = t.distance_calc / total * 100.0;
  s.topk = t.topk / total * 100.0;
  s.transfer = t.transfer / total * 100.0;
  return s;
}

void banner(const std::string& figure, const std::string& description) {
  std::printf("\n=== %s: %s ===\n", figure.c_str(), description.c_str());
}

}  // namespace upanns::metrics
