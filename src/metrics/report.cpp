#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/log.hpp"
#include "obs/json.hpp"

namespace upanns::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

StageShares shares(const baselines::StageTimes& t) {
  StageShares s;
  const double total = t.total();
  if (total <= 0) return s;
  s.cluster_filter = t.cluster_filter / total * 100.0;
  s.lut_build = t.lut_build / total * 100.0;
  s.distance_calc = t.distance_calc / total * 100.0;
  s.topk = t.topk / total * 100.0;
  s.transfer = t.transfer / total * 100.0;
  return s;
}

void banner(const std::string& figure, const std::string& description) {
  std::printf("\n=== %s: %s ===\n", figure.c_str(), description.c_str());
}

FigureSink::FigureSink(std::string figure, std::vector<std::string> headers)
    : figure_(std::move(figure)), headers_(std::move(headers)) {}

void FigureSink::add_row(std::vector<std::string> cells,
                         std::string detail_json) {
  cells.resize(headers_.size());
  rows_.push_back({std::move(cells), std::move(detail_json)});
}

std::string FigureSink::json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("figure", figure_);
  w.key("columns").begin_array();
  for (const auto& h : headers_) w.value(h);
  w.end_array();
  w.key("rows").begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      w.kv(headers_[c], row.cells[c]);
    }
    if (!row.detail.empty()) w.key("detail").raw(row.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void FigureSink::finish(const std::string& json_path) const {
  Table table(headers_);
  for (const auto& row : rows_) table.add_row(row.cells);
  table.print();
  if (json_path.empty()) return;
  std::ofstream out(json_path, std::ios::binary);
  if (out) out << json() << '\n';
  if (!out) {
    common::log_warn("FigureSink: cannot write ", json_path);
  } else {
    common::log_info("FigureSink: wrote ", json_path);
  }
}

}  // namespace upanns::metrics
