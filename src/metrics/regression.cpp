#include "metrics/regression.hpp"

namespace upanns::metrics {

ScalingModel fit_scaling(const std::vector<std::size_t>& dpus,
                         const std::vector<double>& qps) {
  std::vector<double> xs(dpus.size());
  for (std::size_t i = 0; i < dpus.size(); ++i) {
    xs[i] = static_cast<double>(dpus[i]);
  }
  ScalingModel m;
  m.fit = common::fit_linear(xs, qps);
  return m;
}

}  // namespace upanns::metrics
