// Product Quantizer (Jégou et al., TPAMI 2011) — the PQ half of IVFPQ.
// Splits a D-dim vector into M subvectors of D/M dims, trains a 256-entry
// codebook per subspace, and encodes each subvector as a uint8 index.
// Queries compute an Asymmetric Distance Computation (ADC) lookup table of
// M x 256 partial squared distances; candidate distances are then M table
// additions. The PIM path stores the LUT quantized to uint16 (8 KB for M=16)
// exactly as the paper's WRAM budget assumes (Sec 4.2.1).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "quant/kmeans.hpp"

namespace upanns::quant {

inline constexpr std::size_t kPqKsub = 256;  ///< codes per sub-quantizer (uint8)

struct PqOptions {
  std::size_t m = 16;                ///< number of subspaces / code bytes
  std::size_t train_iters = 12;
  std::uint64_t seed = 123;
  std::size_t max_training_points = 65536;
  /// Fan the m independent subspace trainings out across the pool. The
  /// inner kmeans then runs serial (nested-parallelism rule, DESIGN.md §13);
  /// output is identical either way because reductions use fixed chunks.
  bool use_threads = true;
  /// 0 = pool size; 1 forces a serial subspace loop.
  std::size_t n_threads = 0;
  /// Pool to run on (nullptr = ThreadPool::global()).
  common::ThreadPool* pool = nullptr;
  /// Mini-batch fraction forwarded to the per-subspace kmeans (1.0 = full).
  double batch_fraction = 1.0;
};

/// A LUT quantized to uint16, as held in DPU WRAM. `scale` maps a float
/// partial distance d to round(d / scale); the approximate float distance of
/// a code sequence is scale * sum(entries).
struct QuantizedLut {
  std::vector<std::uint16_t> table;  ///< m x 256
  float scale = 1.f;
  std::size_t m = 0;
};

class ProductQuantizer {
 public:
  ProductQuantizer() = default;

  /// Train codebooks on `n` training vectors (row-major, n x dim).
  /// dim must be divisible by opts.m.
  void train(std::span<const float> data, std::size_t n, std::size_t dim,
             const PqOptions& opts);

  bool trained() const { return dim_ != 0; }
  std::size_t dim() const { return dim_; }
  std::size_t m() const { return m_; }
  std::size_t dsub() const { return dsub_; }

  /// Codebooks, concatenated: m x 256 x dsub floats.
  std::span<const float> codebooks() const { return codebooks_; }
  /// Size in bytes of the codebooks as stored on a DPU (float32 entries).
  std::size_t codebook_bytes() const { return codebooks_.size() * sizeof(float); }

  /// Encode one vector into m uint8 codes.
  void encode(const float* vec, std::uint8_t* codes) const;

  /// Encode n vectors (row-major) into out (n x m codes).
  void encode_batch(std::span<const float> data, std::size_t n,
                    std::uint8_t* out) const;

  /// Reconstruct an approximate vector from codes.
  void decode(const std::uint8_t* codes, float* out) const;

  /// Build the float ADC lookup table (m x 256) for a query vector:
  /// lut[sub*256 + c] = || query_sub - codebook[sub][c] ||^2.
  void compute_lut(const float* query, float* lut) const;

  /// Quantize a float LUT into uint16 entries, choosing the scale so the
  /// worst-case whole-vector sum (m * max_entry) stays within uint32 range
  /// while individual entries fit uint16.
  QuantizedLut quantize_lut(std::span<const float> lut) const;

  /// ADC distance of a code sequence under a float LUT.
  float adc_distance(const float* lut, const std::uint8_t* codes) const;

  /// ADC distance under a quantized LUT (integer accumulation, as on DPU).
  std::uint32_t adc_distance_q(const QuantizedLut& lut,
                               const std::uint8_t* codes) const;

  /// Binary (de)serialization; throws std::runtime_error on malformed input.
  void save(std::ostream& os) const;
  static ProductQuantizer load_from(std::istream& is);

 private:
  /// Rebuild the dimension-major codebook mirror the blocked encode / LUT
  /// kernels scan. Called after train() and load_from().
  void rebuild_transposed();

  std::size_t dim_ = 0;
  std::size_t m_ = 0;
  std::size_t dsub_ = 0;
  std::vector<float> codebooks_;   // m x 256 x dsub
  std::vector<float> tcodebooks_;  // m x dsub x 256 (transposed per subspace)
};

}  // namespace upanns::quant
