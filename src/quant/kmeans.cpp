#include "quant/kmeans.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <future>
#include <limits>

#include "common/simd_dispatch.hpp"
#include "common/thread_pool.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define UPANNS_X86 1
#endif

namespace upanns::quant {

namespace {

/// The fixed combine tree shared by every kernel: chains are pairwise
/// reduced in one order so scalar/SSE2/AVX2 stay bit-identical.
inline float combine8(const float* ch) {
  return ((ch[0] + ch[1]) + (ch[2] + ch[3])) +
         ((ch[4] + ch[5]) + (ch[6] + ch[7]));
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace detail {

float l2_sq_scalar(const float* a, const float* b, std::size_t dim) {
  float ch[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  const std::size_t full = dim & ~std::size_t{7};
  std::size_t i = 0;
  for (; i < full; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) {
      const float d = a[i + j] - b[i + j];
      ch[j] += d * d;
    }
  }
  for (std::size_t j = 0; i < dim; ++i, ++j) {
    const float d = a[i] - b[i];
    ch[j] += d * d;
  }
  return combine8(ch);
}

#if defined(UPANNS_X86)

float l2_sq_sse2(const float* a, const float* b, std::size_t dim) {
  __m128 lo = _mm_setzero_ps();  // chains 0..3
  __m128 hi = _mm_setzero_ps();  // chains 4..7
  const std::size_t full = dim & ~std::size_t{7};
  std::size_t i = 0;
  for (; i < full; i += 8) {
    const __m128 d0 = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128 d1 =
        _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    lo = _mm_add_ps(lo, _mm_mul_ps(d0, d0));
    hi = _mm_add_ps(hi, _mm_mul_ps(d1, d1));
  }
  alignas(16) float ch[8];
  _mm_store_ps(ch, lo);
  _mm_store_ps(ch + 4, hi);
  for (std::size_t j = 0; i < dim; ++i, ++j) {
    const float d = a[i] - b[i];
    ch[j] += d * d;
  }
  return combine8(ch);
}

__attribute__((target("avx2"))) float l2_sq_avx2(const float* a, const float* b,
                                                 std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t full = dim & ~std::size_t{7};
  std::size_t i = 0;
  for (; i < full; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  alignas(32) float ch[8];
  _mm256_store_ps(ch, acc);
  for (std::size_t j = 0; i < dim; ++i, ++j) {
    const float d = a[i] - b[i];
    ch[j] += d * d;
  }
  return combine8(ch);
}

#else  // !UPANNS_X86

float l2_sq_sse2(const float* a, const float* b, std::size_t dim) {
  return l2_sq_scalar(a, b, dim);
}
float l2_sq_avx2(const float* a, const float* b, std::size_t dim) {
  return l2_sq_scalar(a, b, dim);
}

#endif

void run_indexed(common::ThreadPool* pool, bool threaded, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (!threaded || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto task =
        std::make_shared<std::packaged_task<void()>>([&fn, i] { fn(i); });
    futs.push_back(task->get_future());
    pool->submit([task] { (*task)(); });
  }
  std::exception_ptr err;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace detail

float l2_sq(const float* a, const float* b, std::size_t dim) {
  switch (common::simd_active_level()) {
    case common::SimdLevel::kAvx2: return detail::l2_sq_avx2(a, b, dim);
    case common::SimdLevel::kSse2: return detail::l2_sq_sse2(a, b, dim);
    case common::SimdLevel::kScalar: break;
  }
  return detail::l2_sq_scalar(a, b, dim);
}

std::pair<std::uint32_t, float> nearest_centroid(const float* point,
                                                 const float* centroids,
                                                 std::size_t n,
                                                 std::size_t dim) {
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < n; ++c) {
    const float d = l2_sq(point, centroids + c * dim, dim);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return {best, best_d};
}

void transpose_centroids(const float* centroids, std::size_t k,
                         std::size_t dim, std::vector<float>& out) {
  const std::size_t k_pad = pad8(k);
  out.assign(dim * k_pad, 0.f);
  for (std::size_t c = 0; c < k; ++c) {
    const float* row = centroids + c * dim;
    for (std::size_t d = 0; d < dim; ++d) out[d * k_pad + c] = row[d];
  }
}

namespace {

// ---------------------------------------------------------------------------
// Blocked distance kernels over the transposed (dimension-major) layout.
// Lanes are centroids; each lane accumulates the same 8-chain / fixed-tree
// sequence as l2_sq, so per-centroid distances are bit-identical to the
// row-major path at every SIMD level.

void dists_t_scalar(const float* p, const float* t, std::size_t k,
                    std::size_t k_pad, std::size_t dim, float* out) {
  for (std::size_t c = 0; c < k; ++c) {
    const float* col = t + c;
    float ch[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    for (std::size_t d = 0; d < dim; ++d) {
      const float x = p[d] - col[d * k_pad];
      ch[d & 7] += x * x;
    }
    out[c] = combine8(ch);
  }
}

#if defined(UPANNS_X86)

/// SSE2: four centroid lanes per block, eight chain accumulators.
void dists_t_sse2(const float* p, const float* t, std::size_t k,
                  std::size_t k_pad, std::size_t dim, float* out) {
  alignas(16) float buf[4];
  for (std::size_t c0 = 0; c0 < k; c0 += 4) {
    __m128 acc[8];
    for (auto& a : acc) a = _mm_setzero_ps();
    const float* col = t + c0;
    for (std::size_t d = 0; d < dim; ++d) {
      const __m128 pv = _mm_set1_ps(p[d]);
      const __m128 cv = _mm_loadu_ps(col + d * k_pad);
      const __m128 diff = _mm_sub_ps(pv, cv);
      acc[d & 7] = _mm_add_ps(acc[d & 7], _mm_mul_ps(diff, diff));
    }
    const __m128 t0123 = _mm_add_ps(_mm_add_ps(acc[0], acc[1]),
                                    _mm_add_ps(acc[2], acc[3]));
    const __m128 t4567 = _mm_add_ps(_mm_add_ps(acc[4], acc[5]),
                                    _mm_add_ps(acc[6], acc[7]));
    const __m128 total = _mm_add_ps(t0123, t4567);
    if (c0 + 4 <= k) {
      _mm_storeu_ps(out + c0, total);
    } else {
      _mm_store_ps(buf, total);
      for (std::size_t j = 0; c0 + j < k; ++j) out[c0 + j] = buf[j];
    }
  }
}

/// AVX2: eight centroid lanes per block, eight chain accumulators.
__attribute__((target("avx2"))) void dists_t_avx2(const float* p,
                                                  const float* t, std::size_t k,
                                                  std::size_t k_pad,
                                                  std::size_t dim, float* out) {
  alignas(32) float buf[8];
  for (std::size_t c0 = 0; c0 < k; c0 += 8) {
    __m256 acc[8];
    for (auto& a : acc) a = _mm256_setzero_ps();
    const float* col = t + c0;
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256 pv = _mm256_set1_ps(p[d]);
      const __m256 cv = _mm256_loadu_ps(col + d * k_pad);
      const __m256 diff = _mm256_sub_ps(pv, cv);
      acc[d & 7] = _mm256_add_ps(acc[d & 7], _mm256_mul_ps(diff, diff));
    }
    const __m256 t0123 = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]),
                                       _mm256_add_ps(acc[2], acc[3]));
    const __m256 t4567 = _mm256_add_ps(_mm256_add_ps(acc[4], acc[5]),
                                       _mm256_add_ps(acc[6], acc[7]));
    const __m256 total = _mm256_add_ps(t0123, t4567);
    if (c0 + 8 <= k) {
      _mm256_storeu_ps(out + c0, total);
    } else {
      _mm256_store_ps(buf, total);
      for (std::size_t j = 0; c0 + j < k; ++j) out[c0 + j] = buf[j];
    }
  }
}

#endif  // UPANNS_X86

}  // namespace

void squared_dists_t(const float* point, const float* tctr, std::size_t k,
                     std::size_t k_pad, std::size_t dim, float* out) {
  // k_pad is the lane stride of the transposed layout; callers may scan a
  // sub-window (k < k_pad) as long as full 8-lane blocks stay in bounds.
  assert(k_pad % 8 == 0 && k_pad >= k);
#if defined(UPANNS_X86)
  switch (common::simd_active_level()) {
    case common::SimdLevel::kAvx2:
      return dists_t_avx2(point, tctr, k, k_pad, dim, out);
    case common::SimdLevel::kSse2:
      return dists_t_sse2(point, tctr, k, k_pad, dim, out);
    case common::SimdLevel::kScalar: break;
  }
#endif
  dists_t_scalar(point, tctr, k, k_pad, dim, out);
}

std::pair<std::uint32_t, float> nearest_centroid_t(const float* point,
                                                   const float* tctr,
                                                   std::size_t k,
                                                   std::size_t k_pad,
                                                   std::size_t dim) {
  // Selection walks distances in index order with a strict-less compare, so
  // ties break to the lowest index — identical to nearest_centroid. Scanning
  // a small stack buffer per 64-lane stripe keeps the working set in L1.
  float stripe[64];
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::size_t c0 = 0; c0 < k; c0 += 64) {
    const std::size_t span = std::min<std::size_t>(64, k - c0);
    squared_dists_t(point, tctr + c0, span, k_pad, dim, stripe);
    for (std::size_t j = 0; j < span; ++j) {
      if (stripe[j] < best_d) {
        best_d = stripe[j];
        best = static_cast<std::uint32_t>(c0 + j);
      }
    }
  }
  return {best, best_d};
}

namespace {

/// Fixed reduction chunk: boundaries depend only on n, never on the pool
/// size, so chunk partial sums (merged in chunk order) give bit-identical
/// results for any thread count — serial included.
constexpr std::size_t kReduceChunk = 4096;

std::size_t chunk_count(std::size_t n) {
  return n == 0 ? 0 : (n - 1) / kReduceChunk + 1;
}

// k-means++ seeding: spread initial centroids proportional to squared
// distance from already-chosen seeds. The per-seed O(n·dim) sweep runs
// chunked over the pool; the weighted pick first scans chunk sums, then
// replays the chosen chunk's additions in the same order, so the selection
// is exact and thread-count independent.
std::vector<float> seed_plus_plus(std::span<const float> data, std::size_t n,
                                  std::size_t dim, std::size_t k,
                                  common::Rng& rng, common::ThreadPool* pool,
                                  bool threaded) {
  std::vector<float> centroids(k * dim);
  std::vector<float> min_d(n, std::numeric_limits<float>::infinity());
  const std::size_t n_chunks = chunk_count(n);
  std::vector<double> chunk_sum(n_chunks);

  std::size_t first = rng.below(n);
  std::copy_n(data.data() + first * dim, dim, centroids.begin());

  for (std::size_t c = 1; c < k; ++c) {
    const float* last = centroids.data() + (c - 1) * dim;
    detail::run_indexed(pool, threaded, n_chunks, [&](std::size_t ci) {
      const std::size_t lo = ci * kReduceChunk;
      const std::size_t hi = std::min(n, lo + kReduceChunk);
      double s = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        const float d = l2_sq(data.data() + i * dim, last, dim);
        min_d[i] = std::min(min_d[i], d);
        s += min_d[i];
      }
      chunk_sum[ci] = s;
    });
    double total = 0.0;
    for (double s : chunk_sum) total += s;

    std::size_t chosen;
    if (total > 0) {
      const double target = rng.uniform() * total;
      chosen = n - 1;
      double acc = 0.0;
      for (std::size_t ci = 0; ci < n_chunks; ++ci) {
        if (acc + chunk_sum[ci] >= target) {
          const std::size_t lo = ci * kReduceChunk;
          const std::size_t hi = std::min(n, lo + kReduceChunk);
          chosen = hi - 1;  // rounding fallback; the loop below normally hits
          for (std::size_t i = lo; i < hi; ++i) {
            acc += min_d[i];
            if (acc >= target) {
              chosen = i;
              break;
            }
          }
          break;
        }
        acc += chunk_sum[ci];
      }
    } else {
      chosen = rng.below(n);
    }
    std::copy_n(data.data() + chosen * dim, dim, centroids.begin() + c * dim);
  }
  return centroids;
}

}  // namespace

std::vector<std::uint32_t> assign_labels(std::span<const float> data,
                                         std::size_t n, std::size_t dim,
                                         std::span<const float> centroids,
                                         std::size_t n_clusters,
                                         bool use_threads) {
  std::vector<std::uint32_t> labels(n);
  std::vector<float> tctr;
  transpose_centroids(centroids.data(), n_clusters, dim, tctr);
  const std::size_t k_pad = pad8(n_clusters);
  auto body = [&](std::size_t i) {
    labels[i] = nearest_centroid_t(data.data() + i * dim, tctr.data(),
                                   n_clusters, k_pad, dim)
                    .first;
  };
  if (use_threads) {
    common::ThreadPool::global().parallel_for(0, n, body, 256);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
  return labels;
}

KMeansResult kmeans(std::span<const float> data, std::size_t n, std::size_t dim,
                    const KMeansOptions& opts) {
  assert(n > 0 && dim > 0 && opts.n_clusters > 0);
  assert(data.size() >= n * dim);
  const double t_start = now_seconds();
  const std::size_t k = std::min(opts.n_clusters, n);
  common::Rng rng(opts.seed);

  common::ThreadPool* pool = opts.pool ? opts.pool : &common::ThreadPool::global();
  const std::size_t eff_threads =
      opts.use_threads ? (opts.n_threads ? opts.n_threads : pool->size()) : 1;
  const bool threaded = eff_threads > 1;

  // Optional subsampling keeps training tractable for large synthetic sets.
  std::vector<float> sample_storage;
  std::span<const float> train = data;
  std::size_t n_train = n;
  if (opts.max_training_points > 0 && n > opts.max_training_points) {
    n_train = opts.max_training_points;
    sample_storage.resize(n_train * dim);
    auto perm = common::random_permutation(n, rng);
    for (std::size_t i = 0; i < n_train; ++i) {
      std::copy_n(data.data() + static_cast<std::size_t>(perm[i]) * dim, dim,
                  sample_storage.begin() + i * dim);
    }
    train = sample_storage;
  }

  KMeansResult result;
  result.dim = dim;
  result.n_clusters = k;
  result.centroids =
      seed_plus_plus(train, n_train, dim, k, rng, pool, threaded);
  const std::size_t k_pad = pad8(k);

  // Mini-batch mode: each iteration samples ceil(f * n_train) points with
  // replacement (sampled on this thread so the rng stream is identical for
  // every thread count) and applies Sculley per-center learning rates.
  const bool mini_batch = opts.batch_fraction > 0.0 && opts.batch_fraction < 1.0;
  const std::size_t n_batch =
      mini_batch ? std::max<std::size_t>(
                       k, static_cast<std::size_t>(
                              std::ceil(opts.batch_fraction *
                                        static_cast<double>(n_train))))
                 : n_train;
  const std::size_t n_iter_pts = n_batch;

  // Scratch hoisted out of the iteration loop and reused throughout.
  const std::size_t n_chunks = chunk_count(n_iter_pts);
  std::vector<std::uint32_t> labels(n_iter_pts, 0);
  std::vector<float> dists(n_iter_pts);
  std::vector<std::uint32_t> sample_idx(mini_batch ? n_iter_pts : 0);
  std::vector<double> chunk_inertia(n_chunks);
  std::vector<float> tctr;
  std::vector<double> acc;
  std::vector<std::uint32_t> counts;
  std::vector<double> chunk_acc;
  std::vector<std::uint32_t> chunk_counts;
  if (!mini_batch) {
    acc.resize(k * dim);
    counts.resize(k);
    chunk_acc.resize(n_chunks * k * dim);
    chunk_counts.resize(n_chunks * k);
  }
  std::vector<std::uint64_t> center_count(mini_batch ? k : 0, 0);

  double prev_inertia = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < opts.max_iters; ++iter) {
    result.iterations = iter + 1;
    transpose_centroids(result.centroids.data(), k, dim, tctr);

    if (mini_batch) {
      for (std::size_t j = 0; j < n_iter_pts; ++j) {
        sample_idx[j] = static_cast<std::uint32_t>(rng.below(n_train));
      }
    }

    // Assignment step, chunked over the pool. Each chunk writes its own
    // slice of labels/dists and a private inertia partial (and, for the
    // full-batch update, private per-cluster sums) — merged afterwards in
    // fixed chunk order for run-to-run determinism.
    detail::run_indexed(pool, threaded, n_chunks, [&](std::size_t ci) {
      const std::size_t lo = ci * kReduceChunk;
      const std::size_t hi = std::min(n_iter_pts, lo + kReduceChunk);
      double inertia_part = 0.0;
      double* acc_part = mini_batch ? nullptr : chunk_acc.data() + ci * k * dim;
      std::uint32_t* cnt_part =
          mini_batch ? nullptr : chunk_counts.data() + ci * k;
      if (!mini_batch) {
        std::fill_n(acc_part, k * dim, 0.0);
        std::fill_n(cnt_part, k, 0u);
      }
      for (std::size_t j = lo; j < hi; ++j) {
        const std::size_t i = mini_batch ? sample_idx[j] : j;
        const float* p = train.data() + i * dim;
        auto [c, d] = nearest_centroid_t(p, tctr.data(), k, k_pad, dim);
        labels[j] = c;
        dists[j] = d;
        inertia_part += d;
        if (!mini_batch) {
          ++cnt_part[c];
          double* a = acc_part + static_cast<std::size_t>(c) * dim;
          for (std::size_t dd = 0; dd < dim; ++dd) a[dd] += p[dd];
        }
      }
      chunk_inertia[ci] = inertia_part;
    });

    double inertia = 0.0;
    for (double v : chunk_inertia) inertia += v;

    if (mini_batch) {
      // Sculley update, applied in sample order on this thread: with
      // per-center counts n_c, centroid += (x - centroid) / n_c. The
      // assignment above is the parallel part; this pass is O(batch * dim).
      for (std::size_t j = 0; j < n_iter_pts; ++j) {
        const std::uint32_t c = labels[j];
        ++center_count[c];
        const float eta = 1.f / static_cast<float>(center_count[c]);
        float* ctr = result.centroids.data() + static_cast<std::size_t>(c) * dim;
        const float* x =
            train.data() + static_cast<std::size_t>(sample_idx[j]) * dim;
        for (std::size_t d = 0; d < dim; ++d) ctr[d] += eta * (x[d] - ctr[d]);
      }
      // Scale the batch inertia to the full set so result.inertia is
      // comparable with the full-batch value.
      inertia *= static_cast<double>(n_train) / static_cast<double>(n_iter_pts);
    } else {
      // Merge chunk partials in chunk order, then recompute centroids.
      std::fill(acc.begin(), acc.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0u);
      for (std::size_t ci = 0; ci < n_chunks; ++ci) {
        const double* acc_part = chunk_acc.data() + ci * k * dim;
        const std::uint32_t* cnt_part = chunk_counts.data() + ci * k;
        for (std::size_t x = 0; x < k * dim; ++x) acc[x] += acc_part[x];
        for (std::size_t c = 0; c < k; ++c) counts[c] += cnt_part[c];
      }
      for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) {
          // Re-seed empty cluster from a random point to keep k populated.
          const std::size_t pick = rng.below(n_train);
          std::copy_n(train.data() + pick * dim, dim,
                      result.centroids.begin() + c * dim);
          continue;
        }
        float* ctr = result.centroids.data() + c * dim;
        for (std::size_t d = 0; d < dim; ++d) {
          ctr[d] = static_cast<float>(acc[c * dim + d] / counts[c]);
        }
      }
    }

    result.inertia = inertia;
    if (prev_inertia < std::numeric_limits<double>::infinity()) {
      const double rel =
          std::abs(prev_inertia - inertia) / std::max(prev_inertia, 1e-12);
      if (rel < opts.tolerance) break;
    }
    prev_inertia = inertia;
  }
  result.train_seconds = now_seconds() - t_start;

  // Final labels/sizes for the *full* dataset (not the training subsample),
  // over the same transposed kernel and fixed chunk grid.
  const double t_assign = now_seconds();
  transpose_centroids(result.centroids.data(), k, dim, tctr);
  result.labels.resize(n);
  detail::run_indexed(pool, threaded, chunk_count(n), [&](std::size_t ci) {
    const std::size_t lo = ci * kReduceChunk;
    const std::size_t hi = std::min(n, lo + kReduceChunk);
    for (std::size_t i = lo; i < hi; ++i) {
      result.labels[i] = nearest_centroid_t(data.data() + i * dim, tctr.data(),
                                            k, k_pad, dim)
                             .first;
    }
  });
  result.sizes.assign(k, 0);
  for (auto l : result.labels) ++result.sizes[l];
  result.assign_seconds = now_seconds() - t_assign;
  return result;
}

}  // namespace upanns::quant
