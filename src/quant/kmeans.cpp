#include "quant/kmeans.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/thread_pool.hpp"

namespace upanns::quant {

float l2_sq(const float* a, const float* b, std::size_t dim) {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

std::pair<std::uint32_t, float> nearest_centroid(const float* point,
                                                 const float* centroids,
                                                 std::size_t n,
                                                 std::size_t dim) {
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < n; ++c) {
    const float d = l2_sq(point, centroids + c * dim, dim);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return {best, best_d};
}

namespace {

// k-means++ seeding: spread initial centroids proportional to squared
// distance from already-chosen seeds.
std::vector<float> seed_plus_plus(std::span<const float> data, std::size_t n,
                                  std::size_t dim, std::size_t k,
                                  common::Rng& rng) {
  std::vector<float> centroids(k * dim);
  std::vector<float> min_d(n, std::numeric_limits<float>::infinity());

  std::size_t first = rng.below(n);
  std::copy_n(data.data() + first * dim, dim, centroids.begin());

  for (std::size_t c = 1; c < k; ++c) {
    const float* last = centroids.data() + (c - 1) * dim;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float d = l2_sq(data.data() + i * dim, last, dim);
      min_d[i] = std::min(min_d[i], d);
      total += min_d[i];
    }
    std::size_t chosen = 0;
    if (total > 0) {
      double target = rng.uniform() * total;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += min_d[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.below(n);
    }
    std::copy_n(data.data() + chosen * dim, dim, centroids.begin() + c * dim);
  }
  return centroids;
}

}  // namespace

std::vector<std::uint32_t> assign_labels(std::span<const float> data,
                                         std::size_t n, std::size_t dim,
                                         std::span<const float> centroids,
                                         std::size_t n_clusters,
                                         bool use_threads) {
  std::vector<std::uint32_t> labels(n);
  auto body = [&](std::size_t i) {
    labels[i] = nearest_centroid(data.data() + i * dim, centroids.data(),
                                 n_clusters, dim)
                    .first;
  };
  if (use_threads) {
    common::ThreadPool::global().parallel_for(0, n, body, 256);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
  return labels;
}

KMeansResult kmeans(std::span<const float> data, std::size_t n, std::size_t dim,
                    const KMeansOptions& opts) {
  assert(n > 0 && dim > 0 && opts.n_clusters > 0);
  assert(data.size() >= n * dim);
  const std::size_t k = std::min(opts.n_clusters, n);
  common::Rng rng(opts.seed);

  // Optional subsampling keeps training tractable for large synthetic sets.
  std::vector<float> sample_storage;
  std::span<const float> train = data;
  std::size_t n_train = n;
  if (opts.max_training_points > 0 && n > opts.max_training_points) {
    n_train = opts.max_training_points;
    sample_storage.resize(n_train * dim);
    auto perm = common::random_permutation(n, rng);
    for (std::size_t i = 0; i < n_train; ++i) {
      std::copy_n(data.data() + static_cast<std::size_t>(perm[i]) * dim, dim,
                  sample_storage.begin() + i * dim);
    }
    train = sample_storage;
  }

  KMeansResult result;
  result.dim = dim;
  result.n_clusters = k;
  result.centroids = seed_plus_plus(train, n_train, dim, k, rng);

  std::vector<std::uint32_t> labels(n_train, 0);
  std::vector<double> acc(k * dim);
  std::vector<std::uint32_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < opts.max_iters; ++iter) {
    result.iterations = iter + 1;
    // Assignment step (parallel over points).
    std::vector<float> dists(n_train);
    auto assign_body = [&](std::size_t i) {
      auto [c, d] = nearest_centroid(train.data() + i * dim,
                                     result.centroids.data(), k, dim);
      labels[i] = c;
      dists[i] = d;
    };
    if (opts.use_threads) {
      common::ThreadPool::global().parallel_for(0, n_train, assign_body, 256);
    } else {
      for (std::size_t i = 0; i < n_train; ++i) assign_body(i);
    }
    double inertia = 0.0;
    for (float d : dists) inertia += d;

    // Update step.
    std::fill(acc.begin(), acc.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < n_train; ++i) {
      const std::uint32_t c = labels[i];
      ++counts[c];
      const float* p = train.data() + i * dim;
      double* a = acc.data() + static_cast<std::size_t>(c) * dim;
      for (std::size_t d = 0; d < dim; ++d) a[d] += p[d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster from a random point to keep k populated.
        const std::size_t pick = rng.below(n_train);
        std::copy_n(train.data() + pick * dim, dim,
                    result.centroids.begin() + c * dim);
        continue;
      }
      float* ctr = result.centroids.data() + c * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        ctr[d] = static_cast<float>(acc[c * dim + d] / counts[c]);
      }
    }

    result.inertia = inertia;
    if (prev_inertia < std::numeric_limits<double>::infinity()) {
      const double rel =
          std::abs(prev_inertia - inertia) / std::max(prev_inertia, 1e-12);
      if (rel < opts.tolerance) break;
    }
    prev_inertia = inertia;
  }

  // Final labels/sizes for the *full* dataset (not the training subsample).
  result.labels =
      assign_labels(data, n, dim, result.centroids, k, opts.use_threads);
  result.sizes.assign(k, 0);
  for (auto l : result.labels) ++result.sizes[l];
  return result;
}

}  // namespace upanns::quant
