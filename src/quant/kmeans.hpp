// Lloyd's k-means with k-means++ seeding. This is the training substrate for
// both levels of IVFPQ: the coarse (IVF) quantizer and each PQ sub-quantizer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace upanns::quant {

struct KMeansOptions {
  std::size_t n_clusters = 16;
  std::size_t max_iters = 15;
  double tolerance = 1e-4;       ///< stop when relative inertia change < tol
  std::uint64_t seed = 42;
  bool use_threads = true;       ///< parallel assignment via the global pool
  /// Subsample the training set to at most this many points (0 = no limit).
  std::size_t max_training_points = 0;
};

struct KMeansResult {
  std::vector<float> centroids;       ///< n_clusters x dim, row-major
  std::vector<std::uint32_t> labels;  ///< per training point
  std::vector<std::uint32_t> sizes;   ///< points per cluster
  double inertia = 0.0;               ///< sum of squared distances
  std::size_t iterations = 0;
  std::size_t dim = 0;
  std::size_t n_clusters = 0;
};

/// Squared L2 distance between two dim-length vectors.
float l2_sq(const float* a, const float* b, std::size_t dim);

/// Find the nearest centroid (row-major centroids, n x dim).
/// Returns (index, squared distance).
std::pair<std::uint32_t, float> nearest_centroid(const float* point,
                                                 const float* centroids,
                                                 std::size_t n,
                                                 std::size_t dim);

/// Train k-means on `n` points of dimension `dim` (row-major `data`).
KMeansResult kmeans(std::span<const float> data, std::size_t n, std::size_t dim,
                    const KMeansOptions& opts);

/// Assign every point to its nearest centroid (parallel).
std::vector<std::uint32_t> assign_labels(std::span<const float> data,
                                         std::size_t n, std::size_t dim,
                                         std::span<const float> centroids,
                                         std::size_t n_clusters,
                                         bool use_threads = true);

}  // namespace upanns::quant
