// Lloyd's k-means with k-means++ seeding. This is the training substrate for
// both levels of IVFPQ: the coarse (IVF) quantizer and each PQ sub-quantizer.
//
// The distance kernels here define the one squared-L2 semantics every SIMD
// level implements identically (see DESIGN.md §13): each vector is summed
// over eight independent accumulation chains (chain j takes elements with
// index ≡ j mod 8, in increasing order) which are combined with the fixed
// tree ((c0+c1)+(c2+c3)) + ((c4+c5)+(c6+c7)). Scalar, SSE2 and AVX2 all
// perform that exact IEEE op sequence — no FMA contraction — so results are
// bit-identical across levels and across the row-major / transposed paths.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace upanns::common {
class ThreadPool;
}

namespace upanns::quant {

struct KMeansOptions {
  std::size_t n_clusters = 16;
  std::size_t max_iters = 15;
  double tolerance = 1e-4;       ///< stop when relative inertia change < tol
  std::uint64_t seed = 42;
  bool use_threads = true;       ///< parallel assignment/update via the pool
  /// Subsample the training set to at most this many points (0 = no limit).
  std::size_t max_training_points = 0;
  /// Mini-batch fraction in (0, 1]: each iteration trains on a fresh sample
  /// of ceil(batch_fraction * n_train) points (with replacement, Sculley
  /// per-center learning rates). 1.0 = classic full-batch Lloyd iterations.
  double batch_fraction = 1.0;
  /// Cap on worker threads: 0 = pool size, 1 = run serial (same result —
  /// reductions use fixed chunk boundaries regardless of thread count).
  std::size_t n_threads = 0;
  /// Pool to run on (nullptr = ThreadPool::global()). Tests inject pools of
  /// varying sizes to pin thread-count independence.
  common::ThreadPool* pool = nullptr;
};

struct KMeansResult {
  std::vector<float> centroids;       ///< n_clusters x dim, row-major
  std::vector<std::uint32_t> labels;  ///< per training point
  std::vector<std::uint32_t> sizes;   ///< points per cluster
  double inertia = 0.0;               ///< sum of squared distances
  std::size_t iterations = 0;
  std::size_t dim = 0;
  std::size_t n_clusters = 0;
  double train_seconds = 0.0;   ///< seeding + Lloyd/mini-batch iterations
  double assign_seconds = 0.0;  ///< final full-dataset labeling pass
};

/// Squared L2 distance between two dim-length vectors (8-chain semantics,
/// dispatched on the active SIMD level).
float l2_sq(const float* a, const float* b, std::size_t dim);

/// Find the nearest centroid (row-major centroids, n x dim).
/// Returns (index, squared distance); ties break to the lowest index.
std::pair<std::uint32_t, float> nearest_centroid(const float* point,
                                                 const float* centroids,
                                                 std::size_t n,
                                                 std::size_t dim);

/// Centroid count padded for the transposed (dimension-major) layout.
inline std::size_t pad8(std::size_t k) { return (k + 7) & ~std::size_t{7}; }

/// Transpose row-major centroids (k x dim) into the dimension-major layout
/// the blocked kernels scan: out[d * pad8(k) + c], zero-padded lanes.
/// `out` is resized to dim * pad8(k).
void transpose_centroids(const float* centroids, std::size_t k,
                         std::size_t dim, std::vector<float>& out);

/// Nearest centroid over a transposed layout (k_pad must be pad8(k)).
/// Distances are bit-identical to l2_sq against the row-major centroid;
/// ties break to the lowest index, exactly like nearest_centroid.
std::pair<std::uint32_t, float> nearest_centroid_t(const float* point,
                                                   const float* tctr,
                                                   std::size_t k,
                                                   std::size_t k_pad,
                                                   std::size_t dim);

/// All k squared distances over a transposed layout, bit-identical to
/// calling l2_sq per row-major centroid. Used by the LUT build.
void squared_dists_t(const float* point, const float* tctr, std::size_t k,
                     std::size_t k_pad, std::size_t dim, float* out);

/// Train k-means on `n` points of dimension `dim` (row-major `data`).
/// Deterministic for a fixed seed and SIMD level: identical output for any
/// use_threads / n_threads / pool-size combination.
KMeansResult kmeans(std::span<const float> data, std::size_t n, std::size_t dim,
                    const KMeansOptions& opts);

/// Assign every point to its nearest centroid (parallel).
std::vector<std::uint32_t> assign_labels(std::span<const float> data,
                                         std::size_t n, std::size_t dim,
                                         std::span<const float> centroids,
                                         std::size_t n_clusters,
                                         bool use_threads = true);

namespace detail {
/// Per-level l2_sq implementations, exposed for the cross-level parity
/// suite. Only call a variant the CPU supports (see simd_max_supported).
float l2_sq_scalar(const float* a, const float* b, std::size_t dim);
float l2_sq_sse2(const float* a, const float* b, std::size_t dim);
float l2_sq_avx2(const float* a, const float* b, std::size_t dim);

/// Run fn(i) for i in [0, count), fanned out across `pool` when `threaded`
/// (inline otherwise). Tasks must not block on further work from the same
/// pool — a saturated pool would deadlock (nested-parallelism rule).
/// The first task exception is rethrown after all tasks finish.
void run_indexed(common::ThreadPool* pool, bool threaded, std::size_t count,
                 const std::function<void(std::size_t)>& fn);
}  // namespace detail

}  // namespace upanns::quant
