#include "quant/pq.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/fastround.hpp"
#include "common/thread_pool.hpp"

namespace upanns::quant {

void ProductQuantizer::train(std::span<const float> data, std::size_t n,
                             std::size_t dim, const PqOptions& opts) {
  if (opts.m == 0 || dim % opts.m != 0) {
    throw std::invalid_argument("ProductQuantizer: dim must be divisible by m");
  }
  dim_ = dim;
  m_ = opts.m;
  dsub_ = dim / opts.m;
  codebooks_.assign(m_ * kPqKsub * dsub_, 0.f);

  common::ThreadPool* pool =
      opts.pool ? opts.pool : &common::ThreadPool::global();

  // One blocked pass reorders the row-major training data into m contiguous
  // subspace slices (slice s holds n x dsub), replacing the per-subspace
  // strided copy the serial loop used to repeat m times. Row blocks are
  // independent, so the built-in chunking is fine here.
  std::vector<float> slices(static_cast<std::size_t>(n) * dim_);
  auto transpose_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = 0; s < m_; ++s) {
      float* dst = slices.data() + s * n * dsub_;
      const float* src = data.data() + s * dsub_;
      for (std::size_t i = lo; i < hi; ++i) {
        std::copy_n(src + i * dim_, dsub_, dst + i * dsub_);
      }
    }
  };
  if (opts.use_threads && opts.n_threads != 1) {
    pool->parallel_for_chunks(0, n, transpose_rows, 4096);
  } else {
    transpose_rows(0, n);
  }

  // Train each subspace independently on its slice. The m trainings fan out
  // across the pool; the inner kmeans stays serial (nested-parallelism
  // rule: a worker that blocks on further work from the same pool deadlocks
  // once every worker does). Results are identical to the serial loop —
  // each subspace sees the same slice, seed, and fixed-chunk reductions.
  const bool outer_threads = opts.use_threads && opts.n_threads != 1;
  auto train_subspace = [&](std::size_t s) {
    KMeansOptions ko;
    ko.n_clusters = kPqKsub;
    ko.max_iters = opts.train_iters;
    ko.seed = opts.seed + s;
    ko.max_training_points = opts.max_training_points;
    ko.batch_fraction = opts.batch_fraction;
    ko.use_threads = false;
    std::span<const float> sub(slices.data() + s * n * dsub_, n * dsub_);
    KMeansResult res = kmeans(sub, n, dsub_, ko);
    // If n < 256 the trained centroid count is smaller; tile the trained
    // centroids so every code in [0,255] decodes to something sensible.
    for (std::size_t c = 0; c < kPqKsub; ++c) {
      const std::size_t src = c % res.n_clusters;
      std::copy_n(res.centroids.data() + src * dsub_, dsub_,
                  codebooks_.begin() + (s * kPqKsub + c) * dsub_);
    }
  };
  detail::run_indexed(pool, outer_threads, m_, train_subspace);
  rebuild_transposed();
}

void ProductQuantizer::rebuild_transposed() {
  tcodebooks_.assign(m_ * dsub_ * kPqKsub, 0.f);
  for (std::size_t s = 0; s < m_; ++s) {
    const float* cb = codebooks_.data() + s * kPqKsub * dsub_;
    float* t = tcodebooks_.data() + s * dsub_ * kPqKsub;
    for (std::size_t c = 0; c < kPqKsub; ++c) {
      for (std::size_t d = 0; d < dsub_; ++d) t[d * kPqKsub + c] = cb[c * dsub_ + d];
    }
  }
}

void ProductQuantizer::encode(const float* vec, std::uint8_t* codes) const {
  assert(trained());
  for (std::size_t s = 0; s < m_; ++s) {
    const float* tcb = tcodebooks_.data() + s * dsub_ * kPqKsub;
    auto [c, d] =
        nearest_centroid_t(vec + s * dsub_, tcb, kPqKsub, kPqKsub, dsub_);
    (void)d;
    codes[s] = static_cast<std::uint8_t>(c);
  }
}

void ProductQuantizer::encode_batch(std::span<const float> data, std::size_t n,
                                    std::uint8_t* out) const {
  common::ThreadPool::global().parallel_for(
      0, n,
      [&](std::size_t i) { encode(data.data() + i * dim_, out + i * m_); },
      128);
}

void ProductQuantizer::decode(const std::uint8_t* codes, float* out) const {
  assert(trained());
  for (std::size_t s = 0; s < m_; ++s) {
    const float* cb =
        codebooks_.data() + (s * kPqKsub + codes[s]) * dsub_;
    std::copy_n(cb, dsub_, out + s * dsub_);
  }
}

void ProductQuantizer::compute_lut(const float* query, float* lut) const {
  assert(trained());
  for (std::size_t s = 0; s < m_; ++s) {
    const float* tcb = tcodebooks_.data() + s * dsub_ * kPqKsub;
    squared_dists_t(query + s * dsub_, tcb, kPqKsub, kPqKsub, dsub_,
                    lut + s * kPqKsub);
  }
}

QuantizedLut ProductQuantizer::quantize_lut(std::span<const float> lut) const {
  assert(lut.size() == m_ * kPqKsub);
  QuantizedLut q;
  q.m = m_;
  q.table.resize(lut.size());
  float max_entry = 0.f;
  for (float v : lut) max_entry = std::max(max_entry, v);
  // Entries must fit uint16 and an m-entry sum must fit uint32 comfortably.
  q.scale = max_entry > 0.f ? max_entry / 65000.f
                            : 1.f;  // degenerate all-zero LUT
  const float inv = 1.f / q.scale;
  for (std::size_t i = 0; i < lut.size(); ++i) {
    const float scaled = lut[i] * inv;
    q.table[i] = static_cast<std::uint16_t>(
        common::round_nonneg(std::min(65535.f, scaled)));
  }
  return q;
}

float ProductQuantizer::adc_distance(const float* lut,
                                     const std::uint8_t* codes) const {
  float acc = 0.f;
  for (std::size_t s = 0; s < m_; ++s) {
    acc += lut[s * kPqKsub + codes[s]];
  }
  return acc;
}

std::uint32_t ProductQuantizer::adc_distance_q(const QuantizedLut& lut,
                                               const std::uint8_t* codes) const {
  std::uint32_t acc = 0;
  for (std::size_t s = 0; s < m_; ++s) {
    acc += lut.table[s * kPqKsub + codes[s]];
  }
  return acc;
}

}  // namespace upanns::quant
