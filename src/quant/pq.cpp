#include "quant/pq.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace upanns::quant {

void ProductQuantizer::train(std::span<const float> data, std::size_t n,
                             std::size_t dim, const PqOptions& opts) {
  if (opts.m == 0 || dim % opts.m != 0) {
    throw std::invalid_argument("ProductQuantizer: dim must be divisible by m");
  }
  dim_ = dim;
  m_ = opts.m;
  dsub_ = dim / opts.m;
  codebooks_.assign(m_ * kPqKsub * dsub_, 0.f);

  // Train each subspace independently on the sliced training data.
  std::vector<float> sub(n * dsub_);
  for (std::size_t s = 0; s < m_; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      std::copy_n(data.data() + i * dim_ + s * dsub_, dsub_,
                  sub.begin() + i * dsub_);
    }
    KMeansOptions ko;
    ko.n_clusters = kPqKsub;
    ko.max_iters = opts.train_iters;
    ko.seed = opts.seed + s;
    ko.max_training_points = opts.max_training_points;
    KMeansResult res = kmeans(sub, n, dsub_, ko);
    // If n < 256 the trained centroid count is smaller; tile the trained
    // centroids so every code in [0,255] decodes to something sensible.
    for (std::size_t c = 0; c < kPqKsub; ++c) {
      const std::size_t src = c % res.n_clusters;
      std::copy_n(res.centroids.data() + src * dsub_, dsub_,
                  codebooks_.begin() + (s * kPqKsub + c) * dsub_);
    }
  }
}

void ProductQuantizer::encode(const float* vec, std::uint8_t* codes) const {
  assert(trained());
  for (std::size_t s = 0; s < m_; ++s) {
    const float* cb = codebooks_.data() + s * kPqKsub * dsub_;
    auto [c, d] = nearest_centroid(vec + s * dsub_, cb, kPqKsub, dsub_);
    (void)d;
    codes[s] = static_cast<std::uint8_t>(c);
  }
}

void ProductQuantizer::encode_batch(std::span<const float> data, std::size_t n,
                                    std::uint8_t* out) const {
  common::ThreadPool::global().parallel_for(
      0, n,
      [&](std::size_t i) { encode(data.data() + i * dim_, out + i * m_); },
      128);
}

void ProductQuantizer::decode(const std::uint8_t* codes, float* out) const {
  assert(trained());
  for (std::size_t s = 0; s < m_; ++s) {
    const float* cb =
        codebooks_.data() + (s * kPqKsub + codes[s]) * dsub_;
    std::copy_n(cb, dsub_, out + s * dsub_);
  }
}

void ProductQuantizer::compute_lut(const float* query, float* lut) const {
  assert(trained());
  for (std::size_t s = 0; s < m_; ++s) {
    const float* q = query + s * dsub_;
    const float* cb = codebooks_.data() + s * kPqKsub * dsub_;
    float* row = lut + s * kPqKsub;
    for (std::size_t c = 0; c < kPqKsub; ++c) {
      row[c] = l2_sq(q, cb + c * dsub_, dsub_);
    }
  }
}

QuantizedLut ProductQuantizer::quantize_lut(std::span<const float> lut) const {
  assert(lut.size() == m_ * kPqKsub);
  QuantizedLut q;
  q.m = m_;
  q.table.resize(lut.size());
  float max_entry = 0.f;
  for (float v : lut) max_entry = std::max(max_entry, v);
  // Entries must fit uint16 and an m-entry sum must fit uint32 comfortably.
  q.scale = max_entry > 0.f ? max_entry / 65000.f
                            : 1.f;  // degenerate all-zero LUT
  const float inv = 1.f / q.scale;
  for (std::size_t i = 0; i < lut.size(); ++i) {
    const float scaled = lut[i] * inv;
    q.table[i] = static_cast<std::uint16_t>(
        std::min(65535.f, std::round(scaled)));
  }
  return q;
}

float ProductQuantizer::adc_distance(const float* lut,
                                     const std::uint8_t* codes) const {
  float acc = 0.f;
  for (std::size_t s = 0; s < m_; ++s) {
    acc += lut[s * kPqKsub + codes[s]];
  }
  return acc;
}

std::uint32_t ProductQuantizer::adc_distance_q(const QuantizedLut& lut,
                                               const std::uint8_t* codes) const {
  std::uint32_t acc = 0;
  for (std::size_t s = 0; s < m_; ++s) {
    acc += lut.table[s * kPqKsub + codes[s]];
  }
  return acc;
}

}  // namespace upanns::quant
