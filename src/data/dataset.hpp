// In-memory dataset representation plus the synthetic generator specs that
// stand in for SIFT1B / DEEP1B / SPACEV1B (see DESIGN.md section 1).
// The generators reproduce the three statistical properties the paper's
// mechanisms depend on:
//   1. log-normal cluster-size skew      (Fig 4b: ~10^6x spread),
//   2. Zipfian query access frequencies  (Fig 4a: ~500x spread),
//   3. correlated subvector patterns     (Sec 4.3: frequent code triplets,
//      e.g. (1,15,26) in 5.7% of SIFT1B vectors).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace upanns::data {

/// A row-major collection of float vectors.
struct Dataset {
  std::size_t dim = 0;
  std::size_t n = 0;
  std::vector<float> values;  ///< n x dim

  const float* row(std::size_t i) const { return values.data() + i * dim; }
  float* row(std::size_t i) { return values.data() + i * dim; }
  std::span<const float> span() const { return values; }
  bool empty() const { return n == 0; }
};

/// Which billion-scale benchmark a synthetic set mimics. Controls dimension,
/// value distribution and the default PQ code count (paper Sec 5.1: DEEP1B
/// 96d/M=12, SIFT1B 128d/M=16, SPACEV1B 100d/M=20).
enum class DatasetFamily { kSiftLike, kDeepLike, kSpacevLike };

const char* family_name(DatasetFamily f);
std::size_t family_dim(DatasetFamily f);
std::size_t family_pq_m(DatasetFamily f);
/// Log-normal sigma of the cluster-size distribution. DEEP1B exhibits the
/// strongest inverted-list imbalance (this is what drives the paper's
/// Faiss-GPU out-of-memory marks in Fig 12); SIFT1B is the mildest.
double family_size_sigma(DatasetFamily f);
/// Near-duplicate clump fraction per family (DEEP1B-like only).
double family_dense_core_frac(DatasetFamily f);

struct SyntheticSpec {
  DatasetFamily family = DatasetFamily::kSiftLike;
  std::size_t n = 100'000;
  /// Number of natural (generative) clusters; inverted-list skew follows from
  /// their log-normal size distribution.
  std::size_t n_natural_clusters = 256;
  /// Sigma of the log-normal cluster-size distribution (Fig 4b skew).
  double size_sigma = 1.6;
  /// Probability that a 3-subspace group of a residual is drawn from the
  /// cluster's shared pattern pool instead of fresh noise. Drives the code
  /// co-occurrence rate that Opt3 (CAE) exploits.
  double pattern_prob = 0.55;
  /// Patterns per cluster pool; fewer patterns -> stronger co-occurrence.
  std::size_t pattern_pool = 12;
  /// Zipf exponent of pattern selection inside a pool.
  double pattern_zipf = 1.1;
  /// Fraction of points emitted as a single ultra-dense clump of
  /// near-duplicates. CNN-descriptor datasets like DEEP1B contain large
  /// near-duplicate groups; a dense clump survives IVF re-clustering as one
  /// oversized inverted list (the max-cluster skew behind the paper's
  /// Faiss-GPU OOM marks, Fig 12).
  double dense_core_frac = 0.0;
  /// Shuffle storage order so it carries no cluster information (the
  /// realistic default). False keeps points cluster-contiguous, which makes
  /// the region-based workload generator's popularity ranking — and its
  /// popularity_shift drift — line up with natural clusters; the CLI's
  /// drifting-workload demo (`gen --cluster-order`) relies on this.
  bool shuffle = true;
  std::uint64_t seed = 7;

  std::size_t dim() const { return family_dim(family); }
  std::size_t pq_m() const { return family_pq_m(family); }
};

/// Generate a synthetic dataset matching the spec. Deterministic in seed.
Dataset generate_synthetic(const SyntheticSpec& spec);

/// Convenience presets mirroring the paper's three benchmarks at reduced n.
SyntheticSpec sift1b_like(std::size_t n, std::uint64_t seed = 7);
SyntheticSpec deep1b_like(std::size_t n, std::uint64_t seed = 7);
SyntheticSpec spacev1b_like(std::size_t n, std::uint64_t seed = 7);

}  // namespace upanns::data
