#include "data/ground_truth.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "quant/kmeans.hpp"

namespace upanns::data {

std::vector<std::vector<common::Neighbor>> exact_topk(const Dataset& base,
                                                      const Dataset& queries,
                                                      std::size_t k) {
  assert(base.dim == queries.dim);
  std::vector<std::vector<common::Neighbor>> out(queries.n);
  common::ThreadPool::global().parallel_for(
      0, queries.n,
      [&](std::size_t q) {
        common::BoundedMaxHeap heap(k);
        const float* qv = queries.row(q);
        for (std::size_t i = 0; i < base.n; ++i) {
          const float d = quant::l2_sq(qv, base.row(i), base.dim);
          heap.push(d, static_cast<std::uint32_t>(i));
        }
        out[q] = heap.take_sorted();
      },
      1);
  return out;
}

double recall_at_k(const std::vector<std::vector<common::Neighbor>>& exact,
                   const std::vector<std::vector<common::Neighbor>>& approx,
                   std::size_t k) {
  assert(exact.size() == approx.size());
  if (exact.empty() || k == 0) return 0.0;
  double hits = 0;
  for (std::size_t q = 0; q < exact.size(); ++q) {
    std::unordered_set<std::uint32_t> truth;
    for (std::size_t i = 0; i < std::min(k, exact[q].size()); ++i) {
      truth.insert(exact[q][i].id);
    }
    for (std::size_t i = 0; i < std::min(k, approx[q].size()); ++i) {
      if (truth.count(approx[q][i].id)) hits += 1;
    }
  }
  return hits / (static_cast<double>(exact.size()) * static_cast<double>(k));
}

}  // namespace upanns::data
