#include "data/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace upanns::data {

const char* family_name(DatasetFamily f) {
  switch (f) {
    case DatasetFamily::kSiftLike: return "SIFT1B-like";
    case DatasetFamily::kDeepLike: return "DEEP1B-like";
    case DatasetFamily::kSpacevLike: return "SPACEV1B-like";
  }
  return "?";
}

std::size_t family_dim(DatasetFamily f) {
  switch (f) {
    case DatasetFamily::kSiftLike: return 128;
    case DatasetFamily::kDeepLike: return 96;
    case DatasetFamily::kSpacevLike: return 100;
  }
  return 0;
}

std::size_t family_pq_m(DatasetFamily f) {
  switch (f) {
    case DatasetFamily::kSiftLike: return 16;   // 128d -> 16 codes
    case DatasetFamily::kDeepLike: return 12;   // 96d  -> 12 codes
    case DatasetFamily::kSpacevLike: return 20; // 100d -> 20 codes
  }
  return 0;
}

double family_size_sigma(DatasetFamily f) {
  switch (f) {
    case DatasetFamily::kSiftLike: return 1.3;
    case DatasetFamily::kDeepLike: return 2.3;
    case DatasetFamily::kSpacevLike: return 1.8;
  }
  return 1.6;
}

double family_dense_core_frac(DatasetFamily f) {
  // Only DEEP1B-like data carries the near-duplicate clump (see
  // SyntheticSpec::dense_core_frac).
  return f == DatasetFamily::kDeepLike ? 0.04 : 0.0;
}

namespace {

// Value post-processing so the three families have distinct distributions:
// SIFT descriptors are non-negative byte-ish magnitudes, DEEP vectors are
// L2-normalized floats, SPACEV entries are small signed integers.
void family_postprocess(DatasetFamily family, float* vec, std::size_t dim) {
  switch (family) {
    case DatasetFamily::kSiftLike:
      // SIFT descriptors are byte-valued magnitudes.
      for (std::size_t d = 0; d < dim; ++d) {
        vec[d] = std::round(std::clamp(vec[d], 0.f, 255.f));
      }
      break;
    case DatasetFamily::kDeepLike: {
      double norm = 0;
      for (std::size_t d = 0; d < dim; ++d) norm += vec[d] * vec[d];
      const float inv = norm > 0 ? static_cast<float>(1.0 / std::sqrt(norm)) : 0.f;
      for (std::size_t d = 0; d < dim; ++d) vec[d] *= inv;
      break;
    }
    case DatasetFamily::kSpacevLike:
      for (std::size_t d = 0; d < dim; ++d) {
        vec[d] = std::round(std::clamp(vec[d], -127.f, 127.f));
      }
      break;
  }
}

// Base scale of centroids / residuals per family (pre-postprocessing).
struct FamilyScales {
  float centroid_lo, centroid_hi, residual_sigma;
};

FamilyScales family_scales(DatasetFamily family) {
  switch (family) {
    case DatasetFamily::kSiftLike: return {20.f, 200.f, 18.f};
    case DatasetFamily::kDeepLike: return {-1.f, 1.f, 0.25f};
    case DatasetFamily::kSpacevLike: return {-80.f, 80.f, 14.f};
  }
  return {0.f, 1.f, 1.f};
}

}  // namespace

Dataset generate_synthetic(const SyntheticSpec& spec) {
  const std::size_t dim = spec.dim();
  const std::size_t m = spec.pq_m();
  if (dim == 0 || spec.n == 0) throw std::invalid_argument("empty spec");
  const std::size_t dsub = dim / m;
  common::Rng rng(spec.seed);
  const FamilyScales scales = family_scales(spec.family);

  // 1. Natural cluster centroids.
  const std::size_t nc = std::min(spec.n_natural_clusters, spec.n);
  std::vector<float> centroids(nc * dim);
  for (auto& v : centroids) {
    v = rng.uniform(scales.centroid_lo, scales.centroid_hi);
  }

  // 2. Log-normal cluster sizes, normalized to sum to n (Fig 4b skew).
  common::LogNormalSampler sizer(0.0, spec.size_sigma);
  std::vector<double> weights(nc);
  double total = 0;
  for (auto& w : weights) {
    w = sizer.sample(rng);
    total += w;
  }
  std::vector<std::size_t> sizes(nc);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    sizes[c] = static_cast<std::size_t>(weights[c] / total * spec.n);
    assigned += sizes[c];
  }
  // Distribute the rounding remainder to the largest clusters.
  for (std::size_t c = 0; assigned < spec.n; c = (c + 1) % nc) {
    ++sizes[c];
    ++assigned;
  }

  // 3. Per-cluster residual pattern pools over 3-subspace groups. A "group"
  //    covers 3 consecutive PQ subspaces (3 * dsub dims) so that pool reuse
  //    shows up as position-aligned code triplets after PQ encoding.
  const std::size_t group_dims = 3 * dsub;
  const std::size_t n_groups = dim / group_dims;  // remainder handled as noise
  std::vector<float> pools(nc * n_groups * spec.pattern_pool * group_dims);
  for (auto& v : pools) {
    v = static_cast<float>(rng.gaussian(0.0, scales.residual_sigma));
  }
  common::ZipfSampler pattern_picker(spec.pattern_pool, spec.pattern_zipf);

  // 4. Emit points cluster by cluster (deterministic order), then shuffle ids
  //    so storage order carries no cluster information.
  Dataset ds;
  ds.dim = dim;
  ds.n = spec.n;
  ds.values.resize(spec.n * dim);
  std::size_t row = 0;

  // Dense near-duplicate core (see SyntheticSpec::dense_core_frac): one
  // clump whose internal spread is negligible, so k-means cannot profitably
  // split it and it stays one oversized inverted list.
  const std::size_t core_points =
      static_cast<std::size_t>(spec.dense_core_frac * static_cast<double>(spec.n));
  if (core_points > 0) {
    std::vector<float> core_center(dim);
    for (auto& v : core_center) {
      v = rng.uniform(scales.centroid_lo, scales.centroid_hi);
    }
    for (std::size_t i = 0; i < core_points && row < spec.n; ++i, ++row) {
      float* out = ds.row(row);
      for (std::size_t d = 0; d < dim; ++d) {
        out[d] = core_center[d] +
                 static_cast<float>(rng.gaussian(0.0, scales.residual_sigma * 1e-3));
      }
      family_postprocess(spec.family, out, dim);
    }
    // Shrink the regular clusters to keep the total at n.
    std::size_t to_remove = core_points;
    for (std::size_t c = 0; to_remove > 0; c = (c + 1) % nc) {
      if (sizes[c] > 0) {
        --sizes[c];
        --to_remove;
      }
    }
  }

  for (std::size_t c = 0; c < nc; ++c) {
    const float* ctr = centroids.data() + c * dim;
    for (std::size_t i = 0; i < sizes[c]; ++i, ++row) {
      float* out = ds.row(row);
      // Start from fresh Gaussian noise everywhere...
      for (std::size_t d = 0; d < dim; ++d) {
        out[d] = ctr[d] + static_cast<float>(rng.gaussian(0.0, scales.residual_sigma));
      }
      // ...then overwrite pattern groups from the shared pool with small
      // jitter. The jitter must stay well below the PQ cell size so the
      // group still encodes to the same code triplet.
      for (std::size_t g = 0; g < n_groups; ++g) {
        if (rng.uniform() >= spec.pattern_prob) continue;
        const std::size_t p = pattern_picker.sample(rng);
        const float* pat = pools.data() +
                           ((c * n_groups + g) * spec.pattern_pool + p) * group_dims;
        for (std::size_t d = 0; d < group_dims; ++d) {
          out[g * group_dims + d] =
              ctr[g * group_dims + d] + pat[d] +
              static_cast<float>(rng.gaussian(0.0, scales.residual_sigma * 0.02));
        }
      }
      family_postprocess(spec.family, out, dim);
    }
  }
  assert(row == spec.n);

  // Shuffle rows (unless the spec wants cluster-contiguous storage).
  if (spec.shuffle) {
    auto perm = common::random_permutation(spec.n, rng);
    std::vector<float> shuffled(spec.n * dim);
    for (std::size_t i = 0; i < spec.n; ++i) {
      std::copy_n(ds.row(perm[i]), dim, shuffled.begin() + i * dim);
    }
    ds.values = std::move(shuffled);
  }
  return ds;
}

namespace {
SyntheticSpec family_spec(DatasetFamily f, std::size_t n, std::uint64_t seed) {
  SyntheticSpec s;
  s.family = f;
  s.n = n;
  s.seed = seed;
  s.size_sigma = family_size_sigma(f);
  s.dense_core_frac = family_dense_core_frac(f);
  return s;
}
}  // namespace

SyntheticSpec sift1b_like(std::size_t n, std::uint64_t seed) {
  return family_spec(DatasetFamily::kSiftLike, n, seed);
}

SyntheticSpec deep1b_like(std::size_t n, std::uint64_t seed) {
  return family_spec(DatasetFamily::kDeepLike, n, seed);
}

SyntheticSpec spacev1b_like(std::size_t n, std::uint64_t seed) {
  return family_spec(DatasetFamily::kSpacevLike, n, seed);
}

}  // namespace upanns::data
