// Query workload generation with Zipfian cluster popularity (Fig 4a) and
// optional drift, plus the historical-frequency estimator that feeds the
// offline data-placement stage (paper Sec 4.1: f_i is "historical access
// frequency").
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace upanns::data {

struct WorkloadSpec {
  std::size_t n_queries = 1000;   ///< the paper processes 1,000 at a time
  /// Zipf exponent of cluster popularity. ~0.9-1.2 reproduces the ~500x
  /// frequency spread of Fig 4a.
  double zipf_exponent = 1.0;
  /// Query = jittered copy of a base point from a popular region; the jitter
  /// is this fraction of the point's magnitude.
  double jitter = 0.05;
  std::uint64_t seed = 99;
  /// Rotates the popularity ranking by this many positions — used to emulate
  /// the gradual query-pattern drift discussed in Sec 4.1.2.
  std::size_t popularity_shift = 0;
};

struct QueryWorkload {
  Dataset queries;
  /// For diagnostics: which base point each query was derived from.
  std::vector<std::uint32_t> source_points;
};

/// Draw queries near base points whose *generative region* popularity is
/// Zipf-distributed: base point indices are ranked into `n_regions` buckets
/// and a Zipf-chosen bucket supplies each query.
QueryWorkload generate_workload(const Dataset& base, const WorkloadSpec& spec,
                                std::size_t n_regions = 256);

/// Estimate per-cluster access frequencies from a history of filtered cluster
/// id lists (one list per past query). Returns frequencies normalized so
/// they sum to 1; clusters never accessed get a small floor > 0 — a fixed
/// share of the *observed* mass spread uniformly, so even a short history
/// keeps ranking (and approximate ratios) by observed frequency.
std::vector<double> estimate_frequencies(
    const std::vector<std::vector<std::uint32_t>>& history,
    std::size_t n_clusters);

}  // namespace upanns::data
