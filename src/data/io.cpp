#include "data/io.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace upanns::data {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

template <typename Elem>
Dataset read_vecs(const std::string& path, std::size_t max_rows) {
  FilePtr f = open_or_throw(path, "rb");
  Dataset ds;
  std::vector<Elem> row;
  for (std::size_t r = 0; max_rows == 0 || r < max_rows; ++r) {
    std::int32_t dim = 0;
    if (std::fread(&dim, sizeof(dim), 1, f.get()) != 1) break;  // EOF
    if (dim <= 0) throw std::runtime_error("bad row dim in " + path);
    if (ds.dim == 0) {
      ds.dim = static_cast<std::size_t>(dim);
    } else if (ds.dim != static_cast<std::size_t>(dim)) {
      throw std::runtime_error("inconsistent dims in " + path);
    }
    row.resize(ds.dim);
    if (std::fread(row.data(), sizeof(Elem), ds.dim, f.get()) != ds.dim) {
      throw std::runtime_error("truncated row in " + path);
    }
    for (Elem e : row) ds.values.push_back(static_cast<float>(e));
    ++ds.n;
  }
  return ds;
}

template <typename Elem>
void write_vecs(const std::string& path, const Dataset& ds) {
  FilePtr f = open_or_throw(path, "wb");
  std::vector<Elem> row(ds.dim);
  const auto dim = static_cast<std::int32_t>(ds.dim);
  for (std::size_t i = 0; i < ds.n; ++i) {
    const float* src = ds.row(i);
    for (std::size_t d = 0; d < ds.dim; ++d) row[d] = static_cast<Elem>(src[d]);
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(Elem), ds.dim, f.get()) != ds.dim) {
      throw std::runtime_error("short write to " + path);
    }
  }
}

}  // namespace

Dataset read_fvecs(const std::string& path, std::size_t max_rows) {
  return read_vecs<float>(path, max_rows);
}

Dataset read_bvecs(const std::string& path, std::size_t max_rows) {
  return read_vecs<std::uint8_t>(path, max_rows);
}

std::vector<std::vector<std::int32_t>> read_ivecs(const std::string& path,
                                                  std::size_t max_rows) {
  FilePtr f = open_or_throw(path, "rb");
  std::vector<std::vector<std::int32_t>> rows;
  for (std::size_t r = 0; max_rows == 0 || r < max_rows; ++r) {
    std::int32_t dim = 0;
    if (std::fread(&dim, sizeof(dim), 1, f.get()) != 1) break;
    if (dim < 0) throw std::runtime_error("bad row dim in " + path);
    std::vector<std::int32_t> row(static_cast<std::size_t>(dim));
    if (std::fread(row.data(), sizeof(std::int32_t), row.size(), f.get()) !=
        row.size()) {
      throw std::runtime_error("truncated row in " + path);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_fvecs(const std::string& path, const Dataset& ds) {
  write_vecs<float>(path, ds);
}

void write_bvecs(const std::string& path, const Dataset& ds) {
  write_vecs<std::uint8_t>(path, ds);
}

void write_ivecs(const std::string& path,
                 const std::vector<std::vector<std::int32_t>>& rows) {
  FilePtr f = open_or_throw(path, "wb");
  for (const auto& row : rows) {
    const auto dim = static_cast<std::int32_t>(row.size());
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(std::int32_t), row.size(), f.get()) !=
            row.size()) {
      throw std::runtime_error("short write to " + path);
    }
  }
}

}  // namespace upanns::data
