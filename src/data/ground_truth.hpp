// Exact (brute-force) nearest-neighbor computation and recall@k scoring —
// the accuracy yardstick for every approximate path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/topk.hpp"
#include "data/dataset.hpp"

namespace upanns::data {

/// Exact L2 top-k for each query (row-major queries, nq x dim).
/// Parallelized over queries. Returns nq lists of ascending neighbors.
std::vector<std::vector<common::Neighbor>> exact_topk(const Dataset& base,
                                                      const Dataset& queries,
                                                      std::size_t k);

/// recall@k = |approx ∩ exact| / k averaged over queries. Both inputs must
/// hold at least k entries per query (extra entries are ignored).
double recall_at_k(const std::vector<std::vector<common::Neighbor>>& exact,
                   const std::vector<std::vector<common::Neighbor>>& approx,
                   std::size_t k);

}  // namespace upanns::data
