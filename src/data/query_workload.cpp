#include "data/query_workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace upanns::data {

QueryWorkload generate_workload(const Dataset& base, const WorkloadSpec& spec,
                                std::size_t n_regions) {
  assert(!base.empty());
  common::Rng rng(spec.seed);
  n_regions = std::max<std::size_t>(1, std::min(n_regions, base.n));
  common::ZipfSampler zipf(n_regions, spec.zipf_exponent);

  QueryWorkload wl;
  wl.queries.dim = base.dim;
  wl.queries.n = spec.n_queries;
  wl.queries.values.resize(spec.n_queries * base.dim);
  wl.source_points.resize(spec.n_queries);

  const std::size_t region_len = (base.n + n_regions - 1) / n_regions;
  for (std::size_t q = 0; q < spec.n_queries; ++q) {
    std::size_t region = zipf.sample(rng);
    region = (region + spec.popularity_shift) % n_regions;
    const std::size_t lo = region * region_len;
    const std::size_t hi = std::min(base.n, lo + region_len);
    const std::size_t src = lo + rng.below(std::max<std::size_t>(1, hi - lo));
    wl.source_points[q] = static_cast<std::uint32_t>(std::min(src, base.n - 1));

    const float* p = base.row(wl.source_points[q]);
    float* out = wl.queries.row(q);
    // Jitter proportional to the average magnitude of the source vector.
    double mag = 0;
    for (std::size_t d = 0; d < base.dim; ++d) mag += std::abs(p[d]);
    mag /= static_cast<double>(base.dim);
    const double sigma = spec.jitter * std::max(mag, 1e-3);
    for (std::size_t d = 0; d < base.dim; ++d) {
      out[d] = p[d] + static_cast<float>(rng.gaussian(0.0, sigma));
    }
  }
  return wl;
}

std::vector<double> estimate_frequencies(
    const std::vector<std::vector<std::uint32_t>>& history,
    std::size_t n_clusters) {
  std::vector<double> freq(n_clusters, 0.0);
  double total = 0;
  for (const auto& probe : history) {
    for (std::uint32_t c : probe) {
      if (c < n_clusters) {
        freq[c] += 1.0;
        total += 1.0;
      }
    }
  }
  // Floor so never-seen clusters still get placed with nonzero workload.
  // The floor scales with the observed mass (1% of it, spread uniformly)
  // instead of adding a fixed 0.1 per cluster — a fixed floor swamped real
  // counts on short histories (10 queries over 200 clusters put 2/3 of the
  // total mass into clusters nobody ever touched). With no history at all,
  // fall back to a uniform distribution.
  constexpr double kFloorShare = 0.01;
  const double floor_mass =
      total > 0 ? kFloorShare * total / static_cast<double>(n_clusters) : 1.0;
  for (auto& f : freq) f += floor_mass;
  total += floor_mass * static_cast<double>(n_clusters);
  for (auto& f : freq) f /= total;
  return freq;
}

}  // namespace upanns::data
