// Readers/writers for the TEXMEX vector formats used by the real benchmarks
// (http://corpus-texmex.irisa.fr/): .fvecs (float32), .bvecs (uint8) and
// .ivecs (int32). Each row is [int32 dim][dim elements]. When real SIFT1B /
// DEEP1B / SPACEV1B files are available they can be dropped in via these
// loaders; the rest of the pipeline is format-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace upanns::data {

/// Read at most `max_rows` rows (0 = all). Throws std::runtime_error on
/// malformed files.
Dataset read_fvecs(const std::string& path, std::size_t max_rows = 0);
Dataset read_bvecs(const std::string& path, std::size_t max_rows = 0);
std::vector<std::vector<std::int32_t>> read_ivecs(const std::string& path,
                                                  std::size_t max_rows = 0);

void write_fvecs(const std::string& path, const Dataset& ds);
void write_bvecs(const std::string& path, const Dataset& ds);
void write_ivecs(const std::string& path,
                 const std::vector<std::vector<std::int32_t>>& rows);

}  // namespace upanns::data
