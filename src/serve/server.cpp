#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"

namespace upanns::serve {

namespace {

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// Quantile of an already-sorted sample (nearest-rank).
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), sorted.size()) - 1;
  return sorted[idx];
}

}  // namespace

Server::Server(BatchExecutor exec, ServeOptions opts)
    : opts_(opts),
      exec_(std::move(exec)),
      queue_(opts.queue_capacity),
      sink_(opts.metrics),
      t0_(std::chrono::steady_clock::now()) {
  if (opts_.dim == 0) throw std::invalid_argument("ServeOptions::dim == 0");
  if (opts_.policy.max_batch == 0) {
    throw std::invalid_argument("BatchPolicy::max_batch == 0");
  }
  if (!(opts_.policy.deadline_seconds > 0)) {
    throw std::invalid_argument("BatchPolicy::deadline_seconds <= 0");
  }
  if (opts_.metrics != nullptr) {
    // Fill ratios live in [0, 1]; the default exponential time bounds would
    // lump every batch into one bucket.
    opts_.metrics->histogram(
        "serve.batch_fill",
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  }
  worker_ = std::thread([this] { worker_loop(); });
}

Server::~Server() { drain(); }

double Server::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

std::optional<std::future<RequestResult>> Server::try_submit(
    std::span<const float> query) {
  if (query.size() != opts_.dim) {
    throw std::invalid_argument("query dimensionality mismatch");
  }
  Request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.query.assign(query.begin(), query.end());
  r.enqueue_seconds = now_seconds();
  std::future<RequestResult> fut = r.promise.get_future();
  if (!queue_.try_push(std::move(r))) {
    sink_.count("serve.rejected_total");
    std::lock_guard lk(stats_mu_);
    ++stats_.rejected;
    return std::nullopt;
  }
  sink_.count("serve.requests_total");
  std::lock_guard lk(stats_mu_);
  ++stats_.accepted;
  return fut;
}

void Server::drain() {
  std::call_once(drained_, [this] {
    queue_.close();
    if (worker_.joinable()) worker_.join();
  });
}

ServeStats Server::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

void Server::worker_loop() {
  for (;;) {
    if (!queue_.wait_nonempty()) break;  // closed and empty: shut down
    const double oldest = queue_.front_enqueue_seconds();
    queue_.wait_closeable(opts_.policy.max_batch,
                          t0_ + to_duration(batch_deadline(opts_.policy,
                                                           oldest)));
    std::vector<Request> reqs = queue_.pop_batch(opts_.policy.max_batch);
    if (reqs.empty()) continue;
    const BatchClose close = batch_close_decision(
        opts_.policy, reqs.size(), oldest, now_seconds(), queue_.closed());
    execute_batch(std::move(reqs), close);
  }
}

void Server::execute_batch(std::vector<Request> reqs, BatchClose close) {
  const double dispatch = now_seconds();
  data::Dataset batch;
  batch.dim = opts_.dim;
  batch.n = reqs.size();
  batch.values.reserve(reqs.size() * opts_.dim);
  for (const Request& r : reqs) {
    batch.values.insert(batch.values.end(), r.query.begin(), r.query.end());
  }

  ExecResult result;
  std::exception_ptr error;
  try {
    result = exec_(batch);
    if (result.neighbors.size() != reqs.size()) {
      throw std::logic_error("executor returned wrong neighbor count");
    }
  } catch (...) {
    error = std::current_exception();
  }
  const double complete = now_seconds();

  BatchRecord brec;
  brec.size = reqs.size();
  brec.close = close;
  brec.dispatch_seconds = dispatch;
  brec.complete_seconds = complete;
  brec.sim_seconds = error ? 0 : result.sim_seconds;
  brec.failed = error != nullptr;

  std::vector<RequestRecord> rrecs(reqs.size());
  {
    std::lock_guard lk(stats_mu_);
    brec.index = batches_.size();
    ++stats_.batches;
    switch (close) {
      case BatchClose::kFull: ++stats_.full_closes; break;
      case BatchClose::kDeadline: ++stats_.deadline_closes; break;
      case BatchClose::kDrain: ++stats_.drain_closes; break;
      case BatchClose::kOpen: break;
    }
    if (error) {
      stats_.failed += reqs.size();
    } else {
      stats_.completed += reqs.size();
    }
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    RequestRecord& rec = rrecs[i];
    rec.id = reqs[i].id;
    rec.enqueue_seconds = reqs[i].enqueue_seconds;
    rec.batch_seconds = dispatch;
    rec.complete_seconds = complete;
    rec.batch_index = brec.index;
    rec.batch_size = reqs.size();
    rec.failed = brec.failed;
    if (error) {
      reqs[i].promise.set_exception(error);
      continue;
    }
    RequestResult rr;
    rr.id = rec.id;
    rr.neighbors = std::move(result.neighbors[i]);
    rr.enqueue_seconds = rec.enqueue_seconds;
    rr.batch_seconds = rec.batch_seconds;
    rr.complete_seconds = rec.complete_seconds;
    rr.batch_index = rec.batch_index;
    rr.batch_size = rec.batch_size;
    reqs[i].promise.set_value(std::move(rr));
  }

  if (sink_.enabled()) {
    sink_.count("serve.batches_total");
    if (error) sink_.count("serve.exec_errors_total");
    sink_.observe("serve.batch_fill",
                  static_cast<double>(reqs.size()) /
                      static_cast<double>(opts_.policy.max_batch));
    for (const RequestRecord& rec : rrecs) {
      sink_.observe("serve.queue_seconds", rec.queue_wait());
      sink_.observe_window("serve.queue_seconds", rec.batch_seconds,
                           rec.queue_wait());
      if (!rec.failed) {
        sink_.observe("query.latency_seconds", rec.latency());
        sink_.observe_window("query.latency_seconds", rec.complete_seconds,
                             rec.latency());
      }
    }
  }

  std::lock_guard lk(stats_mu_);
  batches_.push_back(brec);
  requests_.insert(requests_.end(), rrecs.begin(), rrecs.end());
}

ServeSummary summarize(const std::vector<RequestRecord>& requests,
                       const std::vector<BatchRecord>& batches,
                       const BatchPolicy& policy) {
  ServeSummary s;
  std::vector<double> lat;
  double first = 0, last = 0;
  double queue_sum = 0;
  for (const RequestRecord& r : requests) {
    if (r.failed) continue;
    if (lat.empty() || r.enqueue_seconds < first) first = r.enqueue_seconds;
    last = std::max(last, r.complete_seconds);
    lat.push_back(r.latency());
    queue_sum += r.queue_wait();
  }
  s.n = lat.size();
  if (s.n == 0) return s;
  std::sort(lat.begin(), lat.end());
  s.p50 = sorted_quantile(lat, 0.5);
  s.p99 = sorted_quantile(lat, 0.99);
  s.max = lat.back();
  double sum = 0;
  for (double v : lat) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  s.mean_queue_wait = queue_sum / static_cast<double>(s.n);
  double fill = 0;
  for (const BatchRecord& b : batches) {
    fill += static_cast<double>(b.size) /
            static_cast<double>(policy.max_batch);
  }
  s.mean_batch_fill =
      batches.empty() ? 0 : fill / static_cast<double>(batches.size());
  s.duration_seconds = last - first;
  s.achieved_qps = s.duration_seconds > 0
                       ? static_cast<double>(s.n) / s.duration_seconds
                       : 0;
  return s;
}

void append_request_spans(obs::SpanLog& log,
                          const std::vector<RequestRecord>& requests) {
  for (const RequestRecord& r : requests) {
    obs::Span root;
    root.name = "request";
    root.category = "request";
    root.query = static_cast<std::int64_t>(r.id);
    root.batch = static_cast<std::int64_t>(r.batch_index);
    root.start_seconds = r.enqueue_seconds;
    root.duration_seconds = r.latency();
    const std::uint64_t root_id = log.push(std::move(root)).id;

    obs::Span wait;
    wait.parent = root_id;
    wait.name = "queue-wait";
    wait.category = "serve";
    wait.query = static_cast<std::int64_t>(r.id);
    wait.batch = static_cast<std::int64_t>(r.batch_index);
    wait.start_seconds = r.enqueue_seconds;
    wait.duration_seconds = r.queue_wait();
    log.push(std::move(wait));

    obs::Span exec;
    exec.parent = root_id;
    exec.name = r.failed ? "exec-failed" : "exec";
    exec.category = "serve";
    exec.query = static_cast<std::int64_t>(r.id);
    exec.batch = static_cast<std::int64_t>(r.batch_index);
    exec.start_seconds = r.batch_seconds;
    exec.duration_seconds = r.complete_seconds - r.batch_seconds;
    log.push(std::move(exec));
  }
}

std::string serve_report_json(const ServeSummary& summary,
                              const ServeStats& stats) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("summary").begin_object();
  w.kv("n", static_cast<std::uint64_t>(summary.n));
  w.kv("p50_seconds", summary.p50);
  w.kv("p99_seconds", summary.p99);
  w.kv("mean_seconds", summary.mean);
  w.kv("max_seconds", summary.max);
  w.kv("mean_queue_wait_seconds", summary.mean_queue_wait);
  w.kv("mean_batch_fill", summary.mean_batch_fill);
  w.kv("duration_seconds", summary.duration_seconds);
  w.kv("achieved_qps", summary.achieved_qps);
  w.end_object();
  w.key("stats").begin_object();
  w.kv("accepted", stats.accepted);
  w.kv("rejected", stats.rejected);
  w.kv("completed", stats.completed);
  w.kv("failed", stats.failed);
  w.kv("batches", stats.batches);
  w.kv("full_closes", stats.full_closes);
  w.kv("deadline_closes", stats.deadline_closes);
  w.kv("drain_closes", stats.drain_closes);
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace upanns::serve
