// Adapters from the existing pipeline entry points to serve::BatchExecutor.
// The serve layer stays ignorant of engines; these glue functions are the
// only place the two meet. Both run on the caller's (batcher) thread.
#pragma once

#include <utility>

#include "core/backend.hpp"
#include "core/pipeline.hpp"
#include "serve/server.hpp"

namespace upanns::serve {

/// Executor over a core::BatchStream — the standard single-host online
/// path (MRAM patching, slot metrics and spans included). The stream keeps
/// its slots alive until finish(), so neighbors are copied out. The stream
/// must outlive the returned executor.
inline BatchExecutor stream_executor(core::BatchStream& stream) {
  return [&stream](const data::Dataset& batch) {
    const core::BatchSlot& slot = stream.run_batch(batch);
    ExecResult r;
    r.neighbors = slot.report.neighbors;
    r.sim_seconds = slot.host_seconds + slot.device_seconds;
    return r;
  };
}

/// Executor over any core::AnnsBackend::search (UpANNS, baselines). The
/// backend must outlive the returned executor.
inline BatchExecutor backend_executor(core::AnnsBackend& backend) {
  return [&backend](const data::Dataset& batch) {
    core::SearchReport rep = backend.search(batch);
    ExecResult r;
    r.neighbors = std::move(rep.neighbors);
    r.sim_seconds = rep.total_seconds();
    return r;
  };
}

}  // namespace upanns::serve
