#include "serve/request_queue.hpp"

namespace upanns::serve {

bool RequestQueue::try_push(Request&& r) {
  {
    std::lock_guard lk(mu_);
    if (closed_) return false;
    if (capacity_ > 0 && q_.size() >= capacity_) return false;
    q_.push_back(std::move(r));
  }
  cv_.notify_all();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard lk(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard lk(mu_);
  return q_.size();
}

bool RequestQueue::wait_nonempty() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return closed_ || !q_.empty(); });
  return !q_.empty();
}

void RequestQueue::wait_closeable(
    std::size_t target, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lk(mu_);
  cv_.wait_until(lk, deadline,
                 [&] { return closed_ || q_.size() >= target; });
}

double RequestQueue::front_enqueue_seconds() const {
  std::lock_guard lk(mu_);
  return q_.front().enqueue_seconds;
}

std::vector<Request> RequestQueue::pop_batch(std::size_t max_n) {
  std::lock_guard lk(mu_);
  std::vector<Request> out;
  const std::size_t n = std::min(max_n, q_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

}  // namespace upanns::serve
