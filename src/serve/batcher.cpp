#include "serve/batcher.hpp"

namespace upanns::serve {

const char* batch_close_name(BatchClose c) {
  switch (c) {
    case BatchClose::kOpen: return "open";
    case BatchClose::kFull: return "full";
    case BatchClose::kDeadline: return "deadline";
    case BatchClose::kDrain: return "drain";
  }
  return "?";
}

double batch_deadline(const BatchPolicy& policy, double oldest_arrival) {
  return oldest_arrival + policy.deadline_seconds;
}

BatchClose batch_close_decision(const BatchPolicy& policy, std::size_t depth,
                                double oldest_arrival, double now,
                                bool draining) {
  if (depth == 0) return BatchClose::kOpen;
  // "Full" wins over "deadline" when both hold: the batch ships at its
  // target size and the deadline was met anyway.
  if (depth >= policy.max_batch) return BatchClose::kFull;
  if (now >= batch_deadline(policy, oldest_arrival)) {
    return BatchClose::kDeadline;
  }
  if (draining) return BatchClose::kDrain;
  return BatchClose::kOpen;
}

}  // namespace upanns::serve
