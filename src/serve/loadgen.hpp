// Deterministic open-loop load generation against the continuous batcher —
// the SLO-vs-QPS half of the serve layer.
//
// simulate_load() is a discrete-event twin of serve::Server: arrivals are
// drawn from a seeded Poisson (or fixed-rate) process, admission control,
// batch formation and the single busy executor follow exactly the
// serve::BatchPolicy semantics (same decision function), and service times
// are the *simulated* seconds of real pipeline executions — so a sweep over
// offered QPS yields reproducible latency curves with the classic queueing
// knee, free of host-machine timing noise. The real-threaded Server is for
// serving; this is for measuring the policy + pipeline under load.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "serve/batcher.hpp"
#include "serve/server.hpp"

namespace upanns::serve {

struct LoadgenOptions {
  double offered_qps = 1000;     ///< mean arrival rate
  std::size_t n_requests = 1000; ///< arrivals to generate
  BatchPolicy policy;
  /// Max waiting (admitted, undispatched) requests; arrivals beyond it are
  /// rejected. 0 = unbounded.
  std::size_t queue_capacity = 0;
  std::uint64_t seed = 42;
  bool poisson = true;  ///< false = fixed 1/qps interarrival
  /// Latency SLO used for slo_miss_share (0 disables the readout).
  double slo_seconds = 0;
};

struct LoadgenResult {
  double offered_qps = 0;
  std::size_t n_requests = 0;
  std::size_t n_completed = 0;
  std::size_t n_rejected = 0;
  std::size_t n_batches = 0;
  std::size_t full_closes = 0;
  std::size_t deadline_closes = 0;
  // Arrival→completion latency over completed requests, simulated seconds.
  double p50 = 0, p99 = 0, mean = 0, max = 0;
  double mean_queue_wait = 0;
  double mean_batch_fill = 0;     ///< batch size / max_batch
  double makespan_seconds = 0;    ///< first arrival to last completion
  double achieved_qps = 0;        ///< completed / makespan
  double slo_miss_share = 0;      ///< latency > slo_seconds (0 when unset)
};

/// Run one offered-QPS point. Request i uses row i % queries.n of the
/// (typically Zipf-skewed, data::generate_workload) query pool. `exec` is
/// called once per formed batch on the caller's thread.
LoadgenResult simulate_load(const data::Dataset& queries,
                            const BatchExecutor& exec,
                            const LoadgenOptions& opts);

}  // namespace upanns::serve
