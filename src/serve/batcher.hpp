// Continuous-batch formation policy — the one decision rule shared by the
// real-threaded serve::Server (steady clock) and the deterministic
// discrete-event load simulator (serve/loadgen.hpp, virtual clock), so the
// two can never drift in semantics.
//
// A batch is anchored at the *oldest* waiting request: it closes the moment
// the queue holds max_batch requests ("full"), or when the oldest request
// has waited deadline_seconds ("deadline"), whichever comes first. Draining
// a shutting-down server closes immediately with whatever is waiting
// ("drain"). This is the same shape FusionANNS uses to keep its cooperative
// CPU/GPU pipeline fed, and the knob DRIM-ANN's batch-size/throughput
// tradeoff study sweeps.
#pragma once

#include <cstddef>

namespace upanns::serve {

/// When/why a forming batch closed.
enum class BatchClose { kOpen, kFull, kDeadline, kDrain };

const char* batch_close_name(BatchClose c);

struct BatchPolicy {
  std::size_t max_batch = 64;      ///< close as soon as this many wait
  double deadline_seconds = 2e-3;  ///< max wait of the oldest request
};

/// Absolute time at which a batch anchored at `oldest_arrival` must close
/// even if still short of max_batch.
double batch_deadline(const BatchPolicy& policy, double oldest_arrival);

/// Decide whether a batch should close at time `now` given `depth` waiting
/// requests whose oldest arrived at `oldest_arrival`. `draining` forces an
/// immediate close of any non-empty batch. Returns kOpen to keep waiting.
BatchClose batch_close_decision(const BatchPolicy& policy, std::size_t depth,
                                double oldest_arrival, double now,
                                bool draining);

}  // namespace upanns::serve
