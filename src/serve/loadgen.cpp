#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace upanns::serve {

namespace {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), sorted.size()) - 1;
  return sorted[idx];
}

struct PendingReq {
  double arrival = 0;
  std::size_t row = 0;  ///< row in the query pool
};

}  // namespace

LoadgenResult simulate_load(const data::Dataset& queries,
                            const BatchExecutor& exec,
                            const LoadgenOptions& opts) {
  if (queries.n == 0 || queries.dim == 0) {
    throw std::invalid_argument("simulate_load: empty query pool");
  }
  if (!(opts.offered_qps > 0)) {
    throw std::invalid_argument("simulate_load: offered_qps <= 0");
  }
  if (opts.policy.max_batch == 0 || !(opts.policy.deadline_seconds > 0)) {
    throw std::invalid_argument("simulate_load: invalid BatchPolicy");
  }
  const BatchPolicy& policy = opts.policy;

  LoadgenResult res;
  res.offered_qps = opts.offered_qps;
  res.n_requests = opts.n_requests;

  std::deque<PendingReq> pending;
  double busy_until = 0;  ///< virtual time the single executor frees up
  std::vector<double> latencies;
  latencies.reserve(opts.n_requests);
  double queue_wait_sum = 0;
  double fill_sum = 0;
  double last_completion = 0;

  // Execute one batch of the first n pending requests at `dispatch`. The
  // service time is whatever the real pipeline reports as simulated seconds
  // for that batch — the executor runs inline on this thread.
  const auto run_batch = [&](std::size_t n, double dispatch,
                             BatchClose close) {
    data::Dataset batch;
    batch.dim = queries.dim;
    batch.n = n;
    batch.values.reserve(n * queries.dim);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = queries.values.data() + pending[i].row * queries.dim;
      batch.values.insert(batch.values.end(), row, row + queries.dim);
    }
    const ExecResult r = exec(batch);
    busy_until = dispatch + r.sim_seconds;
    last_completion = std::max(last_completion, busy_until);
    for (std::size_t i = 0; i < n; ++i) {
      latencies.push_back(busy_until - pending[i].arrival);
      queue_wait_sum += dispatch - pending[i].arrival;
    }
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(n));
    ++res.n_batches;
    fill_sum += static_cast<double>(n) / static_cast<double>(policy.max_batch);
    if (close == BatchClose::kFull) ++res.full_closes;
    if (close == BatchClose::kDeadline) ++res.deadline_closes;
  };

  // Dispatch every batch whose close trigger AND executor availability land
  // at or before `horizon` (the next arrival, or +inf for the final drain).
  // Mirrors Server::worker_loop: the batcher wakes at min(full, deadline)
  // once the executor is free, then pops up to max_batch.
  const auto flush_until = [&](double horizon) {
    for (;;) {
      if (pending.empty()) return;
      const double oldest = pending.front().arrival;
      const double deadline = batch_deadline(policy, oldest);
      double trigger;  // virtual time the batch-close condition holds
      if (pending.size() >= policy.max_batch) {
        // The max_batch-th request completed the batch when it arrived; the
        // deadline may have fired even earlier.
        trigger = std::min(pending[policy.max_batch - 1].arrival, deadline);
      } else {
        trigger = deadline;
      }
      const double dispatch = std::max({busy_until, oldest, trigger});
      // A later arrival (before this dispatch) may still join the batch or
      // be refused admission — let it into the simulation first.
      if (dispatch > horizon) return;
      const std::size_t n = std::min<std::size_t>(policy.max_batch,
                                                  pending.size());
      run_batch(n, dispatch,
                batch_close_decision(policy, n, oldest, dispatch,
                                     /*draining=*/false));
    }
  };

  common::Rng rng(opts.seed);
  double t = 0;
  for (std::size_t i = 0; i < opts.n_requests; ++i) {
    const double gap =
        opts.poisson ? -std::log1p(-rng.uniform()) / opts.offered_qps
                     : 1.0 / opts.offered_qps;
    t += gap;
    flush_until(t);
    if (opts.queue_capacity > 0 && pending.size() >= opts.queue_capacity) {
      ++res.n_rejected;
      continue;
    }
    pending.push_back({t, i % queries.n});
  }
  flush_until(std::numeric_limits<double>::infinity());

  res.n_completed = latencies.size();
  if (!latencies.empty()) {
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    res.p50 = sorted_quantile(sorted, 0.5);
    res.p99 = sorted_quantile(sorted, 0.99);
    res.max = sorted.back();
    double sum = 0;
    for (double v : sorted) sum += v;
    res.mean = sum / static_cast<double>(sorted.size());
    res.mean_queue_wait = queue_wait_sum / static_cast<double>(sorted.size());
    if (opts.slo_seconds > 0) {
      std::size_t miss = 0;
      for (double v : sorted) miss += v > opts.slo_seconds;
      res.slo_miss_share =
          static_cast<double>(miss) / static_cast<double>(sorted.size());
    }
  }
  res.mean_batch_fill =
      res.n_batches > 0 ? fill_sum / static_cast<double>(res.n_batches) : 0;
  res.makespan_seconds = last_completion;
  res.achieved_qps = last_completion > 0
                         ? static_cast<double>(res.n_completed) /
                               last_completion
                         : 0;
  return res;
}

}  // namespace upanns::serve
