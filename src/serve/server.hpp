// The online serving front-end: per-client submitter threads push single
// queries into a bounded RequestQueue; one batcher thread forms continuous
// batches under a deadline (serve/batcher.hpp) and executes them through the
// existing pipeline entry points (core::BatchStream / any core::AnnsBackend)
// via a pluggable BatchExecutor. Every request gets enqueue → batch →
// complete timestamps, booked into obs::MetricsRegistry
// (`serve.queue_seconds`, `serve.batch_fill`, `serve.rejected_total`,
// `query.latency_seconds`) and exportable as per-request spans.
//
// Batch composition never changes a query's neighbors — cluster filtering,
// kernel scans and the final merge are all per-query — so online serving is
// bit-identical to running the same queries as pre-formed batches (pinned
// in test_serve).
//
// Failure model: a throwing executor fails only the requests of that batch
// (their futures carry the exception) and the server keeps serving — the
// long-lived-server contract the hardened common::ThreadPool also follows.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"

namespace upanns::serve {

/// What one batch execution returns to the server.
struct ExecResult {
  std::vector<std::vector<common::Neighbor>> neighbors;  ///< one per query
  double sim_seconds = 0;  ///< simulated service time of the batch
};

/// Executes one formed batch. Called from the server's batcher thread only,
/// so single-threaded pipeline state (QueryPipeline, BatchStream) is safe.
using BatchExecutor = std::function<ExecResult(const data::Dataset&)>;

struct ServeOptions {
  std::size_t dim = 0;  ///< query dimensionality (required)
  BatchPolicy policy;
  /// Max queued (admitted, not yet dispatched) requests; try_submit rejects
  /// beyond this. 0 = unbounded.
  std::size_t queue_capacity = 1024;
  /// Optional instrumentation; must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-request accounting row (server-clock seconds since start).
struct RequestRecord {
  std::uint64_t id = 0;
  double enqueue_seconds = 0;
  double batch_seconds = 0;
  double complete_seconds = 0;
  std::size_t batch_index = 0;
  std::size_t batch_size = 0;
  bool failed = false;
  double latency() const { return complete_seconds - enqueue_seconds; }
  double queue_wait() const { return batch_seconds - enqueue_seconds; }
};

/// Per-formed-batch accounting row.
struct BatchRecord {
  std::size_t index = 0;
  std::size_t size = 0;
  BatchClose close = BatchClose::kOpen;
  double dispatch_seconds = 0;
  double complete_seconds = 0;
  double sim_seconds = 0;
  bool failed = false;
};

struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  ///< requests whose batch executor threw
  std::uint64_t batches = 0;
  std::uint64_t full_closes = 0;
  std::uint64_t deadline_closes = 0;
  std::uint64_t drain_closes = 0;
};

class Server {
 public:
  Server(BatchExecutor exec, ServeOptions opts);
  ~Server();  ///< drains

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one query (must be dim floats). Returns the result future, or
  /// nullopt — the explicit backpressure signal — when the queue is at
  /// capacity or the server is draining. Thread-safe.
  std::optional<std::future<RequestResult>> try_submit(
      std::span<const float> query);

  /// Graceful shutdown: stop admitting, serve everything already queued,
  /// stop the batcher thread. Idempotent; the destructor calls it too.
  void drain();

  ServeStats stats() const;
  /// Stable only after drain() (the batcher thread appends to them).
  const std::vector<RequestRecord>& request_log() const { return requests_; }
  const std::vector<BatchRecord>& batch_log() const { return batches_; }

  /// Wall-clock seconds since server construction — the time base of every
  /// timestamp above.
  double now_seconds() const;

 private:
  void worker_loop();
  void execute_batch(std::vector<Request> reqs, BatchClose close);

  ServeOptions opts_;
  BatchExecutor exec_;
  RequestQueue queue_;
  obs::MetricsSink sink_;
  std::chrono::steady_clock::time_point t0_;
  std::atomic<std::uint64_t> next_id_{0};

  mutable std::mutex stats_mu_;
  ServeStats stats_;
  std::vector<RequestRecord> requests_;
  std::vector<BatchRecord> batches_;

  std::thread worker_;
  std::once_flag drained_;
};

/// Latency/queue-wait digest of a finished run.
struct ServeSummary {
  std::size_t n = 0;
  double p50 = 0, p99 = 0, mean = 0, max = 0;       ///< request latency
  double mean_queue_wait = 0;
  double mean_batch_fill = 0;  ///< batch size / max_batch
  double duration_seconds = 0; ///< first enqueue to last completion
  double achieved_qps = 0;     ///< completed / duration
};
ServeSummary summarize(const std::vector<RequestRecord>& requests,
                       const std::vector<BatchRecord>& batches,
                       const BatchPolicy& policy);

/// Append one span tree per request to the PR 6 span forest: a "request"
/// root with "queue-wait" and "exec" children, query = request id.
void append_request_spans(obs::SpanLog& log,
                          const std::vector<RequestRecord>& requests);

/// {"summary": {...}, "stats": {...}} — the serve half of the CLI's
/// --metrics-out artifact.
std::string serve_report_json(const ServeSummary& summary,
                              const ServeStats& stats);

}  // namespace upanns::serve
