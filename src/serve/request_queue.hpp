// The concurrent admission queue of the online serving front-end: a bounded
// MPSC queue fed by per-client submitter threads and drained by the server's
// batcher thread. Admission control is explicit — try_push fails (instead of
// blocking) when the queue is at capacity, which is the backpressure signal
// an overloaded server returns to its clients; close() starts a graceful
// drain (no new requests, everything already queued still completes).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "common/topk.hpp"

namespace upanns::serve {

/// What a completed request hands back through its future.
struct RequestResult {
  std::uint64_t id = 0;  ///< submission-order request id (0-based)
  std::vector<common::Neighbor> neighbors;  ///< final top-k, ascending
  // Server-clock timestamps (seconds since server start).
  double enqueue_seconds = 0;   ///< admitted into the queue
  double batch_seconds = 0;     ///< the owning batch closed / dispatched
  double complete_seconds = 0;  ///< results available
  std::size_t batch_index = 0;  ///< which formed batch served it
  std::size_t batch_size = 0;   ///< how many requests shared that batch
};

/// One admitted, not-yet-served request.
struct Request {
  std::uint64_t id = 0;
  std::vector<float> query;
  double enqueue_seconds = 0;
  std::promise<RequestResult> promise;
};

class RequestQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admit a request. Returns false — without blocking — when the queue is
  /// full (backpressure) or closed (draining); the caller owns the rejected
  /// request and its promise.
  bool try_push(Request&& r);

  /// Stop admitting. Requests already queued remain poppable so a draining
  /// server can finish them.
  void close();
  bool closed() const;

  std::size_t size() const;

  /// Block until the queue is non-empty or closed. Returns false only when
  /// closed *and* empty (the batcher's exit condition).
  bool wait_nonempty();

  /// Block until `target` requests wait, the queue closes, or `deadline`
  /// passes — the three batch-close triggers of serve::BatchPolicy.
  void wait_closeable(std::size_t target,
                      std::chrono::steady_clock::time_point deadline);

  /// Enqueue time of the oldest waiting request (requires size() > 0).
  double front_enqueue_seconds() const;

  /// Pop up to max_n requests in FIFO order.
  std::vector<Request> pop_batch(std::size_t max_n);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> q_;
  bool closed_ = false;
};

}  // namespace upanns::serve
