// Cluster-level workload statistics: sizes s_i, access frequencies f_i and
// the per-cluster workload estimate W_i = s_i * f_i that drives Algorithm 1.
// Also provides the skew diagnostics plotted in paper Fig 4.
#pragma once

#include <cstdint>
#include <vector>

#include "data/query_workload.hpp"
#include "ivf/ivf_index.hpp"

namespace upanns::ivf {

struct ClusterStats {
  std::vector<std::size_t> sizes;     ///< s_i, vectors per cluster
  std::vector<double> frequencies;    ///< f_i, normalized access frequencies
  std::vector<double> workloads;      ///< W_i = s_i * f_i

  std::size_t n_clusters() const { return sizes.size(); }
  double total_workload() const;
  /// W-bar for ndpu DPUs: (1/n) * sum(W_i).
  double average_workload(std::size_t ndpu) const;
};

/// Collect stats by replaying a query history (each entry = filtered cluster
/// ids of one past query) against the index.
ClusterStats collect_stats(const IvfIndex& index,
                           const std::vector<std::vector<std::uint32_t>>& history);

/// Run cluster filtering for a query batch; returns per-query probe lists.
/// This is both the online stage (a) and the history generator for stats.
std::vector<std::vector<std::uint32_t>> filter_batch(const IvfIndex& index,
                                                     const data::Dataset& queries,
                                                     std::size_t nprobe);

/// Skew diagnostics for Fig 4: frequency, size and workload spreads.
struct SkewReport {
  double freq_max_over_min_nonzero = 0;   ///< ~500x in SPACEV1B (Fig 4a)
  double size_max_over_min_nonzero = 0;   ///< ~1e6x at billion scale (Fig 4b)
  double workload_max_over_mean = 0;      ///< hot-DPU potential (Fig 4c)
};

SkewReport analyze_skew(const ClusterStats& stats);

}  // namespace upanns::ivf
