// The IVFPQ index (offline phase of Fig 2): a coarse k-means quantizer
// partitions the base set into |C| clusters; every point is PQ-encoded as the
// residual against its cluster centroid. The inverted lists produced here are
// the unit of placement for the PIM engine and the unit of scanning for every
// architecture baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "quant/pq.hpp"

namespace upanns::ivf {

struct IvfBuildOptions {
  std::size_t n_clusters = 256;      ///< |C| (paper sweeps 4096/8192/16384)
  std::size_t pq_m = 16;             ///< PQ code bytes per vector
  std::size_t coarse_iters = 12;
  std::size_t pq_iters = 10;
  std::uint64_t seed = 2024;
  /// Training subsample caps (0 = use all points).
  std::size_t coarse_train_points = 65536;
  std::size_t pq_train_points = 65536;
};

/// One inverted list: original vector ids plus their PQ codes (size x m).
struct InvertedList {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint8_t> codes;

  std::size_t size() const { return ids.size(); }
  const std::uint8_t* code(std::size_t i, std::size_t m) const {
    return codes.data() + i * m;
  }
};

class IvfIndex {
 public:
  /// Build from a dataset. Throws on invalid options.
  static IvfIndex build(const data::Dataset& base, const IvfBuildOptions& opts);

  std::size_t n_clusters() const { return n_clusters_; }
  std::size_t dim() const { return dim_; }
  std::size_t n_points() const { return n_points_; }
  std::size_t pq_m() const { return pq_.m(); }

  const quant::ProductQuantizer& pq() const { return pq_; }
  std::span<const float> centroids() const { return centroids_; }
  const float* centroid(std::size_t c) const { return centroids_.data() + c * dim_; }
  const InvertedList& list(std::size_t c) const { return lists_[c]; }
  const std::vector<InvertedList>& lists() const { return lists_; }

  std::vector<std::size_t> list_sizes() const;

  /// Stage (a) of the online pipeline: rank clusters by centroid distance and
  /// return the nprobe closest ids (ascending by distance).
  std::vector<std::uint32_t> filter_clusters(const float* query,
                                             std::size_t nprobe) const;

  /// Residual of `vec` against centroid c into `out` (dim floats).
  void residual(const float* vec, std::size_t c, float* out) const;

  /// Bytes a cluster's codes occupy (the MRAM footprint of its list).
  std::size_t list_code_bytes(std::size_t c) const {
    return lists_[c].codes.size();
  }

  /// Persist / restore the full index (centroids, PQ codebooks, inverted
  /// lists). Building a billion-scale index is expensive; production
  /// deployments train once and reload. Throws std::runtime_error on IO or
  /// format errors.
  void save(const std::string& path) const;
  static IvfIndex load(const std::string& path);

 private:
  std::size_t dim_ = 0;
  std::size_t n_clusters_ = 0;
  std::size_t n_points_ = 0;
  std::vector<float> centroids_;  // n_clusters x dim
  quant::ProductQuantizer pq_;
  std::vector<InvertedList> lists_;
};

}  // namespace upanns::ivf
