// The IVFPQ index (offline phase of Fig 2): a coarse k-means quantizer
// partitions the base set into |C| clusters; every point is PQ-encoded as the
// residual against its cluster centroid. The inverted lists produced here are
// the unit of placement for the PIM engine and the unit of scanning for every
// architecture baseline.
//
// Streaming mutability: the quantizers (centroids + PQ codebooks) are frozen
// at build time, but the inverted lists are updatable — insert() PQ-encodes
// new points against the frozen quantizers and appends, remove() marks a
// tombstone, compact() physically rewrites lists whose dead fraction passed a
// threshold. Each list carries a generation counter so downstream consumers
// (the PIM engine's MRAM images) can patch only what changed.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "quant/pq.hpp"

namespace upanns::obs {
class MetricsRegistry;
}

namespace upanns::ivf {

struct IvfBuildOptions {
  std::size_t n_clusters = 256;      ///< |C| (paper sweeps 4096/8192/16384)
  std::size_t pq_m = 16;             ///< PQ code bytes per vector
  std::size_t coarse_iters = 12;
  std::size_t pq_iters = 10;
  std::uint64_t seed = 2024;
  /// Training subsample caps (0 = use all points).
  std::size_t coarse_train_points = 65536;
  std::size_t pq_train_points = 65536;
  /// Build-phase worker threads: 0 = the global pool, 1 = serial, N > 1 runs
  /// training on a dedicated N-thread pool. Output is identical for every
  /// value (fixed-chunk reductions; see DESIGN.md §13).
  std::size_t n_threads = 0;
  /// Mini-batch fraction for the coarse k-means (1.0 = full-batch Lloyd).
  double coarse_batch_fraction = 1.0;
  /// When set, build() books the build.* gauges here.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Wall-clock breakdown of one build() call, mirrored into the build.*
/// metrics and the `build` trace lane.
struct BuildStats {
  double kmeans_seconds = 0.0;    ///< coarse k-means++ seeding + iterations
  double assign_seconds = 0.0;    ///< coarse full-dataset labeling
  double residual_seconds = 0.0;  ///< residual materialization
  double pq_train_seconds = 0.0;  ///< PQ codebook training (m subspaces)
  double encode_seconds = 0.0;    ///< PQ encode + inverted-list fill
  double total_seconds = 0.0;
};

/// One inverted list: original vector ids plus their PQ codes (size x m).
/// Mutation state: `tombstones` is a per-slot dead mask (empty when the list
/// has never seen a remove — the read-only fast paths branch on that once),
/// `generation` bumps on every mutation, and `compact_epoch` bumps only when
/// slots are physically rewritten (so consumers can tell "appended/nulled in
/// place" from "everything moved").
struct InvertedList {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint8_t> codes;
  std::vector<std::uint8_t> tombstones;  ///< 1 = dead; empty = none dead
  std::uint32_t n_tombstones = 0;
  std::uint32_t generation = 0;
  std::uint32_t compact_epoch = 0;

  std::size_t size() const { return ids.size(); }  ///< physical slots (scan cost)
  std::size_t live_size() const { return ids.size() - n_tombstones; }
  bool has_tombstones() const { return n_tombstones != 0; }
  bool is_dead(std::size_t i) const {
    return !tombstones.empty() && tombstones[i] != 0;
  }
  double tombstone_ratio() const {
    return ids.empty() ? 0.0
                       : static_cast<double>(n_tombstones) /
                             static_cast<double>(ids.size());
  }
  const std::uint8_t* code(std::size_t i, std::size_t m) const {
    return codes.data() + i * m;
  }
};

class IvfIndex {
 public:
  IvfIndex() = default;
  // The lazily built id directory is a cache; copies/moves drop it and
  // rebuild on the next mutation.
  IvfIndex(const IvfIndex& other);
  IvfIndex& operator=(const IvfIndex& other);
  IvfIndex(IvfIndex&&) = default;
  IvfIndex& operator=(IvfIndex&&) = default;

  /// Build from a dataset. Throws on invalid options.
  static IvfIndex build(const data::Dataset& base, const IvfBuildOptions& opts,
                        BuildStats* stats = nullptr);

  /// An empty index sharing another's frozen quantizers (centroids + PQ):
  /// the substrate for rebuild-equivalence parity checks — insert the
  /// surviving points of a mutated index here and searches must agree.
  static IvfIndex empty_like(const IvfIndex& other);

  std::size_t n_clusters() const { return n_clusters_; }
  std::size_t dim() const { return dim_; }
  /// Live point count (physical slots minus tombstones).
  std::size_t n_points() const { return n_points_; }
  std::size_t pq_m() const { return pq_.m(); }

  const quant::ProductQuantizer& pq() const { return pq_; }
  std::span<const float> centroids() const { return centroids_; }
  const float* centroid(std::size_t c) const { return centroids_.data() + c * dim_; }
  const InvertedList& list(std::size_t c) const { return lists_[c]; }
  const std::vector<InvertedList>& lists() const { return lists_; }

  /// Physical slot counts per list (tombstoned slots still cost a scan
  /// until compacted, so placement/scheduling weigh them).
  std::vector<std::size_t> list_sizes() const;

  /// Stage (a) of the online pipeline: rank clusters by centroid distance and
  /// return the nprobe closest ids (ascending by distance).
  std::vector<std::uint32_t> filter_clusters(const float* query,
                                             std::size_t nprobe) const;

  /// Residual of `vec` against centroid c into `out` (dim floats).
  void residual(const float* vec, std::size_t c, float* out) const;

  /// Bytes a cluster's codes occupy (the MRAM footprint of its list).
  std::size_t list_code_bytes(std::size_t c) const {
    return lists_[c].codes.size();
  }

  // ----- Streaming mutation (quantizers stay frozen) -----

  /// Nearest centroid of `vec` — the coarse assignment insert() uses.
  std::size_t assign_cluster(const float* vec) const;

  /// Insert `n` vectors (row-major, n x dim) under the given ids: each is
  /// assigned to its nearest centroid, PQ-encoded as a residual against the
  /// frozen quantizers and appended to that cluster's list. Throws
  /// std::invalid_argument on a duplicate live id or size mismatch.
  void insert(std::span<const std::uint32_t> ids, std::span<const float> vectors);

  /// Tombstone one id. Returns false when the id is absent (or already
  /// dead). The slot keeps costing a scan until compact().
  bool remove(std::uint32_t id);

  bool contains(std::uint32_t id) const;

  /// Physically rewrite every list whose tombstone ratio exceeds
  /// `min_tombstone_ratio` (default 0: any tombstoned list). Returns the
  /// number of lists compacted. Rewritten lists bump both generation and
  /// compact_epoch.
  std::size_t compact(double min_tombstone_ratio = 0.0);

  /// Bumps on every insert/remove/compact — a cheap dirtiness check for
  /// consumers that mirror list state (the engine's MRAM images).
  std::uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Persist / restore the full index (centroids, PQ codebooks, inverted
  /// lists). Building a billion-scale index is expensive; production
  /// deployments train once and reload. Throws std::runtime_error on IO or
  /// format errors. `version` selects the file format: 2 (current, carries
  /// tombstones + generations) or 1 (pre-mutability layout; refuses when any
  /// tombstone would be dropped).
  void save(const std::string& path) const;
  void save(const std::string& path, std::uint32_t version) const;
  static IvfIndex load(const std::string& path);

 private:
  struct SlotRef {
    std::uint32_t cluster;
    std::uint32_t pos;
  };

  /// Lazily build (and incrementally maintain) the id -> slot directory.
  /// Read-only indexes never pay for it.
  void ensure_directory();
  void index_list_into_directory(std::uint32_t c);

  std::size_t dim_ = 0;
  std::size_t n_clusters_ = 0;
  std::size_t n_points_ = 0;  ///< live points
  std::vector<float> centroids_;  // n_clusters x dim
  quant::ProductQuantizer pq_;
  std::vector<InvertedList> lists_;

  std::uint64_t mutation_epoch_ = 0;
  std::unique_ptr<std::unordered_map<std::uint32_t, SlotRef>> directory_;
};

}  // namespace upanns::ivf
