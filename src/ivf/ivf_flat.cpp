#include "ivf/ivf_flat.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"
#include "quant/kmeans.hpp"

namespace upanns::ivf {

IvfFlatIndex IvfFlatIndex::build(const data::Dataset& base,
                                 const IvfFlatBuildOptions& opts) {
  if (base.empty()) throw std::invalid_argument("IvfFlatIndex: empty dataset");
  IvfFlatIndex idx;
  idx.dim_ = base.dim;
  idx.n_points_ = base.n;

  quant::KMeansOptions ko;
  ko.n_clusters = opts.n_clusters;
  ko.max_iters = opts.coarse_iters;
  ko.seed = opts.seed;
  ko.max_training_points = opts.coarse_train_points;
  quant::KMeansResult coarse = quant::kmeans(base.span(), base.n, base.dim, ko);
  idx.n_clusters_ = coarse.n_clusters;
  idx.centroids_ = std::move(coarse.centroids);

  idx.ids_.resize(idx.n_clusters_);
  idx.vectors_.resize(idx.n_clusters_);
  for (std::size_t c = 0; c < idx.n_clusters_; ++c) {
    idx.ids_[c].reserve(coarse.sizes[c]);
    idx.vectors_[c].reserve(coarse.sizes[c] * base.dim);
  }
  for (std::size_t i = 0; i < base.n; ++i) {
    const std::uint32_t c = coarse.labels[i];
    idx.ids_[c].push_back(static_cast<std::uint32_t>(i));
    const float* row = base.row(i);
    idx.vectors_[c].insert(idx.vectors_[c].end(), row, row + base.dim);
  }
  return idx;
}

std::vector<std::size_t> IvfFlatIndex::list_sizes() const {
  std::vector<std::size_t> sizes(n_clusters_);
  for (std::size_t c = 0; c < n_clusters_; ++c) sizes[c] = ids_[c].size();
  return sizes;
}

std::vector<std::uint32_t> IvfFlatIndex::filter_clusters(
    const float* query, std::size_t nprobe) const {
  nprobe = std::min(nprobe, n_clusters_);
  common::BoundedMaxHeap heap(nprobe);
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    heap.push(quant::l2_sq(query, centroid(c), dim_),
              static_cast<std::uint32_t>(c));
  }
  auto sorted = heap.take_sorted();
  std::vector<std::uint32_t> out(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) out[i] = sorted[i].id;
  return out;
}

std::vector<common::Neighbor> IvfFlatIndex::search(const float* query,
                                                   std::size_t nprobe,
                                                   std::size_t k) const {
  common::BoundedMaxHeap heap(k);
  for (std::uint32_t c : filter_clusters(query, nprobe)) {
    const auto& vecs = vectors_[c];
    const auto& ids = ids_[c];
    for (std::size_t i = 0; i < ids.size(); ++i) {
      heap.push(quant::l2_sq(query, vecs.data() + i * dim_, dim_), ids[i]);
    }
  }
  return heap.take_sorted();
}

std::vector<std::vector<common::Neighbor>> IvfFlatIndex::search_batch(
    const data::Dataset& queries, std::size_t nprobe, std::size_t k) const {
  std::vector<std::vector<common::Neighbor>> out(queries.n);
  common::ThreadPool::global().parallel_for(
      0, queries.n,
      [&](std::size_t q) { out[q] = search(queries.row(q), nprobe, k); }, 1);
  return out;
}

}  // namespace upanns::ivf
