// Binary persistence for the product quantizer and the IVF index.
// Format: little-endian, magic + version header, then plain scalar fields
// and length-prefixed arrays. No attempt at cross-endian portability — the
// target is checkpoint/restore on one deployment, like Faiss's native files.
#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "ivf/ivf_index.hpp"
#include "quant/pq.hpp"

namespace upanns {

namespace {

constexpr std::uint32_t kPqMagic = 0x55505131;   // "UPQ1"
constexpr std::uint32_t kIvfMagic = 0x55495631;  // "UIV1"
constexpr std::uint32_t kVersion = 1;
// IVF file versions. v1 is the pre-mutability layout (ids + codes per list);
// v2 appends tombstones, generation and compact_epoch per list. v1 files
// keep loading (lists come back fully live, generation 0).
constexpr std::uint32_t kIvfVersionV1 = 1;
constexpr std::uint32_t kIvfVersionV2 = 2;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated input");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is, std::uint64_t sanity_max) {
  const auto n = read_pod<std::uint64_t>(is);
  if (n > sanity_max) throw std::runtime_error("serialize: implausible size");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!is) throw std::runtime_error("serialize: truncated array");
  return v;
}

constexpr std::uint64_t kMaxElems = 1ull << 36;  // sanity ceiling

}  // namespace

namespace quant {

void ProductQuantizer::save(std::ostream& os) const {
  write_pod(os, kPqMagic);
  write_pod(os, kVersion);
  write_pod<std::uint64_t>(os, dim_);
  write_pod<std::uint64_t>(os, m_);
  write_vec(os, codebooks_);
}

ProductQuantizer ProductQuantizer::load_from(std::istream& is) {
  if (read_pod<std::uint32_t>(is) != kPqMagic) {
    throw std::runtime_error("ProductQuantizer::load_from: bad magic");
  }
  if (read_pod<std::uint32_t>(is) != kVersion) {
    throw std::runtime_error("ProductQuantizer::load_from: bad version");
  }
  ProductQuantizer pq;
  pq.dim_ = read_pod<std::uint64_t>(is);
  pq.m_ = read_pod<std::uint64_t>(is);
  if (pq.m_ == 0 || pq.dim_ == 0 || pq.dim_ % pq.m_ != 0) {
    throw std::runtime_error("ProductQuantizer::load_from: bad dims");
  }
  pq.dsub_ = pq.dim_ / pq.m_;
  pq.codebooks_ = read_vec<float>(is, kMaxElems);
  if (pq.codebooks_.size() != pq.m_ * kPqKsub * pq.dsub_) {
    throw std::runtime_error("ProductQuantizer::load_from: bad codebooks");
  }
  pq.rebuild_transposed();
  return pq;
}

}  // namespace quant

namespace ivf {

void IvfIndex::save(const std::string& path) const {
  save(path, kIvfVersionV2);
}

void IvfIndex::save(const std::string& path, std::uint32_t version) const {
  if (version != kIvfVersionV1 && version != kIvfVersionV2) {
    throw std::runtime_error("IvfIndex::save: unsupported version " +
                             std::to_string(version));
  }
  if (version == kIvfVersionV1) {
    // The v1 layout has no tombstone channel; refuse rather than silently
    // resurrect dead points. Callers can compact() first.
    for (const InvertedList& list : lists_) {
      if (list.has_tombstones()) {
        throw std::runtime_error(
            "IvfIndex::save: v1 format cannot represent tombstones "
            "(compact() before downgrading)");
      }
    }
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("IvfIndex::save: cannot open " + path);
  write_pod(os, kIvfMagic);
  write_pod(os, version);
  write_pod<std::uint64_t>(os, dim_);
  write_pod<std::uint64_t>(os, n_clusters_);
  write_pod<std::uint64_t>(os, n_points_);
  write_vec(os, centroids_);
  pq_.save(os);
  for (const InvertedList& list : lists_) {
    write_vec(os, list.ids);
    write_vec(os, list.codes);
    if (version >= kIvfVersionV2) {
      write_vec(os, list.tombstones);
      write_pod<std::uint32_t>(os, list.generation);
      write_pod<std::uint32_t>(os, list.compact_epoch);
    }
  }
  if (!os) throw std::runtime_error("IvfIndex::save: write failed");
}

IvfIndex IvfIndex::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("IvfIndex::load: cannot open " + path);
  if (read_pod<std::uint32_t>(is) != kIvfMagic) {
    throw std::runtime_error("IvfIndex::load: bad magic");
  }
  const std::uint32_t version = read_pod<std::uint32_t>(is);
  if (version != kIvfVersionV1 && version != kIvfVersionV2) {
    throw std::runtime_error("IvfIndex::load: bad version");
  }
  IvfIndex idx;
  idx.dim_ = read_pod<std::uint64_t>(is);
  idx.n_clusters_ = read_pod<std::uint64_t>(is);
  idx.n_points_ = read_pod<std::uint64_t>(is);
  idx.centroids_ = read_vec<float>(is, kMaxElems);
  if (idx.centroids_.size() != idx.n_clusters_ * idx.dim_) {
    throw std::runtime_error("IvfIndex::load: bad centroids");
  }
  idx.pq_ = quant::ProductQuantizer::load_from(is);
  if (idx.pq_.dim() != idx.dim_) {
    throw std::runtime_error("IvfIndex::load: PQ/index dim mismatch");
  }
  idx.lists_.resize(idx.n_clusters_);
  std::size_t total_live = 0;
  for (InvertedList& list : idx.lists_) {
    list.ids = read_vec<std::uint32_t>(is, kMaxElems);
    list.codes = read_vec<std::uint8_t>(is, kMaxElems);
    if (list.codes.size() != list.ids.size() * idx.pq_.m()) {
      throw std::runtime_error("IvfIndex::load: list size mismatch");
    }
    if (version >= kIvfVersionV2) {
      list.tombstones = read_vec<std::uint8_t>(is, kMaxElems);
      if (!list.tombstones.empty() &&
          list.tombstones.size() != list.ids.size()) {
        throw std::runtime_error("IvfIndex::load: tombstone size mismatch");
      }
      list.n_tombstones = 0;
      for (std::uint8_t t : list.tombstones) list.n_tombstones += t != 0;
      if (list.n_tombstones == 0) list.tombstones.clear();
      list.generation = read_pod<std::uint32_t>(is);
      list.compact_epoch = read_pod<std::uint32_t>(is);
    }
    total_live += list.live_size();
  }
  if (total_live != idx.n_points_) {
    throw std::runtime_error("IvfIndex::load: point count mismatch");
  }
  return idx;
}

}  // namespace ivf
}  // namespace upanns
