#include "ivf/cluster_stats.hpp"

#include <algorithm>
#include <limits>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace upanns::ivf {

double ClusterStats::total_workload() const {
  double t = 0;
  for (double w : workloads) t += w;
  return t;
}

double ClusterStats::average_workload(std::size_t ndpu) const {
  if (ndpu == 0) return 0;
  return total_workload() / static_cast<double>(ndpu);
}

ClusterStats collect_stats(
    const IvfIndex& index,
    const std::vector<std::vector<std::uint32_t>>& history) {
  ClusterStats stats;
  stats.sizes = index.list_sizes();
  stats.frequencies =
      data::estimate_frequencies(history, index.n_clusters());
  stats.workloads.resize(index.n_clusters());
  for (std::size_t c = 0; c < index.n_clusters(); ++c) {
    stats.workloads[c] =
        static_cast<double>(stats.sizes[c]) * stats.frequencies[c];
  }
  return stats;
}

std::vector<std::vector<std::uint32_t>> filter_batch(const IvfIndex& index,
                                                     const data::Dataset& queries,
                                                     std::size_t nprobe) {
  std::vector<std::vector<std::uint32_t>> probes(queries.n);
  common::ThreadPool::global().parallel_for(
      0, queries.n,
      [&](std::size_t q) {
        probes[q] = index.filter_clusters(queries.row(q), nprobe);
      },
      8);
  return probes;
}

SkewReport analyze_skew(const ClusterStats& stats) {
  SkewReport r;
  double fmin = std::numeric_limits<double>::infinity(), fmax = 0;
  double smin = std::numeric_limits<double>::infinity(), smax = 0;
  for (std::size_t c = 0; c < stats.n_clusters(); ++c) {
    if (stats.frequencies[c] > 0) {
      fmin = std::min(fmin, stats.frequencies[c]);
      fmax = std::max(fmax, stats.frequencies[c]);
    }
    if (stats.sizes[c] > 0) {
      smin = std::min(smin, static_cast<double>(stats.sizes[c]));
      smax = std::max(smax, static_cast<double>(stats.sizes[c]));
    }
  }
  r.freq_max_over_min_nonzero = fmin > 0 && fmax > 0 ? fmax / fmin : 0;
  r.size_max_over_min_nonzero = smin > 0 && smax > 0 ? smax / smin : 0;
  r.workload_max_over_mean = common::max_over_mean(stats.workloads);
  return r;
}

}  // namespace upanns::ivf
