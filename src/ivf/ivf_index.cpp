#include "ivf/ivf_index.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "common/topk.hpp"
#include "obs/metrics.hpp"
#include "quant/kmeans.hpp"

namespace upanns::ivf {

IvfIndex::IvfIndex(const IvfIndex& other)
    : dim_(other.dim_),
      n_clusters_(other.n_clusters_),
      n_points_(other.n_points_),
      centroids_(other.centroids_),
      pq_(other.pq_),
      lists_(other.lists_),
      mutation_epoch_(other.mutation_epoch_) {}

IvfIndex& IvfIndex::operator=(const IvfIndex& other) {
  if (this == &other) return *this;
  dim_ = other.dim_;
  n_clusters_ = other.n_clusters_;
  n_points_ = other.n_points_;
  centroids_ = other.centroids_;
  pq_ = other.pq_;
  lists_ = other.lists_;
  mutation_epoch_ = other.mutation_epoch_;
  directory_.reset();
  return *this;
}

IvfIndex IvfIndex::build(const data::Dataset& base, const IvfBuildOptions& opts,
                         BuildStats* stats) {
  if (base.empty()) throw std::invalid_argument("IvfIndex: empty dataset");
  if (opts.pq_m == 0 || base.dim % opts.pq_m != 0) {
    throw std::invalid_argument("IvfIndex: dim must be divisible by pq_m");
  }
  IvfIndex idx;
  idx.dim_ = base.dim;
  idx.n_points_ = base.n;

  const auto t_start = std::chrono::steady_clock::now();
  auto seconds_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // --build-threads N > 1 pins training to a dedicated pool; 0/1 use the
  // global pool / run serial. Identical output either way.
  std::unique_ptr<common::ThreadPool> own_pool;
  common::ThreadPool* pool = nullptr;
  if (opts.n_threads > 1 &&
      opts.n_threads != common::ThreadPool::global().size()) {
    own_pool = std::make_unique<common::ThreadPool>(opts.n_threads);
    pool = own_pool.get();
  }

  // 1. Coarse quantizer.
  quant::KMeansOptions ko;
  ko.n_clusters = opts.n_clusters;
  ko.max_iters = opts.coarse_iters;
  ko.seed = opts.seed;
  ko.max_training_points = opts.coarse_train_points;
  ko.batch_fraction = opts.coarse_batch_fraction;
  ko.use_threads = opts.n_threads != 1;
  ko.n_threads = opts.n_threads;
  ko.pool = pool;
  quant::KMeansResult coarse = quant::kmeans(base.span(), base.n, base.dim, ko);
  idx.n_clusters_ = coarse.n_clusters;
  idx.centroids_ = std::move(coarse.centroids);

  BuildStats bs;
  bs.kmeans_seconds = coarse.train_seconds;
  bs.assign_seconds = coarse.assign_seconds;

  // 2. Residuals for PQ training (subsampled implicitly by PQ options).
  const auto t_residual = std::chrono::steady_clock::now();
  std::vector<float> residuals(base.n * base.dim);
  common::ThreadPool::global().parallel_for(
      0, base.n,
      [&](std::size_t i) {
        const float* p = base.row(i);
        const float* c = idx.centroid(coarse.labels[i]);
        float* r = residuals.data() + i * base.dim;
        for (std::size_t d = 0; d < base.dim; ++d) r[d] = p[d] - c[d];
      },
      512);
  bs.residual_seconds = seconds_since(t_residual);

  const auto t_pq = std::chrono::steady_clock::now();
  quant::PqOptions po;
  po.m = opts.pq_m;
  po.train_iters = opts.pq_iters;
  po.seed = opts.seed + 1;
  po.max_training_points = opts.pq_train_points;
  po.use_threads = opts.n_threads != 1;
  po.n_threads = opts.n_threads;
  po.pool = pool;
  idx.pq_.train(residuals, base.n, base.dim, po);
  bs.pq_train_seconds = seconds_since(t_pq);

  // 3. Encode everything and fill inverted lists.
  const auto t_encode = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> codes(base.n * opts.pq_m);
  idx.pq_.encode_batch(residuals, base.n, codes.data());

  idx.lists_.resize(idx.n_clusters_);
  for (std::size_t c = 0; c < idx.n_clusters_; ++c) {
    idx.lists_[c].ids.reserve(coarse.sizes[c]);
    idx.lists_[c].codes.reserve(coarse.sizes[c] * opts.pq_m);
  }
  for (std::size_t i = 0; i < base.n; ++i) {
    InvertedList& list = idx.lists_[coarse.labels[i]];
    list.ids.push_back(static_cast<std::uint32_t>(i));
    const std::uint8_t* code = codes.data() + i * opts.pq_m;
    list.codes.insert(list.codes.end(), code, code + opts.pq_m);
  }
  bs.encode_seconds = seconds_since(t_encode);
  bs.total_seconds = seconds_since(t_start);

  if (opts.metrics) {
    obs::MetricsRegistry& reg = *opts.metrics;
    reg.gauge("build.kmeans_seconds").set(bs.kmeans_seconds);
    reg.gauge("build.assign_seconds").set(bs.assign_seconds);
    reg.gauge("build.residual_seconds").set(bs.residual_seconds);
    reg.gauge("build.pq_train_seconds").set(bs.pq_train_seconds);
    reg.gauge("build.encode_seconds").set(bs.encode_seconds);
    reg.gauge("build.total_seconds").set(bs.total_seconds);
  }
  if (stats) *stats = bs;
  return idx;
}

IvfIndex IvfIndex::empty_like(const IvfIndex& other) {
  IvfIndex idx;
  idx.dim_ = other.dim_;
  idx.n_clusters_ = other.n_clusters_;
  idx.n_points_ = 0;
  idx.centroids_ = other.centroids_;
  idx.pq_ = other.pq_;
  idx.lists_.resize(idx.n_clusters_);
  return idx;
}

std::vector<std::size_t> IvfIndex::list_sizes() const {
  std::vector<std::size_t> sizes(lists_.size());
  for (std::size_t c = 0; c < lists_.size(); ++c) sizes[c] = lists_[c].size();
  return sizes;
}

std::vector<std::uint32_t> IvfIndex::filter_clusters(const float* query,
                                                     std::size_t nprobe) const {
  nprobe = std::min(nprobe, n_clusters_);
  common::BoundedMaxHeap heap(nprobe);
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    const float d = quant::l2_sq(query, centroid(c), dim_);
    heap.push(d, static_cast<std::uint32_t>(c));
  }
  auto sorted = heap.take_sorted();
  std::vector<std::uint32_t> ids(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) ids[i] = sorted[i].id;
  return ids;
}

void IvfIndex::residual(const float* vec, std::size_t c, float* out) const {
  const float* ctr = centroid(c);
  for (std::size_t d = 0; d < dim_; ++d) out[d] = vec[d] - ctr[d];
}

std::size_t IvfIndex::assign_cluster(const float* vec) const {
  std::size_t best = 0;
  float best_d = quant::l2_sq(vec, centroid(0), dim_);
  for (std::size_t c = 1; c < n_clusters_; ++c) {
    const float d = quant::l2_sq(vec, centroid(c), dim_);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

void IvfIndex::index_list_into_directory(std::uint32_t c) {
  const InvertedList& list = lists_[c];
  for (std::size_t i = 0; i < list.ids.size(); ++i) {
    if (list.is_dead(i)) continue;
    (*directory_)[list.ids[i]] = {c, static_cast<std::uint32_t>(i)};
  }
}

void IvfIndex::ensure_directory() {
  if (directory_) return;
  directory_ = std::make_unique<std::unordered_map<std::uint32_t, SlotRef>>();
  directory_->reserve(n_points_);
  for (std::uint32_t c = 0; c < n_clusters_; ++c) index_list_into_directory(c);
}

void IvfIndex::insert(std::span<const std::uint32_t> ids,
                      std::span<const float> vectors) {
  if (!pq_.trained()) throw std::logic_error("IvfIndex::insert: not built");
  if (vectors.size() != ids.size() * dim_) {
    throw std::invalid_argument("IvfIndex::insert: ids/vectors size mismatch");
  }
  ensure_directory();
  const std::size_t m = pq_.m();
  std::vector<float> res(dim_);
  std::vector<std::uint8_t> code(m);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (directory_->count(ids[i]) > 0) {
      throw std::invalid_argument("IvfIndex::insert: duplicate id " +
                                  std::to_string(ids[i]));
    }
    const float* vec = vectors.data() + i * dim_;
    const std::size_t c = assign_cluster(vec);
    residual(vec, c, res.data());
    pq_.encode(res.data(), code.data());

    InvertedList& list = lists_[c];
    list.ids.push_back(ids[i]);
    list.codes.insert(list.codes.end(), code.begin(), code.end());
    if (!list.tombstones.empty()) list.tombstones.push_back(0);
    ++list.generation;
    (*directory_)[ids[i]] = {static_cast<std::uint32_t>(c),
                             static_cast<std::uint32_t>(list.ids.size() - 1)};
    ++n_points_;
  }
  if (!ids.empty()) ++mutation_epoch_;
}

bool IvfIndex::contains(std::uint32_t id) const {
  if (directory_) return directory_->count(id) > 0;
  for (const InvertedList& list : lists_) {
    for (std::size_t i = 0; i < list.ids.size(); ++i) {
      if (list.ids[i] == id && !list.is_dead(i)) return true;
    }
  }
  return false;
}

bool IvfIndex::remove(std::uint32_t id) {
  ensure_directory();
  const auto it = directory_->find(id);
  if (it == directory_->end()) return false;
  InvertedList& list = lists_[it->second.cluster];
  if (list.tombstones.empty()) list.tombstones.assign(list.ids.size(), 0);
  assert(!list.is_dead(it->second.pos));
  list.tombstones[it->second.pos] = 1;
  ++list.n_tombstones;
  ++list.generation;
  directory_->erase(it);
  --n_points_;
  ++mutation_epoch_;
  return true;
}

std::size_t IvfIndex::compact(double min_tombstone_ratio) {
  std::size_t compacted = 0;
  const std::size_t m = pq_.m();
  for (std::uint32_t c = 0; c < n_clusters_; ++c) {
    InvertedList& list = lists_[c];
    if (list.n_tombstones == 0 ||
        list.tombstone_ratio() < min_tombstone_ratio) {
      continue;
    }
    std::size_t w = 0;
    for (std::size_t i = 0; i < list.ids.size(); ++i) {
      if (list.is_dead(i)) continue;
      if (w != i) {
        list.ids[w] = list.ids[i];
        std::copy_n(list.codes.data() + i * m, m, list.codes.data() + w * m);
      }
      ++w;
    }
    list.ids.resize(w);
    list.codes.resize(w * m);
    list.tombstones.clear();
    list.n_tombstones = 0;
    ++list.generation;
    ++list.compact_epoch;
    ++compacted;
    // Surviving slots moved; refresh their directory positions.
    if (directory_) index_list_into_directory(c);
  }
  if (compacted > 0) ++mutation_epoch_;
  return compacted;
}

}  // namespace upanns::ivf
