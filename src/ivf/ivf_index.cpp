#include "ivf/ivf_index.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "common/topk.hpp"
#include "quant/kmeans.hpp"

namespace upanns::ivf {

IvfIndex IvfIndex::build(const data::Dataset& base, const IvfBuildOptions& opts) {
  if (base.empty()) throw std::invalid_argument("IvfIndex: empty dataset");
  if (opts.pq_m == 0 || base.dim % opts.pq_m != 0) {
    throw std::invalid_argument("IvfIndex: dim must be divisible by pq_m");
  }
  IvfIndex idx;
  idx.dim_ = base.dim;
  idx.n_points_ = base.n;

  // 1. Coarse quantizer.
  quant::KMeansOptions ko;
  ko.n_clusters = opts.n_clusters;
  ko.max_iters = opts.coarse_iters;
  ko.seed = opts.seed;
  ko.max_training_points = opts.coarse_train_points;
  quant::KMeansResult coarse = quant::kmeans(base.span(), base.n, base.dim, ko);
  idx.n_clusters_ = coarse.n_clusters;
  idx.centroids_ = std::move(coarse.centroids);

  // 2. Residuals for PQ training (subsampled implicitly by PQ options).
  std::vector<float> residuals(base.n * base.dim);
  common::ThreadPool::global().parallel_for(
      0, base.n,
      [&](std::size_t i) {
        const float* p = base.row(i);
        const float* c = idx.centroid(coarse.labels[i]);
        float* r = residuals.data() + i * base.dim;
        for (std::size_t d = 0; d < base.dim; ++d) r[d] = p[d] - c[d];
      },
      512);

  quant::PqOptions po;
  po.m = opts.pq_m;
  po.train_iters = opts.pq_iters;
  po.seed = opts.seed + 1;
  po.max_training_points = opts.pq_train_points;
  idx.pq_.train(residuals, base.n, base.dim, po);

  // 3. Encode everything and fill inverted lists.
  std::vector<std::uint8_t> codes(base.n * opts.pq_m);
  idx.pq_.encode_batch(residuals, base.n, codes.data());

  idx.lists_.resize(idx.n_clusters_);
  for (std::size_t c = 0; c < idx.n_clusters_; ++c) {
    idx.lists_[c].ids.reserve(coarse.sizes[c]);
    idx.lists_[c].codes.reserve(coarse.sizes[c] * opts.pq_m);
  }
  for (std::size_t i = 0; i < base.n; ++i) {
    InvertedList& list = idx.lists_[coarse.labels[i]];
    list.ids.push_back(static_cast<std::uint32_t>(i));
    const std::uint8_t* code = codes.data() + i * opts.pq_m;
    list.codes.insert(list.codes.end(), code, code + opts.pq_m);
  }
  return idx;
}

std::vector<std::size_t> IvfIndex::list_sizes() const {
  std::vector<std::size_t> sizes(lists_.size());
  for (std::size_t c = 0; c < lists_.size(); ++c) sizes[c] = lists_[c].size();
  return sizes;
}

std::vector<std::uint32_t> IvfIndex::filter_clusters(const float* query,
                                                     std::size_t nprobe) const {
  nprobe = std::min(nprobe, n_clusters_);
  common::BoundedMaxHeap heap(nprobe);
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    const float d = quant::l2_sq(query, centroid(c), dim_);
    heap.push(d, static_cast<std::uint32_t>(c));
  }
  auto sorted = heap.take_sorted();
  std::vector<std::uint32_t> ids(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) ids[i] = sorted[i].id;
  return ids;
}

void IvfIndex::residual(const float* vec, std::size_t c, float* out) const {
  const float* ctr = centroid(c);
  for (std::size_t d = 0; d < dim_; ++d) out[d] = vec[d] - ctr[d];
}

}  // namespace upanns::ivf
