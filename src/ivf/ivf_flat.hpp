// IVFFlat — the paper's future-work direction ("generalize UpANNS to
// broader ANNS algorithms") instantiated for the simplest member of the IVF
// family: same coarse quantizer and inverted lists, but lists store raw
// float vectors and the scan computes exact L2 distances (no PQ, no LUT).
// It shares the cluster-statistics/placement machinery — per-cluster
// workload is still s_i * f_i — so Opt1/Opt2/Opt4 apply unchanged; only
// Opt3 (CAE) is PQ-specific. The class ships with a host searcher used as
// a recall upper bound and as the substrate for future PIM-flat kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "common/topk.hpp"
#include "data/dataset.hpp"

namespace upanns::ivf {

struct IvfFlatBuildOptions {
  std::size_t n_clusters = 256;
  std::size_t coarse_iters = 10;
  std::uint64_t seed = 2024;
  std::size_t coarse_train_points = 65536;
};

class IvfFlatIndex {
 public:
  static IvfFlatIndex build(const data::Dataset& base,
                            const IvfFlatBuildOptions& opts);

  std::size_t dim() const { return dim_; }
  std::size_t n_clusters() const { return n_clusters_; }
  std::size_t n_points() const { return n_points_; }

  const float* centroid(std::size_t c) const {
    return centroids_.data() + c * dim_;
  }
  std::size_t list_size(std::size_t c) const { return ids_[c].size(); }
  const std::vector<std::uint32_t>& list_ids(std::size_t c) const {
    return ids_[c];
  }
  /// Raw vectors of list c, row-major (list_size x dim).
  const std::vector<float>& list_vectors(std::size_t c) const {
    return vectors_[c];
  }
  std::vector<std::size_t> list_sizes() const;

  std::vector<std::uint32_t> filter_clusters(const float* query,
                                             std::size_t nprobe) const;

  /// Exact search within the nprobe closest clusters.
  std::vector<common::Neighbor> search(const float* query, std::size_t nprobe,
                                       std::size_t k) const;

  /// Batched variant (parallel over queries).
  std::vector<std::vector<common::Neighbor>> search_batch(
      const data::Dataset& queries, std::size_t nprobe, std::size_t k) const;

 private:
  std::size_t dim_ = 0;
  std::size_t n_clusters_ = 0;
  std::size_t n_points_ = 0;
  std::vector<float> centroids_;
  std::vector<std::vector<std::uint32_t>> ids_;
  std::vector<std::vector<float>> vectors_;
};

}  // namespace upanns::ivf
