#include "quant/kmeans.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace upanns::quant {
namespace {

// Well-separated 2-D blobs around (0,0), (10,0), (0,10), (10,10).
std::vector<float> make_blobs(std::size_t per_blob, common::Rng& rng) {
  const float centers[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  std::vector<float> data;
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      data.push_back(c[0] + static_cast<float>(rng.gaussian(0.0, 0.3)));
      data.push_back(c[1] + static_cast<float>(rng.gaussian(0.0, 0.3)));
    }
  }
  return data;
}

TEST(L2Sq, Basic) {
  const float a[3] = {1, 2, 3};
  const float b[3] = {4, 6, 3};
  EXPECT_FLOAT_EQ(l2_sq(a, b, 3), 9.f + 16.f);
  EXPECT_FLOAT_EQ(l2_sq(a, a, 3), 0.f);
}

TEST(NearestCentroid, PicksClosest) {
  const float centroids[4] = {0.f, 0.f, 10.f, 10.f};  // 2 centroids, dim 2
  const float p[2] = {9.f, 9.f};
  const auto [idx, d] = nearest_centroid(p, centroids, 2, 2);
  EXPECT_EQ(idx, 1u);
  EXPECT_FLOAT_EQ(d, 2.f);
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  common::Rng rng(1);
  const auto data = make_blobs(100, rng);
  KMeansOptions opts;
  opts.n_clusters = 4;
  opts.max_iters = 25;
  opts.seed = 5;
  const KMeansResult res = kmeans(data, 400, 2, opts);
  ASSERT_EQ(res.n_clusters, 4u);
  // Every blob maps to exactly one cluster and inertia is tiny.
  EXPECT_LT(res.inertia / 400.0, 1.0);
  for (std::uint32_t s : res.sizes) EXPECT_EQ(s, 100u);
}

TEST(KMeans, LabelsCoverAllPoints) {
  common::Rng rng(2);
  const auto data = make_blobs(50, rng);
  KMeansOptions opts;
  opts.n_clusters = 4;
  const KMeansResult res = kmeans(data, 200, 2, opts);
  EXPECT_EQ(res.labels.size(), 200u);
  std::size_t total = 0;
  for (auto s : res.sizes) total += s;
  EXPECT_EQ(total, 200u);
  for (auto l : res.labels) EXPECT_LT(l, res.n_clusters);
}

TEST(KMeans, DeterministicUnderSeed) {
  common::Rng rng(3);
  const auto data = make_blobs(40, rng);
  KMeansOptions opts;
  opts.n_clusters = 4;
  opts.seed = 9;
  const auto a = kmeans(data, 160, 2, opts);
  const auto b = kmeans(data, 160, 2, opts);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(KMeans, ClampsKToN) {
  std::vector<float> data = {0, 0, 1, 1, 2, 2};  // 3 points, dim 2
  KMeansOptions opts;
  opts.n_clusters = 10;
  const auto res = kmeans(data, 3, 2, opts);
  EXPECT_EQ(res.n_clusters, 3u);
}

TEST(KMeans, SubsamplingStillLabelsAll) {
  common::Rng rng(4);
  const auto data = make_blobs(200, rng);
  KMeansOptions opts;
  opts.n_clusters = 4;
  opts.max_training_points = 100;  // train on 100, label all 800
  const auto res = kmeans(data, 800, 2, opts);
  EXPECT_EQ(res.labels.size(), 800u);
  // Blobs are separated enough that subsampled training still works.
  EXPECT_LT(res.inertia / 100.0, 2.0);
}

TEST(KMeans, SingleCluster) {
  common::Rng rng(5);
  const auto data = make_blobs(25, rng);
  KMeansOptions opts;
  opts.n_clusters = 1;
  const auto res = kmeans(data, 100, 2, opts);
  EXPECT_EQ(res.n_clusters, 1u);
  EXPECT_EQ(res.sizes[0], 100u);
}

TEST(KMeans, InertiaDecreasesVersusOneIteration) {
  common::Rng rng(6);
  const auto data = make_blobs(100, rng);
  KMeansOptions one;
  one.n_clusters = 4;
  one.max_iters = 1;
  one.seed = 3;
  KMeansOptions many = one;
  many.max_iters = 20;
  EXPECT_LE(kmeans(data, 400, 2, many).inertia,
            kmeans(data, 400, 2, one).inertia + 1e-6);
}

TEST(AssignLabels, MatchesNearestCentroid) {
  common::Rng rng(7);
  const auto data = make_blobs(30, rng);
  KMeansOptions opts;
  opts.n_clusters = 4;
  const auto res = kmeans(data, 120, 2, opts);
  const auto labels =
      assign_labels(data, 120, 2, res.centroids, res.n_clusters);
  EXPECT_EQ(labels, res.labels);
}

TEST(KMeans, SerialAndThreadedAgree) {
  common::Rng rng(8);
  const auto data = make_blobs(60, rng);
  KMeansOptions a;
  a.n_clusters = 4;
  a.use_threads = true;
  KMeansOptions b = a;
  b.use_threads = false;
  EXPECT_EQ(kmeans(data, 240, 2, a).labels, kmeans(data, 240, 2, b).labels);
}

// The fixed-chunk reduction contract (DESIGN.md §13): chunk boundaries
// depend only on n, never on worker count, so the training output is
// bit-for-bit identical for serial and for any pool size.
TEST(KMeans, BitIdenticalAcrossPoolSizes) {
  common::Rng rng(9);
  const auto data = make_blobs(400, rng);  // 1600 points, dim 2
  KMeansOptions serial;
  serial.n_clusters = 8;
  serial.seed = 11;
  serial.max_iters = 12;
  serial.use_threads = false;
  const auto want = kmeans(data, 1600, 2, serial);
  for (std::size_t workers = 1; workers <= 4; ++workers) {
    common::ThreadPool pool(workers);
    KMeansOptions opts = serial;
    opts.use_threads = true;
    opts.n_threads = workers;
    opts.pool = &pool;
    const auto got = kmeans(data, 1600, 2, opts);
    EXPECT_EQ(got.centroids, want.centroids) << "workers=" << workers;
    EXPECT_EQ(got.labels, want.labels) << "workers=" << workers;
    EXPECT_EQ(got.sizes, want.sizes) << "workers=" << workers;
  }
}

TEST(KMeans, MiniBatchConvergesOnBlobs) {
  common::Rng rng(10);
  const auto data = make_blobs(200, rng);  // 800 points
  KMeansOptions opts;
  opts.n_clusters = 4;
  opts.seed = 13;
  opts.max_iters = 30;
  opts.batch_fraction = 0.25;
  const auto res = kmeans(data, 800, 2, opts);
  ASSERT_EQ(res.n_clusters, 4u);
  // Well-separated blobs: mini-batch must still land one centroid per blob
  // (tiny per-point inertia) and label every point.
  EXPECT_LT(res.inertia / 800.0, 1.0);
  for (std::uint32_t s : res.sizes) EXPECT_EQ(s, 200u);
}

TEST(KMeans, MiniBatchDeterministicAcrossPoolSizes) {
  common::Rng rng(12);
  const auto data = make_blobs(200, rng);
  KMeansOptions serial;
  serial.n_clusters = 4;
  serial.seed = 21;
  serial.batch_fraction = 0.5;
  serial.use_threads = false;
  const auto want = kmeans(data, 800, 2, serial);
  for (std::size_t workers = 1; workers <= 3; ++workers) {
    common::ThreadPool pool(workers);
    KMeansOptions opts = serial;
    opts.use_threads = true;
    opts.n_threads = workers;
    opts.pool = &pool;
    const auto got = kmeans(data, 800, 2, opts);
    EXPECT_EQ(got.centroids, want.centroids) << "workers=" << workers;
    EXPECT_EQ(got.labels, want.labels) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace upanns::quant
