#include "baselines/cpu_cost_model.hpp"

#include <gtest/gtest.h>

namespace upanns::baselines {
namespace {

// A paper-parameter profile at a given scale (|C|=4096, nprobe=64, M=16).
QueryWorkProfile profile_at(std::size_t n) {
  QueryWorkProfile p;
  p.n_queries = 1000;
  p.n_clusters = 4096;
  p.nprobe = 64;
  p.dim = 128;
  p.m = 16;
  p.k = 10;
  p.dataset_n = n;
  p.total_candidates = p.n_queries * p.nprobe * (n / p.n_clusters);
  p.max_cluster = 4 * (n / p.n_clusters);
  return p;
}

TEST(CpuModel, Fig1MillionScaleLutDominates) {
  const StageTimes t = CpuCostModel::stage_times(profile_at(1'000'000));
  EXPECT_GT(t.lut_build, t.distance_calc);
  EXPECT_GT(t.lut_build, t.cluster_filter);
  EXPECT_GT(t.lut_build, t.topk);
}

TEST(CpuModel, Fig1BillionScaleDistanceDominates) {
  const StageTimes t = CpuCostModel::stage_times(profile_at(1'000'000'000));
  const double share = t.distance_calc / t.total();
  // Paper Fig 19: ~99.5% of CPU query time is distance calculation.
  EXPECT_GT(share, 0.97);
}

TEST(CpuModel, BottleneckShiftsWithScale) {
  // The core Fig 1 observation: the dominant stage flips between 1M and 1B.
  const StageTimes small = CpuCostModel::stage_times(profile_at(1'000'000));
  const StageTimes big = CpuCostModel::stage_times(profile_at(1'000'000'000));
  EXPECT_GT(small.lut_build / small.total(), small.distance_calc / small.total());
  EXPECT_GT(big.distance_calc / big.total(), big.lut_build / big.total());
}

TEST(CpuModel, DistanceTimeSuperlinearInIvfReduction) {
  // Same candidates per probe but shorter lists (higher IVF) lose locality:
  // halving list length must NOT halve scan time (Sec 5.2 discussion).
  QueryWorkProfile coarse = profile_at(1'000'000'000);
  QueryWorkProfile fine = coarse;
  fine.n_clusters *= 4;
  fine.total_candidates /= 4;  // same nprobe, 4x smaller lists
  const double t_coarse =
      CpuCostModel::stage_times(coarse).distance_calc;
  const double t_fine = CpuCostModel::stage_times(fine).distance_calc;
  EXPECT_GT(t_fine, t_coarse / 4.0 * 1.3);
  EXPECT_LT(t_fine, t_coarse);
}

TEST(CpuModel, ScanBytesCountsCodesAndIds) {
  QueryWorkProfile p;
  p.total_candidates = 100;
  p.m = 16;
  EXPECT_EQ(CpuCostModel::scan_bytes(p), 100u * 20);
}

TEST(CpuModel, MoreCandidatesMoreTime) {
  QueryWorkProfile a = profile_at(1'000'000'000);
  QueryWorkProfile b = a;
  b.total_candidates *= 2;
  EXPECT_GT(CpuCostModel::stage_times(b).distance_calc,
            CpuCostModel::stage_times(a).distance_calc);
}

TEST(CpuModel, ScaleProfileLinear) {
  const QueryWorkProfile p = profile_at(1'000'000);
  const QueryWorkProfile s = scale_profile(p, 1'000'000'000);
  EXPECT_EQ(s.dataset_n, 1'000'000'000u);
  EXPECT_EQ(s.total_candidates, p.total_candidates * 1000);
  EXPECT_EQ(s.max_cluster, p.max_cluster * 1000);
  EXPECT_EQ(s.n_clusters, p.n_clusters);  // scale-free
}

TEST(CpuModel, ZeroQueriesZeroTimes) {
  QueryWorkProfile p;
  const StageTimes t = CpuCostModel::stage_times(p);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(StageTimes, TotalAndAccumulate) {
  StageTimes a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(a.total(), 15.0);
  StageTimes b{1, 1, 1, 1, 1};
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), 20.0);
}

}  // namespace
}  // namespace upanns::baselines
