#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace upanns::common {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto x0 = a();
  const auto x1 = a();
  a.reseed(7);
  EXPECT_EQ(a(), x0);
  EXPECT_EQ(a(), x1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-3.f, 7.f);
    EXPECT_GE(v, -3.f);
    EXPECT_LT(v, 7.f);
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double total = 0;
  for (std::size_t r = 0; r < z.size(); ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  ZipfSampler z(50, 1.2);
  for (std::size_t r = 1; r < z.size(); ++r) {
    EXPECT_GE(z.pmf(0), z.pmf(r));
  }
}

TEST(ZipfSampler, SkewMatchesExponent) {
  // With exponent 1.0, pmf(0)/pmf(99) == 100. The sampler reproduces the
  // paper's ~500x access-frequency spread with a few hundred ranks.
  ZipfSampler z(100, 1.0);
  EXPECT_NEAR(z.pmf(0) / z.pmf(99), 100.0, 1.0);
}

TEST(ZipfSampler, EmpiricalFrequenciesDecreasing) {
  ZipfSampler z(20, 1.0);
  Rng rng(19);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[19]);
}

TEST(ZipfSampler, SampleWithinRange) {
  ZipfSampler z(7, 0.8);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(z.sample(rng), 7u);
  }
}

TEST(LogNormalSampler, PositiveAndSkewed) {
  LogNormalSampler s(0.0, 1.6);
  Rng rng(29);
  double mn = 1e30, mx = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = s.sample(rng);
    EXPECT_GT(v, 0.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  // Heavy tail: several orders of magnitude between extremes (Fig 4b).
  EXPECT_GT(mx / mn, 1e3);
}

TEST(Permutation, IsBijective) {
  Rng rng(31);
  const auto p = random_permutation(1000, rng);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(Permutation, ShuffleKeepsElements) {
  Rng rng(37);
  std::vector<std::uint32_t> v{5, 6, 7, 8, 9};
  shuffle_indices(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<std::uint32_t>{5, 6, 7, 8, 9}));
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, CdfMonotone) {
  ZipfSampler z(64, GetParam());
  double prev = 0;
  for (std::size_t r = 0; r < z.size(); ++r) {
    const double p = z.pmf(r);
    EXPECT_GE(p, 0.0);
    if (r > 0) {
      EXPECT_LE(p, prev + 1e-12);
    }
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 1.5, 2.0));

}  // namespace
}  // namespace upanns::common
