#include "core/tuner.hpp"

#include <gtest/gtest.h>

#include "data/query_workload.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(6000, 81));
  ivf::IvfIndex index = build();
  data::Dataset queries;
  std::vector<std::vector<common::Neighbor>> gt;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 32;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 5;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 24;
    spec.seed = 13;
    queries = data::generate_workload(base, spec).queries;
    gt = data::exact_topk(base, queries, 10);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Tuner, CurveIsMonotoneNonDecreasing) {
  auto& f = fixture();
  TuneOptions opts;
  opts.target_recall = 2.0;  // unreachable: forces a full sweep
  opts.grid = {1, 2, 4, 8, 16, 32};
  const auto r = tune_nprobe(f.index, f.queries, f.gt, opts);
  EXPECT_FALSE(r.target_met);
  ASSERT_EQ(r.curve.size(), 6u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].second, r.curve[i - 1].second - 0.02)
        << "nprobe " << r.curve[i].first;
  }
}

TEST(Tuner, StopsAtFirstSatisfyingNprobe) {
  auto& f = fixture();
  TuneOptions opts;
  opts.target_recall = 0.3;  // easy target
  opts.grid = {1, 2, 4, 8, 16, 32};
  const auto r = tune_nprobe(f.index, f.queries, f.gt, opts);
  EXPECT_TRUE(r.target_met);
  EXPECT_GE(r.recall, 0.3);
  EXPECT_EQ(r.curve.size(),
            static_cast<std::size_t>(
                std::find_if(opts.grid.begin(), opts.grid.end(),
                             [&](std::size_t g) { return g == r.nprobe; }) -
                opts.grid.begin()) +
                1);
  // A smaller grid value would have missed the target.
  for (std::size_t i = 0; i + 1 < r.curve.size(); ++i) {
    EXPECT_LT(r.curve[i].second, 0.3);
  }
}

TEST(Tuner, DefaultGridCoversFullIndex) {
  auto& f = fixture();
  TuneOptions opts;
  opts.target_recall = 2.0;
  const auto r = tune_nprobe(f.index, f.queries, f.gt, opts);
  EXPECT_EQ(r.curve.back().first, f.index.n_clusters());
  // Probing everything yields the best achievable PQ recall.
  EXPECT_GT(r.curve.back().second, 0.5);
}

TEST(Tuner, RejectsBadValidation) {
  auto& f = fixture();
  TuneOptions opts;
  data::Dataset empty;
  EXPECT_THROW(tune_nprobe(f.index, empty, {}, opts), std::invalid_argument);
  EXPECT_THROW(tune_nprobe(f.index, f.queries, {}, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace upanns::core
