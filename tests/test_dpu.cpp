#include "pim/dpu.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace upanns::pim {
namespace {

TEST(Dpu, MramAllocAlignsAndTracks) {
  Dpu dpu(3);
  EXPECT_EQ(dpu.id(), 3u);
  const auto a = dpu.mram_alloc(10, "a");
  const auto b = dpu.mram_alloc(8, "b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 16u);
  EXPECT_EQ(dpu.mram_used(), 24u);
}

TEST(Dpu, MramCapacityEnforced) {
  Dpu dpu;
  dpu.mram_alloc(hw::kMramBytes - 64, "bulk");
  EXPECT_THROW(dpu.mram_alloc(128, "over"), std::runtime_error);
}

TEST(Dpu, HostReadWriteRoundTrip) {
  Dpu dpu;
  const auto off = dpu.mram_alloc(32, "buf");
  std::vector<std::uint8_t> in(32);
  std::iota(in.begin(), in.end(), 0);
  dpu.host_write(off, in.data(), in.size());
  std::vector<std::uint8_t> out(32);
  dpu.host_read(off, out.data(), out.size());
  EXPECT_EQ(in, out);
}

TEST(Dpu, MramMarkRewind) {
  Dpu dpu;
  dpu.mram_alloc(64, "static");
  const auto mark = dpu.mram_mark();
  dpu.mram_alloc(128, "scratch");
  EXPECT_EQ(dpu.mram_used(), 192u);
  dpu.mram_rewind(mark);
  EXPECT_EQ(dpu.mram_used(), 64u);
  EXPECT_THROW(dpu.mram_rewind(mark + 8), std::logic_error);
}

// A trivial two-phase kernel: phase 0 copies MRAM->WRAM per tasklet, phase 1
// charges fixed instructions.
class CopyKernel : public DpuKernel {
 public:
  explicit CopyKernel(std::size_t src_off) : src_off_(src_off) {}
  unsigned n_phases() const override { return 2; }
  void run_phase(unsigned phase, TaskletCtx& ctx) override {
    if (phase == 0) {
      std::uint8_t buf[64];
      ctx.mram_read(src_off_ + ctx.id() * 64, buf, 64);
      sum_ += buf[0];
      ctx.instr(10);
    } else {
      ctx.instr(100);
    }
  }
  int sum_ = 0;

 private:
  std::size_t src_off_;
};

TEST(Dpu, RunAccountsPhasesAndBarriers) {
  Dpu dpu;
  const auto off = dpu.mram_alloc(64 * 4, "src");
  std::vector<std::uint8_t> data(64 * 4, 7);
  dpu.host_write(off, data.data(), data.size());

  CopyKernel k(off);
  const DpuRunStats stats = dpu.run(k, 4);
  EXPECT_EQ(stats.phase_cycles.size(), 2u);
  EXPECT_EQ(k.sum_, 4 * 7);
  EXPECT_EQ(stats.instructions, 4u * 10 + 4u * 100);
  EXPECT_GT(stats.dma_cycles, 0u);
  // Total includes both phases plus two barrier crossings.
  EXPECT_EQ(stats.cycles,
            stats.phase_cycles[0] + stats.phase_cycles[1]);
  EXPECT_GE(stats.phase_cycles[1], 100u * 4 + DpuCostModel::barrier_cycles());
  EXPECT_EQ(dpu.busy_cycles(), stats.cycles);
}

TEST(Dpu, TaskletCountClamped) {
  Dpu dpu;
  dpu.mram_alloc(64 * hw::kMaxTasklets, "src");
  CopyKernel k(0);
  dpu.run(k, 100);  // clamps to 24
  EXPECT_EQ(k.sum_, static_cast<int>(hw::kMaxTasklets) * 0);
}

TEST(TaskletCtx, LargeReadSplitsIntoLegalChunks) {
  Dpu dpu;
  const std::size_t big = 5000;  // > 2048 DMA limit
  const auto off = dpu.mram_alloc(big, "big");
  std::vector<std::uint8_t> in(big);
  std::iota(in.begin(), in.end(), 0);
  dpu.host_write(off, in.data(), big);

  class BigReader : public DpuKernel {
   public:
    explicit BigReader(std::size_t off, std::size_t n) : off_(off), buf_(n) {}
    unsigned n_phases() const override { return 1; }
    void run_phase(unsigned, TaskletCtx& ctx) override {
      if (ctx.id() == 0) ctx.mram_read(off_, buf_.data(), buf_.size());
    }
    std::size_t off_;
    std::vector<std::uint8_t> buf_;
  } k(off, big);

  const auto stats = dpu.run(k, 1);
  EXPECT_EQ(k.buf_, in);
  // 3 DMA transfers: 2048 + 2048 + 904.
  const double expected = DpuCostModel::mram_dma_cycles(2048) * 2 +
                          DpuCostModel::mram_dma_cycles(904);
  EXPECT_NEAR(static_cast<double>(stats.dma_cycles), expected, 1.0);
}

TEST(PimSystem, TopologyCounts) {
  PimSystem sys(896);
  EXPECT_EQ(sys.n_dpus(), 896u);
  EXPECT_EQ(sys.n_dimms(), 7u);
  PimSystem small(100);
  EXPECT_EQ(small.n_dimms(), 1u);
}

TEST(PimSystem, LaunchTakesMaxOverDpus) {
  PimSystem sys(4);
  // Give DPU 2 ten times the work.
  class WorkKernel : public DpuKernel {
   public:
    explicit WorkKernel(std::uint64_t n) : n_(n) {}
    unsigned n_phases() const override { return 1; }
    void run_phase(unsigned, TaskletCtx& ctx) override { ctx.instr(n_); }
    std::uint64_t n_;
  };
  std::vector<std::unique_ptr<WorkKernel>> kernels;
  for (int i = 0; i < 4; ++i) {
    kernels.push_back(std::make_unique<WorkKernel>(i == 2 ? 100000 : 10000));
  }
  const auto stats = sys.launch(
      [&](std::size_t i) -> DpuKernel* { return kernels[i].get(); }, 11);
  EXPECT_EQ(stats.slowest_dpu, 2u);
  EXPECT_GT(stats.dpu_seconds[2], stats.dpu_seconds[0]);
  EXPECT_GE(stats.seconds,
            DpuCostModel::cycles_to_seconds(stats.max_cycles));
}

TEST(PimSystem, NullKernelSkipsDpu) {
  PimSystem sys(3);
  class Noop : public DpuKernel {
   public:
    unsigned n_phases() const override { return 1; }
    void run_phase(unsigned, TaskletCtx& ctx) override { ctx.instr(5); }
  } k;
  const auto stats = sys.launch(
      [&](std::size_t i) -> DpuKernel* { return i == 1 ? &k : nullptr; }, 4);
  EXPECT_EQ(stats.dpu_seconds[0], 0.0);
  EXPECT_GT(stats.dpu_seconds[1], 0.0);
  EXPECT_EQ(stats.dpu_seconds[2], 0.0);
}

}  // namespace
}  // namespace upanns::pim
