// Backend-interface tests: factory coverage, unified report shape, and the
// cross-backend parity guarantee (the paper's optimizations must not change
// what is retrieved).
#include "core/backend.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/engine.hpp"
#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(9000, 51));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;
  std::vector<std::vector<std::uint32_t>> probes;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 48;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 5;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 24;
    spec.seed = 4;
    wl = data::generate_workload(base, spec);
    data::WorkloadSpec hist = spec;
    hist.seed = 5;
    hist.n_queries = 128;
    const auto hw = data::generate_workload(base, hist);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, hw.queries, 8));
    probes = ivf::filter_batch(index, wl.queries, 8);
  }

  UpAnnsOptions options() const {
    UpAnnsOptions o = UpAnnsOptions::upanns();
    o.n_dpus = 12;
    o.nprobe = 8;
    o.k = 10;
    return o;
  }

  std::unique_ptr<AnnsBackend> make(BackendKind kind) const {
    return make_backend(kind, index, stats, options());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::set<std::uint32_t> ids_of(const std::vector<common::Neighbor>& v) {
  std::set<std::uint32_t> ids;
  for (const auto& n : v) ids.insert(n.id);
  return ids;
}

TEST(Backend, FactoryCoversEveryKind) {
  auto& f = fixture();
  for (const BackendKind kind :
       {BackendKind::kCpuIvfpq, BackendKind::kGpuIvfpq, BackendKind::kUpAnns,
        BackendKind::kPimNaive}) {
    auto backend = f.make(kind);
    ASSERT_NE(backend, nullptr);
    EXPECT_STREQ(backend->name(), backend_name(kind));
    const auto r = backend->search(f.wl.queries);
    EXPECT_EQ(r.neighbors.size(), f.wl.queries.n);
    EXPECT_GT(r.qps, 0.0);
    EXPECT_GT(r.times.total(), 0.0);
  }
}

TEST(Backend, KindParsing) {
  EXPECT_EQ(backend_kind_of("cpu"), BackendKind::kCpuIvfpq);
  EXPECT_EQ(backend_kind_of("gpu"), BackendKind::kGpuIvfpq);
  EXPECT_EQ(backend_kind_of("upanns"), BackendKind::kUpAnns);
  EXPECT_EQ(backend_kind_of("naive"), BackendKind::kPimNaive);
  EXPECT_EQ(backend_kind_of("pim-naive"), BackendKind::kPimNaive);
  EXPECT_FALSE(backend_kind_of("tpu").has_value());
}

TEST(Backend, ExtrasMatchBackend) {
  auto& f = fixture();
  const auto cpu = f.make(BackendKind::kCpuIvfpq)->search(f.wl.queries);
  EXPECT_TRUE(cpu.cpu.has_value());
  EXPECT_FALSE(cpu.pim.has_value());
  EXPECT_FALSE(cpu.gpu.has_value());
  EXPECT_EQ(cpu.cpu->profile.n_queries, f.wl.queries.n);

  const auto gpu = f.make(BackendKind::kGpuIvfpq)->search(f.wl.queries);
  EXPECT_TRUE(gpu.gpu.has_value());
  EXPECT_FALSE(gpu.pim.has_value());
  EXPECT_GT(gpu.gpu->capacity.index_bytes, 0.0);

  const auto up = f.make(BackendKind::kUpAnns)->search(f.wl.queries);
  ASSERT_TRUE(up.pim.has_value());
  EXPECT_FALSE(up.cpu.has_value());
  EXPECT_EQ(up.pim->n_dpus, 12u);
  EXPECT_GT(up.pim->bytes_pushed, 0u);
}

TEST(Backend, PimTraceIsNamedAndSumsToTotal) {
  auto& f = fixture();
  const auto r = f.make(BackendKind::kUpAnns)->search(f.wl.queries);
  ASSERT_EQ(r.trace.size(), 6u);
  EXPECT_STREQ(r.trace[0].name, "cluster-filter");
  EXPECT_STREQ(r.trace[1].name, "alg2-schedule");
  EXPECT_STREQ(r.trace[2].name, "uniform-push");
  EXPECT_STREQ(r.trace[3].name, "kernel-launch");
  EXPECT_STREQ(r.trace[4].name, "gather");
  EXPECT_STREQ(r.trace[5].name, "host-merge");
  EXPECT_EQ(r.trace[0].side, StageSide::kHost);
  EXPECT_EQ(r.trace[1].side, StageSide::kHost);
  EXPECT_EQ(r.trace[3].side, StageSide::kDevice);
  EXPECT_EQ(r.trace[5].side, StageSide::kHost);
  double sum = 0;
  for (const auto& step : r.trace) {
    EXPECT_GE(step.seconds, 0.0) << step.name;
    sum += step.seconds;
  }
  EXPECT_NEAR(sum, r.times.total(), 1e-12 * r.times.total());
}

TEST(Backend, PimBackendsReturnIdenticalIdSetsForSharedProbes) {
  // Placement, scheduling, CAE and pruning are exact transformations over
  // the same quantized distance pipeline: with shared probe lists, UpANNS
  // and PIM-naive must retrieve identical neighbor id sets.
  auto& f = fixture();
  const auto up =
      f.make(BackendKind::kUpAnns)->search_with_probes(f.wl.queries, f.probes);
  const auto naive = f.make(BackendKind::kPimNaive)
                         ->search_with_probes(f.wl.queries, f.probes);
  ASSERT_EQ(up.neighbors.size(), naive.neighbors.size());
  for (std::size_t q = 0; q < up.neighbors.size(); ++q) {
    EXPECT_EQ(ids_of(up.neighbors[q]), ids_of(naive.neighbors[q]))
        << "query " << q;
  }
}

TEST(Backend, PimMatchesCpuFunctionalWithinQuantizationTolerance) {
  // The CPU backend runs float ADC; the PIM path quantizes the codebook
  // (int8) and LUT (u16). With shared probes, recall against exact ground
  // truth must agree within a few points (paper: optimizations do not
  // impact accuracy) and the retrieved sets must overlap heavily.
  auto& f = fixture();
  const auto cpu =
      f.make(BackendKind::kCpuIvfpq)->search_with_probes(f.wl.queries, f.probes);
  const auto up =
      f.make(BackendKind::kUpAnns)->search_with_probes(f.wl.queries, f.probes);
  const auto gt = data::exact_topk(f.base, f.wl.queries, 10);
  EXPECT_NEAR(up.recall_against(gt, 10), cpu.recall_against(gt, 10), 0.05);
  EXPECT_GT(up.recall_against(cpu.neighbors, 10), 0.8);
}

TEST(Backend, GpuReusesFunctionalNeighbors) {
  auto& f = fixture();
  const auto cpu =
      f.make(BackendKind::kCpuIvfpq)->search_with_probes(f.wl.queries, f.probes);
  const auto gpu =
      f.make(BackendKind::kGpuIvfpq)->search_with_probes(f.wl.queries, f.probes);
  for (std::size_t q = 0; q < cpu.neighbors.size(); ++q) {
    EXPECT_EQ(cpu.neighbors[q], gpu.neighbors[q]);
  }
}

TEST(Backend, RecallHookMatchesGroundTruthHelper) {
  auto& f = fixture();
  const auto r = f.make(BackendKind::kCpuIvfpq)->search(f.wl.queries);
  const auto gt = data::exact_topk(f.base, f.wl.queries, 10);
  EXPECT_DOUBLE_EQ(r.recall_against(gt, 10),
                   data::recall_at_k(gt, r.neighbors, 10));
}

}  // namespace
}  // namespace upanns::core
