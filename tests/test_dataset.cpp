#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace upanns::data {
namespace {

TEST(Family, DimsMatchPaper) {
  EXPECT_EQ(family_dim(DatasetFamily::kSiftLike), 128u);
  EXPECT_EQ(family_dim(DatasetFamily::kDeepLike), 96u);
  EXPECT_EQ(family_dim(DatasetFamily::kSpacevLike), 100u);
}

TEST(Family, PqMMatchPaper) {
  // Paper Sec 5.1: DEEP1B -> 12 codes, SIFT1B -> 16, SPACEV1B -> 20.
  EXPECT_EQ(family_pq_m(DatasetFamily::kSiftLike), 16u);
  EXPECT_EQ(family_pq_m(DatasetFamily::kDeepLike), 12u);
  EXPECT_EQ(family_pq_m(DatasetFamily::kSpacevLike), 20u);
}

TEST(Family, DimDivisibleByM) {
  for (auto f : {DatasetFamily::kSiftLike, DatasetFamily::kDeepLike,
                 DatasetFamily::kSpacevLike}) {
    EXPECT_EQ(family_dim(f) % family_pq_m(f), 0u) << family_name(f);
  }
}

TEST(Synthetic, ShapeMatchesSpec) {
  const auto ds = generate_synthetic(sift1b_like(5000));
  EXPECT_EQ(ds.n, 5000u);
  EXPECT_EQ(ds.dim, 128u);
  EXPECT_EQ(ds.values.size(), 5000u * 128);
}

TEST(Synthetic, DeterministicUnderSeed) {
  const auto a = generate_synthetic(deep1b_like(2000, 42));
  const auto b = generate_synthetic(deep1b_like(2000, 42));
  EXPECT_EQ(a.values, b.values);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const auto a = generate_synthetic(deep1b_like(1000, 1));
  const auto b = generate_synthetic(deep1b_like(1000, 2));
  EXPECT_NE(a.values, b.values);
}

TEST(Synthetic, SiftValuesInByteRange) {
  const auto ds = generate_synthetic(sift1b_like(3000));
  for (float v : ds.values) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 255.f);
  }
}

TEST(Synthetic, DeepVectorsUnitNorm) {
  const auto ds = generate_synthetic(deep1b_like(500));
  for (std::size_t i = 0; i < ds.n; ++i) {
    double norm = 0;
    const float* row = ds.row(i);
    for (std::size_t d = 0; d < ds.dim; ++d) norm += row[d] * row[d];
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  }
}

TEST(Synthetic, SpacevValuesSignedSmall) {
  const auto ds = generate_synthetic(spacev1b_like(2000));
  bool has_negative = false;
  for (float v : ds.values) {
    EXPECT_GE(v, -127.f);
    EXPECT_LE(v, 127.f);
    EXPECT_EQ(v, std::round(v));  // integer-valued
    has_negative = has_negative || v < 0;
  }
  EXPECT_TRUE(has_negative);
}

TEST(Synthetic, SizeSigmaPerFamily) {
  // DEEP1B-like carries the strongest skew (drives the Fig 12 OOM marks).
  EXPECT_GT(family_size_sigma(DatasetFamily::kDeepLike),
            family_size_sigma(DatasetFamily::kSpacevLike));
  EXPECT_GT(family_size_sigma(DatasetFamily::kSpacevLike),
            family_size_sigma(DatasetFamily::kSiftLike));
}

TEST(Synthetic, ThrowsOnEmptySpec) {
  SyntheticSpec spec;
  spec.n = 0;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
}

TEST(Synthetic, PatternsCreateDuplicateSubvectorGroups) {
  // With pattern_prob near 1 and a tiny pool, many points must share their
  // first 3-subspace group almost exactly — the raw material for CAE.
  SyntheticSpec spec = sift1b_like(2000, 5);
  spec.n_natural_clusters = 4;
  spec.pattern_prob = 0.95;
  spec.pattern_pool = 2;
  const auto ds = generate_synthetic(spec);

  // Count near-duplicate group prefixes (first 24 dims for SIFT m=16).
  const std::size_t group_dims = 3 * (ds.dim / 16);
  std::size_t near_dups = 0;
  const std::size_t probe = 200;
  for (std::size_t i = 0; i < probe; ++i) {
    for (std::size_t j = i + 1; j < probe; ++j) {
      double d = 0;
      for (std::size_t g = 0; g < group_dims; ++g) {
        const double diff = ds.row(i)[g] - ds.row(j)[g];
        d += diff * diff;
      }
      if (d < 50.0) ++near_dups;  // jitter-level distance
    }
  }
  EXPECT_GT(near_dups, 50u);
}

}  // namespace
}  // namespace upanns::data
