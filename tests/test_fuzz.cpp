// Randomized invariant tests ("fuzz-lite"): placement and scheduling must
// hold their contracts under arbitrary cluster-size/frequency skew, not just
// on curated fixtures. Seeds are fixed for reproducibility.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/cae.hpp"
#include "core/scheduler.hpp"

namespace upanns::core {
namespace {

// Random placement structure without an index: exercise Algorithm 2 alone.
Placement random_placement(common::Rng& rng, std::size_t n_clusters,
                           std::size_t n_dpus) {
  Placement p;
  p.cluster_dpus.resize(n_clusters);
  p.dpu_clusters.resize(n_dpus);
  p.dpu_workload.assign(n_dpus, 0.0);
  p.dpu_vectors.assign(n_dpus, 0);
  for (std::size_t c = 0; c < n_clusters; ++c) {
    const std::size_t ncpy = 1 + rng.below(std::min<std::size_t>(n_dpus, 4));
    std::set<std::uint32_t> dpus;
    while (dpus.size() < ncpy) {
      dpus.insert(static_cast<std::uint32_t>(rng.below(n_dpus)));
    }
    for (auto d : dpus) {
      p.cluster_dpus[c].push_back(d);
      p.dpu_clusters[d].push_back(static_cast<std::uint32_t>(c));
    }
  }
  return p;
}

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, InvariantsHoldUnderRandomInputs) {
  common::Rng rng(GetParam());
  const std::size_t n_clusters = 2 + rng.below(64);
  const std::size_t n_dpus = 1 + rng.below(32);
  const std::size_t n_queries = rng.below(64);
  const std::size_t nprobe = 1 + rng.below(n_clusters);

  const Placement placement = random_placement(rng, n_clusters, n_dpus);
  std::vector<std::size_t> sizes(n_clusters);
  for (auto& s : sizes) s = rng.below(10000);

  std::vector<std::vector<std::uint32_t>> probes(n_queries);
  for (auto& list : probes) {
    std::set<std::uint32_t> chosen;
    while (chosen.size() < nprobe) {
      chosen.insert(static_cast<std::uint32_t>(rng.below(n_clusters)));
    }
    list.assign(chosen.begin(), chosen.end());
  }

  const Schedule s = schedule_queries(probes, placement, sizes);

  // 1. Every (query, cluster) pair scheduled exactly once, on a holder.
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
  double accounted = 0;
  for (std::size_t d = 0; d < s.n_dpus(); ++d) {
    double w = 0;
    for (const Assignment& a : s.per_dpu[d]) {
      ++seen[{a.query, a.cluster}];
      const auto& holders = placement.cluster_dpus[a.cluster];
      EXPECT_NE(std::find(holders.begin(), holders.end(), d), holders.end());
      w += static_cast<double>(sizes[a.cluster]);
    }
    EXPECT_NEAR(s.dpu_workload[d], w, 1e-6);
    accounted += w;
  }
  std::size_t expected = 0;
  for (std::size_t q = 0; q < n_queries; ++q) {
    for (auto c : probes[q]) {
      EXPECT_EQ((seen[{static_cast<std::uint32_t>(q), c}]), 1);
      ++expected;
    }
  }
  EXPECT_EQ(s.total_assignments(), expected);

  // 2. Workload conservation.
  double total = 0;
  for (const auto& list : probes) {
    for (auto c : list) total += static_cast<double>(sizes[c]);
  }
  EXPECT_NEAR(accounted, total, 1e-6);

  // 3. Per-DPU lists grouped by query.
  for (const auto& list : s.per_dpu) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1].query, list[i].query);
    }
  }

  // 4. Smart scheduling never balances worse than naive.
  const Schedule naive = schedule_naive(probes, placement, sizes);
  if (s.total_assignments() > 0 && naive.balance_ratio() > 0) {
    EXPECT_LE(s.balance_ratio(), naive.balance_ratio() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class CaeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CaeFuzz, RoundTripOnRandomCodeTables) {
  common::Rng rng(GetParam() * 1000);
  const std::size_t m = 3 + rng.below(22);
  const std::size_t n = rng.below(400);
  // Mix random rows with bursts of repeated rows (heavy co-occurrence).
  ivf::InvertedList list;
  std::vector<std::uint8_t> repeated(m);
  for (auto& c : repeated) c = static_cast<std::uint8_t>(rng.below(256));
  for (std::size_t i = 0; i < n; ++i) {
    list.ids.push_back(static_cast<std::uint32_t>(i));
    if (rng.uniform() < 0.4) {
      list.codes.insert(list.codes.end(), repeated.begin(), repeated.end());
    } else {
      for (std::size_t s = 0; s < m; ++s) {
        list.codes.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
    }
  }
  CaeOptions opts;
  opts.max_combos = 1 + rng.below(300);
  opts.min_count = 1 + rng.below(5);
  const auto enc = cae_encode_cluster(list, m, opts);
  EXPECT_TRUE(cae_stream_matches_codes(enc, list, m))
      << "m=" << m << " n=" << n;
  EXPECT_GE(enc.length_reduction(), 0.0);
  EXPECT_LT(enc.length_reduction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace upanns::core
