// Randomized invariant tests ("fuzz-lite"): placement and scheduling must
// hold their contracts under arbitrary cluster-size/frequency skew, not just
// on curated fixtures. Seeds are fixed for reproducibility.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "baselines/cpu_ivfpq.hpp"
#include "common/rng.hpp"
#include "core/cae.hpp"
#include "core/scheduler.hpp"
#include "data/query_workload.hpp"
#include "ivf/ivf_index.hpp"

namespace upanns::core {
namespace {

// Random placement structure without an index: exercise Algorithm 2 alone.
Placement random_placement(common::Rng& rng, std::size_t n_clusters,
                           std::size_t n_dpus) {
  Placement p;
  p.cluster_dpus.resize(n_clusters);
  p.dpu_clusters.resize(n_dpus);
  p.dpu_workload.assign(n_dpus, 0.0);
  p.dpu_vectors.assign(n_dpus, 0);
  for (std::size_t c = 0; c < n_clusters; ++c) {
    const std::size_t ncpy = 1 + rng.below(std::min<std::size_t>(n_dpus, 4));
    std::set<std::uint32_t> dpus;
    while (dpus.size() < ncpy) {
      dpus.insert(static_cast<std::uint32_t>(rng.below(n_dpus)));
    }
    for (auto d : dpus) {
      p.cluster_dpus[c].push_back(d);
      p.dpu_clusters[d].push_back(static_cast<std::uint32_t>(c));
    }
  }
  return p;
}

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, InvariantsHoldUnderRandomInputs) {
  common::Rng rng(GetParam());
  const std::size_t n_clusters = 2 + rng.below(64);
  const std::size_t n_dpus = 1 + rng.below(32);
  const std::size_t n_queries = rng.below(64);
  const std::size_t nprobe = 1 + rng.below(n_clusters);

  const Placement placement = random_placement(rng, n_clusters, n_dpus);
  std::vector<std::size_t> sizes(n_clusters);
  for (auto& s : sizes) s = rng.below(10000);

  std::vector<std::vector<std::uint32_t>> probes(n_queries);
  for (auto& list : probes) {
    std::set<std::uint32_t> chosen;
    while (chosen.size() < nprobe) {
      chosen.insert(static_cast<std::uint32_t>(rng.below(n_clusters)));
    }
    list.assign(chosen.begin(), chosen.end());
  }

  const Schedule s = schedule_queries(probes, placement, sizes);

  // 1. Every (query, cluster) pair scheduled exactly once, on a holder.
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
  double accounted = 0;
  for (std::size_t d = 0; d < s.n_dpus(); ++d) {
    double w = 0;
    for (const Assignment& a : s.per_dpu[d]) {
      ++seen[{a.query, a.cluster}];
      const auto& holders = placement.cluster_dpus[a.cluster];
      EXPECT_NE(std::find(holders.begin(), holders.end(), d), holders.end());
      w += static_cast<double>(sizes[a.cluster]);
    }
    EXPECT_NEAR(s.dpu_workload[d], w, 1e-6);
    accounted += w;
  }
  std::size_t expected = 0;
  for (std::size_t q = 0; q < n_queries; ++q) {
    for (auto c : probes[q]) {
      EXPECT_EQ((seen[{static_cast<std::uint32_t>(q), c}]), 1);
      ++expected;
    }
  }
  EXPECT_EQ(s.total_assignments(), expected);

  // 2. Workload conservation.
  double total = 0;
  for (const auto& list : probes) {
    for (auto c : list) total += static_cast<double>(sizes[c]);
  }
  EXPECT_NEAR(accounted, total, 1e-6);

  // 3. Per-DPU lists grouped by query.
  for (const auto& list : s.per_dpu) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1].query, list[i].query);
    }
  }

  // 4. Smart scheduling never balances worse than naive.
  const Schedule naive = schedule_naive(probes, placement, sizes);
  if (s.total_assignments() > 0 && naive.balance_ratio() > 0) {
    EXPECT_LE(s.balance_ratio(), naive.balance_ratio() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class CaeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CaeFuzz, RoundTripOnRandomCodeTables) {
  common::Rng rng(GetParam() * 1000);
  const std::size_t m = 3 + rng.below(22);
  const std::size_t n = rng.below(400);
  // Mix random rows with bursts of repeated rows (heavy co-occurrence).
  ivf::InvertedList list;
  std::vector<std::uint8_t> repeated(m);
  for (auto& c : repeated) c = static_cast<std::uint8_t>(rng.below(256));
  for (std::size_t i = 0; i < n; ++i) {
    list.ids.push_back(static_cast<std::uint32_t>(i));
    if (rng.uniform() < 0.4) {
      list.codes.insert(list.codes.end(), repeated.begin(), repeated.end());
    } else {
      for (std::size_t s = 0; s < m; ++s) {
        list.codes.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
    }
  }
  CaeOptions opts;
  opts.max_combos = 1 + rng.below(300);
  opts.min_count = 1 + rng.below(5);
  const auto enc = cae_encode_cluster(list, m, opts);
  EXPECT_TRUE(cae_stream_matches_codes(enc, list, m))
      << "m=" << m << " n=" << n;
  EXPECT_GE(enc.length_reduction(), 0.0);
  EXPECT_LT(enc.length_reduction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Streaming-mutation fuzz: random interleaved insert/remove/compact against
// a test-maintained live mirror, with periodic search parity against a
// rebuild-from-survivors oracle over the same frozen quantizers.

struct MutationFixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(1500, 33));
  ivf::IvfIndex index = build();
  data::Dataset queries;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 8;
    opts.pq_m = 16;
    opts.coarse_iters = 4;
    opts.pq_iters = 3;
    return ivf::IvfIndex::build(base, opts);
  }

  MutationFixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 4;
    spec.seed = 3;
    queries = data::generate_workload(base, spec).queries;
  }
};

MutationFixture& mutation_fixture() {
  static MutationFixture f;
  return f;
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, InterleavedOpsTrackOracle) {
  auto& f = mutation_fixture();
  common::Rng rng(GetParam() * 7919);
  ivf::IvfIndex idx = f.index;

  // Live mirror: id -> vector, the ground truth the index must track.
  std::map<std::uint32_t, std::vector<float>> live;
  for (std::size_t i = 0; i < f.base.n; ++i) {
    live[static_cast<std::uint32_t>(i)] = {f.base.row(i),
                                           f.base.row(i) + f.base.dim};
  }
  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  std::vector<std::uint32_t> removed;

  const auto verify = [&] {
    ASSERT_EQ(idx.n_points(), live.size());
    for (int probe = 0; probe < 8; ++probe) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      EXPECT_TRUE(idx.contains(it->first));
    }
    for (int probe = 0; probe < 4 && !removed.empty(); ++probe) {
      EXPECT_FALSE(idx.contains(removed[rng.below(removed.size())]));
    }

    // Oracle: rebuild from the survivors in (cluster, slot) order — the
    // searches must agree exactly, ids and distance bits.
    ivf::IvfIndex oracle = ivf::IvfIndex::empty_like(idx);
    std::vector<std::uint32_t> ids;
    std::vector<float> flat;
    for (const ivf::InvertedList& list : idx.lists()) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list.is_dead(i)) continue;
        ids.push_back(list.ids[i]);
        const auto& v = live.at(list.ids[i]);
        flat.insert(flat.end(), v.begin(), v.end());
      }
    }
    oracle.insert(ids, flat);

    baselines::SearchParams params;
    params.nprobe = idx.n_clusters();  // all lists: no filtering slack
    params.k = 10;
    const auto got =
        baselines::CpuIvfpqSearcher(idx).search(f.queries, params);
    const auto want =
        baselines::CpuIvfpqSearcher(oracle).search(f.queries, params);
    ASSERT_EQ(got.neighbors.size(), want.neighbors.size());
    for (std::size_t q = 0; q < got.neighbors.size(); ++q) {
      ASSERT_EQ(got.neighbors[q].size(), want.neighbors[q].size());
      for (std::size_t i = 0; i < got.neighbors[q].size(); ++i) {
        EXPECT_EQ(got.neighbors[q][i].id, want.neighbors[q][i].id)
            << "query " << q << " rank " << i;
        EXPECT_EQ(std::memcmp(&got.neighbors[q][i].dist,
                              &want.neighbors[q][i].dist, sizeof(float)),
                  0);
      }
    }
  };

  for (int op = 1; op <= 120; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.45) {
      const std::size_t burst = 1 + rng.below(4);
      std::vector<std::uint32_t> ids;
      std::vector<float> flat;
      for (std::size_t i = 0; i < burst; ++i) {
        const float* row = f.base.row(rng.below(f.base.n));
        std::vector<float> v(row, row + f.base.dim);
        for (float& x : v) x += rng.uniform(-0.05f, 0.05f);
        ids.push_back(next_id);
        live[next_id] = v;
        flat.insert(flat.end(), v.begin(), v.end());
        ++next_id;
      }
      idx.insert(ids, flat);
    } else if (roll < 0.85 && live.size() > 100) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      ASSERT_TRUE(idx.remove(it->first));
      removed.push_back(it->first);
      live.erase(it);
    } else {
      idx.compact(rng.uniform() * 0.5);
    }
    if (op % 30 == 0) verify();
  }
  idx.compact();
  verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace upanns::core
