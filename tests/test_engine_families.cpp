// Cross-family end-to-end coverage: the three paper datasets differ in
// dimension (96/128/100), PQ code count (12/16/20) and skew, which changes
// the WRAM layout (LUT 6-10 KB, codebook 24-32 KB) and the CAE group
// geometry. Every family must fit real WRAM, retrieve sanely and exercise
// every optimization.
#include <gtest/gtest.h>

#include "baselines/cpu_ivfpq.hpp"
#include "core/engine.hpp"
#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"

namespace upanns::core {
namespace {

class FamilyEngineTest
    : public ::testing::TestWithParam<data::DatasetFamily> {};

TEST_P(FamilyEngineTest, EndToEndPipeline) {
  const data::DatasetFamily family = GetParam();
  data::SyntheticSpec spec;
  spec.family = family;
  spec.n = 6000;
  spec.seed = 123;
  spec.size_sigma = data::family_size_sigma(family);
  spec.dense_core_frac = data::family_dense_core_frac(family);
  const data::Dataset base = data::generate_synthetic(spec);

  ivf::IvfBuildOptions build;
  build.n_clusters = 24;
  build.pq_m = spec.pq_m();
  build.coarse_iters = 5;
  build.pq_iters = 4;
  const ivf::IvfIndex index = ivf::IvfIndex::build(base, build);
  EXPECT_EQ(index.dim(), spec.dim());

  data::WorkloadSpec wspec;
  wspec.n_queries = 16;
  wspec.seed = 9;
  const auto wl = data::generate_workload(base, wspec);
  const auto stats = ivf::collect_stats(
      index, ivf::filter_batch(index, wl.queries, 6));

  UpAnnsOptions opts = UpAnnsOptions::upanns();
  opts.n_dpus = 8;
  opts.nprobe = 6;
  opts.k = 10;
  // Full 24 tasklets: the tightest WRAM configuration must still fit.
  opts.n_tasklets = 24;
  UpAnnsEngine engine(index, stats, opts);
  const auto r = engine.search(wl.queries);

  // Accuracy tracks the float CPU pipeline.
  baselines::CpuIvfpqSearcher cpu(index);
  baselines::SearchParams params;
  params.nprobe = 6;
  params.k = 10;
  const auto ref = cpu.search(wl.queries, params);
  const auto gt = data::exact_topk(base, wl.queries, 10);
  EXPECT_NEAR(data::recall_at_k(gt, r.neighbors, 10),
              data::recall_at_k(gt, ref.neighbors, 10), 0.08)
      << data::family_name(family);

  // Every optimization did something.
  EXPECT_GT(r.pim->length_reduction, 0.0) << data::family_name(family);
  EXPECT_GT(r.pim->merge_insertions, 0u);
  EXPECT_GT(r.times.distance_calc, 0.0);
  EXPECT_GE(r.pim->schedule_balance, 1.0 - 1e-9);
}

TEST_P(FamilyEngineTest, DirectTokenStreamRoundTripsViaEncoder) {
  // CAE on real per-family PQ codes must round-trip (complement to the
  // synthetic-code fuzz tests).
  const data::DatasetFamily family = GetParam();
  data::SyntheticSpec spec;
  spec.family = family;
  spec.n = 3000;
  spec.seed = 321;
  const data::Dataset base = data::generate_synthetic(spec);
  ivf::IvfBuildOptions build;
  build.n_clusters = 8;
  build.pq_m = spec.pq_m();
  build.coarse_iters = 4;
  build.pq_iters = 3;
  const ivf::IvfIndex index = ivf::IvfIndex::build(base, build);
  for (std::size_t c = 0; c < index.n_clusters(); ++c) {
    const auto enc =
        cae_encode_cluster(index.list(c), index.pq_m(), CaeOptions{});
    EXPECT_TRUE(cae_stream_matches_codes(enc, index.list(c), index.pq_m()))
        << data::family_name(family) << " cluster " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyEngineTest,
                         ::testing::Values(data::DatasetFamily::kSiftLike,
                                           data::DatasetFamily::kDeepLike,
                                           data::DatasetFamily::kSpacevLike),
                         [](const auto& info) {
                           switch (info.param) {
                             case data::DatasetFamily::kSiftLike: return "Sift";
                             case data::DatasetFamily::kDeepLike: return "Deep";
                             default: return "Spacev";
                           }
                         });

}  // namespace
}  // namespace upanns::core
