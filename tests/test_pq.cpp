#include "quant/pq.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace upanns::quant {
namespace {

std::vector<float> random_data(std::size_t n, std::size_t dim,
                               std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (auto& v : data) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  return data;
}

ProductQuantizer train_pq(std::size_t n, std::size_t dim, std::size_t m,
                          std::uint64_t seed = 1) {
  const auto data = random_data(n, dim, seed);
  ProductQuantizer pq;
  PqOptions opts;
  opts.m = m;
  opts.train_iters = 6;
  opts.seed = seed;
  pq.train(data, n, dim, opts);
  return pq;
}

TEST(Pq, RejectsIndivisibleDim) {
  ProductQuantizer pq;
  PqOptions opts;
  opts.m = 5;
  const auto data = random_data(100, 16, 1);
  EXPECT_THROW(pq.train(data, 100, 16, opts), std::invalid_argument);
}

TEST(Pq, TrainedDimensions) {
  const auto pq = train_pq(2000, 16, 4);
  EXPECT_TRUE(pq.trained());
  EXPECT_EQ(pq.dim(), 16u);
  EXPECT_EQ(pq.m(), 4u);
  EXPECT_EQ(pq.dsub(), 4u);
  EXPECT_EQ(pq.codebooks().size(), 4u * 256 * 4);
}

TEST(Pq, EncodeDecodeReducesError) {
  const std::size_t n = 3000, dim = 16;
  const auto data = random_data(n, dim, 2);
  const auto pq = train_pq(n, dim, 8, 2);

  std::vector<std::uint8_t> codes(8);
  std::vector<float> rec(dim);
  double err = 0, norm = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    pq.encode(data.data() + i * dim, codes.data());
    pq.decode(codes.data(), rec.data());
    err += l2_sq(data.data() + i * dim, rec.data(), dim);
    for (std::size_t d = 0; d < dim; ++d) {
      norm += data[i * dim + d] * data[i * dim + d];
    }
  }
  // Quantization error well below signal energy.
  EXPECT_LT(err / norm, 0.35);
}

TEST(Pq, EncodeIsNearestCodeword) {
  const auto pq = train_pq(1000, 8, 2, 3);
  const auto data = random_data(10, 8, 4);
  std::vector<std::uint8_t> codes(2);
  for (std::size_t i = 0; i < 10; ++i) {
    pq.encode(data.data() + i * 8, codes.data());
    for (std::size_t s = 0; s < 2; ++s) {
      const float* cb = pq.codebooks().data() + s * 256 * 4;
      const auto [best, d] =
          nearest_centroid(data.data() + i * 8 + s * 4, cb, 256, 4);
      (void)d;
      EXPECT_EQ(codes[s], best);
    }
  }
}

TEST(Pq, AdcEqualsDecodedDistance) {
  // ADC(lut, codes) must equal ||q - decode(codes)||^2 exactly (same math).
  const auto pq = train_pq(2000, 16, 4, 5);
  const auto queries = random_data(5, 16, 6);
  const auto points = random_data(5, 16, 7);
  std::vector<float> lut(4 * 256), rec(16);
  std::vector<std::uint8_t> codes(4);
  for (std::size_t q = 0; q < 5; ++q) {
    pq.compute_lut(queries.data() + q * 16, lut.data());
    for (std::size_t p = 0; p < 5; ++p) {
      pq.encode(points.data() + p * 16, codes.data());
      pq.decode(codes.data(), rec.data());
      const float adc = pq.adc_distance(lut.data(), codes.data());
      const float direct = l2_sq(queries.data() + q * 16, rec.data(), 16);
      EXPECT_NEAR(adc, direct, 1e-3f * (1.f + direct));
    }
  }
}

TEST(Pq, QuantizedLutPreservesOrdering) {
  const auto pq = train_pq(3000, 16, 4, 8);
  const auto queries = random_data(3, 16, 9);
  const auto points = random_data(50, 16, 10);
  std::vector<float> lut(4 * 256);
  std::vector<std::uint8_t> codes(4);
  for (std::size_t q = 0; q < 3; ++q) {
    pq.compute_lut(queries.data() + q * 16, lut.data());
    const QuantizedLut qlut = pq.quantize_lut(lut);
    // Relative error of quantized distances is small.
    for (std::size_t p = 0; p < 50; ++p) {
      pq.encode(points.data() + p * 16, codes.data());
      const float f = pq.adc_distance(lut.data(), codes.data());
      const float g =
          static_cast<float>(pq.adc_distance_q(qlut, codes.data())) *
          qlut.scale;
      EXPECT_NEAR(g, f, 0.01f * (1.f + f));
    }
  }
}

TEST(Pq, QuantizedLutEntriesBounded) {
  const auto pq = train_pq(1000, 8, 2, 11);
  const auto q = random_data(1, 8, 12);
  std::vector<float> lut(2 * 256);
  pq.compute_lut(q.data(), lut.data());
  const QuantizedLut ql = pq.quantize_lut(lut);
  for (auto v : ql.table) EXPECT_LE(v, 65535);
  EXPECT_GT(ql.scale, 0.f);
}

TEST(Pq, ZeroLutQuantizes) {
  const auto pq = train_pq(500, 8, 2, 13);
  std::vector<float> lut(2 * 256, 0.f);
  const QuantizedLut ql = pq.quantize_lut(lut);
  for (auto v : ql.table) EXPECT_EQ(v, 0);
}

TEST(Pq, EncodeBatchMatchesSingle) {
  const auto pq = train_pq(1000, 16, 4, 14);
  const auto data = random_data(64, 16, 15);
  std::vector<std::uint8_t> batch(64 * 4), single(4);
  pq.encode_batch(data, 64, batch.data());
  for (std::size_t i = 0; i < 64; ++i) {
    pq.encode(data.data() + i * 16, single.data());
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(batch[i * 4 + s], single[s]);
    }
  }
}

class PqMTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PqMTest, RoundTripAcrossM) {
  const std::size_t m = GetParam();
  const std::size_t dim = m * 4;
  const auto pq = train_pq(1500, dim, m, 20 + m);
  EXPECT_EQ(pq.m(), m);
  const auto data = random_data(8, dim, 21);
  std::vector<std::uint8_t> codes(m);
  std::vector<float> rec(dim);
  for (std::size_t i = 0; i < 8; ++i) {
    pq.encode(data.data() + i * dim, codes.data());
    pq.decode(codes.data(), rec.data());
    EXPECT_LT(l2_sq(data.data() + i * dim, rec.data(), dim),
              2.0f * static_cast<float>(dim));
  }
}

INSTANTIATE_TEST_SUITE_P(Ms, PqMTest, ::testing::Values(1, 2, 4, 8, 12, 16, 20));

// Concurrent subspace training fans the m kmeans() calls across a pool with
// the inner kmeans pinned serial (nested-parallelism rule, DESIGN.md §13).
// The codebooks must come out bit-identical to the fully serial train for
// any pool size.
TEST(Pq, ParallelTrainBitIdenticalToSerial) {
  const std::size_t n = 3000, dim = 32, m = 8;
  const auto data = random_data(n, dim, 3);
  PqOptions serial;
  serial.m = m;
  serial.train_iters = 5;
  serial.seed = 3;
  serial.use_threads = false;
  ProductQuantizer want;
  want.train(data, n, dim, serial);
  for (std::size_t workers = 1; workers <= 4; workers += 3) {
    common::ThreadPool pool(workers);
    PqOptions opts = serial;
    opts.use_threads = true;
    opts.n_threads = workers;
    opts.pool = &pool;
    ProductQuantizer got;
    got.train(data, n, dim, opts);
    const auto ga = got.codebooks();
    const auto wa = want.codebooks();
    ASSERT_EQ(ga.size(), wa.size());
    EXPECT_EQ(std::vector<float>(ga.begin(), ga.end()),
              std::vector<float>(wa.begin(), wa.end()))
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace upanns::quant
