#include "ivf/ivf_flat.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"

namespace upanns::ivf {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(5000, 101));
  IvfFlatIndex index = build();

  IvfFlatIndex build() {
    IvfFlatBuildOptions opts;
    opts.n_clusters = 24;
    opts.coarse_iters = 6;
    return IvfFlatIndex::build(base, opts);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(IvfFlat, PartitionCoversAllPoints) {
  auto& f = fixture();
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (std::size_t c = 0; c < f.index.n_clusters(); ++c) {
    EXPECT_EQ(f.index.list_vectors(c).size(),
              f.index.list_size(c) * f.index.dim());
    for (auto id : f.index.list_ids(c)) {
      EXPECT_TRUE(seen.insert(id).second);
    }
    total += f.index.list_size(c);
  }
  EXPECT_EQ(total, f.base.n);
}

TEST(IvfFlat, FullProbeEqualsExactSearch) {
  // With nprobe = |C| the search is exhaustive and must match brute force
  // exactly (no quantization anywhere).
  auto& f = fixture();
  data::Dataset queries;
  queries.dim = f.base.dim;
  queries.n = 5;
  queries.values.assign(f.base.values.begin(),
                        f.base.values.begin() + 5 * f.base.dim);
  const auto gt = data::exact_topk(f.base, queries, 10);
  const auto res =
      f.index.search_batch(queries, f.index.n_clusters(), 10);
  for (std::size_t q = 0; q < queries.n; ++q) {
    EXPECT_EQ(res[q], gt[q]) << "query " << q;
  }
}

TEST(IvfFlat, RecallBeatsPqAtSameNprobe) {
  // Flat lists have no quantization error: recall at a given nprobe is an
  // upper bound for IVFPQ's.
  auto& f = fixture();
  data::WorkloadSpec spec;
  spec.n_queries = 16;
  spec.seed = 3;
  const auto wl = data::generate_workload(f.base, spec);
  const auto gt = data::exact_topk(f.base, wl.queries, 10);
  const auto res = f.index.search_batch(wl.queries, 8, 10);
  EXPECT_GT(data::recall_at_k(gt, res, 10), 0.75);
}

TEST(IvfFlat, RecallImprovesWithNprobe) {
  auto& f = fixture();
  data::WorkloadSpec spec;
  spec.n_queries = 12;
  spec.seed = 4;
  const auto wl = data::generate_workload(f.base, spec);
  const auto gt = data::exact_topk(f.base, wl.queries, 10);
  double prev = -1;
  for (std::size_t nprobe : {1u, 4u, 24u}) {
    const double r =
        data::recall_at_k(gt, f.index.search_batch(wl.queries, nprobe, 10), 10);
    EXPECT_GE(r, prev - 1e-9);
    prev = r;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);  // full probe = exact
}

TEST(IvfFlat, SharesWorkloadSemanticsWithIvfpq) {
  // list_sizes feeds the same ClusterStats/placement machinery.
  auto& f = fixture();
  const auto sizes = f.index.list_sizes();
  EXPECT_EQ(sizes.size(), f.index.n_clusters());
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            f.base.n);
}

TEST(IvfFlat, EmptyDatasetRejected) {
  EXPECT_THROW(IvfFlatIndex::build(data::Dataset{}, IvfFlatBuildOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace upanns::ivf
