#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

namespace upanns::core {
namespace {

// Hand-built placement: 4 DPUs, 6 clusters; cluster 0 replicated on all.
Placement make_placement() {
  Placement p;
  p.cluster_dpus = {{0, 1, 2, 3}, {0}, {1}, {2}, {3}, {0, 2}};
  p.dpu_clusters.resize(4);
  for (std::size_t c = 0; c < p.cluster_dpus.size(); ++c) {
    for (auto d : p.cluster_dpus[c]) p.dpu_clusters[d].push_back(c);
  }
  p.dpu_workload.assign(4, 0.0);
  p.dpu_vectors.assign(4, 0);
  return p;
}

const std::vector<std::size_t> kSizes = {100, 50, 50, 50, 50, 80};

TEST(Scheduler, EveryProbeAssignedExactlyOnce) {
  const Placement p = make_placement();
  const std::vector<std::vector<std::uint32_t>> probes = {
      {0, 1, 2}, {0, 3}, {4, 5}, {0, 5}};
  const Schedule s = schedule_queries(probes, p, kSizes);

  std::map<std::pair<std::uint32_t, std::uint32_t>, int> count;
  for (std::size_t d = 0; d < s.n_dpus(); ++d) {
    for (const Assignment& a : s.per_dpu[d]) {
      ++count[{a.query, a.cluster}];
      // The DPU must actually hold a replica of the cluster.
      const auto& dpus = p.cluster_dpus[a.cluster];
      EXPECT_NE(std::find(dpus.begin(), dpus.end(), d), dpus.end());
    }
  }
  std::size_t expected = 0;
  for (std::size_t q = 0; q < probes.size(); ++q) {
    for (auto c : probes[q]) {
      EXPECT_EQ((count[{static_cast<std::uint32_t>(q), c}]), 1);
      ++expected;
    }
  }
  EXPECT_EQ(s.total_assignments(), expected);
}

TEST(Scheduler, SingleReplicaForced) {
  const Placement p = make_placement();
  const std::vector<std::vector<std::uint32_t>> probes = {{1}, {2}, {3}, {4}};
  const Schedule s = schedule_queries(probes, p, kSizes);
  // cluster 1 -> dpu 0, 2 -> 1, 3 -> 2, 4 -> 3.
  EXPECT_EQ(s.per_dpu[0].size(), 1u);
  EXPECT_EQ(s.per_dpu[0][0].cluster, 1u);
  EXPECT_EQ(s.per_dpu[1][0].cluster, 2u);
  EXPECT_EQ(s.per_dpu[2][0].cluster, 3u);
  EXPECT_EQ(s.per_dpu[3][0].cluster, 4u);
}

TEST(Scheduler, ReplicatedClusterGoesToLeastLoaded) {
  const Placement p = make_placement();
  // Load DPU 0 with singles, then ask for replicated cluster 0: it must
  // avoid DPU 0.
  const std::vector<std::vector<std::uint32_t>> probes = {{1}, {1}, {1}, {0}};
  const Schedule s = schedule_queries(probes, p, kSizes);
  for (const auto& a : s.per_dpu[0]) {
    EXPECT_NE(a.cluster, 0u);
  }
}

TEST(Scheduler, BalancesReplicatedLoad) {
  const Placement p = make_placement();
  // 8 queries all probing the fully replicated cluster 0: spread evenly.
  std::vector<std::vector<std::uint32_t>> probes(8, {0});
  const Schedule s = schedule_queries(probes, p, kSizes);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(s.per_dpu[d].size(), 2u) << "dpu " << d;
  }
  EXPECT_NEAR(s.balance_ratio(), 1.0, 1e-9);
}

TEST(Scheduler, WorkloadCountsClusterSizes) {
  const Placement p = make_placement();
  const std::vector<std::vector<std::uint32_t>> probes = {{1, 2}};
  const Schedule s = schedule_queries(probes, p, kSizes);
  EXPECT_DOUBLE_EQ(s.dpu_workload[0], 50.0);
  EXPECT_DOUBLE_EQ(s.dpu_workload[1], 50.0);
}

TEST(Scheduler, AssignmentsGroupedByQuery) {
  const Placement p = make_placement();
  std::vector<std::vector<std::uint32_t>> probes = {{0, 1, 5}, {0, 1, 5},
                                                    {0, 1, 5}};
  const Schedule s = schedule_queries(probes, p, kSizes);
  for (const auto& list : s.per_dpu) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1].query, list[i].query);
    }
  }
}

TEST(Scheduler, NaiveUsesFirstReplica) {
  const Placement p = make_placement();
  std::vector<std::vector<std::uint32_t>> probes(6, {0});
  const Schedule s = schedule_naive(probes, p, kSizes);
  EXPECT_EQ(s.per_dpu[0].size(), 6u);  // all on replica 0: the hotspot
  EXPECT_GT(s.balance_ratio(), 3.9);
}

TEST(Scheduler, SmartBeatsNaiveOnSkewedLoad) {
  const Placement p = make_placement();
  std::vector<std::vector<std::uint32_t>> probes(16, {0, 5});
  const Schedule smart = schedule_queries(probes, p, kSizes);
  const Schedule naive = schedule_naive(probes, p, kSizes);
  EXPECT_LT(smart.balance_ratio(), naive.balance_ratio());
}

TEST(Scheduler, EmptyClusterListSkipped) {
  Placement p = make_placement();
  p.cluster_dpus.push_back({});  // cluster 6: nowhere resident (empty)
  std::vector<std::size_t> sizes = kSizes;
  sizes.push_back(0);
  const std::vector<std::vector<std::uint32_t>> probes = {{6, 1}};
  const Schedule s = schedule_queries(probes, p, sizes);
  EXPECT_EQ(s.total_assignments(), 1u);
}

TEST(Scheduler, EmptyBatch) {
  const Placement p = make_placement();
  const Schedule s = schedule_queries({}, p, kSizes);
  EXPECT_EQ(s.total_assignments(), 0u);
}

}  // namespace
}  // namespace upanns::core
