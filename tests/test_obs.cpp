// Observability tests: JSON writer/parser round trips, histogram quantiles,
// cross-thread counter merging, the Perfetto trace of a 3-batch overlapped
// pipeline run (valid JSON, one slice per stage per batch, device-lane
// durations reconstruct the slot split, final device end == elapsed_seconds
// bit-for-bit), report JSON round trips at full double precision, and the
// parity guarantee: attaching a registry never changes a report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/multihost.hpp"
#include "core/pipeline.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "metrics/report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report_json.hpp"
#include "obs/trace.hpp"

namespace upanns::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, WriterProducesCompactDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "upanns");
  w.kv("n", std::uint64_t{3});
  w.kv("on", true);
  w.key("xs").begin_array().value(1).value(2).end_array();
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"upanns\",\"n\":3,\"on\":true,\"xs\":[1,2],"
            "\"none\":null}");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  const std::string s = "a\"b\\c\nd\te";
  const JsonValue v = json_parse("\"" + json_escape(s) + "\"");
  EXPECT_EQ(v.kind, JsonValue::Kind::kString);
  EXPECT_EQ(v.string, s);
}

TEST(Json, NumbersRoundTripBitExact) {
  for (const double x : {0.1 + 0.2, 1.0 / 3.0, 6.25e-7, 1e-300, 12345.6789,
                         123456789.0, -0.0, 2.2250738585072014e-308}) {
    const JsonValue v = json_parse(json_number(x));
    EXPECT_EQ(v.kind, JsonValue::Kind::kNumber);
    EXPECT_EQ(std::memcmp(&v.number, &x, sizeof x), 0) << json_number(x);
  }
}

TEST(Json, RawSplicesPrerenderedValues) {
  JsonWriter inner;
  inner.begin_object().kv("a", 1).end_object();
  JsonWriter w;
  w.begin_object().key("x").raw(inner.str()).kv("y", 2).end_object();
  const JsonValue v = json_parse(w.str());
  EXPECT_EQ(v.at("x").at("a").number, 1.0);
  EXPECT_EQ(v.at("y").number, 2.0);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json_parse("42 garbage"), std::runtime_error);
  EXPECT_THROW(json_parse(""), std::runtime_error);
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v =
      json_parse(R"({"a": [1, {"b": "c"}, null], "d": {"e": false}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").array.size(), 3u);
  EXPECT_EQ(v.at("a").at(1).at("b").string, "c");
  EXPECT_EQ(v.at("a").at(2).kind, JsonValue::Kind::kNull);
  EXPECT_FALSE(v.at("d").at("e").boolean);
  EXPECT_THROW(v.at("missing"), std::out_of_range);
  EXPECT_THROW(v.at("a").at(7), std::out_of_range);
}

// ---------------------------------------------------------------- metrics

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  Histogram h({1.0, 2.0, 5.0, 10.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i) * 0.1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_NEAR(h.mean(), 5.05, 1e-12);
  // Quantiles land inside the right bucket and never leave [min, max].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 0.5);
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    EXPECT_GE(cur, h.min());
    EXPECT_LE(cur, h.max());
    prev = cur;
  }
}

TEST(Histogram, BucketAssignmentAndOverflow) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(1.0);  // bucket 0 (bounds are inclusive upper edges)
  h.observe(1.5);  // bucket 1
  h.observe(9.0);  // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, MergeFoldsCountsSumsAndExtremes) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.observe(0.5);
  b.observe(1.5);
  b.observe(3.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  Histogram c({7.0});
  EXPECT_THROW(a.merge_from(c), std::invalid_argument);
}

TEST(Registry, CountersMergeAcrossThreadPoolThreads) {
  // One shared registry updated concurrently...
  MetricsRegistry shared;
  constexpr std::size_t kN = 10'000;
  common::ThreadPool::global().parallel_for(
      0, kN, [&](std::size_t) { shared.counter("events").add(1); }, 1);
  EXPECT_EQ(shared.counter("events").value(), kN);

  // ...and per-thread registries folded together afterwards.
  constexpr std::size_t kShards = 7;
  std::vector<MetricsRegistry> shards(kShards);
  common::ThreadPool::global().parallel_for(
      0, kShards,
      [&](std::size_t s) {
        shards[s].counter("events").add(s + 1);
        shards[s].histogram("lat", {1.0, 2.0}).observe(0.5);
      },
      1);
  MetricsRegistry merged;
  for (const auto& s : shards) merged.merge_from(s);
  EXPECT_EQ(merged.counter("events").value(), kShards * (kShards + 1) / 2);
  EXPECT_EQ(merged.histogram("lat", {1.0, 2.0}).count(), kShards);
}

TEST(Registry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("z").add(1);
  reg.counter("a").add(2);
  reg.gauge("m").set(0.5);
  reg.histogram("h").observe(1e-3);
  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "a");
  EXPECT_EQ(s.counters[1].name, "z");
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 1u);
  EXPECT_EQ(s.histograms[0].bounds.size(),
            Histogram::default_time_bounds().size());
}

TEST(Sink, DetachedSinkIsInertAndCheap) {
  MetricsSink sink;  // no registry
  EXPECT_FALSE(sink.enabled());
  sink.count("never");
  sink.set("never", 1.0);
  sink.observe("never", 1.0);  // must not crash or allocate a registry
  EXPECT_EQ(sink.registry(), nullptr);
}

TEST(Registry, SnapshotJsonRoundTrips) {
  MetricsRegistry reg;
  reg.counter("pim.launches").add(42);
  reg.gauge("balance").set(1.0 / 3.0);
  reg.histogram("lat").observe(3.7e-4);
  const MetricsSnapshot snap = reg.snapshot();
  const JsonValue v = json_parse(snapshot_json(snap));
  EXPECT_EQ(v.at("counters").at(0).at("name").string, "pim.launches");
  EXPECT_EQ(v.at("counters").at(0).at("value").number, 42.0);
  const double g = v.at("gauges").at(0).at("value").number;
  const double expect_g = 1.0 / 3.0;
  EXPECT_EQ(std::memcmp(&g, &expect_g, sizeof g), 0);
  EXPECT_EQ(v.at("histograms").at(0).at("count").number, 1.0);
  EXPECT_EQ(v.at("histograms").at(0).at("bucket_counts").array.size(),
            snap.histograms[0].bucket_counts.size());
}

// ---------------------------------------------------------------- figures

TEST(FigureSink, JsonCarriesRowsAndDetail) {
  metrics::FigureSink sink("figX", {"dataset", "value"});
  sink.add_row({"sift", "1.25"}, "{\"balance_ratio\":1.25}");
  sink.add_row({"deep", "0.5"});
  const JsonValue v = json_parse(sink.json());
  EXPECT_EQ(v.at("figure").string, "figX");
  EXPECT_EQ(v.at("columns").array.size(), 2u);
  ASSERT_EQ(v.at("rows").array.size(), 2u);
  EXPECT_EQ(v.at("rows").at(0).at("dataset").string, "sift");
  EXPECT_DOUBLE_EQ(v.at("rows").at(0).at("detail").at("balance_ratio").number,
                   1.25);
  EXPECT_FALSE(v.at("rows").at(1).has("detail"));
}

// ---------------------------------------------------------------- pipeline

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(9000, 51));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 48;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 5;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 48;
    spec.seed = 4;
    wl = data::generate_workload(base, spec);
    data::WorkloadSpec hist = spec;
    hist.seed = 5;
    hist.n_queries = 128;
    const auto hw = data::generate_workload(base, hist);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, hw.queries, 8));
  }

  core::UpAnnsOptions options() const {
    core::UpAnnsOptions o = core::UpAnnsOptions::upanns();
    o.n_dpus = 12;
    o.nprobe = 8;
    o.k = 10;
    return o;
  }

  /// A fresh 3-batch overlapped run (16 queries per batch).
  core::BatchPipelineReport three_batches(MetricsRegistry* reg = nullptr,
                                          bool overlap = true) {
    core::UpAnnsEngine engine(index, stats, options());
    engine.set_metrics(reg);
    core::BatchPipeline pipeline(engine, {.overlap = overlap});
    return pipeline.run(core::split_batches(wl.queries, 16));
  }

  /// A fresh 3-batch multi-host run over a 3-host cluster.
  core::MultiHostPipelineReport multihost_batches(bool overlap = true) {
    core::MultiHostOptions opts;
    opts.n_hosts = 3;
    opts.per_host = options();
    core::MultiHostUpAnns cluster(index, stats, opts);
    core::MultiHostBatchPipeline pipeline(cluster, {.overlap = overlap});
    return pipeline.run(core::split_batches(wl.queries, 16));
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

constexpr const char* kHostStages[] = {"cluster-filter", "alg2-schedule"};
constexpr const char* kDeviceStages[] = {"uniform-push", "kernel-launch",
                                         "gather", "host-merge"};

TEST(Trace, TimelineReproducesOverlappedElapsedBitExact) {
  // Acceptance criterion: the trace's accounting of a 3-batch overlapped run
  // reproduces elapsed = h_0 + sum max(d_i, h_{i+1}) + d_last exactly.
  auto& f = fixture();
  const auto run = f.three_batches();
  ASSERT_EQ(run.slots.size(), 3u);
  ASSERT_TRUE(run.overlapped);

  const auto windows = pipeline_timeline(run);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows.back().device_end, run.elapsed_seconds);

  // Batch i+1's host prefix starts exactly when batch i's device phase does
  // (that is the overlap), and every device phase starts no earlier than its
  // own host prefix ends.
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].device_start, windows[i].host_end);
    if (i + 1 < windows.size()) {
      EXPECT_DOUBLE_EQ(windows[i + 1].host_start, windows[i].device_start);
    }
  }
  EXPECT_DOUBLE_EQ(windows[0].host_start, 0.0);
}

TEST(Trace, SerialTimelineLaysBatchesBackToBack) {
  auto& f = fixture();
  const auto run = f.three_batches(nullptr, /*overlap=*/false);
  const auto windows = pipeline_timeline(run);
  ASSERT_EQ(windows.size(), 3u);
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(windows[i + 1].host_start, windows[i].device_end);
  }
  EXPECT_NEAR(windows.back().device_end, run.elapsed_seconds,
              1e-12 * run.elapsed_seconds);
}

TEST(Trace, OneSlicePerStagePerBatchAndDeviceDurationsMatchSlots) {
  auto& f = fixture();
  const auto run = f.three_batches();
  const PipelineTrace trace = pipeline_trace(run);

  // name -> per-batch slice count, and per-batch device-lane duration sums.
  std::map<std::string, std::vector<int>> stage_slices;
  std::vector<double> device_sum(run.slots.size(), 0.0);
  std::vector<double> dpu_sum(run.slots.size(), 0.0);
  for (const TraceSlice& s : trace.slices) {
    if (s.category == "dpu") {
      dpu_sum[s.batch] += s.duration_seconds;
      continue;
    }
    auto& counts = stage_slices[s.name];
    counts.resize(run.slots.size(), 0);
    counts[s.batch] += 1;
    if (s.category == "device") device_sum[s.batch] += s.duration_seconds;
  }

  ASSERT_EQ(stage_slices.size(), 6u);  // six stages, nothing else
  for (const char* name : kHostStages) {
    ASSERT_TRUE(stage_slices.count(name)) << name;
    for (int c : stage_slices[name]) EXPECT_EQ(c, 1) << name;
  }
  for (const char* name : kDeviceStages) {
    ASSERT_TRUE(stage_slices.count(name)) << name;
    for (int c : stage_slices[name]) EXPECT_EQ(c, 1) << name;
  }

  for (std::size_t b = 0; b < run.slots.size(); ++b) {
    // Device-lane slice durations reconstruct the slot's device share (same
    // numbers summed in a different order, so last-bit tolerance).
    EXPECT_NEAR(device_sum[b], run.slots[b].device_seconds,
                1e-12 * run.slots[b].report.times.total());
    // Per-DPU busy slices sum to the PimExtras busy total for that batch.
    ASSERT_TRUE(run.slots[b].report.pim.has_value());
    double busy_total = 0;
    for (double s : run.slots[b].report.pim->dpu_busy_seconds) busy_total += s;
    EXPECT_NEAR(dpu_sum[b], busy_total, 1e-12 * (busy_total + 1e-30));
  }
}

TEST(Trace, PerfettoJsonIsValidAndCompletelyLabelled) {
  auto& f = fixture();
  const auto run = f.three_batches();
  const PipelineTrace trace = pipeline_trace(run);
  const JsonValue doc = json_parse(trace_json(trace));

  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::size_t n_slices = 0, n_meta = 0;
  std::map<double, std::string> lane_names;
  for (const JsonValue& e : events.array) {
    const std::string ph = e.at("ph").string;
    if (ph == "M") {
      ++n_meta;
      if (e.at("name").string == "thread_name") {
        lane_names[e.at("tid").number] = e.at("args").at("name").string;
      }
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++n_slices;
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GT(e.at("dur").number, 0.0);
    EXPECT_TRUE(e.at("args").has("batch"));
    // Every slice sits on a named lane.
    EXPECT_TRUE(lane_names.count(e.at("tid").number) > 0);
  }
  EXPECT_EQ(n_slices, trace.slices.size());
  EXPECT_EQ(n_meta, trace.lanes.size() + 1);  // + process_name
  EXPECT_EQ(lane_names[0.0], "host");
  EXPECT_EQ(lane_names[1.0], "device");
  // 6 stages x 3 batches on the host/device lanes, plus >= 1 DPU slice.
  EXPECT_GT(trace.slices.size(), 18u);
}

TEST(Trace, MultiHostTraceCoversEveryPhaseOnNamedLanes) {
  // The multi-host exporter lays coordinator work on lane 0, the network on
  // lane 1, and each active host on lane 2+h; slice durations reconstruct
  // the per-batch phase split, and the last coordinator slice ends at
  // elapsed_seconds bit-for-bit (both come from core::multihost_timeline).
  auto& f = fixture();
  const auto run = f.multihost_batches();
  ASSERT_EQ(run.slots.size(), 3u);
  const PipelineTrace trace = multihost_trace(run);

  std::map<int, std::string> lanes(trace.lanes.begin(), trace.lanes.end());
  EXPECT_EQ(lanes.at(0), "coordinator");
  EXPECT_EQ(lanes.at(1), "network");
  EXPECT_EQ(lanes.at(2), "host-0");
  ASSERT_EQ(lanes.size(), 5u);  // coordinator + network + 3 hosts

  double last_end = 0;
  std::vector<double> coord(run.slots.size(), 0.0);
  std::vector<double> net(run.slots.size(), 0.0);
  for (const TraceSlice& s : trace.slices) {
    EXPECT_TRUE(lanes.count(s.lane)) << s.name;
    if (s.lane == 0) coord[s.batch] += s.duration_seconds;
    if (s.lane == 1) net[s.batch] += s.duration_seconds;
    last_end = std::max(last_end, s.start_seconds + s.duration_seconds);
  }
  for (std::size_t b = 0; b < run.slots.size(); ++b) {
    const auto& r = run.slots[b].report;
    EXPECT_DOUBLE_EQ(coord[b], r.coord_filter_seconds + r.coord_merge_seconds);
    EXPECT_DOUBLE_EQ(net[b], r.broadcast_seconds + r.gather_seconds);
  }
  // Slice ends re-associate (start + gather) + merge, so compare to a few
  // ulps; the timeline itself is the bit-exact source of elapsed_seconds.
  EXPECT_DOUBLE_EQ(last_end, run.elapsed_seconds);
  EXPECT_EQ(core::multihost_timeline(run).back().post_end,
            run.elapsed_seconds);

  const JsonValue doc = json_parse(trace_json(trace));
  EXPECT_EQ(doc.at("traceEvents").array.size(),
            trace.slices.size() + trace.lanes.size() + 1);
}

TEST(ReportJson, MultiHostPipelineReportRoundTripsBitExact) {
  auto& f = fixture();
  const auto run = f.multihost_batches();
  const JsonValue v = json_parse(multi_host_pipeline_json(run));
  auto bits_eq = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof a) == 0;
  };
  EXPECT_TRUE(v.at("overlapped").boolean);
  EXPECT_TRUE(bits_eq(v.at("elapsed_seconds").number, run.elapsed_seconds));
  EXPECT_TRUE(bits_eq(v.at("serial_seconds").number, run.serial_seconds));
  ASSERT_EQ(v.at("slots").array.size(), run.slots.size());
  for (std::size_t i = 0; i < run.slots.size(); ++i) {
    const JsonValue& slot = v.at("slots").at(i);
    EXPECT_TRUE(
        bits_eq(slot.at("pre_seconds").number, run.slots[i].pre_seconds));
    EXPECT_TRUE(
        bits_eq(slot.at("device_seconds").number, run.slots[i].device_seconds));
    EXPECT_TRUE(
        bits_eq(slot.at("post_seconds").number, run.slots[i].post_seconds));
    const JsonValue& r = slot.at("report");
    const auto& mh = run.slots[i].report;
    EXPECT_TRUE(bits_eq(r.at("seconds").number, mh.seconds));
    EXPECT_TRUE(bits_eq(r.at("broadcast_seconds").number,
                        mh.broadcast_seconds));
    EXPECT_TRUE(
        bits_eq(r.at("coord_merge_seconds").number, mh.coord_merge_seconds));
    ASSERT_EQ(r.at("host_slots").array.size(), mh.host_slots.size());
    for (std::size_t h = 0; h < mh.host_slots.size(); ++h) {
      const JsonValue& hs = r.at("host_slots").at(h);
      EXPECT_EQ(hs.at("active").boolean, mh.host_slots[h].active);
      EXPECT_TRUE(bits_eq(hs.at("device_seconds").number,
                          mh.host_slots[h].device_seconds));
    }
  }
}

TEST(ReportJson, SearchReportRoundTripsBitExact) {
  auto& f = fixture();
  core::UpAnnsEngine engine(f.index, f.stats, f.options());
  const core::SearchReport r = engine.search(f.wl.queries);
  const JsonValue v = json_parse(search_report_json(r));

  auto bits_eq = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof a) == 0;
  };
  const JsonValue& t = v.at("times");
  EXPECT_TRUE(bits_eq(t.at("cluster_filter").number, r.times.cluster_filter));
  EXPECT_TRUE(bits_eq(t.at("lut_build").number, r.times.lut_build));
  EXPECT_TRUE(bits_eq(t.at("distance_calc").number, r.times.distance_calc));
  EXPECT_TRUE(bits_eq(t.at("topk").number, r.times.topk));
  EXPECT_TRUE(bits_eq(t.at("transfer").number, r.times.transfer));
  EXPECT_TRUE(bits_eq(t.at("total").number, r.times.total()));

  ASSERT_EQ(v.at("trace").array.size(), r.trace.size());
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    const JsonValue& s = v.at("trace").at(i);
    EXPECT_EQ(s.at("name").string, r.trace[i].name);
    EXPECT_TRUE(bits_eq(s.at("seconds").number, r.trace[i].seconds));
  }

  ASSERT_TRUE(r.pim.has_value());
  const JsonValue& px = v.at("pim");
  EXPECT_TRUE(bits_eq(px.at("balance_ratio").number, r.pim->balance_ratio));
  EXPECT_TRUE(
      bits_eq(px.at("schedule_balance").number, r.pim->schedule_balance));
  ASSERT_EQ(px.at("dpu_busy_seconds").array.size(),
            r.pim->dpu_busy_seconds.size());
  ASSERT_EQ(px.at("dpu_stage_seconds").array.size(),
            r.pim->dpu_stage_seconds.size());
  for (std::size_t d = 0; d < r.pim->dpu_stage_seconds.size(); ++d) {
    const JsonValue& sd = px.at("dpu_stage_seconds").at(d);
    EXPECT_TRUE(bits_eq(sd.at("lut").number, r.pim->dpu_stage_seconds[d].lut));
    EXPECT_TRUE(
        bits_eq(sd.at("dist").number, r.pim->dpu_stage_seconds[d].dist));
    EXPECT_TRUE(
        bits_eq(sd.at("topk").number, r.pim->dpu_stage_seconds[d].topk));
  }
}

TEST(ReportJson, BatchPipelineReportRoundTripsBitExact) {
  auto& f = fixture();
  const auto run = f.three_batches();
  const JsonValue v = json_parse(batch_pipeline_json(run));
  auto bits_eq = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof a) == 0;
  };
  EXPECT_TRUE(v.at("overlapped").boolean);
  EXPECT_EQ(v.at("n_queries").number, 48.0);
  EXPECT_TRUE(bits_eq(v.at("elapsed_seconds").number, run.elapsed_seconds));
  EXPECT_TRUE(bits_eq(v.at("serial_seconds").number, run.serial_seconds));
  ASSERT_EQ(v.at("slots").array.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const JsonValue& slot = v.at("slots").at(i);
    EXPECT_TRUE(
        bits_eq(slot.at("host_seconds").number, run.slots[i].host_seconds));
    EXPECT_TRUE(bits_eq(slot.at("device_seconds").number,
                        run.slots[i].device_seconds));
    EXPECT_TRUE(bits_eq(slot.at("report").at("times").at("total").number,
                        run.slots[i].report.times.total()));
  }
}

TEST(Parity, AttachingARegistryChangesNothing) {
  // Acceptance criterion: with and without a registry, reports (neighbors,
  // every stage time, per-slot split, elapsed) are bit-identical.
  auto& f = fixture();
  const auto plain = f.three_batches(nullptr);
  MetricsRegistry reg;
  const auto instrumented = f.three_batches(&reg);

  EXPECT_DOUBLE_EQ(plain.elapsed_seconds, instrumented.elapsed_seconds);
  EXPECT_DOUBLE_EQ(plain.serial_seconds, instrumented.serial_seconds);
  ASSERT_EQ(plain.slots.size(), instrumented.slots.size());
  for (std::size_t i = 0; i < plain.slots.size(); ++i) {
    const auto& a = plain.slots[i];
    const auto& b = instrumented.slots[i];
    EXPECT_DOUBLE_EQ(a.host_seconds, b.host_seconds);
    EXPECT_DOUBLE_EQ(a.device_seconds, b.device_seconds);
    EXPECT_EQ(a.report.neighbors, b.report.neighbors);
    EXPECT_DOUBLE_EQ(a.report.times.total(), b.report.times.total());
    ASSERT_EQ(a.report.trace.size(), b.report.trace.size());
    for (std::size_t s = 0; s < a.report.trace.size(); ++s) {
      EXPECT_DOUBLE_EQ(a.report.trace[s].seconds, b.report.trace[s].seconds);
    }
  }

  // And the registry actually saw the run.
  EXPECT_EQ(reg.counter("pipeline.batches").value(), 3u);
  EXPECT_EQ(reg.counter("pipeline.queries").value(), 48u);
  EXPECT_GE(reg.counter("pim.launches").value(), 3u);
  EXPECT_EQ(reg.histogram("pipeline.stage.kernel-launch.seconds").count(), 3u);
  EXPECT_EQ(reg.counter("batch_pipeline.runs").value(), 1u);
  EXPECT_GT(reg.counter("transfer.push.bytes").value(), 0u);
  EXPECT_GT(reg.counter("transfer.gather.bytes").value(), 0u);
  EXPECT_GT(reg.counter("schedule.assignments").value(), 0u);
}

}  // namespace
}  // namespace upanns::obs
