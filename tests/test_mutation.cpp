// Streaming-mutability tests: the updatable IVF-PQ core and the incremental
// MRAM patch path.
//
//  * CPU parity: after interleaved insert/remove (+ compact), searching the
//    mutated index matches a fresh build-equivalent index rebuilt from the
//    surviving points over the same frozen quantizers — ids equal,
//    distances bit-equal;
//  * engine parity: the patched PIM engine reproduces a freshly built
//    engine bit for bit, both mid-stream (tombstones live in MRAM) and
//    after a full compaction;
//  * incrementality: a 1%-of-points update patches < 10% of the bytes a
//    full load_dpus() pushes;
//  * read-only equivalence: an updatable engine with no writes issued
//    serves bit-identically to a read-only one;
//  * MRAM region reuse: released list regions are recycled first-fit and
//    survive scratch rewinds;
//  * relocate()/ClusterStats on a mutated index: the replica layout reflects
//    post-insert list sizes.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "baselines/cpu_ivfpq.hpp"
#include "common/rng.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/multihost.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "ivf/ivf_index.hpp"
#include "pim/dpu.hpp"

namespace upanns {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(6000, 42));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 24;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 32;
    spec.seed = 9;
    wl = data::generate_workload(base, spec);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, wl.queries, 6));
  }

  core::UpAnnsOptions options() const {
    core::UpAnnsOptions o = core::UpAnnsOptions::upanns();
    o.n_dpus = 8;
    o.nprobe = 6;
    o.k = 10;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// id -> vector store mirroring the live set (the rebuild substrate).
using VectorStore = std::map<std::uint32_t, std::vector<float>>;

VectorStore initial_store(const Fixture& f) {
  VectorStore store;
  for (std::size_t i = 0; i < f.base.n; ++i) {
    store[static_cast<std::uint32_t>(i)] = {f.base.row(i),
                                            f.base.row(i) + f.base.dim};
  }
  return store;
}

std::vector<float> perturbed_row(const Fixture& f, common::Rng& rng) {
  const float* row = f.base.row(rng.below(f.base.n));
  std::vector<float> v(row, row + f.base.dim);
  for (float& x : v) x += rng.uniform(-0.05f, 0.05f);
  return v;
}

/// Rebuild-equivalence oracle: an empty index over the same frozen
/// quantizers, filled with the mutated index's surviving points in
/// (cluster, slot) order. Final kmeans labels are nearest-centroid
/// assignments, so insert() places every survivor in the cluster it already
/// occupies and the rebuilt lists match a compacted original exactly.
ivf::IvfIndex rebuild_from_survivors(const ivf::IvfIndex& mutated,
                                     const VectorStore& store) {
  ivf::IvfIndex fresh = ivf::IvfIndex::empty_like(mutated);
  std::vector<std::uint32_t> ids;
  std::vector<float> flat;
  for (const ivf::InvertedList& list : mutated.lists()) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list.is_dead(i)) continue;
      ids.push_back(list.ids[i]);
      const std::vector<float>& v = store.at(list.ids[i]);
      flat.insert(flat.end(), v.begin(), v.end());
    }
  }
  fresh.insert(ids, flat);
  return fresh;
}

void expect_same_neighbors(
    const std::vector<std::vector<common::Neighbor>>& a,
    const std::vector<std::vector<common::Neighbor>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(std::memcmp(&a[q][i].dist, &b[q][i].dist, sizeof(float)), 0)
          << "query " << q << " rank " << i;
    }
  }
}

void expect_same_report(const core::SearchReport& a,
                        const core::SearchReport& b) {
  expect_same_neighbors(a.neighbors, b.neighbors);
  EXPECT_EQ(a.times.cluster_filter, b.times.cluster_filter);
  EXPECT_EQ(a.times.lut_build, b.times.lut_build);
  EXPECT_EQ(a.times.distance_calc, b.times.distance_calc);
  EXPECT_EQ(a.times.topk, b.times.topk);
  EXPECT_EQ(a.times.transfer, b.times.transfer);
  ASSERT_TRUE(a.pim.has_value());
  ASSERT_TRUE(b.pim.has_value());
  EXPECT_EQ(a.pim->total_instructions, b.pim->total_instructions);
  EXPECT_EQ(a.pim->total_dma_cycles, b.pim->total_dma_cycles);
  EXPECT_EQ(a.pim->scanned_records, b.pim->scanned_records);
}

// ---------------------------------------------------------------------------
// IvfIndex-level mutation + CPU parity oracle.

TEST(IvfMutation, InsertRemoveCompactBookkeeping) {
  auto& f = fixture();
  ivf::IvfIndex idx = f.index;
  const std::size_t n0 = idx.n_points();

  const std::uint32_t id = 1'000'000;
  const std::vector<float> v(f.base.row(0), f.base.row(0) + f.base.dim);
  idx.insert({&id, 1}, v);
  EXPECT_EQ(idx.n_points(), n0 + 1);
  EXPECT_TRUE(idx.contains(id));
  EXPECT_THROW(idx.insert({&id, 1}, v), std::invalid_argument);

  EXPECT_TRUE(idx.remove(id));
  EXPECT_FALSE(idx.remove(id));  // already dead
  EXPECT_FALSE(idx.contains(id));
  EXPECT_EQ(idx.n_points(), n0);

  EXPECT_TRUE(idx.remove(7));
  std::size_t tombstoned = 0;
  for (const auto& list : idx.lists()) tombstoned += list.n_tombstones;
  EXPECT_EQ(tombstoned, 2u);

  EXPECT_GT(idx.compact(), 0u);
  for (const auto& list : idx.lists()) {
    EXPECT_FALSE(list.has_tombstones());
  }
  EXPECT_EQ(idx.n_points(), n0 - 1);
  EXPECT_FALSE(idx.contains(7));
}

TEST(CpuParity, InterleavedMutationsMatchRebuildFromSurvivors) {
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  VectorStore store = initial_store(f);
  common::Rng rng(404);

  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint32_t> ids;
    std::vector<float> flat;
    for (int i = 0; i < 60; ++i) {
      const std::vector<float> v = perturbed_row(f, rng);
      ids.push_back(next_id);
      store[next_id] = v;
      flat.insert(flat.end(), v.begin(), v.end());
      ++next_id;
    }
    mut.insert(ids, flat);
    for (int i = 0; i < 45; ++i) {
      auto it = store.begin();
      std::advance(it, static_cast<long>(rng.below(store.size())));
      ASSERT_TRUE(mut.remove(it->first));
      store.erase(it);
    }
    if (round == 1) mut.compact(0.3);  // mid-stream partial compaction
  }
  EXPECT_EQ(mut.n_points(), store.size());

  const baselines::SearchParams params{6, 10};

  // Tombstones still in place: dead slots must be invisible to the scan.
  {
    const ivf::IvfIndex rebuilt = rebuild_from_survivors(mut, store);
    const auto a = baselines::CpuIvfpqSearcher(mut).search(f.wl.queries, params);
    const auto b =
        baselines::CpuIvfpqSearcher(rebuilt).search(f.wl.queries, params);
    expect_same_neighbors(a.neighbors, b.neighbors);
    // Dead slots cost a physical scan but produce no candidates.
    EXPECT_EQ(a.profile.total_candidates, b.profile.total_candidates);
  }

  // Fully compacted: the lists themselves must match the rebuild exactly.
  mut.compact();
  const ivf::IvfIndex rebuilt = rebuild_from_survivors(mut, store);
  ASSERT_EQ(mut.n_clusters(), rebuilt.n_clusters());
  for (std::size_t c = 0; c < mut.n_clusters(); ++c) {
    EXPECT_EQ(mut.list(c).ids, rebuilt.list(c).ids) << "cluster " << c;
    EXPECT_EQ(mut.list(c).codes, rebuilt.list(c).codes) << "cluster " << c;
  }
  const auto a = baselines::CpuIvfpqSearcher(mut).search(f.wl.queries, params);
  const auto b =
      baselines::CpuIvfpqSearcher(rebuilt).search(f.wl.queries, params);
  expect_same_neighbors(a.neighbors, b.neighbors);
}

// ---------------------------------------------------------------------------
// Engine-level parity: incremental patching vs fresh build.

TEST(EngineParity, PatchedImagesMatchFreshLoadMidStream) {
  // Direct-token mode: the append encoder emits exactly what a fresh build
  // emits, so mid-stream (tombstones in MRAM, grown lists, possibly
  // relocated regions) the patched engine must match a fresh engine built
  // over the same mutated index bit for bit — results *and* timing.
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  core::UpAnnsOptions opts = f.options();
  opts.opt_cae = false;
  core::UpAnnsEngine engine(mut, f.stats, opts);
  ASSERT_TRUE(engine.updatable());

  common::Rng rng(77);
  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  std::vector<std::uint32_t> ids;
  std::vector<float> flat;
  for (int i = 0; i < 120; ++i) {
    const std::vector<float> v = perturbed_row(f, rng);
    ids.push_back(next_id++);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  engine.upsert(ids, flat);
  std::vector<std::uint32_t> dead;
  for (std::uint32_t id = 0; id < 90; ++id) dead.push_back(id * 7);
  EXPECT_EQ(engine.remove(dead), dead.size());

  ASSERT_TRUE(engine.needs_patch());
  const auto ps = engine.patch_dpus();
  EXPECT_GT(ps.bytes_written, 0u);
  EXPECT_GT(ps.lists_patched, 0u);
  EXPECT_FALSE(engine.needs_patch());

  core::UpAnnsEngine fresh(static_cast<const ivf::IvfIndex&>(mut), f.stats,
                           opts);
  expect_same_report(engine.search(f.wl.queries), fresh.search(f.wl.queries));
}

TEST(EngineParity, CompactedEngineMatchesRebuiltIndexBitForBit) {
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  VectorStore store = initial_store(f);
  core::UpAnnsEngine engine(mut, f.stats, f.options());

  common::Rng rng(505);
  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::uint32_t> ids;
    std::vector<float> flat;
    for (int i = 0; i < 50; ++i) {
      const std::vector<float> v = perturbed_row(f, rng);
      ids.push_back(next_id);
      store[next_id] = v;
      flat.insert(flat.end(), v.begin(), v.end());
      ++next_id;
    }
    engine.upsert(ids, flat);
    std::vector<std::uint32_t> dead;
    for (int i = 0; i < 40; ++i) {
      auto it = store.begin();
      std::advance(it, static_cast<long>(rng.below(store.size())));
      dead.push_back(it->first);
      store.erase(it);
    }
    EXPECT_EQ(engine.remove(dead), dead.size());
    engine.patch_dpus();
  }

  // Tombstone one point in every cluster so compact() rewrites them all —
  // every list re-encodes from its compacted content, exactly what a fresh
  // build over the rebuilt index computes.
  for (std::size_t c = 0; c < mut.n_clusters(); ++c) {
    for (std::size_t i = 0; i < mut.list(c).size(); ++i) {
      if (!mut.list(c).is_dead(i)) {
        const std::uint32_t id = mut.list(c).ids[i];
        ASSERT_EQ(engine.remove({&id, 1}), 1u);
        store.erase(id);
        break;
      }
    }
  }
  EXPECT_EQ(engine.compact(0.0), mut.n_clusters());
  engine.patch_dpus();

  const ivf::IvfIndex rebuilt = rebuild_from_survivors(mut, store);
  EXPECT_EQ(rebuilt.n_points(), mut.n_points());
  core::UpAnnsEngine fresh(rebuilt, f.stats, f.options());
  expect_same_report(engine.search(f.wl.queries), fresh.search(f.wl.queries));
}

TEST(EngineParity, ReadOnlyServingUnchangedByUpdatability) {
  auto& f = fixture();
  ivf::IvfIndex copy = f.index;
  // A const index selects the read-only engine; a mutable one the updatable
  // engine. With no writes issued they must serve identically.
  core::UpAnnsEngine readonly(std::as_const(f.index), f.stats, f.options());
  core::UpAnnsEngine updatable(copy, f.stats, f.options());
  ASSERT_FALSE(readonly.updatable());
  ASSERT_TRUE(updatable.updatable());
  EXPECT_FALSE(updatable.needs_patch());

  // A patch with nothing dirty is an all-zero no-op.
  const auto ps = updatable.patch_dpus();
  EXPECT_EQ(ps.bytes_written, 0u);
  EXPECT_EQ(ps.lists_patched, 0u);
  EXPECT_EQ(ps.seconds, 0.0);

  expect_same_report(readonly.search(f.wl.queries),
                     updatable.search(f.wl.queries));
}

TEST(EngineParity, MutationsOnReadOnlyEngineThrow) {
  auto& f = fixture();
  core::UpAnnsEngine engine(std::as_const(f.index), f.stats, f.options());
  const std::uint32_t id = 99;
  const std::vector<float> v(f.base.dim, 0.f);
  EXPECT_THROW(engine.upsert({&id, 1}, v), std::logic_error);
  EXPECT_THROW(engine.remove({&id, 1}), std::logic_error);
  EXPECT_THROW(engine.compact(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Incrementality: the whole point of patch_dpus.

TEST(Incrementality, OnePercentUpdatePatchesUnderTenPercentOfImage) {
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  core::UpAnnsEngine engine(mut, f.stats, f.options());
  ASSERT_GT(engine.load_image_bytes(), 0u);

  common::Rng rng(31);
  const std::size_t n_updates = f.base.n / 100;  // 1% of the base points
  std::vector<std::uint32_t> ids;
  std::vector<float> flat;
  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  for (std::size_t i = 0; i < n_updates; ++i) {
    const std::vector<float> v = perturbed_row(f, rng);
    ids.push_back(next_id++);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  engine.upsert(ids, flat);

  const auto ps = engine.patch_dpus();
  EXPECT_GT(ps.bytes_written, 0u);
  EXPECT_LT(ps.bytes_written, engine.load_image_bytes() / 10)
      << "patch must stay incremental: full image is "
      << engine.load_image_bytes() << " bytes";
  EXPECT_GT(ps.seconds, 0.0);
  EXPECT_EQ(engine.patch_bytes_total(), ps.bytes_written);

  // Nothing left to sync.
  const auto again = engine.patch_dpus();
  EXPECT_EQ(again.bytes_written, 0u);
  EXPECT_EQ(engine.patch_bytes_total(), ps.bytes_written);
}

// ---------------------------------------------------------------------------
// MRAM region reuse (pim::Dpu free list).

TEST(MramReuse, ReleasedRegionsAreRecycledFirstFit) {
  pim::Dpu dpu(0);
  const std::size_t a = dpu.mram_alloc(1024, "a");
  const std::size_t b = dpu.mram_alloc(512, "b");
  const std::size_t top = dpu.mram_mark();
  (void)b;

  dpu.mram_release(a, 1024);
  EXPECT_EQ(dpu.mram_released_bytes(), 1024u);

  // First fit splits the region; the remainder stays on the free list.
  EXPECT_EQ(dpu.mram_alloc_reuse(512, "c"), a);
  EXPECT_EQ(dpu.mram_released_bytes(), 512u);
  EXPECT_EQ(dpu.mram_alloc_reuse(512, "d"), a + 512);
  EXPECT_EQ(dpu.mram_released_bytes(), 0u);

  // Free list empty: falls through to the bump allocator.
  EXPECT_EQ(dpu.mram_alloc_reuse(64, "e"), top);
}

TEST(MramReuse, AdjacentReleasesCoalesce) {
  pim::Dpu dpu(0);
  const std::size_t a = dpu.mram_alloc(256, "a");
  const std::size_t b = dpu.mram_alloc(256, "b");
  const std::size_t c = dpu.mram_alloc(256, "c");
  (void)c;

  dpu.mram_release(a, 256);
  dpu.mram_release(b, 256);  // coalesces with a
  EXPECT_EQ(dpu.mram_released_bytes(), 512u);
  EXPECT_EQ(dpu.mram_alloc_reuse(512, "big"), a);
  EXPECT_EQ(dpu.mram_released_bytes(), 0u);
}

TEST(MramReuse, RewindDropsRegionsPastTheMark) {
  pim::Dpu dpu(0);
  const std::size_t a = dpu.mram_alloc(256, "static");
  const std::size_t mark = dpu.mram_mark();
  const std::size_t s = dpu.mram_alloc(512, "scratch");

  dpu.mram_release(a, 256);   // below the mark: survives
  dpu.mram_release(s, 512);   // at/past the mark: dropped by rewind
  dpu.mram_rewind(mark);
  EXPECT_EQ(dpu.mram_released_bytes(), 256u);
  EXPECT_EQ(dpu.mram_alloc_reuse(256, "again"), a);
}

TEST(MramReuse, GrowthPastSlackRelocatesAndRecyclesRegions) {
  // Insert a flood of near-centroid points so one cluster outgrows its 25%
  // slack: the patch must relocate that region (regions_moved > 0) and the
  // relocated engine must still match a fresh build over the mutated index.
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  core::UpAnnsOptions opts = f.options();
  opts.opt_cae = false;  // append path == fresh path, bit for bit
  core::UpAnnsEngine engine(mut, f.stats, opts);

  // Target the biggest cluster's centroid so every insert lands on it.
  std::size_t target = 0;
  for (std::size_t c = 0; c < mut.n_clusters(); ++c) {
    if (mut.list(c).size() > mut.list(target).size()) target = c;
  }
  const std::size_t grow =
      mut.list(target).size() / 2 + 16;  // well past 25% slack
  common::Rng rng(91);
  std::vector<std::uint32_t> ids;
  std::vector<float> flat;
  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  for (std::size_t i = 0; i < grow; ++i) {
    std::vector<float> v(mut.centroid(target), mut.centroid(target) + mut.dim());
    for (float& x : v) x += rng.uniform(-1e-3f, 1e-3f);
    ids.push_back(next_id++);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  engine.upsert(ids, flat);
  ASSERT_EQ(mut.list(target).size(),
            f.index.list(target).size() + grow);  // all landed on target

  const auto ps = engine.patch_dpus();
  EXPECT_GT(ps.regions_moved, 0u);

  core::UpAnnsEngine fresh(static_cast<const ivf::IvfIndex&>(mut), f.stats,
                           opts);
  expect_same_report(engine.search(f.wl.queries), fresh.search(f.wl.queries));
}

// ---------------------------------------------------------------------------
// relocate() + ClusterStats over a mutated index.

TEST(RelocateAfterMutation, ReplicaLayoutReflectsPostInsertSizes) {
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  core::UpAnnsOptions opts = f.options();
  opts.opt_cae = false;
  core::UpAnnsEngine engine(mut, f.stats, opts);

  common::Rng rng(123);
  std::vector<std::uint32_t> ids;
  std::vector<float> flat;
  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  for (int i = 0; i < 300; ++i) {
    const std::vector<float> v = perturbed_row(f, rng);
    ids.push_back(next_id++);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  engine.upsert(ids, flat);
  engine.patch_dpus();

  // Fresh stats over the mutated index see the post-insert physical sizes.
  const auto probes = ivf::filter_batch(mut, f.wl.queries, 6);
  const ivf::ClusterStats stats = ivf::collect_stats(mut, probes);
  ASSERT_EQ(stats.n_clusters(), mut.n_clusters());
  for (std::size_t c = 0; c < mut.n_clusters(); ++c) {
    EXPECT_EQ(stats.sizes[c], mut.list(c).size()) << "cluster " << c;
  }

  engine.relocate(stats);

  // The rebuilt replica layout accounts every copy at its post-insert size.
  const core::Placement& p = engine.placement();
  std::size_t placed = 0;
  for (std::size_t d = 0; d < p.dpu_vectors.size(); ++d) {
    placed += p.dpu_vectors[d];
  }
  std::size_t expected = 0;
  for (std::size_t c = 0; c < mut.n_clusters(); ++c) {
    ASSERT_GE(p.cluster_dpus[c].size(), 1u) << "cluster " << c;
    expected += p.cluster_dpus[c].size() * mut.list(c).size();
  }
  EXPECT_EQ(placed, expected);

  // Relocation over a mutated index serves like a fresh engine given the
  // same stats.
  core::UpAnnsEngine fresh(static_cast<const ivf::IvfIndex&>(mut), stats,
                           opts);
  expect_same_report(engine.search(f.wl.queries), fresh.search(f.wl.queries));
}

// ---------------------------------------------------------------------------
// Backend capability surface.

TEST(BackendUpdates, CapabilityAndLazyPatch) {
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;

  auto readonly = core::make_backend(core::BackendKind::kUpAnns,
                                     std::as_const(f.index), f.stats,
                                     f.options());
  EXPECT_FALSE(readonly->supports_updates());
  const std::uint32_t id = 123456;
  const std::vector<float> v(f.base.dim, 0.f);
  EXPECT_THROW(readonly->upsert({&id, 1}, v), std::logic_error);
  EXPECT_THROW(readonly->remove({&id, 1}), std::logic_error);

  auto cpu = core::make_backend(core::BackendKind::kCpuIvfpq, mut, f.stats,
                                f.options());
  auto pim = core::make_backend(core::BackendKind::kUpAnns, mut, f.stats,
                                f.options());
  EXPECT_TRUE(cpu->supports_updates());
  EXPECT_TRUE(pim->supports_updates());

  // Writes through both backends, then search: the PIM backend patches
  // lazily and must agree with the CPU oracle on the mutated state.
  common::Rng rng(55);
  const std::vector<float> nv = perturbed_row(f, rng);
  cpu->upsert({&id, 1}, nv);
  pim->upsert({&id, 1}, nv);
  const std::uint32_t dead = 11;
  EXPECT_EQ(cpu->remove({&dead, 1}), 1u);
  // Both backends mutate the same index; the CPU remove above already
  // tombstoned it there, so the PIM remove sees it dead.
  EXPECT_EQ(pim->remove({&dead, 1}), 0u);

  const auto probes = ivf::filter_batch(mut, f.wl.queries, 6);
  const auto a = cpu->search_with_probes(f.wl.queries, probes);
  const auto b = pim->search_with_probes(f.wl.queries, probes);
  // ADC distances agree across CPU float and PIM fixed-point paths only at
  // the id level; assert the live/dead transition is visible to both.
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  for (std::size_t q = 0; q < a.neighbors.size(); ++q) {
    for (const auto& nb : a.neighbors[q]) EXPECT_NE(nb.id, dead);
    for (const auto& nb : b.neighbors[q]) EXPECT_NE(nb.id, dead);
  }
}

// ---------------------------------------------------------------------------
// Multi-host streaming updates.

TEST(MultiHostUpdates, PatchedHostsMatchFreshClusterMidStream) {
  // Mutations route through the cluster's shared index; every host patches
  // only its own shard. Mid-stream (tombstones still live in MRAM), the
  // patched cluster must serve bit-identically to a fresh cluster built over
  // the mutated index.
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  core::MultiHostOptions mh;
  mh.n_hosts = 3;
  mh.per_host = f.options();
  mh.per_host.opt_cae = false;  // append path == fresh path, bit for bit
  core::MultiHostUpAnns cluster(mut, f.stats, mh);
  ASSERT_TRUE(cluster.updatable());
  EXPECT_FALSE(cluster.needs_patch());

  common::Rng rng(77);
  std::vector<std::uint32_t> ids;
  std::vector<float> flat;
  std::uint32_t next_id = static_cast<std::uint32_t>(f.base.n);
  for (int i = 0; i < 90; ++i) {
    const std::vector<float> v = perturbed_row(f, rng);
    ids.push_back(next_id++);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  cluster.upsert(ids, flat);
  std::vector<std::uint32_t> dead;
  for (std::uint32_t id = 0; id < 60; ++id) dead.push_back(id * 11);
  EXPECT_EQ(cluster.remove(dead), dead.size());

  ASSERT_TRUE(cluster.needs_patch());
  const auto ps = cluster.patch_hosts();
  EXPECT_GT(ps.bytes_written, 0u);
  EXPECT_GT(ps.lists_patched, 0u);
  EXPECT_FALSE(cluster.needs_patch());

  core::MultiHostUpAnns fresh(static_cast<const ivf::IvfIndex&>(mut), f.stats,
                              mh);
  const auto a = cluster.search(f.wl.queries);
  const auto b = fresh.search(f.wl.queries);
  expect_same_neighbors(a.neighbors, b.neighbors);
  EXPECT_EQ(a.slowest_host_seconds, b.slowest_host_seconds);
  EXPECT_EQ(a.seconds, b.seconds);
}

}  // namespace
}  // namespace upanns
