#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace upanns::common {
namespace {

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicMoments) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({7.5});
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 1.0), 9.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 0.25), 2.5);
}

TEST(Percentile, ClampsP) {
  EXPECT_DOUBLE_EQ(percentile({1, 2}, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2}, -1.0), 1.0);
}

TEST(MaxOverMean, BalancedIsOne) {
  EXPECT_DOUBLE_EQ(max_over_mean({4, 4, 4, 4}), 1.0);
}

TEST(MaxOverMean, DetectsSkew) {
  // One hot DPU with 4x the average load -> ratio well above 1 (Fig 11).
  EXPECT_NEAR(max_over_mean({1, 1, 1, 9}), 3.0, 1e-12);
}

TEST(MaxOverMean, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(max_over_mean({}), 0.0);
}

TEST(MaxOverMean, AllZeroIsZeroNotNan) {
  // A batch where no DPU ran at all (zero mean) must not divide by zero:
  // the pipeline feeds raw busy-seconds vectors straight in.
  EXPECT_DOUBLE_EQ(max_over_mean({0, 0, 0, 0}), 0.0);
}

TEST(MaxOverMean, IdleMembersCountTowardTheMean) {
  // Idle-but-present entries drag the mean down and must not be dropped:
  // one busy DPU out of four is a 4x imbalance, not a balanced 1.0.
  EXPECT_NEAR(max_over_mean({8, 0, 0, 0}), 4.0, 1e-12);
}

TEST(LinearFit, ExactLine) {
  const LinearFit f = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(f.predict(10), 21.0, 1e-12);
}

TEST(LinearFit, NoisyLineHighR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 5.0 + ((i % 2 == 0) ? 0.3 : -0.3));
  }
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 0.01);
  EXPECT_GT(f.r2, 0.999);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_linear({1}, {2}).slope, 0.0);
  // Vertical data (all same x) must not divide by zero.
  const LinearFit f = fit_linear({3, 3, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
}

}  // namespace
}  // namespace upanns::common
