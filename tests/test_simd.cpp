// Cross-path SIMD parity: every kernel with scalar / SSE2 / AVX2 variants
// must return bit-identical results at every dispatch level (DESIGN.md §13
// — the 8-chain accumulation order is part of each kernel's contract, so
// vector width is unobservable). These tests pin that, plus the dispatch
// plumbing itself (parse / clamp / env override) and the libm-free
// round_nonneg helper against std::round over the uint16 LUT domain.
#include "common/simd_dispatch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/fastround.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "data/dataset.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "quant/kmeans.hpp"
#include "quant/pq.hpp"

namespace upanns {
namespace {

bool supported(common::SimdLevel l) {
  return static_cast<int>(common::simd_max_supported()) >=
         static_cast<int>(l);
}

std::vector<common::SimdLevel> supported_levels() {
  std::vector<common::SimdLevel> out{common::SimdLevel::kScalar};
  if (supported(common::SimdLevel::kSse2)) out.push_back(common::SimdLevel::kSse2);
  if (supported(common::SimdLevel::kAvx2)) out.push_back(common::SimdLevel::kAvx2);
  return out;
}

/// Restore the dispatch level on scope exit so test order cannot leak.
struct LevelGuard {
  common::SimdLevel prev = common::simd_active_level();
  ~LevelGuard() { common::set_simd_level(prev); }
};

std::vector<float> random_vec(common::Rng& rng, std::size_t n,
                              float lo = -4.f, float hi = 4.f) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

TEST(SimdDispatch, ParseAndNameRoundTrip) {
  for (const auto l : {common::SimdLevel::kScalar, common::SimdLevel::kSse2,
                       common::SimdLevel::kAvx2}) {
    common::SimdLevel parsed;
    ASSERT_TRUE(common::parse_simd_level(common::simd_level_name(l), &parsed));
    EXPECT_EQ(parsed, l);
  }
  common::SimdLevel parsed;
  EXPECT_FALSE(common::parse_simd_level("avx512", &parsed));
  EXPECT_FALSE(common::parse_simd_level("", &parsed));
  EXPECT_FALSE(common::parse_simd_level("SSE2 ", &parsed));
}

TEST(SimdDispatch, SetClampsToSupportedAndSticks) {
  LevelGuard guard;
  // Requesting the max is always satisfiable; requesting above the probe
  // result clamps rather than faulting.
  const auto eff = common::set_simd_level(common::SimdLevel::kAvx2);
  EXPECT_LE(static_cast<int>(eff),
            static_cast<int>(common::simd_max_supported()));
  EXPECT_EQ(common::simd_active_level(), eff);
  EXPECT_EQ(common::set_simd_level(common::SimdLevel::kScalar),
            common::SimdLevel::kScalar);
  EXPECT_EQ(common::simd_active_level(), common::SimdLevel::kScalar);
}

TEST(SimdKernels, L2SqBitExactAcrossImplementations) {
  common::Rng rng(17);
  for (const std::size_t dim :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{24}, std::size_t{51}, std::size_t{128}}) {
    for (int rep = 0; rep < 8; ++rep) {
      const auto a = random_vec(rng, dim);
      const auto b = random_vec(rng, dim);
      const float scalar = quant::detail::l2_sq_scalar(a.data(), b.data(), dim);
      const float sse2 = quant::detail::l2_sq_sse2(a.data(), b.data(), dim);
      EXPECT_EQ(std::memcmp(&scalar, &sse2, sizeof(float)), 0)
          << "sse2 dim=" << dim;
      if (supported(common::SimdLevel::kAvx2)) {
        const float avx2 =
            quant::detail::l2_sq_avx2(a.data(), b.data(), dim);
        EXPECT_EQ(std::memcmp(&scalar, &avx2, sizeof(float)), 0)
            << "avx2 dim=" << dim;
      }
    }
  }
}

TEST(SimdKernels, DispatchedL2SqMatchesScalarAtEveryLevel) {
  LevelGuard guard;
  common::Rng rng(23);
  const auto a = random_vec(rng, 51);
  const auto b = random_vec(rng, 51);
  const float want = quant::detail::l2_sq_scalar(a.data(), b.data(), 51);
  for (const auto level : supported_levels()) {
    common::set_simd_level(level);
    const float got = quant::l2_sq(a.data(), b.data(), 51);
    EXPECT_EQ(std::memcmp(&want, &got, sizeof(float)), 0)
        << common::simd_level_name(level);
  }
}

TEST(SimdKernels, TransposedDistsMatchRowMajorAtEveryLevel) {
  LevelGuard guard;
  common::Rng rng(29);
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{17},
        std::size_t{64}, std::size_t{100}, std::size_t{256}}) {
    for (const std::size_t dim : {std::size_t{2}, std::size_t{8},
                                  std::size_t{16}}) {
      const auto centroids = random_vec(rng, k * dim);
      const auto q = random_vec(rng, dim);
      std::vector<float> tctr;
      quant::transpose_centroids(centroids.data(), k, dim, tctr);
      const std::size_t k_pad = quant::pad8(k);

      // Reference: the row-major kernels at scalar level.
      common::set_simd_level(common::SimdLevel::kScalar);
      std::vector<float> want(k);
      for (std::size_t c = 0; c < k; ++c) {
        want[c] = quant::l2_sq(q.data(), centroids.data() + c * dim, dim);
      }
      const auto [want_idx, want_d] =
          quant::nearest_centroid(q.data(), centroids.data(), k, dim);

      for (const auto level : supported_levels()) {
        common::set_simd_level(level);
        std::vector<float> got(k_pad);
        quant::squared_dists_t(q.data(), tctr.data(), k, k_pad, dim,
                               got.data());
        EXPECT_EQ(std::memcmp(want.data(), got.data(), k * sizeof(float)), 0)
            << "k=" << k << " dim=" << dim << " level="
            << common::simd_level_name(level);
        const auto [idx, d] =
            quant::nearest_centroid_t(q.data(), tctr.data(), k, k_pad, dim);
        EXPECT_EQ(idx, want_idx);
        EXPECT_EQ(std::memcmp(&d, &want_d, sizeof(float)), 0);
      }
    }
  }
}

TEST(FastRound, MatchesStdRoundOverLutDomain) {
  // quantize_lut feeds round_nonneg values in [0, 65535]; the helper must
  // agree with std::round bit-for-bit there (including the .5 ties, which
  // both round away from zero for non-negative inputs).
  for (std::uint32_t i = 0; i <= 65535u * 4u; ++i) {
    const float x = static_cast<float>(i) * 0.25f;
    ASSERT_EQ(common::round_nonneg(x), std::round(x)) << "x=" << x;
  }
  common::Rng rng(31);
  for (int i = 0; i < 200'000; ++i) {
    const float x = rng.uniform(0.f, 65535.f);
    ASSERT_EQ(common::round_nonneg(x), std::round(x)) << "x=" << x;
  }
}

// The acceptance bar for the serve path: neighbors must be byte-identical
// at every dispatch level (float distances compared by bits, not
// tolerance). LUT build, quantization and the integer token scans all
// follow the fixed-order accumulation contract, so this holds exactly.
TEST(SimdEngine, ServeNeighborsByteIdenticalAcrossLevels) {
  LevelGuard guard;
  common::set_simd_level(common::SimdLevel::kScalar);

  data::Dataset base = data::generate_synthetic(data::sift1b_like(6000, 41));
  ivf::IvfBuildOptions bopts;
  bopts.n_clusters = 32;
  bopts.pq_m = 16;
  bopts.coarse_iters = 5;
  bopts.pq_iters = 4;
  const ivf::IvfIndex index = ivf::IvfIndex::build(base, bopts);

  data::WorkloadSpec spec;
  spec.n_queries = 16;
  spec.seed = 4;
  const auto wl = data::generate_workload(base, spec);
  data::WorkloadSpec hist = spec;
  hist.seed = 5;
  hist.n_queries = 64;
  const auto hw = data::generate_workload(base, hist);
  const auto stats =
      ivf::collect_stats(index, ivf::filter_batch(index, hw.queries, 8));

  core::UpAnnsOptions opts = core::UpAnnsOptions::upanns();
  opts.n_dpus = 8;
  opts.nprobe = 8;
  opts.k = 10;

  core::UpAnnsEngine engine(index, stats, opts);
  const auto want = engine.search(wl.queries).neighbors;
  ASSERT_EQ(want.size(), wl.queries.n);

  for (const auto level : supported_levels()) {
    common::set_simd_level(level);
    const auto got = engine.search(wl.queries).neighbors;
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q) {
      ASSERT_EQ(got[q].size(), want[q].size());
      for (std::size_t i = 0; i < want[q].size(); ++i) {
        EXPECT_EQ(got[q][i].id, want[q][i].id)
            << "level=" << common::simd_level_name(level) << " q=" << q;
        EXPECT_EQ(std::memcmp(&got[q][i].dist, &want[q][i].dist,
                              sizeof(float)),
                  0)
            << "level=" << common::simd_level_name(level) << " q=" << q;
      }
    }
  }
}

}  // namespace
}  // namespace upanns
