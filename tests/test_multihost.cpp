#include "core/multihost.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/query_workload.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(8000, 91));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 32;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 16;
    spec.seed = 6;
    wl = data::generate_workload(base, spec);
    stats = ivf::collect_stats(index,
                               ivf::filter_batch(index, wl.queries, 8));
  }

  MultiHostOptions opts(std::size_t hosts) const {
    MultiHostOptions o;
    o.n_hosts = hosts;
    o.per_host = UpAnnsOptions::upanns();
    o.per_host.n_dpus = 8;
    o.per_host.nprobe = 8;
    o.per_host.k = 10;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(MultiHost, RejectsZeroHosts) {
  auto& f = fixture();
  EXPECT_THROW(MultiHostUpAnns(f.index, f.stats, f.opts(0)),
               std::invalid_argument);
}

TEST(MultiHost, EveryClusterOwnedByExactlyOneHost) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t c = 0; c < f.index.n_clusters(); ++c) {
    ASSERT_LT(mh.host_of(c), 3u);
    ++counts[mh.host_of(c)];
  }
  // Balanced-ish sharding: no host empty.
  for (auto cnt : counts) EXPECT_GT(cnt, 0u);
}

TEST(MultiHost, MatchesSingleEngineResults) {
  // Union of per-host scans covers exactly the probed clusters, and the
  // quantized distance pipeline is per-(query, cluster): a 3-host system
  // must retrieve the same neighbors as one engine over the whole index.
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  const auto multi = mh.search(f.wl.queries);

  UpAnnsOptions single = f.opts(1).per_host;
  single.n_dpus = 24;
  UpAnnsEngine engine(f.index, f.stats, single);
  const auto mono = engine.search(f.wl.queries);

  ASSERT_EQ(multi.neighbors.size(), mono.neighbors.size());
  for (std::size_t q = 0; q < multi.neighbors.size(); ++q) {
    ASSERT_EQ(multi.neighbors[q].size(), mono.neighbors[q].size());
    for (std::size_t i = 0; i < multi.neighbors[q].size(); ++i) {
      EXPECT_NEAR(multi.neighbors[q][i].dist, mono.neighbors[q][i].dist,
                  1e-3f * (1.f + mono.neighbors[q][i].dist))
          << "query " << q << " rank " << i;
    }
  }
}

TEST(MultiHost, SingleHostEquivalentToEngine) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(1));
  const auto multi = mh.search(f.wl.queries);
  UpAnnsEngine engine(f.index, f.stats, f.opts(1).per_host);
  const auto mono = engine.search(f.wl.queries);
  for (std::size_t q = 0; q < multi.neighbors.size(); ++q) {
    EXPECT_EQ(multi.neighbors[q], mono.neighbors[q]);
  }
}

TEST(MultiHost, MoreHostsReduceSlowestHostTime) {
  auto& f = fixture();
  MultiHostUpAnns one(f.index, f.stats, f.opts(1));
  MultiHostUpAnns four(f.index, f.stats, f.opts(4));
  const double t1 = one.search(f.wl.queries).slowest_host_seconds;
  const double t4 = four.search(f.wl.queries).slowest_host_seconds;
  // Each host scans ~1/4 of the clusters on its own PIM hardware.
  EXPECT_LT(t4, t1 * 0.6);
}

TEST(MultiHost, NetworkCostsAccounted) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(2));
  const auto r = mh.search(f.wl.queries);
  EXPECT_GT(r.network_seconds, 0.0);
  EXPECT_GE(r.seconds, r.slowest_host_seconds);
  EXPECT_NEAR(r.seconds, r.slowest_host_seconds + r.network_seconds, 1e-12);
  EXPECT_EQ(r.host_times.size(), 2u);
  EXPECT_GT(r.qps, 0.0);
}

}  // namespace
}  // namespace upanns::core
