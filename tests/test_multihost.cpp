#include "core/multihost.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/backend.hpp"
#include "core/pipeline.hpp"
#include "data/query_workload.hpp"
#include "obs/report_json.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(8000, 91));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 32;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 16;
    spec.seed = 6;
    wl = data::generate_workload(base, spec);
    stats = ivf::collect_stats(index,
                               ivf::filter_batch(index, wl.queries, 8));
  }

  MultiHostOptions opts(std::size_t hosts) const {
    MultiHostOptions o;
    o.n_hosts = hosts;
    o.per_host = UpAnnsOptions::upanns();
    o.per_host.n_dpus = 8;
    o.per_host.nprobe = 8;
    o.per_host.k = 10;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(MultiHost, RejectsZeroHosts) {
  auto& f = fixture();
  EXPECT_THROW(MultiHostUpAnns(f.index, f.stats, f.opts(0)),
               std::invalid_argument);
}

TEST(MultiHost, EveryClusterOwnedByExactlyOneHost) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t c = 0; c < f.index.n_clusters(); ++c) {
    ASSERT_LT(mh.host_of(c), 3u);
    ++counts[mh.host_of(c)];
  }
  // Balanced-ish sharding: no host empty.
  for (auto cnt : counts) EXPECT_GT(cnt, 0u);
}

TEST(MultiHost, MatchesSingleEngineResults) {
  // Union of per-host scans covers exactly the probed clusters, and the
  // quantized distance pipeline is per-(query, cluster): a 3-host system
  // must retrieve the same neighbors as one engine over the whole index.
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  const auto multi = mh.search(f.wl.queries);

  UpAnnsOptions single = f.opts(1).per_host;
  single.n_dpus = 24;
  UpAnnsEngine engine(f.index, f.stats, single);
  const auto mono = engine.search(f.wl.queries);

  ASSERT_EQ(multi.neighbors.size(), mono.neighbors.size());
  for (std::size_t q = 0; q < multi.neighbors.size(); ++q) {
    ASSERT_EQ(multi.neighbors[q].size(), mono.neighbors[q].size());
    for (std::size_t i = 0; i < multi.neighbors[q].size(); ++i) {
      EXPECT_NEAR(multi.neighbors[q][i].dist, mono.neighbors[q][i].dist,
                  1e-3f * (1.f + mono.neighbors[q][i].dist))
          << "query " << q << " rank " << i;
    }
  }
}

TEST(MultiHost, SingleHostEquivalentToEngine) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(1));
  const auto multi = mh.search(f.wl.queries);
  UpAnnsEngine engine(f.index, f.stats, f.opts(1).per_host);
  const auto mono = engine.search(f.wl.queries);
  for (std::size_t q = 0; q < multi.neighbors.size(); ++q) {
    EXPECT_EQ(multi.neighbors[q], mono.neighbors[q]);
  }
}

TEST(MultiHost, MoreHostsReduceSlowestHostTime) {
  auto& f = fixture();
  MultiHostUpAnns one(f.index, f.stats, f.opts(1));
  MultiHostUpAnns four(f.index, f.stats, f.opts(4));
  const double t1 = one.search(f.wl.queries).slowest_host_seconds;
  const double t4 = four.search(f.wl.queries).slowest_host_seconds;
  // Each host scans ~1/4 of the clusters on its own PIM hardware.
  EXPECT_LT(t4, t1 * 0.6);
}

TEST(MultiHost, NetworkCostsAccounted) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(2));
  const auto r = mh.search(f.wl.queries);
  EXPECT_GT(r.network_seconds, 0.0);
  EXPECT_GE(r.seconds, r.slowest_host_seconds);
  EXPECT_DOUBLE_EQ(r.network_seconds,
                   r.broadcast_seconds + r.gather_seconds);
  EXPECT_EQ(r.host_times.size(), 2u);
  EXPECT_EQ(r.host_slots.size(), 2u);
  EXPECT_GT(r.qps, 0.0);
}

TEST(MultiHost, SecondsDecomposeIntoCoordHostAndNetwork) {
  // The coordinator-side cluster filter runs once, not once per host:
  // seconds == coord_filter + slowest host remainder + network + merge.
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  const auto r = mh.search(f.wl.queries);
  EXPECT_GT(r.coord_filter_seconds, 0.0);
  EXPECT_GT(r.coord_merge_seconds, 0.0);
  EXPECT_NEAR(r.seconds,
              r.coord_filter_seconds + r.slowest_host_seconds +
                  r.network_seconds + r.coord_merge_seconds,
              1e-15 * r.seconds);
  // The per-host remainder excludes the shared filter: every host's full
  // engine time exceeds its slot's host+device split by exactly one filter.
  for (std::size_t h = 0; h < r.host_slots.size(); ++h) {
    const auto& s = r.host_slots[h];
    ASSERT_TRUE(s.active);
    EXPECT_NEAR(r.host_times[h].total(),
                r.coord_filter_seconds + s.host_seconds + s.device_seconds,
                1e-15 * r.host_times[h].total());
    EXPECT_LE(s.host_seconds + s.device_seconds,
              r.slowest_host_seconds + 1e-18);
  }
}

TEST(MultiHost, BroadcastCostScalesWithFanOut) {
  // The coordinator NIC must send the batch to each host: 4-host broadcast
  // wire time strictly exceeds 1-host (regression for the single-payload
  // accounting bug).
  auto& f = fixture();
  MultiHostUpAnns one(f.index, f.stats, f.opts(1));
  MultiHostUpAnns four(f.index, f.stats, f.opts(4));
  const auto r1 = one.search(f.wl.queries);
  const auto r4 = four.search(f.wl.queries);
  EXPECT_GT(r4.broadcast_seconds, r1.broadcast_seconds);
  EXPECT_GT(r4.gather_seconds, r1.gather_seconds);
  // Wire time (minus the fixed per-message latency) scales exactly 4x.
  const MultiHostOptions o = f.opts(1);
  const double wire1 = r1.broadcast_seconds - o.network_latency;
  const double wire4 = r4.broadcast_seconds - o.network_latency;
  EXPECT_NEAR(wire4, 4.0 * wire1, 1e-15);
}

TEST(MultiHost, HostOfValidatesClusterIndex) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(2));
  EXPECT_NO_THROW(mh.host_of(f.index.n_clusters() - 1));
  EXPECT_THROW(mh.host_of(f.index.n_clusters()), std::out_of_range);
  EXPECT_THROW(mh.host_of(static_cast<std::size_t>(-1)), std::out_of_range);
}

TEST(MultiHost, MoreHostsThanClustersLeavesEmptyHostsIdle) {
  // 64 hosts over a 32-cluster index: empty-shard hosts must not build
  // engines or crash, and the search must still match the mono engine.
  auto& f = fixture();
  const std::size_t hosts = 2 * f.index.n_clusters();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(hosts));
  EXPECT_EQ(mh.n_hosts(), hosts);
  EXPECT_LE(mh.n_active_hosts(), f.index.n_clusters());
  EXPECT_GT(mh.n_active_hosts(), 0u);

  std::size_t inactive = 0;
  for (std::size_t h = 0; h < mh.n_hosts(); ++h) {
    if (!mh.host_active(h)) {
      ++inactive;
      EXPECT_THROW(mh.host_engine(h), std::logic_error);
    }
  }
  EXPECT_EQ(inactive, hosts - mh.n_active_hosts());
  EXPECT_GT(inactive, 0u);

  const auto multi = mh.search(f.wl.queries);
  ASSERT_EQ(multi.host_slots.size(), hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    if (mh.host_active(h)) continue;
    EXPECT_FALSE(multi.host_slots[h].active);
    EXPECT_EQ(multi.host_slots[h].host_seconds, 0.0);
    EXPECT_EQ(multi.host_slots[h].device_seconds, 0.0);
    EXPECT_EQ(multi.host_times[h].total(), 0.0);
  }

  UpAnnsOptions single = f.opts(1).per_host;
  UpAnnsEngine engine(f.index, f.stats, single);
  const auto mono = engine.search(f.wl.queries);
  ASSERT_EQ(multi.neighbors.size(), mono.neighbors.size());
  for (std::size_t q = 0; q < multi.neighbors.size(); ++q) {
    ASSERT_EQ(multi.neighbors[q].size(), mono.neighbors[q].size());
    for (std::size_t i = 0; i < multi.neighbors[q].size(); ++i) {
      EXPECT_NEAR(multi.neighbors[q][i].dist, mono.neighbors[q][i].dist,
                  1e-3f * (1.f + mono.neighbors[q][i].dist))
          << "query " << q << " rank " << i;
    }
  }
}

std::vector<data::Dataset> fixture_batches(std::size_t batch_size) {
  return split_batches(fixture().wl.queries, batch_size);
}

TEST(MultiHostPipeline, NoOverlapEqualsSynchronousSums) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  const auto batches = fixture_batches(4);
  ASSERT_GE(batches.size(), 4u);

  double sync_sum = 0;
  for (const auto& b : batches) sync_sum += mh.search(b).seconds;

  MultiHostBatchPipeline pipeline(mh, {.overlap = false});
  const auto run = pipeline.run(batches);
  EXPECT_FALSE(run.overlapped);
  EXPECT_DOUBLE_EQ(run.elapsed_seconds, sync_sum);
  EXPECT_DOUBLE_EQ(run.serial_seconds, sync_sum);
  EXPECT_EQ(run.n_queries, f.wl.queries.n);
}

TEST(MultiHostPipeline, SlotPhasesReconstructBatchSeconds) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  MultiHostBatchPipeline pipeline(mh, {.overlap = true});
  const auto run = pipeline.run(fixture_batches(4));
  for (const auto& slot : run.slots) {
    EXPECT_GT(slot.pre_seconds, 0.0);
    EXPECT_GT(slot.device_seconds, 0.0);
    EXPECT_GT(slot.post_seconds, 0.0);
    EXPECT_NEAR(slot.pre_seconds + slot.device_seconds + slot.post_seconds,
                slot.report.seconds, 1e-15 * slot.report.seconds);
  }
}

TEST(MultiHostPipeline, OverlapNoSlowerWithIdenticalResults) {
  // Acceptance criterion: overlapped elapsed <= synchronous seconds, and
  // per-query neighbors bit-identical in both modes.
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(3));
  const auto batches = fixture_batches(4);
  ASSERT_GE(batches.size(), 4u);

  MultiHostBatchPipeline sync(mh, {.overlap = false});
  const auto off = sync.run(batches);
  MultiHostBatchPipeline overlapped(mh, {.overlap = true});
  const auto on = overlapped.run(batches);

  EXPECT_LE(on.elapsed_seconds, off.elapsed_seconds);
  EXPECT_LT(on.elapsed_seconds, off.elapsed_seconds);  // >= 4 batches: strict
  EXPECT_GT(on.qps, off.qps);
  EXPECT_DOUBLE_EQ(on.serial_seconds, off.serial_seconds);

  ASSERT_EQ(on.slots.size(), off.slots.size());
  for (std::size_t i = 0; i < on.slots.size(); ++i) {
    const auto& a = on.slots[i].report.neighbors;
    const auto& b = off.slots[i].report.neighbors;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      EXPECT_EQ(a[q], b[q]) << "batch " << i << " query " << q;
    }
  }
}

TEST(MultiHostPipeline, TimelineReproducesElapsedBitForBit) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(2));
  MultiHostBatchPipeline pipeline(mh, {.overlap = true});
  const auto run = pipeline.run(fixture_batches(4));
  const auto windows = multihost_timeline(run);
  ASSERT_EQ(windows.size(), run.slots.size());
  EXPECT_EQ(windows.back().post_end, run.elapsed_seconds);
  // Coordinator and device phases never run backwards in time.
  for (const auto& w : windows) {
    EXPECT_LE(w.pre_start, w.pre_end);
    EXPECT_LE(w.pre_end, w.device_start);
    EXPECT_LE(w.device_start, w.device_end);
    EXPECT_LE(w.device_end, w.post_start);
    EXPECT_LE(w.post_start, w.post_end);
  }
}

TEST(MultiHostPipeline, EmptyBatchListIsANoOp) {
  auto& f = fixture();
  MultiHostUpAnns mh(f.index, f.stats, f.opts(2));
  MultiHostBatchPipeline pipeline(mh, {.overlap = true});
  const auto run = pipeline.run({});
  EXPECT_TRUE(run.slots.empty());
  EXPECT_EQ(run.n_queries, 0u);
  EXPECT_DOUBLE_EQ(run.elapsed_seconds, 0.0);
  EXPECT_DOUBLE_EQ(run.qps, 0.0);
}

std::vector<data::Dataset> multihost_drift_batches(Fixture& f) {
  data::WorkloadSpec calm;
  calm.n_queries = 24;
  calm.seed = 6;
  data::WorkloadSpec hot = calm;
  hot.seed = 9;
  hot.popularity_shift = 16;
  auto batches = split_batches(data::generate_workload(f.base, calm).queries, 8);
  for (auto& b :
       split_batches(data::generate_workload(f.base, hot).queries, 8)) {
    batches.push_back(std::move(b));
  }
  return batches;
}

TEST(MultiHostPipeline, QuietAdaptIsByteIdentical) {
  // Per-host controllers that never fire must leave the fleet report —
  // timings, neighbors, the serialized JSON — byte-identical to adapt-off.
  auto& f = fixture();
  const auto batches = multihost_drift_batches(f);

  MultiHostUpAnns off_mh(f.index, f.stats, f.opts(2));
  MultiHostBatchPipeline off(off_mh, {.overlap = true});
  const auto off_run = off.run(batches);

  MultiHostUpAnns quiet_mh(f.index, f.stats, f.opts(2));
  MultiHostBatchPipeline quiet(quiet_mh,
                               {.overlap = true,
                                .adapt = AdaptMode::kCopies,
                                .adaptive = {.minor_threshold = 2.0,
                                             .major_threshold = 2.0,
                                             .copy_change_fraction = 2.0}});
  const auto quiet_run = quiet.run(batches);

  EXPECT_EQ(obs::multi_host_pipeline_json(off_run),
            obs::multi_host_pipeline_json(quiet_run));
  for (const auto& slot : quiet_run.slots) {
    EXPECT_EQ(slot.adapt_action, AdaptAction::kNone);
    EXPECT_DOUBLE_EQ(slot.adapt_seconds, 0.0);
  }
}

TEST(MultiHostPipeline, AdaptFiresAndPreservesNeighbors) {
  auto& f = fixture();
  const auto batches = multihost_drift_batches(f);

  MultiHostUpAnns off_mh(f.index, f.stats, f.opts(2));
  MultiHostBatchPipeline off(off_mh, {.overlap = true});
  const auto off_run = off.run(batches);

  MultiHostUpAnns on_mh(f.index, f.stats, f.opts(2));
  MultiHostBatchPipeline on(on_mh,
                            {.overlap = true,
                             .adapt = AdaptMode::kCopies,
                             .adaptive = {.window_batches = 2,
                                          .minor_threshold = 0.01,
                                          .copy_change_fraction = 0.01}});
  const auto on_run = on.run(batches);

  std::size_t fired = 0;
  for (const auto& slot : on_run.slots) {
    if (slot.adapt_action != AdaptAction::kNone) ++fired;
  }
  EXPECT_GE(fired, 1u);

  // Replica churn on any host must never change what the fleet retrieves.
  ASSERT_EQ(on_run.slots.size(), off_run.slots.size());
  double serial = 0;
  for (std::size_t i = 0; i < on_run.slots.size(); ++i) {
    const auto& a = on_run.slots[i].report.neighbors;
    const auto& b = off_run.slots[i].report.neighbors;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      EXPECT_EQ(a[q], b[q]) << "batch " << i << " query " << q;
    }
    const auto& slot = on_run.slots[i];
    // Adapt work rides in the device phase, like the mutation patch.
    EXPECT_NEAR(slot.device_seconds,
                slot.report.slowest_host_seconds + slot.patch_seconds +
                    slot.adapt_seconds,
                1e-12);
    serial += slot.report.seconds + slot.patch_seconds + slot.adapt_seconds;
  }
  EXPECT_NEAR(on_run.serial_seconds, serial, 1e-12);
}

TEST(MultiHostBackend, ServesThroughCommonInterface) {
  auto& f = fixture();
  MultiHostOptions o = f.opts(3);
  auto backend = make_multihost_backend(f.index, f.stats, o);
  EXPECT_STREQ(backend->name(), "UpANNS-MH");
  const auto r = backend->search(f.wl.queries);
  ASSERT_EQ(r.neighbors.size(), f.wl.queries.n);

  MultiHostUpAnns mh(f.index, f.stats, o);
  const auto direct = mh.search(f.wl.queries);
  // The wrapped report reproduces the multi-host seconds through the
  // unified StageTimes shape, and the trace sums to the same total.
  EXPECT_NEAR(r.times.total(), direct.seconds, 1e-12 * direct.seconds);
  double trace_sum = 0;
  for (const auto& step : r.trace) trace_sum += step.seconds;
  EXPECT_NEAR(trace_sum, direct.seconds, 1e-12 * direct.seconds);
  for (std::size_t q = 0; q < r.neighbors.size(); ++q) {
    EXPECT_EQ(r.neighbors[q], direct.neighbors[q]);
  }

  // And through the factory's default two-host configuration.
  auto two = make_backend(BackendKind::kMultiHost, f.index, f.stats,
                          o.per_host);
  EXPECT_STREQ(two->name(), "UpANNS-MH");
  EXPECT_EQ(two->search(f.wl.queries).neighbors.size(), f.wl.queries.n);
}

}  // namespace
}  // namespace upanns::core
