// Oracle tests for the DPU query kernel: an independent host-side
// re-implementation of the quantized pipeline (int8 codebook -> float LUT ->
// u16 LUT -> integer ADC) must agree with what the kernel writes to MRAM.
#include "core/dpu_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::deep1b_like(6000, 61));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 24;
    opts.pq_m = 12;
    opts.coarse_iters = 5;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 8;
    spec.seed = 2;
    wl = data::generate_workload(base, spec);
    stats = ivf::collect_stats(index,
                               ivf::filter_batch(index, wl.queries, 6));
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// Host-side oracle: quantized ADC top-k over the probed clusters, mirroring
// the engine's int8-codebook / u16-LUT pipeline.
std::vector<common::Neighbor> oracle_topk(const ivf::IvfIndex& index,
                                          const float* query,
                                          const std::vector<std::uint32_t>& probes,
                                          std::size_t k) {
  const auto& pq = index.pq();
  const std::size_t m = pq.m();
  const std::size_t dsub = pq.dsub();
  const std::size_t dim = index.dim();

  // Reproduce the engine's int8 codebook quantization.
  std::vector<float> scales(m);
  std::vector<std::int8_t> cbq(m * 256 * dsub);
  const auto cb = pq.codebooks();
  for (std::size_t s = 0; s < m; ++s) {
    float mx = 0;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      mx = std::max(mx, std::abs(cb[s * 256 * dsub + i]));
    }
    scales[s] = mx > 0 ? mx / 127.f : 1.f;
    for (std::size_t i = 0; i < 256 * dsub; ++i) {
      cbq[s * 256 * dsub + i] = static_cast<std::int8_t>(
          std::lround(cb[s * 256 * dsub + i] / scales[s]));
    }
  }

  common::BoundedMaxHeap heap(k);
  std::vector<float> residual(dim), lut(m * 256);
  for (std::uint32_t c : probes) {
    const auto& list = index.list(c);
    if (list.size() == 0) continue;
    index.residual(query, c, residual.data());
    float mx = 0;
    for (std::size_t s = 0; s < m; ++s) {
      for (std::size_t e = 0; e < 256; ++e) {
        float acc = 0;
        for (std::size_t d = 0; d < dsub; ++d) {
          const float diff =
              residual[s * dsub + d] -
              scales[s] * static_cast<float>(cbq[(s * 256 + e) * dsub + d]);
          acc += diff * diff;
        }
        lut[s * 256 + e] = acc;
        mx = std::max(mx, acc);
      }
    }
    const float scale = mx > 0 ? mx / 65000.f : 1.f;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::uint8_t* code = list.code(i, m);
      std::uint32_t acc = 0;
      for (std::size_t s = 0; s < m; ++s) {
        acc += static_cast<std::uint16_t>(
            std::min(65535.f, std::round(lut[s * 256 + code[s]] / scale)));
      }
      heap.push(static_cast<float>(acc) * scale, list.ids[i]);
    }
  }
  return heap.take_sorted();
}

UpAnnsOptions tiny_options(bool naive) {
  UpAnnsOptions o = naive ? UpAnnsOptions::pim_naive()
                          : UpAnnsOptions::upanns();
  o.n_dpus = 6;
  o.nprobe = 6;
  o.k = 8;
  return o;
}

class KernelOracleTest : public ::testing::TestWithParam<bool> {};

TEST_P(KernelOracleTest, KernelMatchesQuantizedOracle) {
  auto& f = fixture();
  const bool naive = GetParam();
  UpAnnsEngine engine(f.index, f.stats, tiny_options(naive));
  const auto probes = ivf::filter_batch(f.index, f.wl.queries, 6);
  const auto report = engine.search_with_probes(f.wl.queries, probes);

  for (std::size_t q = 0; q < f.wl.queries.n; ++q) {
    const auto expect =
        oracle_topk(f.index, f.wl.queries.row(q), probes[q], 8);
    ASSERT_EQ(report.neighbors[q].size(), expect.size()) << "query " << q;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_NEAR(report.neighbors[q][i].dist, expect[i].dist,
                  1e-3f * (1.f + expect[i].dist))
          << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, KernelOracleTest, ::testing::Bool());

TEST(Kernel, TaskletSweepMatchesFig13Law) {
  // Per-DPU cycles must shrink ~linearly up to 11 tasklets and flatten
  // beyond (distance stage, balanced work).
  auto& f = fixture();
  std::vector<double> dist_time;
  for (unsigned t : {1u, 2u, 4u, 8u, 11u, 16u, 24u}) {
    UpAnnsOptions o = tiny_options(false);
    o.n_tasklets = t;
    UpAnnsEngine engine(f.index, f.stats, o);
    dist_time.push_back(engine.search(f.wl.queries).times.distance_calc);
  }
  // Linear-ish regime.
  EXPECT_GT(dist_time[0] / dist_time[1], 1.6);  // 1 -> 2 tasklets
  EXPECT_GT(dist_time[1] / dist_time[2], 1.5);  // 2 -> 4
  EXPECT_GT(dist_time[0] / dist_time[4], 5.0);  // 1 -> 11
  // Saturation: no further meaningful speedup beyond 11. At this test's
  // tiny cluster sizes chunk granularity adds noise (a cluster is only a
  // handful of 16-record chunks), so the band is wide; the Fig 13 bench
  // demonstrates the clean plateau at realistic list lengths.
  EXPECT_GT(dist_time[5] / dist_time[4], 0.6);
  EXPECT_LT(dist_time[5] / dist_time[4], 1.8);
  EXPECT_GT(dist_time[6] / dist_time[4], 0.6);
  EXPECT_LT(dist_time[6] / dist_time[4], 2.4);
}

TEST(Kernel, WramOverflowDetectedForOversizedConfigs) {
  // k=1000 x 24 tasklets of heap space plus buffers cannot fit 64 KB WRAM:
  // the simulator must refuse, exactly like real hardware would.
  auto& f = fixture();
  UpAnnsOptions o = tiny_options(false);
  o.k = 4096;
  o.n_tasklets = 24;
  UpAnnsEngine engine(f.index, f.stats, o);
  EXPECT_THROW(engine.search(f.wl.queries), pim::WramOverflow);
}

TEST(Kernel, MergeStatsConsistent) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, tiny_options(false));
  const auto r = engine.search(f.wl.queries);
  // Insertions are bounded by tasklets x k x merges; pruned + inserted
  // cannot exceed the total local-heap contents.
  EXPECT_GT(r.pim->merge_insertions, 0u);
  EXPECT_GT(r.pim->scanned_records, 0u);
}

}  // namespace
}  // namespace upanns::core
