#include "baselines/cpu_ivfpq.hpp"

#include <gtest/gtest.h>

#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"

namespace upanns::baselines {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(8000, 33));
  ivf::IvfIndex index;
  data::QueryWorkload wl;

  Fixture() : index(build()) {
    data::WorkloadSpec spec;
    spec.n_queries = 32;
    spec.seed = 5;
    wl = data::generate_workload(base, spec);
  }

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 64;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 5;
    return ivf::IvfIndex::build(base, opts);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(CpuIvfpq, RecallImprovesWithNprobe) {
  auto& f = fixture();
  CpuIvfpqSearcher searcher(f.index);
  const auto gt = data::exact_topk(f.base, f.wl.queries, 10);
  double prev = -1;
  for (std::size_t nprobe : {2u, 8u, 32u}) {
    SearchParams p;
    p.nprobe = nprobe;
    p.k = 10;
    const auto res = searcher.search(f.wl.queries, p);
    const double r = data::recall_at_k(gt, res.neighbors, 10);
    EXPECT_GE(r, prev - 0.02) << "nprobe=" << nprobe;
    prev = r;
  }
  EXPECT_GT(prev, 0.5);  // full-ish probing finds most true neighbors
}

TEST(CpuIvfpq, MatchesBruteForceOverProbedClusters) {
  // The searcher must return exactly the ADC-best candidates within the
  // probed clusters (reference implementation check).
  auto& f = fixture();
  CpuIvfpqSearcher searcher(f.index);
  SearchParams p;
  p.nprobe = 4;
  p.k = 5;
  const auto probes = ivf::filter_batch(f.index, f.wl.queries, p.nprobe);
  const auto res = searcher.search_with_probes(f.wl.queries, probes, p);

  const std::size_t m = f.index.pq_m();
  for (std::size_t q = 0; q < 4; ++q) {
    common::BoundedMaxHeap ref(p.k);
    std::vector<float> residual(f.index.dim()), lut(m * 256);
    for (auto c : probes[q]) {
      f.index.residual(f.wl.queries.row(q), c, residual.data());
      f.index.pq().compute_lut(residual.data(), lut.data());
      const auto& list = f.index.list(c);
      for (std::size_t i = 0; i < list.size(); ++i) {
        ref.push(f.index.pq().adc_distance(lut.data(), list.code(i, m)),
                 list.ids[i]);
      }
    }
    EXPECT_EQ(res.neighbors[q], ref.take_sorted());
  }
}

TEST(CpuIvfpq, ProfileFieldsPopulated) {
  auto& f = fixture();
  CpuIvfpqSearcher searcher(f.index);
  SearchParams p;
  p.nprobe = 8;
  p.k = 10;
  const auto res = searcher.search(f.wl.queries, p);
  EXPECT_EQ(res.profile.n_queries, 32u);
  EXPECT_EQ(res.profile.nprobe, 8u);
  EXPECT_EQ(res.profile.m, 16u);
  EXPECT_EQ(res.profile.dataset_n, 8000u);
  EXPECT_GT(res.profile.total_candidates, 0u);
  EXPECT_GT(res.profile.max_cluster, 0u);
  EXPECT_LE(res.profile.max_cluster, 8000u);
  EXPECT_GT(res.qps(), 0.0);
  EXPECT_GT(res.times.total(), 0.0);
}

TEST(CpuIvfpq, CandidatesGrowWithNprobe) {
  auto& f = fixture();
  CpuIvfpqSearcher searcher(f.index);
  SearchParams a;
  a.nprobe = 2;
  SearchParams b;
  b.nprobe = 16;
  EXPECT_LT(searcher.search(f.wl.queries, a).profile.total_candidates,
            searcher.search(f.wl.queries, b).profile.total_candidates);
}

TEST(CpuIvfpq, ResultsSortedAscending) {
  auto& f = fixture();
  CpuIvfpqSearcher searcher(f.index);
  SearchParams p;
  p.nprobe = 8;
  p.k = 10;
  const auto res = searcher.search(f.wl.queries, p);
  for (const auto& list : res.neighbors) {
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    EXPECT_LE(list.size(), 10u);
  }
}

}  // namespace
}  // namespace upanns::baselines
