#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace upanns::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(0, 500, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(10, 10, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(5, 6, [&](std::size_t i) { value = static_cast<int>(i); });
  EXPECT_EQ(value, 5);
}

TEST(ThreadPool, ParallelForChunksPartition) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(
      0, 1000,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_LT(lo, hi);
        total.fetch_add(hi - lo);
      },
      16);
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, TinyRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 5, [&](std::size_t) { total.fetch_add(1); },
                    /*min_chunk=*/64);
  EXPECT_EQ(total.load(), 5u);
}

TEST(ThreadPool, SumReduction) {
  ThreadPool pool(4);
  std::vector<long> values(10000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long> sum{0};
  pool.parallel_for(0, values.size(),
                    [&](std::size_t i) { sum.fetch_add(values[i]); }, 32);
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, ThrowingTaskDoesNotAbort) {
  // A task that throws used to escape the worker loop and terminate the
  // process (and leave in_flight_ forever nonzero, hanging wait_idle).
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();  // must return despite the throw
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DrainRethrowsFirstError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.wait_idle();  // make the next throw unambiguously second
  pool.submit([] { throw std::logic_error("second"); });
  EXPECT_THROW(pool.drain(), std::runtime_error);
  // drain() cleared the stored error; the pool is reusable.
  pool.submit([] {});
  pool.drain();
  SUCCEED();
}

TEST(ThreadPool, DrainWithoutErrorsIsWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ConcurrentSubmitAndWaitIdleStress) {
  // Several producer threads submit while another thread repeatedly calls
  // wait_idle; under TSan this exercises the queue/counter synchronization.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    while (!done.load()) pool.wait_idle();
  });
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        pool.submit([&] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  done.store(true);
  waiter.join();
  EXPECT_EQ(count.load(), kProducers * kPerProducer);
}

TEST(ThreadPool, NestedSubmitFromTask) {
  // Tasks submitted from within tasks must complete before wait_idle returns.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace upanns::common
