// Hot-path behavior tests for the zero-allocation serving refactor:
//
//  * once warm, repeating a batch through a reused QueryPipeline grows no
//    scratch arena (hot_path_allocations() stays flat) and reproduces the
//    seed path's SearchReport bit for bit;
//  * BatchPipeline's pooled kernels are transparent — each slot's report
//    equals a fresh-engine search of the same batch;
//  * the chunk-index DMA accounting in phase_distance charges exactly one
//    slice DMA per tasklet (the seed double-charged a tasklet-0 staging
//    pass on top); pinned against a hand-built MRAM image.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/dpu_kernel.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "pim/cost_model.hpp"
#include "pim/dpu.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(7000, 77));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 32;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 48;
    spec.seed = 11;
    wl = data::generate_workload(base, spec);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, wl.queries, 6));
  }

  UpAnnsOptions options() const {
    UpAnnsOptions o = UpAnnsOptions::upanns();
    o.n_dpus = 10;
    o.nprobe = 6;
    o.k = 10;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void expect_same_report(const SearchReport& a, const SearchReport& b) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  for (std::size_t q = 0; q < a.neighbors.size(); ++q) {
    ASSERT_EQ(a.neighbors[q].size(), b.neighbors[q].size()) << "query " << q;
    for (std::size_t i = 0; i < a.neighbors[q].size(); ++i) {
      EXPECT_EQ(a.neighbors[q][i].id, b.neighbors[q][i].id);
      // Bitwise, not approximate: the refactor must not change a single
      // rounding step.
      EXPECT_EQ(std::memcmp(&a.neighbors[q][i].dist, &b.neighbors[q][i].dist,
                            sizeof(float)),
                0);
    }
  }
  EXPECT_EQ(a.times.cluster_filter, b.times.cluster_filter);
  EXPECT_EQ(a.times.lut_build, b.times.lut_build);
  EXPECT_EQ(a.times.distance_calc, b.times.distance_calc);
  EXPECT_EQ(a.times.topk, b.times.topk);
  EXPECT_EQ(a.times.transfer, b.times.transfer);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_STREQ(a.trace[i].name, b.trace[i].name);
    EXPECT_EQ(a.trace[i].seconds, b.trace[i].seconds);
  }
  ASSERT_TRUE(a.pim.has_value());
  ASSERT_TRUE(b.pim.has_value());
  EXPECT_EQ(a.pim->total_instructions, b.pim->total_instructions);
  EXPECT_EQ(a.pim->total_dma_cycles, b.pim->total_dma_cycles);
  EXPECT_EQ(a.pim->merge_insertions, b.pim->merge_insertions);
  EXPECT_EQ(a.pim->merge_pruned, b.pim->merge_pruned);
  EXPECT_EQ(a.pim->scanned_records, b.pim->scanned_records);
}

TEST(HotPath, SecondIdenticalBatchAllocatesNothingAndMatchesSeedPath) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());

  QueryPipeline pipeline(engine);
  const SearchReport first = pipeline.run(f.wl.queries, nullptr);

  // Warm now: same batch again must not grow any arena — no new kernels,
  // no scratch growth, no heap rebuilds, no launch-object churn.
  const std::uint64_t before = hot_path_allocations();
  const SearchReport second = pipeline.run(f.wl.queries, nullptr);
  const std::uint64_t after = hot_path_allocations();
  EXPECT_EQ(before, after);

  // Reuse is transparent: warm run == cold run == fresh-engine run.
  expect_same_report(first, second);
  expect_same_report(second, engine.search(f.wl.queries));
}

TEST(HotPath, BatchPipelineSlotsMatchFreshEngineSearch) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());
  const auto batches = split_batches(f.wl.queries, 16);

  BatchPipeline pipeline(engine);
  const BatchPipelineReport report = pipeline.run(batches);
  ASSERT_EQ(report.slots.size(), batches.size());

  // Pooled kernels (rebound per batch) must reproduce what a freshly
  // constructed pipeline computes for every batch.
  UpAnnsEngine fresh(f.index, f.stats, f.options());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    expect_same_report(report.slots[b].report, fresh.search(batches[b]));
  }
}

TEST(HotPath, PatchThenServeCyclesStayAllocationFree) {
  // Streaming updates must not re-warm the serving path: after a warm-up
  // cycle, repeated (mutate, patch, serve) rounds grow no scratch arena —
  // the patch rewrites MRAM in place (or within slack) and the pooled
  // kernels just rebind.
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  UpAnnsEngine engine(mut, f.stats, f.options());
  QueryPipeline pipeline(engine);

  common::Rng rng(29);
  std::uint32_t next_id = 1'000'000;
  std::vector<std::uint32_t> inserted;
  const auto cycle = [&] {
    std::vector<std::uint32_t> ids;
    std::vector<float> flat;
    for (int i = 0; i < 4; ++i) {
      const float* row = f.base.row(rng.below(f.base.n));
      ids.push_back(next_id++);
      for (std::size_t d = 0; d < f.base.dim; ++d) {
        flat.push_back(row[d] + rng.uniform(-0.05f, 0.05f));
      }
    }
    engine.upsert(ids, flat);
    inserted.insert(inserted.end(), ids.begin(), ids.end());
    if (inserted.size() > 8) {  // keep net growth bounded
      std::vector<std::uint32_t> dead(inserted.begin(), inserted.begin() + 4);
      inserted.erase(inserted.begin(), inserted.begin() + 4);
      engine.remove(dead);
    }
    const auto ps = engine.patch_dpus();
    EXPECT_GT(ps.bytes_written, 0u);
    return pipeline.run(f.wl.queries, nullptr);
  };

  cycle();
  cycle();  // warm: kernel pool built, scratch at steady-state capacity

  const std::uint64_t before = hot_path_allocations();
  cycle();
  cycle();
  const std::uint64_t after = hot_path_allocations();
  EXPECT_EQ(before, after);
}

// ---------------------------------------------------------------------------
// Chunk-index DMA accounting, pinned against a hand-built MRAM image.

std::uint64_t dma(std::size_t bytes) {
  return static_cast<std::uint64_t>(pim::DpuCostModel::mram_dma_cycles(bytes));
}

struct MiniKernel {
  static constexpr std::size_t kDim = 8;
  static constexpr std::size_t kM = 4;
  static constexpr std::size_t kDsub = 2;
  static constexpr std::size_t kK = 5;
  static constexpr std::size_t kRecords = 40;  // 3 chunks: 16 + 16 + 8

  pim::Dpu dpu{0};
  DpuStaticLayout layout;
  DpuLaunchInput input;

  MiniKernel() {
    layout.dim = kDim;
    layout.m = kM;
    layout.dsub = kDsub;
    layout.codebook_off = dpu.mram_alloc(kM * 256 * kDsub, "codebook");
    layout.cb_scale_off = dpu.mram_alloc(kM * sizeof(float), "scales");
    const float one = 1.f;
    for (std::size_t s = 0; s < kM; ++s) {
      dpu.host_write(layout.cb_scale_off + s * sizeof(float), &one,
                     sizeof(float));
    }

    DpuClusterData cl;
    cl.n_records = kRecords;
    cl.ids_off = dpu.mram_alloc(kRecords * sizeof(std::uint32_t), "ids");
    for (std::uint32_t i = 0; i < kRecords; ++i) {
      dpu.host_write(cl.ids_off + i * sizeof(std::uint32_t), &i, sizeof(i));
    }
    // Direct-token records: u16 length prefix + kM tokens each.
    std::vector<std::uint16_t> stream;
    std::vector<std::uint32_t> chunk_index;
    for (std::size_t r = 0; r < kRecords; ++r) {
      if (r % kChunkRecords == 0) {
        chunk_index.push_back(static_cast<std::uint32_t>(stream.size()));
      }
      stream.push_back(kM);
      for (std::size_t pos = 0; pos < kM; ++pos) {
        stream.push_back(static_cast<std::uint16_t>(pos * 256 + (r % 256)));
      }
    }
    cl.stream_len = stream.size();
    cl.stream_off =
        dpu.mram_alloc(stream.size() * sizeof(std::uint16_t), "stream");
    dpu.host_write(cl.stream_off, stream.data(),
                   stream.size() * sizeof(std::uint16_t));
    cl.n_chunks = static_cast<std::uint32_t>(chunk_index.size());
    cl.chunk_index_off = dpu.mram_alloc(
        chunk_index.size() * sizeof(std::uint32_t), "chunk-index");
    dpu.host_write(cl.chunk_index_off, chunk_index.data(),
                   chunk_index.size() * sizeof(std::uint32_t));
    cl.centroid_off = dpu.mram_alloc(kDim * sizeof(float), "centroid");
    layout.clusters.push_back(cl);

    input.k = kK;
    input.queries_off = dpu.mram_alloc(kDim * sizeof(float), "query");
    input.results_off = dpu.mram_alloc(kK * 8, "results");
    input.n_queries = 1;
    input.items.push_back({0, 0});
  }

  /// The exact DMA bill of one run at `t` tasklets, mirrored analytically.
  std::uint64_t expected_dma_cycles(unsigned t) const {
    const DpuClusterData& cl = layout.clusters[0];
    std::uint64_t total = 0;
    // S0 LUT build: tasklet 0 views query + centroid; every tasklet views
    // the scale table; each subspace's codebook segment is viewed by its
    // owning tasklet.
    total += 2 * dma(kDim * sizeof(float));
    total += t * dma(kM * sizeof(float));
    total += kM * dma(256 * kDsub);
    // S4 distance: one chunk-index slice DMA per tasklet — ceil(n_chunks/t)
    // entries, capped at the table. This is the accounting under test: the
    // seed additionally charged a 4-instruction tasklet-0 staging pass.
    const std::size_t own = (cl.n_chunks + t - 1) / t;
    total += t * dma(std::min<std::size_t>(own * sizeof(std::uint32_t),
                                           cl.n_chunks * sizeof(std::uint32_t)));
    // Per chunk: one ids DMA + the token-stream span (all spans < 2048 B
    // here, so each is a single transfer).
    for (std::uint32_t ci = 0; ci < cl.n_chunks; ++ci) {
      const std::size_t rec_lo = static_cast<std::size_t>(ci) * kChunkRecords;
      const std::size_t rec_hi =
          std::min<std::size_t>(cl.n_records, rec_lo + kChunkRecords);
      total += dma((rec_hi - rec_lo) * sizeof(std::uint32_t));
      // Every record is kM+1 elements (length prefix + kM tokens), so the
      // chunk's stream span is exactly its record span scaled up.
      total += dma((rec_hi - rec_lo) * (kM + 1) * sizeof(std::uint16_t));
    }
    // S5 merge: the last tasklet writes the packed top-k.
    total += dma(kK * 8);
    return total;
  }
};

TEST(HotPath, ChunkIndexDmaChargedPerTaskletSlice) {
  for (unsigned t : {1u, 2u, 3u}) {
    MiniKernel mini;
    QueryKernel kernel(mini.layout, mini.input, KernelMode::kDirectTokens,
                       /*prune_topk=*/true);
    const pim::DpuRunStats stats = mini.dpu.run(kernel, t);
    EXPECT_EQ(stats.dma_cycles, mini.expected_dma_cycles(t))
        << "tasklets=" << t;
  }
}

}  // namespace
}  // namespace upanns::core
