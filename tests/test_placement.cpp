#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/stats.hpp"
#include "data/query_workload.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::spacev1b_like(10000, 9));
  ivf::IvfIndex index = build();
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 48;
    opts.pq_m = 20;
    opts.coarse_iters = 6;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    // Skewed history: low cluster ids far more popular.
    std::vector<std::vector<std::uint32_t>> history;
    for (std::uint32_t c = 0; c < 48; ++c) {
      const std::size_t hits = c < 5 ? 60 : (c < 20 ? 6 : 1);
      for (std::size_t h = 0; h < hits; ++h) history.push_back({c});
    }
    stats = ivf::collect_stats(index, history);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

PlacementOptions opts_for(std::size_t ndpu) {
  PlacementOptions o;
  o.n_dpus = ndpu;
  return o;
}

TEST(Placement, EveryNonEmptyClusterPlaced) {
  auto& f = fixture();
  const Placement p = place_clusters(f.index, f.stats, opts_for(16));
  for (std::size_t c = 0; c < f.index.n_clusters(); ++c) {
    if (f.stats.sizes[c] > 0) {
      EXPECT_FALSE(p.cluster_dpus[c].empty()) << "cluster " << c;
    }
  }
}

TEST(Placement, ReplicasOnDistinctDpus) {
  auto& f = fixture();
  const Placement p = place_clusters(f.index, f.stats, opts_for(16));
  for (const auto& dpus : p.cluster_dpus) {
    std::set<std::uint32_t> uniq(dpus.begin(), dpus.end());
    EXPECT_EQ(uniq.size(), dpus.size());
    for (auto d : dpus) EXPECT_LT(d, 16u);
  }
}

TEST(Placement, HotClustersReplicated) {
  // Clusters whose workload exceeds W-bar must receive multiple replicas
  // (ncpy = ceil(W_i / W-bar), Algorithm 1 line 2).
  auto& f = fixture();
  const std::size_t ndpu = 16;
  const Placement p = place_clusters(f.index, f.stats, opts_for(ndpu));
  const double w_bar = f.stats.average_workload(ndpu);
  for (std::size_t c = 0; c < f.index.n_clusters(); ++c) {
    if (f.stats.workloads[c] > 2.0 * w_bar) {
      EXPECT_GE(p.cluster_dpus[c].size(), 2u) << "hot cluster " << c;
    }
  }
}

TEST(Placement, ForwardAndReverseMapsConsistent) {
  auto& f = fixture();
  const Placement p = place_clusters(f.index, f.stats, opts_for(8));
  for (std::size_t c = 0; c < p.cluster_dpus.size(); ++c) {
    for (auto d : p.cluster_dpus[c]) {
      const auto& on_d = p.dpu_clusters[d];
      EXPECT_NE(std::find(on_d.begin(), on_d.end(), c), on_d.end());
    }
  }
  std::size_t total = 0;
  for (const auto& v : p.dpu_clusters) total += v.size();
  EXPECT_EQ(total, p.total_replicas);
}

TEST(Placement, BetterBalancedThanRandom) {
  auto& f = fixture();
  const Placement smart = place_clusters(f.index, f.stats, opts_for(16));
  const Placement rand = place_random(f.index, f.stats, opts_for(16), 3);
  EXPECT_LT(common::max_over_mean(smart.dpu_workload),
            common::max_over_mean(rand.dpu_workload));
}

TEST(Placement, RespectsMaxDpuVectors) {
  auto& f = fixture();
  PlacementOptions o = opts_for(16);
  o.max_dpu_vectors = 2500;
  const Placement p = place_clusters(f.index, f.stats, o);
  for (auto v : p.dpu_vectors) EXPECT_LE(v, 2500u);
}

TEST(Placement, ThrowsWhenClusterExceedsDpuCapacity) {
  auto& f = fixture();
  PlacementOptions o = opts_for(4);
  o.max_dpu_vectors = 10;  // smaller than any real cluster
  EXPECT_THROW(place_clusters(f.index, f.stats, o), std::runtime_error);
}

TEST(Placement, ZeroDpusRejected) {
  auto& f = fixture();
  EXPECT_THROW(place_clusters(f.index, f.stats, opts_for(0)),
               std::invalid_argument);
  EXPECT_THROW(place_random(f.index, f.stats, opts_for(0)),
               std::invalid_argument);
}

TEST(Placement, RandomPlacesOncePerCluster) {
  auto& f = fixture();
  const Placement p = place_random(f.index, f.stats, opts_for(8), 7);
  for (std::size_t c = 0; c < p.cluster_dpus.size(); ++c) {
    if (f.stats.sizes[c] > 0) {
      EXPECT_EQ(p.cluster_dpus[c].size(), 1u);
    }
  }
}

TEST(Placement, ProximityOrderIsPermutation) {
  auto& f = fixture();
  const auto order = proximity_order(f.index);
  std::set<std::uint32_t> seen(order.begin(), order.end());
  EXPECT_EQ(order.size(), f.index.n_clusters());
  EXPECT_EQ(seen.size(), f.index.n_clusters());
}

TEST(Placement, ProximityOrderChainsNeighbors) {
  // Consecutive clusters in the order should be far closer on average than
  // random pairs.
  auto& f = fixture();
  const auto order = proximity_order(f.index);
  double chain = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    chain += quant::l2_sq(f.index.centroid(order[i - 1]),
                          f.index.centroid(order[i]), f.index.dim());
  }
  chain /= static_cast<double>(order.size() - 1);
  double random = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < order.size(); i += 3) {
    for (std::size_t j = i + 7; j < order.size(); j += 11) {
      random += quant::l2_sq(f.index.centroid(i), f.index.centroid(j),
                             f.index.dim());
      ++pairs;
    }
  }
  random /= static_cast<double>(pairs);
  EXPECT_LT(chain, random);
}

TEST(Placement, MramBytesPerVectorSane) {
  EXPECT_GT(mram_bytes_per_vector(16), 16u);
  EXPECT_LT(mram_bytes_per_vector(16), 64u);
  EXPECT_GT(mram_bytes_per_vector(20), mram_bytes_per_vector(12));
}

TEST(Placement, WorkloadAccountingMatchesReplicas) {
  auto& f = fixture();
  const Placement p = place_clusters(f.index, f.stats, opts_for(8));
  // Sum of per-DPU workloads equals the sum over clusters of W_i (replicas
  // split a cluster's workload evenly).
  const double placed =
      std::accumulate(p.dpu_workload.begin(), p.dpu_workload.end(), 0.0);
  double expected = 0;
  for (std::size_t c = 0; c < f.index.n_clusters(); ++c) {
    if (!p.cluster_dpus[c].empty()) expected += f.stats.workloads[c];
  }
  EXPECT_NEAR(placed, expected, 1e-6 * expected);
}

// ----- adjust_replicas: the online minor-drift counterpart of Algorithm 1 --

/// First cluster that currently has exactly one replica (exists in the
/// fixture: cold clusters are never replicated).
std::uint32_t single_replica_cluster(const Placement& p) {
  for (std::uint32_t c = 0; c < p.cluster_dpus.size(); ++c) {
    if (p.cluster_dpus[c].size() == 1) return c;
  }
  ADD_FAILURE() << "no single-replica cluster in fixture placement";
  return 0;
}

TEST(AdjustReplicas, AddGoesToLeastLoadedEligibleDpu) {
  auto& f = fixture();
  Placement p = place_clusters(f.index, f.stats, opts_for(16));
  const std::uint32_t c = single_replica_cluster(p);
  const std::size_t before = p.cluster_dpus[c].size();

  // Snapshot eligibility before the call mutates the advisory workloads.
  std::vector<double> load = p.dpu_workload;
  const auto deltas =
      adjust_replicas(p, f.index, {{c, +1}}, f.stats.sizes,
                      f.stats.frequencies, opts_for(16));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_TRUE(deltas[0].add);
  EXPECT_EQ(deltas[0].cluster, c);
  EXPECT_EQ(p.cluster_dpus[c].size(), before + 1);
  // The new holder must not have already held the cluster.
  EXPECT_EQ(std::count(p.cluster_dpus[c].begin(), p.cluster_dpus[c].end(),
                       deltas[0].dpu),
            1);
}

TEST(AdjustReplicas, RetireNeverDropsBelowOneReplica) {
  auto& f = fixture();
  Placement p = place_clusters(f.index, f.stats, opts_for(16));
  const std::uint32_t c = single_replica_cluster(p);
  // A huge negative delta clamps at one replica: nothing to retire.
  const auto deltas =
      adjust_replicas(p, f.index, {{c, -10}}, f.stats.sizes,
                      f.stats.frequencies, opts_for(16));
  EXPECT_TRUE(deltas.empty());
  EXPECT_EQ(p.cluster_dpus[c].size(), 1u);
}

TEST(AdjustReplicas, AddThenRetireRoundTripsTheMaps) {
  auto& f = fixture();
  Placement p = place_clusters(f.index, f.stats, opts_for(16));
  const std::uint32_t c = single_replica_cluster(p);
  adjust_replicas(p, f.index, {{c, +2}}, f.stats.sizes, f.stats.frequencies,
                  opts_for(16));
  adjust_replicas(p, f.index, {{c, -2}}, f.stats.sizes, f.stats.frequencies,
                  opts_for(16));
  EXPECT_EQ(p.cluster_dpus[c].size(), 1u);
  // Forward and reverse maps stay consistent through the churn.
  std::size_t total = 0;
  for (std::size_t cc = 0; cc < p.cluster_dpus.size(); ++cc) {
    for (auto d : p.cluster_dpus[cc]) {
      const auto& on_d = p.dpu_clusters[d];
      EXPECT_NE(std::find(on_d.begin(), on_d.end(), cc), on_d.end());
    }
  }
  for (const auto& v : p.dpu_clusters) total += v.size();
  EXPECT_EQ(total, p.total_replicas);
}

TEST(AdjustReplicas, ReplicaTargetClampedToDpuCount) {
  auto& f = fixture();
  Placement p = place_clusters(f.index, f.stats, opts_for(4));
  const std::uint32_t c = single_replica_cluster(p);
  adjust_replicas(p, f.index, {{c, +100}}, f.stats.sizes, f.stats.frequencies,
                  opts_for(4));
  // At most one replica per DPU.
  EXPECT_LE(p.cluster_dpus[c].size(), 4u);
  std::set<std::uint32_t> uniq(p.cluster_dpus[c].begin(),
                               p.cluster_dpus[c].end());
  EXPECT_EQ(uniq.size(), p.cluster_dpus[c].size());
}

TEST(AdjustReplicas, UnplacedClustersAreSkipped) {
  auto& f = fixture();
  // History that never touches the last clusters -> zero workload; some may
  // still be placed (size > 0), so build a placement where one cluster is
  // genuinely absent by zeroing its size.
  ivf::ClusterStats stats = f.stats;
  const std::uint32_t absent = 47;
  stats.sizes[absent] = 0;
  stats.workloads[absent] = 0;
  Placement p = place_clusters(f.index, stats, opts_for(16));
  ASSERT_TRUE(p.cluster_dpus[absent].empty());
  const auto deltas =
      adjust_replicas(p, f.index, {{absent, +1}}, stats.sizes,
                      stats.frequencies, opts_for(16));
  // Adopting a never-placed cluster online would change the searchable set.
  EXPECT_TRUE(deltas.empty());
  EXPECT_TRUE(p.cluster_dpus[absent].empty());
}

TEST(AdjustReplicas, DeterministicAcrossIdenticalRuns) {
  auto& f = fixture();
  const std::uint32_t c = single_replica_cluster(
      place_clusters(f.index, f.stats, opts_for(16)));
  const std::vector<CopyAdjustment> adj = {{c, +2}, {c + 1, +1}};
  Placement a = place_clusters(f.index, f.stats, opts_for(16));
  Placement b = place_clusters(f.index, f.stats, opts_for(16));
  const auto da = adjust_replicas(a, f.index, adj, f.stats.sizes,
                                  f.stats.frequencies, opts_for(16));
  const auto db = adjust_replicas(b, f.index, adj, f.stats.sizes,
                                  f.stats.frequencies, opts_for(16));
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].cluster, db[i].cluster);
    EXPECT_EQ(da[i].dpu, db[i].dpu);
    EXPECT_EQ(da[i].add, db[i].add);
  }
  EXPECT_EQ(a.cluster_dpus, b.cluster_dpus);
  EXPECT_EQ(a.dpu_clusters, b.dpu_clusters);
}

TEST(AdjustReplicas, EmptyPlacementRejected) {
  auto& f = fixture();
  Placement p;
  EXPECT_THROW(adjust_replicas(p, f.index, {{0, +1}}, f.stats.sizes,
                               f.stats.frequencies, opts_for(16)),
               std::invalid_argument);
}

}  // namespace
}  // namespace upanns::core
