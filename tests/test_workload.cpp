#include "data/query_workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/ground_truth.hpp"

namespace upanns::data {
namespace {

Dataset small_base() { return generate_synthetic(sift1b_like(4000, 11)); }

TEST(Workload, ShapeAndSources) {
  const Dataset base = small_base();
  WorkloadSpec spec;
  spec.n_queries = 50;
  const QueryWorkload wl = generate_workload(base, spec);
  EXPECT_EQ(wl.queries.n, 50u);
  EXPECT_EQ(wl.queries.dim, base.dim);
  EXPECT_EQ(wl.source_points.size(), 50u);
  for (auto s : wl.source_points) EXPECT_LT(s, base.n);
}

TEST(Workload, Deterministic) {
  const Dataset base = small_base();
  WorkloadSpec spec;
  spec.n_queries = 20;
  spec.seed = 77;
  const auto a = generate_workload(base, spec);
  const auto b = generate_workload(base, spec);
  EXPECT_EQ(a.queries.values, b.queries.values);
  EXPECT_EQ(a.source_points, b.source_points);
}

TEST(Workload, QueriesNearSources) {
  // With small jitter the query's nearest neighbor should usually be its
  // source point.
  const Dataset base = small_base();
  WorkloadSpec spec;
  spec.n_queries = 30;
  spec.jitter = 0.01;
  const QueryWorkload wl = generate_workload(base, spec);
  const auto gt = exact_topk(base, wl.queries, 1);
  std::size_t hits = 0;
  for (std::size_t q = 0; q < wl.queries.n; ++q) {
    if (gt[q][0].id == wl.source_points[q]) ++hits;
  }
  EXPECT_GT(hits, 24u);
}

TEST(Workload, ZipfSkewConcentratesSources) {
  const Dataset base = small_base();
  WorkloadSpec spec;
  spec.n_queries = 2000;
  spec.zipf_exponent = 1.2;
  const QueryWorkload wl = generate_workload(base, spec, /*n_regions=*/64);
  // Count hits per region; top region must dominate the tail (Fig 4a skew).
  const std::size_t region_len = (base.n + 63) / 64;
  std::vector<std::size_t> hits(64, 0);
  for (auto s : wl.source_points) ++hits[s / region_len];
  std::sort(hits.rbegin(), hits.rend());
  EXPECT_GT(hits[0], 10 * std::max<std::size_t>(1, hits[40]));
}

TEST(Workload, PopularityShiftChangesHotRegion) {
  const Dataset base = small_base();
  WorkloadSpec a;
  a.n_queries = 500;
  a.seed = 5;
  WorkloadSpec b = a;
  b.popularity_shift = 13;
  const auto wa = generate_workload(base, a, 64);
  const auto wb = generate_workload(base, b, 64);
  EXPECT_NE(wa.source_points, wb.source_points);
}

TEST(EstimateFrequencies, NormalizedWithFloor) {
  const std::vector<std::vector<std::uint32_t>> history = {{0, 1}, {0}, {0, 2}};
  const auto f = estimate_frequencies(history, 4);
  ASSERT_EQ(f.size(), 4u);
  double total = 0;
  for (double v : f) {
    EXPECT_GT(v, 0.0);  // floor keeps unseen clusters placeable
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(f[0], f[1]);
  EXPECT_GT(f[1], 0.0);
  EXPECT_DOUBLE_EQ(f[1], f[2]);
  EXPECT_GT(f[1], f[3]);
}

TEST(EstimateFrequencies, EmptyHistoryUniform) {
  const auto f = estimate_frequencies({}, 3);
  EXPECT_DOUBLE_EQ(f[0], f[1]);
  EXPECT_DOUBLE_EQ(f[1], f[2]);
  EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-9);
}

TEST(EstimateFrequencies, IgnoresOutOfRangeIds) {
  const std::vector<std::vector<std::uint32_t>> history = {{0, 99}};
  const auto f = estimate_frequencies(history, 2);
  EXPECT_GT(f[0], f[1]);
  EXPECT_NEAR(f[0] + f[1], 1.0, 1e-9);
}

TEST(EstimateFrequencies, ShortHistoryStillRanksByObservation) {
  // A 10-query history over many clusters: the unseen-cluster floor must
  // scale with the observed mass, not swamp it (the old fixed floor of 0.1
  // per cluster handed ~200 unseen clusters two thirds of the total mass).
  const std::size_t n_clusters = 200;
  std::vector<std::vector<std::uint32_t>> history(10);
  for (std::size_t q = 0; q < history.size(); ++q) {
    history[q] = {0, 0, 0, 1, 1, 2};  // cluster 0 hot, 1 warm, 2 cool
  }
  const auto f = estimate_frequencies(history, n_clusters);
  EXPECT_GT(f[0], f[1]);
  EXPECT_GT(f[1], f[2]);
  EXPECT_GT(f[2], f[3]);  // any observed cluster beats any unseen one
  double observed = f[0] + f[1] + f[2];
  EXPECT_GT(observed, 0.9);  // the floor stays a sliver of the total
  // Observed ratios survive the normalization approximately: cluster 0 was
  // hit 3x as often as cluster 2.
  EXPECT_NEAR(f[0] / f[2], 3.0, 0.1);
  for (std::size_t c = 3; c < n_clusters; ++c) {
    EXPECT_GT(f[c], 0.0);  // unseen clusters keep a nonzero floor
  }
}

TEST(Recall, PerfectAndPartial) {
  using common::Neighbor;
  const std::vector<std::vector<Neighbor>> exact = {
      {{0.f, 1}, {1.f, 2}}, {{0.f, 3}, {1.f, 4}}};
  EXPECT_DOUBLE_EQ(recall_at_k(exact, exact, 2), 1.0);
  const std::vector<std::vector<Neighbor>> half = {
      {{0.f, 1}, {1.f, 9}}, {{0.f, 9}, {1.f, 4}}};
  EXPECT_DOUBLE_EQ(recall_at_k(exact, half, 2), 0.5);
}

TEST(ExactTopk, SelfQueryFindsSelf) {
  const Dataset base = generate_synthetic(deep1b_like(500, 3));
  Dataset queries;
  queries.dim = base.dim;
  queries.n = 5;
  queries.values.assign(base.values.begin(),
                        base.values.begin() + 5 * base.dim);
  const auto gt = exact_topk(base, queries, 3);
  for (std::size_t q = 0; q < 5; ++q) {
    EXPECT_EQ(gt[q][0].id, q);
    EXPECT_FLOAT_EQ(gt[q][0].dist, 0.f);
    EXPECT_TRUE(std::is_sorted(gt[q].begin(), gt[q].end()));
  }
}

}  // namespace
}  // namespace upanns::data
