#include "pim/energy.hpp"

#include <gtest/gtest.h>

namespace upanns::pim {
namespace {

TEST(Energy, Table1PeakPowers) {
  EXPECT_DOUBLE_EQ(platform_power_w(Platform::kCpu), 190.0);
  EXPECT_DOUBLE_EQ(platform_power_w(Platform::kGpu), 300.0);
  // 7 DIMMs x 23.22 W = 162.54 W ("162W total peak power", Sec 5.1).
  EXPECT_NEAR(platform_power_w(Platform::kPim, 896), 162.54, 0.01);
}

TEST(Energy, PimPowerScalesByWholeDimms) {
  EXPECT_DOUBLE_EQ(platform_power_w(Platform::kPim, 128),
                   platform_power_w(Platform::kPim, 1));
  EXPECT_DOUBLE_EQ(platform_power_w(Platform::kPim, 129),
                   2 * 23.22);
}

TEST(Energy, QpsPerWatt) {
  EXPECT_DOUBLE_EQ(qps_per_watt(300.0, Platform::kGpu), 1.0);
  EXPECT_NEAR(qps_per_watt(162.54, Platform::kPim, 896), 1.0, 1e-9);
}

TEST(Energy, Joules) {
  EXPECT_DOUBLE_EQ(energy_joules(Platform::kCpu, 2.0), 380.0);
}

TEST(Energy, GpuPowerParityDpuCount) {
  // Paper Sec 5.5: 1654 DPUs match the A100's 300 W envelope.
  const std::size_t parity = dpus_at_gpu_power_parity();
  EXPECT_NEAR(static_cast<double>(parity), 1654.0, 2.0);
}

TEST(Energy, PricesMatchTable1) {
  EXPECT_DOUBLE_EQ(platform_price_usd(Platform::kCpu), 1400.0);
  EXPECT_DOUBLE_EQ(platform_price_usd(Platform::kGpu), 20000.0);
  EXPECT_DOUBLE_EQ(platform_price_usd(Platform::kPim, 896), 2800.0);
}

}  // namespace
}  // namespace upanns::pim
