// Telemetry-plane tests: the rolling window (slot alignment, expiry,
// old-observation clamping, merge, the shared quantile kernel), windowed
// instruments in MetricsRegistry and their snapshot/JSON round trip,
// Prometheus text exposition, UPANNS_LOG parsing, build provenance, guarded
// telemetry writes, and the per-query span forest: query-cost capture is
// gated on an attached SpanLog, span durations obey the accounting identity
//   sum(query spans) + sum(patch spans) == serial_seconds
// on single-host and multi-host runs (with and without mutations), spans
// never change results, and a combined mutation + multi-host run exports a
// bit-exact golden trace across repeated runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/multihost.hpp"
#include "core/pipeline.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/provenance.hpp"
#include "obs/report_json.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"

namespace upanns::obs {
namespace {

// ---------------------------------------------------------------- window

TEST(Window, RejectsBadOptions) {
  EXPECT_THROW(WindowedHistogram({0.0, 4}, {1.0}), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram({-1.0, 4}, {1.0}), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram({10.0, 0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram({10.0, 4}, {}), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram({10.0, 4}, {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram({10.0, 4}, {1.0, 1.0}), std::invalid_argument);
}

TEST(Window, SlotsAlignToTimeZeroAndExpire) {
  // 10 s window, 1 s slots: slot i covers [i, i+1), aligned to t = 0.
  WindowedHistogram w({10.0, 10}, {1.0, 10.0});
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.now(), 0.0);
  w.observe(0.5, 1.0);    // slot 0
  w.observe(5.2, 2.0);    // slot 5
  w.observe(9.999, 3.0);  // slot 9 — slots 0..9 all live
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.sum(), 6.0);
  w.advance(10.0);  // live window becomes slots 1..10: slot 0 expires
  EXPECT_EQ(w.count(), 2u);
  EXPECT_DOUBLE_EQ(w.sum(), 5.0);
  w.advance(7.0);  // never rotates backwards
  EXPECT_EQ(w.count(), 2u);
  w.advance(15.0);  // live 6..15: slot 5 expires, slot 9 survives
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.sum(), 3.0);
  w.advance(100.0);  // jump past the whole ring: everything expires
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.sum(), 0.0);
  EXPECT_DOUBLE_EQ(w.rate(), 0.0);
}

TEST(Window, ClampsObservationsOlderThanTheWindow) {
  // A restarted timeline (second pipeline run re-observing from t = 0) must
  // not silently drop counts: too-old observations land in the oldest live
  // slot instead.
  WindowedHistogram w({10.0, 10}, {1.0});
  w.observe(100.0, 1.0);
  w.observe(0.0, 2.0, 5);
  EXPECT_EQ(w.count(), 6u);
  EXPECT_DOUBLE_EQ(w.sum(), 11.0);
  // The clamped counts expire with the oldest slot, not at their own time.
  w.advance(101.0);
  EXPECT_EQ(w.count(), 1u);
}

TEST(Window, RateIsLiveCountOverWidth) {
  WindowedHistogram w({4.0, 4}, {1.0});
  w.observe(0.5, 0.1, 6);
  w.observe(3.5, 0.1, 2);
  EXPECT_DOUBLE_EQ(w.rate(), 2.0);  // 8 observations over a 4 s window
  w.advance(4.5);                   // the first slot (6 obs) expires
  EXPECT_DOUBLE_EQ(w.rate(), 0.5);
}

TEST(Window, QuantilesShareTheCumulativeKernel) {
  // Identical observations (all inside the live window) give the windowed
  // and cumulative histograms identical merged buckets and min/max, so the
  // shared quantile_from_buckets kernel must return identical quantiles.
  const std::vector<double> bounds = Histogram::default_time_bounds();
  Histogram h(bounds);
  WindowedHistogram w({10.0, 10}, bounds);
  common::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double v = std::pow(10.0, -5.0 + 4.0 * rng.uniform());
    h.observe(v);
    w.observe(rng.uniform() * 9.0, v);  // out of order, but never expiring
  }
  EXPECT_EQ(w.count(), h.count());
  EXPECT_EQ(w.bucket_counts(), h.bucket_counts());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(w.quantile(q), h.quantile(q)) << "q = " << q;
  }
  EXPECT_DOUBLE_EQ(quantile_from_buckets(h.bounds(), h.bucket_counts(),
                                         h.min(), h.max(), 0.99),
                   h.quantile(0.99));
}

TEST(Window, MergeFoldsLiveSlots) {
  WindowedHistogram a({10.0, 10}, {1.0});
  WindowedHistogram b({10.0, 10}, {1.0});
  a.observe(1.5, 0.5);
  b.observe(2.5, 2.0, 3);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 6.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
  WindowedHistogram c({10.0, 10}, {2.0});
  EXPECT_THROW(a.merge_from(c), std::invalid_argument);
}

// ---------------------------------------------------------------- registry

TEST(Registry, WindowedInstrumentsUseTheRegistryDefaultOptions) {
  MetricsRegistry reg;
  reg.set_window_options({4.0, 4});
  WindowedHistogram& w = reg.windowed("query.latency_seconds");
  EXPECT_DOUBLE_EQ(w.options().width_seconds, 4.0);
  EXPECT_EQ(w.options().slots, 4u);
  EXPECT_EQ(&w, &reg.windowed("query.latency_seconds"));  // stable reference

  w.observe(1.0, 0.5, 8);
  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.windows.size(), 1u);
  EXPECT_EQ(s.windows[0].name, "query.latency_seconds");
  EXPECT_DOUBLE_EQ(s.windows[0].width_seconds, 4.0);
  EXPECT_DOUBLE_EQ(s.windows[0].slot_seconds, 1.0);
  EXPECT_EQ(s.windows[0].count, 8u);
  EXPECT_DOUBLE_EQ(s.windows[0].rate, 2.0);
}

TEST(Registry, SnapshotJsonOmitsWindowsWhenNoneExist) {
  // Pre-window consumers parse {counters, gauges, histograms}; a registry
  // with no windowed instruments must keep emitting exactly that shape.
  MetricsRegistry bare;
  bare.counter("c").add(1);
  EXPECT_FALSE(json_parse(snapshot_json(bare.snapshot())).has("windows"));

  MetricsRegistry reg;
  reg.windowed("w").observe(0.1, 0.2);
  EXPECT_TRUE(json_parse(snapshot_json(reg.snapshot())).has("windows"));
}

TEST(Registry, SnapshotRoundTripsThroughJson) {
  MetricsRegistry reg;
  reg.set_window_options({10.0, 20});
  reg.counter("pipeline.queries").add(96);
  reg.gauge("balance").set(1.0 / 3.0);
  Histogram& h = reg.histogram("pipeline.batch.seconds");
  h.observe(3.7e-4);
  h.observe(9.1e-3);
  reg.windowed("query.latency_seconds").observe(0.25, 3.7e-4, 32);

  const MetricsSnapshot a = reg.snapshot();
  const MetricsSnapshot b = snapshot_from_json(json_parse(snapshot_json(a)));

  ASSERT_EQ(b.counters.size(), 1u);
  EXPECT_EQ(b.counters[0].name, "pipeline.queries");
  EXPECT_EQ(b.counters[0].value, 96u);
  ASSERT_EQ(b.gauges.size(), 1u);
  EXPECT_EQ(std::memcmp(&b.gauges[0].value, &a.gauges[0].value,
                        sizeof(double)),
            0);
  ASSERT_EQ(b.histograms.size(), 1u);
  EXPECT_EQ(b.histograms[0].count, 2u);
  EXPECT_EQ(std::memcmp(&b.histograms[0].sum, &a.histograms[0].sum,
                        sizeof(double)),
            0);
  EXPECT_EQ(b.histograms[0].bounds, a.histograms[0].bounds);
  EXPECT_EQ(b.histograms[0].bucket_counts, a.histograms[0].bucket_counts);
  ASSERT_EQ(b.windows.size(), 1u);
  EXPECT_EQ(b.windows[0].name, "query.latency_seconds");
  EXPECT_EQ(b.windows[0].count, 32u);
  EXPECT_DOUBLE_EQ(b.windows[0].width_seconds, 10.0);
  EXPECT_EQ(std::memcmp(&b.windows[0].p99, &a.windows[0].p99, sizeof(double)),
            0);
}

// ---------------------------------------------------------------- prometheus

TEST(Prometheus, NamesAreSanitizedWithThePrefix) {
  EXPECT_EQ(prometheus_name("pipeline.stage.host-merge.seconds"),
            "upanns_pipeline_stage_host_merge_seconds");
  EXPECT_EQ(prometheus_name("ok_name_09"), "upanns_ok_name_09");
}

TEST(Prometheus, TextExpositionRendersEveryInstrumentKind) {
  MetricsRegistry reg;
  reg.counter("pim.launches").add(3);
  reg.gauge("balance").set(0.5);
  Histogram& h = reg.histogram("lat.seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  reg.windowed("query.latency_seconds", WindowOptions{10.0, 5}, {1.0})
      .observe(0.3, 0.5, 4);

  const std::string text = prometheus_text(reg.snapshot());
  const auto has = [&](const std::string& s) {
    EXPECT_NE(text.find(s), std::string::npos) << "missing: " << s;
  };
  has("# TYPE upanns_pim_launches_total counter\nupanns_pim_launches_total 3\n");
  has("# TYPE upanns_balance gauge\nupanns_balance 0.5\n");
  // Buckets are cumulative and +Inf equals the series count.
  has("# TYPE upanns_lat_seconds histogram\n");
  has("upanns_lat_seconds_bucket{le=\"1\"} 1\n");
  has("upanns_lat_seconds_bucket{le=\"2\"} 2\n");
  has("upanns_lat_seconds_bucket{le=\"+Inf\"} 3\n");
  has("upanns_lat_seconds_sum 11\n");
  has("upanns_lat_seconds_count 3\n");
  // Rolling windows export as gauges labeled with their configured width.
  has("upanns_query_latency_seconds_window_p50{window_seconds=\"10\"}");
  has("upanns_query_latency_seconds_window_p99{window_seconds=\"10\"}");
  has("upanns_query_latency_seconds_window_p999{window_seconds=\"10\"}");
  has("upanns_query_latency_seconds_window_rate{window_seconds=\"10\"} 0.4");
  has("upanns_query_latency_seconds_window_count{window_seconds=\"10\"} 4\n");
}

// ---------------------------------------------------------------- log env

TEST(Log, EnvValueParsesKnownLevelsCaseInsensitively) {
  EXPECT_EQ(common::log_level_from_env_value("debug"),
            common::LogLevel::kDebug);
  EXPECT_EQ(common::log_level_from_env_value("INFO"), common::LogLevel::kInfo);
  EXPECT_EQ(common::log_level_from_env_value("Warn"), common::LogLevel::kWarn);
  EXPECT_EQ(common::log_level_from_env_value("warning"),
            common::LogLevel::kWarn);
  EXPECT_EQ(common::log_level_from_env_value("error"),
            common::LogLevel::kError);
}

TEST(Log, UnrecognizedEnvValueWarnsAndDefaultsToInfo) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(common::log_level_from_env_value("chatty"),
            common::LogLevel::kInfo);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("chatty"), std::string::npos) << err;
  EXPECT_NE(err.find("unrecognized UPANNS_LOG"), std::string::npos) << err;
}

// ---------------------------------------------------------------- provenance

TEST(Provenance, StampsSchemaAndToolchainIntoEveryArtifact) {
  const BuildProvenance& p = build_provenance();
  EXPECT_EQ(p.schema_version, "upanns.telemetry.v1");
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.compiler.empty());
  EXPECT_FALSE(p.build_type.empty());

  SpanLog log;
  const JsonValue v = json_parse(span_log_json(log));
  EXPECT_EQ(v.at("provenance").at("schema_version").string, p.schema_version);
  EXPECT_EQ(v.at("provenance").at("git_sha").string, p.git_sha);
  EXPECT_EQ(v.at("n_spans").number, 0.0);
  EXPECT_EQ(v.at("spans").array.size(), 0u);
}

// ---------------------------------------------------------------- guarded IO

TEST(Trace, GuardedWriteRefusesToClobberWithoutForce) {
  const std::string path = testing::TempDir() + "upanns_guard_test.json";
  std::remove(path.c_str());
  EXPECT_FALSE(file_exists(path));
  write_text_file_guarded(path, "one", false);
  EXPECT_TRUE(file_exists(path));

  testing::internal::CaptureStderr();
  EXPECT_THROW(write_text_file_guarded(path, "two", false),
               std::runtime_error);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--force"), std::string::npos) << err;

  write_text_file_guarded(path, "three", true);
  std::ifstream in(path);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "three");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- spans

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(6000, 42));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 24;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 48;
    spec.seed = 9;
    wl = data::generate_workload(base, spec);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, wl.queries, 6));
  }

  core::UpAnnsOptions options() const {
    core::UpAnnsOptions o = core::UpAnnsOptions::upanns();
    o.n_dpus = 8;
    o.nprobe = 6;
    o.k = 10;
    return o;
  }

  std::vector<data::Dataset> batches() const {
    return core::split_batches(wl.queries, 16);  // 3 batches of 16
  }

  /// Fresh single-host 3-batch run, optionally with a span log / registry.
  core::BatchPipelineReport single_run(SpanLog* spans,
                                       MetricsRegistry* reg = nullptr) {
    core::UpAnnsEngine engine(index, stats, options());
    engine.set_metrics(reg);
    engine.set_spans(spans);
    core::BatchPipeline pipeline(engine, {.overlap = true});
    return pipeline.run(batches());
  }

  std::vector<float> perturbed_row(common::Rng& rng) const {
    const float* row = base.row(rng.below(base.n));
    std::vector<float> v(row, row + base.dim);
    for (float& x : v) x += rng.uniform(-0.05f, 0.05f);
    return v;
  }

  /// Mixed read/write single-host run over a private index copy: upserts
  /// before batches 1 and 2 force an incremental MRAM patch per batch.
  core::BatchPipelineReport mutating_single_run(SpanLog* spans,
                                                ivf::IvfIndex& mut) {
    core::UpAnnsEngine engine(mut, stats, options());
    engine.set_spans(spans);
    core::BatchPipeline pipeline(engine, {.overlap = true});
    common::Rng rng(321);
    const core::BatchPipeline::MutationHook hook = [&](std::size_t b) {
      if (b == 0) return;
      std::vector<std::uint32_t> ids;
      std::vector<float> flat;
      for (std::size_t i = 0; i < 16; ++i) {
        ids.push_back(static_cast<std::uint32_t>(200'000 + b * 100 + i));
        const std::vector<float> v = perturbed_row(rng);
        flat.insert(flat.end(), v.begin(), v.end());
      }
      engine.upsert(ids, flat);
    };
    return pipeline.run(batches(), hook);
  }

  /// Mixed read/write multi-host run over a private index copy: upserts +
  /// removes before batches 1 and 2 force fleet-wide MRAM patches. The rng
  /// seed is fixed, so two runs over fresh copies are bit-identical.
  core::MultiHostPipelineReport mutating_multihost_run(SpanLog* spans,
                                                       ivf::IvfIndex& mut) {
    core::MultiHostOptions mh;
    mh.n_hosts = 3;
    mh.per_host = options();
    core::MultiHostUpAnns cluster(mut, stats, mh);
    cluster.set_spans(spans);
    core::MultiHostBatchPipeline pipeline(cluster, {.overlap = true});
    common::Rng rng(777);
    const core::MultiHostBatchPipeline::MutationHook hook =
        [&](std::size_t b) {
          if (b == 0) return;
          std::vector<std::uint32_t> ids;
          std::vector<float> flat;
          for (std::size_t i = 0; i < 20; ++i) {
            ids.push_back(static_cast<std::uint32_t>(300'000 + b * 1000 + i));
            const std::vector<float> v = perturbed_row(rng);
            flat.insert(flat.end(), v.begin(), v.end());
          }
          cluster.upsert(ids, flat);
          std::vector<std::uint32_t> dead;
          for (std::size_t i = 0; i < 10; ++i) {
            dead.push_back(static_cast<std::uint32_t>(rng.below(base.n)));
          }
          cluster.remove(dead);
        };
    return pipeline.run(batches(), hook);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

double sum_category(const SpanLog& log, const char* category) {
  double s = 0;
  for (const Span& sp : log.spans()) {
    if (sp.category == category) s += sp.duration_seconds;
  }
  return s;
}

/// Structural invariants every span forest must satisfy: 1-based ids in push
/// order, parents resolve to earlier spans, roots are batch spans, query
/// spans hang off batch roots, query-stage spans off query spans.
void expect_valid_forest(const SpanLog& log) {
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& s : log.spans()) {
    EXPECT_EQ(by_id.count(s.id), 0u) << "duplicate span id " << s.id;
    by_id[s.id] = &s;
    if (s.parent == 0) {
      EXPECT_EQ(s.category, "batch") << s.name;
      continue;
    }
    ASSERT_EQ(by_id.count(s.parent), 1u)
        << s.name << " has unknown parent " << s.parent;
    const Span& p = *by_id.at(s.parent);
    EXPECT_LT(p.id, s.id);
    if (s.category == "query") {
      EXPECT_EQ(p.category, "batch");
    }
    if (s.category == "query-stage") {
      EXPECT_EQ(p.category, "query");
    }
  }
}

TEST(Spans, QueryCostsAreCapturedOnlyWithASpanLogAttached) {
  auto& f = fixture();
  const auto plain = f.single_run(nullptr);
  for (const auto& slot : plain.slots) {
    EXPECT_FALSE(slot.report.query_costs.has_value());
  }

  SpanLog log;
  const auto run = f.single_run(&log);
  ASSERT_EQ(run.slots.size(), 3u);
  for (std::size_t b = 0; b < run.slots.size(); ++b) {
    ASSERT_TRUE(run.slots[b].report.query_costs.has_value()) << "batch " << b;
    const core::QueryCosts& qc = *run.slots[b].report.query_costs;
    EXPECT_EQ(qc.batch_id, b);
    EXPECT_EQ(qc.first_query_id, b * 16);
    ASSERT_EQ(qc.device_weight.size(), 16u);
    double total = 0;
    for (const double w : qc.device_weight) {
      EXPECT_GT(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);  // shares of the batch's device phase
  }
}

TEST(Spans, PipelineForestObeysTheAccountingIdentity) {
  auto& f = fixture();
  SpanLog log;
  const auto run = f.single_run(&log);
  ASSERT_FALSE(log.empty());
  expect_valid_forest(log);

  // One root per batch.
  std::size_t roots = 0;
  for (const Span& s : log.spans()) roots += s.parent == 0 ? 1 : 0;
  EXPECT_EQ(roots, run.slots.size());

  // Every query appears exactly once, with its stable global id.
  std::set<std::int64_t> qids;
  for (const Span& s : log.spans()) {
    if (s.category == "query") qids.insert(s.query);
  }
  EXPECT_EQ(qids.size(), run.n_queries);
  EXPECT_EQ(*qids.begin(), 0);
  EXPECT_EQ(*qids.rbegin(), static_cast<std::int64_t>(run.n_queries) - 1);

  // Per batch, query spans sum to that batch's own search time; across the
  // run, query + patch spans sum to serial_seconds.
  for (std::size_t b = 0; b < run.slots.size(); ++b) {
    double qsum = 0;
    for (const Span& s : log.spans()) {
      if (s.category == "query" &&
          s.batch == static_cast<std::int64_t>(b)) {
        qsum += s.duration_seconds;
      }
    }
    const double expect = run.slots[b].report.times.total();
    EXPECT_NEAR(qsum, expect, 1e-9 * std::max(expect, 1e-30)) << "batch " << b;
  }
  const double total = sum_category(log, "query") + sum_category(log, "patch");
  EXPECT_NEAR(total, run.serial_seconds, 1e-9 * run.serial_seconds);
  EXPECT_DOUBLE_EQ(sum_category(log, "patch"), 0.0);  // read-only run
}

TEST(Spans, AttachingASpanLogNeverChangesResults) {
  auto& f = fixture();
  const auto plain = f.single_run(nullptr);
  SpanLog log;
  const auto spanned = f.single_run(&log);
  ASSERT_EQ(plain.slots.size(), spanned.slots.size());
  EXPECT_EQ(plain.elapsed_seconds, spanned.elapsed_seconds);
  EXPECT_EQ(plain.serial_seconds, spanned.serial_seconds);
  for (std::size_t b = 0; b < plain.slots.size(); ++b) {
    const auto& a = plain.slots[b].report.neighbors;
    const auto& c = spanned.slots[b].report.neighbors;
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      EXPECT_TRUE(a[q] == c[q]) << "batch " << b << " query " << q;
    }
  }
  // The Perfetto export without spans is byte-identical whether the span
  // pointer is absent, null, or an empty log (zero-cost-when-detached).
  const PipelineTrace trace = pipeline_trace(spanned);
  const std::string bare = trace_json(trace);
  EXPECT_EQ(bare, trace_json(trace, nullptr));
  SpanLog empty;
  EXPECT_EQ(bare, trace_json(trace, &empty));
}

TEST(Spans, TraceJsonEmbedsTheForestAsAsyncEventPairs) {
  auto& f = fixture();
  SpanLog log;
  const auto run = f.single_run(&log);
  const std::string with = trace_json(pipeline_trace(run), &log);
  const JsonValue doc = json_parse(with);
  std::size_t begins = 0, ends = 0;
  for (const JsonValue& ev : doc.at("traceEvents").array) {
    const std::string& ph = ev.at("ph").string;
    begins += ph == "b" ? 1 : 0;
    ends += ph == "e" ? 1 : 0;
  }
  EXPECT_EQ(begins, log.size());
  EXPECT_EQ(ends, log.size());
}

TEST(Spans, MutationRunsAddPatchSpansAndKeepTheIdentity) {
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;
  SpanLog log;
  const auto run = f.mutating_single_run(&log, mut);
  expect_valid_forest(log);

  double patch_expected = 0;
  for (const auto& slot : run.slots) patch_expected += slot.patch_seconds;
  ASSERT_GT(patch_expected, 0.0) << "mutation hook issued no patches";
  EXPECT_NEAR(sum_category(log, "patch"), patch_expected,
              1e-12 * patch_expected);
  const double total = sum_category(log, "query") + sum_category(log, "patch");
  EXPECT_NEAR(total, run.serial_seconds, 1e-9 * run.serial_seconds);
}

TEST(Spans, MultihostForestCoversCoordinatorNetworkAndHostLanes) {
  auto& f = fixture();
  ivf::IvfIndex mut = f.index;  // fresh copy; the hook mutates it
  SpanLog log;
  const auto run = f.mutating_multihost_run(&log, mut);
  expect_valid_forest(log);

  std::size_t coord = 0, net = 0, host = 0, patch = 0, query = 0;
  for (const Span& s : log.spans()) {
    if (s.category == "coord") ++coord;
    if (s.category == "net") ++net;
    if (s.category == "host") {
      ++host;
      EXPECT_GE(s.host, 0) << s.name;
    }
    if (s.category == "patch") ++patch;
    if (s.category == "query") ++query;
  }
  EXPECT_EQ(coord, 2 * run.slots.size());  // cluster-filter + interhost-merge
  EXPECT_EQ(net, 2 * run.slots.size());    // broadcast + gather
  EXPECT_GE(host, 2 * run.slots.size());   // >= 2 lanes per batch, per host
  EXPECT_GT(patch, 0u);
  EXPECT_EQ(query, run.n_queries);

  const double total = sum_category(log, "query") + sum_category(log, "patch");
  EXPECT_NEAR(total, run.serial_seconds, 1e-9 * run.serial_seconds);
}

TEST(Spans, CombinedMutationMultihostExportIsGoldenBitExact) {
  // Satellite 3: one run exercising mutations + multi-host tracing at once
  // must export deterministically — two fresh runs over fresh index copies
  // produce byte-identical span logs and Perfetto traces.
  auto& f = fixture();
  ivf::IvfIndex mut1 = f.index;
  SpanLog log1;
  const auto run1 = f.mutating_multihost_run(&log1, mut1);
  ivf::IvfIndex mut2 = f.index;
  SpanLog log2;
  const auto run2 = f.mutating_multihost_run(&log2, mut2);

  EXPECT_EQ(run1.elapsed_seconds, run2.elapsed_seconds);
  const std::string spans1 = span_log_json(log1);
  EXPECT_EQ(spans1, span_log_json(log2));
  EXPECT_EQ(trace_json(multihost_trace(run1), &log1),
            trace_json(multihost_trace(run2), &log2));

  // And the span log JSON carries the full schema per span.
  const JsonValue doc = json_parse(spans1);
  EXPECT_EQ(doc.at("n_spans").number,
            static_cast<double>(log1.size()));
  const JsonValue& first = doc.at("spans").at(0);
  for (const char* key : {"id", "parent", "name", "cat", "batch", "query",
                          "host", "start_seconds", "duration_seconds"}) {
    EXPECT_TRUE(first.has(key)) << key;
  }
}

TEST(Spans, WindowedLatencyTracksTheCumulativeHistogram) {
  // Serving with a registry attached books query.latency_seconds both
  // cumulatively and into the rolling window; with every batch inside the
  // window the two quantile readouts agree within one bucket.
  auto& f = fixture();
  MetricsRegistry reg;
  reg.set_window_options({1000.0, 20});  // simulated run fits in the window
  SpanLog log;
  const auto run = f.single_run(&log, &reg);
  (void)run;
  const MetricsSnapshot s = reg.snapshot();
  const MetricsSnapshot::HistogramValue* cum = nullptr;
  for (const auto& h : s.histograms) {
    if (h.name == "query.latency_seconds") cum = &h;
  }
  const MetricsSnapshot::WindowValue* win = nullptr;
  for (const auto& w : s.windows) {
    if (w.name == "query.latency_seconds") win = &w;
  }
  ASSERT_NE(cum, nullptr);
  ASSERT_NE(win, nullptr);
  EXPECT_EQ(win->count, cum->count);
  EXPECT_DOUBLE_EQ(win->p50, cum->p50);
  EXPECT_DOUBLE_EQ(win->p99, cum->p99);
}

}  // namespace
}  // namespace upanns::obs
