#include "core/cae.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace upanns::core {
namespace {

ivf::InvertedList make_list(const std::vector<std::vector<std::uint8_t>>& rows) {
  ivf::InvertedList list;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    list.ids.push_back(static_cast<std::uint32_t>(i));
    list.codes.insert(list.codes.end(), rows[i].begin(), rows[i].end());
  }
  return list;
}

// Rows with the paper's example triplet (1,15,26) at positions (0,1,2).
ivf::InvertedList patterned_list(std::size_t n, std::size_t m,
                                 double pattern_frac, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> rows(n, std::vector<std::uint8_t>(m));
  for (auto& row : rows) {
    for (auto& c : row) c = static_cast<std::uint8_t>(rng.below(256));
    if (rng.uniform() < pattern_frac && m >= 3) {
      row[0] = 1;
      row[1] = 15;
      row[2] = 26;
    }
  }
  return make_list(rows);
}

TEST(Cae, DirectEncodingRoundTrips) {
  const auto list = patterned_list(50, 16, 0.0, 1);
  const auto enc = direct_encode_cluster(list, 16);
  EXPECT_TRUE(cae_stream_matches_codes(enc, list, 16));
  EXPECT_EQ(enc.total_tokens, 50u * 16);
  EXPECT_DOUBLE_EQ(enc.length_reduction(), 0.0);
}

TEST(Cae, EncodingRoundTripsRandomData) {
  for (std::size_t m : {12u, 16u, 20u}) {
    const auto list = patterned_list(200, m, 0.3, 2 + m);
    const auto enc = cae_encode_cluster(list, m, CaeOptions{});
    EXPECT_TRUE(cae_stream_matches_codes(enc, list, m)) << "m=" << m;
  }
}

TEST(Cae, FindsPaperExampleTriplet) {
  const auto list = patterned_list(300, 16, 0.5, 3);
  const auto enc = cae_encode_cluster(list, 16, CaeOptions{});
  ASSERT_FALSE(enc.combos.empty());
  // The dominant combo is (1,15,26) at position 0.
  EXPECT_EQ(enc.combos[0].pos, 0);
  EXPECT_EQ(enc.combos[0].c0, 1);
  EXPECT_EQ(enc.combos[0].c1, 15);
  EXPECT_EQ(enc.combos[0].c2, 26);
}

TEST(Cae, LengthReductionGrowsWithPatternDensity) {
  const auto sparse = cae_encode_cluster(patterned_list(400, 16, 0.2, 4), 16,
                                         CaeOptions{});
  const auto dense = cae_encode_cluster(patterned_list(400, 16, 0.9, 4), 16,
                                        CaeOptions{});
  EXPECT_GT(dense.length_reduction(), sparse.length_reduction());
  EXPECT_GT(dense.length_reduction(), 0.05);
}

TEST(Cae, IdenticalRowsCollapseMaximally) {
  // All-identical codes: every consecutive triplet is cacheable; with m=15
  // the whole vector becomes 5 combo tokens (reduction 1 - 5/15 = 2/3).
  std::vector<std::vector<std::uint8_t>> rows(
      20, std::vector<std::uint8_t>(15, 7));
  const auto list = make_list(rows);
  const auto enc = cae_encode_cluster(list, 15, CaeOptions{});
  EXPECT_TRUE(cae_stream_matches_codes(enc, list, 15));
  EXPECT_NEAR(enc.length_reduction(), 2.0 / 3.0, 1e-9);
}

TEST(Cae, MaxCombosRespected) {
  CaeOptions opts;
  opts.max_combos = 4;
  opts.min_count = 1;
  const auto list = patterned_list(500, 16, 0.0, 5);
  const auto enc = cae_encode_cluster(list, 16, opts);
  EXPECT_LE(enc.combos.size(), 4u);
  EXPECT_TRUE(cae_stream_matches_codes(enc, list, 16));
}

TEST(Cae, MinCountFiltersRareCombos) {
  CaeOptions opts;
  opts.min_count = 1000;  // nothing qualifies
  const auto list = patterned_list(100, 16, 0.5, 6);
  const auto enc = cae_encode_cluster(list, 16, opts);
  EXPECT_TRUE(enc.combos.empty());
  EXPECT_DOUBLE_EQ(enc.length_reduction(), 0.0);
}

TEST(Cae, SmallMFallsBackToDirect) {
  std::vector<std::vector<std::uint8_t>> rows(10, {1, 2});
  const auto list = make_list(rows);
  const auto enc = cae_encode_cluster(list, 2, CaeOptions{});
  EXPECT_TRUE(cae_stream_matches_codes(enc, list, 2));
  EXPECT_TRUE(enc.combos.empty());
}

TEST(Cae, EmptyListYieldsEmptyStream) {
  ivf::InvertedList empty;
  const auto enc = cae_encode_cluster(empty, 16, CaeOptions{});
  EXPECT_EQ(enc.n_records, 0u);
  EXPECT_TRUE(enc.tokens.empty());
  EXPECT_TRUE(cae_stream_matches_codes(enc, empty, 16));
}

TEST(Cae, TokensDecodeWithinBounds) {
  const auto list = patterned_list(100, 16, 0.6, 7);
  const auto enc = cae_encode_cluster(list, 16, CaeOptions{});
  std::size_t off = 0;
  while (off < enc.tokens.size()) {
    const std::uint16_t len = enc.tokens[off++];
    EXPECT_LE(len, 16u);
    for (std::uint16_t t = 0; t < len; ++t) {
      const TokenRef ref = decode_token(enc.tokens[off++], 16);
      if (ref.is_combo) {
        EXPECT_LT(ref.value, enc.combos.size());
      } else {
        EXPECT_LT(ref.value, 16u * 256);
      }
    }
  }
  EXPECT_EQ(off, enc.tokens.size());
}

TEST(Cae, DeterministicEncoding) {
  const auto list = patterned_list(150, 16, 0.4, 8);
  const auto a = cae_encode_cluster(list, 16, CaeOptions{});
  const auto b = cae_encode_cluster(list, 16, CaeOptions{});
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.combos.size(), b.combos.size());
}

TEST(Cae, StreamBytesMatchesTokens) {
  const auto list = patterned_list(60, 12, 0.5, 9);
  const auto enc = cae_encode_cluster(list, 12, CaeOptions{});
  EXPECT_EQ(enc.stream_bytes(),
            (enc.total_tokens + enc.n_records) * sizeof(std::uint16_t));
}

TEST(Cae, MismatchDetectedBySelfCheck) {
  const auto list = patterned_list(20, 16, 0.0, 10);
  auto enc = direct_encode_cluster(list, 16);
  enc.tokens[1] ^= 1;  // corrupt one token
  EXPECT_FALSE(cae_stream_matches_codes(enc, list, 16));
}

}  // namespace
}  // namespace upanns::core
