#include "pim/wram.hpp"

#include <gtest/gtest.h>

namespace upanns::pim {
namespace {

TEST(Wram, DefaultCapacityIs64K) {
  WramAllocator w;
  EXPECT_EQ(w.capacity(), 64u * 1024);
  EXPECT_EQ(w.used(), 0u);
}

TEST(Wram, AllocAdvancesAligned) {
  WramAllocator w(1024);
  const auto a = w.alloc(10, "a");
  const auto b = w.alloc(8, "b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 16u);  // 10 rounds up to 16
  EXPECT_EQ(w.used(), 24u);
}

TEST(Wram, OverflowThrowsWithContext) {
  WramAllocator w(64);
  w.alloc(56, "big");
  try {
    w.alloc(16, "codebook");
    FAIL() << "expected WramOverflow";
  } catch (const WramOverflow& e) {
    EXPECT_NE(std::string(e.what()).find("codebook"), std::string::npos);
  }
}

TEST(Wram, ExactFitSucceeds) {
  WramAllocator w(64);
  EXPECT_NO_THROW(w.alloc(64, "all"));
  EXPECT_THROW(w.alloc(8, "more"), WramOverflow);
}

TEST(Wram, MarkRewindReusesSpace) {
  // The Fig 6 reuse pattern: LUT stays, codebook region is rewound and
  // reallocated as per-tasklet read buffers.
  WramAllocator w(100);
  w.alloc(40, "lut");
  const auto mark = w.mark();
  w.alloc(48, "codebook");
  EXPECT_THROW(w.alloc(16, "buffers"), WramOverflow);
  w.rewind(mark);
  EXPECT_NO_THROW(w.alloc(48, "buffers"));
}

TEST(Wram, RewindPastTopThrows) {
  WramAllocator w(100);
  const auto mark = w.mark();
  EXPECT_THROW(w.rewind(mark + 8), std::logic_error);
}

TEST(Wram, HighWaterTracksPeak) {
  WramAllocator w(100);
  w.alloc(80, "a");
  w.rewind(0);
  w.alloc(8, "b");
  EXPECT_EQ(w.high_water(), 80u);
  EXPECT_EQ(w.used(), 8u);
}

TEST(Wram, ResetClears) {
  WramAllocator w(100);
  w.alloc(48, "x");
  w.reset();
  EXPECT_EQ(w.used(), 0u);
  EXPECT_NO_THROW(w.alloc(96, "y"));
}

TEST(Wram, DataAccessWritable) {
  WramAllocator w(64);
  const auto off = w.alloc(8, "v");
  *w.as<std::uint64_t>(off) = 0xDEADBEEFull;
  EXPECT_EQ(*w.as<std::uint64_t>(off), 0xDEADBEEFull);
}

TEST(Wram, PaperBudgetSiftLayoutFits) {
  // The paper's SIFT working set: 32 KB codebook + 8 KB LUT + 8 KB partial
  // sums fits; adding 16 x 2 KB read buffers does NOT unless the codebook
  // region is reused (Sec 4.2.2).
  WramAllocator w;
  w.alloc(8 * 1024, "lut");
  w.alloc(8 * 1024, "combo-sums");
  const auto mark = w.mark();
  w.alloc(32 * 1024, "codebook");
  EXPECT_THROW(
      [&] {
        for (int t = 0; t < 16; ++t) w.alloc(2048, "read-buffer");
      }(),
      WramOverflow);
  w.rewind(mark);
  EXPECT_NO_THROW([&] {
    for (int t = 0; t < 16; ++t) w.alloc(2048, "read-buffer");
  }());
}

}  // namespace
}  // namespace upanns::pim
