#include "pim/cost_model.hpp"

#include <gtest/gtest.h>

namespace upanns::pim {
namespace {

TEST(MramDma, LegalizeAlignsAndClamps) {
  EXPECT_EQ(DpuCostModel::legalize_transfer(1), 8u);
  EXPECT_EQ(DpuCostModel::legalize_transfer(8), 8u);
  EXPECT_EQ(DpuCostModel::legalize_transfer(9), 16u);
  EXPECT_EQ(DpuCostModel::legalize_transfer(2048), 2048u);
  EXPECT_EQ(DpuCostModel::legalize_transfer(5000), 2048u);
}

TEST(MramDma, LatencyMonotone) {
  double prev = 0;
  for (std::size_t b = 8; b <= 2048; b *= 2) {
    const double lat = DpuCostModel::mram_dma_cycles(b);
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

TEST(MramDma, Fig7KneeShape) {
  // Paper Fig 7: latency grows slowly below ~256 B (setup-dominated) and
  // nearly linearly beyond. Check relative growth rates.
  const double l8 = DpuCostModel::mram_dma_cycles(8);
  const double l256 = DpuCostModel::mram_dma_cycles(256);
  const double l2048 = DpuCostModel::mram_dma_cycles(2048);
  // 32x size increase below the knee costs < 3x latency...
  EXPECT_LT(l256 / l8, 3.0);
  // ...while the 8x increase beyond it is nearly proportional (> 4x).
  EXPECT_GT(l2048 / l256, 4.0);
}

TEST(MramDma, PerByteEfficiencyImprovesWithSize) {
  // Cost per byte must strictly decrease: the basis of the Fig 17 read-size
  // tuning (bigger reads amortize the setup cost).
  const double per8 = DpuCostModel::mram_dma_cycles(8) / 8;
  const double per64 = DpuCostModel::mram_dma_cycles(64) / 64;
  const double per2048 = DpuCostModel::mram_dma_cycles(2048) / 2048;
  EXPECT_GT(per8, per64);
  EXPECT_GT(per64, per2048);
}

TEST(IssueGap, SaturatesAtEleven) {
  EXPECT_EQ(DpuCostModel::issue_gap(1), hw::kPipelineSaturation);
  EXPECT_EQ(DpuCostModel::issue_gap(11), 11u);
  EXPECT_EQ(DpuCostModel::issue_gap(16), 16u);
  EXPECT_EQ(DpuCostModel::issue_gap(24), 24u);
}

std::vector<TaskletWork> balanced(unsigned t, std::uint64_t instr_per,
                                  std::uint64_t dma_per = 0) {
  std::vector<TaskletWork> w(t);
  for (auto& x : w) {
    x.instructions = instr_per;
    x.dma_cycles = dma_per;
  }
  return w;
}

TEST(PhaseCycles, Fig13LinearSpeedupToEleven) {
  // Fixed total work split across T tasklets: time must drop ~1/T up to 11
  // tasklets and stay flat beyond — the law behind paper Fig 13.
  const std::uint64_t total = 110000;
  const std::uint64_t t1 = DpuCostModel::phase_cycles(balanced(1, total));
  for (unsigned t : {2u, 4u, 8u, 11u}) {
    const std::uint64_t tt =
        DpuCostModel::phase_cycles(balanced(t, total / t));
    EXPECT_NEAR(static_cast<double>(t1) / static_cast<double>(tt), t,
                0.05 * t)
        << "tasklets=" << t;
  }
  const std::uint64_t t11 = DpuCostModel::phase_cycles(balanced(11, total / 11));
  for (unsigned t : {16u, 24u}) {
    const std::uint64_t tt =
        DpuCostModel::phase_cycles(balanced(t, total / t));
    EXPECT_NEAR(static_cast<double>(tt), static_cast<double>(t11), 0.02 * t11)
        << "tasklets=" << t;
  }
}

TEST(PhaseCycles, IssueBandwidthLowerBound) {
  // Even with 24 tasklets, total cycles >= total instructions.
  const auto w = balanced(24, 1000);
  EXPECT_GE(DpuCostModel::phase_cycles(w), 24u * 1000u);
}

TEST(PhaseCycles, DmaEngineSerializes) {
  // DMA-heavy tasklets are bounded by the single DMA engine: sum of DMA
  // cycles is a lower bound regardless of tasklet count.
  auto w = balanced(11, 10, /*dma=*/50000);
  EXPECT_GE(DpuCostModel::phase_cycles(w), 11u * 50000u);
}

TEST(PhaseCycles, StragglerDominates) {
  // One tasklet with 10x the work sets the critical path.
  auto w = balanced(11, 100);
  w[3].instructions = 10000;
  const std::uint64_t expect_path = 11ull * 10000;
  EXPECT_GE(DpuCostModel::phase_cycles(w), expect_path);
}

TEST(PhaseCycles, CriticalSectionsAddSerialized) {
  auto w = balanced(4, 100);
  const std::uint64_t base = DpuCostModel::phase_cycles(w);
  for (auto& x : w) x.critical_instructions = 50;
  const std::uint64_t with_crit = DpuCostModel::phase_cycles(w);
  EXPECT_GE(with_crit, base + 4 * 50);  // at least the serialized work
}

TEST(PhaseCycles, EmptyIsZero) {
  EXPECT_EQ(DpuCostModel::phase_cycles({}), 0u);
}

TEST(Cycles, SecondsConversion) {
  EXPECT_DOUBLE_EQ(DpuCostModel::cycles_to_seconds(350'000'000), 1.0);
}

}  // namespace
}  // namespace upanns::pim
