#include "pim/transfer.hpp"

#include <gtest/gtest.h>

namespace upanns::pim {
namespace {

TEST(Transfer, UniformIsParallel) {
  const auto s = TransferEngine::batch({1024, 1024, 1024, 1024});
  EXPECT_TRUE(s.parallel);
  EXPECT_EQ(s.bytes, 4096u);
  EXPECT_DOUBLE_EQ(s.seconds, 4096.0 / hw::kHostXferParallelBw);
}

TEST(Transfer, NonUniformSerializes) {
  const auto s = TransferEngine::batch({1024, 2048});
  EXPECT_FALSE(s.parallel);
  EXPECT_DOUBLE_EQ(s.seconds, 3072.0 / hw::kHostXferSerialBw);
}

TEST(Transfer, SerialMuchSlowerThanParallel) {
  // The architectural penalty UpANNS's uniform padding avoids (Sec 2.2).
  const auto par = TransferEngine::batch({4096, 4096});
  const auto ser = TransferEngine::batch({4096, 4104});
  EXPECT_GT(ser.seconds, 10 * par.seconds);
}

TEST(Transfer, ZeroEntriesIgnoredForUniformity) {
  const auto s = TransferEngine::batch({0, 512, 0, 512});
  EXPECT_TRUE(s.parallel);
  EXPECT_EQ(s.bytes, 1024u);
}

TEST(Transfer, AllZeroIsFree) {
  const auto s = TransferEngine::batch({0, 0, 0});
  EXPECT_DOUBLE_EQ(s.seconds, 0.0);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(Transfer, EmptyVector) {
  const auto s = TransferEngine::batch({});
  EXPECT_DOUBLE_EQ(s.seconds, 0.0);
}

TEST(Transfer, SingleDpuIsUniform) {
  EXPECT_TRUE(TransferEngine::batch({777}).parallel);
}

TEST(Transfer, UniformHelperMatchesBatch) {
  const auto a = TransferEngine::uniform(8, 256);
  const auto b = TransferEngine::batch(std::vector<std::size_t>(8, 256));
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Transfer, UniformZeroBytes) {
  const auto s = TransferEngine::uniform(16, 0);
  EXPECT_DOUBLE_EQ(s.seconds, 0.0);
}

}  // namespace
}  // namespace upanns::pim
