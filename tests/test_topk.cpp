#include "common/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace upanns::common {
namespace {

TEST(BoundedMaxHeap, KeepsKSmallest) {
  BoundedMaxHeap h(3);
  for (float d : {9.f, 1.f, 5.f, 3.f, 7.f, 2.f}) {
    h.push(d, static_cast<std::uint32_t>(d));
  }
  const auto sorted = h.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_FLOAT_EQ(sorted[0].dist, 1.f);
  EXPECT_FLOAT_EQ(sorted[1].dist, 2.f);
  EXPECT_FLOAT_EQ(sorted[2].dist, 3.f);
}

TEST(BoundedMaxHeap, ThresholdIsWorstRetained) {
  BoundedMaxHeap h(2);
  EXPECT_EQ(h.threshold(), std::numeric_limits<float>::infinity());
  h.push(4.f, 0);
  EXPECT_EQ(h.threshold(), std::numeric_limits<float>::infinity());
  h.push(2.f, 1);
  EXPECT_FLOAT_EQ(h.threshold(), 4.f);
  h.push(1.f, 2);
  EXPECT_FLOAT_EQ(h.threshold(), 2.f);
}

TEST(BoundedMaxHeap, RejectsWorseThanThreshold) {
  BoundedMaxHeap h(1);
  EXPECT_TRUE(h.push(3.f, 0));
  EXPECT_FALSE(h.push(5.f, 1));
  EXPECT_TRUE(h.push(1.f, 2));
  EXPECT_EQ(h.sorted()[0].id, 2u);
}

TEST(BoundedMaxHeap, ZeroCapacity) {
  BoundedMaxHeap h(0);
  EXPECT_FALSE(h.push(1.f, 0));
  EXPECT_TRUE(h.empty());
}

TEST(BoundedMaxHeap, TieBreaksOnId) {
  BoundedMaxHeap h(2);
  h.push(1.f, 9);
  h.push(1.f, 3);
  h.push(1.f, 5);  // ties: ids 3 and 5 must win over 9
  const auto s = h.sorted();
  EXPECT_EQ(s[0].id, 3u);
  EXPECT_EQ(s[1].id, 5u);
}

TEST(BoundedMaxHeap, TakeSortedEmptiesHeap) {
  BoundedMaxHeap h(4);
  h.push(2.f, 0);
  h.push(1.f, 1);
  auto s = h.take_sorted();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(h.empty());
}

TEST(BoundedMaxHeap, ClearResets) {
  BoundedMaxHeap h(2);
  h.push(1.f, 0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.threshold(), std::numeric_limits<float>::infinity());
}

// Property: heap output equals sort-and-truncate for random streams.
class HeapPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeapPropertyTest, MatchesSortTruncate) {
  const std::size_t k = GetParam();
  Rng rng(1000 + k);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(500);
    std::vector<Neighbor> all;
    BoundedMaxHeap h(k);
    for (std::size_t i = 0; i < n; ++i) {
      Neighbor nb{rng.uniform(0.f, 100.f), static_cast<std::uint32_t>(i)};
      all.push_back(nb);
      h.push(nb);
    }
    std::sort(all.begin(), all.end());
    all.resize(std::min(k, all.size()));
    EXPECT_EQ(h.take_sorted(), all) << "k=" << k << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, HeapPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 64, 100));

TEST(MergeSortedTopk, MergesAcrossLists) {
  std::vector<std::vector<Neighbor>> lists = {
      {{1.f, 1}, {4.f, 4}}, {{2.f, 2}, {5.f, 5}}, {{3.f, 3}}};
  const auto merged = merge_sorted_topk(lists, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 1u);
  EXPECT_EQ(merged[1].id, 2u);
  EXPECT_EQ(merged[2].id, 3u);
}

TEST(MergeSortedTopk, EmptyLists) {
  EXPECT_TRUE(merge_sorted_topk({}, 5).empty());
  EXPECT_TRUE(merge_sorted_topk({{}, {}}, 5).empty());
}

TEST(MergeSortedTopk, FewerThanK) {
  const auto merged = merge_sorted_topk({{{1.f, 1}}}, 10);
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeSortedTopk, PropertyMatchesGlobalSort) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n_lists = 1 + rng.below(8);
    const std::size_t k = 1 + rng.below(20);
    std::vector<std::vector<Neighbor>> lists(n_lists);
    std::vector<Neighbor> all;
    std::uint32_t id = 0;
    for (auto& list : lists) {
      const std::size_t len = rng.below(30);
      for (std::size_t i = 0; i < len; ++i) {
        list.push_back({rng.uniform(0.f, 10.f), id++});
      }
      std::sort(list.begin(), list.end());
      all.insert(all.end(), list.begin(), list.end());
    }
    std::sort(all.begin(), all.end());
    all.resize(std::min(k, all.size()));
    EXPECT_EQ(merge_sorted_topk(lists, k), all);
  }
}

}  // namespace
}  // namespace upanns::common
