#include "baselines/gpu_model.hpp"

#include <gtest/gtest.h>

#include "baselines/cpu_cost_model.hpp"
#include "common/hw_specs.hpp"

namespace upanns::baselines {
namespace {

QueryWorkProfile billion_profile(std::size_t m = 16, std::size_t nprobe = 64,
                                 std::size_t max_cluster = 1'500'000) {
  QueryWorkProfile p;
  p.n_queries = 1000;
  p.n_clusters = 4096;
  p.nprobe = nprobe;
  p.dim = 128;
  p.m = m;
  p.k = 10;
  p.dataset_n = 1'000'000'000;
  p.total_candidates = p.n_queries * p.nprobe * (p.dataset_n / p.n_clusters);
  p.max_cluster = max_cluster;
  return p;
}

TEST(GpuModel, TopkDominatesAtBillionScale) {
  // Paper: the top-k stage consumes >64% (up to 89%) of GPU runtime.
  const StageTimes t = GpuModel::stage_times(billion_profile());
  EXPECT_GT(t.topk / t.total(), 0.64);
}

TEST(GpuModel, DistanceFasterThanCpu) {
  // The A100's 1935 GB/s makes the scan ~20x faster than the CPU's.
  const auto p = billion_profile();
  const double gpu = GpuModel::stage_times(p).distance_calc;
  const double cpu = CpuCostModel::stage_times(p).distance_calc;
  EXPECT_LT(gpu, cpu / 10.0);
}

TEST(GpuModel, TopkGrowsWithK) {
  QueryWorkProfile a = billion_profile();
  QueryWorkProfile b = a;
  b.k = 100;
  EXPECT_GT(GpuModel::stage_times(b).topk, GpuModel::stage_times(a).topk);
}

TEST(GpuModel, CapacityFitsSiftLikeSkew) {
  // SIFT1B-like skew (max list ~6x the 244k average) fits at every nprobe.
  for (std::size_t nprobe : {64u, 128u, 256u}) {
    const auto cap = GpuModel::capacity(billion_profile(16, nprobe));
    EXPECT_TRUE(cap.fits) << "nprobe=" << nprobe;
  }
}

TEST(GpuModel, Fig12DeepOomPattern) {
  // DEEP1B-like near-duplicate clump (~4% of 1B = 40M in one list): fits at
  // nprobe=64, OOMs at 128 and 256 — the paper's blue 'X' marks.
  const std::size_t clump = 40'000'000;
  EXPECT_TRUE(GpuModel::capacity(billion_profile(12, 64, clump)).fits);
  EXPECT_FALSE(GpuModel::capacity(billion_profile(12, 128, clump)).fits);
  EXPECT_FALSE(GpuModel::capacity(billion_profile(12, 256, clump)).fits);
}

TEST(GpuModel, IndexBytesBelowCapacityForPaperDatasets) {
  for (std::size_t m : {12u, 16u, 20u}) {
    const auto cap = GpuModel::capacity(billion_profile(m, 64, 0));
    EXPECT_LT(cap.index_bytes, hw::kGpuMemCapacity);
  }
}

TEST(GpuModel, WorkspaceScalesWithProbe) {
  const auto a = GpuModel::capacity(billion_profile(16, 64));
  const auto b = GpuModel::capacity(billion_profile(16, 256));
  EXPECT_NEAR(b.workspace_bytes / a.workspace_bytes, 4.0, 1e-9);
}

TEST(GpuModel, SyncLatencyFloorsSmallBatches) {
  QueryWorkProfile p = billion_profile();
  p.n_queries = 1;
  p.total_candidates = p.nprobe * (p.dataset_n / p.n_clusters);
  const StageTimes t = GpuModel::stage_times(p);
  EXPECT_GE(t.cluster_filter, hw::kGpuSyncLatency);
  EXPECT_GE(t.lut_build, hw::kGpuSyncLatency);
}

}  // namespace
}  // namespace upanns::baselines
