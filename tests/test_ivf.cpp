#include "ivf/ivf_index.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ivf/cluster_stats.hpp"
#include "quant/kmeans.hpp"

namespace upanns::ivf {
namespace {

data::Dataset base_data() {
  return data::generate_synthetic(data::sift1b_like(6000, 21));
}

IvfIndex build_small(const data::Dataset& base, std::size_t nc = 32) {
  IvfBuildOptions opts;
  opts.n_clusters = nc;
  opts.pq_m = 16;
  opts.coarse_iters = 6;
  opts.pq_iters = 5;
  return IvfIndex::build(base, opts);
}

TEST(IvfIndex, EveryPointInExactlyOneList) {
  const auto base = base_data();
  const auto idx = build_small(base);
  std::set<std::uint32_t> seen;
  for (std::size_t c = 0; c < idx.n_clusters(); ++c) {
    const auto& list = idx.list(c);
    EXPECT_EQ(list.codes.size(), list.ids.size() * idx.pq_m());
    for (auto id : list.ids) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(seen.size(), base.n);
}

TEST(IvfIndex, ListSizesSumToN) {
  const auto base = base_data();
  const auto idx = build_small(base);
  const auto sizes = idx.list_sizes();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            base.n);
}

TEST(IvfIndex, PointsAssignedToNearestCentroid) {
  const auto base = base_data();
  const auto idx = build_small(base);
  for (std::size_t c = 0; c < idx.n_clusters(); ++c) {
    const auto& list = idx.list(c);
    for (std::size_t i = 0; i < std::min<std::size_t>(list.size(), 5); ++i) {
      const auto [best, d] = quant::nearest_centroid(
          base.row(list.ids[i]), idx.centroids().data(), idx.n_clusters(),
          idx.dim());
      (void)d;
      EXPECT_EQ(best, c);
    }
  }
}

TEST(IvfIndex, FilterClustersMatchesBruteForce) {
  const auto base = base_data();
  const auto idx = build_small(base);
  const float* q = base.row(0);
  const auto probes = idx.filter_clusters(q, 5);
  ASSERT_EQ(probes.size(), 5u);
  // Compute distances to all centroids and verify the 5 chosen are the
  // 5 smallest, ordered ascending.
  std::vector<std::pair<float, std::uint32_t>> all;
  for (std::size_t c = 0; c < idx.n_clusters(); ++c) {
    all.emplace_back(quant::l2_sq(q, idx.centroid(c), idx.dim()),
                     static_cast<std::uint32_t>(c));
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(probes[i], all[i].second);
  }
}

TEST(IvfIndex, FilterClampedToNClusters) {
  const auto base = base_data();
  const auto idx = build_small(base, 8);
  EXPECT_EQ(idx.filter_clusters(base.row(0), 100).size(), idx.n_clusters());
}

TEST(IvfIndex, ResidualDefinition) {
  const auto base = base_data();
  const auto idx = build_small(base);
  std::vector<float> r(idx.dim());
  idx.residual(base.row(3), 2, r.data());
  for (std::size_t d = 0; d < idx.dim(); ++d) {
    EXPECT_FLOAT_EQ(r[d], base.row(3)[d] - idx.centroid(2)[d]);
  }
}

TEST(IvfIndex, RejectsBadOptions) {
  const auto base = base_data();
  IvfBuildOptions opts;
  opts.pq_m = 7;  // 128 % 7 != 0
  EXPECT_THROW(IvfIndex::build(base, opts), std::invalid_argument);
  EXPECT_THROW(IvfIndex::build(data::Dataset{}, IvfBuildOptions{}),
               std::invalid_argument);
}

TEST(ClusterStats, WorkloadIsSizeTimesFrequency) {
  const auto base = base_data();
  const auto idx = build_small(base);
  const std::vector<std::vector<std::uint32_t>> history = {{0, 1}, {0}};
  const auto stats = collect_stats(idx, history);
  ASSERT_EQ(stats.n_clusters(), idx.n_clusters());
  for (std::size_t c = 0; c < stats.n_clusters(); ++c) {
    EXPECT_DOUBLE_EQ(stats.workloads[c],
                     static_cast<double>(stats.sizes[c]) * stats.frequencies[c]);
  }
  EXPECT_GT(stats.frequencies[0], stats.frequencies[2]);
}

TEST(ClusterStats, AverageWorkloadDividesTotal) {
  const auto base = base_data();
  const auto idx = build_small(base);
  const auto stats = collect_stats(idx, {{0}});
  EXPECT_NEAR(stats.average_workload(4) * 4, stats.total_workload(), 1e-9);
  EXPECT_DOUBLE_EQ(stats.average_workload(0), 0.0);
}

TEST(ClusterStats, FilterBatchShape) {
  const auto base = base_data();
  const auto idx = build_small(base);
  data::Dataset queries;
  queries.dim = base.dim;
  queries.n = 4;
  queries.values.assign(base.values.begin(),
                        base.values.begin() + 4 * base.dim);
  const auto probes = filter_batch(idx, queries, 6);
  ASSERT_EQ(probes.size(), 4u);
  for (const auto& p : probes) EXPECT_EQ(p.size(), 6u);
}

TEST(ClusterStats, SkewReportReflectsSkewedHistory) {
  const auto base = base_data();
  const auto idx = build_small(base);
  // Heavily skewed history: cluster 0 accessed 100x, cluster 1 once.
  std::vector<std::vector<std::uint32_t>> history(100, {0});
  history.push_back({1});
  const auto stats = collect_stats(idx, history);
  const auto report = analyze_skew(stats);
  EXPECT_GT(report.freq_max_over_min_nonzero, 20.0);
  EXPECT_GE(report.workload_max_over_mean, 1.0);
  EXPECT_GE(report.size_max_over_min_nonzero, 1.0);
}

}  // namespace
}  // namespace upanns::ivf
