#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace upanns::core {
namespace {

// Synthetic probe batches: every query hits cluster `hot` plus a rotating
// filler cluster.
std::vector<std::vector<std::uint32_t>> batch_hitting(std::uint32_t hot,
                                                      std::size_t n_clusters,
                                                      std::size_t n_queries) {
  std::vector<std::vector<std::uint32_t>> probes;
  for (std::size_t q = 0; q < n_queries; ++q) {
    probes.push_back(
        {hot, static_cast<std::uint32_t>(q % n_clusters)});
  }
  return probes;
}

TEST(Adaptive, RejectsZeroClusters) {
  EXPECT_THROW(AdaptiveController(0), std::invalid_argument);
}

TEST(Adaptive, NoDriftNoAction) {
  AdaptiveController ctl(8);
  std::vector<double> base(8, 0.125);
  ctl.set_baseline(base);
  // Traffic matching the uniform baseline.
  std::vector<std::vector<std::uint32_t>> probes;
  for (std::uint32_t c = 0; c < 8; ++c) probes.push_back({c});
  for (int i = 0; i < 10; ++i) ctl.observe_batch(probes);
  EXPECT_LT(ctl.drift(), 0.01);

  const std::vector<std::size_t> sizes(8, 100);
  const std::vector<std::size_t> copies(8, 1);
  const auto rec = ctl.recommend(sizes, copies, 100.0);
  EXPECT_EQ(rec.action, AdaptAction::kNone);
  EXPECT_TRUE(rec.adjustments.empty());
}

TEST(Adaptive, DriftGrowsTowardShiftedTraffic) {
  AdaptiveController ctl(16);
  std::vector<double> base(16, 1.0 / 16);
  ctl.set_baseline(base);
  double prev = ctl.drift();
  for (int i = 0; i < 6; ++i) {
    ctl.observe_batch(batch_hitting(3, 16, 64));
    EXPECT_GE(ctl.drift(), prev - 1e-12);
    prev = ctl.drift();
  }
  EXPECT_GT(ctl.drift(), 0.2);
}

TEST(Adaptive, MajorShiftTriggersRelocation) {
  AdaptiveOptions opts;
  opts.major_threshold = 0.3;
  AdaptiveController ctl(16, opts);
  std::vector<double> base(16, 1.0 / 16);
  ctl.set_baseline(base);
  // All traffic collapses onto cluster 7.
  std::vector<std::vector<std::uint32_t>> probes(64, {7u});
  for (int i = 0; i < 12; ++i) ctl.observe_batch(probes);
  const std::vector<std::size_t> sizes(16, 100);
  const std::vector<std::size_t> copies(16, 1);
  const auto rec = ctl.recommend(sizes, copies, 50.0);
  EXPECT_EQ(rec.action, AdaptAction::kRelocate);
  EXPECT_GT(rec.drift, 0.3);
}

TEST(Adaptive, MinorShiftAdjustsCopies) {
  AdaptiveOptions opts;
  opts.minor_threshold = 0.05;
  opts.major_threshold = 0.9;  // never relocate in this test
  AdaptiveController ctl(8, opts);
  std::vector<double> base(8, 0.125);
  ctl.set_baseline(base);
  for (int i = 0; i < 8; ++i) ctl.observe_batch(batch_hitting(2, 8, 64));

  const std::vector<std::size_t> sizes(8, 1000);
  const std::vector<std::size_t> copies(8, 1);
  // Average per-DPU workload small enough that the hot cluster now wants
  // several replicas.
  const auto rec = ctl.recommend(sizes, copies, 150.0);
  EXPECT_EQ(rec.action, AdaptAction::kAdjustCopies);
  bool hot_gets_more = false;
  for (const auto& adj : rec.adjustments) {
    if (adj.cluster == 2) hot_gets_more = adj.delta > 0;
  }
  EXPECT_TRUE(hot_gets_more);
}

TEST(Adaptive, BaselineResetClearsDrift) {
  AdaptiveController ctl(8);
  std::vector<double> base(8, 0.125);
  ctl.set_baseline(base);
  for (int i = 0; i < 8; ++i) ctl.observe_batch(batch_hitting(1, 8, 32));
  EXPECT_GT(ctl.drift(), 0.1);
  // Rebuilding placement installs the estimate as the new baseline.
  ctl.set_baseline(ctl.estimate());
  EXPECT_NEAR(ctl.drift(), 0.0, 1e-12);
}

TEST(Adaptive, EmptyBatchIgnored) {
  AdaptiveController ctl(4);
  const auto est_before = ctl.estimate();
  ctl.observe_batch({});
  ctl.observe_batch({{99u}});  // out-of-range ids only
  EXPECT_EQ(ctl.estimate(), est_before);
  EXPECT_EQ(ctl.batches_observed(), 0u);
}

TEST(Adaptive, EstimateStaysNormalized) {
  AdaptiveController ctl(8);
  for (int i = 0; i < 5; ++i) ctl.observe_batch(batch_hitting(0, 8, 16));
  double total = 0;
  for (double v : ctl.estimate()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Adaptive, ActionNames) {
  EXPECT_STREQ(adapt_action_name(AdaptAction::kNone), "none");
  EXPECT_STREQ(adapt_action_name(AdaptAction::kAdjustCopies), "adjust-copies");
  EXPECT_STREQ(adapt_action_name(AdaptAction::kRelocate), "relocate");
}

TEST(Adaptive, ModeNamesAndParsing) {
  EXPECT_STREQ(adapt_mode_name(AdaptMode::kOff), "off");
  EXPECT_STREQ(adapt_mode_name(AdaptMode::kCopies), "copies");
  EXPECT_STREQ(adapt_mode_name(AdaptMode::kFull), "full");
  AdaptMode m = AdaptMode::kOff;
  EXPECT_TRUE(parse_adapt_mode("full", &m));
  EXPECT_EQ(m, AdaptMode::kFull);
  EXPECT_TRUE(parse_adapt_mode("copies", &m));
  EXPECT_EQ(m, AdaptMode::kCopies);
  EXPECT_TRUE(parse_adapt_mode("off", &m));
  EXPECT_EQ(m, AdaptMode::kOff);
  EXPECT_FALSE(parse_adapt_mode("", &m));
  EXPECT_FALSE(parse_adapt_mode("Copies", &m));
  EXPECT_FALSE(parse_adapt_mode("on", &m));
}

// With ewma_alpha = 1 the estimate equals the last batch exactly, so drift
// can be pinned to a precise total-variation value: 3-of-4 probes on cluster
// 0 against a uniform 2-cluster baseline gives TV((0.75,0.25),(0.5,0.5)) =
// 0.25 bit-for-bit (both values are dyadic).
std::unique_ptr<AdaptiveController> pinned_quarter_drift(AdaptiveOptions o) {
  o.ewma_alpha = 1.0;
  auto ctl = std::make_unique<AdaptiveController>(2, o);
  ctl->set_baseline({0.5, 0.5});
  ctl->observe_batch({{0u}, {0u}, {0u}, {1u}});
  return ctl;
}

TEST(Adaptive, DriftExactlyAtMajorThresholdRelocates) {
  AdaptiveOptions opts;
  opts.major_threshold = 0.25;  // == the pinned drift: boundary inclusive
  const auto ctl = pinned_quarter_drift(opts);
  EXPECT_DOUBLE_EQ(ctl->drift(), 0.25);
  const auto rec = ctl->recommend({100, 100}, {1, 1}, 100.0);
  EXPECT_EQ(rec.action, AdaptAction::kRelocate);
}

TEST(Adaptive, DriftExactlyAtMinorThresholdAdjustsCopies) {
  AdaptiveOptions opts;
  opts.minor_threshold = 0.25;  // == the pinned drift: boundary inclusive
  opts.major_threshold = 0.9;
  opts.copy_change_fraction = 2.0;  // never trigger via the change count
  const auto ctl = pinned_quarter_drift(opts);
  // w_bar = 100 keeps every want-count at its current 1 replica, so the
  // decision rests on the drift comparison alone.
  const auto rec = ctl->recommend({100, 100}, {1, 1}, 100.0);
  EXPECT_EQ(rec.action, AdaptAction::kAdjustCopies);
}

TEST(Adaptive, DriftJustBelowMinorThresholdDoesNothing) {
  AdaptiveOptions opts;
  opts.minor_threshold = 0.25 + 1e-9;
  opts.major_threshold = 0.9;
  opts.copy_change_fraction = 2.0;
  const auto ctl = pinned_quarter_drift(opts);
  const auto rec = ctl->recommend({100, 100}, {1, 1}, 100.0);
  EXPECT_EQ(rec.action, AdaptAction::kNone);
  EXPECT_TRUE(rec.adjustments.empty());
}

TEST(Adaptive, MajorDriftDegradesToCopiesWhenRelocateDisallowed) {
  AdaptiveOptions opts;
  opts.major_threshold = 0.2;  // well below the pinned 0.25 drift
  const auto ctl = pinned_quarter_drift(opts);
  const auto rec = ctl->recommend({100, 100}, {1, 1}, 100.0,
                                  /*allow_relocate=*/false);
  EXPECT_EQ(rec.action, AdaptAction::kAdjustCopies);
}

TEST(Adaptive, WindowMeanRollsOffStaleBatches) {
  AdaptiveOptions opts;
  opts.window_batches = 4;
  AdaptiveController ctl(4, opts);
  ctl.set_baseline({0.25, 0.25, 0.25, 0.25});
  // Four all-hot batches, then four uniform ones: the hot phase must have
  // rolled out of the window entirely.
  for (int i = 0; i < 4; ++i) ctl.observe_batch({{0u}, {0u}, {0u}, {0u}});
  EXPECT_DOUBLE_EQ(ctl.window_mean()[0], 1.0);
  for (int i = 0; i < 4; ++i) ctl.observe_batch({{0u}, {1u}, {2u}, {3u}});
  const auto mean = ctl.window_mean();
  for (double v : mean) EXPECT_DOUBLE_EQ(v, 0.25);
  // The long-memory EWMA still remembers the hot phase — that split is what
  // lets drift detection and replica sizing disagree.
  EXPECT_GT(ctl.estimate()[0], 0.25);
}

TEST(Adaptive, WindowMeanFallsBackToEstimateWhenEmpty) {
  AdaptiveController ctl(4);
  ctl.set_baseline({0.4, 0.3, 0.2, 0.1});
  EXPECT_EQ(ctl.window_mean(), ctl.estimate());
}

TEST(Adaptive, CopyChangeFractionAloneTriggersAdjustment) {
  AdaptiveOptions opts;
  opts.ewma_alpha = 0.0;        // estimate frozen at baseline: drift stays 0
  opts.minor_threshold = 0.5;   // unreachable via drift
  opts.major_threshold = 0.9;
  opts.copy_change_fraction = 0.5;
  AdaptiveController ctl(4, opts);
  ctl.set_baseline({0.25, 0.25, 0.25, 0.25});
  ctl.observe_batch({{0u}, {0u}, {0u}, {0u}});  // window mean: (1,0,0,0)
  EXPECT_DOUBLE_EQ(ctl.drift(), 0.0);
  // Cluster 0 wants ceil(100*1.0/50) = 2 (has 1); cluster 1 wants 1 (has
  // 2): 2 of 4 clusters change — exactly the 0.5 fraction, boundary
  // inclusive.
  const auto rec = ctl.recommend({100, 100, 100, 100}, {1, 2, 1, 1}, 50.0);
  EXPECT_EQ(rec.action, AdaptAction::kAdjustCopies);
  ASSERT_EQ(rec.adjustments.size(), 2u);
  EXPECT_EQ(rec.adjustments[0].cluster, 0u);
  EXPECT_EQ(rec.adjustments[0].delta, 1);
  EXPECT_EQ(rec.adjustments[1].cluster, 1u);
  EXPECT_EQ(rec.adjustments[1].delta, -1);

  // One change out of four stays below the fraction: no action, and the
  // tentative adjustment list must not leak out.
  const auto quiet = ctl.recommend({100, 100, 100, 100}, {1, 1, 1, 1}, 50.0);
  EXPECT_EQ(quiet.action, AdaptAction::kNone);
  EXPECT_TRUE(quiet.adjustments.empty());
}

TEST(Adaptive, RecommendIsDeterministic) {
  AdaptiveOptions opts;
  opts.minor_threshold = 0.05;
  AdaptiveController ctl(8, opts);
  ctl.set_baseline(std::vector<double>(8, 0.125));
  for (int i = 0; i < 6; ++i) ctl.observe_batch(batch_hitting(2, 8, 64));
  const std::vector<std::size_t> sizes(8, 1000);
  const std::vector<std::size_t> copies(8, 1);
  const auto a = ctl.recommend(sizes, copies, 150.0);
  const auto b = ctl.recommend(sizes, copies, 150.0);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.drift, b.drift);
  ASSERT_EQ(a.adjustments.size(), b.adjustments.size());
  for (std::size_t i = 0; i < a.adjustments.size(); ++i) {
    EXPECT_EQ(a.adjustments[i].cluster, b.adjustments[i].cluster);
    EXPECT_EQ(a.adjustments[i].delta, b.adjustments[i].delta);
    if (i > 0) {
      // Sorted by cluster id: apply order never depends on map iteration.
      EXPECT_LT(a.adjustments[i - 1].cluster, a.adjustments[i].cluster);
    }
  }
}

TEST(Adaptive, BusyBalanceTracksEwma) {
  AdaptiveOptions opts;
  opts.ewma_alpha = 0.5;
  AdaptiveController ctl(4, opts);
  EXPECT_DOUBLE_EQ(ctl.busy_balance(), 0.0);  // nothing observed yet
  ctl.observe_busy({2, 2, 2, 2});             // first sample binds directly
  EXPECT_DOUBLE_EQ(ctl.busy_balance(), 1.0);
  ctl.observe_busy({9, 1, 1, 1});  // ratio 3.0 -> 0.5*1.0 + 0.5*3.0
  EXPECT_DOUBLE_EQ(ctl.busy_balance(), 2.0);
  ctl.observe_busy({0, 0, 0, 0});  // all-idle batch reads as ratio 0
  EXPECT_DOUBLE_EQ(ctl.busy_balance(), 1.0);
}

}  // namespace
}  // namespace upanns::core
