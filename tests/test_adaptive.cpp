#include "core/adaptive.hpp"

#include <gtest/gtest.h>

namespace upanns::core {
namespace {

// Synthetic probe batches: every query hits cluster `hot` plus a rotating
// filler cluster.
std::vector<std::vector<std::uint32_t>> batch_hitting(std::uint32_t hot,
                                                      std::size_t n_clusters,
                                                      std::size_t n_queries) {
  std::vector<std::vector<std::uint32_t>> probes;
  for (std::size_t q = 0; q < n_queries; ++q) {
    probes.push_back(
        {hot, static_cast<std::uint32_t>(q % n_clusters)});
  }
  return probes;
}

TEST(Adaptive, RejectsZeroClusters) {
  EXPECT_THROW(AdaptiveController(0), std::invalid_argument);
}

TEST(Adaptive, NoDriftNoAction) {
  AdaptiveController ctl(8);
  std::vector<double> base(8, 0.125);
  ctl.set_baseline(base);
  // Traffic matching the uniform baseline.
  std::vector<std::vector<std::uint32_t>> probes;
  for (std::uint32_t c = 0; c < 8; ++c) probes.push_back({c});
  for (int i = 0; i < 10; ++i) ctl.observe_batch(probes);
  EXPECT_LT(ctl.drift(), 0.01);

  const std::vector<std::size_t> sizes(8, 100);
  const std::vector<std::size_t> copies(8, 1);
  const auto rec = ctl.recommend(sizes, copies, 100.0);
  EXPECT_EQ(rec.action, AdaptAction::kNone);
  EXPECT_TRUE(rec.adjustments.empty());
}

TEST(Adaptive, DriftGrowsTowardShiftedTraffic) {
  AdaptiveController ctl(16);
  std::vector<double> base(16, 1.0 / 16);
  ctl.set_baseline(base);
  double prev = ctl.drift();
  for (int i = 0; i < 6; ++i) {
    ctl.observe_batch(batch_hitting(3, 16, 64));
    EXPECT_GE(ctl.drift(), prev - 1e-12);
    prev = ctl.drift();
  }
  EXPECT_GT(ctl.drift(), 0.2);
}

TEST(Adaptive, MajorShiftTriggersRelocation) {
  AdaptiveOptions opts;
  opts.major_threshold = 0.3;
  AdaptiveController ctl(16, opts);
  std::vector<double> base(16, 1.0 / 16);
  ctl.set_baseline(base);
  // All traffic collapses onto cluster 7.
  std::vector<std::vector<std::uint32_t>> probes(64, {7u});
  for (int i = 0; i < 12; ++i) ctl.observe_batch(probes);
  const std::vector<std::size_t> sizes(16, 100);
  const std::vector<std::size_t> copies(16, 1);
  const auto rec = ctl.recommend(sizes, copies, 50.0);
  EXPECT_EQ(rec.action, AdaptAction::kRelocate);
  EXPECT_GT(rec.drift, 0.3);
}

TEST(Adaptive, MinorShiftAdjustsCopies) {
  AdaptiveOptions opts;
  opts.minor_threshold = 0.05;
  opts.major_threshold = 0.9;  // never relocate in this test
  AdaptiveController ctl(8, opts);
  std::vector<double> base(8, 0.125);
  ctl.set_baseline(base);
  for (int i = 0; i < 8; ++i) ctl.observe_batch(batch_hitting(2, 8, 64));

  const std::vector<std::size_t> sizes(8, 1000);
  const std::vector<std::size_t> copies(8, 1);
  // Average per-DPU workload small enough that the hot cluster now wants
  // several replicas.
  const auto rec = ctl.recommend(sizes, copies, 150.0);
  EXPECT_EQ(rec.action, AdaptAction::kAdjustCopies);
  bool hot_gets_more = false;
  for (const auto& adj : rec.adjustments) {
    if (adj.cluster == 2) hot_gets_more = adj.delta > 0;
  }
  EXPECT_TRUE(hot_gets_more);
}

TEST(Adaptive, BaselineResetClearsDrift) {
  AdaptiveController ctl(8);
  std::vector<double> base(8, 0.125);
  ctl.set_baseline(base);
  for (int i = 0; i < 8; ++i) ctl.observe_batch(batch_hitting(1, 8, 32));
  EXPECT_GT(ctl.drift(), 0.1);
  // Rebuilding placement installs the estimate as the new baseline.
  ctl.set_baseline(ctl.estimate());
  EXPECT_NEAR(ctl.drift(), 0.0, 1e-12);
}

TEST(Adaptive, EmptyBatchIgnored) {
  AdaptiveController ctl(4);
  const auto est_before = ctl.estimate();
  ctl.observe_batch({});
  ctl.observe_batch({{99u}});  // out-of-range ids only
  EXPECT_EQ(ctl.estimate(), est_before);
  EXPECT_EQ(ctl.batches_observed(), 0u);
}

TEST(Adaptive, EstimateStaysNormalized) {
  AdaptiveController ctl(8);
  for (int i = 0; i < 5; ++i) ctl.observe_batch(batch_hitting(0, 8, 16));
  double total = 0;
  for (double v : ctl.estimate()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Adaptive, ActionNames) {
  EXPECT_STREQ(adapt_action_name(AdaptAction::kNone), "none");
  EXPECT_STREQ(adapt_action_name(AdaptAction::kAdjustCopies), "adjust-copies");
  EXPECT_STREQ(adapt_action_name(AdaptAction::kRelocate), "relocate");
}

}  // namespace
}  // namespace upanns::core
