// Serve-layer tests: batch-close policy, admission queue, the real-threaded
// Server (drain completeness, backpressure, executor failure isolation) and
// the deterministic discrete-event loadgen (partial deadline batches,
// max-batch closes, rejection under a bounded queue, monotone latency under
// rising load). The final group pins the headline invariant: neighbors
// served online are bit-identical to the same queries run as pre-formed
// batches.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "serve/executors.hpp"
#include "serve/loadgen.hpp"

namespace upanns::serve {
namespace {

// ---------------------------------------------------------------- policy --

TEST(BatchPolicy, CloseDecision) {
  BatchPolicy p;
  p.max_batch = 4;
  p.deadline_seconds = 1.0;
  // Empty queue never closes, draining or not.
  EXPECT_EQ(batch_close_decision(p, 0, 0, 100, false), BatchClose::kOpen);
  EXPECT_EQ(batch_close_decision(p, 0, 0, 100, true), BatchClose::kOpen);
  // Under max and before the deadline: stay open unless draining.
  EXPECT_EQ(batch_close_decision(p, 2, 0, 0.5, false), BatchClose::kOpen);
  EXPECT_EQ(batch_close_decision(p, 2, 0, 0.5, true), BatchClose::kDrain);
  // Deadline reached.
  EXPECT_EQ(batch_close_decision(p, 2, 0, 1.0, false), BatchClose::kDeadline);
  // Full wins over deadline (both conditions hold).
  EXPECT_EQ(batch_close_decision(p, 4, 0, 2.0, false), BatchClose::kFull);
  EXPECT_EQ(batch_close_decision(p, 4, 0, 0.1, false), BatchClose::kFull);
  EXPECT_EQ(batch_deadline(p, 3.0), 4.0);
}

// ----------------------------------------------------------------- queue --

Request make_request(std::uint64_t id, double t = 0) {
  Request r;
  r.id = id;
  r.query = {1.f, 2.f};
  r.enqueue_seconds = t;
  return r;
}

TEST(RequestQueue, BoundedCapacityRejects) {
  RequestQueue q(2);
  EXPECT_TRUE(q.try_push(make_request(0)));
  EXPECT_TRUE(q.try_push(make_request(1)));
  EXPECT_FALSE(q.try_push(make_request(2)));  // full -> backpressure
  EXPECT_EQ(q.size(), 2u);
  auto popped = q.pop_batch(10);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].id, 0u);  // FIFO
  EXPECT_EQ(popped[1].id, 1u);
  EXPECT_TRUE(q.try_push(make_request(3)));  // space again
}

TEST(RequestQueue, CloseStopsAdmissionKeepsBacklog) {
  RequestQueue q(0);
  EXPECT_TRUE(q.try_push(make_request(0)));
  q.close();
  EXPECT_FALSE(q.try_push(make_request(1)));
  EXPECT_TRUE(q.wait_nonempty());  // backlog still poppable
  EXPECT_EQ(q.pop_batch(10).size(), 1u);
  EXPECT_FALSE(q.wait_nonempty());  // closed and empty: batcher exits
}

TEST(RequestQueue, WaitCloseableReturnsOnTargetOrDeadline) {
  RequestQueue q(0);
  ASSERT_TRUE(q.try_push(make_request(0, 0.0)));
  EXPECT_DOUBLE_EQ(q.front_enqueue_seconds(), 0.0);
  // Deadline already passed: returns immediately despite target not met.
  q.wait_closeable(8, std::chrono::steady_clock::now());
  // Target met: returns without waiting for the (far) deadline.
  ASSERT_TRUE(q.try_push(make_request(1)));
  q.wait_closeable(2, std::chrono::steady_clock::now() +
                          std::chrono::hours(1));
  EXPECT_EQ(q.size(), 2u);
}

// ------------------------------------------------------------------- DES --

/// Query pool for loadgen tests (contents irrelevant to the fake executor).
data::Dataset pool(std::size_t n = 16, std::size_t dim = 4) {
  data::Dataset d;
  d.n = n;
  d.dim = dim;
  d.values.assign(n * dim, 1.f);
  return d;
}

/// Fake executor with service time linear in batch size; also records the
/// size of every batch it ran.
struct FakeExec {
  double fixed = 1e-3, per_query = 1e-4;
  std::vector<std::size_t> sizes;
  BatchExecutor fn() {
    return [this](const data::Dataset& b) {
      sizes.push_back(b.n);
      ExecResult r;
      r.neighbors.resize(b.n);
      r.sim_seconds = fixed + per_query * static_cast<double>(b.n);
      return r;
    };
  }
};

TEST(Loadgen, LowLoadClosesPartialBatchesAtDeadline) {
  FakeExec exec;
  LoadgenOptions o;
  o.offered_qps = 100;  // interarrival 10 ms >> 2 ms deadline
  o.n_requests = 50;
  o.poisson = false;
  o.policy.max_batch = 8;
  o.policy.deadline_seconds = 2e-3;
  const LoadgenResult r = simulate_load(pool(), exec.fn(), o);
  EXPECT_EQ(r.n_completed, 50u);
  EXPECT_EQ(r.n_rejected, 0u);
  EXPECT_EQ(r.n_batches, 50u);  // every batch is a lone request
  EXPECT_EQ(r.deadline_closes, 50u);
  EXPECT_EQ(r.full_closes, 0u);
  for (std::size_t s : exec.sizes) EXPECT_EQ(s, 1u);
  // Each request waits its full deadline, then ~1.1 ms of service.
  EXPECT_NEAR(r.p50, o.policy.deadline_seconds + 1.1e-3, 1e-4);
}

TEST(Loadgen, HighLoadClosesFullBatches) {
  FakeExec exec;
  LoadgenOptions o;
  o.offered_qps = 100000;  // arrivals far faster than service
  o.n_requests = 256;
  o.poisson = false;
  o.policy.max_batch = 8;
  o.policy.deadline_seconds = 10.0;  // deadline effectively disabled
  const LoadgenResult r = simulate_load(pool(), exec.fn(), o);
  EXPECT_EQ(r.n_completed, 256u);
  EXPECT_EQ(r.n_batches, 32u);
  EXPECT_EQ(r.full_closes, 32u);
  EXPECT_EQ(r.deadline_closes, 0u);
  EXPECT_DOUBLE_EQ(r.mean_batch_fill, 1.0);
}

TEST(Loadgen, BoundedQueueRejectsOverload) {
  FakeExec exec;
  exec.fixed = 1.0;  // 1 s per batch: the executor can never keep up
  LoadgenOptions o;
  o.offered_qps = 1000;
  o.n_requests = 200;
  o.policy.max_batch = 8;
  o.policy.deadline_seconds = 1e-3;
  o.queue_capacity = 16;
  const LoadgenResult r = simulate_load(pool(), exec.fn(), o);
  EXPECT_GT(r.n_rejected, 0u);
  EXPECT_EQ(r.n_completed + r.n_rejected, 200u);
  EXPECT_LE(r.mean_batch_fill, 1.0);
}

TEST(Loadgen, LatencyMonotoneInOfferedLoad) {
  // The acceptance-criterion curve: same seed, rising offered QPS -> p50 and
  // p99 never decrease, and the knee shows up once load crosses capacity
  // (capacity = max_batch / service(max_batch) = 8 / 5e-3 = 1600 qps).
  // Service time grows with batch size (per_query = 5e-4, like the real
  // pipeline) so fuller batches cannot undercut the deadline wait they save.
  double prev_p50 = 0, prev_p99 = 0;
  for (const double qps : {200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    FakeExec exec;
    exec.per_query = 5e-4;
    LoadgenOptions o;
    o.offered_qps = qps;
    o.n_requests = 2000;
    o.policy.max_batch = 8;
    o.policy.deadline_seconds = 2e-3;
    o.seed = 7;
    const LoadgenResult r = simulate_load(pool(), exec.fn(), o);
    EXPECT_GE(r.p50 + 1e-12, prev_p50) << "at " << qps << " qps";
    EXPECT_GE(r.p99 + 1e-12, prev_p99) << "at " << qps << " qps";
    prev_p50 = r.p50;
    prev_p99 = r.p99;
  }
  EXPECT_GT(prev_p99, 10e-3);  // far past capacity the queue runs away
}

TEST(Loadgen, DeterministicAcrossRuns) {
  FakeExec e1, e2;
  LoadgenOptions o;
  o.offered_qps = 3000;
  o.n_requests = 500;
  o.policy.max_batch = 8;
  o.policy.deadline_seconds = 2e-3;
  const LoadgenResult a = simulate_load(pool(), e1.fn(), o);
  const LoadgenResult b = simulate_load(pool(), e2.fn(), o);
  EXPECT_EQ(a.n_batches, b.n_batches);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_EQ(e1.sizes, e2.sizes);
}

TEST(Loadgen, RejectsBadOptions) {
  FakeExec exec;
  LoadgenOptions o;
  o.offered_qps = 0;
  EXPECT_THROW(simulate_load(pool(), exec.fn(), o), std::invalid_argument);
  o.offered_qps = 100;
  o.policy.max_batch = 0;
  EXPECT_THROW(simulate_load(pool(), exec.fn(), o), std::invalid_argument);
}

// ---------------------------------------------------------------- server --

ServeOptions small_server_options() {
  ServeOptions s;
  s.dim = 4;
  s.policy.max_batch = 8;
  s.policy.deadline_seconds = 1e-3;
  return s;
}

TEST(Server, DrainCompletesEveryAcceptedRequest) {
  FakeExec exec;
  ServeOptions sopts = small_server_options();
  std::vector<std::future<RequestResult>> futures;
  {
    Server server(exec.fn(), sopts);
    const std::vector<float> q(4, 1.f);
    for (int i = 0; i < 100; ++i) {
      auto f = server.try_submit(q);
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    server.drain();
    const ServeStats st = server.stats();
    EXPECT_EQ(st.accepted, 100u);
    EXPECT_EQ(st.completed, 100u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(server.request_log().size(), 100u);
    // After drain new submissions are refused.
    EXPECT_FALSE(server.try_submit(q).has_value());
  }  // destructor: second drain must be a no-op
  std::size_t total = 0;
  for (auto& f : futures) {
    const RequestResult r = f.get();  // ready, no exception
    EXPECT_GE(r.complete_seconds, r.batch_seconds);
    EXPECT_GE(r.batch_seconds, r.enqueue_seconds);
    total += 1;
    EXPECT_GE(r.batch_size, 1u);
  }
  EXPECT_EQ(total, 100u);
}

TEST(Server, MaxBatchClosesEarlyDespiteHugeDeadline) {
  FakeExec exec;
  ServeOptions sopts = small_server_options();
  sopts.policy.max_batch = 4;
  sopts.policy.deadline_seconds = 3600.0;  // never fires in test time
  Server server(exec.fn(), sopts);
  const std::vector<float> q(4, 1.f);
  std::vector<std::future<RequestResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(*server.try_submit(q));
  // The batch must complete long before the deadline.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    EXPECT_EQ(f.get().batch_size, 4u);
  }
  const ServeStats st = server.stats();
  EXPECT_GE(st.full_closes, 1u);
}

TEST(Server, ThrowingExecutorFailsBatchNotServer) {
  std::atomic<int> calls{0};
  BatchExecutor exec = [&](const data::Dataset& b) -> ExecResult {
    if (calls.fetch_add(1) == 0) throw std::runtime_error("kernel fault");
    ExecResult r;
    r.neighbors.resize(b.n);
    r.sim_seconds = 1e-4;
    return r;
  };
  ServeOptions sopts = small_server_options();
  sopts.policy.max_batch = 1;  // one request per batch, deterministic split
  Server server(std::move(exec), sopts);
  const std::vector<float> q(4, 1.f);
  auto f1 = *server.try_submit(q);
  EXPECT_THROW(f1.get(), std::runtime_error);  // first batch carries error
  auto f2 = *server.try_submit(q);             // server kept serving
  EXPECT_NO_THROW(f2.get());
  server.drain();
  const ServeStats st = server.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(Server, BoundedQueueRejectsWhileExecutorBlocked) {
  // Gate the executor so the queue fills deterministically, then verify
  // try_submit signals backpressure instead of blocking or dropping.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  BatchExecutor exec = [&](const data::Dataset& b) {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return release; });
    ExecResult r;
    r.neighbors.resize(b.n);
    r.sim_seconds = 1e-4;
    return r;
  };
  ServeOptions sopts = small_server_options();
  sopts.policy.max_batch = 2;
  sopts.policy.deadline_seconds = 1e-6;  // dispatch essentially immediately
  sopts.queue_capacity = 4;
  Server server(std::move(exec), sopts);
  const std::vector<float> q(4, 1.f);
  // First couple get dispatched into the blocked executor; keep submitting
  // until the queue itself reports full.
  std::size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 200 && rejected == 0; ++i) {
    if (server.try_submit(q).has_value()) {
      ++accepted;
    } else {
      ++rejected;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_LE(accepted, sopts.queue_capacity + 2 * sopts.policy.max_batch);
  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  server.drain();
  const ServeStats st = server.stats();
  EXPECT_EQ(st.completed, accepted);
  EXPECT_EQ(st.rejected, rejected);
}

// -------------------------------------------------- engine bit-identity --

struct EngineFixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(6000, 31));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 32;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }

  EngineFixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 48;
    spec.seed = 11;
    wl = data::generate_workload(base, spec);
    data::WorkloadSpec hist = spec;
    hist.seed = 12;
    hist.n_queries = 96;
    const auto hw = data::generate_workload(base, hist);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, hw.queries, 8));
  }

  core::UpAnnsOptions options() const {
    core::UpAnnsOptions o = core::UpAnnsOptions::upanns();
    o.n_dpus = 8;
    o.nprobe = 8;
    o.k = 10;
    return o;
  }
};

EngineFixture& engine_fixture() {
  static EngineFixture f;
  return f;
}

TEST(ServeEngine, OnlineNeighborsBitIdenticalToPreformedBatches) {
  auto& f = engine_fixture();

  // Reference: the whole workload as pre-formed batches of 16.
  core::UpAnnsEngine ref_engine(f.index, f.stats, f.options());
  core::BatchPipeline ref_pipeline(ref_engine, {});
  const auto ref =
      ref_pipeline.run(core::split_batches(f.wl.queries, 16));
  std::vector<std::vector<common::Neighbor>> expected;
  for (const auto& slot : ref.slots) {
    expected.insert(expected.end(), slot.report.neighbors.begin(),
                    slot.report.neighbors.end());
  }
  ASSERT_EQ(expected.size(), f.wl.queries.n);

  // Online: same queries submitted one by one through the server; the
  // deadline batcher decides the (different) batch boundaries.
  core::UpAnnsEngine engine(f.index, f.stats, f.options());
  core::BatchStream stream(engine, {.book_query_latency = false});
  ServeOptions sopts;
  sopts.dim = f.wl.queries.dim;
  sopts.policy.max_batch = 7;  // deliberately != 16 and != divisor of 48
  sopts.policy.deadline_seconds = 1e-3;
  Server server(stream_executor(stream), sopts);
  std::vector<std::future<RequestResult>> futures;
  for (std::size_t i = 0; i < f.wl.queries.n; ++i) {
    auto fut = server.try_submit(
        {f.wl.queries.row(i), f.wl.queries.dim});
    ASSERT_TRUE(fut.has_value());
    futures.push_back(std::move(*fut));
  }
  server.drain();

  std::size_t multi_request_batches = 0;
  for (const auto& b : server.batch_log()) {
    multi_request_batches += b.size > 1;
  }
  EXPECT_GT(multi_request_batches, 0u);  // batching actually happened

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const RequestResult r = futures[i].get();
    ASSERT_EQ(r.id, i);  // submission order = workload order
    ASSERT_EQ(r.neighbors.size(), expected[i].size()) << "query " << i;
    for (std::size_t k = 0; k < expected[i].size(); ++k) {
      EXPECT_EQ(r.neighbors[k].id, expected[i][k].id)
          << "query " << i << " rank " << k;
      EXPECT_EQ(r.neighbors[k].dist, expected[i][k].dist)
          << "query " << i << " rank " << k;
    }
  }
  stream.finish();
}

TEST(ServeEngine, LoadgenMatchesBatchPipelineNeighborsViaExecutor) {
  // The DES path reuses the same executor; one full-pool run must execute
  // every query and leave the stream consistent.
  auto& f = engine_fixture();
  core::UpAnnsEngine engine(f.index, f.stats, f.options());
  core::BatchStream stream(engine, {.book_query_latency = false});
  LoadgenOptions o;
  o.offered_qps = 5000;
  o.n_requests = f.wl.queries.n;
  o.policy.max_batch = 16;
  o.policy.deadline_seconds = 2e-3;
  const LoadgenResult r =
      simulate_load(f.wl.queries, stream_executor(stream), o);
  EXPECT_EQ(r.n_completed, f.wl.queries.n);
  EXPECT_EQ(r.n_rejected, 0u);
  EXPECT_GT(r.p50, 0);
  EXPECT_GE(r.p99, r.p50);
  const auto report = stream.finish();
  EXPECT_EQ(report.n_queries, f.wl.queries.n);
}

}  // namespace
}  // namespace upanns::serve
