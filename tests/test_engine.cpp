#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cpu_ivfpq.hpp"
#include "data/ground_truth.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(9000, 51));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 48;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 5;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 24;
    spec.seed = 4;
    wl = data::generate_workload(base, spec);
    data::WorkloadSpec hist = spec;
    hist.seed = 5;
    hist.n_queries = 128;
    const auto hw = data::generate_workload(base, hist);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, hw.queries, 8));
  }

  UpAnnsOptions small(bool naive = false) const {
    UpAnnsOptions o = naive ? UpAnnsOptions::pim_naive()
                            : UpAnnsOptions::upanns();
    o.n_dpus = 12;
    o.nprobe = 8;
    o.k = 10;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// Distances returned per query, for approximate set comparison.
std::vector<float> dists_of(const std::vector<common::Neighbor>& v) {
  std::vector<float> d;
  for (const auto& n : v) d.push_back(n.dist);
  return d;
}

TEST(Engine, RecallMatchesCpuBaselineWithinTolerance) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.small());
  const auto pim = engine.search(f.wl.queries);

  baselines::CpuIvfpqSearcher cpu(f.index);
  baselines::SearchParams p;
  p.nprobe = 8;
  p.k = 10;
  const auto ref = cpu.search(f.wl.queries, p);

  const auto gt = data::exact_topk(f.base, f.wl.queries, 10);
  const double r_pim = data::recall_at_k(gt, pim.neighbors, 10);
  const double r_cpu = data::recall_at_k(gt, ref.neighbors, 10);
  // The PIM path quantizes the codebook (int8) and LUT (u16); accuracy must
  // stay within a few points of the float pipeline (paper: optimizations do
  // not impact accuracy).
  EXPECT_NEAR(r_pim, r_cpu, 0.05);
  EXPECT_GT(r_pim, 0.4);
}

TEST(Engine, UpannsAndNaiveReturnSameResults) {
  // Placement, scheduling, CAE and pruning are exact transformations: the
  // naive and optimized PIM paths share the quantized distance pipeline and
  // must retrieve the same neighbors (up to distance ties).
  auto& f = fixture();
  UpAnnsEngine up(f.index, f.stats, f.small(false));
  UpAnnsEngine naive(f.index, f.stats, f.small(true));
  const auto a = up.search(f.wl.queries);
  const auto b = naive.search(f.wl.queries);
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  for (std::size_t q = 0; q < a.neighbors.size(); ++q) {
    const auto da = dists_of(a.neighbors[q]);
    const auto db = dists_of(b.neighbors[q]);
    ASSERT_EQ(da.size(), db.size()) << "query " << q;
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_NEAR(da[i], db[i], 1e-3f * (1.f + da[i]));
    }
  }
}

TEST(Engine, PruningDoesNotChangeResults) {
  auto& f = fixture();
  UpAnnsOptions with = f.small();
  UpAnnsOptions without = f.small();
  without.opt_prune_topk = false;
  UpAnnsEngine a(f.index, f.stats, with);
  UpAnnsEngine b(f.index, f.stats, without);
  const auto ra = a.search(f.wl.queries);
  const auto rb = b.search(f.wl.queries);
  for (std::size_t q = 0; q < ra.neighbors.size(); ++q) {
    EXPECT_EQ(ra.neighbors[q], rb.neighbors[q]) << "query " << q;
  }
  // ...but it must actually skip comparisons (Fig 15's mechanism).
  EXPECT_GT(ra.pim->merge_pruned, 0u);
  EXPECT_EQ(rb.pim->merge_pruned, 0u);
  EXPECT_LT(ra.pim->merge_insertions, rb.pim->merge_insertions);
}

TEST(Engine, CaeDoesNotChangeResults) {
  auto& f = fixture();
  UpAnnsOptions with = f.small();
  UpAnnsOptions without = f.small();
  without.opt_cae = false;
  UpAnnsEngine a(f.index, f.stats, with);
  UpAnnsEngine b(f.index, f.stats, without);
  const auto ra = a.search(f.wl.queries);
  const auto rb = b.search(f.wl.queries);
  for (std::size_t q = 0; q < ra.neighbors.size(); ++q) {
    EXPECT_EQ(ra.neighbors[q], rb.neighbors[q]);
  }
  EXPECT_GT(ra.pim->length_reduction, 0.0);
  EXPECT_NEAR(rb.pim->length_reduction, 0.0, 1e-9);
}

TEST(Engine, CaeReducesDistanceStageWork) {
  auto& f = fixture();
  UpAnnsOptions with = f.small();
  UpAnnsOptions without = f.small();
  without.opt_cae = false;
  UpAnnsEngine a(f.index, f.stats, with);
  UpAnnsEngine b(f.index, f.stats, without);
  const auto ra = a.search(f.wl.queries);
  const auto rb = b.search(f.wl.queries);
  EXPECT_LT(ra.times.distance_calc, rb.times.distance_calc);
}

TEST(Engine, PlacementImprovesBalance) {
  auto& f = fixture();
  UpAnnsOptions smart = f.small();
  UpAnnsOptions naive = f.small(true);
  UpAnnsEngine a(f.index, f.stats, smart);
  UpAnnsEngine b(f.index, f.stats, naive);
  const auto ra = a.search(f.wl.queries);
  const auto rb = b.search(f.wl.queries);
  EXPECT_LT(ra.pim->schedule_balance, rb.pim->schedule_balance);
  EXPECT_GE(ra.pim->schedule_balance, 1.0 - 1e-9);
}

TEST(Engine, ReportFieldsSane) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.small());
  const auto r = engine.search(f.wl.queries);
  EXPECT_EQ(r.neighbors.size(), f.wl.queries.n);
  EXPECT_GT(r.qps, 0.0);
  EXPECT_GT(r.qps_per_watt, 0.0);
  EXPECT_GT(r.times.lut_build, 0.0);
  EXPECT_GT(r.times.distance_calc, 0.0);
  EXPECT_GT(r.times.topk, 0.0);
  EXPECT_GT(r.times.transfer, 0.0);
  EXPECT_GT(r.pim->bytes_pushed, 0u);
  EXPECT_GT(r.pim->bytes_gathered, 0u);
  EXPECT_TRUE(r.pim->push_parallel);
  EXPECT_EQ(r.pim->n_dpus, 12u);
  EXPECT_EQ(r.pim->dpu_stage_seconds.size(), 12u);
  EXPECT_GT(r.pim->scanned_records, 0u);
}

TEST(Engine, AtScaleScalesDistanceOnly) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.small());
  const auto r = engine.search(f.wl.queries);
  const auto s = r.at_scale(100.0, 1.0);
  EXPECT_NEAR(s.times.distance_calc / r.times.distance_calc, 100.0, 20.0);
  EXPECT_DOUBLE_EQ(s.times.transfer, r.times.transfer);
  EXPECT_LT(s.qps, r.qps);
}

TEST(Engine, SearchIsRepeatable) {
  // MRAM scratch is rewound between batches: a second identical search must
  // return identical results and not grow MRAM.
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.small());
  const auto a = engine.search(f.wl.queries);
  const auto b = engine.search(f.wl.queries);
  for (std::size_t q = 0; q < a.neighbors.size(); ++q) {
    EXPECT_EQ(a.neighbors[q], b.neighbors[q]);
  }
}

TEST(Engine, RelocateKeepsResults) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.small());
  const auto before = engine.search(f.wl.queries);
  engine.relocate(f.stats);  // adaptive re-placement (Sec 4.1.2)
  const auto after = engine.search(f.wl.queries);
  for (std::size_t q = 0; q < before.neighbors.size(); ++q) {
    EXPECT_EQ(before.neighbors[q], after.neighbors[q]);
  }
}

TEST(Engine, MoreTaskletsNotSlower) {
  auto& f = fixture();
  UpAnnsOptions one = f.small();
  one.n_tasklets = 1;
  UpAnnsOptions eleven = f.small();
  eleven.n_tasklets = 11;
  UpAnnsEngine a(f.index, f.stats, one);
  UpAnnsEngine b(f.index, f.stats, eleven);
  const double t1 = a.search(f.wl.queries).times.total();
  const double t11 = b.search(f.wl.queries).times.total();
  EXPECT_GT(t1, 2.0 * t11);  // Fig 13: large speedup from multithreading
}

TEST(Engine, LargerMramReadsNotSlower) {
  auto& f = fixture();
  UpAnnsOptions small_reads = f.small();
  small_reads.mram_read_vectors = 2;
  UpAnnsOptions big_reads = f.small();
  big_reads.mram_read_vectors = 16;
  UpAnnsEngine a(f.index, f.stats, small_reads);
  UpAnnsEngine b(f.index, f.stats, big_reads);
  // Fig 17: small DMA granularity pays the setup cost repeatedly.
  EXPECT_GT(a.search(f.wl.queries).times.distance_calc,
            b.search(f.wl.queries).times.distance_calc);
}

TEST(Engine, AtScaleUsesTargetDpuCountForPower) {
  // Satellite fix: extrapolated QPS/W must be computed at the DPU count the
  // extrapolation targets (dpu_factor = actual / target), not the measured
  // one. 12 measured DPUs with dpu_factor = 12/896 -> an 896-DPU target.
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.small());
  const auto r = engine.search(f.wl.queries);
  const double dpu_factor = 12.0 / 896.0;
  const auto s = r.at_scale(50.0, dpu_factor);
  EXPECT_EQ(s.pim->n_dpus, 896u);
  EXPECT_NEAR(s.qps_per_watt,
              pim::qps_per_watt(s.qps, pim::Platform::kPim, 896), 1e-12);
  // Unity dpu_factor keeps the measured count.
  EXPECT_EQ(r.at_scale(50.0, 1.0).pim->n_dpus, 12u);
}

TEST(Engine, AtScaleRequiresPimExtras) {
  SearchReport plain;
  EXPECT_THROW(plain.at_scale(10.0), std::logic_error);
}

TEST(Engine, RuntimeSettersValidate) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.small());
  EXPECT_THROW(engine.set_k(0), std::invalid_argument);
  EXPECT_THROW(engine.set_nprobe(0), std::invalid_argument);
  engine.set_k(5);
  engine.set_nprobe(4);
  engine.set_mram_read_vectors(0);  // 0 = one maximal DMA per chunk
  EXPECT_EQ(engine.options().k, 5u);
  EXPECT_EQ(engine.options().nprobe, 4u);
  EXPECT_EQ(engine.options().mram_read_vectors, 0u);
  const auto r = engine.search(f.wl.queries);
  EXPECT_EQ(r.neighbors.size(), f.wl.queries.n);
  for (const auto& nb : r.neighbors) EXPECT_LE(nb.size(), 5u);
}

TEST(Engine, ZeroDpusRejected) {
  auto& f = fixture();
  UpAnnsOptions bad = f.small();
  bad.n_dpus = 0;
  EXPECT_THROW(UpAnnsEngine(f.index, f.stats, bad), std::invalid_argument);
}

}  // namespace
}  // namespace upanns::core
