#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "ivf/ivf_index.hpp"

namespace upanns {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("upanns_ser_") + name))
      .string();
}

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(4000, 71));
  ivf::IvfIndex index = build();

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 16;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(PqSerialize, RoundTrip) {
  const auto& pq = fixture().index.pq();
  std::stringstream ss;
  pq.save(ss);
  const auto back = quant::ProductQuantizer::load_from(ss);
  EXPECT_EQ(back.dim(), pq.dim());
  EXPECT_EQ(back.m(), pq.m());
  EXPECT_EQ(back.dsub(), pq.dsub());
  ASSERT_EQ(back.codebooks().size(), pq.codebooks().size());
  for (std::size_t i = 0; i < pq.codebooks().size(); ++i) {
    EXPECT_EQ(back.codebooks()[i], pq.codebooks()[i]);
  }
}

TEST(PqSerialize, BadMagicRejected) {
  std::stringstream ss;
  ss << "garbage-bytes-here";
  EXPECT_THROW(quant::ProductQuantizer::load_from(ss), std::runtime_error);
}

TEST(IvfSerialize, RoundTripPreservesSearchResults) {
  auto& f = fixture();
  const std::string path = temp_path("index.bin");
  f.index.save(path);
  const ivf::IvfIndex back = ivf::IvfIndex::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.dim(), f.index.dim());
  EXPECT_EQ(back.n_clusters(), f.index.n_clusters());
  EXPECT_EQ(back.n_points(), f.index.n_points());

  // Identical cluster filtering and list contents.
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(back.filter_clusters(f.base.row(q), 4),
              f.index.filter_clusters(f.base.row(q), 4));
  }
  for (std::size_t c = 0; c < back.n_clusters(); ++c) {
    EXPECT_EQ(back.list(c).ids, f.index.list(c).ids);
    EXPECT_EQ(back.list(c).codes, f.index.list(c).codes);
  }
}

// Mutate a copy of the fixture index: a few inserts plus enough removes to
// leave tombstones behind.
ivf::IvfIndex mutated_copy() {
  auto& f = fixture();
  ivf::IvfIndex idx = f.index;
  common::Rng rng(17);
  std::vector<std::uint32_t> ids;
  std::vector<float> flat;
  for (std::uint32_t i = 0; i < 40; ++i) {
    const float* row = f.base.row(rng.below(f.base.n));
    ids.push_back(1'000'000 + i);
    for (std::size_t d = 0; d < f.base.dim; ++d) {
      flat.push_back(row[d] + rng.uniform(-0.05f, 0.05f));
    }
  }
  idx.insert(ids, flat);
  for (int i = 0; i < 60; ++i) {
    idx.remove(static_cast<std::uint32_t>(rng.below(f.base.n)));
  }
  return idx;
}

std::uint64_t total_tombstones(const ivf::IvfIndex& idx) {
  std::uint64_t n = 0;
  for (const ivf::InvertedList& list : idx.lists()) n += list.n_tombstones;
  return n;
}

TEST(IvfSerialize, V2RoundTripPreservesMutationState) {
  const ivf::IvfIndex idx = mutated_copy();
  ASSERT_GT(total_tombstones(idx), 0u);

  const std::string path = temp_path("v2.bin");
  idx.save(path);
  const ivf::IvfIndex back = ivf::IvfIndex::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.n_points(), idx.n_points());
  EXPECT_EQ(total_tombstones(back), total_tombstones(idx));
  for (std::size_t c = 0; c < idx.n_clusters(); ++c) {
    const ivf::InvertedList& a = idx.list(c);
    const ivf::InvertedList& b = back.list(c);
    EXPECT_EQ(b.ids, a.ids);
    EXPECT_EQ(b.codes, a.codes);
    EXPECT_EQ(b.tombstones, a.tombstones);
    EXPECT_EQ(b.n_tombstones, a.n_tombstones);
    EXPECT_EQ(b.generation, a.generation);
    EXPECT_EQ(b.compact_epoch, a.compact_epoch);
  }
  // The loaded index keeps serving mutations: removing a survivor works,
  // removing an already-dead id does not.
  ivf::IvfIndex again = back;
  const std::uint32_t survivor = [&] {
    for (const ivf::InvertedList& list : again.lists()) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (!list.is_dead(i)) return list.ids[i];
      }
    }
    return 0u;
  }();
  EXPECT_TRUE(again.remove(survivor));
  EXPECT_FALSE(again.remove(survivor));
}

TEST(IvfSerialize, V1GoldenHeaderAndBackCompat) {
  auto& f = fixture();
  const std::string path = temp_path("v1.bin");
  f.index.save(path, 1);

  // Golden bytes: a v1 file starts with magic "UIV1" and version 1, both
  // little-endian u32 — pinned so old readers keep working.
  {
    std::ifstream is(path, std::ios::binary);
    unsigned char header[8] = {};
    is.read(reinterpret_cast<char*>(header), sizeof(header));
    ASSERT_TRUE(is.good());
    const unsigned char want[8] = {0x31, 0x56, 0x49, 0x55, 0x01, 0x00,
                                   0x00, 0x00};
    EXPECT_EQ(std::memcmp(header, want, sizeof(want)), 0);
  }

  // A v1 file loads into an index equal to the original.
  const ivf::IvfIndex back = ivf::IvfIndex::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.n_points(), f.index.n_points());
  for (std::size_t c = 0; c < back.n_clusters(); ++c) {
    EXPECT_EQ(back.list(c).ids, f.index.list(c).ids);
    EXPECT_EQ(back.list(c).codes, f.index.list(c).codes);
    EXPECT_FALSE(back.list(c).has_tombstones());
  }
}

TEST(IvfSerialize, V2GoldenHeader) {
  const ivf::IvfIndex idx = mutated_copy();
  const std::string path = temp_path("v2hdr.bin");
  idx.save(path);
  std::ifstream is(path, std::ios::binary);
  unsigned char header[8] = {};
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  is.close();
  std::remove(path.c_str());
  const unsigned char want[8] = {0x31, 0x56, 0x49, 0x55, 0x02, 0x00,
                                 0x00, 0x00};
  EXPECT_EQ(std::memcmp(header, want, sizeof(want)), 0);
}

TEST(IvfSerialize, V1SaveRequiresCompaction) {
  ivf::IvfIndex idx = mutated_copy();
  const std::string path = temp_path("v1_dirty.bin");
  // Tombstones cannot be expressed in the v1 format.
  EXPECT_THROW(idx.save(path, 1), std::runtime_error);

  // After a full compaction the downgrade succeeds and round-trips.
  idx.compact(0.0);
  idx.save(path, 1);
  const ivf::IvfIndex back = ivf::IvfIndex::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.n_points(), idx.n_points());
  for (std::size_t c = 0; c < back.n_clusters(); ++c) {
    EXPECT_EQ(back.list(c).ids, idx.list(c).ids);
    EXPECT_EQ(back.list(c).codes, idx.list(c).codes);
  }
}

TEST(IvfSerialize, UnknownVersionRejected) {
  auto& f = fixture();
  EXPECT_THROW(f.index.save(temp_path("v9.bin"), 9), std::runtime_error);
}

TEST(IvfSerialize, MissingFileThrows) {
  EXPECT_THROW(ivf::IvfIndex::load(temp_path("nonexistent.bin")),
               std::runtime_error);
}

TEST(IvfSerialize, TruncatedFileThrows) {
  auto& f = fixture();
  const std::string path = temp_path("trunc.bin");
  f.index.save(path);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(ivf::IvfIndex::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IvfSerialize, CorruptedMagicThrows) {
  auto& f = fixture();
  const std::string path = temp_path("magic.bin");
  f.index.save(path);
  {
    std::fstream fs(path, std::ios::in | std::ios::out | std::ios::binary);
    fs.seekp(0);
    fs.write("XXXX", 4);
  }
  EXPECT_THROW(ivf::IvfIndex::load(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace upanns
