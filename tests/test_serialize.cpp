#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "ivf/ivf_index.hpp"

namespace upanns {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("upanns_ser_") + name))
      .string();
}

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(4000, 71));
  ivf::IvfIndex index = build();

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 16;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 4;
    return ivf::IvfIndex::build(base, opts);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(PqSerialize, RoundTrip) {
  const auto& pq = fixture().index.pq();
  std::stringstream ss;
  pq.save(ss);
  const auto back = quant::ProductQuantizer::load_from(ss);
  EXPECT_EQ(back.dim(), pq.dim());
  EXPECT_EQ(back.m(), pq.m());
  EXPECT_EQ(back.dsub(), pq.dsub());
  ASSERT_EQ(back.codebooks().size(), pq.codebooks().size());
  for (std::size_t i = 0; i < pq.codebooks().size(); ++i) {
    EXPECT_EQ(back.codebooks()[i], pq.codebooks()[i]);
  }
}

TEST(PqSerialize, BadMagicRejected) {
  std::stringstream ss;
  ss << "garbage-bytes-here";
  EXPECT_THROW(quant::ProductQuantizer::load_from(ss), std::runtime_error);
}

TEST(IvfSerialize, RoundTripPreservesSearchResults) {
  auto& f = fixture();
  const std::string path = temp_path("index.bin");
  f.index.save(path);
  const ivf::IvfIndex back = ivf::IvfIndex::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.dim(), f.index.dim());
  EXPECT_EQ(back.n_clusters(), f.index.n_clusters());
  EXPECT_EQ(back.n_points(), f.index.n_points());

  // Identical cluster filtering and list contents.
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(back.filter_clusters(f.base.row(q), 4),
              f.index.filter_clusters(f.base.row(q), 4));
  }
  for (std::size_t c = 0; c < back.n_clusters(); ++c) {
    EXPECT_EQ(back.list(c).ids, f.index.list(c).ids);
    EXPECT_EQ(back.list(c).codes, f.index.list(c).codes);
  }
}

TEST(IvfSerialize, MissingFileThrows) {
  EXPECT_THROW(ivf::IvfIndex::load(temp_path("nonexistent.bin")),
               std::runtime_error);
}

TEST(IvfSerialize, TruncatedFileThrows) {
  auto& f = fixture();
  const std::string path = temp_path("trunc.bin");
  f.index.save(path);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(ivf::IvfIndex::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IvfSerialize, CorruptedMagicThrows) {
  auto& f = fixture();
  const std::string path = temp_path("magic.bin");
  f.index.save(path);
  {
    std::fstream fs(path, std::ios::in | std::ios::out | std::ios::binary);
    fs.seekp(0);
    fs.write("XXXX", 4);
  }
  EXPECT_THROW(ivf::IvfIndex::load(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace upanns
