// Pipeline tests: stage decomposition determinism (the refactored online
// path reproduces the serial totals exactly) and batch double-buffering
// accounting (overlap shortens simulated time without changing results).
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hpp"
#include "core/engine.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "obs/report_json.hpp"

namespace upanns::core {
namespace {

struct Fixture {
  data::Dataset base = data::generate_synthetic(data::sift1b_like(9000, 51));
  ivf::IvfIndex index = build();
  data::QueryWorkload wl;
  ivf::ClusterStats stats;

  ivf::IvfIndex build() {
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 48;
    opts.pq_m = 16;
    opts.coarse_iters = 6;
    opts.pq_iters = 5;
    return ivf::IvfIndex::build(base, opts);
  }

  Fixture() {
    data::WorkloadSpec spec;
    spec.n_queries = 64;
    spec.seed = 4;
    wl = data::generate_workload(base, spec);
    data::WorkloadSpec hist = spec;
    hist.seed = 5;
    hist.n_queries = 128;
    const auto hw = data::generate_workload(base, hist);
    stats = ivf::collect_stats(index, ivf::filter_batch(index, hw.queries, 8));
  }

  UpAnnsOptions options() const {
    UpAnnsOptions o = UpAnnsOptions::upanns();
    o.n_dpus = 12;
    o.nprobe = 8;
    o.k = 10;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(SplitBatches, CoversAllQueriesInOrder) {
  auto& f = fixture();
  const auto batches = split_batches(f.wl.queries, 24);
  ASSERT_EQ(batches.size(), 3u);  // 24 + 24 + 16
  EXPECT_EQ(batches[0].n, 24u);
  EXPECT_EQ(batches[2].n, 16u);
  std::size_t q = 0;
  for (const auto& b : batches) {
    EXPECT_EQ(b.dim, f.wl.queries.dim);
    for (std::size_t i = 0; i < b.n; ++i, ++q) {
      for (std::size_t d = 0; d < b.dim; ++d) {
        ASSERT_EQ(b.row(i)[d], f.wl.queries.row(q)[d]);
      }
    }
  }
  EXPECT_EQ(q, f.wl.queries.n);
  EXPECT_THROW(split_batches(f.wl.queries, 0), std::invalid_argument);
}

TEST(SplitBatches, BatchLargerThanInputYieldsOneFullBatch) {
  auto& f = fixture();
  const auto batches = split_batches(f.wl.queries, f.wl.queries.n + 100);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].n, f.wl.queries.n);
  EXPECT_EQ(batches[0].dim, f.wl.queries.dim);
  EXPECT_EQ(batches[0].values, f.wl.queries.values);
}

TEST(SplitBatches, SingleQueryBatches) {
  auto& f = fixture();
  const auto batches = split_batches(f.wl.queries, 1);
  ASSERT_EQ(batches.size(), f.wl.queries.n);
  for (std::size_t q = 0; q < batches.size(); ++q) {
    ASSERT_EQ(batches[q].n, 1u);
    for (std::size_t d = 0; d < batches[q].dim; ++d) {
      ASSERT_EQ(batches[q].row(0)[d], f.wl.queries.row(q)[d]);
    }
  }
}

TEST(SplitBatches, ExactMultipleLeavesNoShortBatch) {
  auto& f = fixture();
  ASSERT_EQ(f.wl.queries.n % 16, 0u);
  const auto batches = split_batches(f.wl.queries, 16);
  ASSERT_EQ(batches.size(), f.wl.queries.n / 16);
  for (const auto& b : batches) EXPECT_EQ(b.n, 16u);
}

TEST(SplitBatches, EmptyInputYieldsNoBatches) {
  data::Dataset empty;
  empty.dim = 8;
  EXPECT_TRUE(split_batches(empty, 4).empty());
}

TEST(Pipeline, EmptyBatchListIsANoOp) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());
  for (const bool overlap : {false, true}) {
    BatchPipeline pipeline(engine, {.overlap = overlap});
    const auto run = pipeline.run({});
    EXPECT_TRUE(run.slots.empty());
    EXPECT_EQ(run.n_queries, 0u);
    EXPECT_DOUBLE_EQ(run.serial_seconds, 0.0);
    EXPECT_DOUBLE_EQ(run.elapsed_seconds, 0.0);
    EXPECT_DOUBLE_EQ(run.qps, 0.0);
  }
}

TEST(Pipeline, NoOverlapEqualsSerialStageSums) {
  // The --no-overlap mode must reproduce exactly what running each batch
  // through UpAnnsEngine::search serially reports.
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());
  const auto batches = split_batches(f.wl.queries, 16);
  ASSERT_GE(batches.size(), 4u);

  double serial_sum = 0;
  for (const auto& b : batches) {
    serial_sum += engine.search(b).times.total();
  }

  BatchPipeline pipeline(engine, {.overlap = false});
  const auto run = pipeline.run(batches);
  EXPECT_FALSE(run.overlapped);
  EXPECT_DOUBLE_EQ(run.elapsed_seconds, serial_sum);
  EXPECT_DOUBLE_EQ(run.serial_seconds, serial_sum);
  EXPECT_EQ(run.n_queries, f.wl.queries.n);
}

TEST(Pipeline, SlotSplitReconstructsBatchTotal) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());
  const auto batches = split_batches(f.wl.queries, 16);
  BatchPipeline pipeline(engine, {.overlap = true});
  const auto run = pipeline.run(batches);
  ASSERT_EQ(run.slots.size(), batches.size());
  for (const auto& slot : run.slots) {
    EXPECT_GT(slot.host_seconds, 0.0);
    EXPECT_GT(slot.device_seconds, 0.0);
    EXPECT_DOUBLE_EQ(slot.host_seconds + slot.device_seconds,
                     slot.report.times.total());
  }
}

TEST(Pipeline, OverlapStrictlyFasterWithIdenticalResults) {
  // Acceptance criterion: >= 4 batches, overlap strictly lowers end-to-end
  // simulated time, per-query neighbors bit-identical in both modes.
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());
  const auto batches = split_batches(f.wl.queries, 16);
  ASSERT_GE(batches.size(), 4u);

  BatchPipeline serial(engine, {.overlap = false});
  const auto off = serial.run(batches);
  BatchPipeline overlapped(engine, {.overlap = true});
  const auto on = overlapped.run(batches);

  EXPECT_LT(on.elapsed_seconds, off.elapsed_seconds);
  EXPECT_GT(on.qps, off.qps);
  EXPECT_DOUBLE_EQ(on.serial_seconds, off.serial_seconds);

  ASSERT_EQ(on.slots.size(), off.slots.size());
  for (std::size_t i = 0; i < on.slots.size(); ++i) {
    const auto& a = on.slots[i].report.neighbors;
    const auto& b = off.slots[i].report.neighbors;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      EXPECT_EQ(a[q], b[q]) << "batch " << i << " query " << q;
    }
  }
}

TEST(Pipeline, OverlapElapsedMatchesTwoPhaseFormula) {
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());
  const auto batches = split_batches(f.wl.queries, 16);
  BatchPipeline pipeline(engine, {.overlap = true});
  const auto run = pipeline.run(batches);

  double expect = run.slots.front().host_seconds;
  for (std::size_t i = 0; i + 1 < run.slots.size(); ++i) {
    expect += std::max(run.slots[i].device_seconds,
                       run.slots[i + 1].host_seconds);
  }
  expect += run.slots.back().device_seconds;
  EXPECT_DOUBLE_EQ(run.elapsed_seconds, expect);
  // The device stages dominate here, so nearly all host time hides.
  EXPECT_LT(run.elapsed_seconds, run.serial_seconds);
}

TEST(Pipeline, BalanceRatioCountsIdleResidentDpus) {
  // Regression: balance_ratio used to drop zero-busy DPUs from the mean, so
  // a batch that hammered a handful of DPUs while the rest of the fleet sat
  // idle read as "balanced". A single-query batch visits one replica of each
  // of its nprobe clusters — at most 8 of the 12 DPUs here — and the
  // idle-but-resident DPUs must drag the mean down.
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());

  data::Dataset batch;
  batch.dim = f.wl.queries.dim;
  batch.n = 1;
  batch.values.assign(f.wl.queries.row(0), f.wl.queries.row(0) + batch.dim);

  const auto r = engine.search(batch);
  ASSERT_TRUE(r.pim.has_value());
  const auto& busy = r.pim->dpu_busy_seconds;
  ASSERT_EQ(busy.size(), engine.placement().dpu_clusters.size());

  std::vector<double> resident;  // busy-or-holding (what the fix measures)
  std::vector<double> positive;  // busy only (the old, broken population)
  for (std::size_t d = 0; d < busy.size(); ++d) {
    if (busy[d] > 0) positive.push_back(busy[d]);
    if (busy[d] > 0 || !engine.placement().dpu_clusters[d].empty()) {
      resident.push_back(busy[d]);
    }
  }
  // The scenario only bites if some cluster-holding DPU really was idle.
  ASSERT_GT(resident.size(), positive.size());
  EXPECT_DOUBLE_EQ(r.pim->balance_ratio, common::max_over_mean(resident));
  EXPECT_GT(r.pim->balance_ratio, common::max_over_mean(positive));
}

std::vector<data::Dataset> drifted_batches(Fixture& f) {
  // Phase A matches the placement history's popularity profile; phase B
  // rotates the Zipf ranking by half the cluster count, the incremental
  // drift of paper Sec 4.1.2.
  data::WorkloadSpec calm;
  calm.n_queries = 48;
  calm.seed = 4;
  data::WorkloadSpec hot = calm;
  hot.seed = 11;
  hot.popularity_shift = 24;
  auto batches = split_batches(data::generate_workload(f.base, calm).queries, 16);
  for (auto& b :
       split_batches(data::generate_workload(f.base, hot).queries, 16)) {
    batches.push_back(std::move(b));
  }
  return batches;
}

TEST(Pipeline, QuietAdaptControllerIsByteIdentical) {
  // A controller that never fires must leave the whole report — neighbors,
  // every simulated timing, the serialized JSON — byte-identical to a run
  // with the feature off entirely.
  auto& f = fixture();
  const auto batches = drifted_batches(f);

  UpAnnsEngine off_engine(f.index, f.stats, f.options());
  BatchPipeline off(off_engine, {.overlap = true});
  const auto off_run = off.run(batches);

  UpAnnsEngine quiet_engine(f.index, f.stats, f.options());
  BatchPipeline quiet(quiet_engine,
                      {.overlap = true,
                       .adapt = AdaptMode::kCopies,
                       // TV distance is <= 1, so thresholds of 2 can never
                       // trip; neither can a >100% replica-churn fraction.
                       .adaptive = {.minor_threshold = 2.0,
                                    .major_threshold = 2.0,
                                    .copy_change_fraction = 2.0}});
  const auto quiet_run = quiet.run(batches);

  EXPECT_EQ(obs::batch_pipeline_json(off_run),
            obs::batch_pipeline_json(quiet_run));
  for (const auto& slot : quiet_run.slots) {
    EXPECT_EQ(slot.adapt_action, AdaptAction::kNone);
    EXPECT_DOUBLE_EQ(slot.adapt_seconds, 0.0);
    EXPECT_EQ(slot.adapt_bytes, 0u);
  }
}

TEST(Pipeline, AdaptCopiesPreservesNeighborsAndAccounting) {
  auto& f = fixture();
  const auto batches = drifted_batches(f);

  UpAnnsEngine off_engine(f.index, f.stats, f.options());
  BatchPipeline off(off_engine, {.overlap = true});
  const auto off_run = off.run(batches);

  UpAnnsEngine on_engine(f.index, f.stats, f.options());
  BatchPipeline on(on_engine,
                   {.overlap = true,
                    .adapt = AdaptMode::kCopies,
                    .adaptive = {.window_batches = 2,
                                 .minor_threshold = 0.01,
                                 .copy_change_fraction = 0.01}});
  const auto on_run = on.run(batches);

  // The controller must actually act on this workload, and copy-adjust
  // patches must stay a fraction of a full MRAM image.
  std::size_t fired = 0;
  std::uint64_t adapt_bytes = 0;
  for (const auto& slot : on_run.slots) {
    if (slot.adapt_action == AdaptAction::kNone) continue;
    ++fired;
    EXPECT_EQ(slot.adapt_action, AdaptAction::kAdjustCopies);
    EXPECT_GT(slot.adapt_drift, 0.0);
    adapt_bytes += slot.adapt_bytes;
  }
  EXPECT_GE(fired, 1u);
  EXPECT_LT(adapt_bytes, on_engine.load_image_bytes());

  // Replication changes placement, never results: neighbors bit-identical.
  ASSERT_EQ(on_run.slots.size(), off_run.slots.size());
  for (std::size_t i = 0; i < on_run.slots.size(); ++i) {
    const auto& a = on_run.slots[i].report.neighbors;
    const auto& b = off_run.slots[i].report.neighbors;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      EXPECT_EQ(a[q], b[q]) << "batch " << i << " query " << q;
    }
  }

  // Adaptation work is folded into the slot's device phase and the serial
  // total, exactly like a mutation patch.
  double serial = 0;
  for (const auto& slot : on_run.slots) {
    EXPECT_NEAR(slot.host_seconds + slot.device_seconds,
                slot.report.times.total() + slot.patch_seconds +
                    slot.adapt_seconds,
                1e-12);
    serial += slot.report.times.total() + slot.patch_seconds +
              slot.adapt_seconds;
  }
  EXPECT_NEAR(on_run.serial_seconds, serial, 1e-12);
}

TEST(Pipeline, AdaptFullRelocatesOnMajorDriftWithIdenticalNeighbors) {
  auto& f = fixture();
  const auto batches = drifted_batches(f);

  UpAnnsEngine off_engine(f.index, f.stats, f.options());
  BatchPipeline off(off_engine, {.overlap = true});
  const auto off_run = off.run(batches);

  UpAnnsEngine on_engine(f.index, f.stats, f.options());
  BatchPipeline on(on_engine,
                   {.overlap = true,
                    .adapt = AdaptMode::kFull,
                    .adaptive = {.window_batches = 2,
                                 .minor_threshold = 0.005,
                                 .major_threshold = 0.01,
                                 .copy_change_fraction = 2.0}});
  const auto on_run = on.run(batches);

  std::size_t relocations = 0;
  for (const auto& slot : on_run.slots) {
    if (slot.adapt_action == AdaptAction::kRelocate) {
      ++relocations;
      EXPECT_GT(slot.adapt_seconds, 0.0);
      EXPECT_GT(slot.adapt_bytes, 0u);
    }
  }
  EXPECT_GE(relocations, 1u);

  // A full relocation rebuilds every per-DPU layout; the searchable cluster
  // set is unchanged, so neighbors stay bit-identical to the static run.
  ASSERT_EQ(on_run.slots.size(), off_run.slots.size());
  for (std::size_t i = 0; i < on_run.slots.size(); ++i) {
    const auto& a = on_run.slots[i].report.neighbors;
    const auto& b = off_run.slots[i].report.neighbors;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      EXPECT_EQ(a[q], b[q]) << "batch " << i << " query " << q;
    }
  }
}

TEST(Pipeline, QueryPipelineMatchesEngineSearch) {
  // QueryPipeline::run is UpAnnsEngine::search; a fresh pipeline over the
  // same engine state must reproduce the report exactly.
  auto& f = fixture();
  UpAnnsEngine engine(f.index, f.stats, f.options());
  const auto via_engine = engine.search(f.wl.queries);
  QueryPipeline pipeline(engine);
  const auto direct = pipeline.run(f.wl.queries, nullptr);
  EXPECT_EQ(via_engine.neighbors, direct.neighbors);
  EXPECT_DOUBLE_EQ(via_engine.times.total(), direct.times.total());
  ASSERT_EQ(via_engine.trace.size(), direct.trace.size());
  for (std::size_t i = 0; i < direct.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_engine.trace[i].seconds, direct.trace[i].seconds);
  }
}

}  // namespace
}  // namespace upanns::core
