#include "metrics/regression.hpp"
#include "metrics/report.hpp"

#include <gtest/gtest.h>

namespace upanns::metrics {
namespace {

TEST(Regression, LinearScalingPrediction) {
  // Fig 20 usage: fit 500-900 DPU points, predict 2560.
  const std::vector<std::size_t> dpus = {500, 600, 700, 800, 900};
  std::vector<double> qps;
  for (auto d : dpus) qps.push_back(0.5 * static_cast<double>(d) + 10.0);
  const ScalingModel m = fit_scaling(dpus, qps);
  EXPECT_NEAR(m.predict_qps(2560), 0.5 * 2560 + 10, 1.0);
  EXPECT_GT(m.r2(), 0.999);
}

TEST(Regression, NoisyLinearStillGoodFit) {
  const std::vector<std::size_t> dpus = {500, 600, 700, 800, 900};
  const std::vector<double> qps = {251, 302, 348, 401, 452};
  const ScalingModel m = fit_scaling(dpus, qps);
  EXPECT_GT(m.r2(), 0.99);
  EXPECT_GT(m.predict_qps(1654), m.predict_qps(900));
}

TEST(Shares, SumToHundred) {
  baselines::StageTimes t{1, 2, 3, 4, 0};
  const StageShares s = shares(t);
  EXPECT_NEAR(s.cluster_filter + s.lut_build + s.distance_calc + s.topk +
                  s.transfer,
              100.0, 1e-9);
  EXPECT_NEAR(s.distance_calc, 30.0, 1e-9);
}

TEST(Shares, SumToHundredWithNonzeroTransfer) {
  // All five fields participate — transfer is a stage share, not a leftover.
  baselines::StageTimes t{1, 2, 3, 4, 10};
  const StageShares s = shares(t);
  EXPECT_NEAR(s.cluster_filter + s.lut_build + s.distance_calc + s.topk +
                  s.transfer,
              100.0, 1e-9);
  EXPECT_NEAR(s.transfer, 50.0, 1e-9);
  EXPECT_NEAR(s.distance_calc, 15.0, 1e-9);
}

TEST(Shares, ZeroTotalIsAllZero) {
  const StageShares s = shares(baselines::StageTimes{});
  EXPECT_DOUBLE_EQ(s.distance_calc, 0.0);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, PrintDoesNotCrash) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"longer-cell"});  // short row padded
  testing::internal::CaptureStdout();
  t.print();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
}

}  // namespace
}  // namespace upanns::metrics
