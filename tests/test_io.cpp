#include "data/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/dataset.hpp"

namespace upanns::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return (std::filesystem::temp_directory_path() /
            (std::string("upanns_io_") + name))
        .string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::string track(std::string p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(IoTest, FvecsRoundTrip) {
  Dataset ds;
  ds.dim = 4;
  ds.n = 3;
  ds.values = {1.5f, -2.f, 0.f, 3.f, 4.f, 5.f, 6.f, 7.f, 8.f, 9.f, 10.f, 11.f};
  const auto p = track(path("a.fvecs"));
  write_fvecs(p, ds);
  const Dataset back = read_fvecs(p);
  EXPECT_EQ(back.dim, ds.dim);
  EXPECT_EQ(back.n, ds.n);
  EXPECT_EQ(back.values, ds.values);
}

TEST_F(IoTest, BvecsRoundTripQuantizes) {
  Dataset ds;
  ds.dim = 2;
  ds.n = 2;
  ds.values = {0.f, 255.f, 17.f, 200.f};
  const auto p = track(path("b.bvecs"));
  write_bvecs(p, ds);
  const Dataset back = read_bvecs(p);
  EXPECT_EQ(back.values, ds.values);
}

TEST_F(IoTest, IvecsRoundTrip) {
  const std::vector<std::vector<std::int32_t>> rows = {{1, 2, 3}, {}, {-5}};
  const auto p = track(path("c.ivecs"));
  write_ivecs(p, rows);
  EXPECT_EQ(read_ivecs(p), rows);
}

TEST_F(IoTest, MaxRowsLimits) {
  Dataset ds;
  ds.dim = 1;
  ds.n = 5;
  ds.values = {0, 1, 2, 3, 4};
  const auto p = track(path("d.fvecs"));
  write_fvecs(p, ds);
  const Dataset back = read_fvecs(p, 2);
  EXPECT_EQ(back.n, 2u);
  EXPECT_EQ(back.values, (std::vector<float>{0, 1}));
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_fvecs(path("missing.fvecs")), std::runtime_error);
}

TEST_F(IoTest, TruncatedRowThrows) {
  const auto p = track(path("e.fvecs"));
  std::FILE* f = std::fopen(p.c_str(), "wb");
  const std::int32_t dim = 8;
  std::fwrite(&dim, sizeof(dim), 1, f);
  const float one = 1.f;
  std::fwrite(&one, sizeof(one), 1, f);  // only 1 of 8 values
  std::fclose(f);
  EXPECT_THROW(read_fvecs(p), std::runtime_error);
}

TEST_F(IoTest, NegativeDimThrows) {
  const auto p = track(path("f.fvecs"));
  std::FILE* f = std::fopen(p.c_str(), "wb");
  const std::int32_t dim = -3;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fclose(f);
  EXPECT_THROW(read_fvecs(p), std::runtime_error);
}

TEST_F(IoTest, EmptyFileYieldsEmptyDataset) {
  const auto p = track(path("g.fvecs"));
  std::fclose(std::fopen(p.c_str(), "wb"));
  const Dataset ds = read_fvecs(p);
  EXPECT_EQ(ds.n, 0u);
}

TEST_F(IoTest, SyntheticSurvivesRoundTrip) {
  const Dataset ds = generate_synthetic(sift1b_like(200, 3));
  const auto p = track(path("h.bvecs"));
  write_bvecs(p, ds);  // SIFT-like values are integral bytes already
  const Dataset back = read_bvecs(p);
  EXPECT_EQ(back.values, ds.values);
}

}  // namespace
}  // namespace upanns::data
