// google-benchmark micro-benchmarks for the host-side hot kernels: LUT
// construction, ADC scans, heap maintenance, CAE encoding, placement and
// scheduling. These measure the *simulator's* host cost (how fast we can
// evaluate the model), complementing the simulated-time figure benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/topk.hpp"
#include "core/cae.hpp"
#include "core/placement.hpp"
#include "core/scheduler.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "pim/cost_model.hpp"
#include "quant/pq.hpp"

namespace {

using namespace upanns;

std::vector<float> random_vecs(std::size_t n, std::size_t dim,
                               std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> v(n * dim);
  for (auto& x : v) x = static_cast<float>(rng.gaussian(0.0, 1.0));
  return v;
}

const quant::ProductQuantizer& shared_pq() {
  static const quant::ProductQuantizer pq = [] {
    quant::ProductQuantizer p;
    quant::PqOptions opts;
    opts.m = 16;
    opts.train_iters = 4;
    const auto data = random_vecs(4000, 128, 1);
    p.train(data, 4000, 128, opts);
    return p;
  }();
  return pq;
}

void BM_PqEncode(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto vecs = random_vecs(256, 128, 2);
  std::vector<std::uint8_t> codes(16);
  std::size_t i = 0;
  for (auto _ : state) {
    pq.encode(vecs.data() + (i++ % 256) * 128, codes.data());
    benchmark::DoNotOptimize(codes);
  }
}
BENCHMARK(BM_PqEncode);

void BM_LutBuild(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto q = random_vecs(1, 128, 3);
  std::vector<float> lut(16 * 256);
  for (auto _ : state) {
    pq.compute_lut(q.data(), lut.data());
    benchmark::DoNotOptimize(lut);
  }
}
BENCHMARK(BM_LutBuild);

void BM_AdcScan(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto q = random_vecs(1, 128, 4);
  std::vector<float> lut(16 * 256);
  pq.compute_lut(q.data(), lut.data());
  common::Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> codes(n * 16);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    float acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += pq.adc_distance(lut.data(), codes.data() + i * 16);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AdcScan)->Arg(256)->Arg(4096);

void BM_QuantizedAdcScan(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto q = random_vecs(1, 128, 6);
  std::vector<float> lut(16 * 256);
  pq.compute_lut(q.data(), lut.data());
  const quant::QuantizedLut qlut = pq.quantize_lut(lut);
  common::Rng rng(7);
  const std::size_t n = 4096;
  std::vector<std::uint8_t> codes(n * 16);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += pq.adc_distance_q(qlut, codes.data() + i * 16);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantizedAdcScan);

void BM_HeapPush(benchmark::State& state) {
  common::Rng rng(8);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<float> dists(65536);
  for (auto& d : dists) d = rng.uniform(0.f, 1.f);
  for (auto _ : state) {
    common::BoundedMaxHeap heap(k);
    for (std::size_t i = 0; i < dists.size(); ++i) {
      heap.push(dists[i], static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(heap);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dists.size()));
}
BENCHMARK(BM_HeapPush)->Arg(10)->Arg(100);

ivf::InvertedList patterned_list(std::size_t n) {
  common::Rng rng(9);
  ivf::InvertedList list;
  for (std::size_t i = 0; i < n; ++i) {
    list.ids.push_back(static_cast<std::uint32_t>(i));
    for (std::size_t s = 0; s < 16; ++s) {
      // ~50% of rows share a triplet at positions 0-2.
      const bool pattern = s < 3 && i % 2 == 0;
      list.codes.push_back(pattern ? static_cast<std::uint8_t>(s + 1)
                                   : static_cast<std::uint8_t>(rng.below(256)));
    }
  }
  return list;
}

void BM_CaeEncode(benchmark::State& state) {
  const auto list = patterned_list(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto enc = core::cae_encode_cluster(list, 16, core::CaeOptions{});
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaeEncode)->Arg(1024)->Arg(8192);

void BM_MramLatencyModel(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t b = 8; b <= 2048; b += 8) {
      acc += pim::DpuCostModel::mram_dma_cycles(b);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MramLatencyModel);

struct PlacementFixtureData {
  data::Dataset base;
  ivf::IvfIndex index;
  ivf::ClusterStats stats;
  std::vector<std::vector<std::uint32_t>> probes;
};

const PlacementFixtureData& placement_fixture() {
  static const PlacementFixtureData f = [] {
    auto base = data::generate_synthetic(data::sift1b_like(30000, 10));
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 128;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 3;
    auto index = ivf::IvfIndex::build(base, opts);
    data::WorkloadSpec spec;
    spec.n_queries = 256;
    auto wl = data::generate_workload(base, spec);
    auto probes = ivf::filter_batch(index, wl.queries, 32);
    auto stats = ivf::collect_stats(index, probes);
    return PlacementFixtureData{std::move(base), std::move(index),
                                std::move(stats), std::move(probes)};
  }();
  return f;
}

void BM_PlacementAlgorithm1(benchmark::State& state) {
  const auto& f = placement_fixture();
  core::PlacementOptions opts;
  opts.n_dpus = 64;
  for (auto _ : state) {
    auto p = core::place_clusters(f.index, f.stats, opts);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PlacementAlgorithm1);

void BM_SchedulingAlgorithm2(benchmark::State& state) {
  const auto& f = placement_fixture();
  core::PlacementOptions opts;
  opts.n_dpus = 64;
  const auto placement = core::place_clusters(f.index, f.stats, opts);
  const auto sizes = f.index.list_sizes();
  for (auto _ : state) {
    auto s = core::schedule_queries(f.probes, placement, sizes);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.probes.size()));
}
BENCHMARK(BM_SchedulingAlgorithm2);

}  // namespace

BENCHMARK_MAIN();
