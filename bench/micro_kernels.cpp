// google-benchmark micro-benchmarks for the host-side hot kernels: LUT
// construction, ADC scans, heap maintenance, CAE encoding, placement and
// scheduling. These measure the *simulator's* host cost (how fast we can
// evaluate the model), complementing the simulated-time figure benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/topk.hpp"
#include "core/cae.hpp"
#include "core/dpu_kernel.hpp"
#include "core/placement.hpp"
#include "core/scheduler.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "pim/cost_model.hpp"
#include "pim/dpu.hpp"
#include "quant/pq.hpp"

namespace {

using namespace upanns;

std::vector<float> random_vecs(std::size_t n, std::size_t dim,
                               std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> v(n * dim);
  for (auto& x : v) x = static_cast<float>(rng.gaussian(0.0, 1.0));
  return v;
}

const quant::ProductQuantizer& shared_pq() {
  static const quant::ProductQuantizer pq = [] {
    quant::ProductQuantizer p;
    quant::PqOptions opts;
    opts.m = 16;
    opts.train_iters = 4;
    const auto data = random_vecs(4000, 128, 1);
    p.train(data, 4000, 128, opts);
    return p;
  }();
  return pq;
}

void BM_PqEncode(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto vecs = random_vecs(256, 128, 2);
  std::vector<std::uint8_t> codes(16);
  std::size_t i = 0;
  for (auto _ : state) {
    pq.encode(vecs.data() + (i++ % 256) * 128, codes.data());
    benchmark::DoNotOptimize(codes);
  }
}
BENCHMARK(BM_PqEncode);

void BM_LutBuild(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto q = random_vecs(1, 128, 3);
  std::vector<float> lut(16 * 256);
  for (auto _ : state) {
    pq.compute_lut(q.data(), lut.data());
    benchmark::DoNotOptimize(lut);
  }
}
BENCHMARK(BM_LutBuild);

void BM_AdcScan(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto q = random_vecs(1, 128, 4);
  std::vector<float> lut(16 * 256);
  pq.compute_lut(q.data(), lut.data());
  common::Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> codes(n * 16);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    float acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += pq.adc_distance(lut.data(), codes.data() + i * 16);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AdcScan)->Arg(256)->Arg(4096);

void BM_QuantizedAdcScan(benchmark::State& state) {
  const auto& pq = shared_pq();
  const auto q = random_vecs(1, 128, 6);
  std::vector<float> lut(16 * 256);
  pq.compute_lut(q.data(), lut.data());
  const quant::QuantizedLut qlut = pq.quantize_lut(lut);
  common::Rng rng(7);
  const std::size_t n = 4096;
  std::vector<std::uint8_t> codes(n * 16);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += pq.adc_distance_q(qlut, codes.data() + i * 16);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantizedAdcScan);

void BM_HeapPush(benchmark::State& state) {
  common::Rng rng(8);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<float> dists(65536);
  for (auto& d : dists) d = rng.uniform(0.f, 1.f);
  for (auto _ : state) {
    common::BoundedMaxHeap heap(k);
    for (std::size_t i = 0; i < dists.size(); ++i) {
      heap.push(dists[i], static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(heap);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dists.size()));
}
BENCHMARK(BM_HeapPush)->Arg(10)->Arg(100);

ivf::InvertedList patterned_list(std::size_t n) {
  common::Rng rng(9);
  ivf::InvertedList list;
  for (std::size_t i = 0; i < n; ++i) {
    list.ids.push_back(static_cast<std::uint32_t>(i));
    for (std::size_t s = 0; s < 16; ++s) {
      // ~50% of rows share a triplet at positions 0-2.
      const bool pattern = s < 3 && i % 2 == 0;
      list.codes.push_back(pattern ? static_cast<std::uint8_t>(s + 1)
                                   : static_cast<std::uint8_t>(rng.below(256)));
    }
  }
  return list;
}

void BM_CaeEncode(benchmark::State& state) {
  const auto list = patterned_list(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto enc = core::cae_encode_cluster(list, 16, core::CaeOptions{});
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaeEncode)->Arg(1024)->Arg(8192);

// --- Arena-backed QueryKernel scans: a hand-built single-cluster MRAM
// image driven through Dpu::run. The first iteration warms the scratch
// arena and launch-object pools; steady state measures the allocation-free
// hot path end to end (views + scratch + reused heaps).
struct KernelImage {
  static constexpr std::size_t kDim = 128;
  static constexpr std::size_t kM = 16;
  static constexpr std::size_t kDsub = 8;
  static constexpr std::size_t kK = 10;

  pim::Dpu dpu{0};
  core::DpuStaticLayout layout;
  core::DpuLaunchInput input;

  KernelImage(core::KernelMode mode, std::size_t n_records) {
    common::Rng rng(17);
    layout.dim = kDim;
    layout.m = kM;
    layout.dsub = kDsub;
    layout.codebook_off = dpu.mram_alloc(kM * 256 * kDsub, "codebook");
    for (std::size_t i = 0; i < kM * 256 * kDsub; ++i) {
      const auto v = static_cast<std::int8_t>(
          static_cast<int>(rng.below(255)) - 127);
      dpu.host_write(layout.codebook_off + i, &v, 1);
    }
    layout.cb_scale_off = dpu.mram_alloc(kM * sizeof(float), "scales");
    for (std::size_t s = 0; s < kM; ++s) {
      const float scale = 0.02f;
      dpu.host_write(layout.cb_scale_off + s * sizeof(float), &scale,
                     sizeof(scale));
    }

    core::DpuClusterData cl;
    cl.n_records = static_cast<std::uint32_t>(n_records);
    cl.ids_off = dpu.mram_alloc(n_records * sizeof(std::uint32_t), "ids");
    for (std::uint32_t i = 0; i < n_records; ++i) {
      dpu.host_write(cl.ids_off + i * sizeof(std::uint32_t), &i, sizeof(i));
    }
    if (mode == core::KernelMode::kNaiveRaw) {
      cl.stream_len = n_records * kM;  // u8 codes, element == byte
      cl.stream_off = dpu.mram_alloc(cl.stream_len, "codes");
      for (std::size_t i = 0; i < cl.stream_len; ++i) {
        const auto c = static_cast<std::uint8_t>(rng.below(256));
        dpu.host_write(cl.stream_off + i, &c, 1);
      }
    } else {
      // Direct-token records: u16 length prefix + kM tokens each.
      std::vector<std::uint16_t> stream;
      std::vector<std::uint32_t> chunk_index;
      for (std::size_t r = 0; r < n_records; ++r) {
        if (r % core::kChunkRecords == 0) {
          chunk_index.push_back(static_cast<std::uint32_t>(stream.size()));
        }
        stream.push_back(kM);
        for (std::size_t pos = 0; pos < kM; ++pos) {
          stream.push_back(
              static_cast<std::uint16_t>(pos * 256 + rng.below(256)));
        }
      }
      cl.stream_len = stream.size();
      cl.stream_off =
          dpu.mram_alloc(stream.size() * sizeof(std::uint16_t), "stream");
      dpu.host_write(cl.stream_off, stream.data(),
                     stream.size() * sizeof(std::uint16_t));
      cl.n_chunks = static_cast<std::uint32_t>(chunk_index.size());
      cl.chunk_index_off = dpu.mram_alloc(
          chunk_index.size() * sizeof(std::uint32_t), "chunk-index");
      dpu.host_write(cl.chunk_index_off, chunk_index.data(),
                     chunk_index.size() * sizeof(std::uint32_t));
    }
    cl.centroid_off = dpu.mram_alloc(kDim * sizeof(float), "centroid");
    layout.clusters.push_back(cl);

    input.k = kK;
    input.queries_off = dpu.mram_alloc(kDim * sizeof(float), "query");
    const auto q = random_vecs(1, kDim, 23);
    dpu.host_write(input.queries_off, q.data(), kDim * sizeof(float));
    input.results_off = dpu.mram_alloc(kK * 8, "results");
    input.n_queries = 1;
    input.items.push_back({0, 0});
  }
};

void run_kernel_scan(benchmark::State& state, core::KernelMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  KernelImage img(mode, n);
  core::QueryKernel kernel(img.layout, img.input, mode, true);
  for (auto _ : state) {
    const pim::DpuRunStats stats = img.dpu.run(kernel, 11);
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_AdcScanTokens(benchmark::State& state) {
  run_kernel_scan(state, core::KernelMode::kDirectTokens);
}
BENCHMARK(BM_AdcScanTokens)->Arg(1024)->Arg(8192);

void BM_AdcScanRaw(benchmark::State& state) {
  run_kernel_scan(state, core::KernelMode::kNaiveRaw);
}
BENCHMARK(BM_AdcScanRaw)->Arg(1024)->Arg(8192);

// The S5 merge pattern in isolation: refill per-tasklet heaps, extract them
// min-first into a reused buffer (take_sorted_into keeps every capacity),
// then prune-merge into the DPU-global heap.
void BM_HeapMergePruned(benchmark::State& state) {
  constexpr std::size_t kTasklets = 11;
  constexpr std::size_t kK = 10;
  constexpr std::size_t kPerTasklet = 64;
  common::Rng rng(31);
  std::vector<float> dists(kTasklets * kPerTasklet);
  for (auto& d : dists) d = rng.uniform(0.f, 1.f);

  std::vector<common::BoundedMaxHeap> locals;
  for (std::size_t t = 0; t < kTasklets; ++t) locals.emplace_back(kK);
  common::BoundedMaxHeap global(kK);
  std::vector<common::Neighbor> sorted;

  for (auto _ : state) {
    global.clear();
    for (std::size_t t = 0; t < kTasklets; ++t) {
      for (std::size_t i = 0; i < kPerTasklet; ++i) {
        locals[t].push(dists[t * kPerTasklet + i],
                       static_cast<std::uint32_t>(i));
      }
      locals[t].take_sorted_into(sorted);
      for (const common::Neighbor& nb : sorted) {
        if (global.full() && !(nb < global.worst())) break;
        global.push(nb);
      }
    }
    benchmark::DoNotOptimize(global);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dists.size()));
}
BENCHMARK(BM_HeapMergePruned);

void BM_MramLatencyModel(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t b = 8; b <= 2048; b += 8) {
      acc += pim::DpuCostModel::mram_dma_cycles(b);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MramLatencyModel);

struct PlacementFixtureData {
  data::Dataset base;
  ivf::IvfIndex index;
  ivf::ClusterStats stats;
  std::vector<std::vector<std::uint32_t>> probes;
};

const PlacementFixtureData& placement_fixture() {
  static const PlacementFixtureData f = [] {
    auto base = data::generate_synthetic(data::sift1b_like(30000, 10));
    ivf::IvfBuildOptions opts;
    opts.n_clusters = 128;
    opts.pq_m = 16;
    opts.coarse_iters = 5;
    opts.pq_iters = 3;
    auto index = ivf::IvfIndex::build(base, opts);
    data::WorkloadSpec spec;
    spec.n_queries = 256;
    auto wl = data::generate_workload(base, spec);
    auto probes = ivf::filter_batch(index, wl.queries, 32);
    auto stats = ivf::collect_stats(index, probes);
    return PlacementFixtureData{std::move(base), std::move(index),
                                std::move(stats), std::move(probes)};
  }();
  return f;
}

void BM_PlacementAlgorithm1(benchmark::State& state) {
  const auto& f = placement_fixture();
  core::PlacementOptions opts;
  opts.n_dpus = 64;
  for (auto _ : state) {
    auto p = core::place_clusters(f.index, f.stats, opts);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PlacementAlgorithm1);

void BM_SchedulingAlgorithm2(benchmark::State& state) {
  const auto& f = placement_fixture();
  core::PlacementOptions opts;
  opts.n_dpus = 64;
  const auto placement = core::place_clusters(f.index, f.stats, opts);
  const auto sizes = f.index.list_sizes();
  for (auto _ : state) {
    auto s = core::schedule_queries(f.probes, placement, sizes);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.probes.size()));
}
BENCHMARK(BM_SchedulingAlgorithm2);

}  // namespace

BENCHMARK_MAIN();
