// Figure 17: QPS vs MRAM read granularity (vectors per DMA transfer),
// normalized to 2 vectors/read. Expected shape: QPS rises quickly from 2 to
// ~16 vectors per read (amortizing the DMA setup cost of Fig 7) and
// stabilizes beyond — 16 is the paper's default.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 17", "QPS vs MRAM read size (normalized to 2 vectors)");
  metrics::Table table({"dataset", "vectors_per_read", "read_bytes",
                        "norm_QPS"});
  for (const auto family : {data::DatasetFamily::kDeepLike,
                            data::DatasetFamily::kSiftLike,
                            data::DatasetFamily::kSpacevLike}) {
    Config cfg;
    cfg.family = family;
    cfg.n = 200'000;
    cfg.scaled_ivf = 64;  // ~3k-point lists: read-size effects undiluted
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 16;
    cfg.n_queries = 64;
    cfg.nprobe = 16;
    double base = 0;
    for (const std::size_t v : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                                std::size_t{16}, std::size_t{32},
                                std::size_t{64}}) {
      core::UpAnnsOptions opts = upanns_options(cfg);
      opts.mram_read_vectors = v;
      const core::SearchReport run = run_upanns(cfg, &opts);
      if (base == 0) base = run.qps;
      const std::size_t bytes =
          v * (data::family_pq_m(family) + 1) * sizeof(std::uint16_t);
      table.add_row({data::family_name(family), std::to_string(v),
                     std::to_string(std::min<std::size_t>(bytes, 2048)),
                     metrics::Table::fmt(run.qps / base, 2)});
    }
    clear_context_cache();
  }
  table.print();
  std::printf("\nPaper shape: steep gain 2->16 vectors, stable beyond; "
              "default 16.\n");
  return 0;
}
