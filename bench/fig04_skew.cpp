// Figure 4: the skew that motivates Opt1, measured on the SPACEV1B-like
// synthetic dataset: (a) cluster access-frequency distribution, (b) cluster
// size distribution, (c) per-cluster workload W_i = s_i * f_i. Expected
// shape: popular clusters receive orders of magnitude more accesses than the
// tail; sizes span orders of magnitude; workload skew compounds both.
#include <algorithm>

#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 4",
                  "Access frequency / size / workload skew (SPACEV1B-like)");
  Config cfg;
  cfg.family = data::DatasetFamily::kSpacevLike;
  cfg.n = 200'000;
  cfg.scaled_ivf = 256;
  cfg.n_dpus = 64;
  cfg.n_queries = 128;
  Context& ctx = context_for(cfg);

  auto sorted_desc = [](std::vector<double> v) {
    std::sort(v.rbegin(), v.rend());
    return v;
  };
  std::vector<double> freq = sorted_desc(ctx.stats.frequencies);
  std::vector<double> sizes;
  for (auto s : ctx.stats.sizes) sizes.push_back(static_cast<double>(s));
  sizes = sorted_desc(sizes);
  std::vector<double> work = sorted_desc(ctx.stats.workloads);

  metrics::Table table({"percentile", "access_freq", "cluster_size",
                        "workload"});
  for (double p : {0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    const auto at = [&](const std::vector<double>& v) {
      const std::size_t i = std::min(
          v.size() - 1, static_cast<std::size_t>(p * (v.size() - 1)));
      return v[i];
    };
    table.add_row({metrics::Table::fmt(p * 100, 0) + "%",
                   metrics::Table::fmt(at(freq), 6),
                   metrics::Table::fmt(at(sizes), 0),
                   metrics::Table::fmt(at(work), 2)});
  }
  table.print();

  const auto report = ivf::analyze_skew(ctx.stats);
  std::printf("\nfrequency max/min: %.0fx   size max/min: %.0fx   "
              "workload max/mean: %.1fx\n",
              report.freq_max_over_min_nonzero,
              report.size_max_over_min_nonzero,
              report.workload_max_over_mean);
  std::printf("Paper shape: popular clusters ~500x more queries (4a); sizes "
              "spread orders of magnitude (4b).\n");
  return 0;
}
