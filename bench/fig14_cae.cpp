// Figure 14: performance improvement from Co-occurrence Aware Encoding
// (CAE) as a function of the achieved vector-length reduction rate, per
// nprobe. The reduction rate is swept by varying the generator's subvector
// pattern density (real datasets differ in code correlation the same way).
// Expected shape: improvement grows with the length-reduction rate; LUT
// construction pays a small partial-sum overhead.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 14",
                  "CAE speedup vs length-reduction rate (SIFT1B-like)");
  metrics::Table table({"pattern_density", "nprobe", "len_reduction%",
                        "dist_speedup", "lut_overhead", "total_speedup"});
  for (const double density : {0.2, 0.45, 0.7, 0.9}) {
    Config cfg;
    cfg.family = data::DatasetFamily::kSiftLike;
    cfg.n = 150'000;
    cfg.scaled_ivf = 256;
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 64;
    cfg.n_queries = 128;
    cfg.pattern_prob = density;
    for (const std::size_t nprobe : {std::size_t{64}, std::size_t{128}}) {
      cfg.nprobe = nprobe;
      core::UpAnnsOptions with = upanns_options(cfg);
      core::UpAnnsOptions without = upanns_options(cfg);
      without.opt_cae = false;
      const core::SearchReport on = run_upanns(cfg, &with);
      const core::SearchReport off = run_upanns(cfg, &without);
      table.add_row(
          {metrics::Table::fmt(density, 2), std::to_string(nprobe),
           metrics::Table::fmt(on.pim->length_reduction * 100.0, 1),
           metrics::Table::fmt(
               off.times.distance_calc / on.times.distance_calc, 2),
           metrics::Table::fmt(on.times.lut_build / off.times.lut_build, 2),
           metrics::Table::fmt(off.times.total() / on.times.total(), 2)});
    }
    clear_context_cache();
  }
  table.print();
  std::printf("\nPaper shape: higher length reduction -> larger distance-"
              "stage speedup; slight LUT overhead (>1).\n");
  return 0;
}
