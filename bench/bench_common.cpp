#include "bench_common.hpp"

#include <sstream>

#include "common/log.hpp"

namespace upanns::bench {

std::string Config::key() const {
  std::ostringstream os;
  os << data::family_name(family) << "/n=" << n << "/C=" << scaled_ivf
     << "/seed=" << seed << "/pp=" << pattern_prob;
  return os.str();
}

namespace {
std::map<std::string, std::unique_ptr<Context>>& cache() {
  static std::map<std::string, std::unique_ptr<Context>> c;
  return c;
}
}  // namespace

void clear_context_cache() { cache().clear(); }

namespace {
// (Re)compute the frequency statistics for the config's nprobe: placement
// quality depends on the history being probed the same way the evaluation
// will probe (paper Sec 4.1: f_i is the *historical* access frequency of
// the live workload).
void refresh_stats(Context& ctx, const Config& cfg) {
  if (ctx.stats_nprobe == cfg.nprobe) return;
  ctx.history = ivf::filter_batch(*ctx.index, ctx.history_workload.queries,
                                  cfg.nprobe);
  ctx.stats = ivf::collect_stats(*ctx.index, ctx.history);
  ctx.stats_nprobe = cfg.nprobe;
}
}  // namespace

Context& context_for(const Config& cfg) {
  auto& c = cache();
  const std::string key = cfg.key();
  auto it = c.find(key);
  if (it != c.end()) {
    refresh_stats(*it->second, cfg);
    return *it->second;
  }

  common::log_info("building context ", key);
  auto ctx = std::make_unique<Context>();

  data::SyntheticSpec spec;
  spec.family = cfg.family;
  spec.n = cfg.n;
  spec.seed = cfg.seed;
  spec.size_sigma = data::family_size_sigma(cfg.family);
  spec.dense_core_frac = data::family_dense_core_frac(cfg.family);
  if (cfg.pattern_prob >= 0) spec.pattern_prob = cfg.pattern_prob;
  ctx->base = data::generate_synthetic(spec);

  ivf::IvfBuildOptions build;
  build.n_clusters = cfg.scaled_ivf;
  build.pq_m = spec.pq_m();
  build.coarse_iters = 8;
  build.pq_iters = 8;
  build.coarse_train_points = std::min<std::size_t>(cfg.n, 40'000);
  build.pq_train_points = std::min<std::size_t>(cfg.n, 30'000);
  build.seed = cfg.seed + 1;
  ctx->index = std::make_unique<ivf::IvfIndex>(
      ivf::IvfIndex::build(ctx->base, build));

  data::WorkloadSpec wspec;
  wspec.n_queries = cfg.n_queries;
  wspec.seed = cfg.seed + 2;
  ctx->workload = data::generate_workload(ctx->base, wspec);

  // History: a separate (earlier) workload drives the frequency estimate so
  // placement never sees the evaluation queries themselves.
  data::WorkloadSpec hspec = wspec;
  hspec.seed = cfg.seed + 3;
  hspec.n_queries = std::max<std::size_t>(1024, 2 * cfg.n_queries);
  ctx->history_workload = data::generate_workload(ctx->base, hspec);
  refresh_stats(*ctx, cfg);

  auto [pos, ok] = c.emplace(key, std::move(ctx));
  (void)ok;
  return *pos->second;
}

baselines::QueryWorkProfile paper_profile(
    const Config& cfg, const baselines::QueryWorkProfile& measured) {
  baselines::QueryWorkProfile p = measured;
  const double f = cfg.data_factor();
  p.total_candidates = static_cast<std::size_t>(
      static_cast<double>(p.total_candidates) * f);
  // Ordinary inverted lists scale with the per-list factor; a near-duplicate
  // clump (DEEP1B-like) is a fixed *fraction* of the dataset — more coarse
  // centroids cannot split identical points, so it stays frac * n at scale.
  const double generic_max = static_cast<double>(p.max_cluster) * f;
  const double clump_max =
      data::family_dense_core_frac(cfg.family) * static_cast<double>(kPaperN);
  p.max_cluster = static_cast<std::size_t>(std::max(generic_max, clump_max));
  p.dataset_n = kPaperN;
  p.n_clusters = cfg.paper_ivf;
  return p;
}

baselines::StageTimes cpu_times_at_scale(const Config& cfg,
                                         const baselines::CpuSearchResult& res) {
  return baselines::CpuCostModel::stage_times(paper_profile(cfg, res.profile));
}

baselines::StageTimes gpu_times_at_scale(const Config& cfg,
                                         const baselines::CpuSearchResult& res) {
  return baselines::GpuModel::stage_times(paper_profile(cfg, res.profile));
}

baselines::GpuCapacity gpu_capacity_at_scale(
    const Config& cfg, const baselines::CpuSearchResult& res) {
  return baselines::GpuModel::capacity(paper_profile(cfg, res.profile));
}

core::PimSearchReport pim_at_scale(const Config& cfg,
                                   const core::PimSearchReport& report) {
  core::PimSearchReport r = report;
  r.n_dpus = kPaperDpus;
  return r.at_scale(cfg.data_factor(), cfg.dpu_factor());
}

double qps_of(const Config& cfg, const baselines::StageTimes& t) {
  const double total = t.total();
  return total > 0 ? static_cast<double>(cfg.n_queries) / total : 0;
}

core::UpAnnsOptions upanns_options(const Config& cfg) {
  core::UpAnnsOptions o = core::UpAnnsOptions::upanns();
  o.n_dpus = cfg.n_dpus;
  o.nprobe = cfg.nprobe;
  o.k = cfg.k;
  return o;
}

core::UpAnnsOptions naive_options(const Config& cfg) {
  core::UpAnnsOptions o = core::UpAnnsOptions::pim_naive();
  o.n_dpus = cfg.n_dpus;
  o.nprobe = cfg.nprobe;
  o.k = cfg.k;
  return o;
}

SystemRun run_cpu(const Config& cfg) {
  Context& ctx = context_for(cfg);
  baselines::CpuIvfpqSearcher searcher(*ctx.index);
  baselines::SearchParams params;
  params.nprobe = cfg.nprobe;
  params.k = cfg.k;
  const auto res = searcher.search(ctx.workload.queries, params);
  SystemRun out;
  out.times = cpu_times_at_scale(cfg, res);
  out.qps = qps_of(cfg, out.times);
  out.qps_per_watt = pim::qps_per_watt(out.qps, pim::Platform::kCpu);
  return out;
}

SystemRun run_gpu(const Config& cfg) {
  Context& ctx = context_for(cfg);
  baselines::CpuIvfpqSearcher searcher(*ctx.index);
  baselines::SearchParams params;
  params.nprobe = cfg.nprobe;
  params.k = cfg.k;
  const auto res = searcher.search(ctx.workload.queries, params);
  SystemRun out;
  const auto cap = gpu_capacity_at_scale(cfg, res);
  out.oom = !cap.fits;
  out.times = gpu_times_at_scale(cfg, res);
  out.qps = out.oom ? 0 : qps_of(cfg, out.times);
  out.qps_per_watt = pim::qps_per_watt(out.qps, pim::Platform::kGpu);
  return out;
}

SystemRun run_upanns(const Config& cfg,
                     const core::UpAnnsOptions* override_opts) {
  Context& ctx = context_for(cfg);
  const core::UpAnnsOptions opts =
      override_opts ? *override_opts : upanns_options(cfg);
  core::UpAnnsEngine engine(*ctx.index, ctx.stats, opts);
  const auto report = engine.search(ctx.workload.queries);
  SystemRun out;
  out.pim = pim_at_scale(cfg, report);
  out.times = out.pim.times;
  out.qps = out.pim.qps;
  out.qps_per_watt = out.pim.qps_per_watt;
  return out;
}

SystemRun run_pim_naive(const Config& cfg) {
  const core::UpAnnsOptions opts = naive_options(cfg);
  return run_upanns(cfg, &opts);
}

}  // namespace upanns::bench
