#include "bench_common.hpp"

#include <sstream>
#include <stdexcept>

#include "common/log.hpp"

namespace upanns::bench {

std::string Config::key() const {
  std::ostringstream os;
  os << data::family_name(family) << "/n=" << n << "/C=" << scaled_ivf
     << "/seed=" << seed << "/pp=" << pattern_prob;
  return os.str();
}

namespace {
std::map<std::string, std::unique_ptr<Context>>& cache() {
  static std::map<std::string, std::unique_ptr<Context>> c;
  return c;
}
}  // namespace

void clear_context_cache() { cache().clear(); }

namespace {
// (Re)compute the frequency statistics for the config's nprobe: placement
// quality depends on the history being probed the same way the evaluation
// will probe (paper Sec 4.1: f_i is the *historical* access frequency of
// the live workload).
void refresh_stats(Context& ctx, const Config& cfg) {
  if (ctx.stats_nprobe == cfg.nprobe) return;
  ctx.history = ivf::filter_batch(*ctx.index, ctx.history_workload.queries,
                                  cfg.nprobe);
  ctx.stats = ivf::collect_stats(*ctx.index, ctx.history);
  ctx.stats_nprobe = cfg.nprobe;
}
}  // namespace

Context& context_for(const Config& cfg) {
  auto& c = cache();
  const std::string key = cfg.key();
  auto it = c.find(key);
  if (it != c.end()) {
    refresh_stats(*it->second, cfg);
    return *it->second;
  }

  common::log_info("building context ", key);
  auto ctx = std::make_unique<Context>();
  const auto seconds_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  const auto t_gen = std::chrono::steady_clock::now();
  data::SyntheticSpec spec;
  spec.family = cfg.family;
  spec.n = cfg.n;
  spec.seed = cfg.seed;
  spec.size_sigma = data::family_size_sigma(cfg.family);
  spec.dense_core_frac = data::family_dense_core_frac(cfg.family);
  if (cfg.pattern_prob >= 0) spec.pattern_prob = cfg.pattern_prob;
  ctx->base = data::generate_synthetic(spec);
  ctx->data_gen_seconds = seconds_since(t_gen);

  ivf::IvfBuildOptions build;
  build.n_clusters = cfg.scaled_ivf;
  build.pq_m = spec.pq_m();
  build.coarse_iters = 8;
  build.pq_iters = 8;
  build.coarse_train_points = std::min<std::size_t>(cfg.n, 40'000);
  build.pq_train_points = std::min<std::size_t>(cfg.n, 30'000);
  build.seed = cfg.seed + 1;
  ctx->index = std::make_unique<ivf::IvfIndex>(
      ivf::IvfIndex::build(ctx->base, build, &ctx->build_stats));

  const auto t_workload = std::chrono::steady_clock::now();
  data::WorkloadSpec wspec;
  wspec.n_queries = cfg.n_queries;
  wspec.seed = cfg.seed + 2;
  ctx->workload = data::generate_workload(ctx->base, wspec);

  // History: a separate (earlier) workload drives the frequency estimate so
  // placement never sees the evaluation queries themselves.
  data::WorkloadSpec hspec = wspec;
  hspec.seed = cfg.seed + 3;
  hspec.n_queries = std::max<std::size_t>(1024, 2 * cfg.n_queries);
  ctx->history_workload = data::generate_workload(ctx->base, hspec);
  ctx->workload_seconds = seconds_since(t_workload);

  const auto t_stats = std::chrono::steady_clock::now();
  refresh_stats(*ctx, cfg);
  ctx->stats_seconds = seconds_since(t_stats);

  auto [pos, ok] = c.emplace(key, std::move(ctx));
  (void)ok;
  return *pos->second;
}

baselines::QueryWorkProfile paper_profile(
    const Config& cfg, const baselines::QueryWorkProfile& measured) {
  baselines::QueryWorkProfile p = measured;
  const double f = cfg.data_factor();
  p.total_candidates = static_cast<std::size_t>(
      static_cast<double>(p.total_candidates) * f);
  // Ordinary inverted lists scale with the per-list factor; a near-duplicate
  // clump (DEEP1B-like) is a fixed *fraction* of the dataset — more coarse
  // centroids cannot split identical points, so it stays frac * n at scale.
  const double generic_max = static_cast<double>(p.max_cluster) * f;
  const double clump_max =
      data::family_dense_core_frac(cfg.family) * static_cast<double>(kPaperN);
  p.max_cluster = static_cast<std::size_t>(std::max(generic_max, clump_max));
  p.dataset_n = kPaperN;
  p.n_clusters = cfg.paper_ivf;
  return p;
}

double qps_of(const Config& cfg, const baselines::StageTimes& t) {
  const double total = t.total();
  return total > 0 ? static_cast<double>(cfg.n_queries) / total : 0;
}

core::UpAnnsOptions upanns_options(const Config& cfg) {
  core::UpAnnsOptions o = core::UpAnnsOptions::upanns();
  o.n_dpus = cfg.n_dpus;
  o.nprobe = cfg.nprobe;
  o.k = cfg.k;
  return o;
}

std::unique_ptr<core::AnnsBackend> make_backend(
    core::BackendKind kind, const Config& cfg,
    const core::UpAnnsOptions* override_opts) {
  Context& ctx = context_for(cfg);
  const core::UpAnnsOptions opts =
      override_opts ? *override_opts : upanns_options(cfg);
  return core::make_backend(kind, *ctx.index, ctx.stats, opts);
}

core::SearchReport at_paper_scale(const Config& cfg,
                                  const core::SearchReport& measured) {
  if (measured.pim.has_value()) {
    return measured.at_scale(cfg.data_factor(), cfg.dpu_factor());
  }
  core::SearchReport r = measured;
  if (measured.cpu.has_value()) {
    r.times = baselines::CpuCostModel::stage_times(
        paper_profile(cfg, measured.cpu->profile));
    r.qps = qps_of(cfg, r.times);
    r.qps_per_watt = pim::qps_per_watt(r.qps, pim::Platform::kCpu);
    return r;
  }
  if (measured.gpu.has_value()) {
    const auto profile = paper_profile(cfg, measured.gpu->profile);
    r.gpu->capacity = baselines::GpuModel::capacity(profile);
    r.gpu->oom = !r.gpu->capacity.fits;
    r.times = baselines::GpuModel::stage_times(profile);
    r.qps = r.gpu->oom ? 0 : qps_of(cfg, r.times);
    r.qps_per_watt = pim::qps_per_watt(r.qps, pim::Platform::kGpu);
    return r;
  }
  throw std::invalid_argument(
      "at_paper_scale: report carries no backend extras");
}

core::SearchReport run_system(core::BackendKind kind, const Config& cfg,
                              const core::UpAnnsOptions* override_opts) {
  Context& ctx = context_for(cfg);
  auto backend = make_backend(kind, cfg, override_opts);
  return at_paper_scale(cfg, backend->search(ctx.workload.queries));
}

core::SearchReport run_cpu(const Config& cfg) {
  return run_system(core::BackendKind::kCpuIvfpq, cfg);
}

core::SearchReport run_gpu(const Config& cfg) {
  return run_system(core::BackendKind::kGpuIvfpq, cfg);
}

core::SearchReport run_upanns(const Config& cfg,
                              const core::UpAnnsOptions* override_opts) {
  return run_system(core::BackendKind::kUpAnns, cfg, override_opts);
}

core::SearchReport run_pim_naive(const Config& cfg) {
  return run_system(core::BackendKind::kPimNaive, cfg);
}

}  // namespace upanns::bench
