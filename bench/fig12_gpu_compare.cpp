// Figure 12: (a) QPS and (b) QPS/W of Faiss-GPU vs UpANNS, normalized to
// Faiss-GPU at (IVF=4096, nprobe=256) per dataset — nprobe=64 for DEEP1B
// because the other settings OOM (blue 'X' in the paper). Expected shape:
// UpANNS QPS comparable to the GPU; ~2x higher QPS/W.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 12",
                  "Faiss-GPU vs UpANNS: QPS and QPS/W (normalized)");
  for (const auto family : {data::DatasetFamily::kDeepLike,
                            data::DatasetFamily::kSiftLike,
                            data::DatasetFamily::kSpacevLike}) {
    struct Cell {
      std::size_t ivf, nprobe;
      core::SearchReport gpu, up;
    };
    std::vector<Cell> cells;
    double gpu_base = 0;
    const std::size_t base_nprobe =
        family == data::DatasetFamily::kDeepLike ? 64 : 256;

    for (const std::size_t ivf :
         {std::size_t{4096}, std::size_t{8192}, std::size_t{16384}}) {
      Config cfg;
      cfg.family = family;
      cfg.paper_ivf = ivf;
      cfg.scaled_ivf = 256;
      cfg.n = 200'000;
      cfg.n_dpus = 64;
      cfg.n_queries = 256;
      for (const std::size_t nprobe :
           {std::size_t{64}, std::size_t{128}, std::size_t{256}}) {
        cfg.nprobe = nprobe;
        Cell c{ivf, nprobe, run_gpu(cfg), run_upanns(cfg)};
        if (ivf == 4096 && nprobe == base_nprobe && !c.gpu.gpu->oom) {
          gpu_base = c.gpu.qps;
        }
        cells.push_back(std::move(c));
      }
    }

    metrics::Table table({"dataset", "IVF", "nprobe", "GPU_QPS", "UpANNS_QPS",
                          "GPU_QPS/W", "UpANNS_QPS/W", "QPS/W_ratio"});
    double gpu_base_w =
        gpu_base > 0 ? pim::qps_per_watt(gpu_base, pim::Platform::kGpu) : 1;
    for (const Cell& c : cells) {
      table.add_row(
          {data::family_name(family), std::to_string(c.ivf),
           std::to_string(c.nprobe),
           c.gpu.gpu->oom ? "X (OOM)" : metrics::Table::fmt(c.gpu.qps / gpu_base, 2),
           metrics::Table::fmt(c.up.qps / gpu_base, 2),
           c.gpu.gpu->oom ? "X"
                     : metrics::Table::fmt(c.gpu.qps_per_watt / gpu_base_w, 2),
           metrics::Table::fmt(c.up.qps_per_watt / gpu_base_w, 2),
           c.gpu.gpu->oom ? "-"
                     : metrics::Table::fmt(
                           c.up.qps_per_watt / c.gpu.qps_per_watt, 2)});
    }
    table.print();
    std::printf("\n");
    clear_context_cache();
  }
  std::printf("Paper shape: UpANNS ~GPU QPS; ~2x QPS/W; DEEP1B GPU OOM "
              "beyond nprobe=64.\n");
  return 0;
}
