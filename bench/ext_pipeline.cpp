// Extension bench: double-buffered batch pipeline (Fig 16 setup).
//
// Streams a SIFT1B-like query workload through core::BatchPipeline in both
// accounting modes. With overlap on, host filtering/scheduling of batch i+1
// hides behind simulated DPU execution of batch i, so end-to-end simulated
// time drops below the serial sum while per-query neighbors stay
// bit-identical (overlap changes time accounting only).
#include "bench_common.hpp"
#include "core/pipeline.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Pipeline", "Batch-stream double-buffering (SIFT1B-like)");
  metrics::Table table({"batch", "batches", "serial_ms", "pipelined_ms",
                        "speedup", "host_hidden%"});

  for (const std::size_t batch : {std::size_t{64}, std::size_t{128},
                                  std::size_t{256}}) {
    Config cfg;
    cfg.family = data::DatasetFamily::kSiftLike;
    cfg.n = 150'000;
    cfg.scaled_ivf = 256;
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 64;
    cfg.n_queries = 1024;  // >= 4 batches at every batch size
    cfg.nprobe = 64;
    Context& ctx = context_for(cfg);
    auto backend = make_backend(core::BackendKind::kUpAnns, cfg);
    auto& up = static_cast<core::UpAnnsBackend&>(*backend);

    const auto batches =
        core::split_batches(ctx.workload.queries, batch);

    core::BatchPipeline serial(up.engine(), {.overlap = false});
    const auto off = serial.run(batches);
    core::BatchPipeline pipelined(up.engine(), {.overlap = true});
    const auto on = pipelined.run(batches);

    double host_total = 0;
    for (const auto& slot : on.slots) host_total += slot.host_seconds;
    const double hidden =
        host_total > 0
            ? (off.elapsed_seconds - on.elapsed_seconds) / host_total * 100.0
            : 0;
    table.add_row({std::to_string(batch), std::to_string(batches.size()),
                   metrics::Table::fmt(off.elapsed_seconds * 1e3, 3),
                   metrics::Table::fmt(on.elapsed_seconds * 1e3, 3),
                   metrics::Table::fmt(off.elapsed_seconds / on.elapsed_seconds, 5),
                   metrics::Table::fmt(hidden, 1)});
  }
  table.print();
  std::printf("\nExpected shape: pipelined < serial at every batch size; the "
              "host prefix (filter+schedule) hides behind DPU execution.\n");
  return 0;
}
