// Figure 18: QPS vs requested top-k (1..100) for Faiss-CPU, Faiss-GPU and
// UpANNS, normalized to Faiss-CPU at top-100. Expected shape: UpANNS ~2.5x
// CPU and ~1.6x GPU on average; CPU flat across k; UpANNS and GPU degrade
// slightly as k grows (result-transfer / sync overheads).
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 18", "QPS vs top-k size (normalized to CPU@k=100)");
  metrics::Table table({"dataset", "k", "CPU", "GPU", "UpANNS",
                        "UpANNS/CPU", "UpANNS/GPU"});
  for (const auto family : {data::DatasetFamily::kSiftLike,
                            data::DatasetFamily::kSpacevLike}) {
    struct Cell {
      std::size_t k;
      double cpu, gpu, up;
    };
    std::vector<Cell> cells;
    double cpu_base = 0;
    Config cfg;
    cfg.family = family;
    cfg.n = 150'000;
    cfg.scaled_ivf = 256;
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 64;
    cfg.n_queries = 128;
    cfg.nprobe = 64;
    for (const std::size_t k : {std::size_t{1}, std::size_t{10},
                                std::size_t{50}, std::size_t{100}}) {
      cfg.k = k;
      const core::SearchReport cpu = run_cpu(cfg);
      const core::SearchReport gpu = run_gpu(cfg);
      const core::SearchReport up = run_upanns(cfg);
      cells.push_back({k, cpu.qps, gpu.qps, up.qps});
      if (k == 100) cpu_base = cpu.qps;
    }
    for (const Cell& c : cells) {
      table.add_row({data::family_name(family), std::to_string(c.k),
                     metrics::Table::fmt(c.cpu / cpu_base, 2),
                     metrics::Table::fmt(c.gpu / cpu_base, 2),
                     metrics::Table::fmt(c.up / cpu_base, 2),
                     metrics::Table::fmt(c.up / c.cpu, 2),
                     metrics::Table::fmt(c.up / c.gpu, 2)});
    }
    clear_context_cache();
  }
  table.print();
  std::printf("\nPaper shape: CPU flat in k; UpANNS/GPU degrade slightly; "
              "UpANNS ~2.5x CPU, ~1.6x GPU on average.\n");
  return 0;
}
