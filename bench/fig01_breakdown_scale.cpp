// Figure 1: IVFPQ query-time breakdown on the CPU platform as the dataset
// scales 1M -> 100M -> 1B (SIFT, |C|=4096, nprobe=32, M=32 as in the paper's
// motivating figure). Expected shape: LUT construction dominates at 1M; the
// memory-bound distance-calculation stage dominates at 100M and 1B.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 1",
                  "CPU IVFPQ stage breakdown vs dataset scale (% of time)");
  metrics::Table table({"scale", "cluster_filter%", "LUT%", "distance%",
                        "topk%", "total_s_per_1000q"});
  for (const std::size_t n :
       {std::size_t{1'000'000}, std::size_t{100'000'000},
        std::size_t{1'000'000'000}}) {
    baselines::QueryWorkProfile p;
    p.n_queries = 1000;
    p.n_clusters = 4096;
    p.nprobe = 32;
    p.dim = 128;
    p.m = 32;
    p.k = 10;
    p.dataset_n = n;
    p.total_candidates = p.n_queries * p.nprobe * (n / p.n_clusters);
    p.max_cluster = 6 * (n / p.n_clusters);
    const auto t = baselines::CpuCostModel::stage_times(p);
    const auto s = metrics::shares(t);
    const std::string label = n == 1'000'000     ? "1M"
                              : n == 100'000'000 ? "100M"
                                                 : "1B";
    table.add_row({label, metrics::Table::fmt(s.cluster_filter, 1),
                   metrics::Table::fmt(s.lut_build, 1),
                   metrics::Table::fmt(s.distance_calc, 1),
                   metrics::Table::fmt(s.topk, 1),
                   metrics::Table::fmt(t.total(), 3)});
  }
  table.print();
  std::printf("\nPaper shape: LUT-bound at 1M; distance-bound at 100M/1B.\n");
  return 0;
}
