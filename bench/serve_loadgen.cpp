// Extension bench: SLO-vs-QPS curve of the continuous-batching serve layer.
//
// Probes the engine's batch-saturated capacity, then sweeps offered load
// around it with the deterministic discrete-event loadgen
// (serve::simulate_load): Zipf query traffic, Poisson arrivals, the real
// pipeline's simulated seconds as service times. The output is the classic
// queueing curve — flat latency at low load, a knee near capacity, and
// runaway p99 (or rejections, with --queue-cap) beyond it.
//
// Usage: serve_loadgen [--out serve_loadgen.json] [--requests N]
//                      [--max-batch B] [--deadline-ms D] [--queue-cap C]
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "serve/executors.hpp"
#include "serve/loadgen.hpp"

using namespace upanns;
using namespace upanns::bench;

int main(int argc, char** argv) {
  std::string out_path;
  std::size_t n_requests = 4000;
  serve::BatchPolicy policy;
  policy.max_batch = 64;
  policy.deadline_seconds = 2e-3;
  std::size_t queue_cap = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--requests") {
      n_requests = std::strtoull(next(), nullptr, 10);
    } else if (a == "--max-batch") {
      policy.max_batch = std::strtoull(next(), nullptr, 10);
    } else if (a == "--deadline-ms") {
      policy.deadline_seconds = std::strtod(next(), nullptr) * 1e-3;
    } else if (a == "--queue-cap") {
      queue_cap = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  if (policy.max_batch == 0 || !(policy.deadline_seconds > 0)) {
    std::fprintf(stderr, "--max-batch and --deadline-ms must be positive\n");
    return 2;
  }

  metrics::banner("Serve", "Continuous batching under open-loop load");

  Config cfg;
  cfg.family = data::DatasetFamily::kSiftLike;
  cfg.n = 100'000;
  cfg.scaled_ivf = 256;
  cfg.paper_ivf = 4096;
  cfg.n_dpus = 64;
  cfg.n_queries = 512;  // Zipf query pool the loadgen cycles through
  cfg.nprobe = 32;
  Context& ctx = context_for(cfg);
  auto backend = make_backend(core::BackendKind::kUpAnns, cfg);
  auto& up = static_cast<core::UpAnnsBackend&>(*backend);

  core::BatchStream stream(up.engine(),
                           {.overlap = true, .book_query_latency = false});
  const serve::BatchExecutor exec = serve::stream_executor(stream);

  // Capacity probe: one saturated batch gives the max sustainable rate of
  // the single-executor server (batch fully formed, no deadline waits).
  data::Dataset probe;
  probe.dim = ctx.workload.queries.dim;
  probe.n = std::min<std::size_t>(policy.max_batch, ctx.workload.queries.n);
  probe.values.assign(
      ctx.workload.queries.values.begin(),
      ctx.workload.queries.values.begin() + probe.n * probe.dim);
  const double probe_seconds = exec(probe).sim_seconds;
  stream.finish();
  const double capacity_qps =
      static_cast<double>(probe.n) / probe_seconds;
  std::printf("saturated batch: %zu queries in %.3f ms -> capacity %.0f "
              "qps\n\n",
              probe.n, probe_seconds * 1e3, capacity_qps);

  metrics::FigureSink sink(
      "serve_loadgen",
      {"load", "offered_qps", "achieved_qps", "p50_ms", "p99_ms", "fill",
       "rejected", "batches"});
  for (const double mult : {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5}) {
    serve::LoadgenOptions o;
    o.offered_qps = mult * capacity_qps;
    o.n_requests = n_requests;
    o.policy = policy;
    o.queue_capacity = queue_cap;
    o.seed = 42;  // same arrival sequence (scaled) at every load point
    const serve::LoadgenResult r =
        serve::simulate_load(ctx.workload.queries, exec, o);
    stream.finish();

    obs::JsonWriter d;
    d.begin_object();
    d.kv("mean_seconds", r.mean);
    d.kv("max_seconds", r.max);
    d.kv("mean_queue_wait_seconds", r.mean_queue_wait);
    d.kv("full_closes", static_cast<std::uint64_t>(r.full_closes));
    d.kv("deadline_closes", static_cast<std::uint64_t>(r.deadline_closes));
    d.kv("completed", static_cast<std::uint64_t>(r.n_completed));
    d.end_object();
    sink.add_row({metrics::Table::fmt(mult, 2),
                  metrics::Table::fmt(r.offered_qps, 0),
                  metrics::Table::fmt(r.achieved_qps, 0),
                  metrics::Table::fmt(r.p50 * 1e3, 3),
                  metrics::Table::fmt(r.p99 * 1e3, 3),
                  metrics::Table::fmt(r.mean_batch_fill, 3),
                  std::to_string(r.n_rejected),
                  std::to_string(r.n_batches)},
                 d.take());
  }
  sink.finish(out_path);
  std::printf("\nExpected shape: latency flat below the knee (deadline-"
              "dominated), p99 rising steeply once offered load crosses the "
              "saturated-batch capacity.\n");
  return 0;
}
